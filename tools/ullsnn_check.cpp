// ullsnn_check: command-line front end of the static verifier (src/verify/).
//
// Verifies a model-zoo architecture plus a conversion config without running
// anything: shape inference, conversion preconditions, and (with --tape) the
// autograd-tape invariants. Exit status: 0 = clean, 1 = errors (with
// --strict, warnings too), 2 = usage error.
//
//   ullsnn_check --arch vgg16 --time-steps 2
//   ullsnn_check --arch resnet20 --reset hard --delta-required   # C007 error
//   ullsnn_check --list-rules
//   ullsnn_check --selftest       # seeded-violation matrix (used by CI)
//
// --inject FAULT builds a deliberately broken model instead of the zoo
// architecture, demonstrating each diagnostic on a minimal chain.

#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/dnn/activations.h"
#include "src/dnn/batchnorm.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/linear.h"
#include "src/dnn/pooling.h"
#include "src/verify/verify.h"

namespace {

using namespace ullsnn;

struct CliOptions {
  core::Architecture arch = core::Architecture::kVgg11;
  dnn::ModelConfig model;
  core::ConversionConfig conversion;
  bool delta_required = false;
  bool tape = false;
  bool strict = false;
  std::string inject;  // empty => zoo architecture
};

void print_usage() {
  std::printf(
      "usage: ullsnn_check [options]\n"
      "  --arch NAME         vgg11|vgg13|vgg16|resnet20|resnet32 (default vgg11)\n"
      "  --width F           channel width multiplier (default 0.25)\n"
      "  --image-size N      input image extent (default 32)\n"
      "  --classes N         output classes (default 10)\n"
      "  --time-steps N      conversion time steps (default 2)\n"
      "  --reset soft|hard   SNN reset mode (default soft)\n"
      "  --leak F            membrane leak (default 1.0)\n"
      "  --delta-required    treat Delta-identity violations as errors\n"
      "  --tape              also run the autograd-tape invariant checker\n"
      "  --strict            nonzero exit on warnings too\n"
      "  --inject FAULT      verify a deliberately broken model instead:\n"
      "                      unfolded-bn | missing-site | shape-mismatch |\n"
      "                      orphan-act | pool-avg | dead-site | nan-weight |\n"
      "                      hard-reset\n"
      "  --list-rules        print the rule catalog and exit\n"
      "  --selftest          run the seeded-violation matrix and exit\n");
}

void list_rules() {
  std::printf("%-6s %-22s %-8s %s\n", "id", "name", "default", "summary");
  for (const verify::RuleInfo& rule : verify::rule_catalog()) {
    std::printf("%-6s %-22s %-8s %s\n", rule.id, rule.name,
                verify::to_string(rule.default_severity), rule.summary);
  }
}

/// Minimal broken chains, one per seeded fault. Each returns the model and
/// (via `options`) any config tweaks the fault needs.
std::unique_ptr<dnn::Sequential> build_injected(const std::string& fault,
                                                CliOptions& options, Rng& rng) {
  auto model = std::make_unique<dnn::Sequential>();
  const std::int64_t image = options.model.image_size;
  const auto add_head = [&](std::int64_t channels) {
    model->emplace<dnn::Flatten>();
    model->emplace<dnn::Linear>(channels * image * image, options.model.num_classes,
                                /*bias=*/false, rng);
  };
  if (fault == "unfolded-bn") {
    model->emplace<dnn::Conv2d>(3, 8, 3, 1, 1, /*bias=*/false, rng);
    model->emplace<dnn::BatchNorm2d>(8);
    model->emplace<dnn::ThresholdReLU>(4.0F);
    add_head(8);
  } else if (fault == "missing-site") {
    model->emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
    model->emplace<dnn::ReLU>();  // plain ReLU: no (alpha, beta) site
    add_head(8);
  } else if (fault == "shape-mismatch") {
    model->emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
    model->emplace<dnn::ThresholdReLU>(4.0F);
    model->emplace<dnn::Conv2d>(16, 8, 3, 1, 1, false, rng);  // expects 16, gets 8
    model->emplace<dnn::ThresholdReLU>(4.0F);
    add_head(8);
  } else if (fault == "orphan-act") {
    model->emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
    model->emplace<dnn::ThresholdReLU>(4.0F);
    model->emplace<dnn::MaxPool2d>(2, 2);
    model->emplace<dnn::ThresholdReLU>(4.0F);  // no preceding synaptic layer
    model->emplace<dnn::Flatten>();
    model->emplace<dnn::Linear>(8 * (image / 2) * (image / 2),
                                options.model.num_classes, false, rng);
  } else if (fault == "pool-avg") {
    model->emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
    model->emplace<dnn::AvgPool2d>(2, 2);  // clip does not commute with avg pool
    model->emplace<dnn::ThresholdReLU>(4.0F);
    model->emplace<dnn::Flatten>();
    model->emplace<dnn::Linear>(8 * (image / 2) * (image / 2),
                                options.model.num_classes, false, rng);
  } else if (fault == "dead-site") {
    model->emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
    // The constructor rejects mu <= 0; model a site that DIED during
    // training by overwriting the trained value.
    model->emplace<dnn::ThresholdReLU>(4.0F).set_mu(0.0F);
    add_head(8);
  } else if (fault == "nan-weight") {
    auto& conv = model->emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
    conv.weight().value[0] = std::numeric_limits<float>::quiet_NaN();
    model->emplace<dnn::ThresholdReLU>(4.0F);
    add_head(8);
    options.tape = true;
  } else if (fault == "hard-reset") {
    options.conversion.reset = snn::ResetMode::kZero;
    options.delta_required = true;
    return nullptr;  // zoo model; the fault is in the config
  } else {
    throw std::invalid_argument("unknown --inject fault '" + fault + "'");
  }
  return model;
}

verify::VerifyReport run_check(CliOptions options) {
  Rng rng(7);
  std::unique_ptr<dnn::Sequential> model;
  if (!options.inject.empty()) model = build_injected(options.inject, options, rng);
  if (!model) model = core::build_model(options.arch, options.model, rng);

  verify::VerifyOptions verify_options;
  verify_options.input_shape = {2, options.model.in_channels, options.model.image_size,
                                options.model.image_size};
  verify_options.conversion_config = options.conversion;
  verify_options.delta_identity_required = options.delta_required;
  verify_options.tape = options.tape;
  verify_options.tape_backward = options.tape;
  return verify::verify_model(*model, verify_options);
}

int selftest(CliOptions base) {
  struct Case {
    const char* fault;  // "" => clean model
    const char* expected_rule;
  };
  const std::vector<Case> cases = {
      {"", ""},
      {"unfolded-bn", "C001"},
      {"missing-site", "C004"},
      {"shape-mismatch", "G001"},
      {"orphan-act", "C003"},
      {"pool-avg", "C008"},
      {"dead-site", "C009"},
      {"nan-weight", "T003"},
      {"hard-reset", "C007"},
  };
  int failures = 0;
  for (const Case& test : cases) {
    CliOptions options = base;
    options.inject = test.fault;
    options.tape = true;  // the clean model must stay clean under every rule
    const verify::VerifyReport report = run_check(options);
    bool ok = false;
    if (test.expected_rule[0] == '\0') {
      ok = report.empty();
    } else {
      ok = report.has_rule(test.expected_rule);
    }
    std::printf("%-16s expected %-5s -> %lld error(s), %lld warning(s): %s\n",
                test.fault[0] == '\0' ? "(clean)" : test.fault,
                test.expected_rule[0] == '\0' ? "clean" : test.expected_rule,
                static_cast<long long>(report.error_count()),
                static_cast<long long>(report.warning_count()), ok ? "PASS" : "FAIL");
    if (!ok) {
      std::fputs(verify::format_report(report).c_str(), stdout);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

core::Architecture parse_arch(const std::string& name) {
  if (name == "vgg11") return core::Architecture::kVgg11;
  if (name == "vgg13") return core::Architecture::kVgg13;
  if (name == "vgg16") return core::Architecture::kVgg16;
  if (name == "resnet20") return core::Architecture::kResNet20;
  if (name == "resnet32") return core::Architecture::kResNet32;
  throw std::invalid_argument("unknown --arch '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  options.model.width = 0.25F;
  bool run_selftest = false;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        print_usage();
        return 0;
      } else if (arg == "--list-rules") {
        list_rules();
        return 0;
      } else if (arg == "--selftest") {
        run_selftest = true;
      } else if (arg == "--arch") {
        options.arch = parse_arch(value());
      } else if (arg == "--width") {
        options.model.width = std::stof(value());
      } else if (arg == "--image-size") {
        options.model.image_size = std::stoll(value());
      } else if (arg == "--classes") {
        options.model.num_classes = std::stoll(value());
      } else if (arg == "--time-steps") {
        options.conversion.time_steps = std::stoll(value());
      } else if (arg == "--reset") {
        const std::string mode = value();
        if (mode == "soft") {
          options.conversion.reset = snn::ResetMode::kSubtract;
        } else if (mode == "hard") {
          options.conversion.reset = snn::ResetMode::kZero;
        } else {
          throw std::invalid_argument("--reset must be soft|hard");
        }
      } else if (arg == "--leak") {
        options.conversion.leak = std::stof(value());
      } else if (arg == "--delta-required") {
        options.delta_required = true;
      } else if (arg == "--tape") {
        options.tape = true;
      } else if (arg == "--strict") {
        options.strict = true;
      } else if (arg == "--inject") {
        options.inject = value();
      } else {
        throw std::invalid_argument("unknown option '" + arg + "'");
      }
    }
    if (run_selftest) return selftest(options);
    const verify::VerifyReport report = run_check(options);
    std::fputs(verify::format_report(report).c_str(), stdout);
    if (report.error_count() > 0) return 1;
    if (options.strict && report.warning_count() > 0) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ullsnn_check: %s\n", e.what());
    print_usage();
    return 2;
  }
}
