#!/usr/bin/env python3
"""Compare a bench_kernels JSON run against the checked-in baseline.

Usage: tools/compare_bench.py BASELINE.json CURRENT.json [--threshold 2.0]

Noise strategy — this gate has to hold on shared CI runners, which are both
slower and noisier than the dev boxes that produce baselines:

  * min over repetitions: each benchmark's best time out of N repetitions is
    used, discarding scheduler hiccups and cold caches;
  * calibration anchor: every time is divided by BM_MatmulNaive/256 from the
    SAME file. The naive kernel is deliberately untouched scalar code, so it
    measures raw machine speed; normalizing by it makes an AVX-512 dev-box
    baseline comparable with an AVX2 CI runner;
  * wide threshold: only a >threshold x (default 2x) normalized slowdown
    fails. The gate catches "someone accidentally reverted the blocked
    GEMM", not 10% drift.

Exit status: 0 = no regression, 1 = regression, 2 = usage/format error.
"""

import argparse
import json
import sys

ANCHOR = "BM_MatmulNaive/256"


def load_min_times(path):
    """Return {benchmark name: min real_time in ns} over repetitions."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    times = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) when repetitions are on;
        # plain runs have no run_type field.
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("run_name") or b.get("name")
        t = b.get("real_time")
        if name is None or t is None:
            continue
        if name not in times or t < times[name]:
            times[name] = t
    if not times:
        print(f"error: no benchmark entries in {path}", file=sys.stderr)
        sys.exit(2)
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="fail when normalized time exceeds baseline by this "
                         "factor (default 2.0)")
    args = ap.parse_args()

    base = load_min_times(args.baseline)
    cur = load_min_times(args.current)

    if ANCHOR not in base or ANCHOR not in cur:
        print(f"error: calibration anchor {ANCHOR} missing "
              f"(baseline: {ANCHOR in base}, current: {ANCHOR in cur})",
              file=sys.stderr)
        sys.exit(2)

    base_anchor = base[ANCHOR]
    cur_anchor = cur[ANCHOR]
    print(f"anchor {ANCHOR}: baseline {base_anchor:,.0f} ns, "
          f"current {cur_anchor:,.0f} ns "
          f"(machine speed ratio {cur_anchor / base_anchor:.2f}x)")

    shared = sorted(set(base) & set(cur) - {ANCHOR})
    skipped = sorted((set(base) ^ set(cur)) - {ANCHOR})
    if skipped:
        print(f"note: {len(skipped)} benchmark(s) present in only one file "
              f"are skipped: {', '.join(skipped[:8])}"
              + (" ..." if len(skipped) > 8 else ""))
    if not shared:
        print("error: no shared benchmarks to compare", file=sys.stderr)
        sys.exit(2)

    regressions = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'base(ns)':>12}  {'cur(ns)':>12}  "
          f"{'norm-ratio':>10}")
    for name in shared:
        ratio = (cur[name] / cur_anchor) / (base[name] / base_anchor)
        flag = "  << REGRESSION" if ratio > args.threshold else ""
        print(f"{name:<{width}}  {base[name]:>12,.0f}  {cur[name]:>12,.0f}  "
              f"{ratio:>10.2f}{flag}")
        if ratio > args.threshold:
            regressions.append((name, ratio))

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold}x (normalized):", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: no benchmark regressed more than {args.threshold}x "
          f"(normalized) across {len(shared)} comparisons")


if __name__ == "__main__":
    main()
