#!/usr/bin/env python3
"""Compare a bench_kernels JSON run against the checked-in baseline.

Usage: tools/compare_bench.py BASELINE.json CURRENT.json [--threshold 2.0]
                              [--min-speedup FAST:REF:FACTOR ...]
       tools/compare_bench.py --load BASELINE.json CURRENT.json

--load switches to bench_load snapshots (bench/BENCH_load.json): the gate
booleans and per-point conservation/drain flags of CURRENT must all hold —
they are machine-independent because bench_load self-calibrates its knee and
sweeps knee-relative QPS. The baseline's knee and goodput are reported for
context only; absolute QPS is machine-dependent, so it is never gated
across files.

Noise strategy — this gate has to hold on shared CI runners, which are both
slower and noisier than the dev boxes that produce baselines:

  * min over repetitions: each benchmark's best time out of N repetitions is
    used, discarding scheduler hiccups and cold caches;
  * calibration anchor: every time is divided by BM_MatmulNaive/256 from the
    SAME file. The naive kernel is deliberately untouched scalar code, so it
    measures raw machine speed; normalizing by it makes an AVX-512 dev-box
    baseline comparable with an AVX2 CI runner;
  * wide threshold: only a >threshold x (default 2x) normalized slowdown
    fails. The gate catches "someone accidentally reverted the blocked
    GEMM", not 10% drift.

--min-speedup gates are intra-run: FAST and REF both come from CURRENT, so
the assertion is machine-independent and can be much tighter than the
cross-machine threshold. Example:

  --min-speedup BM_MatmulInt8/256:BM_Matmul/256:1.5

fails unless the int8 kernel beats the fp32 kernel by >= 1.5x on whatever
machine ran the benchmarks.

When $GITHUB_STEP_SUMMARY is set, a markdown summary table (with a speedup
column vs the baseline) is appended to it for the CI job summary page.

Exit status: 0 = no regression, 1 = regression or unmet --min-speedup,
2 = usage/format error.
"""

import argparse
import json
import os
import re
import sys

ANCHOR = "BM_MatmulNaive/256"

# Benchmark registration options are appended to the JSON name
# ("BM_Matmul/256/min_time:0.200"); strip them so names stay stable when
# per-bench time budgets are tuned.
_NAME_OPTS = re.compile(r"/(min_time|min_warmup_time|repeats|iterations"
                        r"|manual_time|process_time|real_time|threads):"
                        r"[0-9.]+")


def canon_name(name):
    return _NAME_OPTS.sub("", name)


def load_min_times(path):
    """Return {benchmark name: min real_time in ns} over repetitions."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    times = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) when repetitions are on;
        # plain runs have no run_type field.
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("run_name") or b.get("name")
        t = b.get("real_time")
        if name is None or t is None:
            continue
        name = canon_name(name)
        if name not in times or t < times[name]:
            times[name] = t
    if not times:
        print(f"error: no benchmark entries in {path}", file=sys.stderr)
        sys.exit(2)
    return times


def parse_min_speedup(spec):
    parts = spec.rsplit(":", 1)
    pair = parts[0].split(":") if len(parts) == 2 else []
    if len(parts) != 2 or len(pair) != 2:
        print(f"error: --min-speedup wants FAST:REF:FACTOR, got '{spec}'",
              file=sys.stderr)
        sys.exit(2)
    try:
        factor = float(parts[1])
    except ValueError:
        print(f"error: --min-speedup factor '{parts[1]}' is not a number",
              file=sys.stderr)
        sys.exit(2)
    return pair[0], pair[1], factor


def check_min_speedups(cur, specs):
    """Intra-run gates: REF time / FAST time >= FACTOR, both from CURRENT."""
    failures = []
    for fast, ref, factor in specs:
        if fast not in cur or ref not in cur:
            missing = [n for n in (fast, ref) if n not in cur]
            print(f"error: --min-speedup names missing from current run: "
                  f"{', '.join(missing)}", file=sys.stderr)
            sys.exit(2)
        speedup = cur[ref] / cur[fast]
        ok = speedup >= factor
        print(f"min-speedup {fast} vs {ref}: {speedup:.2f}x "
              f"(required >= {factor:.2f}x) {'OK' if ok else '<< FAIL'}")
        if not ok:
            failures.append((fast, ref, speedup, factor))
    return failures


def write_step_summary(rows, anchor_note, min_speedup_lines):
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    try:
        with open(path, "a", encoding="utf-8") as f:
            f.write("### Kernel benchmark comparison\n\n")
            f.write(anchor_note + "\n\n")
            f.write("| benchmark | base (ns) | current (ns) | speedup vs "
                    "baseline (normalized) | |\n")
            f.write("|---|---:|---:|---:|---|\n")
            for name, base_t, cur_t, speedup, flag in rows:
                f.write(f"| `{name}` | {base_t:,.0f} | {cur_t:,.0f} | "
                        f"{speedup:.2f}x | {flag} |\n")
            if min_speedup_lines:
                f.write("\n")
                for line in min_speedup_lines:
                    f.write(f"- {line}\n")
    except OSError as e:
        print(f"warning: cannot write step summary: {e}", file=sys.stderr)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def compare_load(baseline_path, current_path):
    """Gate a bench_load snapshot: every machine-independent boolean must
    hold in CURRENT; the baseline is informational context."""
    base = load_json(baseline_path)
    cur = load_json(current_path)
    for name, doc in (("baseline", base), ("current", cur)):
        if doc.get("bench") != "load":
            print(f"error: {name} is not a bench_load snapshot "
                  f"(bench = {doc.get('bench')!r})", file=sys.stderr)
            sys.exit(2)

    print(f"knee: baseline {base.get('knee_qps', 0):.0f} qps, "
          f"current {cur.get('knee_qps', 0):.0f} qps "
          f"(absolute QPS is machine-dependent; informational only)")

    failures = []
    gates = cur.get("gates", {})
    if not gates:
        print("error: current snapshot has no gates object", file=sys.stderr)
        sys.exit(2)
    for name, ok in sorted(gates.items()):
        print(f"gate {name}: {'OK' if ok else '<< FAIL'}")
        if not ok:
            failures.append(f"gate {name}")
    points = cur.get("points", [])
    if not points:
        failures.append("no sweep points in current snapshot")
    for p in points:
        rel = p.get("rel", 0.0)
        if not p.get("conserved", False):
            failures.append(f"point rel={rel}: conservation violated")
        if not p.get("drained", False):
            failures.append(f"point rel={rel}: queue did not drain")
        if p.get("watchdog_timeouts", 0) != 0:
            failures.append(f"point rel={rel}: watchdog terminations")
    if not cur.get("passed", False):
        failures.append("snapshot-level passed flag is false")

    if failures:
        print(f"\nFAIL: {len(failures)} load gate(s) unmet:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: all load gates held across {len(points)} sweep points")
    sys.exit(0)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--load", action="store_true",
                    help="compare bench_load snapshots (gate booleans) "
                         "instead of bench_kernels timings")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="fail when normalized time exceeds baseline by this "
                         "factor (default 2.0)")
    ap.add_argument("--min-speedup", action="append", default=[],
                    metavar="FAST:REF:FACTOR",
                    help="require current[REF]/current[FAST] >= FACTOR "
                         "(intra-run, machine-independent); repeatable")
    args = ap.parse_args()

    if args.load:
        compare_load(args.baseline, args.current)

    base = load_min_times(args.baseline)
    cur = load_min_times(args.current)

    if ANCHOR not in base or ANCHOR not in cur:
        print(f"error: calibration anchor {ANCHOR} missing "
              f"(baseline: {ANCHOR in base}, current: {ANCHOR in cur})",
              file=sys.stderr)
        sys.exit(2)

    base_anchor = base[ANCHOR]
    cur_anchor = cur[ANCHOR]
    anchor_note = (f"anchor {ANCHOR}: baseline {base_anchor:,.0f} ns, "
                   f"current {cur_anchor:,.0f} ns "
                   f"(machine speed ratio {cur_anchor / base_anchor:.2f}x)")
    print(anchor_note)

    shared = sorted(set(base) & set(cur) - {ANCHOR})
    skipped = sorted((set(base) ^ set(cur)) - {ANCHOR})
    if skipped:
        print(f"note: {len(skipped)} benchmark(s) present in only one file "
              f"are skipped: {', '.join(skipped[:8])}"
              + (" ..." if len(skipped) > 8 else ""))
    if not shared:
        print("error: no shared benchmarks to compare", file=sys.stderr)
        sys.exit(2)

    regressions = []
    summary_rows = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'base(ns)':>12}  {'cur(ns)':>12}  "
          f"{'speedup':>8}")
    for name in shared:
        # speedup > 1 means current is faster than baseline after
        # normalizing both files by their own anchor.
        speedup = (base[name] / base_anchor) / (cur[name] / cur_anchor)
        slow = 1.0 / speedup
        flag = "  << REGRESSION" if slow > args.threshold else ""
        print(f"{name:<{width}}  {base[name]:>12,.0f}  {cur[name]:>12,.0f}  "
              f"{speedup:>7.2f}x{flag}")
        summary_rows.append((name, base[name], cur[name], speedup,
                             "regression" if flag else ""))
        if slow > args.threshold:
            regressions.append((name, slow))

    speedup_specs = [parse_min_speedup(s) for s in args.min_speedup]
    speedup_failures = check_min_speedups(cur, speedup_specs)
    min_speedup_lines = [
        f"min-speedup `{fast}` vs `{ref}`: "
        f"{cur[ref] / cur[fast]:.2f}x (required {factor:.2f}x)"
        for fast, ref, factor in speedup_specs
    ]
    write_step_summary(summary_rows, anchor_note, min_speedup_lines)

    failed = False
    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold}x (normalized):", file=sys.stderr)
        for name, slow in regressions:
            print(f"  {name}: {slow:.2f}x slower", file=sys.stderr)
        failed = True
    if speedup_failures:
        print(f"\nFAIL: {len(speedup_failures)} min-speedup gate(s) unmet:",
              file=sys.stderr)
        for fast, ref, speedup, factor in speedup_failures:
            print(f"  {fast} vs {ref}: {speedup:.2f}x < {factor:.2f}x",
                  file=sys.stderr)
        failed = True
    if failed:
        sys.exit(1)
    print(f"\nOK: no benchmark regressed more than {args.threshold}x "
          f"(normalized) across {len(shared)} comparisons"
          + (f"; {len(speedup_specs)} min-speedup gate(s) met"
             if speedup_specs else ""))


if __name__ == "__main__":
    main()
