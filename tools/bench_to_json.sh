#!/usr/bin/env bash
# Runs a benchmark binary and writes a JSON snapshot suitable for checking in
# as a baseline (bench/BENCH_<mode>.json) or for comparing against one.
#
# Usage: tools/bench_to_json.sh [MODE] [BUILD_DIR] [OUT_JSON]
#
# Modes:
#   kernels (default)  google-benchmark kernel microbenches -> compare with
#                      tools/compare_bench.py against bench/BENCH_kernels.json
#   serve              resilient-serving soak + accuracy-vs-T + the
#                      observability-overhead gate via bench_serve (latency
#                      percentiles, completion rate, breaker counters, live
#                      /metrics conservation, endpoint-on-vs-off p99)
#                      -> bench/BENCH_serve.json
#   artifact           artifact spin-up timings + swap-under-load soak via
#                      bench_artifact (cold load vs mmap, zero-copy vs
#                      deep-copy replicas, swap-drain latency, rollback
#                      gates) -> bench/BENCH_artifact.json
#   load               open-loop Poisson load sweep via bench_load: knee
#                      calibration, knee-relative QPS points, per-class
#                      goodput/shed/latency, and the overload gates
#                      (conservation, zero watchdog terminations, bounded
#                      overload p99, priority order, clean drain)
#                      -> bench/BENCH_load.json
#
# MODE may be omitted; a first argument that is not a known mode is taken as
# BUILD_DIR for backward compatibility.
#
# Environment (kernels mode):
#   ULLSNN_BENCH_REPS      repetitions per benchmark (default 3); the
#                          comparator takes the min, so more reps = less noise
#   ULLSNN_BENCH_FILTER    --benchmark_filter regex (default: everything)
#   ULLSNN_BENCH_MIN_TIME  --benchmark_min_time seconds per repetition, as a
#                          plain double (e.g. 0.1); unset = library default
#
# Environment (serve mode):
#   ULLSNN_BENCH_SCALE     quick|default|full data/model scale (bench/common.h)
#   ULLSNN_SERVE_SECONDS   soak duration in seconds (default 10)
#   ULLSNN_SERVE_FAULTS    injected transient-fault rate in [0,1] (default 0.05)
#
# Environment (artifact mode):
#   ULLSNN_BENCH_SCALE         quick|default|full (bench/common.h)
#   ULLSNN_ARTIFACT_SECONDS    soak duration in seconds (default 8)
#   ULLSNN_ARTIFACT_SWAP_EVERY hot-swap every N accepted requests (default 100)
#
# Environment (load mode):
#   ULLSNN_BENCH_SCALE     quick|default|full data/model scale (bench/common.h)
#   ULLSNN_LOAD_SECONDS    seconds per sweep point (default: scale-dependent)
#   ULLSNN_LOAD_REL        comma list of knee-relative QPS multipliers
#                          (default "0.5,0.75,1.0,1.5,2.0,3.0")
#   ULLSNN_LOAD_WORKERS    serving workers (default 2)
#
# The build-info stamp (compiler, flags, git hash, telemetry) is embedded in
# the kernels JSON "context" object by bench_kernels itself.
set -euo pipefail

# Fail loudly on a missing dependency instead of surfacing as a confusing
# downstream error (e.g. compare_bench.py choking on an empty file).
require() {
  command -v "$1" >/dev/null 2>&1 || {
    echo "error: required tool '$1' not found on PATH" >&2
    exit 1
  }
}

# Refuse to publish anything that does not parse as JSON (a crashed bench
# leaves truncated output), then move it into place atomically so no reader
# — CI artifact upload, compare_bench.py, a baseline refresh — can ever see
# a partial snapshot.
publish_json() {
  local tmp="$1" out="$2"
  if ! python3 -m json.tool "$tmp" >/dev/null; then
    echo "error: benchmark output is not valid JSON — discarding (kept nothing at $out)" >&2
    exit 1
  fi
  mv -f "$tmp" "$out"
}

require python3
require mktemp

MODE="kernels"
case "${1:-}" in
  kernels|serve|artifact|load)
    MODE="$1"
    shift
    ;;
esac

BUILD_DIR="${1:-build}"

if [[ "$MODE" == "artifact" ]]; then
  OUT="${2:-BENCH_artifact.json}"
  BIN="$BUILD_DIR/bench/bench_artifact"
  if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not found or not executable (build the bench_artifact target first)" >&2
    exit 1
  fi
  # bench_artifact exits non-zero if the swap-under-load soak loses a
  # request, activates a corrupt artifact, or never auto-rolls back.
  TMP_OUT="$(mktemp "$OUT.XXXXXX")"
  trap 'rm -f "$TMP_OUT"' EXIT
  "$BIN" --spinup --soak \
    --seconds "${ULLSNN_ARTIFACT_SECONDS:-8}" \
    --swap-every "${ULLSNN_ARTIFACT_SWAP_EVERY:-100}" \
    --json "$TMP_OUT"
  publish_json "$TMP_OUT" "$OUT"
  echo "wrote $OUT (artifact spin-up + swap-under-load snapshot)" >&2
  exit 0
fi

if [[ "$MODE" == "load" ]]; then
  OUT="${2:-BENCH_load.json}"
  BIN="$BUILD_DIR/bench/bench_load"
  if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not found or not executable (build the bench_load target first)" >&2
    exit 1
  fi
  # bench_load exits non-zero when any overload gate fails: conservation,
  # zero watchdog terminations, sub-knee interactive fulfillment, bounded
  # overload p99, interactive-over-batch priority order, goodput retention
  # past the knee, or a dirty drain after the 3x-knee point.
  args=(--json)
  TMP_OUT="$(mktemp "$OUT.XXXXXX")"
  trap 'rm -f "$TMP_OUT"' EXIT
  args+=("$TMP_OUT" --workers "${ULLSNN_LOAD_WORKERS:-2}"
         --rel "${ULLSNN_LOAD_REL:-0.5,0.75,1.0,1.5,2.0,3.0}")
  [[ -n "${ULLSNN_LOAD_SECONDS:-}" ]] && args+=(--seconds "$ULLSNN_LOAD_SECONDS")
  "$BIN" "${args[@]}"
  publish_json "$TMP_OUT" "$OUT"
  echo "wrote $OUT (open-loop load sweep snapshot)" >&2
  exit 0
fi

if [[ "$MODE" == "serve" ]]; then
  OUT="${2:-BENCH_serve.json}"
  BIN="$BUILD_DIR/bench/bench_serve"
  if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not found or not executable (build the bench_serve target first)" >&2
    exit 1
  fi
  # bench_serve exits non-zero if the soak misses its completion-rate,
  # admission-conservation, or /metrics-conservation gates, or if the live
  # endpoint costs more than 5% at p99 — failing this script with it.
  # --http 0 serves /metrics,/healthz,/flight on an ephemeral port during
  # the soak and self-scrapes it at quiescence.
  TMP_OUT="$(mktemp "$OUT.XXXXXX")"
  trap 'rm -f "$TMP_OUT"' EXIT
  "$BIN" --soak --accuracy --overhead --http 0 \
    --seconds "${ULLSNN_SERVE_SECONDS:-10}" \
    --faults "${ULLSNN_SERVE_FAULTS:-0.05}" \
    --json "$TMP_OUT"
  publish_json "$TMP_OUT" "$OUT"
  echo "wrote $OUT (serving soak + accuracy-vs-T snapshot)" >&2
  exit 0
fi

OUT="${2:-BENCH_kernels.json}"
REPS="${ULLSNN_BENCH_REPS:-3}"
FILTER="${ULLSNN_BENCH_FILTER:-}"
MIN_TIME="${ULLSNN_BENCH_MIN_TIME:-}"

BIN="$BUILD_DIR/bench/bench_kernels"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found or not executable (build the bench_kernels target first)" >&2
  exit 1
fi

args=(
  --benchmark_format=json
  --benchmark_repetitions="$REPS"
  --benchmark_report_aggregates_only=false
)
[[ -n "$FILTER" ]] && args+=(--benchmark_filter="$FILTER")
[[ -n "$MIN_TIME" ]] && args+=(--benchmark_min_time="$MIN_TIME")

# Capture to a temp file first: google-benchmark streams JSON, so a crash
# mid-suite would otherwise leave a truncated-but-plausible baseline.
TMP_OUT="$(mktemp "$OUT.XXXXXX")"
trap 'rm -f "$TMP_OUT"' EXIT
"$BIN" "${args[@]}" > "$TMP_OUT"
publish_json "$TMP_OUT" "$OUT"

runs="$(grep -c '"run_name"' "$OUT")" || runs=0
if [[ "$runs" -eq 0 ]]; then
  echo "error: $OUT contains no benchmark runs (filter '${FILTER:-<none>}' matched nothing?)" >&2
  exit 1
fi
echo "wrote $OUT ($runs run entries)" >&2
