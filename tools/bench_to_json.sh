#!/usr/bin/env bash
# Runs the kernel micro-benchmarks and writes a JSON snapshot suitable for
# checking in as the perf baseline (bench/BENCH_kernels.json) or for
# comparing against it with tools/compare_bench.py.
#
# Usage: tools/bench_to_json.sh [BUILD_DIR] [OUT_JSON]
#
# Environment:
#   ULLSNN_BENCH_REPS      repetitions per benchmark (default 3); the
#                          comparator takes the min, so more reps = less noise
#   ULLSNN_BENCH_FILTER    --benchmark_filter regex (default: everything)
#   ULLSNN_BENCH_MIN_TIME  --benchmark_min_time seconds per repetition, as a
#                          plain double (e.g. 0.1); unset = library default
#
# The build-info stamp (compiler, flags, git hash, telemetry) is embedded in
# the JSON "context" object by bench_kernels itself.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_kernels.json}"
REPS="${ULLSNN_BENCH_REPS:-3}"
FILTER="${ULLSNN_BENCH_FILTER:-}"
MIN_TIME="${ULLSNN_BENCH_MIN_TIME:-}"

BIN="$BUILD_DIR/bench/bench_kernels"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found or not executable (build the bench_kernels target first)" >&2
  exit 1
fi

args=(
  --benchmark_format=json
  --benchmark_repetitions="$REPS"
  --benchmark_report_aggregates_only=false
)
[[ -n "$FILTER" ]] && args+=(--benchmark_filter="$FILTER")
[[ -n "$MIN_TIME" ]] && args+=(--benchmark_min_time="$MIN_TIME")

"$BIN" "${args[@]}" > "$OUT"
echo "wrote $OUT ($(grep -c '"run_name"' "$OUT" || true) run entries)" >&2
