#!/usr/bin/env bash
# Thread-safety gate self-check.
#
# Three assertions, all against Clang's -Werror=thread-safety analysis:
#   1. Every annotated concurrency header in src/ parses and analyzes clean.
#   2. The seeded unlocked access in tests/static/thread_safety_violation.cpp
#      is REJECTED — i.e. the gate has teeth, the flags are not silently
#      ignored.
#   3. The ULLSNN_EXPECT_CLEAN variant of the same fixture (violation
#      replaced by a locked read) is ACCEPTED — i.e. a rejection in (2) comes
#      from the analysis, not from an unrelated compile error.
#
# Exit codes: 0 = all checks pass, 77 = no Clang available (ctest skip via
# SKIP_RETURN_CODE), anything else = the gate is broken.
#
# Usage: tools/check_thread_safety.sh
# Env:   CLANGXX=/path/to/clang++ to override compiler discovery.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
fixture="$root/tests/static/thread_safety_violation.cpp"

clangxx=""
for candidate in "${CLANGXX:-}" clang++ clang++-20 clang++-19 clang++-18 \
                 clang++-17 clang++-16 clang++-15 clang++-14; do
  if [ -n "$candidate" ] && command -v "$candidate" >/dev/null 2>&1; then
    clangxx="$candidate"
    break
  fi
done
if [ -z "$clangxx" ]; then
  echo "SKIP: no clang++ found; the thread-safety analysis is Clang-only" >&2
  exit 77
fi
echo "using $clangxx ($("$clangxx" --version | head -n 1))"

flags=(-std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety "-I$root")

# The annotated concurrency surface, each header compiled standalone so a
# missing include or an annotation that only parses in one inclusion order
# cannot hide. Keep in sync with docs/concurrency.md.
headers=(
  src/util/thread_annotations.h
  src/util/mutex.h
  src/util/parallel.h
  src/serve/bounded_queue.h
  src/serve/request.h
  src/serve/circuit_breaker.h
  src/serve/engine.h
  src/obs/metrics.h
  src/obs/ring.h
  src/obs/flight_recorder.h
  src/obs/slo.h
  src/obs/trace.h
  src/obs/http_endpoint.h
  src/artifact/model_registry.h
  src/robust/health.h
  src/robust/fault_injector.h
)

echo "[1/3] annotated headers analyze clean"
for header in "${headers[@]}"; do
  if ! printf '#include "%s"\n' "$header" | \
       "$clangxx" "${flags[@]}" -x c++ - ; then
    echo "FAIL: $header does not pass -Werror=thread-safety" >&2
    exit 1
  fi
done

echo "[2/3] seeded unlocked access is rejected"
err_log="$(mktemp)"
trap 'rm -f "$err_log"' EXIT
if "$clangxx" "${flags[@]}" "$fixture" 2>"$err_log"; then
  echo "FAIL: the deliberate GUARDED_BY violation compiled — the gate has no teeth" >&2
  exit 1
fi
if ! grep -q "thread-safety" "$err_log"; then
  echo "FAIL: fixture rejected, but not by the thread-safety analysis:" >&2
  cat "$err_log" >&2
  exit 1
fi

echo "[3/3] locked variant of the same fixture is accepted"
if ! "$clangxx" "${flags[@]}" -DULLSNN_EXPECT_CLEAN "$fixture"; then
  echo "FAIL: the properly locked fixture does not compile" >&2
  exit 1
fi

echo "OK: thread-safety gate verified (clean headers, violation rejected)"
