#!/usr/bin/env bash
# clang-tidy gate: fail on NEW findings only.
#
# Runs clang-tidy (config: .clang-tidy) over every src/ translation unit,
# normalizes findings to "file:check" pairs, and diffs them against the
# checked-in .clang-tidy-baseline. Pre-existing findings stay green; anything
# not in the baseline fails the job. After fixing findings (or consciously
# accepting new ones with a NOLINT), refresh with --update-baseline.
#
# Usage:
#   tools/check_tidy.sh [build-dir]               # gate (default build dir: build)
#   tools/check_tidy.sh [build-dir] --update-baseline
#
# Requires a build dir configured with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-build}"
mode="${2:-check}"
baseline="$repo_root/.clang-tidy-baseline"

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  echo "check_tidy: $tidy_bin not found; install clang-tidy or set CLANG_TIDY" >&2
  exit 2
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "check_tidy: $build_dir/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

mapfile -t sources < <(cd "$repo_root" && find src -name '*.cpp' | sort)

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
# || true: clang-tidy exits nonzero on any finding; the gate is the diff below.
(cd "$repo_root" && "$tidy_bin" -p "$build_dir" --quiet "${sources[@]}" 2>/dev/null || true) \
  > "$raw"

# "path/file.cpp:12:3: warning: ... [check-name]" -> "path/file.cpp check-name"
current="$(grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error):' "$raw" \
  | sed -E "s|^$repo_root/||" \
  | sed -E 's|^([^:]+):[0-9]+:[0-9]+: (warning\|error): .* \[([^]]+)\]$|\1 \3|' \
  | sort -u || true)"

if [ "$mode" = "--update-baseline" ]; then
  printf '%s\n' "$current" | sed '/^$/d' > "$baseline"
  echo "check_tidy: baseline updated ($(grep -c . "$baseline" || true) entries)"
  exit 0
fi

known="$(sed '/^$/d' "$baseline" 2>/dev/null | sort -u || true)"
new_findings="$(comm -13 <(printf '%s\n' "$known") <(printf '%s\n' "$current" | sed '/^$/d') || true)"

if [ -n "$new_findings" ]; then
  echo "check_tidy: NEW findings not in .clang-tidy-baseline:" >&2
  printf '%s\n' "$new_findings" >&2
  echo "Fix them, add a NOLINT(check) with a reason, or refresh the baseline." >&2
  exit 1
fi
echo "check_tidy: clean (no findings outside the baseline)"
