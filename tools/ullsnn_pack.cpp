// ullsnn_pack: convert a trained v2 checkpoint into a crash-safe serving
// artifact, and inspect/verify existing artifacts.
//
//   ullsnn_pack pack --out model.art [--arch vgg11] [--width 0.125]
//                    [--classes 10] [--T 3] [--checkpoint ckpt.bin]
//                    [--calib 256] [--seed 7]
//       Build the architecture from the model zoo, optionally restore DNN
//       weights from a v2 checkpoint (robust::save_params layout, "p<i>"
//       keys), collect activations on seeded synthetic calibration data,
//       convert to an SNN at T, and pack. The freshly written artifact is
//       immediately reloaded and its canary replayed — the tool only exits 0
//       if the round trip reproduces the recorded logits bit-for-bit.
//
//   ullsnn_pack verify model.art
//       Full paranoid load (header/footer/section CRCs, bounds, fingerprint
//       cross-check) plus a canary replay on a fresh replica. Exit 0 iff the
//       artifact would pass a ModelRegistry deploy gate.
//
//   ullsnn_pack info model.art
//       Print header fields, section layout, and the tensor table.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>

#include "src/artifact/artifact.h"
#include "src/artifact/model_registry.h"
#include "src/core/pipeline.h"
#include "src/data/dataset.h"
#include "src/data/synthetic_cifar.h"
#include "src/robust/checkpoint.h"

using namespace ullsnn;

namespace {

struct PackArgs {
  std::string out;
  std::string checkpoint;
  std::string arch = "vgg11";
  float width = 0.125F;
  std::int64_t classes = 10;
  std::int64_t time_steps = 3;
  std::int64_t calib = 256;
  std::uint64_t seed = 7;
  bool int8 = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: ullsnn_pack pack --out <path> [--arch vgg11|vgg13|vgg16|"
               "resnet20|resnet32]\n"
               "                        [--width F] [--classes N] [--T N]\n"
               "                        [--checkpoint ckpt.bin] [--calib N] "
               "[--seed N] [--int8]\n"
               "       ullsnn_pack verify <path>\n"
               "       ullsnn_pack info <path>\n");
  return 2;
}

core::Architecture parse_arch(const std::string& name) {
  if (name == "vgg11") return core::Architecture::kVgg11;
  if (name == "vgg13") return core::Architecture::kVgg13;
  if (name == "vgg16") return core::Architecture::kVgg16;
  if (name == "resnet20") return core::Architecture::kResNet20;
  if (name == "resnet32") return core::Architecture::kResNet32;
  throw std::invalid_argument("unknown --arch '" + name + "'");
}

int run_pack(const PackArgs& args) {
  if (args.out.empty()) return usage();

  dnn::ModelConfig mc;
  mc.width = args.width;
  mc.num_classes = args.classes;
  Rng rng(args.seed);
  auto model = core::build_model(parse_arch(args.arch), mc, rng);
  if (!args.checkpoint.empty()) {
    robust::load_params(model->params(), args.checkpoint);
    std::printf("[pack] restored %zu parameter tensors from %s\n",
                model->params().size(), args.checkpoint.c_str());
  } else {
    std::printf("[pack] no --checkpoint given: packing freshly initialized "
                "weights (smoke-test artifact)\n");
  }

  data::SyntheticCifarSpec spec;
  spec.num_classes = args.classes;
  data::SyntheticCifar gen(spec);
  data::LabeledImages calib = gen.generate(args.calib, /*seed=*/1);
  data::standardize(calib);
  const core::ActivationProfile profile =
      core::collect_activations(*model, calib);

  core::ConversionConfig cc;
  cc.time_steps = args.time_steps;
  auto net = core::convert(*model, profile, cc, nullptr);

  artifact::PackOptions opt;
  opt.input_shape = Shape(calib.images.shape().begin() + 1,
                          calib.images.shape().end());
  opt.precision = args.int8 ? Precision::kInt8 : Precision::kFp32;
  const std::uint64_t bytes = artifact::pack_network(*net, args.out, opt);
  std::printf("[pack] wrote %llu bytes (precision=%s) -> %s\n",
              static_cast<unsigned long long>(bytes), to_string(opt.precision),
              args.out.c_str());

  // Round-trip gate: the artifact must survive the same load + canary a
  // ModelRegistry deploy would run before this tool reports success.
  artifact::ModelRegistry gate;
  gate.deploy(args.out);
  std::printf("[pack] round-trip verified: canary logits reproduced "
              "bit-for-bit (fingerprint %016llx)\n",
              static_cast<unsigned long long>(
                  gate.active().artifact->fingerprint()));
  return 0;
}

int run_verify(const std::string& path) {
  artifact::ModelRegistry gate;
  gate.deploy(path);  // load + arch parse + canary replay; throws on failure
  const auto art = gate.active().artifact;
  std::printf("[verify] %s: OK\n", path.c_str());
  std::printf("  file size    %llu bytes\n",
              static_cast<unsigned long long>(art->file_size()));
  std::printf("  fingerprint  %016llx\n",
              static_cast<unsigned long long>(art->fingerprint()));
  std::printf("  layers       %zu, tensors %lld, T=%lld, precision %s\n",
              art->arch().layers.size(),
              static_cast<long long>(art->tensor_count()),
              static_cast<long long>(art->time_steps()),
              to_string(art->precision()));
  std::printf("  canary       replayed bit-exact at T=%lld\n",
              static_cast<long long>(art->probe_time_steps()));
  return 0;
}

int run_info(const std::string& path) {
  const auto art = artifact::UllsnnArtifact::load(path);
  std::printf("artifact %s\n", path.c_str());
  std::printf("  file size    %llu bytes\n",
              static_cast<unsigned long long>(art->file_size()));
  std::printf("  fingerprint  %016llx\n",
              static_cast<unsigned long long>(art->fingerprint()));
  std::printf("  time steps   %lld  encoding %u  encoder seed %llu  "
              "precision %s\n",
              static_cast<long long>(art->arch().time_steps),
              art->arch().encoding,
              static_cast<unsigned long long>(art->arch().encoder_seed),
              to_string(art->precision()));
  if (!art->quant_weights().empty()) {
    std::printf("  quant weights %zu tensor(s), per-output-channel int8\n",
                art->quant_weights().size());
  }
  std::printf("  layers (%zu):\n", art->arch().layers.size());
  for (std::size_t i = 0; i < art->arch().layers.size(); ++i) {
    std::printf("    [%zu] kind=%u\n", i,
                static_cast<unsigned>(art->arch().layers[i].kind));
  }
  std::printf("  tensors (%lld):\n",
              static_cast<long long>(art->tensor_count()));
  for (const artifact::TensorEntry& t : art->tensors()) {
    std::string dims;
    for (std::size_t d = 0; d < t.shape.size(); ++d) {
      if (d > 0) dims += 'x';
      dims += std::to_string(t.shape[d]);
    }
    std::printf("    %-16s %-12s @ %llu\n", t.name.c_str(), dims.c_str(),
                static_cast<unsigned long long>(t.offset));
  }
  return 0;
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "verify" && argc == 3) return run_verify(argv[2]);
  if (cmd == "info" && argc == 3) return run_info(argv[2]);
  if (cmd != "pack") return usage();

  PackArgs args;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) throw std::invalid_argument(flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--out") args.out = value();
    else if (flag == "--checkpoint") args.checkpoint = value();
    else if (flag == "--arch") args.arch = value();
    else if (flag == "--width") args.width = std::strtof(value(), nullptr);
    else if (flag == "--classes") args.classes = std::atoll(value());
    else if (flag == "--T") args.time_steps = std::atoll(value());
    else if (flag == "--calib") args.calib = std::atoll(value());
    else if (flag == "--seed") args.seed = std::strtoull(value(), nullptr, 10);
    else if (flag == "--int8") args.int8 = true;
    else return usage();
  }
  return run_pack(args);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const artifact::ArtifactError& e) {
    std::fprintf(stderr, "ullsnn_pack: [%s] %s\n", to_string(e.code()),
                 e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ullsnn_pack: %s\n", e.what());
    return 1;
  }
}
