# Empty dependencies file for energy_audit.
# This may be replaced when dependencies are built.
