# Empty compiler generated dependencies file for event_driven_inference.
# This may be replaced when dependencies are built.
