file(REMOVE_RECURSE
  "CMakeFiles/event_driven_inference.dir/event_driven_inference.cpp.o"
  "CMakeFiles/event_driven_inference.dir/event_driven_inference.cpp.o.d"
  "event_driven_inference"
  "event_driven_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_driven_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
