file(REMOVE_RECURSE
  "CMakeFiles/latency_sweep.dir/latency_sweep.cpp.o"
  "CMakeFiles/latency_sweep.dir/latency_sweep.cpp.o.d"
  "latency_sweep"
  "latency_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
