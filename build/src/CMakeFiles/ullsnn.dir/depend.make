# Empty dependencies file for ullsnn.
# This may be replaced when dependencies are built.
