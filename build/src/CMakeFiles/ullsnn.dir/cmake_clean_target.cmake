file(REMOVE_RECURSE
  "libullsnn.a"
)
