
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/activation_collector.cpp" "src/CMakeFiles/ullsnn.dir/core/activation_collector.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/core/activation_collector.cpp.o.d"
  "/root/repo/src/core/bn_fold.cpp" "src/CMakeFiles/ullsnn.dir/core/bn_fold.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/core/bn_fold.cpp.o.d"
  "/root/repo/src/core/converter.cpp" "src/CMakeFiles/ullsnn.dir/core/converter.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/core/converter.cpp.o.d"
  "/root/repo/src/core/delta_analysis.cpp" "src/CMakeFiles/ullsnn.dir/core/delta_analysis.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/core/delta_analysis.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/ullsnn.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/scaling_search.cpp" "src/CMakeFiles/ullsnn.dir/core/scaling_search.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/core/scaling_search.cpp.o.d"
  "/root/repo/src/data/augment.cpp" "src/CMakeFiles/ullsnn.dir/data/augment.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/data/augment.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/ullsnn.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/synthetic_cifar.cpp" "src/CMakeFiles/ullsnn.dir/data/synthetic_cifar.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/data/synthetic_cifar.cpp.o.d"
  "/root/repo/src/dnn/activations.cpp" "src/CMakeFiles/ullsnn.dir/dnn/activations.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/dnn/activations.cpp.o.d"
  "/root/repo/src/dnn/adam.cpp" "src/CMakeFiles/ullsnn.dir/dnn/adam.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/dnn/adam.cpp.o.d"
  "/root/repo/src/dnn/batchnorm.cpp" "src/CMakeFiles/ullsnn.dir/dnn/batchnorm.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/dnn/batchnorm.cpp.o.d"
  "/root/repo/src/dnn/conv2d.cpp" "src/CMakeFiles/ullsnn.dir/dnn/conv2d.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/dnn/conv2d.cpp.o.d"
  "/root/repo/src/dnn/dropout.cpp" "src/CMakeFiles/ullsnn.dir/dnn/dropout.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/dnn/dropout.cpp.o.d"
  "/root/repo/src/dnn/linear.cpp" "src/CMakeFiles/ullsnn.dir/dnn/linear.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/dnn/linear.cpp.o.d"
  "/root/repo/src/dnn/loss.cpp" "src/CMakeFiles/ullsnn.dir/dnn/loss.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/dnn/loss.cpp.o.d"
  "/root/repo/src/dnn/models.cpp" "src/CMakeFiles/ullsnn.dir/dnn/models.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/dnn/models.cpp.o.d"
  "/root/repo/src/dnn/optimizer.cpp" "src/CMakeFiles/ullsnn.dir/dnn/optimizer.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/dnn/optimizer.cpp.o.d"
  "/root/repo/src/dnn/pooling.cpp" "src/CMakeFiles/ullsnn.dir/dnn/pooling.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/dnn/pooling.cpp.o.d"
  "/root/repo/src/dnn/residual.cpp" "src/CMakeFiles/ullsnn.dir/dnn/residual.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/dnn/residual.cpp.o.d"
  "/root/repo/src/dnn/sequential.cpp" "src/CMakeFiles/ullsnn.dir/dnn/sequential.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/dnn/sequential.cpp.o.d"
  "/root/repo/src/dnn/trainer.cpp" "src/CMakeFiles/ullsnn.dir/dnn/trainer.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/dnn/trainer.cpp.o.d"
  "/root/repo/src/energy/energy_model.cpp" "src/CMakeFiles/ullsnn.dir/energy/energy_model.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/energy/energy_model.cpp.o.d"
  "/root/repo/src/energy/flops.cpp" "src/CMakeFiles/ullsnn.dir/energy/flops.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/energy/flops.cpp.o.d"
  "/root/repo/src/energy/memory_model.cpp" "src/CMakeFiles/ullsnn.dir/energy/memory_model.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/energy/memory_model.cpp.o.d"
  "/root/repo/src/energy/spike_monitor.cpp" "src/CMakeFiles/ullsnn.dir/energy/spike_monitor.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/energy/spike_monitor.cpp.o.d"
  "/root/repo/src/snn/encoding.cpp" "src/CMakeFiles/ullsnn.dir/snn/encoding.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/snn/encoding.cpp.o.d"
  "/root/repo/src/snn/event_driven.cpp" "src/CMakeFiles/ullsnn.dir/snn/event_driven.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/snn/event_driven.cpp.o.d"
  "/root/repo/src/snn/neuron.cpp" "src/CMakeFiles/ullsnn.dir/snn/neuron.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/snn/neuron.cpp.o.d"
  "/root/repo/src/snn/sgl_trainer.cpp" "src/CMakeFiles/ullsnn.dir/snn/sgl_trainer.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/snn/sgl_trainer.cpp.o.d"
  "/root/repo/src/snn/snn_network.cpp" "src/CMakeFiles/ullsnn.dir/snn/snn_network.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/snn/snn_network.cpp.o.d"
  "/root/repo/src/snn/spiking_layers.cpp" "src/CMakeFiles/ullsnn.dir/snn/spiking_layers.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/snn/spiking_layers.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/ullsnn.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/random.cpp" "src/CMakeFiles/ullsnn.dir/tensor/random.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/tensor/random.cpp.o.d"
  "/root/repo/src/tensor/stats.cpp" "src/CMakeFiles/ullsnn.dir/tensor/stats.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/tensor/stats.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/ullsnn.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/util/parallel.cpp" "src/CMakeFiles/ullsnn.dir/util/parallel.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/util/parallel.cpp.o.d"
  "/root/repo/src/util/serialize.cpp" "src/CMakeFiles/ullsnn.dir/util/serialize.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/util/serialize.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/ullsnn.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/util/table.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/ullsnn.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/ullsnn.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
