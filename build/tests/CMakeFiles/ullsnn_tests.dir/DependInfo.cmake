
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/converter_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/core/converter_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/core/converter_test.cpp.o.d"
  "/root/repo/tests/core/delta_analysis_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/core/delta_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/core/delta_analysis_test.cpp.o.d"
  "/root/repo/tests/core/pipeline_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/core/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/core/pipeline_test.cpp.o.d"
  "/root/repo/tests/core/scaling_property_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/core/scaling_property_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/core/scaling_property_test.cpp.o.d"
  "/root/repo/tests/core/scaling_search_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/core/scaling_search_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/core/scaling_search_test.cpp.o.d"
  "/root/repo/tests/data/data_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/data/data_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/data/data_test.cpp.o.d"
  "/root/repo/tests/dnn/adam_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/dnn/adam_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/dnn/adam_test.cpp.o.d"
  "/root/repo/tests/dnn/batchnorm_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/dnn/batchnorm_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/dnn/batchnorm_test.cpp.o.d"
  "/root/repo/tests/dnn/layers_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/dnn/layers_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/dnn/layers_test.cpp.o.d"
  "/root/repo/tests/dnn/loss_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/dnn/loss_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/dnn/loss_test.cpp.o.d"
  "/root/repo/tests/dnn/models_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/dnn/models_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/dnn/models_test.cpp.o.d"
  "/root/repo/tests/dnn/optimizer_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/dnn/optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/dnn/optimizer_test.cpp.o.d"
  "/root/repo/tests/dnn/residual_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/dnn/residual_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/dnn/residual_test.cpp.o.d"
  "/root/repo/tests/dnn/sequential_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/dnn/sequential_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/dnn/sequential_test.cpp.o.d"
  "/root/repo/tests/dnn/trainer_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/dnn/trainer_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/dnn/trainer_test.cpp.o.d"
  "/root/repo/tests/energy/energy_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/energy/energy_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/energy/energy_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/snn/bptt_gradient_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/snn/bptt_gradient_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/snn/bptt_gradient_test.cpp.o.d"
  "/root/repo/tests/snn/encoding_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/snn/encoding_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/snn/encoding_test.cpp.o.d"
  "/root/repo/tests/snn/event_driven_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/snn/event_driven_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/snn/event_driven_test.cpp.o.d"
  "/root/repo/tests/snn/neuron_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/snn/neuron_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/snn/neuron_test.cpp.o.d"
  "/root/repo/tests/snn/reset_and_weightnorm_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/snn/reset_and_weightnorm_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/snn/reset_and_weightnorm_test.cpp.o.d"
  "/root/repo/tests/snn/sgl_trainer_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/snn/sgl_trainer_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/snn/sgl_trainer_test.cpp.o.d"
  "/root/repo/tests/snn/snn_network_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/snn/snn_network_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/snn/snn_network_test.cpp.o.d"
  "/root/repo/tests/snn/spiking_layers_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/snn/spiking_layers_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/snn/spiking_layers_test.cpp.o.d"
  "/root/repo/tests/snn/staircase_equivalence_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/snn/staircase_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/snn/staircase_equivalence_test.cpp.o.d"
  "/root/repo/tests/tensor/ops_property_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/tensor/ops_property_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/tensor/ops_property_test.cpp.o.d"
  "/root/repo/tests/tensor/ops_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/tensor/ops_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/tensor/ops_test.cpp.o.d"
  "/root/repo/tests/tensor/random_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/tensor/random_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/tensor/random_test.cpp.o.d"
  "/root/repo/tests/tensor/stats_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/tensor/stats_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/tensor/stats_test.cpp.o.d"
  "/root/repo/tests/tensor/tensor_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/tensor/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/tensor/tensor_test.cpp.o.d"
  "/root/repo/tests/util/parallel_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/util/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/util/parallel_test.cpp.o.d"
  "/root/repo/tests/util/util_test.cpp" "tests/CMakeFiles/ullsnn_tests.dir/util/util_test.cpp.o" "gcc" "tests/CMakeFiles/ullsnn_tests.dir/util/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ullsnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
