# Empty dependencies file for ullsnn_tests.
# This may be replaced when dependencies are built.
