#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/util/serialize.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace ullsnn {
namespace {

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i * 0.5;
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GT(t.millis(), 0.0);
}

TEST(StopWatchTest, AccumulatesAcrossSegments) {
  StopWatch sw;
  sw.start();
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  sw.stop();
  const double first = sw.total_seconds();
  EXPECT_GT(first, 0.0);
  sw.start();
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  sw.stop();
  EXPECT_GT(sw.total_seconds(), first);
  sw.clear();
  EXPECT_EQ(sw.total_seconds(), 0.0);
}

TEST(StopWatchTest, RestartWhileRunningBanksElapsedTime) {
  // start() during a running interval must fold the in-flight time into the
  // total instead of discarding it (the old behaviour silently dropped it).
  StopWatch sw;
  sw.start();
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  sw.start();  // re-start while running: previous segment is banked
  const double banked = sw.total_seconds();
  EXPECT_GT(banked, 0.0);
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  sw.stop();
  EXPECT_GT(sw.total_seconds(), banked);
  // stop() after the fold must not double-count: a fresh watch timing both
  // loops in one segment is of the same order, not half.
  sw.stop();  // second stop is a no-op
  const double total = sw.total_seconds();
  EXPECT_EQ(sw.total_seconds(), total);
}

TEST(StopWatchTest, StartAfterStopDoesNotBankStoppedGap) {
  StopWatch sw;
  sw.start();
  sw.stop();
  const double first = sw.total_seconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  sw.start();  // while stopped: nothing extra is banked at start
  sw.stop();
  // The gap spent stopped (the big loop) must not appear in the total.
  EXPECT_LT(sw.total_seconds() - first, 0.05);
}

TEST(TableTest, RejectsEmptyHeaderAndBadArity) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1U);
}

TEST(TableTest, Formatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_int(42), "42");
  EXPECT_EQ(Table::fmt_sci(1234.5, "pJ", 1), "1.2e+03 pJ");
  EXPECT_EQ(Table::fmt_sci(2.0, "", 2), "2.00e+00");
}

TEST(TableTest, CsvRoundTrip) {
  Table t({"name", "value"});
  t.add_row({"alpha", "0.5"});
  t.add_row({"with,comma", "1"});
  const std::string path = testing::TempDir() + "/ullsnn_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "alpha,0.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",1");
  std::filesystem::remove(path);
}

TEST(TableTest, CsvCommentHeaderLines) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string path = testing::TempDir() + "/ullsnn_table_comment.csv";
  t.write_csv(path, "first line\nsecond line");
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "# first line");
  std::getline(in, line);
  EXPECT_EQ(line, "# second line");
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::filesystem::remove(path);
}

TEST(TableTest, CsvBadPathThrows) {
  Table t({"a"});
  EXPECT_THROW(t.write_csv("/nonexistent_dir_xyz/file.csv"), std::runtime_error);
}

TEST(SerializeTest, RoundTrip) {
  TensorDict dict;
  dict["w1"] = Tensor({2, 3}, 1.5F);
  dict["w2"] = Tensor::of({1, 2, 3});
  Tensor big({4, 4, 4});
  for (std::int64_t i = 0; i < big.numel(); ++i) big[i] = static_cast<float>(i);
  dict["big"] = big;
  const std::string path = testing::TempDir() + "/ullsnn_ckpt_test.bin";
  save_tensors(dict, path);
  const TensorDict loaded = load_tensors(path);
  ASSERT_EQ(loaded.size(), 3U);
  EXPECT_TRUE(loaded.at("w1").allclose(dict.at("w1")));
  EXPECT_TRUE(loaded.at("w2").allclose(dict.at("w2")));
  EXPECT_TRUE(loaded.at("big").allclose(big));
  EXPECT_EQ(loaded.at("big").shape(), Shape({4, 4, 4}));
  std::filesystem::remove(path);
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_tensors("/nonexistent_xyz.bin"), std::runtime_error);
}

TEST(SerializeTest, BadMagicThrows) {
  const std::string path = testing::TempDir() + "/ullsnn_bad_magic.bin";
  std::ofstream(path) << "not a checkpoint";
  EXPECT_THROW(load_tensors(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SerializeTest, TruncatedFileThrows) {
  TensorDict dict;
  dict["w"] = Tensor({100});
  const std::string path = testing::TempDir() + "/ullsnn_trunc.bin";
  save_tensors(dict, path);
  std::filesystem::resize_file(path, 30);
  EXPECT_THROW(load_tensors(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SerializeTest, EmptyDict) {
  const std::string path = testing::TempDir() + "/ullsnn_empty.bin";
  save_tensors({}, path);
  EXPECT_TRUE(load_tensors(path).empty());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ullsnn
