#include "src/util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace ullsnn {
namespace {

// RAII guard so every test leaves the process back in serial mode.
struct SerialGuard {
  ~SerialGuard() { set_num_threads(1); }
};

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  SerialGuard guard;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.run(257, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  SerialGuard guard;
  ThreadPool pool(2);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.run(50, [&](std::int64_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 20 * (49 * 50) / 2);
}

TEST(ThreadPoolTest, SerialPoolExecutesInline) {
  SerialGuard guard;
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 0);
  std::int64_t calls = 0;
  pool.run(5, [&](std::int64_t) { ++calls; });  // no races: inline
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  SerialGuard guard;
  ThreadPool pool(3);
  bool called = false;
  pool.run(0, [&](std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, RejectsNegative) {
  EXPECT_THROW(ThreadPool(-1), std::invalid_argument);
}

TEST(ThreadPoolTest, ExceptionRethrownOnCallingThread) {
  SerialGuard guard;
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run(100,
               [&](std::int64_t i) {
                 if (i == 13) throw std::runtime_error("iteration 13 failed");
               }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionStopsDistributingWork) {
  SerialGuard guard;
  ThreadPool pool(4);
  std::atomic<std::int64_t> executed{0};
  try {
    pool.run(1'000'000, [&](std::int64_t i) {
      ++executed;
      if (i == 0) throw std::runtime_error("fail fast");
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "fail fast");
  }
  // Only iterations already claimed when the failure landed may run; the
  // vast majority of the million must have been skipped.
  EXPECT_LT(executed.load(), 1'000'000);
}

TEST(ThreadPoolTest, PoolUsableAfterException) {
  SerialGuard guard;
  ThreadPool pool(3);
  EXPECT_THROW(pool.run(10, [](std::int64_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<std::int64_t> sum{0};
  pool.run(50, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), (49 * 50) / 2);
}

TEST(ThreadPoolTest, SerialPoolPropagatesException) {
  SerialGuard guard;
  ThreadPool pool(1);
  EXPECT_THROW(pool.run(3, [](std::int64_t) { throw std::logic_error("inline"); }),
               std::logic_error);
}

TEST(ParallelForTest, GlobalConfig) {
  SerialGuard guard;
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  std::atomic<std::int64_t> sum{0};
  parallel_for(100, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
  EXPECT_THROW(set_num_threads(0), std::invalid_argument);
}

TEST(ParallelForTest, ConvForwardMatchesSerial) {
  SerialGuard guard;
  Rng rng(1);
  Conv2dSpec spec{3, 8, 3, 1, 1};
  Tensor input({6, 3, 12, 12});
  Tensor weight({8, 3, 3, 3});
  uniform_fill(input, -1.0F, 1.0F, rng);
  uniform_fill(weight, -0.5F, 0.5F, rng);
  Tensor serial({6, 8, 12, 12});
  conv2d_forward(input, weight, Tensor(), serial, spec);
  set_num_threads(4);
  Tensor parallel({6, 8, 12, 12});
  conv2d_forward(input, weight, Tensor(), parallel, spec);
  // Per-sample partition => bitwise identical results.
  for (std::int64_t i = 0; i < serial.numel(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]);
  }
}

}  // namespace
}  // namespace ullsnn
