#include <gtest/gtest.h>

#include "src/dnn/conv2d.h"
#include "src/dnn/linear.h"
#include "src/dnn/activations.h"
#include "src/dnn/sequential.h"
#include "src/energy/energy_model.h"
#include "src/energy/flops.h"
#include "src/energy/memory_model.h"
#include "src/energy/spike_monitor.h"
#include "src/obs/probe.h"
#include "src/snn/snn_network.h"
#include "src/tensor/random.h"

namespace ullsnn::energy {
namespace {

TEST(DnnFlopsTest, ConvAndLinearMacs) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(1.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(8 * 4 * 4, 10, false, rng);
  const FlopsReport r = count_dnn_flops(model, {1, 3, 4, 4});
  // Conv: 8*4*4*3*9 = 3456; Linear: 128*10 = 1280.
  EXPECT_DOUBLE_EQ(r.total_macs, 3456.0 + 1280.0);
  EXPECT_DOUBLE_EQ(r.total_acs, 0.0);
  ASSERT_EQ(r.layers.size(), 2U);  // activation/flatten contribute none
}

TEST(SnnFlopsTest, FirstLayerMacsRestAcs) {
  // Two spiking linears + readout; controlled spike rates.
  snn::IfConfig hot;
  hot.v_threshold = 0.5F;  // input current 1.0 => spikes every step
  auto net = std::make_unique<snn::SnnNetwork>(4);
  net->emplace<snn::SpikingLinear>(Tensor({8, 8}, 0.5F), hot, true);
  net->emplace<snn::SpikingLinear>(Tensor({4, 8}, 0.5F), hot, true);
  net->emplace<snn::SpikingLinear>(Tensor({2, 4}, 0.5F), snn::IfConfig{}, false);
  Tensor images({1, 8}, 2.0F);
  net->reset_stats();
  net->forward(images, false);
  const FlopsReport r = count_snn_flops(*net, {1, 8});
  ASSERT_EQ(r.layers.size(), 3U);
  // Layer 1 (direct encoding): dense MACs counted once = 64.
  EXPECT_DOUBLE_EQ(r.layers[0].macs, 64.0);
  EXPECT_DOUBLE_EQ(r.layers[0].acs, 0.0);
  // Layer 2: every input neuron spikes at every step -> rate 1.0.
  // ACs = 32 dense * 1.0 * 4 steps = 128.
  EXPECT_DOUBLE_EQ(r.layers[1].acs, 128.0);
  // Readout: inputs also all-spiking -> 8 * 4 = 32 ACs.
  EXPECT_DOUBLE_EQ(r.layers[2].acs, 32.0);
  EXPECT_DOUBLE_EQ(r.total_macs, 64.0);
}

TEST(SnnFlopsTest, SparseInputsScaleAcs) {
  snn::IfConfig cold;
  cold.v_threshold = 100.0F;  // first layer never spikes
  auto net = std::make_unique<snn::SnnNetwork>(2);
  net->emplace<snn::SpikingLinear>(Tensor({8, 8}, 0.1F), cold, true);
  net->emplace<snn::SpikingLinear>(Tensor({2, 8}, 0.1F), snn::IfConfig{}, false);
  net->reset_stats();
  net->forward(Tensor({1, 8}, 1.0F), false);
  const FlopsReport r = count_snn_flops(*net, {1, 8});
  // Second layer saw only zero inputs -> 0 ACs.
  EXPECT_DOUBLE_EQ(r.layers[1].acs, 0.0);
}

TEST(SnnFlopsTest, FirstLayerPerStepOption) {
  auto net = std::make_unique<snn::SnnNetwork>(3);
  net->emplace<snn::SpikingLinear>(Tensor({4, 4}, 0.1F), snn::IfConfig{}, true);
  net->reset_stats();
  net->forward(Tensor({1, 4}, 1.0F), false);
  const FlopsReport once = count_snn_flops(*net, {1, 4}, false);
  const FlopsReport per_step = count_snn_flops(*net, {1, 4}, true);
  EXPECT_DOUBLE_EQ(per_step.total_macs, 3.0 * once.total_macs);
}

TEST(EnergyModelTest, CmosConstants) {
  FlopsReport r;
  r.total_macs = 10.0;
  r.total_acs = 100.0;
  EXPECT_DOUBLE_EQ(compute_energy_pj(r), 10.0 * 3.2 + 100.0 * 0.1);
  const CmosConstants custom{1.0, 0.5};
  EXPECT_DOUBLE_EQ(compute_energy_pj(r, custom), 10.0 + 50.0);
}

TEST(EnergyModelTest, MacAcRatioIs32x) {
  // The headline ratio behind the paper's energy claims.
  const CmosConstants cmos;
  EXPECT_DOUBLE_EQ(cmos.e_mac_pj / cmos.e_ac_pj, 32.0);
}

TEST(EnergyModelTest, NeuromorphicComputeBound) {
  // FLOPs >> T: energy ~ FLOPs * E_compute (Sec. VI-B's argument).
  const double flops = 1e9;
  const double tn = neuromorphic_energy(flops, 2, kTrueNorth);
  EXPECT_NEAR(tn, flops * 0.4, flops * 1e-6);
  const double sp = neuromorphic_energy(flops, 2, kSpiNNaker);
  EXPECT_NEAR(sp, flops * 0.64, flops * 1e-6);
}

TEST(SpikeMonitorTest, MeasuresControlledRates) {
  snn::IfConfig hot;
  hot.v_threshold = 0.5F;
  auto net = std::make_unique<snn::SnnNetwork>(4);
  net->emplace<snn::SpikingLinear>(Tensor({4, 4}, 1.0F), hot, true);
  net->emplace<snn::SpikingLinear>(Tensor({2, 4}, 1.0F), snn::IfConfig{}, false);

  data::LabeledImages dataset;
  dataset.images = Tensor({6, 4}, 2.0F);  // always drives spikes
  dataset.labels = {0, 1, 0, 1, 0, 1};
  const ActivityReport report = measure_activity(*net, dataset, 3);
  ASSERT_EQ(report.layers.size(), 1U);
  EXPECT_EQ(report.samples, 6);
  // Every neuron spikes every step: 4 spikes per neuron per image.
  EXPECT_NEAR(report.layers[0].spikes_per_neuron, 4.0, 1e-9);
  EXPECT_NEAR(report.total_spikes_per_image, 4.0 * 4.0, 1e-9);
  EXPECT_NEAR(report.mean_spikes_per_neuron(), 4.0, 1e-9);
}

/// Fully hand-computable two-layer net: identity synapse into two IF neurons
/// (V_th = 1), then a [1, 1] readout. Input [0.6, 0.3] at T = 2 gives
/// membranes 0.6 -> 1.2 (one spike) and 0.3 -> 0.6 (none).
std::unique_ptr<snn::SnnNetwork> hand_net() {
  auto net = std::make_unique<snn::SnnNetwork>(2);
  net->emplace<snn::SpikingLinear>(Tensor({2, 2}, std::vector<float>{1, 0, 0, 1}),
                                   snn::IfConfig{}, true);
  net->emplace<snn::SpikingLinear>(Tensor({1, 2}, std::vector<float>{1, 1}),
                                   snn::IfConfig{}, false);
  return net;
}

data::LabeledImages hand_dataset() {
  data::LabeledImages dataset;
  dataset.images = Tensor({4, 2}, std::vector<float>{0.6F, 0.3F, 0.6F, 0.3F,
                                                     0.6F, 0.3F, 0.6F, 0.3F});
  dataset.labels = {0, 0, 0, 0};
  return dataset;
}

TEST(SpikeMonitorTest, HandComputedTwoLayerNetAtT2) {
  auto net = hand_net();
  const ActivityReport report = measure_activity(*net, hand_dataset(), 4);
  ASSERT_EQ(report.layers.size(), 1U);  // the readout has no neurons
  EXPECT_EQ(report.samples, 4);
  EXPECT_EQ(report.layers[0].neurons, 2);
  // 1 spike per image over 2 neurons.
  EXPECT_DOUBLE_EQ(report.layers[0].spikes_per_neuron, 0.5);
  EXPECT_DOUBLE_EQ(report.total_spikes_per_image, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_spikes_per_neuron(), 0.5);
  // Single output class: argmax is trivially the label.
  EXPECT_DOUBLE_EQ(report.accuracy, 1.0);
}

TEST(SnnFlopsTest, HandComputedAcsFromMeasuredRates) {
  auto net = hand_net();
  measure_activity(*net, hand_dataset(), 4);
  const FlopsReport r = count_snn_flops(*net, {1, 2});
  ASSERT_EQ(r.layers.size(), 2U);
  // First layer is direct-encoded: 2x2 dense MACs counted once.
  EXPECT_DOUBLE_EQ(r.layers[0].macs, 4.0);
  EXPECT_DOUBLE_EQ(r.layers[0].acs, 0.0);
  // Readout inputs: 1 nonzero of 4 per image (2 neurons x 2 steps), so
  // ACs = 2 dense * 0.25 * 2 steps = 1.
  EXPECT_DOUBLE_EQ(r.layers[1].acs, 1.0);
  EXPECT_DOUBLE_EQ(r.total_macs, 4.0);
  EXPECT_DOUBLE_EQ(r.total_acs, 1.0);
}

TEST(SpikeMonitorTest, AgreesWithRuntimeProbeExactly) {
  // The runtime probe and the activity report read the same layer counters;
  // their per-layer totals must be bit-identical, not merely close.
  Rng rng(7);
  auto net = std::make_unique<snn::SnnNetwork>(3);
  Tensor w1({16, 8});
  kaiming_normal(w1, 8, rng);
  net->emplace<snn::SpikingLinear>(std::move(w1), snn::IfConfig{}, true);
  Tensor w2({4, 16});
  kaiming_normal(w2, 16, rng);
  net->emplace<snn::SpikingLinear>(std::move(w2), snn::IfConfig{}, true);
  Tensor wr({2, 4});
  kaiming_normal(wr, 4, rng);
  net->emplace<snn::SpikingLinear>(std::move(wr), snn::IfConfig{}, false);

  data::LabeledImages dataset;
  dataset.images = Tensor({10, 8});
  uniform_fill(dataset.images, 0.0F, 1.0F, rng);
  dataset.labels.assign(10, 0);

  obs::SnnRuntimeProbe probe(*net);
  const ActivityReport report = measure_activity(*net, dataset, 4);

  const std::vector<obs::LayerSummary> summaries = probe.summaries();
  ASSERT_EQ(summaries.size(), report.layers.size());
  EXPECT_EQ(probe.samples(), report.samples);
  double probe_total_per_image = 0.0;
  for (std::size_t j = 0; j < summaries.size(); ++j) {
    EXPECT_EQ(summaries[j].name, report.layers[j].name);
    EXPECT_EQ(summaries[j].neurons, report.layers[j].neurons);
    const double per_neuron =
        static_cast<double>(summaries[j].spikes_total) /
        (static_cast<double>(report.samples) *
         static_cast<double>(summaries[j].neurons));
    EXPECT_DOUBLE_EQ(per_neuron, report.layers[j].spikes_per_neuron);
    probe_total_per_image += static_cast<double>(summaries[j].spikes_total) /
                             static_cast<double>(report.samples);
  }
  EXPECT_DOUBLE_EQ(probe_total_per_image, report.total_spikes_per_image);
}

TEST(MemoryModelTest, SnnTrainingScalesWithT) {
  auto make_net = [](std::int64_t t) {
    auto net = std::make_unique<snn::SnnNetwork>(t);
    net->emplace<snn::SpikingLinear>(Tensor({64, 64}, 0.1F), snn::IfConfig{}, true);
    net->emplace<snn::SpikingLinear>(Tensor({10, 64}, 0.1F), snn::IfConfig{}, false);
    return net;
  };
  auto net2 = make_net(2);
  auto net5 = make_net(5);
  // Populate neuron counts.
  net2->forward(Tensor({1, 64}, 0.0F), false);
  net5->forward(Tensor({1, 64}, 0.0F), false);
  const MemoryEstimate m2 = estimate_snn_training_memory(*net2, {1, 64}, 8, 2);
  const MemoryEstimate m5 = estimate_snn_training_memory(*net5, {1, 64}, 8, 5);
  EXPECT_DOUBLE_EQ(m2.params_mib, m5.params_mib);
  EXPECT_NEAR(m5.activations_mib / m2.activations_mib, 2.5, 1e-9);
  EXPECT_NEAR(m5.membranes_mib / m2.membranes_mib, 2.5, 1e-9);
}

TEST(MemoryModelTest, DnnTrainingCountsParamsThrice) {
  Rng rng(2);
  dnn::Sequential model;
  model.emplace<dnn::Linear>(256, 256, false, rng);
  const MemoryEstimate m = estimate_dnn_training_memory(model, {1, 256}, 1);
  const double param_mib = 256.0 * 256.0 * 4.0 / (1024.0 * 1024.0);
  EXPECT_NEAR(m.params_mib, 3.0 * param_mib, 1e-9);
  const MemoryEstimate inf = estimate_dnn_inference_memory(model, {1, 256}, 1);
  EXPECT_NEAR(inf.params_mib, param_mib, 1e-9);
  EXPECT_LT(inf.total_mib(), m.total_mib());
}

TEST(MemoryModelTest, BatchScalesActivationsOnly) {
  Rng rng(3);
  dnn::Sequential model;
  model.emplace<dnn::Linear>(64, 64, false, rng);
  const MemoryEstimate b1 = estimate_dnn_training_memory(model, {1, 64}, 1);
  const MemoryEstimate b8 = estimate_dnn_training_memory(model, {1, 64}, 8);
  EXPECT_DOUBLE_EQ(b1.params_mib, b8.params_mib);
  EXPECT_NEAR(b8.activations_mib / b1.activations_mib, 8.0, 1e-9);
}

}  // namespace
}  // namespace ullsnn::energy
