// Model-checking ModelRegistry hot-swap against a draining worker and a
// health-chaos thread: deploy(v2), active()-snapshot serving, and an
// unhealthy verdict race through exhaustive interleavings. Invariants:
// active() never hands out a null artifact once a version is live, snapshots
// stay valid (pinned) across a swap that retires their version, verdicts for
// non-active versions are inert, and the counters/history stay consistent
// with whichever of the two legal outcomes (swap sticks vs auto-rollback)
// the schedule produced.
//
// hook_test_points stays OFF here: registry methods hold mu_ across calls
// that reach ULLSNN_TEST_POINT sites, and parking a thread that holds a real
// mutex would wedge any body blocked on the same mutex (see the model rules
// in src/sched/sched.h). Explicit yield_point()s between operations are the
// decision points instead.
#include "src/artifact/model_registry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sched/sched.h"
#include "src/snn/snn_network.h"
#include "src/snn/spiking_layers.h"
#include "src/tensor/random.h"

namespace ullsnn::artifact {
namespace {

/// Same closed-form same-arch construction as tests/artifact/registry_test.cpp
/// (identity hidden layer, seed-perturbed so versions are distinguishable).
std::string pack_version(const char* name, std::uint64_t seed) {
  const std::string path = testing::TempDir() + "/" + name;
  Rng rng(seed);
  snn::SnnNetwork net(3);
  Tensor w1({4, 4});
  for (std::int64_t i = 0; i < 4; ++i) {
    w1.at(i, i) = 1.0F + 0.001F * static_cast<float>(seed % 7);
  }
  snn::IfConfig cfg;
  cfg.v_threshold = 1.0F;
  net.emplace<snn::SpikingLinear>(w1, cfg, /*with_neuron=*/true);
  Tensor w2({2, 4});
  for (std::int64_t i = 0; i < w2.numel(); ++i) {
    w2[i] = rng.uniform() * 0.5F - 0.25F;
  }
  net.emplace<snn::SpikingLinear>(w2, snn::IfConfig{}, /*with_neuron=*/false);
  PackOptions opt;
  opt.input_shape = {4};
  opt.probe_batch = 2;
  pack_network(net, path, opt);
  return path;
}

struct RegistryModel {
  explicit RegistryModel(const std::string& v1_path) {
    RegistryConfig cfg;
    cfg.verify_canary = false;  // canary replay is covered by artifact tests;
                                // here each interleaving re-deploys, so keep
                                // the per-run cost to load + arch gate + flip
    cfg.health_window = 4;
    cfg.health_failure_threshold = 1;
    registry = std::make_unique<ModelRegistry>(cfg);
    registry->deploy(v1_path);  // version 1 live before the race begins
  }

  std::unique_ptr<ModelRegistry> registry;
  std::uint64_t deployed_version = 0;
  std::vector<std::pair<std::uint64_t, std::string>> observed;  // (ver, path)
  std::vector<std::shared_ptr<const UllsnnArtifact>> pins;
  bool null_active = false;
};

sched::ModelRun make_registry_run(const std::string& v1_path,
                                  const std::string& v2_path) {
  auto m = std::make_shared<RegistryModel>(v1_path);
  sched::ModelRun run;

  run.bodies.push_back([m, v2_path] {  // deployer
    sched::yield_point("deploy");
    m->deployed_version = m->registry->deploy(v2_path);
    sched::yield_point("post-deploy");
    (void)m->registry->version();  // racing read; value checked in verify
  });
  run.bodies.push_back([m] {  // serving worker: snapshot, serve, report
    for (int i = 0; i < 3; ++i) {
      sched::yield_point("serve");
      const ModelRegistry::Snapshot snap = m->registry->active();
      if (snap.artifact == nullptr) {
        m->null_active = true;
        continue;
      }
      m->observed.emplace_back(snap.version, snap.artifact->path());
      m->pins.push_back(snap.artifact);  // held across any concurrent swap
      m->registry->record_batch_health(snap.version, /*healthy=*/true);
    }
  });
  run.bodies.push_back([m] {  // chaos: one unhealthy verdict aimed at v2
    sched::yield_point("chaos");
    m->registry->record_batch_health(/*version=*/2, /*healthy=*/false);
    sched::yield_point("observe");
    (void)m->registry->can_rollback();
  });

  run.verify = [m, v1_path, v2_path] {
    const auto fail = [](const std::string& why) {
      throw std::runtime_error("registry invariant: " + why);
    };
    if (m->null_active) fail("active() returned null after first deploy");
    if (m->deployed_version != 2) fail("deploy(v2) did not return version 2");

    // Two legal outcomes: the unhealthy verdict landed while v2 was active
    // and inside its watch window (auto-rollback to v1, version 3), or it
    // landed while v1 was still active and was ignored (v2 sticks).
    const std::uint64_t final_version = m->registry->version();
    if (final_version != 2 && final_version != 3) {
      fail("final version " + std::to_string(final_version));
    }
    const bool rolled_back = final_version == 3;
    const ModelRegistry::Snapshot final_snap = m->registry->active();
    if (final_snap.artifact == nullptr) fail("final active artifact null");
    if (final_snap.artifact->path() != (rolled_back ? v1_path : v2_path)) {
      fail("final active artifact does not match final version");
    }

    if (m->registry->deploys() != 2) fail("deploys != 2");
    if (m->registry->rejects() != 0) fail("unexpected reject");
    if (m->registry->rollbacks() != (rolled_back ? 1 : 0)) {
      fail("rollback count inconsistent with final version");
    }
    const auto history = m->registry->history();
    if (history.size() != static_cast<std::size_t>(2 + (rolled_back ? 1 : 0))) {
      fail("history size inconsistent with transitions");
    }
    if (rolled_back && history.back().event != "auto-rollback") {
      fail("rollback outcome without auto-rollback history entry");
    }

    // Every snapshot the worker served from was version-consistent, and the
    // pinned artifacts must still be readable even though the registry has
    // moved on (shared_ptr pins the mmap — no use-after-swap).
    for (std::size_t i = 0; i < m->observed.size(); ++i) {
      const auto& [ver, path] = m->observed[i];
      if (ver == 0 || ver > 3) fail("observed impossible version");
      const std::string& want = (ver == 2) ? v2_path : v1_path;
      if (path != want) fail("snapshot version/path mismatch");
      if (m->pins[i]->path() != path) fail("pinned artifact changed identity");
    }
  };
  return run;
}

TEST(RegistryModelTest, SwapDrainRollbackAcrossInterleavings) {
  const std::string v1 = pack_version("sched_registry_v1.art", 1);
  const std::string v2 = pack_version("sched_registry_v2.art", 2);

  sched::ExploreOptions opts;
  opts.max_exhaustive_runs = 1500;
  const sched::ExploreStats stats = sched::explore(
      [&] { return make_registry_run(v1, v2); }, opts);
  // deployer x3 + worker x4 + chaos x3 = 10 steps: 4200 interleavings.
  EXPECT_GE(stats.distinct, 1000) << "runs=" << stats.runs;
  EXPECT_EQ(stats.runs, stats.distinct);

  std::filesystem::remove(v1);
  std::filesystem::remove(v2);
}

}  // namespace
}  // namespace ullsnn::artifact
