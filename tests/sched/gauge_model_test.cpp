// Model-checking Gauge::add (the atomic_add_double CAS loop) through the
// "gauge.cas" test point between the expected-value read and the
// compare_exchange — the window where a concurrent add forces a retry. The
// sum must come out exact under every interleaving (no lost update), CAS
// retries must terminate, and a concurrent reader must observe a monotone
// sequence of partial sums.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sched/sched.h"

namespace ullsnn::obs {
namespace {

struct GaugeModel {
  Gauge gauge;
  std::vector<double> reads;
};

sched::ModelRun make_gauge_run() {
  auto m = std::make_shared<GaugeModel>();
  sched::ModelRun run;
  // Distinct powers of two per adder: every partial sum is a distinct
  // integer, and double arithmetic on them is exact.
  for (const double delta : {1.0, 2.0, 4.0}) {
    run.bodies.push_back([m, delta] {
      m->gauge.add(delta);
      m->gauge.add(delta);
    });
  }
  run.bodies.push_back([m] {  // concurrent reader
    for (int i = 0; i < 2; ++i) {
      sched::yield_point("read");
      m->reads.push_back(m->gauge.value());
    }
  });
  run.verify = [m] {
    // No lost update, ever: 2*(1+2+4) exactly.
    if (m->gauge.value() != 14.0) {
      throw std::runtime_error("lost update: gauge == " +
                               std::to_string(m->gauge.value()));
    }
    double prev = -1.0;
    for (const double r : m->reads) {
      if (r < 0.0 || r > 14.0 || r != std::floor(r)) {
        throw std::runtime_error("reader saw impossible partial sum " +
                                 std::to_string(r));
      }
      if (r < prev) {
        throw std::runtime_error("adds are all positive but reads regressed");
      }
      prev = r;
    }
  };
  return run;
}

TEST(GaugeModelTest, NoLostUpdatesAcrossInterleavings) {
  sched::ExploreOptions opts;
  opts.max_exhaustive_runs = 1500;
  opts.hook_test_points = true;  // park inside the CAS window itself
  const sched::ExploreStats stats = sched::explore(make_gauge_run, opts);
  EXPECT_GE(stats.distinct, 1000) << "runs=" << stats.runs;
  EXPECT_EQ(stats.runs, stats.distinct);
}

}  // namespace
}  // namespace ullsnn::obs
