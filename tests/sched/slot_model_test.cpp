// Model-checking ResponseSlot first-wins fulfillment: worker, watchdog, and
// batcher race to complete the same request under every interleaving —
// exactly one may win, on_first runs exactly once, and every observer
// (polling or blocking) sees the winner's response and nothing else.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "src/sched/sched.h"
#include "src/serve/request.h"

namespace ullsnn::serve {
namespace {

using namespace std::chrono_literals;

struct SlotModel {
  ResponseSlot slot{42, Clock::now(), Clock::now() + 1h};
  int on_first_calls = 0;
  std::vector<ResponseStatus> wins;      // statuses whose fulfill() won
  std::vector<ResponseStatus> observed;  // what the poller saw while racing
};

sched::ModelRun make_slot_run() {
  auto m = std::make_shared<SlotModel>();
  sched::ModelRun run;

  // The three parties that race in the real engine: the worker that ran the
  // batch, the watchdog that timed it out, the batcher that shed it.
  const ResponseStatus contenders[] = {
      ResponseStatus::kOk, ResponseStatus::kTimeout, ResponseStatus::kExpired};
  for (const ResponseStatus status : contenders) {
    run.bodies.push_back([m, status] {
      sched::yield_point("fulfill");
      InferResponse r;
      r.status = status;
      r.id = 42;
      const bool won =
          m->slot.fulfill(std::move(r), [m] { ++m->on_first_calls; });
      sched::yield_point("after-fulfill");
      if (won) m->wins.push_back(status);
    });
  }
  run.bodies.push_back([m] {  // client polling mid-race
    for (int i = 0; i < 2; ++i) {
      sched::yield_point("poll");
      InferResponse out;
      if (m->slot.wait_for(0ms, &out)) m->observed.push_back(out.status);
    }
  });

  run.verify = [m] {
    const auto fail = [](const std::string& why) {
      throw std::runtime_error("slot invariant: " + why);
    };
    if (m->wins.size() != 1) {
      fail(std::to_string(m->wins.size()) + " fulfillments won");
    }
    if (m->on_first_calls != 1) {
      fail("on_first ran " + std::to_string(m->on_first_calls) + " times");
    }
    if (!m->slot.done()) fail("slot not done after all fulfillers finished");
    // wait() after completion is non-blocking and must return the winner.
    if (m->slot.wait().status != m->wins[0]) {
      fail("stored response is not the winning fulfillment");
    }
    // A poll that observed completion must have seen the winner — a loser's
    // response is discarded, never visible, not even transiently.
    for (const ResponseStatus s : m->observed) {
      if (s != m->wins[0]) fail("poller observed a losing response");
    }
  };
  return run;
}

TEST(SlotModelTest, FirstWinsAcrossInterleavings) {
  sched::ExploreOptions opts;
  opts.max_exhaustive_runs = 1500;
  const sched::ExploreStats stats = sched::explore(make_slot_run, opts);
  // 3 fulfillers x 3 segments + poller x 3 = 12 steps: 369600 interleavings.
  EXPECT_GE(stats.distinct, 1000) << "runs=" << stats.runs;
  EXPECT_EQ(stats.runs, stats.distinct);
}

}  // namespace
}  // namespace ullsnn::serve
