// Model-checking ResponseSlot first-wins fulfillment: worker, watchdog, and
// batcher race to complete the same request under every interleaving —
// exactly one may win, on_first runs exactly once, and every observer
// (polling or blocking) sees the winner's response and nothing else.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "src/sched/sched.h"
#include "src/serve/request.h"

namespace ullsnn::serve {
namespace {

using namespace std::chrono_literals;

struct SlotModel {
  ResponseSlot slot{42, Clock::now(), Clock::now() + 1h};
  int on_first_calls = 0;
  std::vector<ResponseStatus> wins;      // statuses whose fulfill() won
  std::vector<ResponseStatus> observed;  // what the poller saw while racing
};

sched::ModelRun make_slot_run() {
  auto m = std::make_shared<SlotModel>();
  sched::ModelRun run;

  // The three parties that race in the real engine: the worker that ran the
  // batch, the watchdog that timed it out, the batcher that shed it.
  const ResponseStatus contenders[] = {
      ResponseStatus::kOk, ResponseStatus::kTimeout, ResponseStatus::kExpired};
  for (const ResponseStatus status : contenders) {
    run.bodies.push_back([m, status] {
      sched::yield_point("fulfill");
      InferResponse r;
      r.status = status;
      r.id = 42;
      const bool won =
          m->slot.fulfill(std::move(r), [m] { ++m->on_first_calls; });
      sched::yield_point("after-fulfill");
      if (won) m->wins.push_back(status);
    });
  }
  run.bodies.push_back([m] {  // client polling mid-race
    for (int i = 0; i < 2; ++i) {
      sched::yield_point("poll");
      InferResponse out;
      if (m->slot.wait_for(0ms, &out)) m->observed.push_back(out.status);
    }
  });

  run.verify = [m] {
    const auto fail = [](const std::string& why) {
      throw std::runtime_error("slot invariant: " + why);
    };
    if (m->wins.size() != 1) {
      fail(std::to_string(m->wins.size()) + " fulfillments won");
    }
    if (m->on_first_calls != 1) {
      fail("on_first ran " + std::to_string(m->on_first_calls) + " times");
    }
    if (!m->slot.done()) fail("slot not done after all fulfillers finished");
    // wait() after completion is non-blocking and must return the winner.
    if (m->slot.wait().status != m->wins[0]) {
      fail("stored response is not the winning fulfillment");
    }
    // A poll that observed completion must have seen the winner — a loser's
    // response is discarded, never visible, not even transiently.
    for (const ResponseStatus s : m->observed) {
      if (s != m->wins[0]) fail("poller observed a losing response");
    }
  };
  return run;
}

TEST(SlotModelTest, FirstWinsAcrossInterleavings) {
  sched::ExploreOptions opts;
  opts.max_exhaustive_runs = 1500;
  const sched::ExploreStats stats = sched::explore(make_slot_run, opts);
  // 3 fulfillers x 3 segments + poller x 3 = 12 steps: 369600 interleavings.
  EXPECT_GE(stats.distinct, 1000) << "runs=" << stats.runs;
  EXPECT_EQ(stats.runs, stats.distinct);
}

/// Shed-vs-fulfill conservation: the engine's count_terminal() runs inside
/// the winning fulfillment's critical section (the on_first callback), so
/// across any race between a worker's kOk, the batcher's CoDel kShed, and
/// the watchdog's kTimeout, exactly one terminal counter moves — and it is
/// the one matching the response the client actually receives.
struct LedgerModel {
  ResponseSlot slot{7, Clock::now(), Clock::now() + 1h};
  int counted[3] = {0, 0, 0};  // per-contender terminal tallies
  std::vector<ResponseStatus> wins;
};

sched::ModelRun make_ledger_run() {
  auto m = std::make_shared<LedgerModel>();
  sched::ModelRun run;

  const ResponseStatus contenders[] = {
      ResponseStatus::kOk, ResponseStatus::kShed, ResponseStatus::kTimeout};
  for (int c = 0; c < 3; ++c) {
    const ResponseStatus status = contenders[c];
    run.bodies.push_back([m, c, status] {
      sched::yield_point("fulfill");
      InferResponse r;
      r.status = status;
      r.id = 7;
      const bool won = m->slot.fulfill(std::move(r), [m, c] { ++m->counted[c]; });
      sched::yield_point("after-fulfill");
      if (won) m->wins.push_back(status);
    });
  }

  run.verify = [m] {
    const auto fail = [](const std::string& why) {
      throw std::runtime_error("ledger invariant: " + why);
    };
    if (m->wins.size() != 1) {
      fail(std::to_string(m->wins.size()) + " fulfillments won");
    }
    const int total = m->counted[0] + m->counted[1] + m->counted[2];
    if (total != 1) {
      fail("terminal counters moved " + std::to_string(total) + " times");
    }
    // The counter that moved must belong to the winning status — a loser
    // counting (then losing the race) is exactly the conservation hole
    // count_terminal-inside-on_first closes.
    const ResponseStatus contenders[] = {
        ResponseStatus::kOk, ResponseStatus::kShed, ResponseStatus::kTimeout};
    for (int c = 0; c < 3; ++c) {
      if (m->counted[c] == 1 && contenders[c] != m->wins[0]) {
        fail("a losing fulfillment was counted");
      }
    }
    if (m->slot.wait().status != m->wins[0]) {
      fail("client response is not the counted outcome");
    }
  };
  return run;
}

TEST(SlotModelTest, ShedVsFulfillRaceCountsExactlyOneTerminal) {
  sched::ExploreOptions opts;
  opts.max_exhaustive_runs = 500;
  const sched::ExploreStats stats = sched::explore(make_ledger_run, opts);
  // 3 fulfillers x 3 segments = 9 steps: 1680 interleavings; sampling floor.
  EXPECT_GE(stats.distinct, 300) << "runs=" << stats.runs;
  EXPECT_EQ(stats.runs, stats.distinct);
}

}  // namespace
}  // namespace ullsnn::serve
