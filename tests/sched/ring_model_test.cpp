// Model-checking the flight-recorder Ring through the ULLSNN_TEST_POINT
// markers compiled into push() and snapshot() themselves (hook_test_points):
// the scheduler preempts producers in the window between ticket reservation
// and slot acquisition — the exact window where wrap overwrites and
// snapshot-under-write races live. Invariants: snapshots never return a torn
// or invented record, never duplicate one, and (absent wrap) lose nothing
// and preserve ticket order.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "src/obs/ring.h"
#include "src/sched/sched.h"

namespace ullsnn::obs {
namespace {

// Producer p pushes {p*10+1, p*10+2}: globally unique, never zero (slots are
// zero-initialized, so a torn/unwritten read is distinguishable).
constexpr int kValid[] = {1, 2, 11, 12};

bool valid_value(int v) {
  return std::find(std::begin(kValid), std::end(kValid), v) != std::end(kValid);
}

void check_well_formed(const std::vector<int>& snap, const char* which) {
  std::set<int> uniq;
  for (int v : snap) {
    if (!valid_value(v)) {
      throw std::runtime_error(std::string(which) +
                               " snapshot returned torn/unwritten value " +
                               std::to_string(v));
    }
    if (!uniq.insert(v).second) {
      throw std::runtime_error(std::string(which) +
                               " snapshot duplicated value " +
                               std::to_string(v));
    }
  }
  // Per-producer ticket order: p's first push has the smaller ticket, and
  // snapshot walks tickets in ascending order.
  for (int p = 0; p < 2; ++p) {
    const auto first = std::find(snap.begin(), snap.end(), p * 10 + 1);
    const auto second = std::find(snap.begin(), snap.end(), p * 10 + 2);
    if (first != snap.end() && second != snap.end() && second < first) {
      throw std::runtime_error(std::string(which) +
                               " snapshot reordered a producer's records");
    }
  }
}

struct RingModel {
  explicit RingModel(std::size_t cap) : ring(cap) {}
  Ring<int> ring;
  std::vector<int> live;  // snapshot taken concurrently with the pushes
};

/// Two producers x two pushes plus a concurrent snapshotter. No explicit
/// yields in the producers: the "ring.push" test point inside Ring::push is
/// the decision point, sitting between fetch_add and test_and_set.
sched::ModelRun make_ring_run(std::size_t capacity, bool expect_no_loss) {
  auto m = std::make_shared<RingModel>(capacity);
  sched::ModelRun run;
  for (int p = 0; p < 2; ++p) {
    run.bodies.push_back([m, p] {
      m->ring.push(p * 10 + 1);
      m->ring.push(p * 10 + 2);
    });
  }
  run.bodies.push_back([m] {  // concurrent best-effort reader
    sched::yield_point("pre-snapshot");
    m->live = m->ring.snapshot();
  });
  run.verify = [m, expect_no_loss] {
    if (m->ring.total_pushed() != 4) {
      throw std::runtime_error("total_pushed != 4");
    }
    check_well_formed(m->live, "concurrent");
    // Post-quiescence snapshot (hook uninstalled by now; the test points are
    // inert again).
    const std::vector<int> final_snap = m->ring.snapshot();
    check_well_formed(final_snap, "final");
    if (final_snap.size() > m->ring.capacity()) {
      throw std::runtime_error("snapshot larger than capacity");
    }
    if (expect_no_loss && final_snap.size() != 4) {
      throw std::runtime_error("no-wrap final snapshot lost a record");
    }
  };
  return run;
}

TEST(RingModelTest, NoWrapLosesNothingAcrossInterleavings) {
  sched::ExploreOptions opts;
  opts.max_exhaustive_runs = 1500;
  opts.hook_test_points = true;
  const sched::ExploreStats stats = sched::explore(
      [] { return make_ring_run(/*capacity=*/4, /*expect_no_loss=*/true); },
      opts);
  EXPECT_GE(stats.distinct, 1000) << "runs=" << stats.runs;
  EXPECT_EQ(stats.runs, stats.distinct);
}

TEST(RingModelTest, WrapOverwritesSkipNeverTear) {
  // Capacity 2 with 4 pushes: producers collide on the same slot one lap
  // apart — the race the per-slot busy flag exists for. A record overwritten
  // by a newer ticket (or clobbered by a stale straggler that parked between
  // ticket reservation and slot write) is skipped by the ticket check; it
  // must never surface torn or duplicated. Loss is allowed by design here.
  sched::ExploreOptions opts;
  opts.max_exhaustive_runs = 1500;
  opts.hook_test_points = true;
  const sched::ExploreStats stats = sched::explore(
      [] { return make_ring_run(/*capacity=*/2, /*expect_no_loss=*/false); },
      opts);
  EXPECT_GE(stats.distinct, 1000) << "runs=" << stats.runs;
  EXPECT_EQ(stats.runs, stats.distinct);
}

}  // namespace
}  // namespace ullsnn::obs
