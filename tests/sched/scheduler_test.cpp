// Self-checks of the deterministic interleaving explorer: schedule string
// round-trips, determinism (same forced prefix => same interleaving), DFS
// distinctness, the wedged-body watchdog, and the core workflow the suite
// exists for — a seeded bug whose failing schedule replays from its string.
#include "src/sched/sched.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

namespace ullsnn::sched {
namespace {

TEST(ScheduleStringTest, FormatParseRoundTrip) {
  const std::vector<int> choices = {0, 2, 1, 0, 3};
  const std::string s = format_schedule(choices);
  EXPECT_EQ(s, "0.2.1.0.3");
  EXPECT_EQ(parse_schedule(s), choices);
  EXPECT_TRUE(format_schedule({}).empty());
  EXPECT_TRUE(parse_schedule("").empty());
  EXPECT_THROW(parse_schedule("0..1"), std::invalid_argument);
}

TEST(SplitMixTest, DeterministicStream) {
  std::uint64_t a = 42;
  std::uint64_t b = 42;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(splitmix64(a), splitmix64(b));
  }
  std::uint64_t c = 43;
  EXPECT_NE(splitmix64(c), [] {
    std::uint64_t d = 42;
    return splitmix64(d);
  }());
}

/// Two threads each append their id twice, yielding before every append.
/// The appended sequence is a pure function of the schedule.
struct AppendModel {
  std::shared_ptr<std::vector<int>> log = std::make_shared<std::vector<int>>();
  std::shared_ptr<std::mutex> mu = std::make_shared<std::mutex>();

  std::vector<std::function<void()>> bodies() {
    std::vector<std::function<void()>> out;
    for (int id = 0; id < 2; ++id) {
      out.push_back([log = log, mu = mu, id] {
        for (int i = 0; i < 2; ++i) {
          yield_point("append");
          std::lock_guard<std::mutex> lock(*mu);
          log->push_back(id);
        }
      });
    }
    return out;
  }
};

TEST(SchedulerTest, SameScheduleSameInterleaving) {
  AppendModel first;
  RunOptions opts;
  opts.random_fallback = true;
  opts.seed = 7;
  const RunResult r1 = Scheduler::run(first.bodies(), opts);
  ASSERT_TRUE(r1.completed);

  AppendModel second;
  RunOptions replay_opts;
  replay_opts.forced = r1.choices;
  const RunResult r2 = Scheduler::run(second.bodies(), replay_opts);
  ASSERT_TRUE(r2.completed);

  EXPECT_EQ(r1.schedule, r2.schedule);
  EXPECT_EQ(*first.log, *second.log) << "schedule " << r1.schedule
                                     << " must determine the interleaving";
}

TEST(SchedulerTest, LeftmostScheduleRunsThreadsInOrder) {
  AppendModel model;
  const RunResult r = Scheduler::run(model.bodies(), {});
  ASSERT_TRUE(r.completed);
  // Leftmost always picks runnable thread 0 first: thread 0 finishes both
  // appends before thread 1 runs at all.
  EXPECT_EQ(*model.log, (std::vector<int>{0, 0, 1, 1}));
  for (int c : r.choices) EXPECT_EQ(c, 0);
}

TEST(ExploreTest, ExhaustsSmallTreeWithDistinctSchedules) {
  // 2 threads x 3 segments each: C(6,3)^... = 6!/(3!*3!) = 20 interleavings.
  std::int64_t total_appends = 0;
  const auto make = [&] {
    auto model = std::make_shared<AppendModel>();
    ModelRun run;
    run.bodies = model->bodies();
    run.verify = [model, &total_appends] {
      if (model->log->size() != 4) throw std::runtime_error("lost append");
      total_appends += static_cast<std::int64_t>(model->log->size());
    };
    return run;
  };
  const ExploreStats stats = explore(make, {});
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.runs, stats.distinct) << "DFS must never repeat a schedule";
  // Interleavings of two 2-segment threads... each body has 2 yield points,
  // so segments per thread = 2 (yield starts a segment) + the start grant.
  EXPECT_GE(stats.distinct, 6);
  EXPECT_EQ(total_appends, stats.runs * 4);
}

TEST(ExploreTest, RandomTailAddsRunsWithoutFailures) {
  const auto make = [] {
    auto model = std::make_shared<AppendModel>();
    ModelRun run;
    run.bodies = model->bodies();
    run.verify = [model] {
      if (model->log->size() != 4) throw std::runtime_error("lost append");
    };
    return run;
  };
  ExploreOptions opts;
  opts.max_exhaustive_runs = 5;  // deliberately smaller than the tree
  opts.random_runs = 10;
  const ExploreStats stats = explore(make, opts);
  EXPECT_FALSE(stats.exhausted);
  EXPECT_EQ(stats.runs, 15);
  EXPECT_GE(stats.distinct, 5);
}

/// The reason this harness exists: a deliberately racy counter (read, yield,
/// write back — the classic lost update). Exploration must find a failing
/// interleaving, report its schedule, and the schedule alone must reproduce
/// the exact failure on a fresh instance.
struct RacyCounterModel {
  std::shared_ptr<int> value = std::make_shared<int>(0);

  ModelRun run() {
    ModelRun r;
    for (int t = 0; t < 2; ++t) {
      r.bodies.push_back([value = value] {
        yield_point("load");
        const int seen = *value;  // racy read
        yield_point("store");
        *value = seen + 1;  // racy read-modify-write
      });
    }
    r.verify = [value = value] {
      if (*value != 2) {
        throw std::runtime_error("lost update: counter == " +
                                 std::to_string(*value));
      }
    };
    return r;
  }
};

TEST(ExploreTest, FindsSeededRaceAndReportsSchedule) {
  std::string failing_schedule;
  try {
    explore([] { return RacyCounterModel{}.run(); }, {});
    FAIL() << "exploration must find the lost update";
  } catch (const ScheduleFailure& e) {
    failing_schedule = e.schedule();
    EXPECT_NE(std::string(e.what()).find("lost update"), std::string::npos);
  }
  ASSERT_FALSE(failing_schedule.empty());

  // The printed schedule is a deterministic reproduction...
  try {
    replay(RacyCounterModel{}.run(), failing_schedule);
    FAIL() << "replaying the failing schedule must reproduce the failure";
  } catch (const ScheduleFailure& e) {
    EXPECT_EQ(e.schedule(), failing_schedule);
    EXPECT_NE(std::string(e.what()).find("lost update"), std::string::npos);
  }

  // ...while a serial schedule (leftmost: thread 0 runs to completion first)
  // passes on the same model.
  EXPECT_NO_THROW(replay(RacyCounterModel{}.run(), "0.0.0.0.0.0"));
}

TEST(SchedulerTest, WedgedBodyIsDiagnosedNotHung) {
  // A body that blocks on a condition variable nobody signals violates the
  // non-blocking model rule; the watchdog must abort the run with a
  // diagnostic instead of hanging the suite.
  auto mu = std::make_shared<std::mutex>();
  auto cv = std::make_shared<std::condition_variable>();
  auto release = std::make_shared<bool>(false);
  std::vector<std::function<void()>> bodies;
  bodies.push_back([=] {
    std::unique_lock<std::mutex> lock(*mu);
    cv->wait(lock, [&] { return *release; });
  });
  // Thread 1 is the rescuer: it only runs during free-run teardown (the
  // leftmost scheduler wedges on thread 0 first), and unblocks thread 0 so
  // Scheduler::run can join both threads and return.
  bodies.push_back([=] {
    yield_point("rescue");
    {
      std::lock_guard<std::mutex> lock(*mu);
      *release = true;
    }
    cv->notify_all();
  });

  RunOptions opts;
  opts.grant_timeout = std::chrono::milliseconds(200);
  const RunResult r = Scheduler::run(std::move(bodies), opts);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("decision point"), std::string::npos);
}

TEST(SchedulerTest, TestPointHookRoutesOnlyWhenEnabled) {
  // With hooks off, ULLSNN_TEST_POINT must not create decision points.
  auto count_steps = [](bool hook) {
    std::vector<std::function<void()>> bodies;
    for (int t = 0; t < 2; ++t) {
      bodies.push_back([] { ULLSNN_TEST_POINT("probe"); });
    }
    RunOptions opts;
    opts.hook_test_points = hook;
    const RunResult r = Scheduler::run(std::move(bodies), opts);
    EXPECT_TRUE(r.completed);
    return r.choices.size();
  };
  const std::size_t with_hook = count_steps(true);
  const std::size_t without_hook = count_steps(false);
  EXPECT_GT(with_hook, without_hook);
  EXPECT_EQ(g_test_point.load(), nullptr) << "hook must be uninstalled";
}

}  // namespace
}  // namespace ullsnn::sched
