// Model-checking BoundedQueue: two producers, a consumer, and a closer race
// through exhaustively enumerated interleavings; every schedule must preserve
// conservation (each accepted item is popped exactly once, rejected items
// never appear), per-producer FIFO order, and the capacity/peak-depth bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "src/sched/sched.h"
#include "src/serve/bounded_queue.h"

namespace ullsnn::serve {
namespace {

struct QueueModel {
  BoundedQueue<int> queue{2};
  // Per-producer outcome logs; bodies are serialized by the scheduler, so
  // plain containers are safe as long as they are only touched between
  // decision points (always true for straight-line segment code).
  std::array<std::vector<int>, 2> accepted;
  std::array<std::vector<AdmitError>, 2> refusals;
  std::vector<int> popped;
};

sched::ModelRun make_queue_run() {
  auto m = std::make_shared<QueueModel>();
  sched::ModelRun run;

  for (int p = 0; p < 2; ++p) {
    run.bodies.push_back([m, p] {
      for (int v : {p * 10 + 1, p * 10 + 2}) {
        sched::yield_point("producer");
        int item = v;
        const AdmitError err = m->queue.try_push(std::move(item));
        if (err == AdmitError::kNone) {
          m->accepted[static_cast<std::size_t>(p)].push_back(v);
        } else {
          m->refusals[static_cast<std::size_t>(p)].push_back(err);
        }
      }
    });
  }
  run.bodies.push_back([m] {  // consumer
    for (int i = 0; i < 4; ++i) {
      sched::yield_point("consumer");
      int out = 0;
      if (m->queue.try_pop(&out)) m->popped.push_back(out);
    }
  });
  run.bodies.push_back([m] {  // closer: races shutdown against admission
    sched::yield_point("closer");
    m->queue.close();
  });

  run.verify = [m] {
    const auto fail = [](const std::string& why) {
      throw std::runtime_error("queue invariant: " + why);
    };
    if (m->queue.peak_depth() > m->queue.capacity()) {
      fail("peak depth exceeded capacity");
    }
    if (!m->queue.closed()) fail("closer ran but queue is not closed");

    // Drain the remainder: close() keeps queued items poppable.
    std::vector<int> seen = m->popped;
    int out = 0;
    while (m->queue.try_pop(&out)) seen.push_back(out);
    if (m->queue.depth() != 0) fail("depth non-zero after full drain");

    // Conservation: accepted items, each exactly once, nothing else.
    std::vector<int> want;
    for (const auto& acc : m->accepted) {
      want.insert(want.end(), acc.begin(), acc.end());
    }
    std::vector<int> got = seen;
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    if (got != want) fail("popped+drained multiset != accepted multiset");

    // Per-producer FIFO: a producer's second item never overtakes its first.
    for (int p = 0; p < 2; ++p) {
      const auto first = std::find(seen.begin(), seen.end(), p * 10 + 1);
      const auto second = std::find(seen.begin(), seen.end(), p * 10 + 2);
      if (second != seen.end() && first != seen.end() && second < first) {
        fail("producer " + std::to_string(p) + " items reordered");
      }
    }

    // Refusals are only ever kFull (capacity) or kClosed (after close()).
    for (const auto& refs : m->refusals) {
      for (AdmitError e : refs) {
        if (e == AdmitError::kNone) fail("kNone recorded as a refusal");
      }
    }
  };
  return run;
}

TEST(QueueModelTest, ConservationAcrossInterleavings) {
  sched::ExploreOptions opts;
  opts.max_exhaustive_runs = 1500;
  const sched::ExploreStats stats = sched::explore(make_queue_run, opts);
  // 2 producers x 3 segments, consumer x 5, closer x 2: thousands of
  // interleavings; the DFS prefix alone must cover >= 1000 distinct ones.
  EXPECT_GE(stats.distinct, 1000) << "runs=" << stats.runs;
  EXPECT_EQ(stats.runs, stats.distinct) << "DFS schedules must be distinct";
}

}  // namespace
}  // namespace ullsnn::serve
