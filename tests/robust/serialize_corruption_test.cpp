// Fuzz-style corruption tests for the checkpoint serializer: every single
// corrupted byte, every truncation point, and every oversized header field
// must produce a clean std::runtime_error — never a crash, an allocation
// bomb, or silently wrong tensors.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "src/robust/fault_injector.h"
#include "src/util/serialize.h"

namespace ullsnn {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TensorDict sample_dict() {
  TensorDict dict;
  dict["weight"] = Tensor({3, 4}, 0.25F);
  Tensor ramp({7});
  for (std::int64_t i = 0; i < ramp.numel(); ++i) ramp[i] = static_cast<float>(i);
  dict["ramp"] = ramp;
  return dict;
}

TEST(SerializeCorruptionTest, EverySingleByteFlipIsRejected) {
  const std::string path = temp_path("ullsnn_fuzz_byteflip.bin");
  save_tensors(sample_dict(), path);
  const std::vector<char> pristine = read_file(path);
  ASSERT_GT(pristine.size(), 20U);
  for (std::size_t offset = 0; offset < pristine.size(); ++offset) {
    std::vector<char> bytes = pristine;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x04);
    write_file(path, bytes);
    EXPECT_THROW(load_tensors(path), std::runtime_error)
        << "corrupted byte at offset " << offset << " was accepted";
  }
  // Sanity: the pristine bytes still load.
  write_file(path, pristine);
  EXPECT_EQ(load_tensors(path).size(), 2U);
  std::filesystem::remove(path);
}

TEST(SerializeCorruptionTest, EveryTruncationPointIsRejected) {
  const std::string path = temp_path("ullsnn_fuzz_trunc.bin");
  save_tensors(sample_dict(), path);
  const std::vector<char> pristine = read_file(path);
  for (std::size_t keep = 0; keep < pristine.size(); ++keep) {
    write_file(path, {pristine.begin(), pristine.begin() + static_cast<long>(keep)});
    EXPECT_THROW(load_tensors(path), std::runtime_error)
        << "file truncated to " << keep << " bytes was accepted";
  }
  std::filesystem::remove(path);
}

TEST(SerializeCorruptionTest, TrailingGarbageIsRejected) {
  const std::string path = temp_path("ullsnn_fuzz_trailing.bin");
  save_tensors(sample_dict(), path);
  std::vector<char> bytes = read_file(path);
  bytes.push_back('x');
  write_file(path, bytes);
  EXPECT_THROW(load_tensors(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SerializeCorruptionTest, RandomByteCorruptionViaInjectorIsRejected) {
  const std::string path = temp_path("ullsnn_fuzz_injector.bin");
  save_tensors(sample_dict(), path);
  const std::vector<char> pristine = read_file(path);
  robust::FaultInjector injector(robust::FaultSpec{.seed = 7});
  for (int trial = 0; trial < 64; ++trial) {
    write_file(path, pristine);
    injector.corrupt_random_byte(path);
    EXPECT_THROW(load_tensors(path), std::runtime_error) << "trial " << trial;
  }
  std::filesystem::remove(path);
}

// ---- hand-crafted files: v1 deprecation and hardened field bounds ----

template <typename T>
void append_pod(std::vector<char>& buf, const T& v) {
  const char* p = reinterpret_cast<const char*>(&v);
  buf.insert(buf.end(), p, p + sizeof v);
}

/// Wrap a (possibly malformed) payload in a valid v2 envelope: correct magic,
/// version, CRC, and payload size. The CRC gate passes, so the payload bounds
/// checks themselves are what must reject the file.
std::vector<char> v2_file(const std::vector<char>& payload) {
  std::vector<char> buf = {'U', 'L', 'S', 'N'};
  append_pod(buf, std::uint32_t{2});
  append_pod(buf, crc32(payload.data(), payload.size()));
  append_pod(buf, static_cast<std::uint64_t>(payload.size()));
  buf.insert(buf.end(), payload.begin(), payload.end());
  return buf;
}

TEST(SerializeCorruptionTest, V1FilesAreRejectedAsDeprecated) {
  // A well-formed v1 file (magic, version 1, one valid tensor, no CRC): the
  // loader must refuse it with a message that says how to upgrade, because a
  // CRC-less checkpoint can hide silent corruption.
  std::vector<char> buf = {'U', 'L', 'S', 'N'};
  append_pod(buf, std::uint32_t{1});
  append_pod(buf, std::uint64_t{1});  // count
  append_pod(buf, std::uint32_t{1});  // name_len
  buf.push_back('w');
  append_pod(buf, std::uint32_t{2});  // rank
  append_pod(buf, std::int64_t{1});
  append_pod(buf, std::int64_t{3});
  for (float v : {1.0F, 2.0F, 3.0F}) append_pod(buf, v);
  const std::string path = temp_path("ullsnn_v1_deprecated.bin");
  write_file(path, buf);
  try {
    load_tensors(path);
    FAIL() << "deprecated v1 checkpoint was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("deprecated"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("v1"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(SerializeCorruptionTest, OversizedNameLenIsRejected) {
  std::vector<char> payload;
  append_pod(payload, std::uint64_t{1});
  append_pod(payload, std::uint32_t{0xFFFFFFFF});  // absurd name_len
  const std::string path = temp_path("ullsnn_v2_badname.bin");
  write_file(path, v2_file(payload));
  EXPECT_THROW(load_tensors(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SerializeCorruptionTest, OversizedRankIsRejected) {
  std::vector<char> payload;
  append_pod(payload, std::uint64_t{1});
  append_pod(payload, std::uint32_t{1});
  payload.push_back('w');
  append_pod(payload, std::uint32_t{1000000});  // absurd rank
  const std::string path = temp_path("ullsnn_v2_badrank.bin");
  write_file(path, v2_file(payload));
  EXPECT_THROW(load_tensors(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SerializeCorruptionTest, NegativeDimIsRejected) {
  std::vector<char> payload;
  append_pod(payload, std::uint64_t{1});
  append_pod(payload, std::uint32_t{1});
  payload.push_back('w');
  append_pod(payload, std::uint32_t{1});
  append_pod(payload, std::int64_t{-4});
  const std::string path = temp_path("ullsnn_v2_negdim.bin");
  write_file(path, v2_file(payload));
  EXPECT_THROW(load_tensors(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SerializeCorruptionTest, HugeElementCountIsRejectedBeforeAllocating) {
  // Claims a ~4 exabyte tensor in a tiny file: must throw a runtime_error
  // from the bounds check, not bad_alloc from attempting the allocation.
  std::vector<char> payload;
  append_pod(payload, std::uint64_t{1});
  append_pod(payload, std::uint32_t{1});
  payload.push_back('w');
  append_pod(payload, std::uint32_t{2});
  append_pod(payload, std::int64_t{1LL << 30});
  append_pod(payload, std::int64_t{1LL << 30});
  const std::string path = temp_path("ullsnn_v2_hugedim.bin");
  write_file(path, v2_file(payload));
  EXPECT_THROW(load_tensors(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SerializeCorruptionTest, AtomicSaveLeavesNoTempFile) {
  const std::string path = temp_path("ullsnn_atomic.bin");
  save_tensors(sample_dict(), path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(SerializeCorruptionTest, Crc32KnownVector) {
  // The classic IEEE 802.3 check value.
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926U);
  EXPECT_EQ(crc32(nullptr, 0), 0U);
}

}  // namespace
}  // namespace ullsnn
