// Resume determinism: a training run interrupted mid-stage and resumed from
// its epoch checkpoint must be bitwise-identical to an uninterrupted run,
// and a pipeline resumed from a completed stage must reproduce the
// uninterrupted PipelineResult exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/core/pipeline.h"
#include "src/data/dataset.h"
#include "src/data/synthetic_cifar.h"
#include "src/dnn/activations.h"
#include "src/dnn/linear.h"
#include "src/dnn/sequential.h"
#include "src/dnn/trainer.h"
#include "src/robust/checkpoint.h"

namespace ullsnn::robust {
namespace {

data::LabeledImages easy_data(std::int64_t n, std::uint64_t salt,
                              std::int64_t image_size = 8) {
  data::SyntheticCifarSpec spec;
  spec.image_size = image_size;
  spec.num_classes = 3;
  spec.sign_flip_prob = 0.0F;
  spec.occluder_prob = 0.0F;
  spec.noise_stddev = 0.15F;
  data::SyntheticCifar gen(spec);
  data::LabeledImages d = gen.generate(n, salt);
  data::standardize(d);
  return d;
}

std::uint32_t float_bits(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, 4);
  return bits;
}

void expect_params_bitwise_equal(dnn::Sequential& a, dnn::Sequential& b) {
  const std::vector<dnn::Param*> pa = a.params();
  const std::vector<dnn::Param*> pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel()) << pa[i]->name;
    for (std::int64_t j = 0; j < pa[i]->value.numel(); ++j) {
      ASSERT_EQ(float_bits(pa[i]->value[j]), float_bits(pb[i]->value[j]))
          << pa[i]->name << "[" << j << "]";
    }
  }
}

std::unique_ptr<dnn::Sequential> make_model() {
  auto model = std::make_unique<dnn::Sequential>();
  Rng rng(5);
  model->emplace<dnn::Flatten>();
  model->emplace<dnn::Linear>(3 * 8 * 8, 3, /*bias=*/true, rng);
  return model;
}

dnn::TrainConfig make_train_config() {
  dnn::TrainConfig config;
  config.epochs = 6;
  config.batch_size = 16;
  config.lr = 0.05F;
  config.augment = true;  // augmentation consumes the RNG: the hard case
  return config;
}

TEST(TrainerResumeTest, InterruptedRunResumesBitwiseIdentically) {
  const data::LabeledImages train = easy_data(96, 1);
  const std::string ckpt = testing::TempDir() + "/ullsnn_trainer_resume.ckpt";
  std::filesystem::remove(ckpt);

  // Reference: 6 uninterrupted epochs, no checkpointing.
  auto ref_model = make_model();
  dnn::DnnTrainer ref_trainer(*ref_model, make_train_config());
  ref_trainer.fit(train);

  // Interrupted run: the epoch hook kills the process stand-in (throws) at
  // the top of epoch 3, after epochs 0-2 were checkpointed.
  auto model = make_model();
  {
    dnn::DnnTrainer trainer(*model, make_train_config());
    TrainCheckpointer checkpointer(ckpt);
    trainer.set_epoch_hook([](std::int64_t epoch) {
      if (epoch == 3) throw std::runtime_error("simulated crash");
    });
    EXPECT_THROW(trainer.fit(train, nullptr, &checkpointer), std::runtime_error);
  }
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  // Resume in a fresh trainer (fresh RNG, fresh momentum — everything must
  // come from the checkpoint) and finish the remaining epochs.
  dnn::DnnTrainer resumed(*model, make_train_config());
  TrainCheckpointer checkpointer(ckpt);
  const std::vector<dnn::EpochStats> history =
      resumed.fit(train, nullptr, &checkpointer);
  // Only epochs 3..5 were run after the resume.
  EXPECT_EQ(history.size(), 3U);
  EXPECT_EQ(history.front().epoch, 3);

  expect_params_bitwise_equal(*model, *ref_model);
  std::filesystem::remove(ckpt);
}

TEST(TrainerResumeTest, CheckpointerRestoreRejectsMismatchedModel) {
  const data::LabeledImages train = easy_data(48, 1);
  const std::string ckpt = testing::TempDir() + "/ullsnn_mismatch.ckpt";
  std::filesystem::remove(ckpt);
  auto model = make_model();
  dnn::TrainConfig config = make_train_config();
  config.epochs = 1;
  dnn::DnnTrainer trainer(*model, config);
  TrainCheckpointer checkpointer(ckpt);
  trainer.fit(train, nullptr, &checkpointer);

  // A differently-shaped model must not half-load the checkpoint.
  dnn::Sequential other;
  Rng rng(9);
  other.emplace<dnn::Flatten>();
  other.emplace<dnn::Linear>(3 * 8 * 8, 5, /*bias=*/true, rng);
  dnn::DnnTrainer other_trainer(other, config);
  EXPECT_THROW(other_trainer.fit(train, nullptr, &checkpointer),
               std::runtime_error);
  std::filesystem::remove(ckpt);
}

// ---- pipeline stage-level resume ----

core::PipelineConfig tiny_pipeline_config() {
  core::PipelineConfig config;
  config.arch = core::Architecture::kVgg11;
  config.model.width = 0.0625F;
  config.model.num_classes = 3;
  config.model.image_size = 32;
  config.dnn_train.epochs = 4;
  config.dnn_train.batch_size = 32;
  config.dnn_train.augment = false;
  config.conversion.time_steps = 2;
  config.sgl.epochs = 2;
  config.sgl.augment = false;
  return config;
}

TEST(PipelineResumeTest, StageResumeReproducesUninterruptedResult) {
  const data::LabeledImages train = easy_data(128, 1, /*image_size=*/32);
  const data::LabeledImages test = easy_data(32, 2, /*image_size=*/32);
  const std::string dir = testing::TempDir() + "/ullsnn_pipeline_resume";
  std::filesystem::remove_all(dir);

  // Run A: full checkpointed run.
  core::PipelineConfig config = tiny_pipeline_config();
  config.checkpoint.enabled = true;
  config.checkpoint.dir = dir;
  core::HybridPipeline pipeline_a(config);
  const core::PipelineResult a = pipeline_a.run(train, test);
  ASSERT_TRUE(std::filesystem::exists(manifest_path(dir)));

  // Simulate an interrupt after stage (a): rewind the manifest so stages (b)
  // and (c) appear never to have happened. Their stale artifacts on disk must
  // be ignored and overwritten.
  PipelineManifest manifest = load_manifest(manifest_path(dir));
  EXPECT_EQ(manifest.stage_completed, 3);
  manifest.stage_completed = 1;
  save_manifest(manifest, manifest_path(dir));

  // Run B resumes: skips stage (a) by loading its weights, reruns (b) + (c).
  core::HybridPipeline pipeline_b(config);
  const core::PipelineResult b = pipeline_b.run(train, test);
  EXPECT_EQ(b.dnn_accuracy, a.dnn_accuracy);
  EXPECT_EQ(b.converted_accuracy, a.converted_accuracy);
  EXPECT_EQ(b.sgl_accuracy, a.sgl_accuracy);
  EXPECT_EQ(b.conversion_report.sites.size(), a.conversion_report.sites.size());

  // Run C: no checkpointing at all — enabling checkpoints must not have
  // changed the computation.
  core::PipelineConfig plain = tiny_pipeline_config();
  core::HybridPipeline pipeline_c(plain);
  const core::PipelineResult c = pipeline_c.run(train, test);
  EXPECT_EQ(c.dnn_accuracy, a.dnn_accuracy);
  EXPECT_EQ(c.converted_accuracy, a.converted_accuracy);
  EXPECT_EQ(c.sgl_accuracy, a.sgl_accuracy);

  // And the resumed pipeline's final SNN weights match the uninterrupted ones.
  const std::vector<dnn::Param*> pa = pipeline_a.snn().params();
  const std::vector<dnn::Param*> pb = pipeline_b.snn().params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t j = 0; j < pa[i]->value.numel(); ++j) {
      ASSERT_EQ(float_bits(pa[i]->value[j]), float_bits(pb[i]->value[j]))
          << pa[i]->name << "[" << j << "]";
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(PipelineResumeTest, FullyCompletedRunIsServedFromCheckpoints) {
  const data::LabeledImages train = easy_data(96, 1, /*image_size=*/32);
  const data::LabeledImages test = easy_data(24, 2, /*image_size=*/32);
  const std::string dir = testing::TempDir() + "/ullsnn_pipeline_done";
  std::filesystem::remove_all(dir);
  core::PipelineConfig config = tiny_pipeline_config();
  config.dnn_train.epochs = 2;
  config.sgl.epochs = 1;
  config.checkpoint.enabled = true;
  config.checkpoint.dir = dir;
  core::HybridPipeline first(config);
  const core::PipelineResult a = first.run(train, test);
  // Second run: every stage is already complete, so no training happens and
  // the recorded metrics are replayed verbatim.
  core::HybridPipeline second(config);
  const core::PipelineResult b = second.run(train, test);
  EXPECT_EQ(b.dnn_accuracy, a.dnn_accuracy);
  EXPECT_EQ(b.converted_accuracy, a.converted_accuracy);
  EXPECT_EQ(b.sgl_accuracy, a.sgl_accuracy);
  EXPECT_EQ(b.dnn_train_seconds, a.dnn_train_seconds);
  EXPECT_EQ(b.sgl_train_seconds, a.sgl_train_seconds);
  std::filesystem::remove_all(dir);
}

TEST(ManifestTest, RoundTripIsExact) {
  const std::string path = testing::TempDir() + "/ullsnn_manifest.bin";
  PipelineManifest m;
  m.stage_completed = 2;
  m.dnn_accuracy = 0.912345678901234;
  m.converted_accuracy = 0.75;
  m.sgl_accuracy = 0.875;
  m.dnn_train_seconds = 123.456789;
  m.sgl_train_seconds = 0.015625;
  save_manifest(m, path);
  const PipelineManifest r = load_manifest(path);
  EXPECT_EQ(r.stage_completed, m.stage_completed);
  EXPECT_EQ(r.dnn_accuracy, m.dnn_accuracy);
  EXPECT_EQ(r.converted_accuracy, m.converted_accuracy);
  EXPECT_EQ(r.sgl_accuracy, m.sgl_accuracy);
  EXPECT_EQ(r.dnn_train_seconds, m.dnn_train_seconds);
  EXPECT_EQ(r.sgl_train_seconds, m.sgl_train_seconds);
  std::filesystem::remove(path);
}

TEST(ManifestTest, MissingFileThrows) {
  EXPECT_THROW(load_manifest(testing::TempDir() + "/ullsnn_no_such_manifest.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace ullsnn::robust
