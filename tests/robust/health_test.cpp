// HealthMonitor unit tests plus end-to-end guard behaviour: a NaN poisoned
// into the weights mid-run must abort under kThrow and be rolled back and
// survived under kRollback.
#include "src/robust/health.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "src/data/dataset.h"
#include "src/data/synthetic_cifar.h"
#include "src/dnn/activations.h"
#include "src/dnn/linear.h"
#include "src/dnn/sequential.h"
#include "src/dnn/trainer.h"

namespace ullsnn::robust {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

TEST(HealthReportTest, ScanCountsFaultKinds) {
  HealthMonitor monitor(GuardConfig{.policy = GuardPolicy::kWarn,
                                    .explosion_threshold = 100.0F});
  Tensor t({6});
  t[0] = 1.0F;
  t[1] = kNan;
  t[2] = kInf;
  t[3] = -kInf;
  t[4] = 250.0F;  // finite but beyond the explosion threshold
  t[5] = -2.0F;
  HealthReport report;
  monitor.scan_tensor("w.value", t, report);
  EXPECT_EQ(report.nan_count, 1);
  EXPECT_EQ(report.inf_count, 2);
  EXPECT_EQ(report.exploded_count, 1);
  EXPECT_FLOAT_EQ(report.max_abs, 250.0F);
  EXPECT_EQ(report.worst, "w.value");
  EXPECT_FALSE(report.healthy());
  EXPECT_NE(report.describe().find("NaN"), std::string::npos);
}

TEST(HealthReportTest, HealthyTensorStaysHealthy) {
  HealthMonitor monitor(GuardConfig{.policy = GuardPolicy::kWarn});
  Tensor t({4}, 0.5F);
  HealthReport report;
  monitor.scan_tensor("w", t, report);
  EXPECT_TRUE(report.healthy());
  EXPECT_EQ(report.describe(), "healthy");
  EXPECT_TRUE(report.worst.empty());
}

TEST(HealthMonitorTest, CheckScansValuesGradsAndLoss) {
  HealthMonitor monitor(GuardConfig{.policy = GuardPolicy::kThrow});
  dnn::Param p{"w", Tensor({3}, 1.0F), Tensor({3}, 0.0F), true};
  EXPECT_TRUE(monitor.check({&p}, 0.5F).healthy());
  // Non-finite loss alone is flagged even with clean tensors.
  EXPECT_FALSE(monitor.check({&p}, kNan).healthy());
  EXPECT_EQ(monitor.check({&p}, kNan).worst, "loss");
  // A NaN gradient is flagged with its qualified name.
  p.grad[1] = kNan;
  const HealthReport report = monitor.check({&p}, 0.5F);
  EXPECT_FALSE(report.healthy());
  EXPECT_EQ(report.worst, "w.grad");
}

TEST(HealthMonitorTest, InvalidConfigRejected) {
  EXPECT_THROW(HealthMonitor(GuardConfig{.retry_budget = -1}),
               std::invalid_argument);
  EXPECT_THROW(HealthMonitor(GuardConfig{.lr_backoff = 0.0F}),
               std::invalid_argument);
  EXPECT_THROW(HealthMonitor(GuardConfig{.lr_backoff = 1.5F}),
               std::invalid_argument);
}

TEST(HealthMonitorTest, DecidePolicies) {
  HealthReport bad;
  bad.nan_count = 1;
  HealthReport good;

  HealthMonitor off(GuardConfig{.policy = GuardPolicy::kOff});
  EXPECT_EQ(off.decide(bad), GuardAction::kProceed);

  HealthMonitor warn(GuardConfig{.policy = GuardPolicy::kWarn});
  EXPECT_EQ(warn.decide(bad), GuardAction::kProceed);

  HealthMonitor thrower(GuardConfig{.policy = GuardPolicy::kThrow});
  EXPECT_EQ(thrower.decide(good), GuardAction::kProceed);
  EXPECT_EQ(thrower.decide(bad), GuardAction::kAbort);
}

TEST(HealthMonitorTest, RollbackCompoundsLrAndExhaustsBudget) {
  HealthMonitor monitor(GuardConfig{.policy = GuardPolicy::kRollback,
                                    .retry_budget = 2,
                                    .lr_backoff = 0.5F});
  dnn::Param p{"w", Tensor({2}, 1.0F), Tensor({2}, 0.0F), true};
  std::vector<Tensor> velocity(1, Tensor({2}, 0.0F));
  Rng rng(9);
  HealthReport bad;
  bad.nan_count = 1;

  // Without a snapshot there is nothing to roll back to: abort immediately.
  EXPECT_EQ(monitor.decide(bad), GuardAction::kAbort);

  monitor.snapshot({&p}, velocity, rng);
  EXPECT_EQ(monitor.decide(bad), GuardAction::kRetry);
  EXPECT_FLOAT_EQ(monitor.lr_scale(), 0.5F);
  EXPECT_EQ(monitor.decide(bad), GuardAction::kRetry);
  EXPECT_FLOAT_EQ(monitor.lr_scale(), 0.25F);
  EXPECT_EQ(monitor.rollbacks(), 2);
  // Budget exhausted.
  EXPECT_EQ(monitor.decide(bad), GuardAction::kAbort);
}

TEST(HealthMonitorTest, SnapshotRestoreIsBitwise) {
  HealthMonitor monitor(GuardConfig{.policy = GuardPolicy::kRollback});
  dnn::Param p{"w", Tensor({4}), Tensor({4}, 0.0F), true};
  Rng init(3);
  for (std::int64_t i = 0; i < 4; ++i) p.value[i] = init.normal();
  std::vector<Tensor> velocity(1, Tensor({4}, 0.125F));
  Rng rng(17);
  (void)rng.normal();  // advance into a Box–Muller cached state

  const Tensor values_before = p.value;
  const RngState rng_before = rng.state();
  monitor.snapshot({&p}, velocity, rng);

  // Trash everything.
  p.value.fill(kNan);
  p.grad.fill(7.0F);
  velocity[0].fill(kNan);
  (void)rng.next_u64();
  (void)rng.normal();

  ASSERT_TRUE(monitor.restore({&p}, velocity, rng));
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(p.value[i], values_before[i]) << i;
    EXPECT_EQ(p.grad[i], 0.0F) << "restore must zero gradients";
    EXPECT_EQ(velocity[0][i], 0.125F) << i;
  }
  const RngState rng_after = rng.state();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rng_after.s[i], rng_before.s[i]);
  EXPECT_EQ(rng_after.has_cached_normal, rng_before.has_cached_normal);
  EXPECT_EQ(rng_after.cached_normal_bits, rng_before.cached_normal_bits);
}

TEST(HealthMonitorTest, RestoreWithoutSnapshotIsNoOp) {
  HealthMonitor monitor(GuardConfig{.policy = GuardPolicy::kRollback});
  dnn::Param p{"w", Tensor({2}, 5.0F), Tensor({2}, 1.0F), true};
  std::vector<Tensor> velocity;
  Rng rng(1);
  EXPECT_FALSE(monitor.restore({&p}, velocity, rng));
  EXPECT_EQ(p.value[0], 5.0F);
  EXPECT_EQ(p.grad[0], 1.0F);
}

// ---- trainer integration: survive an injected mid-run NaN burst ----

data::LabeledImages easy_data(std::int64_t n, std::uint64_t salt) {
  data::SyntheticCifarSpec spec;
  spec.image_size = 8;
  spec.num_classes = 3;
  spec.sign_flip_prob = 0.0F;
  spec.occluder_prob = 0.0F;
  spec.noise_stddev = 0.15F;
  data::SyntheticCifar gen(spec);
  data::LabeledImages d = gen.generate(n, salt);
  data::standardize(d);
  return d;
}

struct TinyModel {
  std::unique_ptr<dnn::Sequential> model;
  dnn::Linear* linear = nullptr;
};

TinyModel tiny_model() {
  TinyModel tm;
  tm.model = std::make_unique<dnn::Sequential>();
  Rng rng(5);
  tm.model->emplace<dnn::Flatten>();
  tm.linear = &tm.model->emplace<dnn::Linear>(3 * 8 * 8, 3, /*bias=*/true, rng);
  return tm;
}

dnn::TrainConfig tiny_train_config() {
  dnn::TrainConfig config;
  config.epochs = 5;
  config.batch_size = 16;
  config.lr = 0.05F;
  config.augment = false;
  return config;
}

bool all_params_finite(dnn::Sequential& model) {
  for (dnn::Param* p : model.params()) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      if (!std::isfinite(p->value[i])) return false;
    }
  }
  return true;
}

TEST(GuardedTrainingTest, NanBurstAbortsUnderThrowPolicy) {
  const data::LabeledImages train = easy_data(96, 1);
  TinyModel tm = tiny_model();
  dnn::TrainConfig config = tiny_train_config();
  config.guard.policy = GuardPolicy::kThrow;
  dnn::DnnTrainer trainer(*tm.model, config);
  dnn::Linear* linear = tm.linear;
  trainer.set_epoch_hook([linear](std::int64_t epoch) {
    if (epoch == 2) linear->weight().value[0] = kNan;
  });
  EXPECT_THROW(trainer.fit(train), std::runtime_error);
}

TEST(GuardedTrainingTest, NanBurstIsRolledBackAndRunConverges) {
  const data::LabeledImages train = easy_data(96, 1);
  const data::LabeledImages test = easy_data(32, 2);
  TinyModel tm = tiny_model();
  dnn::TrainConfig config = tiny_train_config();
  config.guard.policy = GuardPolicy::kRollback;
  config.guard.retry_budget = 3;
  dnn::DnnTrainer trainer(*tm.model, config);
  dnn::Linear* linear = tm.linear;
  // Poison a weight exactly once, at the top of epoch 2. The guard must
  // detect the poisoned epoch, restore the post-epoch-1 snapshot, and retry;
  // the retry's hook invocation must not re-poison.
  auto poisoned = std::make_shared<bool>(false);
  trainer.set_epoch_hook([linear, poisoned](std::int64_t epoch) {
    if (epoch == 2 && !*poisoned) {
      *poisoned = true;
      linear->weight().value[0] = kNan;
    }
  });
  std::vector<dnn::EpochStats> history;
  ASSERT_NO_THROW(history = trainer.fit(train));
  ASSERT_TRUE(*poisoned) << "hook never fired";
  EXPECT_EQ(static_cast<std::int64_t>(history.size()), config.epochs);
  EXPECT_TRUE(all_params_finite(*tm.model));
  for (const dnn::EpochStats& stats : history) {
    EXPECT_TRUE(std::isfinite(stats.train_loss));
  }
  // The easy task is learnable by a linear probe: training still converged.
  EXPECT_GT(trainer.evaluate(test), 0.5);
}

TEST(GuardedTrainingTest, OffPolicyLetsNanPropagate) {
  // Contrast case: without the guard the poisoned weight contaminates the
  // whole model — this is the failure mode the guard exists to stop.
  const data::LabeledImages train = easy_data(96, 1);
  TinyModel tm = tiny_model();
  dnn::DnnTrainer trainer(*tm.model, tiny_train_config());  // guard kOff
  dnn::Linear* linear = tm.linear;
  trainer.set_epoch_hook([linear](std::int64_t epoch) {
    if (epoch == 2) linear->weight().value[0] = kNan;
  });
  ASSERT_NO_THROW(trainer.fit(train));
  EXPECT_FALSE(all_params_finite(*tm.model));
}

}  // namespace
}  // namespace ullsnn::robust
