// FaultInjector determinism and fault-taxonomy semantics.
#include "src/robust/fault_injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>

#include "src/snn/spiking_layers.h"
#include "src/snn/snn_network.h"

namespace ullsnn::robust {
namespace {

std::uint32_t float_bits(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, 4);
  return bits;
}

Tensor ramp_tensor(const Shape& shape) {
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = 0.5F + 0.01F * static_cast<float>(i);
  }
  return t;
}

TEST(FaultInjectorTest, InvalidRatesRejected) {
  EXPECT_THROW(FaultInjector(FaultSpec{.weight_bitflip_rate = -0.1}),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector(FaultSpec{.stuck_at_zero_rate = 1.5}),
               std::invalid_argument);
}

TEST(FaultInjectorTest, ZeroRateIsNoOp) {
  FaultInjector injector(FaultSpec{});
  Tensor t = ramp_tensor({64});
  const Tensor before = t;
  EXPECT_EQ(injector.inject_tensor(t, 0.0), 0);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], before[i]);
  EXPECT_EQ(injector.faults_injected(), 0);
}

TEST(FaultInjectorTest, SameSeedReproducesSameFaults) {
  Tensor a = ramp_tensor({256});
  Tensor b = a;
  FaultInjector ia(FaultSpec{.seed = 42});
  FaultInjector ib(FaultSpec{.seed = 42});
  const std::int64_t flips_a = ia.inject_tensor(a, 0.25);
  const std::int64_t flips_b = ib.inject_tensor(b, 0.25);
  EXPECT_EQ(flips_a, flips_b);
  EXPECT_GT(flips_a, 0);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(float_bits(a[i]), float_bits(b[i])) << "element " << i;
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  Tensor a = ramp_tensor({256});
  Tensor b = a;
  FaultInjector(FaultSpec{.seed = 1}).inject_tensor(a, 0.25);
  FaultInjector(FaultSpec{.seed = 2}).inject_tensor(b, 0.25);
  bool any_diff = false;
  for (std::int64_t i = 0; i < a.numel() && !any_diff; ++i) {
    any_diff = a[i] != b[i] || (std::isnan(a[i]) != std::isnan(b[i]));
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultInjectorTest, BitflipChangesExactlyOneBitPerFault) {
  Tensor t = ramp_tensor({512});
  const Tensor before = t;
  FaultInjector injector(FaultSpec{.seed = 3});
  const std::int64_t flips = injector.inject_tensor(t, 0.1);
  ASSERT_GT(flips, 0);
  std::int64_t changed = 0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const std::uint32_t diff = float_bits(before[i]) ^ float_bits(t[i]);
    if (diff != 0) {
      ++changed;
      EXPECT_EQ(diff & (diff - 1), 0U) << "more than one bit flipped at " << i;
    }
  }
  EXPECT_EQ(changed, flips);
  EXPECT_EQ(injector.faults_injected(), flips);
}

TEST(FaultInjectorTest, SignOnlyFlipsOnlyTheSignBit) {
  Tensor t = ramp_tensor({512});
  const Tensor before = t;
  FaultInjector injector(FaultSpec{.seed = 4});
  const std::int64_t flips = injector.inject_tensor(t, 0.2, /*sign_only=*/true);
  ASSERT_GT(flips, 0);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (t[i] != before[i]) {
      EXPECT_FLOAT_EQ(t[i], -before[i]) << "element " << i;
    }
  }
}

TEST(FaultInjectorTest, StuckAtZeroZeroesWholeRows) {
  dnn::Param weight{"w", ramp_tensor({8, 16}), Tensor({8, 16}, 0.0F), true};
  dnn::Param bias{"b", ramp_tensor({8}), Tensor({8}, 0.0F), false};
  FaultSpec spec;
  spec.stuck_at_zero_rate = 0.5;
  spec.seed = 5;
  FaultInjector injector(spec);
  const std::int64_t dead = injector.inject({&weight, &bias});
  ASSERT_GT(dead, 0);
  std::int64_t dead_rows = 0;
  for (std::int64_t r = 0; r < 8; ++r) {
    bool all_zero = true;
    bool any_zero = false;
    for (std::int64_t c = 0; c < 16; ++c) {
      const bool zero = weight.value[r * 16 + c] == 0.0F;
      all_zero = all_zero && zero;
      any_zero = any_zero || zero;
    }
    EXPECT_EQ(all_zero, any_zero) << "row " << r << " partially zeroed";
    if (all_zero) ++dead_rows;
  }
  EXPECT_EQ(dead_rows, dead);
  // Rank-1 params have no row structure: the bias must be untouched.
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_NE(bias.value[i], 0.0F);
}

TEST(FaultInjectorTest, CorruptByteXorsChosenByte) {
  const std::string path = testing::TempDir() + "/ullsnn_corrupt_byte.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const char bytes[4] = {0x10, 0x20, 0x30, 0x40};
    out.write(bytes, 4);
  }
  FaultInjector::corrupt_byte(path, 2, 0xFF);
  std::ifstream in(path, std::ios::binary);
  char bytes[4];
  in.read(bytes, 4);
  EXPECT_EQ(bytes[0], 0x10);
  EXPECT_EQ(bytes[1], 0x20);
  EXPECT_EQ(static_cast<unsigned char>(bytes[2]), 0x30 ^ 0xFF);
  EXPECT_EQ(bytes[3], 0x40);
  EXPECT_THROW(FaultInjector::corrupt_byte(path, 4, 0x01), std::out_of_range);
  EXPECT_THROW(FaultInjector::corrupt_byte(path, 0, 0x00), std::invalid_argument);
  EXPECT_THROW(FaultInjector::corrupt_byte(path + ".missing", 0, 0x01),
               std::runtime_error);
  std::filesystem::remove(path);
}

// ---- membrane faults via the SnnNetwork step hook ----

std::unique_ptr<snn::SnnNetwork> tiny_snn(std::int64_t time_steps) {
  auto net = std::make_unique<snn::SnnNetwork>(time_steps);
  Rng rng(21);
  snn::IfConfig neuron;
  neuron.v_threshold = 1.0F;
  net->emplace<snn::SpikingFlatten>();
  Tensor w1({16, 3 * 8 * 8});
  normal_fill(w1, 0.0F, 0.1F, rng);
  net->emplace<snn::SpikingLinear>(w1, neuron, /*with_neuron=*/true);
  Tensor w2({3, 16});
  normal_fill(w2, 0.0F, 0.3F, rng);
  net->emplace<snn::SpikingLinear>(w2, neuron, /*with_neuron=*/false);
  return net;
}

TEST(FaultInjectorTest, MembraneFaultsPerturbLogits) {
  auto net = tiny_snn(4);
  Tensor images({2, 3, 8, 8});
  Rng rng(33);
  normal_fill(images, 0.0F, 1.0F, rng);
  const Tensor clean = net->forward(images, /*train=*/false);

  FaultSpec spec;
  spec.membrane_bitflip_rate = 0.5;
  spec.seed = 6;
  FaultInjector injector(spec);
  injector.attach_membrane_faults(*net);
  const Tensor faulty = net->forward(images, /*train=*/false);
  EXPECT_GT(injector.faults_injected(), 0);
  bool any_diff = false;
  for (std::int64_t i = 0; i < clean.numel() && !any_diff; ++i) {
    any_diff = clean[i] != faulty[i];
  }
  EXPECT_TRUE(any_diff) << "membrane faults left the logits untouched";

  // Clearing the hook restores clean, reproducible inference.
  net->clear_step_hook();
  const Tensor clean_again = net->forward(images, /*train=*/false);
  for (std::int64_t i = 0; i < clean.numel(); ++i) {
    EXPECT_EQ(clean_again[i], clean[i]) << "element " << i;
  }
}

TEST(FaultInjectorTest, ZeroRateMembraneHookIsTransparent) {
  auto net = tiny_snn(3);
  Tensor images({2, 3, 8, 8});
  Rng rng(34);
  normal_fill(images, 0.0F, 1.0F, rng);
  const Tensor clean = net->forward(images, /*train=*/false);
  FaultInjector injector(FaultSpec{.seed = 7});
  injector.attach_membrane_faults(*net);
  const Tensor hooked = net->forward(images, /*train=*/false);
  for (std::int64_t i = 0; i < clean.numel(); ++i) {
    EXPECT_EQ(hooked[i], clean[i]) << "element " << i;
  }
  EXPECT_EQ(injector.faults_injected(), 0);
}

// ---- serving-side faults: worker stalls and slow replicas ----

TEST(FaultInjectorTest, StallAndSlowReplicaSpecsValidated) {
  EXPECT_THROW(FaultInjector(FaultSpec{.stall_rate = -0.1}),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector(FaultSpec{.stall_rate = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(
      FaultInjector(FaultSpec{.stall_ms = std::chrono::milliseconds(-1)}),
      std::invalid_argument);
  EXPECT_THROW(FaultInjector(FaultSpec{.slow_replica_rate = 2.0}),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector(FaultSpec{.slow_replica_factor = 0.5}),
               std::invalid_argument);
}

TEST(FaultInjectorTest, MaybeStallIsNoOpWhenDisabled) {
  FaultInjector no_rate(FaultSpec{.stall_ms = std::chrono::milliseconds(10)});
  FaultInjector no_duration(FaultSpec{.stall_rate = 1.0});
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(no_rate.maybe_stall());
    EXPECT_FALSE(no_duration.maybe_stall());
  }
  EXPECT_EQ(no_rate.faults_injected(), 0);
  EXPECT_EQ(no_duration.faults_injected(), 0);
}

TEST(FaultInjectorTest, MaybeStallFiresDeterministicallyPerSeed) {
  FaultSpec spec;
  spec.stall_rate = 0.5;
  spec.stall_ms = std::chrono::milliseconds(1);
  spec.seed = 77;
  FaultInjector a(spec);
  FaultInjector b(spec);
  std::int64_t fired = 0;
  for (int i = 0; i < 32; ++i) {
    const bool fa = a.maybe_stall();
    EXPECT_EQ(fa, b.maybe_stall()) << "draw " << i;
    fired += fa ? 1 : 0;
  }
  // At rate 0.5 over 32 draws, all-true / all-false means a broken stream.
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 32);
  EXPECT_EQ(a.faults_injected(), fired);
  EXPECT_EQ(b.faults_injected(), fired);
}

TEST(FaultInjectorTest, MaybeStallSleepsAtLeastStallMs) {
  FaultSpec spec;
  spec.stall_rate = 1.0;
  spec.stall_ms = std::chrono::milliseconds(5);
  FaultInjector injector(spec);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(injector.maybe_stall());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(5));
}

TEST(FaultInjectorTest, ReplicaSlowdownIsPureStableAndSeedDeterministic) {
  FaultSpec spec;
  spec.slow_replica_rate = 0.5;
  spec.slow_replica_factor = 3.0;
  spec.stall_rate = 0.5;
  spec.stall_ms = std::chrono::milliseconds(1);
  spec.seed = 99;
  FaultInjector injector(spec);
  FaultInjector twin(spec);
  std::int64_t slow = 0;
  std::vector<double> first(64);
  for (std::int64_t w = 0; w < 64; ++w) {
    first[static_cast<std::size_t>(w)] = injector.replica_slowdown(w);
    EXPECT_TRUE(first[static_cast<std::size_t>(w)] == 1.0 ||
                first[static_cast<std::size_t>(w)] == 3.0);
    if (first[static_cast<std::size_t>(w)] == 3.0) ++slow;
  }
  // Pure hash of (seed, index): advancing the shared RNG stream (stall
  // draws) must not move the slow set.
  for (int i = 0; i < 8; ++i) injector.maybe_stall();
  for (std::int64_t w = 0; w < 64; ++w) {
    EXPECT_EQ(injector.replica_slowdown(w), first[static_cast<std::size_t>(w)]);
    EXPECT_EQ(twin.replica_slowdown(w), first[static_cast<std::size_t>(w)]);
  }
  // ~Half the fleet at rate 0.5; neither none nor all.
  EXPECT_GT(slow, 8);
  EXPECT_LT(slow, 56);

  // Disabled configurations always answer 1.0.
  FaultInjector no_slow(FaultSpec{.slow_replica_factor = 3.0});
  EXPECT_EQ(no_slow.replica_slowdown(0), 1.0);
}

}  // namespace
}  // namespace ullsnn::robust
