// Concurrency stress suite for the shared-state hot spots: ThreadPool /
// parallel_for, the obs metrics registry, and the robust:: primitives the
// serving engine shares across workers (FaultInjector, HealthMonitor). Runs
// in every build, but its purpose is the -DULLSNN_SANITIZE=thread
// configuration (`ctest -L tsan`), where ThreadSanitizer turns any data race
// these hammers expose into a hard failure. Assertions here are deliberately
// coarse (totals, no crashes); TSan provides the actual race detection.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/http_endpoint.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/robust/fault_injector.h"
#include "src/robust/health.h"
#include "src/util/parallel.h"
#include "tests/testutil/http_get.h"

namespace ullsnn {
namespace {

struct SerialGuard {
  ~SerialGuard() { set_num_threads(1); }
};

TEST(TsanStressTest, ThreadPoolRapidJobTurnover) {
  SerialGuard guard;
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  // Many small jobs back to back: stresses the generation handshake between
  // run() and worker_loop() (stale wakeups, job pointer publication).
  for (int round = 0; round < 200; ++round) {
    pool.run(16, [&](std::int64_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 200 * (15 * 16) / 2);
}

TEST(TsanStressTest, ThreadPoolExceptionUnderContention) {
  SerialGuard guard;
  ThreadPool pool(4);
  // Every round one iteration throws while the rest keep claiming work:
  // stresses the record_error path racing the index distribution.
  for (int round = 0; round < 50; ++round) {
    EXPECT_THROW(pool.run(64,
                          [&](std::int64_t i) {
                            if (i == 32) throw std::runtime_error("stress");
                          }),
                 std::runtime_error);
    std::atomic<std::int64_t> ok{0};
    pool.run(64, [&](std::int64_t) { ++ok; });
    EXPECT_EQ(ok.load(), 64);
  }
}

TEST(TsanStressTest, RegistryConcurrentRegistrationAndUpdates) {
  auto& registry = obs::Registry::instance();
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kIters; ++i) {
        // Shared names: every thread races to register and update the same
        // instruments; per-thread names: registration churn under the lock.
        registry.counter("tsan.shared.counter").add(1);
        registry.gauge("tsan.shared.gauge").set(static_cast<double>(i));
        registry.histogram("tsan.shared.hist").observe(static_cast<double>(i % 7));
        registry.counter("tsan.thread." + std::to_string(t)).add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.counter("tsan.shared.counter").value(), kThreads * kIters);
  EXPECT_EQ(registry.histogram("tsan.shared.hist").count(), kThreads * kIters);
}

TEST(TsanStressTest, RegistrySnapshotWhileWriting) {
  auto& registry = obs::Registry::instance();
  std::atomic<bool> stop{false};
  // Writers hammer instruments while a reader snapshots and a third thread
  // periodically resets values — the exporter-vs-hot-path interleaving.
  std::thread writer([&] {
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      registry.counter("tsan.snap.counter").add(1);
      registry.histogram("tsan.snap.hist").observe(static_cast<double>(i++ % 11));
    }
  });
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      registry.reset_values();
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 200; ++i) {
    const obs::MetricsSnapshot snap = registry.snapshot();
    for (const auto& h : snap.histograms) {
      std::int64_t bucket_total = 0;
      for (const std::int64_t c : h.counts) bucket_total += c;
      EXPECT_GE(bucket_total, 0);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  resetter.join();
}

TEST(TsanStressTest, ParallelForFeedsRegistry) {
  SerialGuard guard;
  set_num_threads(4);
  obs::Registry::instance().counter("tsan.pf.counter").reset();
  // The realistic composition: kernel-style parallel_for bodies emitting
  // telemetry through the macro path (function-local static registration).
  for (int round = 0; round < 20; ++round) {
    parallel_for(64, [&](std::int64_t i) {
      ULLSNN_COUNTER_ADD("tsan.pf.counter", 1);
      ULLSNN_HISTOGRAM_OBSERVE("tsan.pf.hist", static_cast<double>(i));
    });
  }
#if ULLSNN_TELEMETRY
  EXPECT_EQ(obs::Registry::instance().counter("tsan.pf.counter").value(), 20 * 64);
#endif
}

TEST(TsanStressTest, FaultInjectorSharedAcrossThreads) {
  // One injector shared by many "workers", each corrupting its own private
  // tensor: the RNG stream and the fault counter are the contended state.
  robust::FaultSpec spec;
  spec.weight_bitflip_rate = 0.5;
  robust::FaultInjector injector(spec);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::int64_t> per_thread(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&injector, &per_thread, t] {
      Tensor mine({16}, 1.0F);
      std::int64_t flips = 0;
      for (int i = 0; i < kIters; ++i) {
        flips += injector.inject_tensor(mine, 0.5);
      }
      per_thread[static_cast<std::size_t>(t)] = flips;
    });
  }
  for (auto& th : threads) th.join();
  std::int64_t reported = 0;
  for (const std::int64_t f : per_thread) reported += f;
  // Which thread received which draw depends on interleaving, but the
  // injector-wide total must match what the callers saw, exactly.
  EXPECT_EQ(injector.faults_injected(), reported);
  EXPECT_GT(reported, 0);
}

TEST(TsanStressTest, FaultInjectorParamInjectionRacesTensorInjection) {
  robust::FaultSpec spec;
  spec.weight_bitflip_rate = 0.1;
  spec.stuck_at_zero_rate = 0.05;
  robust::FaultInjector injector(spec);
  dnn::Param param{"tsan.weights", Tensor({8, 8}, 0.5F), Tensor({8, 8}), true};
  std::atomic<bool> stop{false};
  // inject() (multi-param path, internal lock held across the sweep) racing
  // inject_tensor() (single-tensor path) on a *different* tensor.
  std::thread param_thread([&] {
    std::vector<dnn::Param*> params{&param};
    while (!stop.load(std::memory_order_relaxed)) injector.inject(params);
  });
  Tensor scratch({32}, 1.0F);
  for (int i = 0; i < 500; ++i) injector.inject_tensor(scratch, 0.2);
  stop.store(true, std::memory_order_relaxed);
  param_thread.join();
  EXPECT_GT(injector.faults_injected(), 0);
}

TEST(TsanStressTest, HealthMonitorSharedScanSnapshotRestoreDecide) {
  // The serving composition: many threads scan (const path) while others
  // snapshot/restore and run decide() — every mutating entry point racing
  // the read-only ones.
  robust::GuardConfig config;
  config.policy = robust::GuardPolicy::kRollback;
  config.retry_budget = 1000000;  // never aborts during the stress window
  robust::HealthMonitor monitor(config);
  dnn::Param param{"tsan.health", Tensor({64}, 0.1F), Tensor({64}), true};
  std::vector<dnn::Param*> params{&param};
  std::vector<Tensor> velocity{Tensor({64})};
  Rng rng(7);
  monitor.snapshot(params, velocity, rng);

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> scans{0};
  std::vector<std::thread> scanners;
  for (int t = 0; t < 4; ++t) {
    scanners.emplace_back([&] {
      Tensor bad({8}, std::numeric_limits<float>::quiet_NaN());
      Tensor good({8}, 0.5F);
      while (!stop.load(std::memory_order_relaxed)) {
        robust::HealthReport report;
        monitor.scan_tensor("good", good, report);
        EXPECT_TRUE(report.healthy());
        monitor.scan_tensor("bad", bad, report);
        EXPECT_FALSE(report.healthy());
        scans.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread snapshotter([&] {
    std::vector<Tensor> local_velocity{Tensor({64})};
    Rng local_rng(9);
    while (!stop.load(std::memory_order_relaxed)) {
      monitor.snapshot(params, local_velocity, local_rng);
      monitor.restore(params, local_velocity, local_rng);
    }
  });
  robust::HealthReport unhealthy;
  unhealthy.nan_count = 1;
  for (int i = 0; i < 500; ++i) {
    monitor.decide(unhealthy);
    (void)monitor.lr_scale();
    (void)monitor.rollbacks();
  }
  // Keep the mutators alive until every scanner has demonstrably overlapped
  // with them at least once (the decide loop alone can finish in < 1ms).
  while (scans.load(std::memory_order_relaxed) < 4) std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : scanners) th.join();
  snapshotter.join();
  EXPECT_GT(scans.load(), 0);
  EXPECT_EQ(monitor.rollbacks(), 500);
}

TEST(TsanStressTest, SloTrackerSnapshotUnderLoad) {
  // Concurrent scrapes (update/last) against writers hammering the latency
  // histogram the tracker windows over. The interval deltas must telescope:
  // after quiescence, the window counts across every update sum to exactly
  // the number of observations — no sample double-counted or dropped by a
  // racing scrape.
  auto& registry = obs::Registry::instance();
  obs::SloConfig cfg;
  cfg.histogram = "tsan.slo.latency_ms";
  cfg.gauge_prefix = "tsan.slo";
  cfg.objective_ms = 5.0;
  obs::SloTracker tracker(cfg);
  auto& hist = registry.histogram(cfg.histogram);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> windowed{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const obs::SloTracker::Report report = tracker.update();
        windowed.fetch_add(report.window_count, std::memory_order_relaxed);
        const obs::SloTracker::Report last = tracker.last();
        EXPECT_GE(last.compliance, 0.0);
        EXPECT_LE(last.compliance, 1.0);
        EXPECT_GE(last.burn, 0.0);
        std::this_thread::yield();
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&hist, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        hist.observe(static_cast<double>((i + t) % 13));
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : scrapers) th.join();
  windowed += tracker.update().window_count;  // capture the quiescent tail
  EXPECT_EQ(windowed.load(), kWriters * kPerWriter);
}

TEST(TsanStressTest, HttpEndpointScrapeRacesShutdown) {
  // Scrapers in flight while stop() tears the listener down, repeatedly:
  // the running_/stopping_ handshake, the listen_fd_ publication, and the
  // handler map must hold up when a request lands mid-shutdown. A scrape
  // may fail at transport level (connection refused/reset) — that is the
  // expected outcome of losing the race — but every scrape that returns 200
  // must carry the full body, and requests_served() must cover at least
  // every such success (the server may also have counted a response whose
  // bytes the client never fully read).
  for (int round = 0; round < 8; ++round) {
    obs::HttpEndpoint::Config cfg;
    cfg.port = 0;  // ephemeral
    obs::HttpEndpoint endpoint(cfg);
    endpoint.route("/metrics",
                   [](const std::string&, const std::string&) {
                     obs::HttpResponse r;
                     r.body = "tsan_scrape_total 1\n";
                     return r;
                   });
    endpoint.start();
    const int port = endpoint.port();
    ASSERT_GT(port, 0);

    std::atomic<std::int64_t> ok_scrapes{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> scrapers;
    for (int t = 0; t < 3; ++t) {
      scrapers.emplace_back([&, port] {
        while (!stop.load(std::memory_order_relaxed)) {
          const testutil::HttpResult result =
              testutil::http_request(port, "/metrics");
          if (result.ok && result.status == 200) {
            EXPECT_EQ(result.body, "tsan_scrape_total 1\n");
            ok_scrapes.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    // Let at least one scrape land, then yank the endpoint out from under
    // the scrapers while they are mid-loop.
    while (ok_scrapes.load(std::memory_order_relaxed) == 0) {
      std::this_thread::yield();
    }
    endpoint.stop();
    EXPECT_FALSE(endpoint.running());
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : scrapers) th.join();
    EXPECT_GE(endpoint.requests_served(), ok_scrapes.load());
    endpoint.stop();  // idempotent; destructor will run it again too
  }
}

}  // namespace
}  // namespace ullsnn
