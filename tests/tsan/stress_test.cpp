// Concurrency stress suite for the shared-state hot spots: ThreadPool /
// parallel_for and the obs metrics registry. Runs in every build, but its
// purpose is the -DULLSNN_SANITIZE=thread configuration (`ctest -L tsan`),
// where ThreadSanitizer turns any data race these hammers expose into a hard
// failure. Assertions here are deliberately coarse (totals, no crashes);
// TSan provides the actual race detection.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/parallel.h"

namespace ullsnn {
namespace {

struct SerialGuard {
  ~SerialGuard() { set_num_threads(1); }
};

TEST(TsanStressTest, ThreadPoolRapidJobTurnover) {
  SerialGuard guard;
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  // Many small jobs back to back: stresses the generation handshake between
  // run() and worker_loop() (stale wakeups, job pointer publication).
  for (int round = 0; round < 200; ++round) {
    pool.run(16, [&](std::int64_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 200 * (15 * 16) / 2);
}

TEST(TsanStressTest, ThreadPoolExceptionUnderContention) {
  SerialGuard guard;
  ThreadPool pool(4);
  // Every round one iteration throws while the rest keep claiming work:
  // stresses the record_error path racing the index distribution.
  for (int round = 0; round < 50; ++round) {
    EXPECT_THROW(pool.run(64,
                          [&](std::int64_t i) {
                            if (i == 32) throw std::runtime_error("stress");
                          }),
                 std::runtime_error);
    std::atomic<std::int64_t> ok{0};
    pool.run(64, [&](std::int64_t) { ++ok; });
    EXPECT_EQ(ok.load(), 64);
  }
}

TEST(TsanStressTest, RegistryConcurrentRegistrationAndUpdates) {
  auto& registry = obs::Registry::instance();
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kIters; ++i) {
        // Shared names: every thread races to register and update the same
        // instruments; per-thread names: registration churn under the lock.
        registry.counter("tsan.shared.counter").add(1);
        registry.gauge("tsan.shared.gauge").set(static_cast<double>(i));
        registry.histogram("tsan.shared.hist").observe(static_cast<double>(i % 7));
        registry.counter("tsan.thread." + std::to_string(t)).add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.counter("tsan.shared.counter").value(), kThreads * kIters);
  EXPECT_EQ(registry.histogram("tsan.shared.hist").count(), kThreads * kIters);
}

TEST(TsanStressTest, RegistrySnapshotWhileWriting) {
  auto& registry = obs::Registry::instance();
  std::atomic<bool> stop{false};
  // Writers hammer instruments while a reader snapshots and a third thread
  // periodically resets values — the exporter-vs-hot-path interleaving.
  std::thread writer([&] {
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      registry.counter("tsan.snap.counter").add(1);
      registry.histogram("tsan.snap.hist").observe(static_cast<double>(i++ % 11));
    }
  });
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      registry.reset_values();
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 200; ++i) {
    const obs::MetricsSnapshot snap = registry.snapshot();
    for (const auto& h : snap.histograms) {
      std::int64_t bucket_total = 0;
      for (const std::int64_t c : h.counts) bucket_total += c;
      EXPECT_GE(bucket_total, 0);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  resetter.join();
}

TEST(TsanStressTest, ParallelForFeedsRegistry) {
  SerialGuard guard;
  set_num_threads(4);
  obs::Registry::instance().counter("tsan.pf.counter").reset();
  // The realistic composition: kernel-style parallel_for bodies emitting
  // telemetry through the macro path (function-local static registration).
  for (int round = 0; round < 20; ++round) {
    parallel_for(64, [&](std::int64_t i) {
      ULLSNN_COUNTER_ADD("tsan.pf.counter", 1);
      ULLSNN_HISTOGRAM_OBSERVE("tsan.pf.hist", static_cast<double>(i));
    });
  }
#if ULLSNN_TELEMETRY
  EXPECT_EQ(obs::Registry::instance().counter("tsan.pf.counter").value(), 20 * 64);
#endif
}

}  // namespace
}  // namespace ullsnn
