// Cross-module integration tests: the full hybrid pipeline wired to the
// energy accounting and the checkpoint round-trip of a trained model.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/pipeline.h"
#include "src/energy/energy_model.h"
#include "src/energy/flops.h"
#include "src/energy/memory_model.h"
#include "src/energy/spike_monitor.h"
#include "src/util/serialize.h"

namespace ullsnn {
namespace {

data::LabeledImages make_data(std::int64_t n, std::uint64_t salt) {
  data::SyntheticCifarSpec spec;
  spec.image_size = 32;
  spec.num_classes = 3;
  spec.sign_flip_prob = 0.0F;
  spec.noise_stddev = 0.15F;
  spec.occluder_prob = 0.0F;
  data::SyntheticCifar gen(spec);
  data::LabeledImages d = gen.generate(n, salt);
  data::standardize(d);
  return d;
}

core::PipelineConfig tiny_config() {
  core::PipelineConfig config;
  config.arch = core::Architecture::kVgg11;
  config.model.width = 0.0625F;
  config.model.num_classes = 3;
  config.dnn_train.epochs = 6;
  config.dnn_train.augment = false;
  config.conversion.time_steps = 2;
  config.sgl.epochs = 2;
  config.sgl.augment = false;
  return config;
}

TEST(EndToEndTest, PipelinePlusEnergyAccounting) {
  const data::LabeledImages train = make_data(128, 1);
  const data::LabeledImages test = make_data(32, 2);
  core::HybridPipeline pipeline(tiny_config());
  pipeline.run(train, test);

  const Shape input_shape = {1, 3, 32, 32};
  const energy::ActivityReport activity =
      energy::measure_activity(pipeline.snn(), test);
  EXPECT_FALSE(activity.layers.empty());
  EXPECT_GT(activity.total_spikes_per_image, 0.0);

  const energy::FlopsReport dnn_flops =
      energy::count_dnn_flops(pipeline.dnn(), input_shape);
  const energy::FlopsReport snn_flops =
      energy::count_snn_flops(pipeline.snn(), input_shape);
  // Same topology => identical dense structure; the SNN replaces all but the
  // first layer's MACs by (cheaper, sparser) ACs.
  EXPECT_GT(dnn_flops.total_macs, snn_flops.total_macs);
  EXPECT_GT(snn_flops.total_acs, 0.0);
  const double dnn_pj = energy::compute_energy_pj(dnn_flops);
  const double snn_pj = energy::compute_energy_pj(snn_flops);
  // The paper's headline direction: SNN compute energy below the DNN's.
  EXPECT_LT(snn_pj, dnn_pj);

  // Memory model consistency: training memory exceeds inference memory, and
  // SNN training memory grows with T.
  const auto dnn_train_mem =
      energy::estimate_dnn_training_memory(pipeline.dnn(), input_shape, 16);
  const auto dnn_infer_mem =
      energy::estimate_dnn_inference_memory(pipeline.dnn(), input_shape, 16);
  EXPECT_GT(dnn_train_mem.total_mib(), dnn_infer_mem.total_mib());
  const auto snn_t2 =
      energy::estimate_snn_training_memory(pipeline.snn(), input_shape, 16, 2);
  const auto snn_t5 =
      energy::estimate_snn_training_memory(pipeline.snn(), input_shape, 16, 5);
  EXPECT_GT(snn_t5.total_mib(), snn_t2.total_mib());
}

TEST(EndToEndTest, TrainedModelCheckpointRoundTrip) {
  const data::LabeledImages train = make_data(96, 1);
  const data::LabeledImages test = make_data(32, 2);
  core::HybridPipeline pipeline(tiny_config());
  pipeline.run(train, test);

  // Save the trained DNN, rebuild a fresh instance, load, and verify
  // identical outputs.
  TensorDict dict;
  std::int64_t i = 0;
  for (const dnn::Param* p : pipeline.dnn().params()) {
    dict["p" + std::to_string(i++)] = p->value;
  }
  const std::string path = testing::TempDir() + "/ullsnn_e2e_ckpt.bin";
  save_tensors(dict, path);

  Rng rng(tiny_config().weight_seed);
  auto fresh = core::build_model(core::Architecture::kVgg11,
                                 tiny_config().model, rng);
  const TensorDict loaded = load_tensors(path);
  std::int64_t j = 0;
  for (dnn::Param* p : fresh->params()) {
    p->value = loaded.at("p" + std::to_string(j++));
  }
  Tensor x({4, 3, 32, 32}, 0.25F);
  const Tensor a = pipeline.dnn().forward(x, false);
  const Tensor b = fresh->forward(x, false);
  EXPECT_TRUE(a.allclose(b, 1e-5F));
  std::filesystem::remove(path);
}

TEST(EndToEndTest, ConversionPreservesDnnWeights) {
  const data::LabeledImages train = make_data(64, 1);
  const data::LabeledImages test = make_data(32, 2);
  core::HybridPipeline pipeline(tiny_config());
  pipeline.run(train, test);
  // SGL fine-tuned the SNN; the source DNN must be untouched, so its
  // accuracy is unchanged by stage (c).
  const double dnn_acc = dnn::evaluate_model(pipeline.dnn(), test);
  const double dnn_acc_again = dnn::evaluate_model(pipeline.dnn(), test);
  EXPECT_DOUBLE_EQ(dnn_acc, dnn_acc_again);
}

}  // namespace
}  // namespace ullsnn
