#include "src/snn/snn_network.h"

#include <gtest/gtest.h>

#include "src/tensor/random.h"

namespace ullsnn::snn {
namespace {

IfConfig if_config(float v_th) {
  IfConfig c;
  c.v_threshold = v_th;
  return c;
}

// One hidden spiking linear + readout linear. With identity-ish weights the
// network's average transfer can be computed by hand.
std::unique_ptr<SnnNetwork> tiny_net(std::int64_t time_steps, float v_th) {
  auto net = std::make_unique<SnnNetwork>(time_steps);
  Tensor w1({4, 4});
  for (std::int64_t i = 0; i < 4; ++i) w1.at(i, i) = 1.0F;
  net->emplace<SpikingLinear>(w1, if_config(v_th), /*with_neuron=*/true);
  Tensor w2({2, 4}, 0.5F);
  net->emplace<SpikingLinear>(w2, IfConfig{}, /*with_neuron=*/false);
  return net;
}

TEST(SnnNetworkTest, OutputAccumulatesOverSteps) {
  auto net = tiny_net(4, 1.0F);
  // Drive 1.5: spikes at every step (soft reset keeps surplus 0.5 -> next
  // step 2.0 -> spike...). Rate = 1 per step at drive >= threshold.
  Tensor images({1, 4}, 1.5F);
  const Tensor logits = net->forward(images, false);
  // Each hidden neuron spikes ~4 times with amplitude 1; readout row sums
  // 4 inputs * 0.5 each step: logits = 4 steps... spikes accumulate into
  // logits = sum_t 0.5 * sum_j spikes_j(t) = 0.5 * 4 * (spikes per neuron).
  EXPECT_EQ(logits.shape(), Shape({1, 2}));
  EXPECT_NEAR(logits[0], 0.5F * 4.0F * 4.0F, 1e-4F);
}

TEST(SnnNetworkTest, RateApproximatesClipAsTGrows) {
  // The average SNN output of a single layer approaches clip(x, 0, V_th) as
  // T grows (DNN-to-SNN conversion principle, Eq. 5).
  const float v_th = 1.0F;
  for (const float drive : {0.3F, 0.7F, 1.3F}) {
    auto net = tiny_net(256, v_th);
    Tensor images({1, 4}, drive);
    const Tensor logits = net->forward(images, false);
    const float avg_per_step = logits[0] / 256.0F;
    const float expected = 0.5F * 4.0F * std::min(drive, v_th);
    EXPECT_NEAR(avg_per_step, expected, 0.05F) << "drive " << drive;
  }
}

TEST(SnnNetworkTest, NegativeDriveProducesNoSpikes) {
  auto net = tiny_net(8, 1.0F);
  Tensor images({1, 4}, -2.0F);
  const Tensor logits = net->forward(images, false);
  EXPECT_FLOAT_EQ(logits[0], 0.0F);
  EXPECT_EQ(net->total_spikes(), 0);
}

TEST(SnnNetworkTest, SpikesPerNeuronNormalization) {
  auto net = tiny_net(4, 1.0F);
  Tensor images({2, 4}, 1.5F);  // batch of 2, all neurons spike every step
  net->forward(images, false);
  const std::vector<double> rates = net->spikes_per_neuron(/*samples=*/2);
  ASSERT_EQ(rates.size(), 1U);  // only the hidden layer has neurons
  EXPECT_NEAR(rates[0], 4.0, 1e-9);  // 4 spikes per neuron per image
}

TEST(SnnNetworkTest, ResetStatsClearsCounters) {
  auto net = tiny_net(4, 1.0F);
  net->forward(Tensor({1, 4}, 1.5F), false);
  EXPECT_GT(net->total_spikes(), 0);
  net->reset_stats();
  EXPECT_EQ(net->total_spikes(), 0);
}

TEST(SnnNetworkTest, SetTimeStepsValidates) {
  SnnNetwork net(2);
  EXPECT_THROW(net.set_time_steps(0), std::invalid_argument);
  net.set_time_steps(5);
  EXPECT_EQ(net.time_steps(), 5);
  EXPECT_THROW(SnnNetwork(0), std::invalid_argument);
}

TEST(SnnNetworkTest, EmptyNetworkThrows) {
  SnnNetwork net(2);
  EXPECT_THROW(net.forward(Tensor({1, 4}), false), std::logic_error);
}

TEST(SnnNetworkTest, BackwardRunsAfterTrainingForward) {
  auto net = tiny_net(2, 1.0F);
  Tensor images({1, 4}, 0.8F);
  const Tensor logits = net->forward(images, true);
  net->backward(Tensor(logits.shape(), 1.0F));
  // Weight gradients populated on both synapses.
  bool any_nonzero = false;
  for (dnn::Param* p : net->params()) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      if (p->grad[i] != 0.0F) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(SnnNetworkTest, MoreStepsMoreSpikes) {
  auto net2 = tiny_net(2, 1.0F);
  auto net8 = tiny_net(8, 1.0F);
  Tensor images({1, 4}, 0.9F);
  net2->forward(images, false);
  net8->forward(images, false);
  EXPECT_GT(net8->total_spikes(), net2->total_spikes());
}

TEST(SnnNetworkTest, SpikesPerNeuronValidatesSamples) {
  auto net = tiny_net(2, 1.0F);
  net->forward(Tensor({1, 4}, 1.0F), false);
  EXPECT_THROW(net->spikes_per_neuron(0), std::invalid_argument);
}

// Regression test for the serving isolation contract: repeating an input
// must reproduce the logits bit for bit, no matter what ran in between —
// no membrane charge, cache, or RNG drift may leak across forward calls.
TEST(SnnNetworkTest, ResetStateMakesRepeatedForwardsBitwiseIdentical) {
  auto net = tiny_net(4, 1.0F);
  Tensor probe({1, 4});
  probe[0] = 1.3F;
  probe[1] = 0.4F;
  probe[2] = 0.9F;
  probe[3] = 1.7F;
  net->reset_state();
  const Tensor first = net->forward(probe, false);
  // Interleave unrelated work: different input, different batch size.
  net->forward(Tensor({3, 4}, 0.8F), false);
  net->reset_state();
  const Tensor repeat = net->forward(probe, false);
  ASSERT_EQ(first.shape(), repeat.shape());
  for (std::int64_t i = 0; i < first.numel(); ++i) {
    EXPECT_EQ(first[i], repeat[i]) << "logit " << i << " drifted across calls";
  }
}

TEST(SnnNetworkTest, ResetStateRewindsThePoissonEncoderStream) {
  // Poisson encoding draws from the encoder RNG every step, so without
  // reset_state() a second forward sees a different spike train. With it,
  // the stream rewinds to the seed and the logits repeat exactly.
  auto net = tiny_net(16, 1.0F);
  net->set_encoding(Encoding::kPoisson, /*seed=*/7);
  Tensor probe({1, 4}, 0.6F);
  const Tensor first = net->forward(probe, false);
  net->reset_state();
  const Tensor rewound = net->forward(probe, false);
  ASSERT_EQ(first.shape(), rewound.shape());
  for (std::int64_t i = 0; i < first.numel(); ++i) {
    EXPECT_EQ(first[i], rewound[i]) << "Poisson logit " << i;
  }
}

TEST(SnnNetworkTest, ResetStateClearsLayerRuntimeState) {
  auto net = tiny_net(4, 1.0F);
  net->forward(Tensor({1, 4}, 1.5F), false);
  // A training forward leaves BPTT caches behind; reset_state drops them.
  net->forward(Tensor({1, 4}, 1.5F), true);
  net->reset_state();
  // After reset, backward must fail loudly (no stale tape to consume).
  EXPECT_THROW(net->backward(Tensor({1, 2}, 1.0F)), std::exception);
  // And a fresh inference forward still works.
  const Tensor logits = net->forward(Tensor({1, 4}, 1.5F), false);
  EXPECT_EQ(logits.shape(), Shape({1, 2}));
}

}  // namespace
}  // namespace ullsnn::snn
