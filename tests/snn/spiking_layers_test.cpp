#include "src/snn/spiking_layers.h"

#include <gtest/gtest.h>

#include "src/tensor/random.h"

namespace ullsnn::snn {
namespace {

IfConfig if_config(float v_th = 1.0F) {
  IfConfig c;
  c.v_threshold = v_th;
  return c;
}

TEST(SynapticConvTest, ForwardMatchesDenseConv) {
  Rng rng(1);
  Tensor weight({2, 1, 3, 3});
  uniform_fill(weight, -0.5F, 0.5F, rng);
  Conv2dSpec spec{1, 2, 3, 1, 1};
  SynapticConv synapse(weight, spec);
  synapse.begin_sequence(1, false);
  Tensor input({1, 1, 4, 4});
  uniform_fill(input, -1.0F, 1.0F, rng);
  const Tensor out = synapse.forward(input, 0, false);
  Tensor expected({1, 2, 4, 4});
  conv2d_forward(input, weight, Tensor(), expected, spec);
  EXPECT_TRUE(out.allclose(expected, 1e-5F));
}

TEST(SynapticConvTest, CountsInputNonzeros) {
  Rng rng(1);
  Conv2dSpec spec{1, 1, 3, 1, 1};
  SynapticConv synapse(Tensor({1, 1, 3, 3}, 0.1F), spec);
  synapse.begin_sequence(2, false);
  Tensor input({1, 1, 2, 2});
  input[0] = 1.0F;
  input[2] = 1.0F;
  synapse.forward(input, 0, false);
  synapse.forward(input, 1, false);
  EXPECT_EQ(synapse.input_nonzeros(), 4);
  EXPECT_EQ(synapse.input_elements(), 8);
  synapse.reset_stats();
  EXPECT_EQ(synapse.input_nonzeros(), 0);
}

TEST(SynapticConvTest, RejectsWrongWeightShape) {
  Conv2dSpec spec{2, 4, 3, 1, 1};
  EXPECT_THROW(SynapticConv(Tensor({4, 2, 5, 5}), spec), std::invalid_argument);
}

TEST(SynapticConvTest, BackwardRequiresForward) {
  Conv2dSpec spec{1, 1, 3, 1, 1};
  SynapticConv synapse(Tensor({1, 1, 3, 3}), spec);
  synapse.begin_sequence(1, true);
  EXPECT_THROW(synapse.backward(Tensor({1, 1, 4, 4}), 0), std::logic_error);
}

TEST(SpikingConv2dTest, StepProtocolAndSpikes) {
  Rng rng(2);
  Tensor weight({1, 1, 1, 1}, 1.0F);  // identity-ish 1x1 conv
  SpikingConv2d layer(weight, Conv2dSpec{1, 1, 1, 1, 0}, if_config(1.0F));
  layer.begin_sequence({1, 1, 2, 2}, 2, false);
  Tensor input({1, 1, 2, 2}, 0.6F);
  const Tensor s0 = layer.step_forward(input, 0, false);
  EXPECT_FLOAT_EQ(s0.sum(), 0.0F);  // membrane 0.6 < 1
  const Tensor s1 = layer.step_forward(input, 1, false);
  EXPECT_FLOAT_EQ(s1.sum(), 4.0F);  // membrane 1.2 > 1: all 4 neurons spike
  EXPECT_EQ(layer.spikes_emitted(), 4);
  EXPECT_EQ(layer.neurons(), 4);
}

TEST(SpikingLinearTest, WithNeuronEmitsSpikes) {
  Tensor weight({1, 2}, 1.0F);
  SpikingLinear layer(weight, if_config(1.0F), /*with_neuron=*/true);
  layer.begin_sequence({1, 2}, 1, false);
  const Tensor s = layer.step_forward(Tensor({1, 2}, 0.7F), 0, false);
  EXPECT_FLOAT_EQ(s[0], 1.0F);  // current 1.4 > 1
  EXPECT_TRUE(layer.has_neuron());
}

TEST(SpikingLinearTest, WithoutNeuronPassesCurrent) {
  Tensor weight({1, 2}, 1.0F);
  SpikingLinear layer(weight, if_config(), /*with_neuron=*/false);
  layer.begin_sequence({1, 2}, 1, false);
  const Tensor s = layer.step_forward(Tensor({1, 2}, 0.7F), 0, false);
  EXPECT_NEAR(s[0], 1.4F, 1e-6F);  // raw current, no threshold
  EXPECT_FALSE(layer.has_neuron());
  EXPECT_EQ(layer.neurons(), 0);
}

TEST(SpikingMaxPoolTest, BinaryInBinaryOut) {
  SpikingMaxPool pool(Pool2dSpec{2, 2});
  pool.begin_sequence({1, 1, 4, 4}, 1, false);
  Tensor spikes({1, 1, 4, 4});
  spikes[0] = 1.0F;
  spikes[5] = 1.0F;
  const Tensor out = pool.step_forward(spikes, 0, false);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(out[i] == 0.0F || out[i] == 1.0F);
  }
  EXPECT_FLOAT_EQ(out[0], 1.0F);
}

TEST(SpikingMaxPoolTest, BackwardRoutesToArgmax) {
  SpikingMaxPool pool(Pool2dSpec{2, 2});
  pool.begin_sequence({1, 1, 2, 2}, 1, true);
  Tensor spikes({1, 1, 2, 2});
  spikes[3] = 1.0F;
  pool.step_forward(spikes, 0, true);
  const Tensor g = pool.step_backward(Tensor({1, 1, 1, 1}, 5.0F), 0);
  EXPECT_FLOAT_EQ(g[3], 5.0F);
  EXPECT_FLOAT_EQ(g[0], 0.0F);
}

TEST(SpikingAvgPoolTest, AveragesSpikes) {
  SpikingAvgPool pool(Pool2dSpec{2, 2});
  pool.begin_sequence({1, 1, 2, 2}, 1, false);
  Tensor spikes({1, 1, 2, 2});
  spikes[0] = 1.0F;
  const Tensor out = pool.step_forward(spikes, 0, false);
  EXPECT_FLOAT_EQ(out[0], 0.25F);
}

TEST(SpikingDropoutTest, MaskFixedAcrossSteps) {
  Rng rng(3);
  SpikingDropout dropout(0.5F, rng);
  dropout.begin_sequence({1, 1000}, 3, /*train=*/true);
  Tensor x({1, 1000}, 1.0F);
  const Tensor y0 = dropout.step_forward(x, 0, true);
  const Tensor y1 = dropout.step_forward(x, 1, true);
  const Tensor y2 = dropout.step_forward(x, 2, true);
  EXPECT_TRUE(y0.allclose(y1));
  EXPECT_TRUE(y0.allclose(y2));
  EXPECT_NEAR(y0.mean(), 1.0F, 0.15F);
}

TEST(SpikingDropoutTest, ResamplesPerSequence) {
  Rng rng(3);
  SpikingDropout dropout(0.5F, rng);
  dropout.begin_sequence({1, 1000}, 1, true);
  Tensor x({1, 1000}, 1.0F);
  const Tensor a = dropout.step_forward(x, 0, true);
  dropout.begin_sequence({1, 1000}, 1, true);
  const Tensor b = dropout.step_forward(x, 0, true);
  EXPECT_FALSE(a.allclose(b));
}

TEST(SpikingDropoutTest, InferenceIsIdentity) {
  Rng rng(3);
  SpikingDropout dropout(0.5F, rng);
  dropout.begin_sequence({1, 10}, 1, /*train=*/false);
  Tensor x({1, 10}, 1.0F);
  EXPECT_TRUE(dropout.step_forward(x, 0, false).allclose(x));
}

TEST(SpikingFlattenTest, RoundTrip) {
  SpikingFlatten flatten;
  flatten.begin_sequence({2, 3, 4, 4}, 1, true);
  Tensor x({2, 3, 4, 4}, 1.0F);
  const Tensor y = flatten.step_forward(x, 0, true);
  EXPECT_EQ(y.shape(), Shape({2, 48}));
  EXPECT_EQ(flatten.step_backward(Tensor({2, 48}), 0).shape(), x.shape());
}

TEST(SpikingResidualBlockTest, IdentitySkipFeedsJoinNeuron) {
  // Zero convs: output neuron integrates only the skip input.
  Conv2dSpec spec{1, 1, 3, 1, 1};
  SpikingResidualBlock block(Tensor({1, 1, 3, 3}), spec, if_config(1.0F),
                             Tensor({1, 1, 3, 3}), spec, if_config(1.0F), Tensor(),
                             Conv2dSpec{});
  block.begin_sequence({1, 1, 2, 2}, 1, false);
  Tensor input({1, 1, 2, 2}, 1.5F);
  const Tensor out = block.step_forward(input, 0, false);
  // Skip current 1.5 > threshold 1.0 -> all neurons spike.
  EXPECT_FLOAT_EQ(out.sum(), 4.0F);
}

TEST(SpikingResidualBlockTest, ProjectionChangesShape) {
  Conv2dSpec c1{2, 4, 3, 2, 1};
  Conv2dSpec c2{4, 4, 3, 1, 1};
  Conv2dSpec proj{2, 4, 1, 2, 0};
  Rng rng(5);
  Tensor w1({4, 2, 3, 3});
  Tensor w2({4, 4, 3, 3});
  Tensor wp({4, 2, 1, 1});
  uniform_fill(w1, -0.3F, 0.3F, rng);
  uniform_fill(w2, -0.3F, 0.3F, rng);
  uniform_fill(wp, -0.3F, 0.3F, rng);
  SpikingResidualBlock block(w1, c1, if_config(), w2, c2, if_config(), wp, proj);
  block.begin_sequence({1, 2, 8, 8}, 1, false);
  Tensor input({1, 2, 8, 8}, 0.5F);
  const Tensor out = block.step_forward(input, 0, false);
  EXPECT_EQ(out.shape(), Shape({1, 4, 4, 4}));
  EXPECT_EQ(block.output_shape({1, 2, 8, 8}), Shape({1, 4, 4, 4}));
}

TEST(SpikingResidualBlockTest, ParamsAndStats) {
  Conv2dSpec spec{1, 1, 3, 1, 1};
  SpikingResidualBlock block(Tensor({1, 1, 3, 3}), spec, if_config(),
                             Tensor({1, 1, 3, 3}), spec, if_config(), Tensor(),
                             Conv2dSpec{});
  // conv1 + th1 + leak1 + conv2 + th2 + leak2.
  EXPECT_EQ(block.params().size(), 6U);
  block.begin_sequence({1, 1, 2, 2}, 1, false);
  EXPECT_EQ(block.neurons(), 8);  // two neuron populations of 4
}

}  // namespace
}  // namespace ullsnn::snn
