// Equivalence and accounting tests for the event-driven inference engine:
// it must produce the same logits as the dense time-stepped simulator and
// its accumulate count must track the input spike sparsity.
#include "src/snn/event_driven.h"

#include <gtest/gtest.h>

#include "src/core/converter.h"
#include "src/dnn/activations.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/linear.h"
#include "src/dnn/models.h"
#include "src/dnn/pooling.h"
#include "src/tensor/random.h"

namespace ullsnn::snn {
namespace {

data::LabeledImages calib_data(std::int64_t image_size, std::int64_t n = 48) {
  data::SyntheticCifarSpec spec;
  spec.image_size = image_size;
  spec.num_classes = 3;
  data::SyntheticCifar gen(spec);
  data::LabeledImages d = gen.generate(n, 1);
  data::standardize(d);
  return d;
}

TEST(EventDrivenTest, MatchesDenseOnConvLinearNet) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 6, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(1.0F);
  model.emplace<dnn::MaxPool2d>();
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(6 * 4 * 4, 8, false, rng);
  model.emplace<dnn::ThresholdReLU>(1.0F);
  model.emplace<dnn::Linear>(8, 3, false, rng);
  const auto calib = calib_data(8);
  core::ConversionConfig cc;
  cc.time_steps = 3;
  auto net = core::convert(model, calib, cc, nullptr);

  Tensor images({4, 3, 8, 8});
  uniform_fill(images, -1.0F, 1.0F, rng);
  const Tensor dense = net->forward(images, false);
  EventDrivenEngine engine(*net);
  const Tensor sparse = engine.forward(images);
  EXPECT_TRUE(sparse.allclose(dense, 1e-3F));
  EXPECT_GT(engine.stats().events_processed, 0);
}

TEST(EventDrivenTest, MatchesDenseOnStridedConv) {
  Rng rng(2);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(2, 4, 3, 2, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(1.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(4 * 4 * 4, 3, false, rng);
  data::LabeledImages calib;
  calib.images = Tensor({8, 2, 8, 8});
  uniform_fill(calib.images, -1.0F, 1.0F, rng);
  calib.labels.assign(8, 0);
  core::ConversionConfig cc;
  cc.time_steps = 2;
  auto net = core::convert(model, calib, cc, nullptr);

  Tensor images({2, 2, 8, 8});
  uniform_fill(images, -1.0F, 1.0F, rng);
  const Tensor dense = net->forward(images, false);
  EventDrivenEngine engine(*net);
  EXPECT_TRUE(engine.forward(images).allclose(dense, 1e-3F));
}

TEST(EventDrivenTest, MatchesDenseOnResNet) {
  Rng rng(3);
  dnn::ModelConfig mc;
  mc.width = 0.125F;
  mc.num_classes = 3;
  mc.image_size = 8;
  auto model = dnn::build_resnet(20, mc, rng);
  const auto calib = calib_data(8);
  core::ConversionConfig cc;
  cc.time_steps = 2;
  auto net = core::convert(*model, calib, cc, nullptr);

  Tensor images({2, 3, 8, 8});
  uniform_fill(images, -1.0F, 1.0F, rng);
  const Tensor dense = net->forward(images, false);
  EventDrivenEngine engine(*net);
  EXPECT_TRUE(engine.forward(images).allclose(dense, 1e-3F));
}

TEST(EventDrivenTest, OpsScaleWithSparsity) {
  // Same network, two inputs: a dense analog one and one that silences most
  // pixels. The hidden-layer AC count must shrink accordingly.
  Rng rng(4);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(1, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(0.5F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(8 * 8 * 8, 3, false, rng);
  data::LabeledImages calib;
  calib.images = Tensor({8, 1, 8, 8});
  uniform_fill(calib.images, 0.0F, 1.0F, rng);
  calib.labels.assign(8, 0);
  core::ConversionConfig cc;
  cc.time_steps = 2;
  auto net = core::convert(model, calib, cc, nullptr);

  EventDrivenEngine engine(*net);
  Tensor hot({1, 1, 8, 8}, 1.0F);
  engine.forward(hot);
  const std::int64_t hot_acs = engine.stats().accumulate_ops;
  engine.reset_stats();
  Tensor cold({1, 1, 8, 8});
  cold[0] = 1.0F;  // single active pixel
  engine.forward(cold);
  const std::int64_t cold_acs = engine.stats().accumulate_ops;
  EXPECT_LT(cold_acs, hot_acs / 8);
  EXPECT_LE(engine.stats().accumulate_ops, engine.stats().dense_equivalent_ops);
}

TEST(EventDrivenTest, ZeroInputDoesNoSynapticWork) {
  Rng rng(5);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(1, 4, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(1.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(4 * 4 * 4, 2, false, rng);
  data::LabeledImages calib;
  calib.images = Tensor({4, 1, 4, 4});
  uniform_fill(calib.images, 0.0F, 1.0F, rng);
  calib.labels.assign(4, 0);
  core::ConversionConfig cc;
  cc.time_steps = 4;
  auto net = core::convert(model, calib, cc, nullptr);

  EventDrivenEngine engine(*net);
  const Tensor logits = engine.forward(Tensor({1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(logits.sum(), 0.0F);
  EXPECT_EQ(engine.stats().events_processed, 0);
  EXPECT_EQ(engine.stats().accumulate_ops, 0);
}

TEST(EventDrivenTest, RejectsPoissonEncoding) {
  Rng rng(6);
  auto net = std::make_unique<SnnNetwork>(2);
  net->emplace<SpikingLinear>(Tensor({2, 2}, 1.0F), IfConfig{}, false);
  net->set_encoding(Encoding::kPoisson);
  EventDrivenEngine engine(*net);
  EXPECT_THROW(engine.forward(Tensor({1, 2}, 1.0F)), std::invalid_argument);
}

}  // namespace
}  // namespace ullsnn::snn
