// Property tests tying the IF simulator to the closed-form SNN activation
// staircase used by the Sec. III-A analysis and Algorithm 1 (Eq. 5 and its
// Fig. 1(b) scaling): for a constant drive s presented for T steps, the
// simulated average output must equal snn_activation(s, ...) exactly.
// This is the invariant that makes the scaling search's loss model valid.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/delta_analysis.h"
#include "src/snn/neuron.h"

namespace ullsnn {
namespace {

struct StaircaseCase {
  float drive;    // constant input current s
  float mu;       // DNN threshold (V_th = alpha * mu)
  float alpha;
  float beta;
  std::int64_t t;
  bool bias_shift;
};

class StaircaseTest : public ::testing::TestWithParam<StaircaseCase> {};

TEST_P(StaircaseTest, SimulatedAverageMatchesClosedForm) {
  const StaircaseCase& c = GetParam();
  snn::IfConfig config;
  config.v_threshold = c.alpha * c.mu;
  config.beta = c.beta;
  config.initial_membrane_fraction = c.bias_shift ? 0.5F : 0.0F;
  snn::IfNeuron neuron(config);
  neuron.begin_sequence({1, 1}, c.t, /*train=*/false);
  Tensor current({1, 1}, c.drive);
  double total = 0.0;
  for (std::int64_t step = 0; step < c.t; ++step) {
    total += neuron.step_forward(current, step, false)[0];
  }
  const double simulated = total / static_cast<double>(c.t);
  const double predicted =
      core::snn_activation(c.drive, c.mu, c.alpha, c.beta, c.t, c.bias_shift);
  EXPECT_NEAR(simulated, predicted, 1e-5)
      << "s=" << c.drive << " mu=" << c.mu << " alpha=" << c.alpha
      << " beta=" << c.beta << " T=" << c.t << " bias=" << c.bias_shift;
}

// Sweep drives across all staircase segments, both bias conventions, several
// (alpha, beta, T) combinations. Drives sit strictly inside steps to avoid
// float ties at the exact step boundaries.
INSTANTIATE_TEST_SUITE_P(
    Sweep, StaircaseTest,
    ::testing::Values(
        // Below threshold region.
        StaircaseCase{0.10F, 1.0F, 1.0F, 1.0F, 2, false},
        StaircaseCase{-0.50F, 1.0F, 1.0F, 1.0F, 4, false},
        // Interior steps.
        StaircaseCase{0.60F, 1.0F, 1.0F, 1.0F, 2, false},
        StaircaseCase{0.60F, 1.0F, 1.0F, 1.0F, 4, false},
        StaircaseCase{0.35F, 1.0F, 1.0F, 1.0F, 8, false},
        StaircaseCase{0.85F, 1.0F, 1.0F, 1.0F, 8, false},
        // Saturation.
        StaircaseCase{2.30F, 1.0F, 1.0F, 1.0F, 2, false},
        StaircaseCase{5.00F, 1.0F, 1.0F, 1.0F, 3, false},
        // Alpha-scaled thresholds.
        StaircaseCase{0.30F, 1.0F, 0.5F, 1.0F, 2, false},
        StaircaseCase{0.30F, 1.0F, 0.5F, 2.0F, 2, false},
        StaircaseCase{0.22F, 2.0F, 0.25F, 1.5F, 4, false},
        // Beta-only scaling.
        StaircaseCase{0.60F, 1.0F, 1.0F, 0.5F, 2, false},
        StaircaseCase{0.60F, 1.0F, 1.0F, 1.9F, 3, false},
        // Bias-shifted variants (Deng-style initial half-threshold charge).
        StaircaseCase{0.30F, 1.0F, 1.0F, 1.0F, 2, true},
        StaircaseCase{0.45F, 1.0F, 1.0F, 1.0F, 2, true},
        StaircaseCase{0.10F, 1.0F, 1.0F, 1.0F, 5, true},
        StaircaseCase{0.95F, 1.0F, 1.0F, 1.0F, 5, true},
        StaircaseCase{0.30F, 2.0F, 0.5F, 1.0F, 3, true}));

TEST(StaircaseTest, AverageIsMonotoneInDrive) {
  // The staircase is a monotone non-decreasing function of the drive.
  snn::IfConfig config;
  config.v_threshold = 1.0F;
  double prev = -1.0;
  for (float s = -0.5F; s < 2.5F; s += 0.03F) {
    snn::IfNeuron neuron(config);
    neuron.begin_sequence({1, 1}, 6, false);
    Tensor current({1, 1}, s);
    double total = 0.0;
    for (std::int64_t t = 0; t < 6; ++t) total += neuron.step_forward(current, t, false)[0];
    EXPECT_GE(total + 1e-6, prev) << "at s=" << s;
    prev = total;
  }
}

TEST(StaircaseTest, ConvergesToClipAsTGrows) {
  // sup-norm distance between the T-step staircase and clip(s, 0, V_th)
  // shrinks like V_th/T.
  for (const std::int64_t t : {4, 16, 64}) {
    double worst = 0.0;
    for (float s = 0.0F; s <= 1.5F; s += 0.01F) {
      const double stair = core::snn_activation(s, 1.0F, 1.0F, 1.0F, t, false);
      const double clip = core::dnn_activation(s, 1.0F);
      worst = std::max(worst, std::abs(stair - clip));
    }
    EXPECT_LE(worst, 1.0 / static_cast<double>(t) + 1e-4) << "T=" << t;
  }
}

}  // namespace
}  // namespace ullsnn
