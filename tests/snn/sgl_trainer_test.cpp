#include "src/snn/sgl_trainer.h"

#include <gtest/gtest.h>

#include "src/core/converter.h"
#include "src/dnn/activations.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/linear.h"
#include "src/dnn/pooling.h"
#include "src/dnn/trainer.h"

namespace ullsnn::snn {
namespace {

data::LabeledImages easy_data(std::int64_t n, std::uint64_t salt) {
  data::SyntheticCifarSpec spec;
  spec.image_size = 8;
  spec.num_classes = 3;
  spec.sign_flip_prob = 0.0F;
  spec.occluder_prob = 0.0F;
  spec.noise_stddev = 0.1F;
  data::SyntheticCifar gen(spec);
  data::LabeledImages d = gen.generate(n, salt);
  data::standardize(d);
  return d;
}

TEST(SglTrainerTest, ImprovesConvertedNetwork) {
  // Train a tiny DNN partially, convert at T=2 (lossy), and verify SGL
  // raises train accuracy above the conversion baseline.
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(1.0F);
  model.emplace<dnn::MaxPool2d>();
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(8 * 4 * 4, 3, false, rng);

  const data::LabeledImages train = easy_data(192, 1);
  dnn::TrainConfig tc;
  tc.epochs = 8;
  tc.augment = false;
  dnn::DnnTrainer dnn_trainer(model, tc);
  dnn_trainer.fit(train);

  core::ConversionConfig cc;
  cc.time_steps = 2;
  auto net = core::convert(model, train, cc, nullptr);
  const double before = evaluate_snn(*net, train);

  SglConfig sc;
  sc.epochs = 6;
  sc.lr = 3e-4F;
  sc.augment = false;
  SglTrainer sgl(*net, sc);
  const auto history = sgl.fit(train);
  const double after = sgl.evaluate(train);
  EXPECT_GE(after, before - 0.02);
  EXPECT_GT(after, 0.5);
  ASSERT_EQ(history.size(), 6U);
}

TEST(SglTrainerTest, NeuronParamsStayPhysical) {
  Rng rng(2);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 4, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(1.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(4 * 8 * 8, 3, false, rng);
  const data::LabeledImages train = easy_data(64, 1);
  core::ConversionConfig cc;
  cc.time_steps = 2;
  auto net = core::convert(model, train, cc, nullptr);

  SglConfig sc;
  sc.epochs = 3;
  sc.lr = 0.05F;  // aggressive on purpose: exercises the clamps
  sc.augment = false;
  SglTrainer sgl(*net, sc);
  sgl.fit(train);
  for (dnn::Param* p : net->params()) {
    if (p->name == "if.threshold") {
      EXPECT_GT(p->value[0], 0.0F);
    }
    if (p->name == "if.leak") {
      EXPECT_GE(p->value[0], 0.0F);
      EXPECT_LE(p->value[0], 1.0F);
    }
  }
}

TEST(SglTrainerTest, TrainsThresholdAndLeak) {
  Rng rng(3);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 4, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(1.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(4 * 8 * 8, 3, false, rng);
  const data::LabeledImages train = easy_data(64, 1);
  core::ConversionConfig cc;
  cc.time_steps = 2;
  auto net = core::convert(model, train, cc, nullptr);
  float th_before = 0.0F;
  for (dnn::Param* p : net->params()) {
    if (p->name == "if.threshold") th_before = p->value[0];
  }
  SglConfig sc;
  sc.epochs = 2;
  sc.lr = 1e-2F;
  sc.augment = false;
  SglTrainer sgl(*net, sc);
  sgl.fit(train);
  float th_after = 0.0F;
  for (dnn::Param* p : net->params()) {
    if (p->name == "if.threshold") th_after = p->value[0];
  }
  EXPECT_NE(th_before, th_after);
}

}  // namespace
}  // namespace ullsnn::snn
