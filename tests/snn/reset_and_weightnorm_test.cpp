// Tests for the hard-reset neuron variant and the Diehl/Rueckauer
// weight-normalization conversion mode.
#include <gtest/gtest.h>

#include "src/core/converter.h"
#include "src/dnn/activations.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/linear.h"
#include "src/dnn/trainer.h"
#include "src/snn/neuron.h"

namespace ullsnn::snn {
namespace {

TEST(HardResetTest, DiscardsSurplusCharge) {
  IfConfig config;
  config.v_threshold = 1.0F;
  config.reset = ResetMode::kZero;
  IfNeuron neuron(config);
  neuron.begin_sequence({1, 1}, 2, false);
  Tensor current({1, 1}, 1.7F);
  EXPECT_FLOAT_EQ(neuron.step_forward(current, 0, false)[0], 1.0F);
  // Hard reset: membrane went to 0, not 0.7.
  EXPECT_FLOAT_EQ(neuron.membrane()[0], 0.0F);
}

TEST(HardResetTest, UnderCountsRateVsSoftReset) {
  // With drive 0.7 over many steps: soft reset fires at rate ~0.7, hard
  // reset the same here (no overshoot); with drive 1.7 soft reset fires
  // every step AND carries surplus; hard reset caps at 1 spike/step too but
  // discards 0.7 per spike => same rate. The regime where they differ is
  // drive in (V_th, 2 V_th) with uneven arrival — model with alternating
  // drive.
  IfConfig soft_cfg;
  soft_cfg.v_threshold = 1.0F;
  IfConfig hard_cfg = soft_cfg;
  hard_cfg.reset = ResetMode::kZero;
  IfNeuron soft(soft_cfg);
  IfNeuron hard(hard_cfg);
  const std::int64_t steps = 200;
  soft.begin_sequence({1, 1}, steps, false);
  hard.begin_sequence({1, 1}, steps, false);
  for (std::int64_t t = 0; t < steps; ++t) {
    // Alternating 1.5 / 0.2 drive: average 0.85.
    Tensor current({1, 1}, (t % 2 == 0) ? 1.5F : 0.2F);
    soft.step_forward(current, t, false);
    hard.step_forward(current, t, false);
  }
  // Soft reset conserves charge: rate ~ 0.85. Hard reset loses the 0.5
  // surplus on every even step: rate ~ 0.5.
  EXPECT_NEAR(static_cast<double>(soft.spikes_emitted()) / steps, 0.85, 0.03);
  EXPECT_LT(hard.spikes_emitted(), soft.spikes_emitted());
}

// Weight-normalized conversion: thresholds 1, weights rescaled; at high T it
// must track the DNN like threshold balancing does (rate equivalence).
TEST(WeightNormConversionTest, HighTTracksDnn) {
  data::SyntheticCifarSpec spec;
  spec.image_size = 8;
  spec.num_classes = 3;
  spec.sign_flip_prob = 0.0F;
  spec.occluder_prob = 0.0F;
  spec.noise_stddev = 0.1F;
  data::SyntheticCifar gen(spec);
  data::LabeledImages train = gen.generate(256, 1);
  data::standardize(train);

  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(1.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(8 * 8 * 8, 8, false, rng);
  model.emplace<dnn::ThresholdReLU>(1.0F);
  model.emplace<dnn::Linear>(8, 3, false, rng);

  dnn::TrainConfig tc;
  tc.epochs = 15;
  tc.augment = false;
  dnn::DnnTrainer trainer(model, tc);
  trainer.fit(train);
  const double dnn_acc = trainer.evaluate(train);
  ASSERT_GT(dnn_acc, 0.7);

  core::ConversionConfig cc;
  cc.mode = core::ConversionMode::kWeightNorm;
  cc.heuristic_percentile = 99.5F;
  cc.time_steps = 64;
  core::ConversionReport report;
  auto net = core::convert(model, train, cc, &report);
  // All thresholds are exactly 1 in this mode.
  for (const auto& site : report.sites) {
    EXPECT_FLOAT_EQ(site.v_threshold, 1.0F);
    EXPECT_GT(site.norm_factor, 0.0F);
  }
  const double snn_acc = evaluate_snn(*net, train);
  EXPECT_GT(snn_acc, dnn_acc - 0.15);
}

TEST(WeightNormConversionTest, WeightsAreRescaledCopies) {
  data::SyntheticCifarSpec spec;
  spec.image_size = 8;
  spec.num_classes = 3;
  data::SyntheticCifar gen(spec);
  data::LabeledImages calib = gen.generate(32, 1);
  data::standardize(calib);

  Rng rng(2);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 4, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(1.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(4 * 8 * 8, 3, false, rng);

  core::ConversionConfig cc;
  cc.mode = core::ConversionMode::kWeightNorm;
  cc.time_steps = 4;
  core::ConversionReport report;
  auto net = core::convert(model, calib, cc, &report);
  ASSERT_EQ(report.sites.size(), 1U);
  const float lambda = report.sites[0].norm_factor;
  auto* sconv = dynamic_cast<SpikingConv2d*>(&net->layer(0));
  ASSERT_NE(sconv, nullptr);
  auto* dconv = dynamic_cast<dnn::Conv2d*>(&model.layer(0));
  // Conv weights scaled by 1/lambda; readout scaled back by lambda.
  Tensor expected = dconv->weight().value * (1.0F / lambda);
  EXPECT_TRUE(sconv->synapse().weight().value.allclose(expected, 1e-5F));
}

TEST(ConversionConfigTest, HardResetPropagates) {
  data::SyntheticCifarSpec spec;
  spec.image_size = 8;
  spec.num_classes = 3;
  data::SyntheticCifar gen(spec);
  data::LabeledImages calib = gen.generate(32, 1);
  data::standardize(calib);
  Rng rng(3);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 4, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(1.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(4 * 8 * 8, 3, false, rng);

  core::ConversionConfig cc;
  cc.reset = ResetMode::kZero;
  cc.time_steps = 2;
  auto net = core::convert(model, calib, cc, nullptr);
  // Behavioural check: run a forward pass; with hard reset the membrane of
  // the conv layer is exactly 0 wherever a spike fired at the last step.
  Tensor x({1, 3, 8, 8}, 1.0F);
  net->forward(x, false);
  auto* sconv = dynamic_cast<SpikingConv2d*>(&net->layer(0));
  ASSERT_NE(sconv, nullptr);
  const IfNeuron* neuron = sconv->neuron_or_null();
  ASSERT_NE(neuron, nullptr);
  EXPECT_GT(neuron->spikes_emitted(), 0);
}

}  // namespace
}  // namespace ullsnn::snn
