#include "src/snn/encoding.h"

#include <gtest/gtest.h>

namespace ullsnn::snn {
namespace {

TEST(EncodingTest, DirectIsPassThrough) {
  Rng rng(1);
  Tensor images({2, 3}, 0.37F);
  const Tensor out = encode_step(images, Encoding::kDirect, rng);
  EXPECT_TRUE(out.allclose(images));
}

TEST(EncodingTest, PoissonRateMatchesMagnitude) {
  Rng rng(2);
  Tensor images({1, 100000}, 0.3F);
  std::int64_t spikes = 0;
  const Tensor out = encode_step(images, Encoding::kPoisson, rng);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(out[i] == 0.0F || out[i] == 1.0F);
    spikes += out[i] != 0.0F ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(spikes) / 100000.0, 0.3, 0.01);
}

TEST(EncodingTest, PoissonCarriesSign) {
  Rng rng(3);
  Tensor images({1, 10000}, -0.8F);
  const Tensor out = encode_step(images, Encoding::kPoisson, rng);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(out[i] == 0.0F || out[i] == -1.0F);
  }
  EXPECT_LT(out.sum(), 0.0F);
}

TEST(EncodingTest, PoissonClipsProbabilityAtOne) {
  Rng rng(4);
  Tensor images({1, 1000}, 5.0F);
  const Tensor out = encode_step(images, Encoding::kPoisson, rng);
  EXPECT_FLOAT_EQ(out.sum(), 1000.0F);  // p clipped to 1: always spikes
}

TEST(EncodingTest, PoissonStepsDiffer) {
  Rng rng(5);
  Tensor images({1, 1000}, 0.5F);
  const Tensor a = encode_step(images, Encoding::kPoisson, rng);
  const Tensor b = encode_step(images, Encoding::kPoisson, rng);
  EXPECT_FALSE(a.allclose(b));
}

}  // namespace
}  // namespace ullsnn::snn
