// Exactness checks for the pieces of BPTT that are NOT surrogate
// approximations: the readout (neuron-free) layer's weight gradient, the
// synaptic weight gradient under frozen spike inputs, and gradient flow
// through multi-step membrane carries.
#include <gtest/gtest.h>

#include <cmath>

#include "src/dnn/loss.h"
#include "src/snn/snn_network.h"
#include "src/tensor/random.h"

namespace ullsnn::snn {
namespace {

TEST(BpttGradientTest, ReadoutWeightGradientIsExact) {
  // logits = sum_t W x_t  =>  dL/dW = sum_t g x_t^T, with no surrogate
  // involved. Check against finite differences through the whole network
  // forward (single linear readout, fixed analog input).
  const std::int64_t t_steps = 3;
  Rng rng(1);
  Tensor w({2, 4});
  uniform_fill(w, -0.5F, 0.5F, rng);
  auto net = std::make_unique<SnnNetwork>(t_steps);
  auto& layer = net->emplace<SpikingLinear>(w, IfConfig{}, /*with_neuron=*/false);

  Tensor images({1, 4});
  uniform_fill(images, -1.0F, 1.0F, rng);
  const std::vector<std::int64_t> labels = {1};

  const Tensor logits = net->forward(images, /*train=*/true);
  dnn::LossResult loss = dnn::softmax_cross_entropy(logits, labels);
  net->backward(loss.grad);
  const Tensor analytic = layer.synapse().weight().grad;

  const float eps = 1e-3F;
  for (std::int64_t idx = 0; idx < w.numel(); ++idx) {
    Tensor& wref = layer.synapse().weight().value;
    const float saved = wref[idx];
    wref[idx] = saved + eps;
    const float fp =
        dnn::softmax_cross_entropy(net->forward(images, false), labels).loss;
    wref[idx] = saved - eps;
    const float fm =
        dnn::softmax_cross_entropy(net->forward(images, false), labels).loss;
    wref[idx] = saved;
    EXPECT_NEAR(analytic[idx], (fp - fm) / (2.0F * eps), 1e-3F) << idx;
  }
}

TEST(BpttGradientTest, HiddenWeightGradientExactWhenSpikesAreStable) {
  // Pick drives far from spike/no-spike boundaries so an eps-perturbation of
  // the hidden weight does not flip any spike; then the loss is locally
  // linear in the readout path and the surrogate region (u in [0, 2Vth])
  // gives derivative 1, matching the true local sensitivity of the membrane
  // accumulation path only when no spikes flip — which FD verifies.
  const std::int64_t t_steps = 2;
  Rng rng(2);
  // Hidden layer: 1x1 "conv" acting as scalar weight per channel.
  Tensor wh({2, 2, 1, 1});
  wh.at(0, 0, 0, 0) = 0.8F;
  wh.at(1, 1, 0, 0) = 0.8F;
  IfConfig neuron;
  neuron.v_threshold = 1.0F;
  auto net = std::make_unique<SnnNetwork>(t_steps);
  auto& hidden = net->emplace<SpikingConv2d>(wh, Conv2dSpec{2, 2, 1, 1, 0}, neuron);
  net->emplace<SpikingFlatten>();
  Tensor wr({2, 2}, 0.7F);
  net->emplace<SpikingLinear>(wr, IfConfig{}, /*with_neuron=*/false);

  Tensor images({1, 2, 1, 1});
  images[0] = 0.9F;  // u_temp: 0.72, 1.44 -> spike at t=1 comfortably
  images[1] = 0.9F;
  const std::vector<std::int64_t> labels = {0};

  const Tensor logits = net->forward(images, /*train=*/true);
  dnn::LossResult loss = dnn::softmax_cross_entropy(logits, labels);
  net->backward(loss.grad);
  const Tensor analytic = hidden.synapse().weight().grad;

  // Diagonal weights only (off-diagonals are 0 and their perturbation can
  // flip spikes; stay in the stable regime).
  const float eps = 1e-3F;
  for (const std::int64_t idx : {std::int64_t{0}, std::int64_t{3}}) {
    Tensor& wref = hidden.synapse().weight().value;
    const float saved = wref[idx];
    wref[idx] = saved + eps;
    const float fp =
        dnn::softmax_cross_entropy(net->forward(images, false), labels).loss;
    wref[idx] = saved - eps;
    const float fm =
        dnn::softmax_cross_entropy(net->forward(images, false), labels).loss;
    wref[idx] = saved;
    const float fd = (fp - fm) / (2.0F * eps);
    // Spike count is locally constant, so FD sees 0 through the spike path;
    // the surrogate intentionally reports a nonzero "how close to flipping"
    // signal instead. They agree in sign conventions but not magnitude, so
    // only check the analytic gradient is finite and the FD is ~0 or matches.
    EXPECT_TRUE(std::isfinite(analytic[idx]));
    EXPECT_NEAR(fd, 0.0F, 1e-4F) << "spikes should be stable at idx " << idx;
  }
}

TEST(BpttGradientTest, GradientsAccumulateAcrossSteps) {
  // With identical per-step inputs, the readout weight grad after T steps is
  // T times the single-step grad (logits sum => same g each step).
  Rng rng(3);
  Tensor w({2, 3});
  uniform_fill(w, -0.5F, 0.5F, rng);
  Tensor images({1, 3}, 0.5F);
  const Tensor g({1, 2}, 1.0F);

  auto run = [&](std::int64_t t_steps) {
    auto net = std::make_unique<SnnNetwork>(t_steps);
    auto& layer = net->emplace<SpikingLinear>(w, IfConfig{}, false);
    net->forward(images, true);
    net->backward(g);
    return layer.synapse().weight().grad;
  };
  const Tensor g1 = run(1);
  const Tensor g4 = run(4);
  EXPECT_TRUE(g4.allclose(g1 * 4.0F, 1e-4F));
}

}  // namespace
}  // namespace ullsnn::snn
