#include "src/snn/neuron.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ullsnn::snn {
namespace {

IfConfig if_config(float v_th = 1.0F, float leak = 1.0F, float beta = 1.0F,
                   float init_frac = 0.0F) {
  IfConfig c;
  c.v_threshold = v_th;
  c.leak = leak;
  c.beta = beta;
  c.initial_membrane_fraction = init_frac;
  return c;
}

TEST(IfNeuronTest, NoSpikeBelowThreshold) {
  IfNeuron n(if_config());
  n.begin_sequence({1, 1}, 4, false);
  Tensor current({1, 1}, 0.4F);
  for (std::int64_t t = 0; t < 2; ++t) {
    EXPECT_FLOAT_EQ(n.step_forward(current, t, false)[0], 0.0F);
  }
  // Membrane integrated 0.8 so far; third step crosses 1.0.
  EXPECT_FLOAT_EQ(n.step_forward(current, 2, false)[0], 1.0F);
}

TEST(IfNeuronTest, SoftResetKeepsSurplus) {
  IfNeuron n(if_config());
  n.begin_sequence({1, 1}, 2, false);
  Tensor current({1, 1}, 1.7F);
  EXPECT_FLOAT_EQ(n.step_forward(current, 0, false)[0], 1.0F);
  // Surplus 0.7 kept: 0.7 + 1.7 = 2.4 > 1 -> spike again, membrane 1.4.
  EXPECT_FLOAT_EQ(n.step_forward(current, 1, false)[0], 1.0F);
  EXPECT_NEAR(n.membrane()[0], 1.4F, 1e-6F);
}

TEST(IfNeuronTest, RateCodesInput) {
  // Over many steps, spike rate ~= drive / threshold (IF, soft reset).
  IfNeuron n(if_config(1.0F));
  const std::int64_t steps = 1000;
  n.begin_sequence({1, 1}, steps, false);
  Tensor current({1, 1}, 0.37F);
  for (std::int64_t t = 0; t < steps; ++t) n.step_forward(current, t, false);
  const double rate =
      static_cast<double>(n.spikes_emitted()) / static_cast<double>(steps);
  EXPECT_NEAR(rate, 0.37, 0.005);
}

TEST(IfNeuronTest, LeakDecaysMembrane) {
  IfNeuron n(if_config(10.0F, 0.5F));
  n.begin_sequence({1, 1}, 3, false);
  Tensor current({1, 1}, 1.0F);
  n.step_forward(current, 0, false);  // U = 1
  n.step_forward(current, 1, false);  // U = 0.5 + 1 = 1.5
  EXPECT_NEAR(n.membrane()[0], 1.5F, 1e-6F);
  n.step_forward(current, 2, false);  // U = 0.75 + 1 = 1.75
  EXPECT_NEAR(n.membrane()[0], 1.75F, 1e-6F);
}

TEST(IfNeuronTest, BetaScalesAmplitudeOnly) {
  IfNeuron n(if_config(2.0F, 1.0F, 0.25F));
  n.begin_sequence({1, 1}, 1, false);
  Tensor current({1, 1}, 3.0F);
  const Tensor s = n.step_forward(current, 0, false);
  EXPECT_FLOAT_EQ(s[0], 0.25F * 2.0F);     // amplitude beta * V_th
  EXPECT_NEAR(n.membrane()[0], 1.0F, 1e-6F);  // reset subtracts V_th, not beta*V_th
}

TEST(IfNeuronTest, InitialMembraneFraction) {
  IfNeuron n(if_config(2.0F, 1.0F, 1.0F, 0.5F));
  n.begin_sequence({1, 1}, 1, false);
  EXPECT_FLOAT_EQ(n.membrane()[0], 1.0F);
  // With bias charge 1.0, a current of 1.1 crosses the threshold at once.
  Tensor current({1, 1}, 1.1F);
  EXPECT_FLOAT_EQ(n.step_forward(current, 0, false)[0], 2.0F);
}

TEST(IfNeuronTest, SpikeCountStats) {
  IfNeuron n(if_config());
  n.begin_sequence({2, 3}, 1, false);
  EXPECT_EQ(n.neurons(), 3);  // per sample
  Tensor current({2, 3}, 2.0F);
  n.step_forward(current, 0, false);
  EXPECT_EQ(n.spikes_emitted(), 6);
  n.reset_stats();
  EXPECT_EQ(n.spikes_emitted(), 0);
}

TEST(IfNeuronTest, ShapeMismatchThrows) {
  IfNeuron n(if_config());
  n.begin_sequence({1, 2}, 1, false);
  EXPECT_THROW(n.step_forward(Tensor({1, 3}), 0, false), std::invalid_argument);
}

TEST(IfNeuronTest, ValidatesConfig) {
  EXPECT_THROW(IfNeuron(if_config(0.0F)), std::invalid_argument);
  EXPECT_THROW(IfNeuron(if_config(1.0F, -0.1F)), std::invalid_argument);
  EXPECT_THROW(IfNeuron(if_config(1.0F, 1.1F)), std::invalid_argument);
}

TEST(IfNeuronTest, SetThresholdValidates) {
  IfNeuron n(if_config());
  EXPECT_THROW(n.set_threshold(-1.0F), std::invalid_argument);
  n.set_threshold(2.5F);
  EXPECT_FLOAT_EQ(n.threshold(), 2.5F);
}

// ---- BPTT gradient behaviour ----

TEST(IfNeuronBackwardTest, SurrogatePassesGradientNearThreshold) {
  IfNeuron n(if_config(1.0F));
  n.begin_sequence({1, 1}, 1, true);
  Tensor current({1, 1}, 0.9F);  // u_temp = 0.9, inside [0, 2]
  n.step_forward(current, 0, true);
  n.begin_backward();
  const Tensor g = n.step_backward(Tensor({1, 1}, 1.0F), 0);
  EXPECT_FLOAT_EQ(g[0], 1.0F);  // boxcar surrogate = 1
}

TEST(IfNeuronBackwardTest, SurrogateBlocksFarFromThreshold) {
  IfNeuron n(if_config(1.0F));
  n.begin_sequence({1, 1}, 1, true);
  Tensor current({1, 1}, 5.0F);  // u_temp = 5 > 2*V_th
  n.step_forward(current, 0, true);
  n.begin_backward();
  const Tensor g = n.step_backward(Tensor({1, 1}, 1.0F), 0);
  EXPECT_FLOAT_EQ(g[0], 0.0F);
}

TEST(IfNeuronBackwardTest, GradientFlowsThroughTimeViaLeak) {
  IfNeuron n(if_config(10.0F, 0.5F));  // high threshold: no spikes
  n.begin_sequence({1, 1}, 2, true);
  Tensor current({1, 1}, 0.1F);
  n.step_forward(current, 0, true);
  n.step_forward(current, 1, true);
  n.begin_backward();
  // Only step 1's output gets gradient; its surrogate = 1 (u in [0,20]).
  const Tensor g1 = n.step_backward(Tensor({1, 1}, 1.0F), 1);
  EXPECT_FLOAT_EQ(g1[0], 1.0F);
  // Step 0 receives the carry lam * gUtemp = 0.5 even with zero local grad.
  const Tensor g0 = n.step_backward(Tensor({1, 1}, 0.0F), 0);
  EXPECT_FLOAT_EQ(g0[0], 0.5F);
}

TEST(IfNeuronBackwardTest, LeakGradientIsExact) {
  // d(U_temp(1))/d(lam) = U(0); with no spikes, U(0) = current(0).
  IfNeuron n(if_config(100.0F, 0.7F));
  n.begin_sequence({1, 1}, 2, true);
  Tensor c0({1, 1}, 3.0F);
  Tensor c1({1, 1}, 1.0F);
  n.step_forward(c0, 0, true);
  n.step_forward(c1, 1, true);
  n.begin_backward();
  n.step_backward(Tensor({1, 1}, 1.0F), 1);
  n.step_backward(Tensor({1, 1}, 0.0F), 0);
  // gUtemp(1) = 1 (surrogate=1, u_temp=3.1 in [0,200]); dleak += 1 * U(0)=3.
  // At t=0: gUtemp(0) = carry 0.7; dleak += 0.7 * U(-1)=0.
  float leak_grad = 0.0F;
  for (dnn::Param* p : n.params()) {
    if (p->name == "if.leak") leak_grad = p->grad[0];
  }
  EXPECT_FLOAT_EQ(leak_grad, 3.0F);
}

TEST(IfNeuronBackwardTest, ThresholdGradientAmplitudeAndShiftTerms) {
  IfNeuron n(if_config(1.0F, 1.0F, 2.0F));  // beta = 2
  n.begin_sequence({1, 1}, 1, true);
  Tensor current({1, 1}, 1.5F);  // spikes (u=1.5 in [0,2]: surr=1)
  n.step_forward(current, 0, true);
  n.begin_backward();
  n.step_backward(Tensor({1, 1}, 1.0F), 0);
  float th_grad = 0.0F;
  for (dnn::Param* p : n.params()) {
    if (p->name == "if.threshold") th_grad = p->grad[0];
  }
  // dS/dVth = beta*spiked - surr = 2 - 1 = 1.
  EXPECT_FLOAT_EQ(th_grad, 1.0F);
}

TEST(IfNeuronBackwardTest, RequiresTrainingForward) {
  IfNeuron n(if_config());
  n.begin_sequence({1, 1}, 1, false);
  n.step_forward(Tensor({1, 1}, 0.5F), 0, false);
  EXPECT_THROW(n.begin_backward(), std::logic_error);
}

TEST(IfNeuronBackwardTest, ParamsRespectTrainFlags) {
  IfConfig c = if_config();
  c.train_threshold = false;
  c.train_leak = false;
  IfNeuron n(c);
  EXPECT_TRUE(n.params().empty());
  IfNeuron full(if_config());
  EXPECT_EQ(full.params().size(), 2U);
}

}  // namespace
}  // namespace ullsnn::snn
