// Negative compile-check fixture for the thread-safety gate.
//
// This translation unit is NOT part of any build target. It exists so
// tools/check_thread_safety.sh can prove the -Werror=thread-safety gate has
// teeth: compiled as-is, the unlocked read below MUST be rejected by Clang's
// analysis; compiled with -DULLSNN_EXPECT_CLEAN (the violation replaced by a
// properly locked read) it MUST pass, proving the flags and annotations are
// actually in effect rather than silently ignored.
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Account {
 public:
  void deposit(int amount) {
    ullsnn::MutexLock lock(mu_);
    balance_ += amount;
  }

  int read_balance() const {
#if defined(ULLSNN_EXPECT_CLEAN)
    ullsnn::MutexLock lock(mu_);
    return balance_;
#else
    // DELIBERATE BUG: reads a GUARDED_BY(mu_) field without holding mu_.
    // -Werror=thread-safety must refuse to compile this line.
    return balance_;
#endif
  }

 private:
  mutable ullsnn::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.read_balance() == 1 ? 0 : 1;
}
