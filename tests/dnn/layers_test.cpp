#include <gtest/gtest.h>

#include <cmath>

#include "src/dnn/activations.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/dropout.h"
#include "src/dnn/linear.h"
#include "src/dnn/pooling.h"
#include "src/tensor/random.h"

namespace ullsnn::dnn {
namespace {

// Finite-difference check of dL/dx for L = sum(layer(x) * g) at a handful of
// coordinates. Assumes the layer is locally smooth at the probed points.
void check_input_gradient(Layer& layer, const Tensor& input, float eps = 1e-2F,
                          float tol = 2e-2F) {
  Rng rng(99);
  Tensor out = layer.forward(input, /*train=*/true);
  Tensor g(out.shape());
  uniform_fill(g, -1.0F, 1.0F, rng);
  const Tensor grad_input = layer.backward(g);
  ASSERT_EQ(grad_input.shape(), input.shape());

  const auto loss = [&](const Tensor& x) {
    const Tensor y = layer.forward(x, /*train=*/true);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) acc += static_cast<double>(y[i]) * g[i];
    return acc;
  };
  for (std::int64_t idx : {std::int64_t{0}, input.numel() / 3, input.numel() - 1}) {
    Tensor xp = input;
    Tensor xm = input;
    xp[idx] += eps;
    xm[idx] -= eps;
    const double fd = (loss(xp) - loss(xm)) / (2.0 * eps);
    // Re-run forward on the original input so the layer cache matches again.
    layer.forward(input, /*train=*/true);
    EXPECT_NEAR(grad_input[idx], fd, tol) << "idx " << idx;
  }
}

TEST(ReLUTest, ForwardClampsNegative) {
  ReLU relu;
  Tensor x = Tensor::of({-1.0F, 0.0F, 2.0F});
  Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0F);
  EXPECT_FLOAT_EQ(y[1], 0.0F);
  EXPECT_FLOAT_EQ(y[2], 2.0F);
}

TEST(ReLUTest, BackwardMasksNegative) {
  ReLU relu;
  Tensor x = Tensor::of({-1.0F, 3.0F});
  relu.forward(x, true);
  Tensor g = relu.backward(Tensor::of({5.0F, 7.0F}));
  EXPECT_FLOAT_EQ(g[0], 0.0F);
  EXPECT_FLOAT_EQ(g[1], 7.0F);
}

TEST(ReLUTest, BackwardWithoutForwardThrows) {
  ReLU relu;
  EXPECT_THROW(relu.backward(Tensor::of({1.0F})), std::logic_error);
}

TEST(ThresholdReLUTest, ForwardClipsBothSides) {
  ThresholdReLU act(2.0F);
  Tensor x = Tensor::of({-1.0F, 1.0F, 3.0F});
  Tensor y = act.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0F);
  EXPECT_FLOAT_EQ(y[1], 1.0F);
  EXPECT_FLOAT_EQ(y[2], 2.0F);
}

TEST(ThresholdReLUTest, MuGradientSumsOverSaturated) {
  ThresholdReLU act(1.0F);
  Tensor x = Tensor::of({0.5F, 2.0F, 3.0F, -1.0F});
  act.forward(x, true);
  act.backward(Tensor::of({1.0F, 2.0F, 3.0F, 4.0F}));
  // Saturated elements: x=2 (g=2) and x=3 (g=3) -> dmu = 5.
  EXPECT_FLOAT_EQ(act.mu_param().grad[0], 5.0F);
}

TEST(ThresholdReLUTest, InputGradientRegions) {
  ThresholdReLU act(1.0F);
  Tensor x = Tensor::of({-0.5F, 0.5F, 1.5F});
  act.forward(x, true);
  Tensor g = act.backward(Tensor::of({1.0F, 1.0F, 1.0F}));
  EXPECT_FLOAT_EQ(g[0], 0.0F);  // below zero
  EXPECT_FLOAT_EQ(g[1], 1.0F);  // linear
  EXPECT_FLOAT_EQ(g[2], 0.0F);  // saturated
}

TEST(ThresholdReLUTest, FiniteDifferenceInLinearRegion) {
  ThresholdReLU act(1.0F);
  Rng rng(5);
  Tensor x({16});
  uniform_fill(x, 0.1F, 0.9F, rng);  // strictly inside the linear region
  check_input_gradient(act, x);
}

TEST(ThresholdReLUTest, RejectsNonPositiveMu) {
  EXPECT_THROW(ThresholdReLU(0.0F), std::invalid_argument);
  EXPECT_THROW(ThresholdReLU(-1.0F), std::invalid_argument);
}

TEST(ThresholdReLUTest, MuExcludedFromDecay) {
  ThresholdReLU act(1.0F);
  EXPECT_FALSE(act.mu_param().decay);
}

TEST(Conv2dLayerTest, GradientCheck) {
  Rng rng(7);
  Conv2d conv(2, 3, 3, 1, 1, /*bias=*/true, rng);
  Tensor x({2, 2, 5, 5});
  uniform_fill(x, -1.0F, 1.0F, rng);
  check_input_gradient(conv, x);
}

TEST(Conv2dLayerTest, WeightGradientAccumulates) {
  Rng rng(7);
  Conv2d conv(1, 1, 3, 1, 1, false, rng);
  Tensor x({1, 1, 4, 4}, 1.0F);
  Tensor out = conv.forward(x, true);
  conv.backward(Tensor(out.shape(), 1.0F));
  const Tensor grad1 = conv.weight().grad;
  conv.forward(x, true);
  conv.backward(Tensor(out.shape(), 1.0F));
  EXPECT_TRUE(conv.weight().grad.allclose(grad1 * 2.0F, 1e-4F));
}

TEST(Conv2dLayerTest, OutputShapeAndMacs) {
  Rng rng(7);
  Conv2d conv(3, 8, 3, 2, 1, false, rng);
  const Shape out = conv.output_shape({4, 3, 32, 32});
  EXPECT_EQ(out, Shape({4, 8, 16, 16}));
  EXPECT_EQ(conv.macs({1, 3, 32, 32}), 8 * 16 * 16 * 3 * 3 * 3);
}

TEST(Conv2dLayerTest, RejectsBadGeometry) {
  Rng rng(7);
  EXPECT_THROW(Conv2d(0, 1, 3, 1, 1, false, rng), std::invalid_argument);
  EXPECT_THROW(Conv2d(1, 1, 3, 0, 1, false, rng), std::invalid_argument);
}

TEST(LinearLayerTest, GradientCheck) {
  Rng rng(9);
  Linear linear(6, 4, /*bias=*/true, rng);
  Tensor x({3, 6});
  uniform_fill(x, -1.0F, 1.0F, rng);
  check_input_gradient(linear, x);
}

TEST(LinearLayerTest, ForwardMatchesManual) {
  Rng rng(9);
  Linear linear(2, 1, false, rng);
  linear.weight().value[0] = 2.0F;
  linear.weight().value[1] = -3.0F;
  Tensor x = Tensor::of({1.0F, 2.0F}).reshape({1, 2});
  Tensor y = linear.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 2.0F - 6.0F);
}

TEST(LinearLayerTest, BiasGradient) {
  Rng rng(9);
  Linear linear(2, 2, true, rng);
  Tensor x({3, 2}, 1.0F);
  linear.forward(x, true);
  linear.backward(Tensor({3, 2}, 1.0F));
  // Bias grad = sum over batch of grad_output.
  EXPECT_FLOAT_EQ(linear.bias().grad[0], 3.0F);
  EXPECT_FLOAT_EQ(linear.bias().grad[1], 3.0F);
}

TEST(LinearLayerTest, RejectsWrongInputShape) {
  Rng rng(9);
  Linear linear(4, 2, false, rng);
  EXPECT_THROW(linear.forward(Tensor({2, 5}), false), std::invalid_argument);
}

TEST(MaxPoolLayerTest, GradientCheckAwayFromTies) {
  // Use distinct values so argmax is stable under the FD perturbation.
  MaxPool2d pool;
  Tensor x({1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i) * 0.37F;
  check_input_gradient(pool, x, 1e-3F, 1e-2F);
}

TEST(AvgPoolLayerTest, GradientCheck) {
  AvgPool2d pool;
  Rng rng(13);
  Tensor x({2, 2, 4, 4});
  uniform_fill(x, -1.0F, 1.0F, rng);
  check_input_gradient(pool, x);
}

TEST(DropoutTest, InferenceIsIdentity) {
  Rng rng(15);
  Dropout dropout(0.5F, rng);
  Tensor x({100}, 1.0F);
  Tensor y = dropout.forward(x, /*train=*/false);
  EXPECT_TRUE(y.allclose(x));
}

TEST(DropoutTest, TrainScalesSurvivors) {
  Rng rng(15);
  Dropout dropout(0.5F, rng);
  Tensor x({10000}, 1.0F);
  Tensor y = dropout.forward(x, /*train=*/true);
  // Inverted dropout: survivors scaled by 1/(1-p); expected mean stays 1.
  EXPECT_NEAR(y.mean(), 1.0F, 0.05F);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(y[i] == 0.0F || std::abs(y[i] - 2.0F) < 1e-5F);
  }
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(15);
  Dropout dropout(0.5F, rng);
  Tensor x({1000}, 1.0F);
  Tensor y = dropout.forward(x, true);
  Tensor g = dropout.backward(Tensor({1000}, 1.0F));
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(g[i], y[i]);
}

TEST(DropoutTest, ZeroProbIsNoop) {
  Rng rng(15);
  Dropout dropout(0.0F, rng);
  Tensor x({5}, 3.0F);
  EXPECT_TRUE(dropout.forward(x, true).allclose(x));
}

TEST(DropoutTest, RejectsBadProb) {
  Rng rng(15);
  EXPECT_THROW(Dropout(1.0F, rng), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1F, rng), std::invalid_argument);
}

TEST(FlattenTest, RoundTrip) {
  Flatten flatten;
  Tensor x({2, 3, 4, 5});
  Tensor y = flatten.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 60}));
  Tensor g = flatten.backward(Tensor({2, 60}, 1.0F));
  EXPECT_EQ(g.shape(), x.shape());
}

}  // namespace
}  // namespace ullsnn::dnn
