#include "src/dnn/residual.h"

#include <gtest/gtest.h>

#include "src/tensor/random.h"

namespace ullsnn::dnn {
namespace {

TEST(ResidualBlockTest, IdentitySkipWhenShapesMatch) {
  Rng rng(1);
  ResidualBlock block(4, 4, 1, 10.0F, rng);
  EXPECT_FALSE(block.has_projection());
}

TEST(ResidualBlockTest, ProjectionWhenStrideOrChannelsChange) {
  Rng rng(1);
  ResidualBlock strided(4, 4, 2, 10.0F, rng);
  EXPECT_TRUE(strided.has_projection());
  ResidualBlock widened(4, 8, 1, 10.0F, rng);
  EXPECT_TRUE(widened.has_projection());
}

TEST(ResidualBlockTest, OutputShape) {
  Rng rng(1);
  ResidualBlock block(4, 8, 2, 10.0F, rng);
  EXPECT_EQ(block.output_shape({2, 4, 16, 16}), Shape({2, 8, 8, 8}));
}

TEST(ResidualBlockTest, IdentitySkipPassesSignalWhenConvsAreZero) {
  Rng rng(1);
  ResidualBlock block(2, 2, 1, 100.0F, rng);
  block.conv1().weight().value.fill(0.0F);
  block.conv2().weight().value.fill(0.0F);
  Tensor x({1, 2, 4, 4}, 0.5F);
  const Tensor y = block.forward(x, false);
  // Main path contributes 0; output = clip(skip, 0, 100) = x.
  EXPECT_TRUE(y.allclose(x, 1e-6F));
}

TEST(ResidualBlockTest, GradientCheck) {
  Rng rng(2);
  ResidualBlock block(2, 2, 1, 10.0F, rng);
  Tensor x({1, 2, 4, 4});
  uniform_fill(x, 0.05F, 0.4F, rng);  // keep activations in smooth regions
  Tensor out = block.forward(x, true);
  Tensor g(out.shape());
  uniform_fill(g, -1.0F, 1.0F, rng);
  const Tensor grad_input = block.backward(g);

  const auto loss = [&](const Tensor& input) {
    const Tensor y = block.forward(input, true);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) acc += static_cast<double>(y[i]) * g[i];
    return acc;
  };
  const float eps = 1e-2F;
  for (std::int64_t idx : {std::int64_t{0}, x.numel() / 2, x.numel() - 1}) {
    Tensor xp = x;
    Tensor xm = x;
    xp[idx] += eps;
    xm[idx] -= eps;
    const double fd = (loss(xp) - loss(xm)) / (2.0 * eps);
    block.forward(x, true);
    EXPECT_NEAR(grad_input[idx], fd, 3e-2) << idx;
  }
}

TEST(ResidualBlockTest, ParamsIncludeBothActsAndConvs) {
  Rng rng(3);
  ResidualBlock plain(2, 2, 1, 10.0F, rng);
  EXPECT_EQ(plain.params().size(), 4U);  // conv1, mu1, conv2, mu2
  ResidualBlock proj(2, 4, 2, 10.0F, rng);
  EXPECT_EQ(proj.params().size(), 5U);  // + projection
}

TEST(ResidualBlockTest, MacsIncludeProjection) {
  Rng rng(3);
  ResidualBlock plain(4, 4, 1, 10.0F, rng);
  ResidualBlock proj(4, 8, 2, 10.0F, rng);
  const Shape in = {1, 4, 8, 8};
  const std::int64_t plain_macs = plain.macs(in);
  // conv1: 4*8*8*4*9, conv2 same => 2 * 9216.
  EXPECT_EQ(plain_macs, 2 * 4 * 8 * 8 * 4 * 9);
  EXPECT_GT(proj.macs(in), 0);
}

}  // namespace
}  // namespace ullsnn::dnn
