#include "src/dnn/models.h"

#include <gtest/gtest.h>

#include "src/dnn/activations.h"
#include "src/dnn/residual.h"

namespace ullsnn::dnn {
namespace {

ModelConfig tiny_config() {
  ModelConfig config;
  config.width = 0.125F;
  config.num_classes = 10;
  return config;
}

class VggDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(VggDepthTest, BuildsAndMapsShapes) {
  Rng rng(1);
  auto model = build_vgg(GetParam(), tiny_config(), rng);
  const Shape out = model->output_shape({2, 3, 32, 32});
  EXPECT_EQ(out, Shape({2, 10}));
  Tensor x({2, 3, 32, 32}, 0.1F);
  const Tensor logits = model->forward(x, /*train=*/false);
  EXPECT_EQ(logits.shape(), Shape({2, 10}));
}

INSTANTIATE_TEST_SUITE_P(Depths, VggDepthTest, ::testing::Values(11, 13, 16));

TEST(VggTest, ConvLayerCountsMatchDepth) {
  Rng rng(1);
  const auto count_convs = [](Sequential& m) {
    std::int64_t n = 0;
    for (std::int64_t i = 0; i < m.size(); ++i) {
      if (m.layer(i).name() == "Conv2d") ++n;
    }
    return n;
  };
  auto v11 = build_vgg(11, tiny_config(), rng);
  auto v13 = build_vgg(13, tiny_config(), rng);
  auto v16 = build_vgg(16, tiny_config(), rng);
  EXPECT_EQ(count_convs(*v11), 8);
  EXPECT_EQ(count_convs(*v13), 10);
  EXPECT_EQ(count_convs(*v16), 13);
}

TEST(VggTest, FullWidthVgg16ParameterCountIsPaperScale) {
  Rng rng(1);
  ModelConfig config;  // width = 1.0
  config.num_classes = 10;
  auto model = build_vgg(16, config, rng);
  const std::int64_t params = parameter_count(*model);
  // Conv stack ~14.7M + 512*4096 + 4096*4096 + 4096*10 ~= 33.6M.
  EXPECT_GT(params, 30'000'000);
  EXPECT_LT(params, 40'000'000);
}

TEST(VggTest, RejectsUnsupportedDepth) {
  Rng rng(1);
  EXPECT_THROW(build_vgg(19, tiny_config(), rng), std::invalid_argument);
}

TEST(VggTest, FcHiddenOverride) {
  Rng rng(1);
  ModelConfig config = tiny_config();
  config.fc_hidden = 32;
  auto model = build_vgg(11, config, rng);
  EXPECT_EQ(model->output_shape({1, 3, 32, 32}), Shape({1, 10}));
}

class ResNetDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(ResNetDepthTest, BuildsAndMapsShapes) {
  Rng rng(2);
  ModelConfig config = tiny_config();
  config.width = 0.25F;
  auto model = build_resnet(GetParam(), config, rng);
  Tensor x({2, 3, 32, 32}, 0.1F);
  EXPECT_EQ(model->forward(x, false).shape(), Shape({2, 10}));
}

INSTANTIATE_TEST_SUITE_P(Depths, ResNetDepthTest, ::testing::Values(20, 32));

TEST(ResNetTest, BlockCount) {
  Rng rng(2);
  const auto count_blocks = [](Sequential& m) {
    std::int64_t n = 0;
    for (std::int64_t i = 0; i < m.size(); ++i) {
      if (m.layer(i).name() == "ResidualBlock") ++n;
    }
    return n;
  };
  auto r20 = build_resnet(20, tiny_config(), rng);
  auto r32 = build_resnet(32, tiny_config(), rng);
  EXPECT_EQ(count_blocks(*r20), 9);
  EXPECT_EQ(count_blocks(*r32), 15);
}

TEST(ResNetTest, FullWidthResNet20ParameterCount) {
  Rng rng(2);
  ModelConfig config;
  config.num_classes = 10;
  auto model = build_resnet(20, config, rng);
  const std::int64_t params = parameter_count(*model);
  // Canonical ResNet-20 is ~0.27M parameters.
  EXPECT_GT(params, 200'000);
  EXPECT_LT(params, 350'000);
}

TEST(ResNetTest, RejectsUnsupportedDepth) {
  Rng rng(2);
  EXPECT_THROW(build_resnet(18, tiny_config(), rng), std::invalid_argument);
}

TEST(ResNetTest, FirstBlockOfLaterStagesDownsamples) {
  Rng rng(2);
  auto model = build_resnet(20, tiny_config(), rng);
  // Input 32x32 -> stage 2 and 3 halve twice -> 8x8 before global pool.
  // Verified indirectly: output shape is [N, classes], and macs > 0.
  EXPECT_GT(model->macs({1, 3, 32, 32}), 0);
}

TEST(ModelsTest, Cifar100Head) {
  Rng rng(3);
  ModelConfig config = tiny_config();
  config.num_classes = 100;
  auto model = build_vgg(11, config, rng);
  EXPECT_EQ(model->output_shape({1, 3, 32, 32}), Shape({1, 100}));
}

TEST(ModelsTest, VggTrainForwardBackwardRuns) {
  Rng rng(4);
  auto model = build_vgg(11, tiny_config(), rng);
  Tensor x({2, 3, 32, 32}, 0.1F);
  const Tensor logits = model->forward(x, /*train=*/true);
  Tensor g(logits.shape(), 0.1F);
  const Tensor gin = model->backward(g);
  EXPECT_EQ(gin.shape(), x.shape());
}

TEST(ModelsTest, ResNetTrainForwardBackwardRuns) {
  Rng rng(4);
  auto model = build_resnet(20, tiny_config(), rng);
  Tensor x({2, 3, 32, 32}, 0.1F);
  const Tensor logits = model->forward(x, /*train=*/true);
  const Tensor gin = model->backward(Tensor(logits.shape(), 0.1F));
  EXPECT_EQ(gin.shape(), x.shape());
}

}  // namespace
}  // namespace ullsnn::dnn
