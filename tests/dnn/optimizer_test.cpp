#include "src/dnn/optimizer.h"

#include <gtest/gtest.h>

namespace ullsnn::dnn {
namespace {

Param make_param(float value, bool decay = true) {
  Param p;
  p.name = "p";
  p.value = Tensor({1}, value);
  p.grad = Tensor({1});
  p.decay = decay;
  return p;
}

TEST(SgdTest, PlainStepDescends) {
  Param p = make_param(1.0F);
  Sgd sgd({&p}, {0.1F, 0.0F, 0.0F});
  p.grad[0] = 2.0F;
  sgd.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0F - 0.1F * 2.0F);
}

TEST(SgdTest, MomentumAccumulates) {
  Param p = make_param(0.0F);
  Sgd sgd({&p}, {1.0F, 0.5F, 0.0F});
  p.grad[0] = 1.0F;
  sgd.step();  // v = 1, p = -1
  EXPECT_FLOAT_EQ(p.value[0], -1.0F);
  sgd.step();  // v = 0.5 + 1 = 1.5, p = -2.5
  EXPECT_FLOAT_EQ(p.value[0], -2.5F);
}

TEST(SgdTest, WeightDecayAppliesOnlyWhenFlagged) {
  Param decayed = make_param(10.0F, true);
  Param exempt = make_param(10.0F, false);
  Sgd sgd({&decayed, &exempt}, {0.1F, 0.0F, 0.01F});
  sgd.step();  // zero grads: only decay acts
  EXPECT_FLOAT_EQ(decayed.value[0], 10.0F - 0.1F * 0.01F * 10.0F);
  EXPECT_FLOAT_EQ(exempt.value[0], 10.0F);
}

TEST(SgdTest, ZeroGradClears) {
  Param p = make_param(0.0F);
  p.grad[0] = 5.0F;
  Sgd sgd({&p}, {0.1F, 0.9F, 0.0F});
  sgd.zero_grad();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0F);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimize (x - 3)^2 with gradient 2(x - 3).
  Param p = make_param(0.0F);
  Sgd sgd({&p}, {0.1F, 0.9F, 0.0F});
  for (int i = 0; i < 200; ++i) {
    sgd.zero_grad();
    p.grad[0] = 2.0F * (p.value[0] - 3.0F);
    sgd.step();
  }
  EXPECT_NEAR(p.value[0], 3.0F, 1e-3F);
}

TEST(SgdTest, ValidatesConfig) {
  Param p = make_param(0.0F);
  EXPECT_THROW(Sgd({&p}, {0.0F, 0.9F, 0.0F}), std::invalid_argument);
  EXPECT_THROW(Sgd({&p}, {0.1F, 1.0F, 0.0F}), std::invalid_argument);
}

TEST(StepDecayTest, PaperSchedule) {
  // Paper: decay x0.1 at 60 / 80 / 90% of epochs.
  StepDecaySchedule sched(0.01F, 100);
  EXPECT_FLOAT_EQ(sched.lr_at(0), 0.01F);
  EXPECT_FLOAT_EQ(sched.lr_at(59), 0.01F);
  EXPECT_FLOAT_EQ(sched.lr_at(60), 0.001F);
  EXPECT_FLOAT_EQ(sched.lr_at(80), 0.0001F);
  EXPECT_NEAR(sched.lr_at(95), 1e-5F, 1e-9F);
}

TEST(StepDecayTest, ShortRunsRoundMilestones) {
  StepDecaySchedule sched(1.0F, 10);
  EXPECT_FLOAT_EQ(sched.lr_at(5), 1.0F);
  EXPECT_FLOAT_EQ(sched.lr_at(6), 0.1F);
  EXPECT_FLOAT_EQ(sched.lr_at(8), 0.01F);
  EXPECT_NEAR(sched.lr_at(9), 0.001F, 1e-7F);
}

TEST(StepDecayTest, Validates) {
  EXPECT_THROW(StepDecaySchedule(0.0F, 10), std::invalid_argument);
  EXPECT_THROW(StepDecaySchedule(0.1F, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ullsnn::dnn
