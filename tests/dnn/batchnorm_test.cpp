#include "src/dnn/batchnorm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/bn_fold.h"
#include "src/dnn/activations.h"
#include "src/dnn/conv2d.h"
#include "src/tensor/random.h"

namespace ullsnn::dnn {
namespace {

TEST(BatchNormTest, NormalizesBatchStatistics) {
  BatchNorm2d bn(2);
  Rng rng(1);
  Tensor x({8, 2, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.normal(3.0F, 2.0F);
  const Tensor y = bn.forward(x, /*train=*/true);
  // Per-channel output mean ~ 0, variance ~ 1.
  const std::int64_t hw = 16;
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0.0;
    double sq = 0.0;
    for (std::int64_t i = 0; i < 8; ++i) {
      const float* p = y.data() + (i * 2 + c) * hw;
      for (std::int64_t j = 0; j < hw; ++j) {
        sum += p[j];
        sq += static_cast<double>(p[j]) * p[j];
      }
    }
    const double n = 8.0 * hw;
    EXPECT_NEAR(sum / n, 0.0, 1e-4);
    EXPECT_NEAR(sq / n, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, GammaBetaAffine) {
  BatchNorm2d bn(1);
  bn.gamma().value[0] = 3.0F;
  bn.beta().value[0] = -1.0F;
  Tensor x({4, 1, 2, 2});
  Rng rng(2);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.normal();
  const Tensor y = bn.forward(x, true);
  EXPECT_NEAR(y.mean(), -1.0F, 1e-4F);
}

TEST(BatchNormTest, RunningStatsConvergeAndDriveInference) {
  BatchNorm2d bn(1, /*momentum=*/0.5F);
  Tensor x({16, 1, 2, 2});
  Rng rng(3);
  for (int epoch = 0; epoch < 30; ++epoch) {
    for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.normal(5.0F, 2.0F);
    bn.forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0F, 0.3F);
  EXPECT_NEAR(bn.running_var()[0], 4.0F, 0.6F);
  // Inference on a constant input uses running stats, not batch stats.
  Tensor c({1, 1, 2, 2}, 5.0F);
  const Tensor y = bn.forward(c, false);
  EXPECT_NEAR(y[0], 0.0F, 0.2F);
}

TEST(BatchNormTest, GradientMatchesFiniteDifference) {
  BatchNorm2d bn(2);
  Rng rng(4);
  Tensor x({3, 2, 2, 2});
  uniform_fill(x, -1.0F, 1.0F, rng);
  Tensor g(x.shape());
  uniform_fill(g, -1.0F, 1.0F, rng);

  bn.forward(x, true);
  const Tensor grad_input = bn.backward(g);
  const auto loss = [&](const Tensor& input) {
    const Tensor y = bn.forward(input, true);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) acc += static_cast<double>(y[i]) * g[i];
    return acc;
  };
  const float eps = 1e-2F;
  for (std::int64_t idx : {std::int64_t{0}, x.numel() / 2, x.numel() - 1}) {
    Tensor xp = x;
    Tensor xm = x;
    xp[idx] += eps;
    xm[idx] -= eps;
    const double fd = (loss(xp) - loss(xm)) / (2.0 * eps);
    EXPECT_NEAR(grad_input[idx], fd, 3e-2) << idx;
  }
}

TEST(BatchNormTest, Validates) {
  EXPECT_THROW(BatchNorm2d(0), std::invalid_argument);
  EXPECT_THROW(BatchNorm2d(4, 0.0F), std::invalid_argument);
  BatchNorm2d bn(2);
  EXPECT_THROW(bn.forward(Tensor({1, 3, 2, 2}), true), std::invalid_argument);
  EXPECT_THROW(bn.backward(Tensor({1, 2, 2, 2})), std::logic_error);
}

TEST(BnFoldTest, FoldedConvMatchesConvPlusBn) {
  Rng rng(5);
  Conv2d conv(2, 3, 3, 1, 1, /*bias=*/false, rng);
  BatchNorm2d bn(3);
  // Non-trivial BN state.
  bn.gamma().value = Tensor::of({1.5F, 0.5F, 2.0F});
  bn.beta().value = Tensor::of({0.1F, -0.2F, 0.3F});
  bn.set_running_stats(Tensor::of({0.2F, -0.1F, 0.5F}),
                       Tensor::of({1.2F, 0.8F, 2.5F}));

  Tensor x({2, 2, 5, 5});
  uniform_fill(x, -1.0F, 1.0F, rng);
  const Tensor reference = bn.forward(conv.forward(x, false), /*train=*/false);

  core::fold_bn_into_conv(conv, bn);
  EXPECT_TRUE(conv.has_bias());
  const Tensor folded = conv.forward(x, false);
  EXPECT_TRUE(folded.allclose(reference, 1e-4F));
}

TEST(BnFoldTest, FoldSequentialDropsBnLayers) {
  Rng rng(6);
  Sequential model;
  model.emplace<Conv2d>(3, 4, 3, 1, 1, false, rng);
  model.emplace<BatchNorm2d>(4);
  model.emplace<ReLU>();
  model.emplace<Conv2d>(4, 2, 3, 1, 1, false, rng);
  model.emplace<BatchNorm2d>(2);

  // Populate running stats via one training pass.
  Tensor x({4, 3, 6, 6});
  uniform_fill(x, -1.0F, 1.0F, rng);
  model.forward(x, true);
  const Tensor reference = model.forward(x, /*train=*/false);

  auto folded = core::fold_batchnorm(model);
  EXPECT_EQ(folded->size(), 3);  // conv, relu, conv
  const Tensor y = folded->forward(x, false);
  EXPECT_TRUE(y.allclose(reference, 1e-3F));
}

TEST(BnFoldTest, RejectsOrphanBn) {
  Rng rng(7);
  Sequential model;
  model.emplace<ReLU>();
  model.emplace<BatchNorm2d>(2);
  EXPECT_THROW(core::fold_batchnorm(model), std::invalid_argument);
}

TEST(BnFoldTest, ChannelMismatchThrows) {
  Rng rng(8);
  Conv2d conv(2, 3, 3, 1, 1, false, rng);
  BatchNorm2d bn(4);
  EXPECT_THROW(core::fold_bn_into_conv(conv, bn), std::invalid_argument);
}

}  // namespace
}  // namespace ullsnn::dnn
