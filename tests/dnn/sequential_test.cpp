#include "src/dnn/sequential.h"

#include <gtest/gtest.h>

#include "src/dnn/activations.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/dropout.h"
#include "src/dnn/linear.h"
#include "src/dnn/pooling.h"
#include "src/tensor/random.h"

namespace ullsnn::dnn {
namespace {

std::unique_ptr<Sequential> chain(Rng& rng) {
  auto model = std::make_unique<Sequential>();
  model->emplace<Conv2d>(3, 4, 3, 1, 1, true, rng);
  model->emplace<ThresholdReLU>(1.0F);
  model->emplace<MaxPool2d>();
  model->emplace<Flatten>();
  model->emplace<Dropout>(0.1F, rng);
  model->emplace<Linear>(4 * 4 * 4, 5, false, rng);
  return model;
}

TEST(SequentialTest, SizeAndLayerAccess) {
  Rng rng(1);
  auto model = chain(rng);
  EXPECT_EQ(model->size(), 6);
  EXPECT_EQ(model->layer(0).name(), "Conv2d");
  EXPECT_EQ(model->layer(5).name(), "Linear");
}

TEST(SequentialTest, ParamsEnumerationCoversAllLayers) {
  Rng rng(2);
  auto model = chain(rng);
  // conv weight + conv bias + mu + linear weight = 4.
  EXPECT_EQ(model->params().size(), 4U);
}

TEST(SequentialTest, OutputShapePropagates) {
  Rng rng(3);
  auto model = chain(rng);
  EXPECT_EQ(model->output_shape({7, 3, 8, 8}), Shape({7, 5}));
}

TEST(SequentialTest, MacsSumAndPerLayerAlign) {
  Rng rng(4);
  auto model = chain(rng);
  const Shape in = {1, 3, 8, 8};
  const auto per_layer = model->per_layer_macs(in);
  ASSERT_EQ(per_layer.size(), 6U);
  std::int64_t sum = 0;
  for (std::int64_t m : per_layer) sum += m;
  EXPECT_EQ(sum, model->macs(in));
  // Conv: 4*8*8*3*9; Linear: 64*5; others zero.
  EXPECT_EQ(per_layer[0], 4 * 8 * 8 * 3 * 9);
  EXPECT_EQ(per_layer[1], 0);
  EXPECT_EQ(per_layer[5], 64 * 5);
}

TEST(SequentialTest, ForwardBackwardEndToEnd) {
  Rng rng(5);
  auto model = chain(rng);
  Tensor x({2, 3, 8, 8});
  uniform_fill(x, -1.0F, 1.0F, rng);
  const Tensor y = model->forward(x, /*train=*/true);
  EXPECT_EQ(y.shape(), Shape({2, 5}));
  const Tensor gin = model->backward(Tensor({2, 5}, 1.0F));
  EXPECT_EQ(gin.shape(), x.shape());
  // Gradients landed on the first conv.
  auto* conv = dynamic_cast<Conv2d*>(&model->layer(0));
  ASSERT_NE(conv, nullptr);
  EXPECT_GT(conv->weight().grad.rms(), 0.0F);
}

TEST(SequentialTest, ClearCacheInvalidatesBackward) {
  Rng rng(6);
  auto model = chain(rng);
  Tensor x({1, 3, 8, 8}, 0.5F);
  model->forward(x, true);
  model->clear_cache();
  EXPECT_THROW(model->backward(Tensor({1, 5}, 1.0F)), std::logic_error);
}

TEST(SequentialTest, ReleaseLayersEmptiesModel) {
  Rng rng(7);
  auto model = chain(rng);
  auto layers = model->release_layers();
  EXPECT_EQ(layers.size(), 6U);
  EXPECT_EQ(model->size(), 0);
}

TEST(SequentialTest, EmptyModelIsIdentity) {
  Sequential model;
  Tensor x({2, 3}, 1.5F);
  EXPECT_TRUE(model.forward(x, false).allclose(x));
  EXPECT_EQ(model.output_shape({2, 3}), Shape({2, 3}));
  EXPECT_EQ(model.macs({2, 3}), 0);
}

}  // namespace
}  // namespace ullsnn::dnn
