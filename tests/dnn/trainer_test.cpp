#include "src/dnn/trainer.h"

#include <gtest/gtest.h>

#include "src/dnn/activations.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/linear.h"
#include "src/dnn/pooling.h"

namespace ullsnn::dnn {
namespace {

data::LabeledImages easy_data(std::int64_t n, std::uint64_t salt) {
  data::SyntheticCifarSpec spec;
  spec.image_size = 8;
  spec.num_classes = 3;
  spec.sign_flip_prob = 0.0F;
  spec.occluder_prob = 0.0F;
  spec.noise_stddev = 0.1F;
  data::SyntheticCifar gen(spec);
  data::LabeledImages d = gen.generate(n, salt);
  data::standardize(d);
  return d;
}

std::unique_ptr<Sequential> small_model(Rng& rng) {
  auto model = std::make_unique<Sequential>();
  model->emplace<Conv2d>(3, 8, 3, 1, 1, false, rng);
  model->emplace<ThresholdReLU>(2.0F);
  model->emplace<MaxPool2d>();
  model->emplace<Flatten>();
  model->emplace<Linear>(8 * 4 * 4, 3, false, rng);
  return model;
}

TEST(DnnTrainerTest, LearnsEasyTask) {
  Rng rng(1);
  auto model = small_model(rng);
  const data::LabeledImages train = easy_data(192, 1);
  const data::LabeledImages test = easy_data(48, 2);
  TrainConfig config;
  config.epochs = 12;
  config.batch_size = 32;
  config.augment = false;
  DnnTrainer trainer(*model, config);
  const auto history = trainer.fit(train, &test);
  ASSERT_EQ(history.size(), 12U);
  EXPECT_GT(history.back().train_accuracy, 0.8);
  EXPECT_GT(trainer.evaluate(test), 0.7);
  // Loss should broadly decrease.
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
}

TEST(DnnTrainerTest, ThresholdsAdaptDuringTraining) {
  Rng rng(2);
  auto model = small_model(rng);
  const data::LabeledImages train = easy_data(96, 1);
  TrainConfig config;
  config.epochs = 5;
  config.mu_l2 = 0.05F;  // strong pull so the effect is visible quickly
  config.augment = false;
  float mu_before = 0.0F;
  for (Param* p : model->params()) {
    if (p->name == "threshold_relu.mu") mu_before = p->value[0];
  }
  DnnTrainer trainer(*model, config);
  trainer.fit(train);
  float mu_after = 0.0F;
  for (Param* p : model->params()) {
    if (p->name == "threshold_relu.mu") mu_after = p->value[0];
  }
  EXPECT_NE(mu_before, mu_after);
  EXPECT_GT(mu_after, 0.0F);
}

TEST(DnnTrainerTest, EpochStatsArePopulated) {
  Rng rng(3);
  auto model = small_model(rng);
  const data::LabeledImages train = easy_data(64, 1);
  TrainConfig tc;
  tc.epochs = 1;
  tc.augment = false;
  DnnTrainer trainer(*model, tc);
  const EpochStats stats = trainer.train_epoch(train, 0);
  EXPECT_EQ(stats.epoch, 0);
  EXPECT_GT(stats.train_loss, 0.0F);
  EXPECT_GE(stats.train_accuracy, 0.0);
  EXPECT_LE(stats.train_accuracy, 1.0);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(DnnTrainerTest, EvaluateModelMatchesTrainerEvaluate) {
  Rng rng(4);
  auto model = small_model(rng);
  const data::LabeledImages test = easy_data(48, 2);
  DnnTrainer trainer(*model, TrainConfig{});
  EXPECT_DOUBLE_EQ(trainer.evaluate(test), evaluate_model(*model, test, 32));
}

}  // namespace
}  // namespace ullsnn::dnn
