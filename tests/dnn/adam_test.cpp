#include "src/dnn/adam.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ullsnn::dnn {
namespace {

Param make_param(float value, bool decay = true) {
  Param p;
  p.name = "p";
  p.value = Tensor({1}, value);
  p.grad = Tensor({1});
  p.decay = decay;
  return p;
}

TEST(AdamTest, FirstStepMovesByLr) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  Param p = make_param(0.0F);
  Adam adam({&p}, {.lr = 0.1F});
  p.grad[0] = 123.0F;
  adam.step();
  EXPECT_NEAR(p.value[0], -0.1F, 1e-4F);
  EXPECT_EQ(adam.steps_taken(), 1);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Param p = make_param(5.0F);
  Adam adam({&p}, {.lr = 0.1F});
  for (int i = 0; i < 500; ++i) {
    adam.zero_grad();
    p.grad[0] = 2.0F * (p.value[0] - 3.0F);
    adam.step();
  }
  EXPECT_NEAR(p.value[0], 3.0F, 1e-2F);
}

TEST(AdamTest, ConvergesOnIllConditionedPair) {
  // f(x, y) = 1000 x^2 + y^2: Adam's per-coordinate scaling handles the
  // conditioning that plain SGD at a usable lr would not.
  Param x = make_param(1.0F);
  Param y = make_param(1.0F);
  Adam adam({&x, &y}, {.lr = 0.05F});
  for (int i = 0; i < 800; ++i) {
    adam.zero_grad();
    x.grad[0] = 2000.0F * x.value[0];
    y.grad[0] = 2.0F * y.value[0];
    adam.step();
  }
  EXPECT_NEAR(x.value[0], 0.0F, 1e-2F);
  EXPECT_NEAR(y.value[0], 0.0F, 1e-1F);
}

TEST(AdamTest, DecoupledWeightDecayRespectsFlag) {
  Param decayed = make_param(10.0F, true);
  Param exempt = make_param(10.0F, false);
  Adam adam({&decayed, &exempt}, {.lr = 0.1F, .weight_decay = 0.01F});
  adam.step();  // zero grads: only decay acts (plus epsilon-sized moment noise)
  EXPECT_LT(decayed.value[0], 10.0F);
  EXPECT_FLOAT_EQ(exempt.value[0], 10.0F);
}

TEST(AdamTest, ZeroGradClears) {
  Param p = make_param(0.0F);
  p.grad[0] = 7.0F;
  Adam adam({&p}, {});
  adam.zero_grad();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0F);
}

TEST(AdamTest, ValidatesConfig) {
  Param p = make_param(0.0F);
  EXPECT_THROW(Adam({&p}, {.lr = 0.0F}), std::invalid_argument);
  EXPECT_THROW(Adam({&p}, {.beta1 = 1.0F}), std::invalid_argument);
  EXPECT_THROW(Adam({&p}, {.beta2 = -0.1F}), std::invalid_argument);
}

}  // namespace
}  // namespace ullsnn::dnn
