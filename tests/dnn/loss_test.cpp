#include "src/dnn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/random.h"

namespace ullsnn::dnn {
namespace {

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(1);
  Tensor logits({4, 7});
  uniform_fill(logits, -5.0F, 5.0F, rng);
  const Tensor probs = softmax(logits);
  for (std::int64_t i = 0; i < 4; ++i) {
    float sum = 0.0F;
    for (std::int64_t j = 0; j < 7; ++j) sum += probs.at(i, j);
    EXPECT_NEAR(sum, 1.0F, 1e-5F);
  }
}

TEST(SoftmaxTest, StableForLargeLogits) {
  Tensor logits({1, 2});
  logits[0] = 1000.0F;
  logits[1] = 999.0F;
  const Tensor probs = softmax(logits);
  EXPECT_NEAR(probs[0], 1.0F / (1.0F + std::exp(-1.0F)), 1e-5F);
  EXPECT_FALSE(std::isnan(probs[0]));
}

TEST(SoftmaxTest, UniformLogitsGiveUniformProbs) {
  Tensor logits({1, 4}, 3.0F);
  const Tensor probs = softmax(logits);
  for (std::int64_t j = 0; j < 4; ++j) EXPECT_NEAR(probs[j], 0.25F, 1e-6F);
}

TEST(CrossEntropyTest, PerfectPredictionLowLoss) {
  Tensor logits({1, 3});
  logits[0] = 100.0F;
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.loss, 1e-3F);
  EXPECT_EQ(r.correct, 1);
}

TEST(CrossEntropyTest, UniformPredictionIsLogC) {
  Tensor logits({2, 10}, 0.0F);
  const LossResult r = softmax_cross_entropy(logits, {3, 7});
  EXPECT_NEAR(r.loss, std::log(10.0F), 1e-5F);
}

TEST(CrossEntropyTest, GradientIsProbsMinusOneHotOverN) {
  Tensor logits({2, 3}, 0.0F);
  const LossResult r = softmax_cross_entropy(logits, {1, 2});
  // probs uniform 1/3; grad = (p - onehot)/N.
  EXPECT_NEAR(r.grad.at(0, 0), (1.0F / 3.0F) / 2.0F, 1e-6F);
  EXPECT_NEAR(r.grad.at(0, 1), (1.0F / 3.0F - 1.0F) / 2.0F, 1e-6F);
  EXPECT_NEAR(r.grad.at(1, 2), (1.0F / 3.0F - 1.0F) / 2.0F, 1e-6F);
}

TEST(CrossEntropyTest, GradientMatchesFiniteDifference) {
  Rng rng(2);
  Tensor logits({3, 5});
  uniform_fill(logits, -2.0F, 2.0F, rng);
  const std::vector<std::int64_t> labels = {1, 4, 0};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3F;
  for (std::int64_t idx : {std::int64_t{0}, std::int64_t{7}, std::int64_t{14}}) {
    Tensor lp = logits;
    Tensor lm = logits;
    lp[idx] += eps;
    lm[idx] -= eps;
    const float fp = softmax_cross_entropy(lp, labels).loss;
    const float fm = softmax_cross_entropy(lm, labels).loss;
    EXPECT_NEAR(r.grad[idx], (fp - fm) / (2.0F * eps), 1e-3F);
  }
}

TEST(CrossEntropyTest, GradientSumIsZeroPerRow) {
  Rng rng(3);
  Tensor logits({2, 4});
  uniform_fill(logits, -1.0F, 1.0F, rng);
  const LossResult r = softmax_cross_entropy(logits, {0, 3});
  for (std::int64_t i = 0; i < 2; ++i) {
    float sum = 0.0F;
    for (std::int64_t j = 0; j < 4; ++j) sum += r.grad.at(i, j);
    EXPECT_NEAR(sum, 0.0F, 1e-6F);
  }
}

TEST(CrossEntropyTest, ValidatesInputs) {
  Tensor logits({2, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 3}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, -1}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(Tensor({6}), {0}), std::invalid_argument);
}

TEST(AccuracyTest, CountsTopOne) {
  Tensor logits({3, 2});
  logits.at(0, 0) = 1.0F;  // pred 0, label 0: hit
  logits.at(1, 1) = 1.0F;  // pred 1, label 0: miss
  logits.at(2, 1) = 1.0F;  // pred 1, label 1: hit
  EXPECT_NEAR(accuracy(logits, {0, 0, 1}), 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace ullsnn::dnn
