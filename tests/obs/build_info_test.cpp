#include "src/obs/build_info.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/obs/telemetry.h"

namespace ullsnn::obs {
namespace {

TEST(BuildInfo, CompilerDetected) {
  const BuildInfo& b = build_info();
  EXPECT_FALSE(b.compiler.empty());
  EXPECT_NE(b.compiler, "unknown");
}

TEST(BuildInfo, TelemetryFlagMatchesCompileTimeSwitch) {
  EXPECT_EQ(build_info().telemetry, ULLSNN_TELEMETRY != 0);
}

TEST(BuildInfo, CommentHasOneFieldPerLineNoTrailingNewline) {
  const std::string comment = build_info_comment();
  ASSERT_FALSE(comment.empty());
  EXPECT_NE(comment.back(), '\n');
  std::istringstream lines(comment);
  std::string line;
  std::size_t n = 0;
  bool has_compiler = false, has_git = false, has_telemetry = false;
  while (std::getline(lines, line)) {
    ++n;
    if (line.rfind("compiler: ", 0) == 0) has_compiler = true;
    if (line.rfind("git: ", 0) == 0) has_git = true;
    if (line.rfind("telemetry: ", 0) == 0) has_telemetry = true;
  }
  EXPECT_EQ(n, 6U);
  EXPECT_TRUE(has_compiler);
  EXPECT_TRUE(has_git);
  EXPECT_TRUE(has_telemetry);
}

TEST(BuildInfo, StableAcrossCalls) {
  const BuildInfo& a = build_info();
  const BuildInfo& b = build_info();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace ullsnn::obs
