#include "src/obs/slo.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/obs/metrics.h"

namespace ullsnn::obs {
namespace {

// The tracker reads a process-global registry histogram, so every test uses
// its own metric names (registrations are never removed).
SloConfig test_config(const std::string& tag, double objective_ms = 100.0,
                      double target = 0.9) {
  SloConfig c;
  c.histogram = "slo_test." + tag + ".latency_ms";
  c.gauge_prefix = "slo_test." + tag;
  c.objective_ms = objective_ms;
  c.target = target;
  return c;
}

Histogram& test_histogram(const SloConfig& c) {
  return Registry::instance().histogram(c.histogram,
                                        {1.0, 10.0, 100.0, 1000.0});
}

TEST(SloTrackerTest, ValidatesConfig) {
  EXPECT_THROW(SloTracker(test_config("bad_t0", 100.0, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(SloTracker(test_config("bad_t1", 100.0, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(SloTracker(test_config("bad_obj", 0.0, 0.9)),
               std::invalid_argument);
}

TEST(SloTrackerTest, IdleWindowReportsFullCompliance) {
  const SloConfig config = test_config("idle");
  test_histogram(config);
  SloTracker tracker(config);
  const SloTracker::Report report = tracker.update();
  EXPECT_EQ(report.window_count, 0);
  EXPECT_EQ(report.compliance, 1.0);
  EXPECT_EQ(report.burn, 0.0);
}

TEST(SloTrackerTest, PercentilesWithinBucketOfTruth) {
  const SloConfig config = test_config("pct");
  Histogram& hist = test_histogram(config);
  SloTracker tracker(config);
  // 100 samples at ~5 ms: every percentile lands in the (1, 10] bucket.
  for (int i = 0; i < 100; ++i) hist.observe(5.0);
  const SloTracker::Report report = tracker.update();
  EXPECT_EQ(report.window_count, 100);
  EXPECT_GT(report.p50_ms, 1.0);
  EXPECT_LE(report.p50_ms, 10.0);
  EXPECT_GT(report.p99_ms, 1.0);
  EXPECT_LE(report.p99_ms, 10.0);
  EXPECT_LE(report.p50_ms, report.p95_ms);
  EXPECT_LE(report.p95_ms, report.p99_ms);
}

TEST(SloTrackerTest, BurnRateMatchesViolationFraction) {
  // objective 100 ms, target 0.9 -> 10% error budget. 20 of 100 samples over
  // the objective burns the budget at 2x.
  const SloConfig config = test_config("burn");
  Histogram& hist = test_histogram(config);
  SloTracker tracker(config);
  for (int i = 0; i < 80; ++i) hist.observe(5.0);
  for (int i = 0; i < 20; ++i) hist.observe(5000.0);  // overflow bucket
  const SloTracker::Report report = tracker.update();
  EXPECT_EQ(report.window_count, 100);
  EXPECT_NEAR(report.window_violations, 20.0, 1e-9);
  EXPECT_NEAR(report.compliance, 0.8, 1e-9);
  EXPECT_NEAR(report.burn, 2.0, 1e-9);
}

TEST(SloTrackerTest, WindowsAreDeltasBetweenUpdates) {
  const SloConfig config = test_config("delta");
  Histogram& hist = test_histogram(config);
  SloTracker tracker(config);
  for (int i = 0; i < 50; ++i) hist.observe(500.0);  // all violations
  EXPECT_NEAR(tracker.update().burn, 10.0, 1e-9);    // 100% / 10% budget
  // Next interval is healthy; the old violations must not leak into it.
  for (int i = 0; i < 50; ++i) hist.observe(5.0);
  const SloTracker::Report second = tracker.update();
  EXPECT_EQ(second.window_count, 50);
  EXPECT_NEAR(second.window_violations, 0.0, 1e-9);
  EXPECT_NEAR(second.compliance, 1.0, 1e-9);
  EXPECT_NEAR(second.burn, 0.0, 1e-9);
}

TEST(SloTrackerTest, LastReturnsMostRecentReportWithoutAdvancing) {
  const SloConfig config = test_config("last");
  Histogram& hist = test_histogram(config);
  SloTracker tracker(config);
  for (int i = 0; i < 10; ++i) hist.observe(5.0);
  const SloTracker::Report report = tracker.update();
  EXPECT_EQ(tracker.last().window_count, report.window_count);
  EXPECT_EQ(tracker.last().window_count, 10);  // last() does not consume
}

TEST(SloTrackerTest, PublishesGaugesIntoTheRegistry) {
  const SloConfig config = test_config("gauges", 100.0, 0.9);
  Histogram& hist = test_histogram(config);
  SloTracker tracker(config);
  for (int i = 0; i < 10; ++i) hist.observe(5000.0);
  tracker.update();
  Registry& registry = Registry::instance();
  EXPECT_NEAR(registry.gauge(config.gauge_prefix + ".burn").value(), 10.0, 1e-9);
  EXPECT_NEAR(registry.gauge(config.gauge_prefix + ".compliance").value(), 0.0,
              1e-9);
  EXPECT_EQ(registry.gauge(config.gauge_prefix + ".window_requests").value(),
            10.0);
}

}  // namespace
}  // namespace ullsnn::obs
