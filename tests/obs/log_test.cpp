#include "src/obs/log.h"

#include <gtest/gtest.h>

namespace ullsnn::obs {
namespace {

class LogLevelTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kInfo;
};

TEST_F(LogLevelTest, ParseRecognizesNames) {
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
}

TEST_F(LogLevelTest, ParseRecognizesNumericLevels) {
  EXPECT_EQ(parse_log_level("-1"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("0"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("3"), LogLevel::kDebug);
}

TEST_F(LogLevelTest, ParseFallsBackToInfo) {
  EXPECT_EQ(parse_log_level(nullptr), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level(""), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("7"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("2x"), LogLevel::kInfo);
}

TEST_F(LogLevelTest, ThresholdGatesLevels) {
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
}

TEST_F(LogLevelTest, OffDisablesEverything) {
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  EXPECT_FALSE(log_enabled(LogLevel::kWarn));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  // Emitting while off must be a silent no-op (and must not crash).
  logf(LogLevel::kError, "suppressed %d", 1);
}

TEST_F(LogLevelTest, KOffIsNeverAnEnabledLevel) {
  set_log_level(LogLevel::kDebug);
  EXPECT_FALSE(log_enabled(LogLevel::kOff));
}

TEST_F(LogLevelTest, CapturedInfoLineGoesToStdout) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStdout();
  logf(LogLevel::kInfo, "hello %s %d", "world", 42);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(out, "hello world 42\n");
}

TEST_F(LogLevelTest, WarnGoesToStderrWithNewlineAppendedOnce) {
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  logf(LogLevel::kWarn, "already newlined\n");
  logf(LogLevel::kError, "bare");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err, "already newlined\nbare\n");
}

}  // namespace
}  // namespace ullsnn::obs
