#include "src/obs/exposition.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

namespace ullsnn::obs {
namespace {

HistogramSample make_histogram(std::string name, std::vector<double> bounds,
                               std::vector<std::int64_t> counts) {
  HistogramSample h;
  h.name = std::move(name);
  h.bounds = std::move(bounds);
  h.counts = std::move(counts);
  for (const std::int64_t c : h.counts) h.count += c;
  return h;
}

TEST(ExpositionTest, SanitizesMetricNames) {
  EXPECT_EQ(prometheus_metric_name("serve.latency.total_ms"),
            "serve_latency_total_ms");
  EXPECT_EQ(prometheus_metric_name("already_valid:name"), "already_valid:name");
  EXPECT_EQ(prometheus_metric_name("space and-dash"), "space_and_dash");
  // A leading digit is not a valid first character; it gets prefixed.
  EXPECT_EQ(prometheus_metric_name("9lives"), "_9lives");
}

TEST(ExpositionTest, EscapesLabelValues) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escape_label_value("quo\"te"), "quo\\\"te");
  EXPECT_EQ(escape_label_value("new\nline"), "new\\nline");
  EXPECT_EQ(escape_label_value("all\\three\"\n"), "all\\\\three\\\"\\n");
}

TEST(ExpositionTest, GoldenScrape) {
  MetricsSnapshot snap;
  snap.counters.push_back({"serve.accepted", 42});
  snap.gauges.push_back({"train.loss", 0.5});
  snap.histograms.push_back(
      make_histogram("serve.latency.total_ms", {1.0, 10.0}, {3, 2, 1}));
  const std::string text = render_prometheus(snap);
  const std::string expected =
      "# TYPE serve_accepted counter\n"
      "serve_accepted 42\n"
      "# TYPE train_loss gauge\n"
      "train_loss 0.5\n"
      "# TYPE serve_latency_total_ms histogram\n"
      "serve_latency_total_ms_bucket{le=\"1\"} 3\n"
      "serve_latency_total_ms_bucket{le=\"10\"} 5\n"
      "serve_latency_total_ms_bucket{le=\"+Inf\"} 6\n"
      "serve_latency_total_ms_sum 0\n"
      "serve_latency_total_ms_count 6\n";
  EXPECT_EQ(text, expected);
}

TEST(ExpositionTest, RendersSharedLabelsOnEverySample) {
  MetricsSnapshot snap;
  snap.counters.push_back({"c", 1});
  snap.histograms.push_back(make_histogram("h", {1.0}, {1, 0}));
  const std::string text =
      render_prometheus(snap, {{"job", "ullsnn"}, {"instance", "a\"b"}});
  EXPECT_NE(text.find("c{job=\"ullsnn\",instance=\"a\\\"b\"} 1"),
            std::string::npos);
  // Histogram buckets merge the shared labels with `le`.
  EXPECT_NE(
      text.find("h_bucket{job=\"ullsnn\",instance=\"a\\\"b\",le=\"1\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find("h_bucket{job=\"ullsnn\",instance=\"a\\\"b\",le=\"+Inf\"} 1"),
      std::string::npos);
}

TEST(ExpositionTest, BucketLinesAreCumulativeAndEndAtCount) {
  // Per the exposition spec, _bucket values must be cumulative
  // (monotonically non-decreasing in le) and the +Inf bucket must equal
  // _count exactly.
  MetricsSnapshot snap;
  snap.histograms.push_back(
      make_histogram("h", {0.5, 1.0, 5.0, 10.0}, {7, 0, 12, 3, 5}));
  const std::string text = render_prometheus(snap);
  std::vector<std::int64_t> bucket_values;
  std::size_t pos = 0;
  while ((pos = text.find("} ", pos)) != std::string::npos) {
    const std::size_t line_start = text.rfind('\n', pos);
    const std::string line =
        text.substr(line_start + 1, text.find('\n', pos) - line_start - 1);
    if (line.rfind("h_bucket", 0) == 0) {
      bucket_values.push_back(std::stoll(text.substr(pos + 2)));
    }
    pos += 2;
  }
  ASSERT_EQ(bucket_values.size(), 5u);  // 4 finite bounds + +Inf
  for (std::size_t i = 1; i < bucket_values.size(); ++i) {
    EXPECT_GE(bucket_values[i], bucket_values[i - 1]);
  }
  EXPECT_EQ(bucket_values.back(), 27);
  EXPECT_NE(text.find("h_count 27"), std::string::npos);
}

TEST(ExpositionTest, QuantileOfEmptyHistogramIsZero) {
  const HistogramSample h = make_histogram("h", {1.0, 2.0}, {0, 0, 0});
  EXPECT_EQ(histogram_quantile(h, 0.5), 0.0);
}

TEST(ExpositionTest, QuantileInterpolatesWithinBucket) {
  // 100 samples uniform in one bucket (1, 2]: the median estimate must land
  // mid-bucket, and every quantile within bucket bounds.
  const HistogramSample h = make_histogram("h", {1.0, 2.0, 4.0}, {0, 100, 0, 0});
  EXPECT_NEAR(histogram_quantile(h, 0.5), 1.5, 1e-9);
  EXPECT_NEAR(histogram_quantile(h, 0.0), 1.0, 1e-9);
  EXPECT_NEAR(histogram_quantile(h, 1.0), 2.0, 1e-9);
}

TEST(ExpositionTest, QuantileErrorBoundedByBucketWidth) {
  // Draw real samples, histogram them, and check every estimated quantile is
  // within one bucket width of the true order statistic.
  const std::vector<double> bounds = {1, 2, 5, 10, 25, 50, 100};
  std::vector<std::int64_t> counts(bounds.size() + 1, 0);
  std::mt19937 rng(7);
  std::lognormal_distribution<double> dist(2.0, 0.8);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    std::size_t b = 0;
    while (b < bounds.size() && v > bounds[b]) ++b;
    ++counts[b];
  }
  std::sort(samples.begin(), samples.end());
  const HistogramSample h = make_histogram("h", bounds, counts);
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double truth =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    // Bucket width at the true value.
    std::size_t b = 0;
    while (b < bounds.size() && truth > bounds[b]) ++b;
    ASSERT_LT(b, bounds.size()) << "test samples must not overflow";
    const double width = b == 0 ? bounds[0] : bounds[b] - bounds[b - 1];
    EXPECT_NEAR(histogram_quantile(h, q), truth, width)
        << "q=" << q << " truth=" << truth;
  }
}

TEST(ExpositionTest, QuantileInOverflowBucketReturnsLargestBound) {
  const HistogramSample h = make_histogram("h", {1.0, 2.0}, {1, 1, 98});
  EXPECT_EQ(histogram_quantile(h, 0.99), 2.0);
}

TEST(ExpositionTest, CountAboveIsExactAtBucketBounds) {
  const HistogramSample h = make_histogram("h", {1.0, 10.0, 100.0},
                                           {5, 10, 20, 3});
  EXPECT_NEAR(histogram_count_above(h, 1.0), 33.0, 1e-9);
  EXPECT_NEAR(histogram_count_above(h, 10.0), 23.0, 1e-9);
  EXPECT_NEAR(histogram_count_above(h, 100.0), 3.0, 1e-9);
}

TEST(ExpositionTest, CountAboveInterpolatesMidBucket) {
  // 10 samples in (1, 10]; a threshold of 5.5 splits the bucket in half.
  const HistogramSample h = make_histogram("h", {1.0, 10.0}, {0, 10, 0});
  EXPECT_NEAR(histogram_count_above(h, 5.5), 5.0, 1e-9);
}

TEST(ExpositionTest, OverflowSamplesAlwaysCountAsAbove) {
  // Samples in the overflow bucket exceed every finite bound, so any
  // threshold at or beyond the largest bound must still count all of them.
  const HistogramSample h = make_histogram("h", {1.0, 2.0}, {0, 0, 7});
  EXPECT_NEAR(histogram_count_above(h, 2.0), 7.0, 1e-9);
  EXPECT_NEAR(histogram_count_above(h, 1000.0), 7.0, 1e-9);
}

}  // namespace
}  // namespace ullsnn::obs
