#include "src/obs/http_endpoint.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "tests/testutil/http_get.h"

namespace ullsnn::obs {
namespace {

using testutil::http_request;

HttpEndpoint::Config loopback_config() {
  HttpEndpoint::Config c;
  c.port = 0;  // ephemeral
  return c;
}

TEST(HttpEndpointTest, ServesRegisteredRoute) {
  HttpEndpoint endpoint(loopback_config());
  endpoint.route("/metrics", [](const std::string&, const std::string&) {
    HttpResponse r;
    r.body = "metric_total 1\n";
    return r;
  });
  endpoint.start();
  ASSERT_GT(endpoint.port(), 0);
  const auto result = http_request(endpoint.port(), "/metrics");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "metric_total 1\n");
  EXPECT_NE(result.headers.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(result.headers.find("Connection: close"), std::string::npos);
  EXPECT_EQ(endpoint.requests_served(), 1);
}

TEST(HttpEndpointTest, PassesQueryStringSeparately) {
  HttpEndpoint endpoint(loopback_config());
  std::string seen_path, seen_query;
  endpoint.route("/flight", [&](const std::string& path, const std::string& query) {
    seen_path = path;
    seen_query = query;
    return HttpResponse{};
  });
  endpoint.start();
  const auto result = http_request(endpoint.port(), "/flight?n=10&kind=breaker");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(seen_path, "/flight");
  EXPECT_EQ(seen_query, "n=10&kind=breaker");
}

TEST(HttpEndpointTest, UnknownPathIs404) {
  HttpEndpoint endpoint(loopback_config());
  endpoint.route("/metrics", [](const std::string&, const std::string&) {
    return HttpResponse{};
  });
  endpoint.start();
  const auto result = http_request(endpoint.port(), "/nope");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 404);
  // The 404 body lists what IS routable, for the human with curl.
  EXPECT_NE(result.body.find("/metrics"), std::string::npos);
}

TEST(HttpEndpointTest, NonGetIs405) {
  HttpEndpoint endpoint(loopback_config());
  endpoint.route("/metrics", [](const std::string&, const std::string&) {
    return HttpResponse{};
  });
  endpoint.start();
  const auto result = http_request(endpoint.port(), "/metrics", "POST");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 405);
}

TEST(HttpEndpointTest, ThrowingHandlerYields500NotACrash) {
  HttpEndpoint endpoint(loopback_config());
  endpoint.route("/boom", [](const std::string&, const std::string&) -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  endpoint.start();
  const auto result = http_request(endpoint.port(), "/boom");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 500);
  EXPECT_NE(result.body.find("handler exploded"), std::string::npos);
  // The accept thread survived; the endpoint still serves.
  const auto again = http_request(endpoint.port(), "/boom");
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.status, 500);
}

TEST(HttpEndpointTest, RouteAfterStartThrows) {
  HttpEndpoint endpoint(loopback_config());
  endpoint.route("/a", [](const std::string&, const std::string&) {
    return HttpResponse{};
  });
  endpoint.start();
  EXPECT_THROW(endpoint.route("/b",
                              [](const std::string&, const std::string&) {
                                return HttpResponse{};
                              }),
               std::logic_error);
}

TEST(HttpEndpointTest, StopIsIdempotentAndReleasesThePort) {
  HttpEndpoint endpoint(loopback_config());
  endpoint.route("/metrics", [](const std::string&, const std::string&) {
    return HttpResponse{};
  });
  endpoint.start();
  const int port = endpoint.port();
  EXPECT_TRUE(endpoint.running());
  endpoint.stop();
  endpoint.stop();
  EXPECT_FALSE(endpoint.running());
  // The port is free again: a second endpoint can claim it.
  HttpEndpoint::Config reuse = loopback_config();
  reuse.port = port;
  HttpEndpoint second(reuse);
  second.route("/metrics", [](const std::string&, const std::string&) {
    HttpResponse r;
    r.body = "second\n";
    return r;
  });
  ASSERT_NO_THROW(second.start());
  const auto result = http_request(port, "/metrics");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.body, "second\n");
}

TEST(HttpEndpointTest, ServesSequentialScrapes) {
  HttpEndpoint endpoint(loopback_config());
  int hits = 0;
  endpoint.route("/metrics", [&hits](const std::string&, const std::string&) {
    HttpResponse r;
    r.body = "hit " + std::to_string(++hits) + "\n";
    return r;
  });
  endpoint.start();
  for (int i = 1; i <= 5; ++i) {
    const auto result = http_request(endpoint.port(), "/metrics");
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.body, "hit " + std::to_string(i) + "\n");
  }
  EXPECT_EQ(endpoint.requests_served(), 5);
}

}  // namespace
}  // namespace ullsnn::obs
