#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace ullsnn::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  {
    TraceScope scope("should.not.appear");
  }
  Tracer::instance().record_instant("also.not");
  EXPECT_EQ(Tracer::instance().event_count(), 0U);
}

TEST_F(TraceTest, ScopeRecordsCompleteEvent) {
  Tracer::instance().set_enabled(true);
  {
    TraceScope scope("unit.span");
  }
  const std::vector<TraceEvent> events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_STREQ(events[0].name, "unit.span");
  EXPECT_EQ(events[0].phase, 'X');
}

TEST_F(TraceTest, InstantEventCarriesArgs) {
  Tracer::instance().set_enabled(true);
  Tracer::instance().record_instant("unit.instant", "\"nan\":3");
  const std::vector<TraceEvent> events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_STREQ(events[0].args, "\"nan\":3");
}

TEST_F(TraceTest, NestedScopesNestDurations) {
  Tracer::instance().set_enabled(true);
  {
    TraceScope outer("outer");
    {
      TraceScope inner("inner");
    }
  }
  const std::vector<TraceEvent> events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 2U);
  // Destruction order records inner first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_GE(events[1].ts_us + events[1].dur_us, events[0].ts_us + events[0].dur_us);
}

TEST_F(TraceTest, EventsFromMultipleThreadsAllSurvive) {
  Tracer::instance().set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        TraceScope scope("thread.span");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(Tracer::instance().event_count(),
            static_cast<std::size_t>(kThreads) * kSpans);
}

TEST_F(TraceTest, ChromeTraceExportIsWellFormed) {
  Tracer::instance().set_enabled(true);
  {
    TraceScope scope("export.span");
  }
  Tracer::instance().record_instant("export.instant", "\"k\":1");
  const std::string path = "trace_test_out.json";
  Tracer::instance().write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_EQ(text.find("{\"traceEvents\":["), 0U);
  EXPECT_NE(text.find("\"name\":\"export.span\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"args\":{\"k\":1}"), std::string::npos);
  // Trivial balance check: equal numbers of braces/brackets.
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  EXPECT_EQ(std::count(text.begin(), text.end(), '['),
            std::count(text.begin(), text.end(), ']'));
  std::filesystem::remove(path);
}

TEST_F(TraceTest, JsonlExportOneEventPerLine) {
  Tracer::instance().set_enabled(true);
  {
    TraceScope a("jsonl.a");
    TraceScope b("jsonl.b");
  }
  const std::string path = "trace_test_out.jsonl";
  Tracer::instance().write_jsonl(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 2U);
  std::filesystem::remove(path);
}

TEST_F(TraceTest, LongNamesAreTruncatedNotOverflowed) {
  Tracer::instance().set_enabled(true);
  const std::string long_name(200, 'x');
  Tracer::instance().record_complete(long_name.c_str(), 0, 1);
  const std::vector<TraceEvent> events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_LT(std::string(events[0].name).size(), sizeof(TraceEvent{}.name));
}

TEST_F(TraceTest, MacroCompilesInBothConfigs) {
  Tracer::instance().set_enabled(true);
  {
    ULLSNN_TRACE_SCOPE("macro.span");
    ULLSNN_TRACE_INSTANT("macro.instant");
  }
#if ULLSNN_TELEMETRY
  EXPECT_EQ(Tracer::instance().event_count(), 2U);
#else
  EXPECT_EQ(Tracer::instance().event_count(), 0U);
#endif
}

}  // namespace
}  // namespace ullsnn::obs
