#include "src/obs/sink.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace ullsnn::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TelemetryRecord sample_record(std::int64_t layer, double rate) {
  TelemetryRecord r;
  r.kind = "snn.layer_activity";
  r.add("layer", layer).add("name", std::string("conv#") + std::to_string(layer))
      .add("rate", rate);
  return r;
}

TEST(MemorySink, CollectsRecordsInOrder) {
  MemorySink sink;
  sink.emit(sample_record(0, 0.5));
  sink.emit(sample_record(1, 0.25));
  ASSERT_EQ(sink.records().size(), 2U);
  EXPECT_EQ(sink.records()[0].fields[0].int_value, 0);
  EXPECT_EQ(sink.records()[1].fields[0].int_value, 1);
  sink.clear();
  EXPECT_TRUE(sink.records().empty());
}

TEST(CsvSink, HeaderFromFirstRecordThenRows) {
  const std::string path = "sink_test.csv";
  {
    CsvSink sink(path);
    sink.emit(sample_record(0, 0.5));
    sink.emit(sample_record(1, 0.125));
    sink.flush();
  }
  const std::string text = read_file(path);
  EXPECT_EQ(text, "layer,name,rate\n0,conv#0,0.5\n1,conv#1,0.125\n");
  std::filesystem::remove(path);
}

TEST(CsvSink, CommentLinesArePrefixed) {
  const std::string path = "sink_test_comment.csv";
  {
    CsvSink sink(path, "line one\nline two");
    sink.emit(sample_record(0, 1.0));
    sink.flush();
  }
  const std::string text = read_file(path);
  EXPECT_EQ(text.rfind("# line one\n# line two\nlayer,", 0), 0U);
  std::filesystem::remove(path);
}

TEST(CsvSink, CellsWithCommasAreQuoted) {
  const std::string path = "sink_test_quote.csv";
  {
    CsvSink sink(path);
    TelemetryRecord r;
    r.kind = "t";
    r.add("label", std::string("a,b"));
    sink.emit(r);
    sink.flush();
  }
  const std::string text = read_file(path);
  EXPECT_NE(text.find("\"a,b\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CsvSink, RejectsMismatchedRecords) {
  const std::string path = "sink_test_mismatch.csv";
  CsvSink sink(path);
  sink.emit(sample_record(0, 1.0));
  TelemetryRecord wrong_arity;
  wrong_arity.kind = "t";
  wrong_arity.add("layer", std::int64_t{1});
  EXPECT_THROW(sink.emit(wrong_arity), std::invalid_argument);
  TelemetryRecord wrong_keys;
  wrong_keys.kind = "t";
  wrong_keys.add("layer", std::int64_t{1}).add("nome", std::string("x")).add("rate", 0.5);
  EXPECT_THROW(sink.emit(wrong_keys), std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(JsonlSink, EmitsOneEscapedObjectPerLine) {
  const std::string path = "sink_test.jsonl";
  {
    JsonlSink sink(path);
    TelemetryRecord r;
    r.kind = "kind\"with quote";
    r.add("n", std::int64_t{3}).add("s", std::string("back\\slash"));
    sink.emit(r);
    sink.emit(sample_record(1, 0.5));
    sink.flush();
  }
  const std::string text = read_file(path);
  std::istringstream lines(text);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line,
            R"({"kind":"kind\"with quote","n":3,"s":"back\\slash"})");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line,
            R"({"kind":"snn.layer_activity","layer":1,"name":"conv#1","rate":0.5})");
  std::filesystem::remove(path);
}

TEST(TelemetryField, RenderedFormatsByType) {
  TelemetryRecord r;
  r.add("i", std::int64_t{-7}).add("d", 0.25).add("s", std::string("x"));
  EXPECT_EQ(r.fields[0].rendered(), "-7");
  EXPECT_EQ(r.fields[1].rendered(), "0.25");
  EXPECT_EQ(r.fields[2].rendered(), "x");
}

}  // namespace
}  // namespace ullsnn::obs
