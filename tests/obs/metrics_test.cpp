#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace ullsnn::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Gauge, SetAddAndReset) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsSamplesByUpperBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive upper bound)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // overflow
  const std::vector<std::int64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4U);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 1000.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Registry, SameNameSameInstrument) {
  Registry& reg = Registry::instance();
  Counter& a = reg.counter("test.registry.same");
  Counter& b = reg.counter("test.registry.same");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(7);
  EXPECT_EQ(b.value(), 7);
}

TEST(Registry, SnapshotContainsRegisteredInstruments) {
  Registry& reg = Registry::instance();
  reg.counter("test.snapshot.counter").add(3);
  reg.gauge("test.snapshot.gauge").set(1.25);
  reg.histogram("test.snapshot.hist").observe(0.5);
  const MetricsSnapshot snap = reg.snapshot();
  bool found_counter = false, found_gauge = false, found_hist = false;
  for (const auto& c : snap.counters) {
    if (c.name == "test.snapshot.counter") {
      found_counter = true;
      EXPECT_GE(c.value, 3);
    }
  }
  for (const auto& g : snap.gauges) {
    if (g.name == "test.snapshot.gauge") {
      found_gauge = true;
      EXPECT_DOUBLE_EQ(g.value, 1.25);
    }
  }
  for (const auto& h : snap.histograms) {
    if (h.name == "test.snapshot.hist") {
      found_hist = true;
      EXPECT_EQ(h.counts.size(), h.bounds.size() + 1);
    }
  }
  EXPECT_TRUE(found_counter);
  EXPECT_TRUE(found_gauge);
  EXPECT_TRUE(found_hist);
}

TEST(Registry, ConcurrentAddsAreLossless) {
  Counter& c = Registry::instance().counter("test.registry.concurrent");
  c.reset();
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kAdds);
}

TEST(Registry, ConcurrentRegistrationAndUpdatesAreExact) {
  // Hammer the registry the way the serving engine does: every thread
  // resolves instruments BY NAME on every iteration (registration mutex and
  // instrument update racing together), spread across several counters, a
  // shared gauge, and a histogram. Totals must come out exact — lock-free
  // updates may not lose a single increment.
  Registry& reg = Registry::instance();
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  constexpr int kCounters = 4;
  for (int k = 0; k < kCounters; ++k) {
    reg.counter("test.hammer.c" + std::to_string(k)).reset();
  }
  Histogram& hist = reg.histogram("test.hammer.hist");
  hist.reset();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        const int k = (t + i) % kCounters;
        reg.counter("test.hammer.c" + std::to_string(k)).add(1);
        reg.histogram("test.hammer.hist").observe(static_cast<double>(i % 7));
        reg.gauge("test.hammer.gauge").set(static_cast<double>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::int64_t counter_total = 0;
  for (int k = 0; k < kCounters; ++k) {
    counter_total += reg.counter("test.hammer.c" + std::to_string(k)).value();
  }
  EXPECT_EQ(counter_total, static_cast<std::int64_t>(kThreads) * kIters);
  EXPECT_EQ(hist.count(), static_cast<std::int64_t>(kThreads) * kIters);
  std::int64_t bucket_total = 0;
  for (const std::int64_t b : hist.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, hist.count());
  // The gauge holds some thread's last write, not garbage.
  const double g = reg.gauge("test.hammer.gauge").value();
  EXPECT_GE(g, 0.0);
  EXPECT_LT(g, static_cast<double>(kThreads));
}

TEST(MetricsMacros, CompileAndUpdateWhenEnabled) {
  // With ULLSNN_TELEMETRY=0 the macros are no-ops and the value stays 0;
  // both behaviors are valid — the test asserts consistency with the build.
  Counter& c = Registry::instance().counter("test.macro.counter");
  c.reset();
  ULLSNN_COUNTER_ADD("test.macro.counter", 5);
  ULLSNN_GAUGE_SET("test.macro.gauge", 9.0);
  ULLSNN_HISTOGRAM_OBSERVE("test.macro.hist", 0.01);
#if ULLSNN_TELEMETRY
  EXPECT_EQ(c.value(), 5);
  EXPECT_DOUBLE_EQ(Registry::instance().gauge("test.macro.gauge").value(), 9.0);
#else
  EXPECT_EQ(c.value(), 0);
#endif
}

TEST(MetricsExport, CsvRoundTripsNamesAndValues) {
  Registry& reg = Registry::instance();
  reg.counter("test.csv.counter").reset();
  reg.counter("test.csv.counter").add(11);
  reg.gauge("test.csv.gauge").set(0.5);
  const std::string path = "metrics_test_out.csv";
  write_metrics_csv(reg.snapshot(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("kind,name,value,count,sum,buckets"), std::string::npos);
  EXPECT_NE(text.find("counter,test.csv.counter,11"), std::string::npos);
  EXPECT_NE(text.find("gauge,test.csv.gauge,0.5"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(MetricsExport, JsonlOneObjectPerLine) {
  Registry& reg = Registry::instance();
  reg.counter("test.jsonl.counter").add(1);
  const std::string path = "metrics_test_out.jsonl";
  write_metrics_jsonl(reg.snapshot(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  bool found = false;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("test.jsonl.counter") != std::string::npos) found = true;
  }
  EXPECT_GE(lines, 1U);
  EXPECT_TRUE(found);
  std::filesystem::remove(path);
}

TEST(MetricsExport, ResetValuesKeepsRegistrations) {
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("test.reset.counter");
  c.add(9);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0);
  // Same reference still registered and usable.
  c.add(2);
  EXPECT_EQ(reg.counter("test.reset.counter").value(), 2);
}

}  // namespace
}  // namespace ullsnn::obs
