#include "src/obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace ullsnn::obs {
namespace {

RequestRecord sample_record(std::int64_t id) {
  RequestRecord r;
  r.id = id;
  std::snprintf(r.status, sizeof r.status, "ok");
  r.time_steps = 3;
  r.batch_size = 2;
  r.worker = 0;
  r.queue_ms = 0.5;
  r.batch_ms = 0.25;
  r.infer_ms = 1.5;
  r.total_ms = 2.25;
  r.steps = 3;
  r.step_ms[0] = 0.5;
  r.step_ms[1] = 0.5;
  r.step_ms[2] = 0.5;
  r.ts_us = 1000 + static_cast<std::uint64_t>(id);
  return r;
}

TEST(FlightRecorderTest, RetainsRequestsAndEvents) {
  FlightRecorder recorder(/*request_capacity=*/16, /*event_capacity=*/8);
  for (std::int64_t i = 0; i < 5; ++i) recorder.record_request(sample_record(i));
  recorder.record_event("breaker", "-> %s (T=%d)", "degraded", 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  recorder.record_event("breaker", "-> closed");
  const auto requests = recorder.requests();
  ASSERT_EQ(requests.size(), 5u);
  EXPECT_EQ(requests.front().id, 0);
  EXPECT_EQ(requests.back().id, 4);
  EXPECT_STREQ(requests.back().status, "ok");
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].kind, "breaker");
  EXPECT_STREQ(events[0].detail, "-> degraded (T=2)");
  // Timestamps count from the trace epoch, which is pinned at the FIRST
  // now_us() call in the process — so the first event may legitimately read
  // 0; what must hold is that later events advance.
  EXPECT_GT(events[1].ts_us, events[0].ts_us);
}

TEST(FlightRecorderTest, RingOverwriteKeepsTheRecentPast) {
  FlightRecorder recorder(/*request_capacity=*/4, /*event_capacity=*/4);
  for (std::int64_t i = 0; i < 20; ++i) recorder.record_request(sample_record(i));
  const auto requests = recorder.requests();
  ASSERT_EQ(requests.size(), 4u);
  EXPECT_EQ(requests.front().id, 16);
  EXPECT_EQ(requests.back().id, 19);
  EXPECT_EQ(recorder.requests_recorded(), 20u);
}

TEST(FlightRecorderTest, EventDetailIsTruncatedNotOverrun) {
  FlightRecorder recorder(4, 4);
  const std::string longline(500, 'x');
  recorder.record_event("spam", "%s", longline.c_str());
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::strlen(events[0].detail), sizeof(FlightEvent{}.detail) - 1);
}

TEST(FlightRecorderTest, RenderJsonlEmitsOneObjectPerLine) {
  FlightRecorder recorder(8, 8);
  recorder.record_event("watchdog", "request 7 timed out");
  recorder.record_request(sample_record(7));
  const std::string jsonl = recorder.render_jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  int events = 0, requests = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"type\":\"event\"") != std::string::npos) ++events;
    if (line.find("\"type\":\"request\"") != std::string::npos) ++requests;
  }
  EXPECT_EQ(events, 1);
  EXPECT_EQ(requests, 1);
  EXPECT_NE(jsonl.find("\"id\":7"), std::string::npos);
  EXPECT_NE(jsonl.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"step_ms\":[0.5000,0.5000,0.5000]"), std::string::npos);
}

TEST(FlightRecorderTest, JsonEscapesHostileDetailText) {
  FlightRecorder recorder(4, 4);
  recorder.record_event("error", "path \"a\\b\"\nnext");
  const std::string jsonl = recorder.render_jsonl();
  EXPECT_NE(jsonl.find(R"(path \"a\\b\"\nnext)"), std::string::npos);
}

TEST(FlightRecorderTest, AnomalyDumpsJsonlToConfiguredPath) {
  FlightRecorder recorder(8, 8);
  const std::string path = testing::TempDir() + "flight_dump_test.jsonl";
  recorder.set_dump_path(path);
  recorder.record_request(sample_record(3));
  recorder.note_anomaly("watchdog", "request %d exceeded hard timeout", 3);
  EXPECT_EQ(recorder.anomalies(), 1);
  ASSERT_EQ(recorder.dumps_written(), 1);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("\"kind\":\"watchdog\""), std::string::npos);
  EXPECT_NE(contents.str().find("\"id\":3"), std::string::npos);
}

TEST(FlightRecorderTest, DumpsAreRateLimited) {
  FlightRecorder recorder(8, 8);
  const std::string path = testing::TempDir() + "flight_rate_test.jsonl";
  recorder.set_dump_path(path);
  // An anomaly storm: every anomaly is counted, but only the first lands on
  // disk inside the 1 s rate-limit window.
  for (int i = 0; i < 50; ++i) recorder.note_anomaly("storm", "anomaly %d", i);
  EXPECT_EQ(recorder.anomalies(), 50);
  EXPECT_EQ(recorder.dumps_written(), 1);
}

TEST(FlightRecorderTest, NoDumpPathMeansNoDump) {
  FlightRecorder recorder(8, 8);
  recorder.note_anomaly("watchdog", "timeout");
  EXPECT_EQ(recorder.anomalies(), 1);
  EXPECT_EQ(recorder.dumps_written(), 0);
}

TEST(FlightRecorderTest, DumpToUnwritablePathReportsFailure) {
  FlightRecorder recorder(8, 8);
  EXPECT_FALSE(recorder.dump_jsonl("/nonexistent-dir/deep/flight.jsonl"));
}

TEST(FlightRecorderTest, ClearDropsEverything) {
  FlightRecorder recorder(8, 8);
  recorder.record_request(sample_record(1));
  recorder.note_anomaly("x", "y");
  recorder.clear();
  EXPECT_TRUE(recorder.requests().empty());
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_EQ(recorder.anomalies(), 0);
  EXPECT_EQ(recorder.dumps_written(), 0);
}

}  // namespace
}  // namespace ullsnn::obs
