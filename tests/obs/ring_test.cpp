#include "src/obs/ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

namespace ullsnn::obs {
namespace {

TEST(RingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Ring<int>(0).capacity(), 2u);
  EXPECT_EQ(Ring<int>(1).capacity(), 2u);
  EXPECT_EQ(Ring<int>(2).capacity(), 2u);
  EXPECT_EQ(Ring<int>(3).capacity(), 4u);
  EXPECT_EQ(Ring<int>(4).capacity(), 4u);
  EXPECT_EQ(Ring<int>(1000).capacity(), 1024u);
}

TEST(RingTest, SnapshotReturnsPushesOldestFirst) {
  Ring<int> ring(8);
  for (int i = 0; i < 5; ++i) ring.push(i);
  const std::vector<int> got = ring.snapshot();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ring.total_pushed(), 5u);
}

TEST(RingTest, OverwriteKeepsOnlyTheLastCapacityRecords) {
  Ring<int> ring(4);
  for (int i = 0; i < 100; ++i) ring.push(i);
  const std::vector<int> got = ring.snapshot();
  EXPECT_EQ(got, (std::vector<int>{96, 97, 98, 99}));
  EXPECT_EQ(ring.total_pushed(), 100u);
}

TEST(RingTest, ClearForgetsRetainedRecords) {
  Ring<int> ring(4);
  for (int i = 0; i < 10; ++i) ring.push(i);
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.total_pushed(), 0u);
  ring.push(7);
  EXPECT_EQ(ring.snapshot(), std::vector<int>{7});
}

TEST(RingTest, SnapshotOfEmptyRingIsEmpty) {
  Ring<int> ring(16);
  EXPECT_TRUE(ring.snapshot().empty());
}

// Concurrent pushes must never produce a torn or invented record: every
// snapshotted value must be one some thread actually pushed, and the ring
// must account for every push in total_pushed().
TEST(RingTest, ConcurrentPushesNeverTearRecords) {
  struct Wide {
    std::int64_t a = 0;
    std::int64_t b = 0;  // always == -a; a mismatch means a torn copy
  };
  Ring<Wide> ring(64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::int64_t v = static_cast<std::int64_t>(t) * kPerThread + i;
        ring.push({v, -v});
      }
    });
  }
  // Concurrent snapshots must also come back untorn.
  std::atomic<bool> done{false};
  std::thread reader([&ring, &done] {
    while (!done.load()) {
      for (const Wide& w : ring.snapshot()) {
        ASSERT_EQ(w.b, -w.a);
      }
    }
  });
  for (auto& t : threads) t.join();
  done.store(true);
  reader.join();
  EXPECT_EQ(ring.total_pushed(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const std::vector<Wide> finals = ring.snapshot();
  EXPECT_LE(finals.size(), ring.capacity());
  ASSERT_FALSE(finals.empty());
  std::set<std::int64_t> unique;
  for (const Wide& w : finals) {
    EXPECT_EQ(w.b, -w.a);
    unique.insert(w.a);
  }
  EXPECT_EQ(unique.size(), finals.size());  // no duplicated slots
}

}  // namespace
}  // namespace ullsnn::obs
