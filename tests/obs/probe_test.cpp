#include "src/obs/probe.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/obs/sink.h"
#include "src/snn/snn_network.h"
#include "src/tensor/random.h"

namespace ullsnn::obs {
namespace {

/// Two-neuron-layer toy network: conv(8ch) -> flatten -> linear(4, IF) ->
/// linear readout.
std::unique_ptr<snn::SnnNetwork> make_net(std::int64_t time_steps,
                                          snn::IfConfig neuron = {}) {
  auto net = std::make_unique<snn::SnnNetwork>(time_steps);
  Rng rng(5);
  Tensor wc({8, 3, 3, 3});
  kaiming_normal(wc, 3 * 9, rng);
  net->emplace<snn::SpikingConv2d>(std::move(wc), Conv2dSpec{3, 8, 3, 1, 1}, neuron);
  net->emplace<snn::SpikingFlatten>();
  Tensor wl({4, 8 * 8 * 8});
  kaiming_normal(wl, 8 * 8 * 8, rng);
  net->emplace<snn::SpikingLinear>(std::move(wl), neuron, /*with_neuron=*/true);
  Tensor wr({2, 4});
  kaiming_normal(wr, 4, rng);
  net->emplace<snn::SpikingLinear>(std::move(wr), snn::IfConfig{}, /*with_neuron=*/false);
  return net;
}

Tensor make_input(std::int64_t batch) {
  Rng rng(6);
  Tensor input({batch, 3, 8, 8});
  uniform_fill(input, -1.0F, 1.0F, rng);
  return input;
}

TEST(SnnRuntimeProbe, AttachesAndDetaches) {
  auto net = make_net(2);
  {
    SnnRuntimeProbe probe(*net);
    EXPECT_EQ(net->observer(), &probe);
  }
  EXPECT_EQ(net->observer(), nullptr);
}

TEST(SnnRuntimeProbe, SpikeTotalsMatchLayerCountersExactly) {
  auto net = make_net(3);
  SnnRuntimeProbe probe(*net);
  net->reset_stats();
  net->forward(make_input(4), /*train=*/false);
  net->forward(make_input(2), /*train=*/false);

  EXPECT_EQ(probe.sequences(), 2);
  EXPECT_EQ(probe.samples(), 6);
  EXPECT_EQ(probe.total_spikes(), net->total_spikes());
  const std::vector<LayerSummary> summaries = probe.summaries();
  ASSERT_EQ(summaries.size(), 2U);  // conv + hidden linear have neurons
  for (const LayerSummary& s : summaries) {
    EXPECT_EQ(s.spikes_total, net->layer(s.layer).spikes_emitted());
    EXPECT_EQ(s.neurons, net->layer(s.layer).neurons());
  }
}

TEST(SnnRuntimeProbe, SurvivesExternalCounterReset) {
  auto net = make_net(2);
  SnnRuntimeProbe probe(*net);
  net->reset_stats();
  net->forward(make_input(2), false);
  const std::int64_t after_first = probe.total_spikes();
  net->reset_stats();  // e.g. energy::measure_activity resetting mid-stream
  net->forward(make_input(2), false);
  // Probe keeps its own running total; the second sequence adds the same
  // deterministic spike count on top instead of going negative.
  EXPECT_EQ(probe.total_spikes(), 2 * after_first);
}

TEST(SnnRuntimeProbe, StepStatsCoverEveryProbedLayerAndStep) {
  const std::int64_t t_steps = 3;
  auto net = make_net(t_steps);
  SnnRuntimeProbe probe(*net);
  net->forward(make_input(2), false);
  // 2 probed layers x 3 steps.
  ASSERT_EQ(probe.step_stats().size(), 6U);
  std::int64_t sum = 0;
  for (const LayerStepStats& s : probe.step_stats()) {
    EXPECT_GE(s.spikes, 0);
    EXPECT_GE(s.spike_rate, 0.0);
    EXPECT_LE(s.spike_rate, 1.0);
    EXPECT_EQ(s.batch, 2);
    sum += s.spikes;
  }
  EXPECT_EQ(sum, probe.total_spikes());
}

TEST(SnnRuntimeProbe, MembraneHistogramCountsEveryNeuron) {
  auto net = make_net(2);
  SnnRuntimeProbe probe(*net);
  net->forward(make_input(2), false);
  for (const LayerStepStats& s : probe.step_stats()) {
    std::int64_t total = 0;
    for (std::int64_t c : s.membrane_histogram) total += c;
    EXPECT_EQ(total, s.batch * s.neurons);
    EXPECT_GE(s.saturation_fraction, 0.0);
    EXPECT_LE(s.saturation_fraction, 1.0);
    EXPECT_GE(s.membrane_var, 0.0);
  }
}

TEST(SnnRuntimeProbe, DeltaGapExactOnHandComputedNeuron) {
  // One input feeding one IF neuron through weight 1: I(t) = 0.3, V_th = 1,
  // beta = 1, T = 4. Membranes: 0.3, 0.6, 0.9 -> 1.2 spikes, U(4) = 0.2.
  // avg_in = 0.3, avg_out = 1/4; Delta = 0.3 - 0.25 = 0.05.
  auto net = std::make_unique<snn::SnnNetwork>(4);
  Tensor w({1, 1}, std::vector<float>{1.0F});
  net->emplace<snn::SpikingLinear>(std::move(w), snn::IfConfig{}, true);
  Tensor wr({1, 1}, std::vector<float>{1.0F});
  net->emplace<snn::SpikingLinear>(std::move(wr), snn::IfConfig{}, false);

  SnnRuntimeProbe probe(*net);
  probe.set_layer_mu({1.0F, 0.0F});
  Tensor input({1, 1}, std::vector<float>{0.3F});
  net->forward(input, false);

  const std::vector<LayerSummary> summaries = probe.summaries();
  ASSERT_EQ(summaries.size(), 1U);
  EXPECT_EQ(summaries[0].spikes_total, 1);
  EXPECT_NEAR(summaries[0].delta_gap, 0.05, 1e-6);
}

TEST(SnnRuntimeProbe, DeltaIsNanForHardResetOrLeak) {
  snn::IfConfig hard;
  hard.reset = snn::ResetMode::kZero;
  auto net = make_net(2, hard);
  SnnRuntimeProbe probe(*net);
  net->forward(make_input(2), false);
  for (const LayerSummary& s : probe.summaries()) {
    EXPECT_TRUE(std::isnan(s.delta_gap));
  }

  snn::IfConfig leaky;
  leaky.leak = 0.5F;
  auto net2 = make_net(2, leaky);
  SnnRuntimeProbe probe2(*net2);
  net2->forward(make_input(2), false);
  for (const LayerSummary& s : probe2.summaries()) {
    EXPECT_TRUE(std::isnan(s.delta_gap));
  }
}

TEST(SnnRuntimeProbe, ResetClearsCollectedData) {
  auto net = make_net(2);
  SnnRuntimeProbe probe(*net);
  net->forward(make_input(2), false);
  ASSERT_GT(probe.step_stats().size(), 0U);
  probe.reset();
  EXPECT_EQ(probe.step_stats().size(), 0U);
  EXPECT_EQ(probe.sequences(), 0);
  EXPECT_EQ(probe.samples(), 0);
  EXPECT_EQ(probe.total_spikes(), 0);
  // Still attached and usable after reset.
  net->forward(make_input(1), false);
  EXPECT_EQ(probe.sequences(), 1);
}

TEST(SnnRuntimeProbe, ConfigCanDisableStepStats) {
  auto net = make_net(2);
  SnnRuntimeProbe::Config cfg;
  cfg.keep_step_stats = false;
  cfg.membrane_stats = false;
  SnnRuntimeProbe probe(*net, cfg);
  net->reset_stats();
  net->forward(make_input(2), false);
  EXPECT_EQ(probe.step_stats().size(), 0U);
  EXPECT_EQ(probe.total_spikes(), net->total_spikes());
  EXPECT_EQ(probe.summaries().size(), 2U);
}

TEST(SnnRuntimeProbe, EmitsSummaryAndStepRecords) {
  auto net = make_net(2);
  SnnRuntimeProbe probe(*net);
  net->forward(make_input(2), false);
  MemorySink sink;
  probe.emit_summary_records(sink);
  ASSERT_EQ(sink.records().size(), 2U);
  for (const TelemetryRecord& r : sink.records()) {
    EXPECT_EQ(r.kind, "snn.layer_activity");
    EXPECT_EQ(r.fields.size(), 7U);
    EXPECT_EQ(r.fields[0].key, "layer");
  }
  sink.clear();
  probe.emit_step_records(sink);
  ASSERT_EQ(sink.records().size(), probe.step_stats().size());
  for (const TelemetryRecord& r : sink.records()) {
    EXPECT_EQ(r.kind, "snn.layer_step");
    EXPECT_EQ(r.fields.size(), 11U + kMembraneBuckets);
  }
}

}  // namespace
}  // namespace ullsnn::obs
