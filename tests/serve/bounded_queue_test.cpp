#include "src/serve/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ullsnn::serve {
namespace {

using namespace std::chrono_literals;

TEST(BoundedQueueTest, AdmitsUpToCapacityThenRejectsFull) {
  BoundedQueue<int> q(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q.try_push(int(i)), AdmitError::kNone);
  }
  int overflow = 99;
  EXPECT_EQ(q.try_push(std::move(overflow)), AdmitError::kFull);
  EXPECT_EQ(q.depth(), 3);
  // The rejected item never entered the queue.
  int out = -1;
  ASSERT_TRUE(q.try_pop(&out));
  EXPECT_EQ(out, 0);
  EXPECT_EQ(q.depth(), 2);
}

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_EQ(q.try_push(int(i)), AdmitError::kNone);
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    ASSERT_TRUE(q.try_pop(&out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(q.try_pop(&out));
}

TEST(BoundedQueueTest, PopTimesOutOnEmptyQueue) {
  BoundedQueue<int> q(4);
  int out = -1;
  EXPECT_FALSE(q.pop(&out, 5ms));
}

TEST(BoundedQueueTest, CloseRejectsPushesButDrainsQueuedItems) {
  BoundedQueue<int> q(4);
  ASSERT_EQ(q.try_push(1), AdmitError::kNone);
  ASSERT_EQ(q.try_push(2), AdmitError::kNone);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.try_push(3), AdmitError::kClosed);
  // Items enqueued before close stay poppable (the engine drains them on
  // stop and fails them explicitly rather than dropping them silently).
  int out = -1;
  ASSERT_TRUE(q.pop(&out, 5ms));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(q.try_pop(&out));
  EXPECT_EQ(out, 2);
  // Closed and drained: pop returns immediately instead of waiting out the
  // timeout (workers must not hang on shutdown).
  EXPECT_FALSE(q.pop(&out, 1000ms));
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    int out = -1;
    q.pop(&out, 10000ms);  // must not wait anywhere near this long
    woke.store(true);
  });
  std::this_thread::sleep_for(20ms);
  q.close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

TEST(BoundedQueueTest, PeakDepthIsExact) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 7; ++i) ASSERT_EQ(q.try_push(int(i)), AdmitError::kNone);
  int out = -1;
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(q.try_pop(&out));
  ASSERT_EQ(q.try_push(42), AdmitError::kNone);
  EXPECT_EQ(q.peak_depth(), 7);
  EXPECT_EQ(q.depth(), 1);
}

TEST(BoundedQueueTest, ConcurrentProducersConsumersConserveItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(32);
  std::atomic<std::int64_t> pushed{0};
  std::atomic<std::int64_t> rejected{0};
  std::atomic<std::int64_t> popped{0};
  std::atomic<std::int64_t> sum{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        int item = value;
        if (q.try_push(std::move(item)) == AdmitError::kNone) {
          pushed.fetch_add(1);
          sum.fetch_add(value);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int out = -1;
      while (q.pop(&out, 20ms)) {
        popped.fetch_add(1);
        sum.fetch_sub(out);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<std::size_t>(kProducers + c)].join();
  }
  // A consumer that timed out during a lull exits early; sweep any leftovers
  // so the conservation check is deterministic under scheduler noise.
  int leftover = -1;
  while (q.try_pop(&leftover)) {
    popped.fetch_add(1);
    sum.fetch_sub(leftover);
  }
  // Every admitted item was consumed exactly once, none invented or lost.
  EXPECT_EQ(pushed.load() + rejected.load(),
            static_cast<std::int64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(popped.load(), pushed.load());
  EXPECT_EQ(sum.load(), 0);
  EXPECT_LE(q.peak_depth(), q.capacity());
}

}  // namespace
}  // namespace ullsnn::serve
