#include "src/serve/batcher.h"

#include <gtest/gtest.h>

#include <thread>

namespace ullsnn::serve {
namespace {

using namespace std::chrono_literals;

PendingRequest make_request(std::int64_t id, Clock::duration deadline_from_now) {
  const auto now = Clock::now();
  return PendingRequest{
      std::make_shared<ResponseSlot>(id, now, now + deadline_from_now),
      Tensor({4}, 1.0F)};
}

TEST(MicroBatcherTest, EmptyQueueYieldsEmptyBatch) {
  BatcherConfig config;
  config.poll_timeout = 5ms;
  MicroBatcher batcher(config);
  BoundedQueue<PendingRequest> queue(16);
  const MicroBatch batch = batcher.collect(queue);
  EXPECT_TRUE(batch.empty());
}

TEST(MicroBatcherTest, CoalescesUpToMaxBatch) {
  BatcherConfig config;
  config.max_batch = 3;
  config.max_batch_delay = 1000ms;  // age trip can't fire in this test
  MicroBatcher batcher(config);
  BoundedQueue<PendingRequest> queue(16);
  for (std::int64_t i = 0; i < 5; ++i) {
    ASSERT_EQ(queue.try_push(make_request(i, 1000ms)), AdmitError::kNone);
  }
  const MicroBatch first = batcher.collect(queue);
  ASSERT_EQ(first.requests.size(), 3U);
  EXPECT_TRUE(first.expired.empty());
  EXPECT_EQ(first.requests[0].slot->id(), 0);
  EXPECT_EQ(first.requests[2].slot->id(), 2);
  // The two stragglers form the next batch when the queue runs dry.
  const MicroBatch second = batcher.collect(queue);
  ASSERT_EQ(second.requests.size(), 2U);
  EXPECT_EQ(second.requests[0].slot->id(), 3);
  EXPECT_EQ(queue.depth(), 0);
}

TEST(MicroBatcherTest, ShedsExpiredRequestsWithoutCountingThemTowardBatch) {
  BatcherConfig config;
  config.max_batch = 2;
  config.max_batch_delay = 1000ms;
  MicroBatcher batcher(config);
  BoundedQueue<PendingRequest> queue(16);
  // Interleave already-expired requests (deadline in the past) with live
  // ones; the expired ones must not occupy batch slots.
  ASSERT_EQ(queue.try_push(make_request(0, -1ms)), AdmitError::kNone);
  ASSERT_EQ(queue.try_push(make_request(1, 1000ms)), AdmitError::kNone);
  ASSERT_EQ(queue.try_push(make_request(2, -1ms)), AdmitError::kNone);
  ASSERT_EQ(queue.try_push(make_request(3, 1000ms)), AdmitError::kNone);
  const MicroBatch batch = batcher.collect(queue);
  ASSERT_EQ(batch.requests.size(), 2U);
  ASSERT_EQ(batch.expired.size(), 2U);
  EXPECT_EQ(batch.requests[0].slot->id(), 1);
  EXPECT_EQ(batch.requests[1].slot->id(), 3);
  EXPECT_EQ(batch.expired[0].slot->id(), 0);
  EXPECT_EQ(batch.expired[1].slot->id(), 2);
}

TEST(MicroBatcherTest, AgeLimitFlushesPartialBatch) {
  BatcherConfig config;
  config.max_batch = 64;
  config.max_batch_delay = 0ms;  // the first admitted request trips the age check
  MicroBatcher batcher(config);
  BoundedQueue<PendingRequest> queue(16);
  ASSERT_EQ(queue.try_push(make_request(0, 1000ms)), AdmitError::kNone);
  std::this_thread::sleep_for(1ms);
  ASSERT_EQ(queue.try_push(make_request(1, 1000ms)), AdmitError::kNone);
  const MicroBatch batch = batcher.collect(queue);
  // With a zero delay budget the batch flushes as soon as it holds one
  // request, leaving the second for the next collect().
  ASSERT_EQ(batch.requests.size(), 1U);
  EXPECT_EQ(batch.requests[0].slot->id(), 0);
  EXPECT_EQ(queue.depth(), 1);
}

}  // namespace
}  // namespace ullsnn::serve
