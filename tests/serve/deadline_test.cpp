// Deadline propagation edge cases: shed at admission when already expired,
// shed in the dequeue -> dispatch window, "zero deadline = no deadline" is
// never shed, CoDel load shedding is typed kShed, and the conservation
// ledger balances under every mix of outcomes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/serve/engine.h"

namespace ullsnn::serve {
namespace {

using namespace std::chrono_literals;

snn::IfConfig if_config() {
  snn::IfConfig c;
  c.v_threshold = 1.0F;
  return c;
}

/// 4 -> 2 spiking net with known predictions (same shape as engine_test's).
NetworkFactory tiny_factory() {
  return [] {
    auto net = std::make_unique<snn::SnnNetwork>(3);
    Tensor w1({4, 4});
    for (std::int64_t i = 0; i < 4; ++i) w1.at(i, i) = 1.0F;
    net->emplace<snn::SpikingLinear>(w1, if_config(), /*with_neuron=*/true);
    Tensor w2({2, 4});
    w2.at(0, 0) = 1.0F;
    w2.at(0, 1) = 1.0F;
    w2.at(1, 2) = 1.0F;
    w2.at(1, 3) = 1.0F;
    net->emplace<snn::SpikingLinear>(w2, snn::IfConfig{}, /*with_neuron=*/false);
    return net;
  };
}

Tensor image() {
  Tensor t({4});
  t[0] = 1.5F;
  t[1] = 1.5F;
  return t;
}

ServeConfig base_config() {
  ServeConfig config;
  config.input_shape = {4};
  config.workers = 1;
  config.default_deadline = 10000ms;
  config.request_timeout = 20000ms;
  config.retry_backoff = std::chrono::microseconds(0);
  return config;
}

/// The two ledger equations every test below re-asserts.
void expect_conserved(const ServeStats& s) {
  EXPECT_EQ(s.submitted, s.accepted + s.rejected + s.shed_admission);
  EXPECT_EQ(s.accepted, s.completed_ok + s.completed_degraded +
                            s.shed_deadline + s.shed_load + s.unavailable +
                            s.timeouts + s.errors);
}

TEST(DeadlineTest, AlreadyExpiredAbsoluteDeadlineShedsAtAdmission) {
  ServeEngine engine(base_config(), tiny_factory());
  engine.start();
  SubmitOptions options;
  options.absolute_deadline = Clock::now() - 1s;
  const SubmitResult result = engine.submit(image(), options);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.response.status, ResponseStatus::kExpired);
  EXPECT_EQ(result.response.reason, "deadline already expired at admission");
  EXPECT_TRUE(is_shed(result.response.status));
  engine.stop();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.shed_admission, 1);
  EXPECT_EQ(stats.accepted, 0);
  EXPECT_EQ(stats.rejected, 0);  // typed shed, not a silent rejection
  expect_conserved(stats);
}

TEST(DeadlineTest, AbsoluteDeadlineWinsOverRelative) {
  ServeEngine engine(base_config(), tiny_factory());
  engine.start();
  SubmitOptions options;
  options.deadline = 10000ms;                         // generous relative...
  options.absolute_deadline = Clock::now() - 10ms;    // ...but absolute is past
  const SubmitResult result = engine.submit(image(), options);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.response.status, ResponseStatus::kExpired);
  engine.stop();
  EXPECT_EQ(engine.stats().shed_admission, 1);
}

TEST(DeadlineTest, ExpiryBetweenDequeueAndDispatchIsShedTyped) {
  ServeConfig config = base_config();
  // The request leaves the queue immediately (idle worker), then the
  // dispatch hook stalls the batch past its deadline: only the pre-dispatch
  // re-check can catch it.
  std::atomic<std::int64_t> hook_calls{0};
  config.before_dispatch_hook = [&hook_calls](const std::vector<std::int64_t>&) {
    if (hook_calls.fetch_add(1) == 0) {
      std::this_thread::sleep_for(300ms);
    }
  };
  ServeEngine engine(config, tiny_factory());
  engine.start();
  const SubmitResult result = engine.submit(image(), 150ms);
  ASSERT_TRUE(result.accepted);
  const InferResponse response = result.future.get();
  EXPECT_EQ(response.status, ResponseStatus::kExpired);
  EXPECT_EQ(response.reason, "deadline passed before dispatch");
  engine.stop();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.shed_deadline, 1);
  EXPECT_EQ(stats.completed_ok, 0);
  expect_conserved(stats);
}

TEST(DeadlineTest, ZeroDeadlineMeansNoDeadlineAndIsNeverShed) {
  ServeConfig config = base_config();
  // Stall dispatch far beyond any plausible deadline: a no-deadline request
  // must still be served, never shed.
  std::atomic<std::int64_t> hook_calls{0};
  config.before_dispatch_hook = [&hook_calls](const std::vector<std::int64_t>&) {
    if (hook_calls.fetch_add(1) == 0) {
      std::this_thread::sleep_for(200ms);
    }
  };
  ServeEngine engine(config, tiny_factory());
  engine.start();
  const SubmitResult result = engine.submit(image(), 0ms);
  ASSERT_TRUE(result.accepted);
  const InferResponse response = result.future.get();
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  engine.stop();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.shed_deadline, 0);
  EXPECT_EQ(stats.shed_admission, 0);
  EXPECT_EQ(stats.completed_ok, 1);
  expect_conserved(stats);
}

TEST(DeadlineTest, CoDelShedIsTypedKShed) {
  ServeConfig config = base_config();
  config.queue_capacity = 64;
  config.batch_queue_capacity = 64;
  config.batcher.max_batch = 1;
  // Aggressive CoDel (1ms standing sojourn tolerated for 5ms) + a 10ms
  // forward stall per batch: a burst of 40 requests forms a standing backlog
  // within a few batches, so load shedding must engage.
  config.codel.target = 1ms;
  config.codel.interval = 5ms;
  config.codel.interactive_target_factor = 1.0;
  config.before_forward_hook = [](const std::vector<std::int64_t>&,
                                  std::int64_t, snn::SnnNetwork&) {
    std::this_thread::sleep_for(10ms);
  };
  ServeEngine engine(config, tiny_factory());
  engine.start();
  std::vector<ResponseFuture> futures;
  for (int i = 0; i < 40; ++i) {
    const SubmitResult result = engine.submit(image(), 10000ms);
    ASSERT_TRUE(result.accepted);
    futures.push_back(std::move(result.future));
  }
  std::int64_t shed = 0;
  for (const ResponseFuture& f : futures) {
    const InferResponse response = f.get();
    if (response.status == ResponseStatus::kShed) {
      ++shed;
      EXPECT_TRUE(is_shed(response.status));
      EXPECT_NE(response.reason.find("load shed"), std::string::npos);
    }
  }
  engine.stop();
  const ServeStats stats = engine.stats();
  EXPECT_GT(shed, 0) << "standing backlog never triggered CoDel shedding";
  EXPECT_EQ(stats.shed_load, shed);
  EXPECT_GT(stats.completed_ok, 0) << "CoDel must shed some, not all";
  expect_conserved(stats);
  EXPECT_GT(engine.codel().shed_count(Priority::kInteractive), 0);
}

TEST(DeadlineTest, MixedDeadlineTrafficConservesExactly) {
  ServeConfig config = base_config();
  config.queue_capacity = 8;
  config.batch_queue_capacity = 4;
  config.batcher.max_batch = 4;
  config.before_forward_hook = [](const std::vector<std::int64_t>&,
                                  std::int64_t, snn::SnnNetwork&) {
    std::this_thread::sleep_for(2ms);
  };
  ServeEngine engine(config, tiny_factory());
  engine.start();
  std::vector<ResponseFuture> futures;
  for (int i = 0; i < 200; ++i) {
    SubmitOptions options;
    options.priority = i % 4 == 0 ? Priority::kBatch : Priority::kInteractive;
    switch (i % 5) {
      case 0: options.deadline = 0ms; break;                      // no deadline
      case 1: options.deadline = 1ms; break;                      // hopeless
      case 2: options.absolute_deadline = Clock::now() - 1ms; break;  // expired
      case 3: options.deadline = 50ms; break;
      default: options.deadline = -1ms; break;                    // default
    }
    SubmitResult result = engine.submit(image(), options);
    if (result.accepted) {
      futures.push_back(std::move(result.future));
    } else {
      // Refusals must be typed: an admission shed is kExpired, a full lane
      // is kRejected — nothing disappears.
      EXPECT_TRUE(result.response.status == ResponseStatus::kExpired ||
                  result.response.status == ResponseStatus::kRejected);
    }
  }
  for (const ResponseFuture& f : futures) f.get();
  engine.stop();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 200);
  EXPECT_GE(stats.shed_admission, 40);  // every i % 5 == 2 at minimum
  expect_conserved(stats);
}

}  // namespace
}  // namespace ullsnn::serve
