// Open-loop load generator: log-bucketed histogram math, schedule
// determinism per seed, and the per-class conservation ledger cross-checked
// against the engine's own counters under deliberate overload.
#include "src/serve/loadgen.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/serve/engine.h"

namespace ullsnn::serve {
namespace {

using namespace std::chrono_literals;

TEST(LogHistogramTest, ValidatesConfig) {
  EXPECT_THROW(LogHistogram(0.0, 1.25, 1e5), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1e-3, 1.0, 1e5), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 1.25, 10.0), std::invalid_argument);
}

TEST(LogHistogramTest, MomentsAreExactPercentilesBucketBounded) {
  LogHistogram h;
  double sum = 0.0;
  for (int v = 1; v <= 100; ++v) {
    h.record(static_cast<double>(v));
    sum += v;
  }
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.mean(), sum / 100.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // Percentiles are bucket-interpolated: with growth 1.25 the answer is
  // within one bucket (±25%) of the true value.
  EXPECT_GT(h.percentile(0.5), 50.0 * 0.75);
  EXPECT_LT(h.percentile(0.5), 50.0 * 1.25);
  EXPECT_GT(h.percentile(0.99), 99.0 * 0.75);
  EXPECT_LT(h.percentile(0.99), 99.0 * 1.25);
  EXPECT_LE(h.percentile(0.0), h.percentile(0.5));
  EXPECT_LE(h.percentile(0.5), h.percentile(1.0));
}

TEST(LogHistogramTest, EmptyHistogramReportsZeros) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(LogHistogramTest, MergeAddsAndRejectsMismatchedLayouts) {
  LogHistogram a;
  LogHistogram b;
  a.record(1.0);
  a.record(10.0);
  b.record(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.sum(), 111.0);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  LogHistogram coarse(1e-3, 2.0, 1e5);  // different bucket layout
  EXPECT_THROW(a.merge(coarse), std::invalid_argument);
}

snn::IfConfig if_config() {
  snn::IfConfig c;
  c.v_threshold = 1.0F;
  return c;
}

NetworkFactory tiny_factory() {
  return [] {
    auto net = std::make_unique<snn::SnnNetwork>(3);
    Tensor w1({4, 4});
    for (std::int64_t i = 0; i < 4; ++i) w1.at(i, i) = 1.0F;
    net->emplace<snn::SpikingLinear>(w1, if_config(), /*with_neuron=*/true);
    Tensor w2({2, 4});
    w2.at(0, 0) = 1.0F;
    w2.at(0, 1) = 1.0F;
    w2.at(1, 2) = 1.0F;
    w2.at(1, 3) = 1.0F;
    net->emplace<snn::SpikingLinear>(w2, snn::IfConfig{}, /*with_neuron=*/false);
    return net;
  };
}

Tensor image() {
  Tensor t({4});
  t[0] = 1.5F;
  t[1] = 1.5F;
  return t;
}

ServeConfig engine_config() {
  ServeConfig config;
  config.input_shape = {4};
  config.workers = 1;
  config.default_deadline = 250ms;
  config.request_timeout = 20000ms;
  config.retry_backoff = std::chrono::microseconds(0);
  return config;
}

LoadGenConfig load_config() {
  LoadGenConfig config;
  config.qps = 400.0;
  config.duration = 250ms;
  config.interactive_fraction = 0.75;
  config.no_deadline_fraction = 0.1;
  config.collectors = 2;
  config.seed = 0xFEED;
  config.images = {image()};
  return config;
}

TEST(LoadGenTest, ValidatesConfig) {
  LoadGenConfig bad_qps = load_config();
  bad_qps.qps = 0.0;
  EXPECT_THROW(LoadGen{bad_qps}, std::invalid_argument);
  LoadGenConfig bad_duration = load_config();
  bad_duration.duration = 0ms;
  EXPECT_THROW(LoadGen{bad_duration}, std::invalid_argument);
  LoadGenConfig bad_fraction = load_config();
  bad_fraction.interactive_fraction = 1.5;
  EXPECT_THROW(LoadGen{bad_fraction}, std::invalid_argument);
  LoadGenConfig bad_collectors = load_config();
  bad_collectors.collectors = 0;
  EXPECT_THROW(LoadGen{bad_collectors}, std::invalid_argument);
  LoadGenConfig no_images = load_config();
  no_images.images.clear();
  EXPECT_THROW(LoadGen{no_images}, std::invalid_argument);
}

TEST(LoadGenTest, ScheduleIsDeterministicPerSeed) {
  // The offered workload (arrival count + per-class split) is a pure
  // function of the config: two runs at the same seed submit identical
  // schedules, regardless of how the engine behaved underneath.
  LoadReport first;
  LoadReport second;
  {
    ServeEngine engine(engine_config(), tiny_factory());
    engine.start();
    first = LoadGen(load_config()).run(engine);
    engine.stop();
  }
  {
    ServeEngine engine(engine_config(), tiny_factory());
    engine.start();
    second = LoadGen(load_config()).run(engine);
    engine.stop();
  }
  EXPECT_GT(first.submitted(), 0);
  EXPECT_EQ(first.submitted(), second.submitted());
  EXPECT_EQ(first.cls(Priority::kInteractive).submitted,
            second.cls(Priority::kInteractive).submitted);
  EXPECT_EQ(first.cls(Priority::kBatch).submitted,
            second.cls(Priority::kBatch).submitted);
  EXPECT_TRUE(first.conserved());
  EXPECT_TRUE(second.conserved());
}

TEST(LoadGenTest, ConservationMatchesEngineLedgerUnderOverload) {
  // Deliberate overload: tiny lanes, a slow forward, and short deadlines so
  // every outcome class (fulfilled / rejected / shed / failed) is plausible.
  // The generator's per-class ledger and the engine's ServeStats must agree
  // exactly — no request may be double-counted or lost between the two.
  ServeConfig config = engine_config();
  config.queue_capacity = 16;
  config.batch_queue_capacity = 8;
  config.before_forward_hook = [](const std::vector<std::int64_t>&,
                                  std::int64_t, snn::SnnNetwork&) {
    std::this_thread::sleep_for(3ms);
  };
  ServeEngine engine(config, tiny_factory());
  engine.start();

  LoadGenConfig load = load_config();
  load.qps = 1200.0;
  load.duration = 300ms;
  load.interactive_deadline = {10ms, 30ms};
  load.batch_deadline = {40ms, 80ms};
  const LoadReport report = LoadGen(load).run(engine);
  engine.stop();

  EXPECT_GT(report.submitted(), 0);
  EXPECT_TRUE(report.conserved());
  EXPECT_GE(report.wall_seconds, 0.25);
  EXPECT_GE(report.max_submit_lag_ms, 0.0);

  const ClassLoadStats& ia = report.cls(Priority::kInteractive);
  const ClassLoadStats& ba = report.cls(Priority::kBatch);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, report.submitted());
  EXPECT_EQ(stats.accepted, ia.accepted + ba.accepted);
  EXPECT_EQ(stats.rejected, ia.rejected + ba.rejected);
  EXPECT_EQ(stats.shed_admission, ia.shed_admission + ba.shed_admission);
  EXPECT_EQ(stats.completed_ok + stats.completed_degraded, report.fulfilled());
  EXPECT_EQ(stats.shed_deadline + stats.shed_load, ia.shed + ba.shed);
  EXPECT_EQ(stats.unavailable + stats.timeouts + stats.errors, report.failed());
  // Engine-side ledger holds too.
  EXPECT_EQ(stats.submitted, stats.accepted + stats.rejected + stats.shed_admission);
  EXPECT_EQ(stats.accepted, stats.completed_ok + stats.completed_degraded +
                                stats.shed_deadline + stats.shed_load +
                                stats.unavailable + stats.timeouts + stats.errors);
}

}  // namespace
}  // namespace ullsnn::serve
