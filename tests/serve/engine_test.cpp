#include "src/serve/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

namespace ullsnn::serve {
namespace {

using namespace std::chrono_literals;

snn::IfConfig if_config(float v_th = 1.0F) {
  snn::IfConfig c;
  c.v_threshold = v_th;
  return c;
}

/// 4 -> 4 identity spiking layer + 2-class readout: row 0 reads hidden units
/// {0, 1}, row 1 reads {2, 3}. Driving either pair above threshold makes the
/// corresponding class win, so predictions are known in closed form.
NetworkFactory tiny_factory(std::int64_t time_steps = 3) {
  return [time_steps] {
    auto net = std::make_unique<snn::SnnNetwork>(time_steps);
    Tensor w1({4, 4});
    for (std::int64_t i = 0; i < 4; ++i) w1.at(i, i) = 1.0F;
    net->emplace<snn::SpikingLinear>(w1, if_config(), /*with_neuron=*/true);
    Tensor w2({2, 4});
    w2.at(0, 0) = 1.0F;
    w2.at(0, 1) = 1.0F;
    w2.at(1, 2) = 1.0F;
    w2.at(1, 3) = 1.0F;
    net->emplace<snn::SpikingLinear>(w2, snn::IfConfig{}, /*with_neuron=*/false);
    return net;
  };
}

/// Input [4] that drives class `cls` (0 or 1) above threshold.
Tensor class_image(std::int64_t cls) {
  Tensor image({4});
  image[2 * cls] = 1.5F;
  image[2 * cls + 1] = 1.5F;
  return image;
}

ServeConfig base_config() {
  ServeConfig config;
  config.input_shape = {4};
  config.workers = 1;
  config.default_deadline = 10000ms;
  config.request_timeout = 20000ms;
  config.retry_backoff = std::chrono::microseconds(0);
  return config;
}

TEST(ServeEngineTest, ValidatesConfig) {
  ServeConfig no_shape = base_config();
  no_shape.input_shape = {};
  EXPECT_THROW(ServeEngine(no_shape, tiny_factory()), std::invalid_argument);
  ServeConfig no_workers = base_config();
  no_workers.workers = 0;
  EXPECT_THROW(ServeEngine(no_workers, tiny_factory()), std::invalid_argument);
  EXPECT_THROW(ServeEngine(base_config(), NetworkFactory{}), std::invalid_argument);
}

TEST(ServeEngineTest, ServesSingleRequest) {
  ServeEngine engine(base_config(), tiny_factory());
  engine.start();
  SubmitResult submitted = engine.submit(class_image(1));
  ASSERT_TRUE(submitted.accepted);
  const InferResponse response = submitted.future.get();
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.predicted, 1);
  EXPECT_EQ(response.time_steps, 3);
  EXPECT_EQ(response.retries, 0);
  ASSERT_EQ(response.logits.shape(), Shape({2}));
  EXPECT_GT(response.logits[1], response.logits[0]);
  engine.stop();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.accepted, 1);
  EXPECT_EQ(stats.completed_ok, 1);
  EXPECT_EQ(stats.errors, 0);
}

TEST(ServeEngineTest, IdenticalInputsYieldBitwiseIdenticalLogits) {
  ServeEngine engine(base_config(), tiny_factory());
  engine.start();
  const InferResponse first = engine.submit(class_image(0)).future.get();
  // An unrelated request in between must not perturb the repeat: the engine
  // calls reset_state() before every batch (isolation contract).
  engine.submit(class_image(1)).future.get();
  const InferResponse repeat = engine.submit(class_image(0)).future.get();
  ASSERT_EQ(first.status, ResponseStatus::kOk);
  ASSERT_EQ(repeat.status, ResponseStatus::kOk);
  ASSERT_EQ(first.logits.numel(), repeat.logits.numel());
  for (std::int64_t i = 0; i < first.logits.numel(); ++i) {
    EXPECT_EQ(first.logits[i], repeat.logits[i]) << "logit " << i;
  }
}

TEST(ServeEngineTest, RejectsWhenNotRunningOrShapeMismatch) {
  ServeEngine engine(base_config(), tiny_factory());
  const SubmitResult before_start = engine.submit(class_image(0));
  EXPECT_FALSE(before_start.accepted);
  EXPECT_EQ(before_start.response.status, ResponseStatus::kRejected);
  EXPECT_EQ(before_start.response.reason, "engine not running");

  engine.start();
  const SubmitResult bad_shape = engine.submit(Tensor({3}, 1.0F));
  EXPECT_FALSE(bad_shape.accepted);
  EXPECT_EQ(bad_shape.response.status, ResponseStatus::kRejected);
  EXPECT_NE(bad_shape.response.reason.find("input shape"), std::string::npos);
  engine.stop();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.rejected, 2);
  EXPECT_EQ(stats.accepted, 0);
}

TEST(ServeEngineTest, OverloadBurstIsFullyAccounted) {
  constexpr std::int64_t kBurst = 120;
  ServeConfig config = base_config();
  config.queue_capacity = 8;
  config.batcher.max_batch = 4;
  // Slow the worker down so the burst actually collides with a full queue.
  config.before_forward_hook = [](const std::vector<std::int64_t>&, std::int64_t,
                                  snn::SnnNetwork&) {
    std::this_thread::sleep_for(2ms);
  };
  ServeEngine engine(config, tiny_factory());
  engine.start();
  std::vector<ResponseFuture> futures;
  futures.reserve(kBurst);
  std::int64_t rejected = 0;
  for (std::int64_t i = 0; i < kBurst; ++i) {
    SubmitResult result = engine.submit(class_image(i % 2));
    if (result.accepted) {
      futures.push_back(std::move(result.future));
    } else {
      ++rejected;
      EXPECT_EQ(result.response.status, ResponseStatus::kRejected);
      EXPECT_EQ(result.response.reason, "queue full");
    }
  }
  // Every accepted request reaches a terminal state.
  for (const ResponseFuture& future : futures) {
    const InferResponse response = future.get();
    EXPECT_TRUE(is_success(response.status)) << response.reason;
  }
  engine.stop();
  const ServeStats stats = engine.stats();
  // The overload invariant: nothing vanishes, nothing is double-counted.
  EXPECT_EQ(stats.submitted, kBurst);
  EXPECT_EQ(stats.accepted + stats.rejected, stats.submitted);
  EXPECT_EQ(stats.accepted, static_cast<std::int64_t>(futures.size()));
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_GT(stats.rejected, 0) << "burst never filled the queue; not an overload test";
  // Backpressure held: the queue never grew past its bound.
  EXPECT_LE(engine.queue_peak_depth(), config.queue_capacity);
  EXPECT_EQ(stats.completed_ok + stats.completed_degraded, stats.accepted);
}

TEST(ServeEngineTest, ChaosSoakCompletesAtLeast99PercentDespiteFaults) {
  // 5% of requests (id % 20 == 0 — a deterministic schedule, independent of
  // thread interleaving) hit a transient fault on their first forward
  // attempt. Retries must absorb every one of them: the ISSUE acceptance
  // bar is >= 99% of in-deadline requests completing non-error.
  constexpr std::int64_t kRequests = 400;
  std::atomic<std::int64_t> faults_fired{0};
  ServeConfig config = base_config();
  config.workers = 2;
  config.queue_capacity = 256;
  config.batcher.max_batch = 8;
  config.max_attempts = 3;
  config.before_forward_hook = [&faults_fired](const std::vector<std::int64_t>& ids,
                                               std::int64_t attempt,
                                               snn::SnnNetwork&) {
    if (attempt > 0) return;  // transient: the retry goes through clean
    for (const std::int64_t id : ids) {
      if (id % 20 == 0) {
        faults_fired.fetch_add(1);
        throw std::runtime_error("injected transient fault");
      }
    }
  };
  ServeEngine engine(config, tiny_factory());
  engine.start();
  // Submit in waves sized under the queue capacity so admission control
  // never kicks in: the soak measures completion under faults, not
  // overload shedding (OverloadBurstIsFullyAccounted covers that).
  constexpr std::int64_t kWave = 100;
  std::int64_t successes = 0;
  std::int64_t correct = 0;
  for (std::int64_t base = 0; base < kRequests; base += kWave) {
    std::vector<ResponseFuture> futures;
    futures.reserve(kWave);
    for (std::int64_t i = base; i < base + kWave; ++i) {
      SubmitResult result = engine.submit(class_image(i % 2));
      ASSERT_TRUE(result.accepted) << "wave sized under capacity; must admit";
      futures.push_back(std::move(result.future));
    }
    for (std::int64_t i = 0; i < kWave; ++i) {
      const InferResponse response = futures[static_cast<std::size_t>(i)].get();
      if (is_success(response.status)) {
        ++successes;
        if (response.predicted == (base + i) % 2) ++correct;
      }
    }
  }
  engine.stop();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.accepted + stats.rejected, stats.submitted);
  EXPECT_GE(successes, (kRequests * 99) / 100)
      << "chaos soak dropped more than 1% of in-deadline requests";
  EXPECT_EQ(correct, successes) << "served logits must stay correct under chaos";
  EXPECT_EQ(stats.errors, 0);
  EXPECT_EQ(stats.timeouts, 0);
  EXPECT_GT(faults_fired.load(), 0) << "fault schedule never fired; not a chaos test";
  EXPECT_GT(stats.retries, 0);
}

TEST(ServeEngineTest, BreakerTripsDegradesOpensProbesAndRecovers) {
  // Deterministic single-worker, batch-of-one setup so the breaker sees one
  // verdict per request in submission order.
  ServeConfig config = base_config();
  config.batcher.max_batch = 1;
  config.max_attempts = 2;
  config.breaker.ladder = {3, 2, 1};
  config.breaker.failure_threshold = 2;
  config.breaker.recovery_threshold = 2;
  config.breaker.open_cooldown = 2;
  std::atomic<bool> corrupt{true};
  config.after_forward_hook = [&corrupt](const std::vector<std::int64_t>&,
                                         Tensor& logits) {
    if (corrupt.load()) logits[0] = std::numeric_limits<float>::quiet_NaN();
  };
  ServeEngine engine(config, tiny_factory());
  engine.start();
  const auto serve_one = [&engine]() {
    return engine.submit(class_image(0)).future.get();
  };

  // Corrupt phase: every attempt yields NaN logits, so each request burns
  // all attempts and records an unhealthy batch.
  // Requests 1-2: T=3, error  -> degraded T=2
  // Requests 3-4: T=2, error  -> degraded T=1
  // Requests 5-6: T=1, error  -> OPEN
  for (int i = 0; i < 6; ++i) {
    const InferResponse r = serve_one();
    EXPECT_EQ(r.status, ResponseStatus::kError) << "request " << i;
    EXPECT_EQ(r.retries, 1);
  }
  EXPECT_EQ(engine.breaker().state(), BreakerState::kOpen);
  EXPECT_EQ(engine.breaker().trips(), 1);
  // Open: first batch refused outright (cooldown 2), the second is the
  // probe — still corrupt, so it fails and the circuit re-opens.
  EXPECT_EQ(serve_one().status, ResponseStatus::kUnavailable);
  EXPECT_EQ(serve_one().status, ResponseStatus::kError);  // failed probe ran
  EXPECT_EQ(engine.breaker().state(), BreakerState::kOpen);

  // Heal the fault; the next probe succeeds and the ladder climbs home.
  corrupt.store(false);
  EXPECT_EQ(serve_one().status, ResponseStatus::kUnavailable);  // cooldown
  const InferResponse probe = serve_one();
  EXPECT_EQ(probe.status, ResponseStatus::kDegraded);  // successful probe at T=1
  EXPECT_EQ(probe.time_steps, 1);
  // recovery_threshold = 2 healthy batches per rung: T=1 -> T=2 -> T=3.
  for (int i = 0; i < 2; ++i) EXPECT_EQ(serve_one().time_steps, 1);
  for (int i = 0; i < 2; ++i) EXPECT_EQ(serve_one().time_steps, 2);
  const InferResponse healthy = serve_one();
  EXPECT_EQ(healthy.status, ResponseStatus::kOk);
  EXPECT_EQ(healthy.time_steps, 3);
  EXPECT_EQ(engine.breaker().state(), BreakerState::kClosed);
  EXPECT_EQ(engine.breaker().recoveries(), 1);
  engine.stop();

  // The transition history shows the full arc, in order.
  std::vector<BreakerState> states;
  for (const auto& t : engine.breaker().history()) states.push_back(t.state);
  const std::vector<BreakerState> arc = {
      BreakerState::kDegraded, BreakerState::kOpen, BreakerState::kHalfOpen,
      BreakerState::kClosed};
  std::size_t cursor = 0;
  for (const BreakerState s : states) {
    if (cursor < arc.size() && s == arc[cursor]) ++cursor;
  }
  EXPECT_EQ(cursor, arc.size())
      << "history missing part of the degraded -> open -> half-open -> closed arc";
  const ServeStats stats = engine.stats();
  EXPECT_GT(stats.unavailable, 0);
  EXPECT_GT(stats.errors, 0);
  EXPECT_GT(stats.completed_degraded, 0);
  EXPECT_GT(stats.completed_ok, 0);
}

TEST(ServeEngineTest, WatchdogBoundsClientWaitWhenWorkerWedges) {
  ServeConfig config = base_config();
  config.request_timeout = 60ms;
  config.watchdog_period = 5ms;
  config.max_attempts = 1;
  std::atomic<bool> wedge{true};
  config.before_forward_hook = [&wedge](const std::vector<std::int64_t>&,
                                        std::int64_t, snn::SnnNetwork&) {
    if (wedge.exchange(false)) std::this_thread::sleep_for(300ms);
  };
  ServeEngine engine(config, tiny_factory());
  engine.start();
  SubmitResult result = engine.submit(class_image(0));
  ASSERT_TRUE(result.accepted);
  const auto waited_from = Clock::now();
  const InferResponse response = result.future.get();
  const auto waited_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            waited_from)
          .count();
  EXPECT_EQ(response.status, ResponseStatus::kTimeout);
  EXPECT_EQ(response.reason, "request exceeded hard timeout");
  // The client was released by the watchdog long before the worker's 300ms
  // wedge resolved — the whole point of the first-wins response slot.
  EXPECT_LT(waited_ms, 250);
  engine.stop();
  EXPECT_EQ(engine.stats().timeouts, 1);
}

TEST(ServeEngineTest, ExpiredRequestIsShedBeforeExecution) {
  ServeConfig config = base_config();
  config.batcher.max_batch = 1;
  std::atomic<bool> block_first{true};
  config.before_forward_hook = [&block_first](const std::vector<std::int64_t>&,
                                              std::int64_t, snn::SnnNetwork&) {
    if (block_first.exchange(false)) std::this_thread::sleep_for(80ms);
  };
  ServeEngine engine(config, tiny_factory());
  engine.start();
  // The blocker occupies the single worker for 80ms...
  SubmitResult blocker = engine.submit(class_image(0));
  ASSERT_TRUE(blocker.accepted);
  std::this_thread::sleep_for(5ms);  // let the worker pick the blocker up
  // ...so this 10ms-deadline request expires while still queued.
  SubmitResult doomed = engine.submit(class_image(1), 10ms);
  ASSERT_TRUE(doomed.accepted);
  const InferResponse response = doomed.future.get();
  EXPECT_EQ(response.status, ResponseStatus::kExpired);
  EXPECT_EQ(response.reason, "deadline passed before execution");
  EXPECT_EQ(blocker.future.get().status, ResponseStatus::kOk);
  engine.stop();
  EXPECT_GE(engine.stats().shed_deadline, 1);
}

TEST(ServeEngineTest, StopFailsQueuedRequestsInsteadOfDroppingThem) {
  ServeConfig config = base_config();
  config.batcher.max_batch = 1;
  std::atomic<bool> block_first{true};
  config.before_forward_hook = [&block_first](const std::vector<std::int64_t>&,
                                              std::int64_t, snn::SnnNetwork&) {
    if (block_first.exchange(false)) std::this_thread::sleep_for(60ms);
  };
  ServeEngine engine(config, tiny_factory());
  engine.start();
  SubmitResult blocker = engine.submit(class_image(0));
  ASSERT_TRUE(blocker.accepted);
  std::this_thread::sleep_for(5ms);
  std::vector<ResponseFuture> queued;
  for (int i = 0; i < 4; ++i) {
    SubmitResult r = engine.submit(class_image(1));
    ASSERT_TRUE(r.accepted);
    queued.push_back(std::move(r.future));
  }
  engine.stop();  // drains the queue; every future must still resolve
  for (const ResponseFuture& future : queued) {
    const InferResponse response = future.get();
    EXPECT_EQ(response.status, ResponseStatus::kUnavailable);
    EXPECT_EQ(response.reason, "engine stopped before execution");
  }
}

}  // namespace
}  // namespace ullsnn::serve
