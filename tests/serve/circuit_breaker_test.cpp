#include "src/serve/circuit_breaker.h"

#include <gtest/gtest.h>

namespace ullsnn::serve {
namespace {

BreakerConfig fast_config() {
  BreakerConfig c;
  c.ladder = {3, 2, 1};
  c.failure_threshold = 2;
  c.recovery_threshold = 3;
  c.open_cooldown = 4;
  return c;
}

/// admit() + record() for one batch; returns the admitted T (0 if refused).
std::int64_t run_batch(CircuitBreaker& breaker, bool healthy) {
  const CircuitBreaker::Decision d = breaker.admit();
  if (!d.allow) return 0;
  breaker.record(healthy);
  return d.time_steps;
}

TEST(CircuitBreakerTest, ValidatesConfig) {
  BreakerConfig empty;
  empty.ladder = {};
  EXPECT_THROW(CircuitBreaker{empty}, std::invalid_argument);
  BreakerConfig increasing;
  increasing.ladder = {2, 3};
  EXPECT_THROW(CircuitBreaker{increasing}, std::invalid_argument);
  BreakerConfig zero_t;
  zero_t.ladder = {2, 0};
  EXPECT_THROW(CircuitBreaker{zero_t}, std::invalid_argument);
  BreakerConfig bad_threshold = fast_config();
  bad_threshold.failure_threshold = 0;
  EXPECT_THROW(CircuitBreaker{bad_threshold}, std::invalid_argument);
}

TEST(CircuitBreakerTest, StartsClosedAtFullTimeSteps) {
  CircuitBreaker breaker(fast_config());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.rung(), 0);
  EXPECT_EQ(breaker.time_steps(), 3);
  const CircuitBreaker::Decision d = breaker.admit();
  EXPECT_TRUE(d.allow);
  EXPECT_EQ(d.time_steps, 3);
  EXPECT_FALSE(d.probe);
}

TEST(CircuitBreakerTest, ConsecutiveFailuresDescendTheLadder) {
  CircuitBreaker breaker(fast_config());
  // failure_threshold = 2: two unhealthy batches per rung.
  run_batch(breaker, false);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);  // 1 failure: no move yet
  run_batch(breaker, false);
  EXPECT_EQ(breaker.state(), BreakerState::kDegraded);
  EXPECT_EQ(breaker.time_steps(), 2);
  run_batch(breaker, false);
  run_batch(breaker, false);
  EXPECT_EQ(breaker.time_steps(), 1);
  run_batch(breaker, false);
  run_batch(breaker, false);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreakerTest, InterleavedSuccessResetsTheFailureStreak) {
  CircuitBreaker breaker(fast_config());
  // fail, heal, fail, heal, ... never reaches failure_threshold = 2 in a row.
  for (int i = 0; i < 10; ++i) {
    run_batch(breaker, false);
    run_batch(breaker, true);
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.time_steps(), 3);
  EXPECT_EQ(breaker.trips(), 0);
}

TEST(CircuitBreakerTest, OpenRefusesUntilCooldownThenProbes) {
  CircuitBreaker breaker(fast_config());
  for (int i = 0; i < 6; ++i) run_batch(breaker, false);  // drive to open
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  // open_cooldown = 4: three refusals, then the fourth admit is the probe.
  for (int i = 0; i < 3; ++i) {
    const CircuitBreaker::Decision d = breaker.admit();
    EXPECT_FALSE(d.allow) << "refusal " << i;
  }
  const CircuitBreaker::Decision probe = breaker.admit();
  EXPECT_TRUE(probe.allow);
  EXPECT_TRUE(probe.probe);
  EXPECT_EQ(probe.time_steps, 1);  // probes run at the most conservative rung
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  // While the probe is in flight, other workers stay refused.
  EXPECT_FALSE(breaker.admit().allow);
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  CircuitBreaker breaker(fast_config());
  for (int i = 0; i < 6; ++i) run_batch(breaker, false);
  for (int i = 0; i < 3; ++i) breaker.admit();
  ASSERT_TRUE(breaker.admit().probe);
  breaker.record(false);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // The cooldown restarts in full.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(breaker.admit().allow);
  EXPECT_TRUE(breaker.admit().probe);
}

TEST(CircuitBreakerTest, FullTripAndRecoveryPath) {
  CircuitBreaker breaker(fast_config());
  // Descend: closed -> degraded(T=2) -> degraded(T=1) -> open.
  for (int i = 0; i < 6; ++i) run_batch(breaker, false);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  // Cooldown, then a successful probe re-enters the ladder at the last rung.
  for (int i = 0; i < 3; ++i) breaker.admit();
  ASSERT_TRUE(breaker.admit().probe);
  breaker.record(true);
  EXPECT_EQ(breaker.state(), BreakerState::kDegraded);
  EXPECT_EQ(breaker.time_steps(), 1);
  // recovery_threshold = 3 healthy batches per rung: 1 -> 2 -> 3.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(run_batch(breaker, true), 1);
  EXPECT_EQ(breaker.time_steps(), 2);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(run_batch(breaker, true), 2);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.time_steps(), 3);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_EQ(breaker.recoveries(), 1);

  // The transition history captures the whole arc in order.
  const auto history = breaker.history();
  std::vector<BreakerState> states;
  states.reserve(history.size());
  for (const auto& t : history) states.push_back(t.state);
  const std::vector<BreakerState> expected = {
      BreakerState::kDegraded,  // T=2
      BreakerState::kDegraded,  // T=1
      BreakerState::kOpen,      // tripped
      BreakerState::kHalfOpen,  // cooldown elapsed
      BreakerState::kDegraded,  // probe succeeded, back on last rung
      BreakerState::kDegraded,  // climbed to T=2
      BreakerState::kClosed,    // recovered to full T
  };
  EXPECT_EQ(states, expected);
  // Batch sequence numbers are strictly increasing (event-ordered history).
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_GT(history[i].batch, history[i - 1].batch);
  }
}

TEST(CircuitBreakerTest, DeterministicAcrossIdenticalRuns) {
  // Same verdict schedule => bit-identical transition history; this is the
  // property the chaos tests lean on.
  const auto drive = [](CircuitBreaker& b) {
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 6; ++i) run_batch(b, false);
      for (int i = 0; i < 3; ++i) b.admit();
      b.admit();
      b.record(true);
      for (int i = 0; i < 9; ++i) run_batch(b, true);
    }
  };
  CircuitBreaker a(fast_config());
  CircuitBreaker b(fast_config());
  drive(a);
  drive(b);
  const auto ha = a.history();
  const auto hb = b.history();
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha[i].batch, hb[i].batch);
    EXPECT_EQ(ha[i].state, hb[i].state);
    EXPECT_EQ(ha[i].time_steps, hb[i].time_steps);
    EXPECT_EQ(ha[i].cause, hb[i].cause);
  }
  EXPECT_EQ(a.trips(), 3);
  EXPECT_EQ(a.recoveries(), 3);
}

}  // namespace
}  // namespace ullsnn::serve
