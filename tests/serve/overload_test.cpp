// CoDel + brownout controller state machines, driven with a synthetic clock
// so every transition is exact: bursts shorter than one interval never shed,
// a standing backlog sheds on the drop law, the interactive lane sheds after
// the batch lane, and brownout walks the T ladder with dwell + hysteresis.
#include "src/serve/overload.h"

#include <gtest/gtest.h>

#include <chrono>

namespace ullsnn::serve {
namespace {

using namespace std::chrono_literals;

/// Synthetic clock: absolute time points offset from a fixed epoch.
Clock::time_point at(std::chrono::milliseconds offset) {
  return Clock::time_point{} + offset;
}

CoDelConfig codel_config() {
  CoDelConfig c;
  c.target = 5ms;
  c.interval = 100ms;
  c.interactive_target_factor = 4.0;  // interactive target: 20ms
  return c;
}

TEST(CoDelTest, ValidatesConfig) {
  CoDelConfig zero_target = codel_config();
  zero_target.target = 0ms;
  EXPECT_THROW(CoDelController{zero_target}, std::invalid_argument);
  CoDelConfig zero_interval = codel_config();
  zero_interval.interval = 0ms;
  EXPECT_THROW(CoDelController{zero_interval}, std::invalid_argument);
  CoDelConfig inverted = codel_config();
  inverted.interactive_target_factor = 0.5;  // interactive would shed first
  EXPECT_THROW(CoDelController{inverted}, std::invalid_argument);
}

TEST(CoDelTest, BelowTargetNeverSheds) {
  CoDelController codel(codel_config());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(codel.should_shed(Priority::kBatch, 4ms, at(i * 10ms)));
  }
  EXPECT_EQ(codel.shed_count(Priority::kBatch), 0);
  EXPECT_FALSE(codel.dropping(Priority::kBatch));
}

TEST(CoDelTest, TransientBurstShorterThanIntervalNeverSheds) {
  CoDelController codel(codel_config());
  // Sojourn above target, but each excursion drains before a full interval
  // elapses: first_above re-arms on every dip below target.
  EXPECT_FALSE(codel.should_shed(Priority::kBatch, 10ms, at(0ms)));
  EXPECT_FALSE(codel.should_shed(Priority::kBatch, 12ms, at(50ms)));
  EXPECT_FALSE(codel.should_shed(Priority::kBatch, 2ms, at(60ms)));  // drains
  EXPECT_FALSE(codel.should_shed(Priority::kBatch, 11ms, at(70ms)));
  EXPECT_FALSE(codel.should_shed(Priority::kBatch, 10ms, at(150ms)));
  EXPECT_FALSE(codel.should_shed(Priority::kBatch, 1ms, at(160ms)));  // drains
  EXPECT_EQ(codel.shed_count(Priority::kBatch), 0);
  EXPECT_FALSE(codel.dropping(Priority::kBatch));
}

TEST(CoDelTest, StandingBacklogShedsOnDropLaw) {
  CoDelController codel(codel_config());
  // Sojourn continuously above target: first sample arms the interval timer,
  // a full interval later the lane enters dropping and sheds immediately.
  EXPECT_FALSE(codel.should_shed(Priority::kBatch, 10ms, at(0ms)));
  EXPECT_FALSE(codel.should_shed(Priority::kBatch, 15ms, at(50ms)));
  EXPECT_TRUE(codel.should_shed(Priority::kBatch, 20ms, at(100ms)));
  EXPECT_TRUE(codel.dropping(Priority::kBatch));
  // Drop law: next shed at 100ms + interval/sqrt(1) = 200ms.
  EXPECT_FALSE(codel.should_shed(Priority::kBatch, 20ms, at(150ms)));
  EXPECT_TRUE(codel.should_shed(Priority::kBatch, 20ms, at(200ms)));
  // count=2: next at 200ms + 100/sqrt(2) ~ 270.7ms — spacing shrinks the
  // longer the overload persists.
  EXPECT_FALSE(codel.should_shed(Priority::kBatch, 20ms, at(260ms)));
  EXPECT_TRUE(codel.should_shed(Priority::kBatch, 20ms, at(271ms)));
  EXPECT_EQ(codel.shed_count(Priority::kBatch), 3);
}

TEST(CoDelTest, InteractiveLaneShedsOnlyAboveItsLargerTarget) {
  CoDelController codel(codel_config());
  // 10ms sojourn: above the 5ms batch target, below the 20ms interactive
  // target — only the batch lane ever sheds at this pressure.
  for (int i = 0; i <= 5; ++i) {
    codel.should_shed(Priority::kBatch, 10ms, at(i * 50ms));
    EXPECT_FALSE(codel.should_shed(Priority::kInteractive, 10ms, at(i * 50ms)));
  }
  EXPECT_GT(codel.shed_count(Priority::kBatch), 0);
  EXPECT_EQ(codel.shed_count(Priority::kInteractive), 0);
  EXPECT_FALSE(codel.dropping(Priority::kInteractive));

  // Interactive sheds too once *its* target is exceeded for an interval:
  // priority softens shedding, it does not exempt the lane.
  EXPECT_FALSE(codel.should_shed(Priority::kInteractive, 30ms, at(1000ms)));
  EXPECT_TRUE(codel.should_shed(Priority::kInteractive, 30ms, at(1100ms)));
  EXPECT_EQ(codel.shed_count(Priority::kInteractive), 1);
}

TEST(CoDelTest, EpisodeMemoryRampsFasterOnQuickReentry) {
  CoDelController codel(codel_config());
  // Build an episode up to count=4 (sheds at 100, 200, ~271, ~329).
  codel.should_shed(Priority::kBatch, 20ms, at(0ms));
  EXPECT_TRUE(codel.should_shed(Priority::kBatch, 20ms, at(100ms)));
  EXPECT_TRUE(codel.should_shed(Priority::kBatch, 20ms, at(200ms)));
  EXPECT_TRUE(codel.should_shed(Priority::kBatch, 20ms, at(271ms)));
  EXPECT_TRUE(codel.should_shed(Priority::kBatch, 20ms, at(329ms)));
  // Backlog drains: exit dropping, but keep the episode's count memory.
  EXPECT_FALSE(codel.should_shed(Priority::kBatch, 1ms, at(400ms)));
  EXPECT_FALSE(codel.dropping(Priority::kBatch));
  // Congestion returns: re-entry restarts at count-2=2, so the second shed
  // of the new episode comes interval/sqrt(2) ~ 70.7ms after the first —
  // a fresh episode would have waited the full 100ms.
  codel.should_shed(Priority::kBatch, 20ms, at(500ms));
  EXPECT_TRUE(codel.should_shed(Priority::kBatch, 20ms, at(600ms)));
  EXPECT_FALSE(codel.should_shed(Priority::kBatch, 20ms, at(665ms)));
  EXPECT_TRUE(codel.should_shed(Priority::kBatch, 20ms, at(671ms)));
}

BrownoutConfig brownout_config() {
  BrownoutConfig c;
  c.high_watermark = 0.5;
  c.low_watermark = 0.125;
  c.dwell = 3;
  c.ladder = {3, 2, 1};
  return c;
}

TEST(BrownoutTest, ValidatesConfig) {
  BrownoutConfig empty_ladder = brownout_config();
  empty_ladder.ladder = {};
  EXPECT_THROW(BrownoutController{empty_ladder}, std::invalid_argument);
  BrownoutConfig not_decreasing = brownout_config();
  not_decreasing.ladder = {3, 3, 1};
  EXPECT_THROW(BrownoutController{not_decreasing}, std::invalid_argument);
  BrownoutConfig zero_t = brownout_config();
  zero_t.ladder = {2, 0};
  EXPECT_THROW(BrownoutController{zero_t}, std::invalid_argument);
  BrownoutConfig zero_dwell = brownout_config();
  zero_dwell.dwell = 0;
  EXPECT_THROW(BrownoutController{zero_dwell}, std::invalid_argument);
  BrownoutConfig inverted_marks = brownout_config();
  inverted_marks.low_watermark = 0.6;  // >= high_watermark
  EXPECT_THROW(BrownoutController{inverted_marks}, std::invalid_argument);
}

TEST(BrownoutTest, EscalatesOneRungPerDwell) {
  BrownoutController brownout(brownout_config());
  EXPECT_EQ(brownout.time_steps(), 3);
  EXPECT_EQ(brownout.observe(0.6), 0);
  EXPECT_EQ(brownout.observe(0.6), 0);
  EXPECT_EQ(brownout.observe(0.6), 1);  // dwell=3 observations met
  EXPECT_EQ(brownout.time_steps(), 2);
  EXPECT_EQ(brownout.escalations(), 1);
  // Next rung needs a fresh dwell count.
  EXPECT_EQ(brownout.observe(0.9), 1);
  EXPECT_EQ(brownout.observe(0.9), 1);
  EXPECT_EQ(brownout.observe(0.9), 2);
  EXPECT_EQ(brownout.time_steps(), 1);
  // Clamped at the ladder floor.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(brownout.observe(1.0), 2);
  EXPECT_EQ(brownout.escalations(), 2);
  EXPECT_EQ(brownout.deepest_reached(), 2);
}

TEST(BrownoutTest, RecoversOneRungPerDwell) {
  BrownoutController brownout(brownout_config());
  for (int i = 0; i < 6; ++i) brownout.observe(0.8);
  ASSERT_EQ(brownout.level(), 2);
  EXPECT_EQ(brownout.observe(0.05), 2);
  EXPECT_EQ(brownout.observe(0.05), 2);
  EXPECT_EQ(brownout.observe(0.05), 1);
  EXPECT_EQ(brownout.observe(0.05), 1);
  EXPECT_EQ(brownout.observe(0.05), 1);
  EXPECT_EQ(brownout.observe(0.05), 0);
  EXPECT_EQ(brownout.time_steps(), 3);
  EXPECT_EQ(brownout.recoveries(), 2);
  // Fully recovered: stays at full quality.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(brownout.observe(0.0), 0);
  EXPECT_EQ(brownout.recoveries(), 2);
  EXPECT_EQ(brownout.deepest_reached(), 2);  // history, not current level
}

TEST(BrownoutTest, HysteresisBandHoldsLevelAndResetsStreaks) {
  BrownoutController brownout(brownout_config());
  for (int i = 0; i < 3; ++i) brownout.observe(0.7);
  ASSERT_EQ(brownout.level(), 1);
  // Between the watermarks: no drift in either direction, however long.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(brownout.observe(0.3), 1);
  // The band also resets partial streaks: 2 high, 1 mid, 2 high never
  // accumulates the 3-observation dwell.
  brownout.observe(0.7);
  brownout.observe(0.7);
  brownout.observe(0.3);
  brownout.observe(0.7);
  EXPECT_EQ(brownout.observe(0.7), 1);
  EXPECT_EQ(brownout.escalations(), 1);
}

}  // namespace
}  // namespace ullsnn::serve
