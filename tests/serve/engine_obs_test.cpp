// Live-operations integration tests: request-scoped stage timings on the
// response, the embedded /metrics//healthz//flight endpoint, conservation
// between the exported serve.* series and ServeStats, and the flight
// recorder's anomaly dumps — all driven through a real running engine.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/serve/engine.h"
#include "tests/testutil/http_get.h"

namespace ullsnn::serve {
namespace {

using namespace std::chrono_literals;
using testutil::http_request;

snn::IfConfig if_config(float v_th = 1.0F) {
  snn::IfConfig c;
  c.v_threshold = v_th;
  return c;
}

NetworkFactory tiny_factory(std::int64_t time_steps = 3) {
  return [time_steps] {
    auto net = std::make_unique<snn::SnnNetwork>(time_steps);
    Tensor w1({4, 4});
    for (std::int64_t i = 0; i < 4; ++i) w1.at(i, i) = 1.0F;
    net->emplace<snn::SpikingLinear>(w1, if_config(), /*with_neuron=*/true);
    Tensor w2({2, 4});
    w2.at(0, 0) = 1.0F;
    w2.at(0, 1) = 1.0F;
    w2.at(1, 2) = 1.0F;
    w2.at(1, 3) = 1.0F;
    net->emplace<snn::SpikingLinear>(w2, snn::IfConfig{}, /*with_neuron=*/false);
    return net;
  };
}

Tensor class_image(std::int64_t cls) {
  Tensor image({4});
  image[2 * cls] = 1.5F;
  image[2 * cls + 1] = 1.5F;
  return image;
}

ServeConfig base_config() {
  ServeConfig config;
  config.input_shape = {4};
  config.workers = 1;
  config.default_deadline = 10000ms;
  config.request_timeout = 20000ms;
  config.retry_backoff = std::chrono::microseconds(0);
  return config;
}

/// Parse `<name> <value>` from an exposition body; -1 if absent.
double scrape_value(const std::string& body, const std::string& name) {
  const std::string needle = name + " ";
  std::size_t pos = 0;
  while ((pos = body.find(needle, pos)) != std::string::npos) {
    // Must be at line start so serve_submitted doesn't match a TYPE line.
    if (pos == 0 || body[pos - 1] == '\n') {
      return std::stod(body.substr(pos + needle.size()));
    }
    pos += needle.size();
  }
  return -1.0;
}

TEST(EngineObsTest, ResponseCarriesIdAndStageTimings) {
  ServeEngine engine(base_config(), tiny_factory());
  engine.start();
  SubmitResult submitted = engine.submit(class_image(1));
  ASSERT_TRUE(submitted.accepted);
  const InferResponse response = submitted.future.get();
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.id, submitted.future.id());
  EXPECT_GE(response.queue_ms, 0.0);
  EXPECT_GE(response.batch_ms, 0.0);
  EXPECT_GT(response.infer_ms, 0.0);
  EXPECT_GT(response.total_ms, 0.0);
  // The stage record is internally consistent: stages cannot exceed the
  // end-to-end total (infer runs inside it).
  EXPECT_LE(response.infer_ms, response.total_ms + 1.0);
  // One per-step duration per ladder time step, each non-negative and
  // summing to (at most) the forward time.
  ASSERT_EQ(response.step_ms.size(), 3u);
  double step_sum = 0.0;
  for (const double s : response.step_ms) {
    EXPECT_GE(s, 0.0);
    step_sum += s;
  }
  EXPECT_LE(step_sum, response.infer_ms + 1.0);
  engine.stop();
}

TEST(EngineObsTest, RequestIdsAreUniqueAndMonotonic) {
  ServeEngine engine(base_config(), tiny_factory());
  engine.start();
  std::vector<ResponseFuture> futures;
  for (int i = 0; i < 16; ++i) {
    SubmitResult s = engine.submit(class_image(i % 2));
    ASSERT_TRUE(s.accepted);
    futures.push_back(std::move(s.future));
  }
  std::int64_t prev = -1;
  for (auto& f : futures) {
    const InferResponse r = f.get();
    EXPECT_EQ(r.id, f.id());
    EXPECT_GT(r.id, prev);
    prev = r.id;
  }
  engine.stop();
}

TEST(EngineObsTest, FlightRecorderCapturesFulfilledRequests) {
  obs::FlightRecorder::instance().clear();
  ServeEngine engine(base_config(), tiny_factory());
  engine.start();
  SubmitResult submitted = engine.submit(class_image(0));
  ASSERT_TRUE(submitted.accepted);
  const InferResponse response = submitted.future.get();
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  engine.stop();
  const auto records = obs::FlightRecorder::instance().requests();
  ASSERT_FALSE(records.empty());
  bool found = false;
  for (const auto& record : records) {
    if (record.id != response.id) continue;
    found = true;
    EXPECT_STREQ(record.status, "ok");
    EXPECT_EQ(record.time_steps, 3);
    EXPECT_EQ(record.worker, 0);
    EXPECT_GE(record.batch_size, 1);
    EXPECT_EQ(record.steps, 3);
    EXPECT_GT(record.total_ms, 0.0);
  }
  EXPECT_TRUE(found);
}

TEST(EngineObsTest, MetricsEndpointConservesCountsAgainstServeStats) {
  obs::Registry::instance().reset_values();
  ServeConfig config = base_config();
  config.obs.endpoint = true;  // ephemeral loopback port
  ServeEngine engine(config, tiny_factory());
  engine.start();
  ASSERT_GT(engine.http_port(), 0);
  constexpr int kRequests = 24;
  std::vector<ResponseFuture> futures;
  for (int i = 0; i < kRequests; ++i) {
    SubmitResult s = engine.submit(class_image(i % 2));
    ASSERT_TRUE(s.accepted);
    futures.push_back(std::move(s.future));
  }
  for (auto& f : futures) {
    EXPECT_TRUE(is_success(f.get().status));
  }
  const auto scrape = http_request(engine.http_port(), "/metrics");
  ASSERT_TRUE(scrape.ok);
  ASSERT_EQ(scrape.status, 200);
  const ServeStats stats = engine.stats();
  // Conservation: the exported serve.* series and the engine-owned stats
  // describe the same requests. (Scrape first, then read stats: counters
  // only grow, so scrape <= stats would catch drift in either direction.)
  EXPECT_EQ(scrape_value(scrape.body, "serve_submitted"), stats.submitted);
  EXPECT_EQ(scrape_value(scrape.body, "serve_accepted"), stats.accepted);
  EXPECT_EQ(scrape_value(scrape.body, "serve_completed_ok"),
            stats.completed_ok);
  EXPECT_EQ(scrape_value(scrape.body, "serve_completed_degraded"),
            stats.completed_degraded);
  // The latency histogram saw every fulfilled request.
  EXPECT_EQ(scrape_value(scrape.body, "serve_latency_total_ms_count"),
            kRequests);
  // The exposition carries the SLO gauges the tracker publishes on scrape.
  EXPECT_GE(scrape_value(scrape.body, "serve_slo_p50_ms"), 0.0);
  engine.stop();
}

TEST(EngineObsTest, HealthzReportsBreakerAndQueue) {
  ServeConfig config = base_config();
  config.obs.endpoint = true;
  ServeEngine engine(config, tiny_factory());
  engine.start();
  const auto health = http_request(engine.http_port(), "/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("\"breaker\":\"closed\""), std::string::npos);
  // Total capacity spans both priority lanes (interactive + batch).
  EXPECT_NE(health.body.find("\"queue_capacity\":512"), std::string::npos);
  EXPECT_NE(health.body.find("\"queue_capacity_interactive\":256"),
            std::string::npos);
  EXPECT_NE(health.body.find("\"queue_capacity_batch\":256"), std::string::npos);
  engine.stop();
}

TEST(EngineObsTest, HealthzGoes503WhenTheCircuitOpens) {
  ServeConfig config = base_config();
  config.obs.endpoint = true;
  config.max_attempts = 1;
  config.breaker.ladder = {3, 2, 1};
  config.breaker.failure_threshold = 1;
  config.breaker.open_cooldown = 1000;  // stay open for the whole test
  config.before_forward_hook = [](const std::vector<std::int64_t>&,
                                  std::int64_t, snn::SnnNetwork&) {
    throw std::runtime_error("injected persistent fault");
  };
  ServeEngine engine(config, tiny_factory());
  engine.start();
  // Every batch fails; the ladder descends then the circuit opens.
  for (int i = 0; i < 10 && engine.breaker().state() != BreakerState::kOpen;
       ++i) {
    SubmitResult s = engine.submit(class_image(0));
    ASSERT_TRUE(s.accepted);
    s.future.get();
  }
  ASSERT_EQ(engine.breaker().state(), BreakerState::kOpen);
  const auto health = http_request(engine.http_port(), "/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("\"status\":\"unavailable\""), std::string::npos);
  EXPECT_NE(health.body.find("\"breaker\":\"open\""), std::string::npos);
  engine.stop();
}

TEST(EngineObsTest, FlightEndpointServesRecentRequests) {
  obs::FlightRecorder::instance().clear();
  ServeConfig config = base_config();
  config.obs.endpoint = true;
  ServeEngine engine(config, tiny_factory());
  engine.start();
  SubmitResult submitted = engine.submit(class_image(1));
  ASSERT_TRUE(submitted.accepted);
  const InferResponse response = submitted.future.get();
  const auto flight = http_request(engine.http_port(), "/flight");
  ASSERT_TRUE(flight.ok);
  EXPECT_EQ(flight.status, 200);
  EXPECT_NE(flight.headers.find("application/x-ndjson"), std::string::npos);
  EXPECT_NE(flight.body.find("\"id\":" + std::to_string(response.id)),
            std::string::npos);
  engine.stop();
}

TEST(EngineObsTest, WatchdogTimeoutDumpsTheFlightRecorder) {
  obs::FlightRecorder::instance().clear();
  const std::string dump_path =
      testing::TempDir() + "engine_flight_dump.jsonl";
  std::remove(dump_path.c_str());
  ServeConfig config = base_config();
  config.request_timeout = 50ms;
  config.watchdog_period = 5ms;
  config.max_attempts = 1;
  config.obs.flight_dump_path = dump_path;
  config.before_forward_hook = [](const std::vector<std::int64_t>&,
                                  std::int64_t, snn::SnnNetwork&) {
    std::this_thread::sleep_for(200ms);  // wedge past the hard timeout
  };
  ServeEngine engine(config, tiny_factory());
  engine.start();
  SubmitResult submitted = engine.submit(class_image(0));
  ASSERT_TRUE(submitted.accepted);
  const InferResponse response = submitted.future.get();
  EXPECT_EQ(response.status, ResponseStatus::kTimeout);
  EXPECT_EQ(response.id, submitted.future.id());
  engine.stop();
  EXPECT_GE(obs::FlightRecorder::instance().anomalies(), 1);
  std::ifstream dump(dump_path);
  ASSERT_TRUE(dump.good()) << "anomaly should have dumped " << dump_path;
  std::string contents((std::istreambuf_iterator<char>(dump)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"kind\":\"watchdog\""), std::string::npos);
  std::remove(dump_path.c_str());
  // Don't leave the global recorder pointed at this test's temp file.
  obs::FlightRecorder::instance().set_dump_path("");
}

TEST(EngineObsTest, StatsExposeSloReport) {
  obs::Registry::instance().reset_values();
  ServeEngine engine(base_config(), tiny_factory());
  engine.start();
  std::vector<ResponseFuture> futures;
  for (int i = 0; i < 8; ++i) {
    SubmitResult s = engine.submit(class_image(0));
    ASSERT_TRUE(s.accepted);
    futures.push_back(std::move(s.future));
  }
  for (auto& f : futures) f.get();
  const ServeStats stats = engine.stats();
  EXPECT_GT(stats.slo_p50_ms, 0.0);
  EXPECT_LE(stats.slo_p50_ms, stats.slo_p99_ms);
  // Tiny requests against a 250 ms objective: no violations, no burn.
  EXPECT_NEAR(stats.slo_compliance, 1.0, 1e-9);
  EXPECT_NEAR(stats.slo_burn, 0.0, 1e-9);
  engine.stop();
}

TEST(EngineObsTest, EndpointDisabledByDefault) {
  ServeEngine engine(base_config(), tiny_factory());
  engine.start();
  EXPECT_EQ(engine.http_port(), 0);
  engine.stop();
}

}  // namespace
}  // namespace ullsnn::serve
