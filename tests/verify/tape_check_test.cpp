#include "src/verify/tape_check.h"

#include <gtest/gtest.h>

#include <limits>

#include "src/dnn/activations.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/linear.h"
#include "src/dnn/sequential.h"

namespace ullsnn::verify {
namespace {

/// T001 fixture: registers the same Param twice from params().
class DoubleRegisterLayer final : public dnn::Layer {
 public:
  DoubleRegisterLayer() {
    param_.name = "double.weight";
    param_.value = Tensor({4}, 0.5F);
    param_.grad = Tensor({4});
  }
  Tensor forward(const Tensor& input, bool) override { return input; }
  Tensor backward(const Tensor& grad) override { return grad; }
  std::vector<dnn::Param*> params() override { return {&param_, &param_}; }
  std::string name() const override { return "DoubleRegisterLayer"; }
  Shape output_shape(const Shape& input) const override { return input; }

 private:
  dnn::Param param_;
};

/// T005 fixture: the same child object reachable twice through children().
class AliasingContainer final : public dnn::Layer {
 public:
  explicit AliasingContainer(Rng& rng) : inner_(4, 4, /*bias=*/false, rng) {}
  Tensor forward(const Tensor& input, bool train) override {
    return inner_.forward(input, train);
  }
  Tensor backward(const Tensor& grad) override { return inner_.backward(grad); }
  std::vector<dnn::Param*> params() override { return inner_.params(); }
  std::string name() const override { return "AliasingContainer"; }
  Shape output_shape(const Shape& input) const override {
    return inner_.output_shape(input);
  }
  std::vector<dnn::Layer*> children() override { return {&inner_, &inner_}; }

 private:
  dnn::Linear inner_;
};

/// conv -> ThresholdReLU -> flatten -> readout on an 8x8 input.
void build_clean(dnn::Sequential& model, Rng& rng) {
  model.emplace<dnn::Conv2d>(3, 4, 3, 1, 1, /*bias=*/false, rng);
  model.emplace<dnn::ThresholdReLU>(4.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(4 * 8 * 8, 3, false, rng);
}

TEST(TapeCheckTest, CleanModelStructurallyClean) {
  Rng rng(1);
  dnn::Sequential model;
  build_clean(model, rng);
  EXPECT_TRUE(check_tape(model).empty());
}

TEST(TapeCheckTest, CleanModelSurvivesSyntheticPass) {
  Rng rng(1);
  dnn::Sequential model;
  build_clean(model, rng);
  TapeCheckOptions options;
  options.run_backward = true;
  options.input_shape = {2, 3, 8, 8};
  EXPECT_TRUE(check_tape(model, options).empty());
}

TEST(TapeCheckTest, T001AliasedParam) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<DoubleRegisterLayer>();
  const VerifyReport report = check_tape(model);
  ASSERT_TRUE(report.has_rule("T001"));
  EXPECT_NE(report.diagnostics[0].message.find("double.weight"), std::string::npos);
}

TEST(TapeCheckTest, T002GradShapeMismatch) {
  Rng rng(1);
  dnn::Sequential model;
  build_clean(model, rng);
  auto& conv = dynamic_cast<dnn::Conv2d&>(model.layer(0));
  conv.weight().grad = Tensor({1, 2, 3});  // value is [4, 3, 3, 3]
  EXPECT_TRUE(check_tape(model).has_rule("T002"));
  // An unallocated (empty) gradient is fine: allocation is lazy.
  conv.weight().grad = Tensor();
  EXPECT_TRUE(check_tape(model).empty());
}

TEST(TapeCheckTest, T003NonFiniteParam) {
  Rng rng(1);
  dnn::Sequential model;
  build_clean(model, rng);
  auto& conv = dynamic_cast<dnn::Conv2d&>(model.layer(0));
  conv.weight().value[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(check_tape(model).has_rule("T003"));
  conv.weight().value[0] = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(check_tape(model).has_rule("T003"));
}

TEST(TapeCheckTest, T004UnreachableBehindDeadClip) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 4, 3, 1, 1, false, rng);
  // mu = 0 clips everything to zero: no gradient reaches either weight.
  model.emplace<dnn::ThresholdReLU>(4.0F).set_mu(0.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(4 * 8 * 8, 3, false, rng);
  TapeCheckOptions options;
  options.run_backward = true;
  options.input_shape = {2, 3, 8, 8};
  const VerifyReport report = check_tape(model, options);
  ASSERT_TRUE(report.has_rule("T004"));
  EXPECT_EQ(report.error_count(), 0);  // warning severity
  // The mu scalar itself (decay == false) is exempt from T004.
  for (const Diagnostic& d : report.diagnostics) {
    EXPECT_EQ(d.layer_name.find("mu"), std::string::npos) << d.layer_name;
  }
}

TEST(TapeCheckTest, T004RequiresRunBackward) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 4, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(4.0F).set_mu(0.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(4 * 8 * 8, 3, false, rng);
  // Static-only invocation: the dead clip is invisible to the tape rules.
  EXPECT_FALSE(check_tape(model).has_rule("T004"));
}

TEST(TapeCheckTest, T005DuplicateChild) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<AliasingContainer>(rng);
  const VerifyReport report = check_tape(model);
  EXPECT_TRUE(report.has_rule("T005"));
}

TEST(TapeCheckTest, RunBackwardRequiresBatchedShape) {
  Rng rng(1);
  dnn::Sequential model;
  build_clean(model, rng);
  TapeCheckOptions options;
  options.run_backward = true;  // no input_shape
  EXPECT_THROW(check_tape(model, options), std::invalid_argument);
}

}  // namespace
}  // namespace ullsnn::verify
