// The verify gate of core::HybridPipeline: preflight report plumbing and the
// warn/strict modes. The strict-abort test relies on the preflight running
// BEFORE stage (a), so the broken config fails in milliseconds instead of
// after a training run.

#include <gtest/gtest.h>

#include "src/core/pipeline.h"

namespace ullsnn::core {
namespace {

data::LabeledImages tiny_data(std::int64_t n, std::uint64_t salt) {
  data::SyntheticCifarSpec spec;
  spec.image_size = 32;
  spec.num_classes = 3;
  data::SyntheticCifar gen(spec);
  data::LabeledImages d = gen.generate(n, salt);
  data::standardize(d);
  return d;
}

PipelineConfig tiny_config() {
  PipelineConfig config;
  config.arch = Architecture::kVgg11;
  config.model.width = 0.0625F;
  config.model.num_classes = 3;
  config.model.image_size = 32;
  config.dnn_train.epochs = 1;
  config.dnn_train.batch_size = 16;
  config.dnn_train.augment = false;
  config.conversion.time_steps = 2;
  config.sgl.epochs = 1;
  config.sgl.augment = false;
  return config;
}

TEST(PipelineGateTest, PreflightCleanOnZooModel) {
  HybridPipeline pipeline(tiny_config());
  const verify::VerifyReport report = pipeline.preflight();
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.empty()) << verify::format_report(report);
}

TEST(PipelineGateTest, PreflightReportsBrokenConfig) {
  PipelineConfig config = tiny_config();
  config.conversion.time_steps = 0;  // C006
  config.conversion.reset = snn::ResetMode::kZero;
  config.telemetry.enabled = true;  // Delta probe consumer -> C007 escalates
  HybridPipeline pipeline(config);
  const verify::VerifyReport report = pipeline.preflight();
  EXPECT_TRUE(report.has_rule("C006"));
  EXPECT_TRUE(report.has_rule("C007"));
  EXPECT_GE(report.error_count(), 2);
}

TEST(PipelineGateTest, HardResetWithoutProbeIsOnlyAWarning) {
  PipelineConfig config = tiny_config();
  config.conversion.reset = snn::ResetMode::kZero;  // no telemetry consumer
  HybridPipeline pipeline(config);
  const verify::VerifyReport report = pipeline.preflight();
  EXPECT_TRUE(report.has_rule("C007"));
  EXPECT_TRUE(report.ok());
}

TEST(PipelineGateTest, StrictModeAbortsBeforeTraining) {
  PipelineConfig config = tiny_config();
  config.verify.mode = VerifyGateConfig::Mode::kStrict;
  config.conversion.time_steps = 0;  // C006: nothing could ever spike
  HybridPipeline pipeline(config);
  const data::LabeledImages train = tiny_data(32, 1);
  const data::LabeledImages test = tiny_data(16, 2);
  try {
    pipeline.run(train, test);
    FAIL() << "strict gate did not abort";
  } catch (const verify::VerifyError& e) {
    EXPECT_TRUE(e.report().has_rule("C006"));
  }
  // The abort happened at preflight: no trained stages exist.
  EXPECT_THROW(pipeline.snn(), std::logic_error);
}

TEST(PipelineGateTest, WarnModeDoesNotThrowAtPreflight) {
  PipelineConfig config = tiny_config();
  config.verify.mode = VerifyGateConfig::Mode::kWarn;
  config.conversion.reset = snn::ResetMode::kZero;  // C007 warning only
  HybridPipeline pipeline(config);
  EXPECT_NO_THROW(pipeline.preflight());
}

TEST(PipelineGateTest, PreflightWithTapeStaysCleanOnZooModel) {
  PipelineConfig config = tiny_config();
  config.verify.tape = true;
  HybridPipeline pipeline(config);
  const verify::VerifyReport report = pipeline.preflight();
  EXPECT_TRUE(report.empty()) << verify::format_report(report);
}

}  // namespace
}  // namespace ullsnn::core
