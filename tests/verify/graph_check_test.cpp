#include "src/verify/graph_check.h"

#include <gtest/gtest.h>

#include "src/dnn/activations.h"
#include "src/dnn/batchnorm.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/dropout.h"
#include "src/dnn/linear.h"
#include "src/dnn/pooling.h"
#include "src/dnn/residual.h"
#include "src/dnn/sequential.h"

namespace ullsnn::verify {
namespace {

const Shape kInput = {2, 3, 32, 32};

TEST(GraphCheckTest, CleanChainHasNoDiagnostics) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, /*bias=*/false, rng);
  model.emplace<dnn::ThresholdReLU>(4.0F);
  model.emplace<dnn::MaxPool2d>(2, 2);
  model.emplace<dnn::Conv2d>(8, 16, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(4.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(16 * 16 * 16, 10, false, rng);
  EXPECT_TRUE(check_graph(model, kInput).empty());
}

TEST(GraphCheckTest, G001ConvChannelMismatch) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::Conv2d>(16, 8, 3, 1, 1, false, rng);  // receives 8
  const VerifyReport report = check_graph(model, kInput);
  EXPECT_TRUE(report.has_rule("G001"));
  EXPECT_EQ(report.diagnostics[0].layer, 1);
}

TEST(GraphCheckTest, G001LinearFeatureMismatch) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(999, 10, false, rng);  // 8*32*32 = 8192 != 999
  EXPECT_TRUE(check_graph(model, kInput).has_rule("G001"));
}

TEST(GraphCheckTest, G001BatchNormChannelMismatch) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::BatchNorm2d>(4);  // receives 8 channels
  EXPECT_TRUE(check_graph(model, kInput).has_rule("G001"));
}

TEST(GraphCheckTest, G001RecoverableInferenceContinues) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::Conv2d>(16, 4, 3, 1, 1, false, rng);  // G001, continues as 4ch
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(123, 10, false, rng);  // 4*32*32 != 123 -> second G001
  const VerifyReport report = check_graph(model, kInput);
  EXPECT_EQ(report.error_count(), 2);
}

TEST(GraphCheckTest, G002ConvAfterFlatten) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);  // rank-2 input
  const VerifyReport report = check_graph(model, kInput);
  EXPECT_TRUE(report.has_rule("G002"));
  // Rank mismatches are unrecoverable; the walk stops (no cascading noise).
  EXPECT_EQ(report.diagnostics.size(), 1U);
}

TEST(GraphCheckTest, G002LinearWithoutFlatten) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::Linear>(8 * 32 * 32, 10, false, rng);  // rank-4 input
  EXPECT_TRUE(check_graph(model, kInput).has_rule("G002"));
}

TEST(GraphCheckTest, G003PoolingUnderflow) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  // Six halvings of a 32x32 input: 32 -> ... -> 1, then the kernel no longer fits.
  for (int i = 0; i < 6; ++i) model.emplace<dnn::MaxPool2d>(2, 2);
  EXPECT_TRUE(check_graph(model, kInput).has_rule("G003"));
}

TEST(GraphCheckTest, G003ConvGeometryCollapse) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 5, 1, 0, false, rng);  // 32 -> 28
  const VerifyReport ok = check_graph(model, kInput);
  EXPECT_TRUE(ok.empty());
  dnn::Sequential bad;
  bad.emplace<dnn::Conv2d>(3, 8, 5, 1, 0, false, rng);
  EXPECT_TRUE(check_graph(bad, {2, 3, 4, 4}).has_rule("G003"));  // 4 < kernel 5
}

TEST(GraphCheckTest, G004EmptyModel) {
  dnn::Sequential model;
  const VerifyReport report = check_graph(model, kInput);
  EXPECT_TRUE(report.has_rule("G004"));
  EXPECT_EQ(report.diagnostics.size(), 1U);
}

TEST(GraphCheckTest, G005DeadDropout) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  // The constructor rejects p >= 1; model an annealing schedule gone wrong.
  model.emplace<dnn::Dropout>(0.5F, rng).set_drop_prob(1.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(8 * 32 * 32, 10, false, rng);
  EXPECT_TRUE(check_graph(model, kInput).has_rule("G005"));
  // A regular dropout rate stays clean.
  dnn::Sequential ok;
  ok.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  ok.emplace<dnn::Dropout>(0.2F, rng);
  ok.emplace<dnn::Flatten>();
  ok.emplace<dnn::Linear>(8 * 32 * 32, 10, false, rng);
  EXPECT_TRUE(check_graph(ok, kInput).empty());
}

TEST(GraphCheckTest, ResidualBlockChannelsChecked) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(4.0F);
  model.emplace<dnn::ResidualBlock>(16, 16, 1, 4.0F, rng);  // receives 8ch
  const VerifyReport report = check_graph(model, kInput);
  EXPECT_TRUE(report.has_rule("G001"));
  EXPECT_EQ(report.diagnostics[0].layer, 2);

  dnn::Sequential ok;
  ok.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  ok.emplace<dnn::ThresholdReLU>(4.0F);
  ok.emplace<dnn::ResidualBlock>(8, 16, 2, 4.0F, rng);  // strided projection
  ok.emplace<dnn::Flatten>();
  ok.emplace<dnn::Linear>(16 * 16 * 16, 10, false, rng);
  EXPECT_TRUE(check_graph(ok, kInput).empty());
}

}  // namespace
}  // namespace ullsnn::verify
