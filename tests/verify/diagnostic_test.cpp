#include "src/verify/diagnostic.h"

#include <gtest/gtest.h>

#include <set>

namespace ullsnn::verify {
namespace {

TEST(RuleCatalogTest, StableAndOrdered) {
  const std::vector<RuleInfo>& catalog = rule_catalog();
  ASSERT_EQ(catalog.size(), 19U);  // G001-G005, C001-C009, T001-T005
  std::set<std::string> ids;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_TRUE(ids.insert(catalog[i].id).second) << "duplicate id " << catalog[i].id;
    // Grouped by family (G graph, C conversion, T tape), ascending within.
    if (i > 0 && catalog[i - 1].id[0] == catalog[i].id[0]) {
      EXPECT_LT(std::string(catalog[i - 1].id), std::string(catalog[i].id))
          << "catalog not ordered within family";
    }
    EXPECT_NE(catalog[i].name[0], '\0');
    EXPECT_NE(catalog[i].summary[0], '\0');
  }
  for (const char* id : {"G001", "G005", "C001", "C009", "T001", "T005"}) {
    EXPECT_EQ(ids.count(id), 1U) << id;
  }
}

TEST(RuleCatalogTest, LookupThrowsOnUnknown) {
  EXPECT_EQ(std::string(rule_info("G001").name), "shape-mismatch");
  EXPECT_THROW(rule_info("Z999"), std::invalid_argument);
  EXPECT_THROW(rule_info(""), std::invalid_argument);
}

TEST(DiagnosticTest, MakeFillsFromCatalog) {
  const Diagnostic d = make_diagnostic("C001", 3, "BatchNorm2d", "msg", "hint");
  EXPECT_EQ(d.rule_id, "C001");
  EXPECT_EQ(d.rule_name, "unfolded-bn");
  EXPECT_EQ(d.severity, rule_info("C001").default_severity);
  EXPECT_EQ(d.layer, 3);
  EXPECT_EQ(d.layer_name, "BatchNorm2d");
  EXPECT_EQ(d.message, "msg");
  EXPECT_EQ(d.fix_hint, "hint");
}

TEST(DiagnosticTest, SeverityOverride) {
  // C007's default is a warning; gates escalate it when a Delta consumer runs.
  EXPECT_EQ(rule_info("C007").default_severity, Severity::kWarning);
  const Diagnostic d =
      make_diagnostic("C007", Severity::kError, -1, "", "escalated", "hint");
  EXPECT_EQ(d.severity, Severity::kError);
}

TEST(DiagnosticTest, ToStringMentionsRuleAndLayer) {
  const Diagnostic d = make_diagnostic("G001", 2, "Conv2d", "channel mismatch", "fix");
  const std::string s = to_string(d);
  EXPECT_NE(s.find("G001"), std::string::npos);
  EXPECT_NE(s.find("Conv2d"), std::string::npos);
  EXPECT_NE(s.find("channel mismatch"), std::string::npos);
  // Model-level diagnostics render without a layer index.
  const std::string model_level =
      to_string(make_diagnostic("C005", -1, "", "count off", "fix"));
  EXPECT_EQ(model_level.find("layer -1"), std::string::npos);
}

TEST(VerifyReportTest, CountsAndRuleQueries) {
  VerifyReport report;
  EXPECT_TRUE(report.empty());
  EXPECT_TRUE(report.ok());
  report.diagnostics.push_back(make_diagnostic("G001", 0, "Conv2d", "m", "h"));
  report.diagnostics.push_back(make_diagnostic("C007", -1, "", "m", "h"));  // warning
  EXPECT_EQ(report.error_count(), 1);
  EXPECT_EQ(report.warning_count(), 1);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_rule("G001"));
  EXPECT_TRUE(report.has_rule("C007"));
  EXPECT_FALSE(report.has_rule("T001"));
}

TEST(VerifyReportTest, MergeAppends) {
  VerifyReport a;
  a.diagnostics.push_back(make_diagnostic("G004", -1, "", "empty", "h"));
  VerifyReport b;
  b.diagnostics.push_back(make_diagnostic("C001", 1, "BatchNorm2d", "bn", "h"));
  a.merge(std::move(b));
  EXPECT_EQ(a.diagnostics.size(), 2U);
  EXPECT_TRUE(a.has_rule("G004"));
  EXPECT_TRUE(a.has_rule("C001"));
}

TEST(VerifyReportTest, FormatReportSummarizes) {
  VerifyReport report;
  report.diagnostics.push_back(make_diagnostic("G001", 0, "Conv2d", "m", "h"));
  const std::string text = format_report(report);
  EXPECT_NE(text.find("G001"), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
}

TEST(VerifyErrorTest, CarriesReport) {
  VerifyReport report;
  report.diagnostics.push_back(make_diagnostic("C005", -1, "", "count off", "h"));
  try {
    throw VerifyError(report);
  } catch (const VerifyError& e) {
    EXPECT_TRUE(e.report().has_rule("C005"));
    EXPECT_NE(std::string(e.what()).find("1 error"), std::string::npos);
  }
}

}  // namespace
}  // namespace ullsnn::verify
