#include "src/verify/convert_check.h"

#include <gtest/gtest.h>

#include <limits>

#include "src/dnn/activations.h"
#include "src/dnn/batchnorm.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/dropout.h"
#include "src/dnn/linear.h"
#include "src/dnn/pooling.h"
#include "src/dnn/residual.h"

namespace ullsnn::verify {
namespace {

/// A layer type the converter has no spiking mapping for (C002 fixture).
class ExoticLayer final : public dnn::Layer {
 public:
  Tensor forward(const Tensor& input, bool) override { return input; }
  Tensor backward(const Tensor& grad) override { return grad; }
  std::string name() const override { return "ExoticLayer"; }
  Shape output_shape(const Shape& input) const override { return input; }
};

/// conv -> ThresholdReLU -> flatten -> readout: every precondition satisfied.
void build_clean(dnn::Sequential& model, Rng& rng) {
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, /*bias=*/false, rng);
  model.emplace<dnn::ThresholdReLU>(4.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(8 * 32 * 32, 10, false, rng);
}

TEST(ConvertCheckTest, CleanModelHasNoDiagnostics) {
  Rng rng(1);
  dnn::Sequential model;
  build_clean(model, rng);
  EXPECT_TRUE(check_conversion_preconditions(model, {}).empty());
}

TEST(ConvertCheckTest, C001UnfoldedBatchNorm) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::BatchNorm2d>(8);
  model.emplace<dnn::ThresholdReLU>(4.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(8 * 32 * 32, 10, false, rng);
  const VerifyReport report = check_conversion_preconditions(model, {});
  EXPECT_TRUE(report.has_rule("C001"));
}

TEST(ConvertCheckTest, C002UnmappedLayer) {
  Rng rng(1);
  dnn::Sequential model;
  build_clean(model, rng);
  model.emplace<ExoticLayer>();
  const VerifyReport report = check_conversion_preconditions(model, {});
  EXPECT_TRUE(report.has_rule("C002"));
}

TEST(ConvertCheckTest, C003OrphanActivation) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(4.0F);
  model.emplace<dnn::MaxPool2d>(2, 2);
  model.emplace<dnn::ThresholdReLU>(4.0F);  // follows a pool, not a synapse
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(8 * 16 * 16, 10, false, rng);
  const VerifyReport report = check_conversion_preconditions(model, {});
  EXPECT_TRUE(report.has_rule("C003"));
}

TEST(ConvertCheckTest, C004PlainReluSite) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::ReLU>();  // no trainable clip -> no scaling entry
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(8 * 32 * 32, 10, false, rng);
  const VerifyReport report = check_conversion_preconditions(model, {});
  EXPECT_TRUE(report.has_rule("C004"));
}

TEST(ConvertCheckTest, C004TrailingConv) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);  // last layer, no site
  const VerifyReport report = check_conversion_preconditions(model, {});
  EXPECT_TRUE(report.has_rule("C004"));
}

TEST(ConvertCheckTest, C005SiteCountMismatch) {
  core::ConversionReport plan;
  plan.sites.resize(3);  // model below exposes 1 site
  const VerifyReport report = check_conversion_report(plan, {}, /*expected_sites=*/1);
  EXPECT_TRUE(report.has_rule("C005"));
  EXPECT_TRUE(check_conversion_report(plan, {}, /*expected_sites=*/3).empty());
  // -1 disables the count rule entirely.
  EXPECT_FALSE(check_conversion_report(plan, {}, -1).has_rule("C005"));
}

TEST(ConvertCheckTest, C006ScalingRanges) {
  core::ConversionReport plan;
  plan.sites.resize(4);
  plan.sites[0].v_threshold = 0.0F;                                 // <= 0
  plan.sites[1].beta = 2.5F;                                        // outside (0, 2]
  plan.sites[2].alpha = std::numeric_limits<float>::quiet_NaN();    // non-finite
  plan.sites[3].initial_membrane_fraction = 1.5F;                   // outside [0, 1]
  const VerifyReport report = check_conversion_report(plan, {}, 4);
  EXPECT_TRUE(report.has_rule("C006"));
  EXPECT_EQ(report.error_count(), 4);
}

TEST(ConvertCheckTest, C006ConfigRules) {
  Rng rng(1);
  dnn::Sequential model;
  build_clean(model, rng);
  core::ConversionConfig config;
  config.time_steps = 0;
  EXPECT_TRUE(check_conversion_preconditions(model, config).has_rule("C006"));
  config.time_steps = 2;
  config.bias_fraction_override = 1.5F;
  EXPECT_TRUE(check_conversion_preconditions(model, config).has_rule("C006"));
}

TEST(ConvertCheckTest, C007DeltaIdentityEscalation) {
  Rng rng(1);
  dnn::Sequential model;
  build_clean(model, rng);
  core::ConversionConfig config;
  config.reset = snn::ResetMode::kZero;  // hard reset breaks the identity
  const VerifyReport warn = check_conversion_preconditions(model, config);
  ASSERT_TRUE(warn.has_rule("C007"));
  EXPECT_EQ(warn.error_count(), 0);
  EXPECT_EQ(warn.warning_count(), 1);
  ConvertCheckOptions options;
  options.delta_identity_required = true;  // a live probe consumes Delta
  const VerifyReport strict = check_conversion_preconditions(model, config, options);
  ASSERT_TRUE(strict.has_rule("C007"));
  EXPECT_EQ(strict.error_count(), 1);
  // Leaky neurons break the identity the same way.
  core::ConversionConfig leaky;
  leaky.leak = 0.9F;
  EXPECT_TRUE(check_conversion_preconditions(model, leaky).has_rule("C007"));
}

TEST(ConvertCheckTest, C008PoolBetweenConvAndActivation) {
  Rng rng(1);
  dnn::Sequential avg;
  avg.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  avg.emplace<dnn::AvgPool2d>(2, 2);
  avg.emplace<dnn::ThresholdReLU>(4.0F);
  avg.emplace<dnn::Flatten>();
  avg.emplace<dnn::Linear>(8 * 16 * 16, 10, false, rng);
  const VerifyReport avg_report = check_conversion_preconditions(avg, {});
  ASSERT_TRUE(avg_report.has_rule("C008"));
  // The misplaced pool also orphans the activation (C003 rides along); the
  // severity distinction lives on the C008 diagnostic itself.
  Severity avg_severity = Severity::kInfo;
  for (const Diagnostic& d : avg_report.diagnostics) {
    if (d.rule_id == "C008") avg_severity = d.severity;
  }
  EXPECT_EQ(avg_severity, Severity::kError);  // clip does not commute with avg

  dnn::Sequential max;
  max.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  max.emplace<dnn::MaxPool2d>(2, 2);
  max.emplace<dnn::ThresholdReLU>(4.0F);
  max.emplace<dnn::Flatten>();
  max.emplace<dnn::Linear>(8 * 16 * 16, 10, false, rng);
  const VerifyReport max_report = check_conversion_preconditions(max, {});
  ASSERT_TRUE(max_report.has_rule("C008"));
  Severity max_severity = Severity::kInfo;
  for (const Diagnostic& d : max_report.diagnostics) {
    if (d.rule_id == "C008") max_severity = d.severity;
  }
  EXPECT_EQ(max_severity, Severity::kWarning);  // max pooling commutes
}

TEST(ConvertCheckTest, C009DeadSite) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  // The constructor rejects mu <= 0; emulate a site that died in training.
  model.emplace<dnn::ThresholdReLU>(4.0F).set_mu(0.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(8 * 32 * 32, 10, false, rng);
  const VerifyReport report = check_conversion_preconditions(model, {});
  ASSERT_TRUE(report.has_rule("C009"));
  EXPECT_EQ(report.error_count(), 0);  // warning severity
}

TEST(ConvertCheckTest, C009DeadResidualSite) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(4.0F);
  auto& block = model.emplace<dnn::ResidualBlock>(8, 8, 1, 4.0F, rng);
  block.act2().set_mu(-1.0F);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(8 * 32 * 32, 10, false, rng);
  const VerifyReport report = check_conversion_preconditions(model, {});
  ASSERT_TRUE(report.has_rule("C009"));
  EXPECT_NE(report.diagnostics[0].layer_name.find("act2"), std::string::npos);
}

TEST(ConvertCheckTest, CountActivationSites) {
  Rng rng(1);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(3, 8, 3, 1, 1, false, rng);
  model.emplace<dnn::ThresholdReLU>(4.0F);
  model.emplace<dnn::ResidualBlock>(8, 8, 1, 4.0F, rng);  // two sites
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(8 * 32 * 32, 10, false, rng);
  EXPECT_EQ(count_activation_sites(model), 3);
  dnn::Sequential empty;
  EXPECT_EQ(count_activation_sites(empty), 0);
}

}  // namespace
}  // namespace ullsnn::verify
