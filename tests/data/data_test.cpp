#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/data/augment.h"
#include "src/data/dataset.h"
#include "src/data/synthetic_cifar.h"

namespace ullsnn::data {
namespace {

TEST(SyntheticCifarTest, ShapesAndLabels) {
  SyntheticCifarSpec spec;
  SyntheticCifar gen(spec);
  const LabeledImages d = gen.generate(50, 1);
  EXPECT_EQ(d.images.shape(), Shape({50, 3, 32, 32}));
  EXPECT_EQ(d.size(), 50);
  for (std::int64_t label : d.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

TEST(SyntheticCifarTest, BalancedClasses) {
  SyntheticCifarSpec spec;
  SyntheticCifar gen(spec);
  const LabeledImages d = gen.generate(100, 1);
  std::vector<int> counts(10, 0);
  for (std::int64_t label : d.labels) ++counts[static_cast<std::size_t>(label)];
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(SyntheticCifarTest, DeterministicForSameSeedAndSalt) {
  SyntheticCifarSpec spec;
  SyntheticCifar a(spec);
  SyntheticCifar b(spec);
  const LabeledImages da = a.generate(10, 7);
  const LabeledImages db = b.generate(10, 7);
  EXPECT_TRUE(da.images.allclose(db.images));
}

TEST(SyntheticCifarTest, SplitsAreDecorrelated) {
  SyntheticCifarSpec spec;
  SyntheticCifar gen(spec);
  const LabeledImages train = gen.generate(10, 1);
  const LabeledImages test = gen.generate(10, 2);
  EXPECT_FALSE(train.images.allclose(test.images, 1e-3F));
}

TEST(SyntheticCifarTest, Cifar100Analogue) {
  SyntheticCifarSpec spec;
  spec.num_classes = 100;
  SyntheticCifar gen(spec);
  const LabeledImages d = gen.generate(200, 1);
  std::set<std::int64_t> labels(d.labels.begin(), d.labels.end());
  EXPECT_EQ(labels.size(), 100U);
}

TEST(SyntheticCifarTest, InstancesOfSameClassDiffer) {
  SyntheticCifarSpec spec;
  SyntheticCifar gen(spec);
  const LabeledImages d = gen.generate(20, 1);
  // Instances 0 and 10 share a class (balanced round-robin labelling).
  ASSERT_EQ(d.labels[0], d.labels[10]);
  const std::int64_t per_image = 3 * 32 * 32;
  Tensor a({per_image});
  Tensor b({per_image});
  std::copy_n(d.images.data(), per_image, a.data());
  std::copy_n(d.images.data() + 10 * per_image, per_image, b.data());
  EXPECT_FALSE(a.allclose(b, 0.01F));
}

TEST(StandardizeTest, ZeroMeanUnitStddev) {
  SyntheticCifarSpec spec;
  SyntheticCifar gen(spec);
  LabeledImages d = gen.generate(64, 1);
  const ChannelStats stats = standardize(d);
  for (int c = 0; c < 3; ++c) EXPECT_GT(stats.stddev[c], 0.0F);
  // Per-channel mean of standardized data ~ 0, stddev ~ 1.
  const std::int64_t hw = 32 * 32;
  for (int c = 0; c < 3; ++c) {
    double sum = 0.0;
    double sq = 0.0;
    for (std::int64_t i = 0; i < d.size(); ++i) {
      const float* p = d.images.data() + (i * 3 + c) * hw;
      for (std::int64_t j = 0; j < hw; ++j) {
        sum += p[j];
        sq += static_cast<double>(p[j]) * p[j];
      }
    }
    const double n = static_cast<double>(d.size() * hw);
    EXPECT_NEAR(sum / n, 0.0, 1e-4);
    EXPECT_NEAR(sq / n, 1.0, 1e-3);
  }
}

TEST(StandardizeTest, ApplyReusesTrainStats) {
  SyntheticCifarSpec spec;
  SyntheticCifar gen(spec);
  LabeledImages train = gen.generate(64, 1);
  LabeledImages test = gen.generate(64, 2);
  const ChannelStats stats = standardize(train);
  const float before = test.images[0];
  apply_standardize(test, stats);
  EXPECT_NEAR(test.images[0], (before - stats.mean[0]) / stats.stddev[0], 1e-5F);
}

TEST(BatchIteratorTest, CoversAllSamplesOnce) {
  SyntheticCifarSpec spec;
  spec.image_size = 8;
  SyntheticCifar gen(spec);
  const LabeledImages d = gen.generate(25, 1);
  Rng rng(1);
  BatchIterator it(d, 8, rng);
  EXPECT_EQ(it.num_batches(), 4);
  std::int64_t total = 0;
  for (std::int64_t b = 0; b < it.num_batches(); ++b) total += it.batch(b).size();
  EXPECT_EQ(total, 25);
  EXPECT_EQ(it.batch(3).size(), 1);  // short final batch
}

TEST(BatchIteratorTest, NoShuffleIsIdentityOrder) {
  SyntheticCifarSpec spec;
  spec.image_size = 8;
  SyntheticCifar gen(spec);
  const LabeledImages d = gen.generate(10, 1);
  Rng rng(1);
  BatchIterator it(d, 10, rng, /*shuffle_each_epoch=*/false);
  const Batch batch = it.batch(0);
  EXPECT_EQ(batch.labels, d.labels);
}

TEST(BatchIteratorTest, ReshufflesAcrossEpochs) {
  SyntheticCifarSpec spec;
  spec.image_size = 8;
  SyntheticCifar gen(spec);
  const LabeledImages d = gen.generate(64, 1);
  Rng rng(1);
  BatchIterator it(d, 64, rng);
  const std::vector<std::int64_t> first = it.batch(0).labels;
  it.next_epoch();
  EXPECT_NE(it.batch(0).labels, first);
}

TEST(BatchIteratorTest, Validates) {
  SyntheticCifarSpec spec;
  spec.image_size = 8;
  SyntheticCifar gen(spec);
  const LabeledImages d = gen.generate(4, 1);
  Rng rng(1);
  EXPECT_THROW(BatchIterator(d, 0, rng), std::invalid_argument);
  BatchIterator it(d, 2, rng);
  EXPECT_THROW(it.batch(2), std::out_of_range);
  EXPECT_THROW(it.batch(-1), std::out_of_range);
}

TEST(AugmentTest, PreservesShapeAndFinite) {
  SyntheticCifarSpec spec;
  SyntheticCifar gen(spec);
  const LabeledImages d = gen.generate(8, 1);
  Rng rng(2);
  BatchIterator it(d, 8, rng, false);
  Batch batch = it.batch(0);
  const Shape before = batch.images.shape();
  augment_batch(batch, AugmentSpec{}, rng);
  EXPECT_EQ(batch.images.shape(), before);
  for (std::int64_t i = 0; i < batch.images.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(batch.images[i]));
  }
}

TEST(AugmentTest, NoOpsWhenDisabled) {
  SyntheticCifarSpec spec;
  spec.image_size = 8;
  SyntheticCifar gen(spec);
  const LabeledImages d = gen.generate(4, 1);
  Rng rng(3);
  BatchIterator it(d, 4, rng, false);
  Batch batch = it.batch(0);
  const Tensor original = batch.images;
  AugmentSpec aug;
  aug.random_crop = false;
  aug.horizontal_flip = false;
  augment_batch(batch, aug, rng);
  EXPECT_TRUE(batch.images.allclose(original));
}

TEST(AugmentTest, FlipIsInvolution) {
  // Flipping twice with forced flips restores the image; we emulate forced
  // flips by checking that crop-only leaves row-sums invariant under flip.
  SyntheticCifarSpec spec;
  spec.image_size = 8;
  SyntheticCifar gen(spec);
  const LabeledImages d = gen.generate(2, 1);
  Rng rng(4);
  BatchIterator it(d, 2, rng, false);
  Batch batch = it.batch(0);
  AugmentSpec aug;
  aug.random_crop = false;
  aug.horizontal_flip = true;
  Tensor before = batch.images;
  // Row sums are flip-invariant regardless of which images were flipped.
  augment_batch(batch, aug, rng);
  for (std::int64_t n = 0; n < 2; ++n) {
    for (std::int64_t c = 0; c < 3; ++c) {
      for (std::int64_t y = 0; y < 8; ++y) {
        double sb = 0.0;
        double sa = 0.0;
        for (std::int64_t x = 0; x < 8; ++x) {
          sb += before.at(n, c, y, x);
          sa += batch.images.at(n, c, y, x);
        }
        EXPECT_NEAR(sa, sb, 1e-4);
      }
    }
  }
}

}  // namespace
}  // namespace ullsnn::data
