#include "src/tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/tensor/random.h"

namespace ullsnn {
namespace {

// Reference O(n^3) matmul for cross-checking the optimized kernels.
void naive_matmul(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

class MatmulTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(17);
  Tensor a({m, k});
  Tensor b({k, n});
  uniform_fill(a, -1.0F, 1.0F, rng);
  uniform_fill(b, -1.0F, 1.0F, rng);
  Tensor expected({m, n});
  naive_matmul(a.data(), b.data(), expected.data(), m, k, n);

  Tensor c({m, n});
  matmul(a.data(), b.data(), c.data(), m, k, n);
  EXPECT_TRUE(c.allclose(expected, 1e-4F));

  // matmul_at: pass a stored as [k, m] such that a_t^T == a.
  Tensor a_t({k, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) a_t.at(kk, i) = a.at(i, kk);
  }
  Tensor c_at({m, n});
  matmul_at(a_t.data(), b.data(), c_at.data(), m, k, n);
  EXPECT_TRUE(c_at.allclose(expected, 1e-4F));

  // matmul_bt: pass b stored as [n, k] such that b_t^T == b.
  Tensor b_t({n, k});
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t j = 0; j < n; ++j) b_t.at(j, kk) = b.at(kk, j);
  }
  Tensor c_bt({m, n});
  matmul_bt(a.data(), b_t.data(), c_bt.data(), m, k, n);
  EXPECT_TRUE(c_bt.allclose(expected, 1e-4F));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulTest,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                                           std::tuple{7, 5, 3}, std::tuple{16, 16, 16},
                                           std::tuple{33, 17, 9}, std::tuple{1, 64, 1}));

TEST(MatmulTest, AccumulateAddsIntoC) {
  Tensor a = Tensor::of({1, 2}).reshape({1, 2});
  Tensor b = Tensor::of({3, 4}).reshape({2, 1});
  Tensor c({1, 1}, 10.0F);
  matmul(a.data(), b.data(), c.data(), 1, 2, 1, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c[0], 10.0F + 11.0F);
}

TEST(MatmulTest, TensorOverloadChecksShapes) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
  Tensor ok = matmul(Tensor({2, 3}, 1.0F), Tensor({3, 4}, 1.0F));
  EXPECT_EQ(ok.shape(), Shape({2, 4}));
  EXPECT_FLOAT_EQ(ok[0], 3.0F);
}

TEST(Im2colTest, RoundTripConservesMass) {
  // col2im(im2col(x)) multiplies each pixel by the number of windows
  // containing it; total mass relation: sum(cols) == sum(col2im result
  // applied to ones)? Simpler invariant: sum(cols) equals sum over pixels of
  // (pixel value * windows containing it), which equals sum(col2im(ones as
  // cols) * x). We verify with an explicit small case instead.
  Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 1;
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;
  Tensor img({1, 1, 3, 3});
  for (std::int64_t i = 0; i < 9; ++i) img[i] = static_cast<float>(i + 1);
  const std::int64_t oh = spec.out_extent(3);
  ASSERT_EQ(oh, 3);
  std::vector<float> cols(static_cast<std::size_t>(9 * 9), 0.0F);
  im2col(img.data(), cols.data(), 1, 3, 3, spec);
  // Center kernel position (ky=1,kx=1) row must equal the image itself.
  const float* center = cols.data() + 4 * 9;
  for (std::int64_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(center[i], img[i]);
  // Top-left kernel position (ky=0,kx=0): output (0,0) looks at (-1,-1) -> 0.
  EXPECT_FLOAT_EQ(cols[0], 0.0F);
  // Output (1,1) at (ky=0,kx=0) looks at pixel (0,0) = 1.
  EXPECT_FLOAT_EQ(cols[4], 1.0F);

  Tensor back({1, 1, 3, 3});
  col2im(cols.data(), back.data(), 1, 3, 3, spec);
  // Each pixel is counted once per window that contains it. Corner pixel
  // (0,0) is in 4 windows, edge in 6, center in 9.
  EXPECT_FLOAT_EQ(back[0], 4.0F * img[0]);
  EXPECT_FLOAT_EQ(back[1], 6.0F * img[1]);
  EXPECT_FLOAT_EQ(back[4], 9.0F * img[4]);
}

// Direct (no im2col) convolution reference.
void naive_conv(const Tensor& input, const Tensor& weight, Tensor& output,
                const Conv2dSpec& spec) {
  const std::int64_t batch = input.dim(0);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  output.fill(0.0F);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t co = 0; co < spec.out_channels; ++co) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          double acc = 0.0;
          for (std::int64_t ci = 0; ci < spec.in_channels; ++ci) {
            for (std::int64_t ky = 0; ky < spec.kernel; ++ky) {
              for (std::int64_t kx = 0; kx < spec.kernel; ++kx) {
                const std::int64_t iy = oy * spec.stride + ky - spec.pad;
                const std::int64_t ix = ox * spec.stride + kx - spec.pad;
                if (iy < 0 || iy >= height || ix < 0 || ix >= width) continue;
                acc += static_cast<double>(input.at(n, ci, iy, ix)) *
                       weight.at(co, ci, ky, kx);
              }
            }
          }
          output.at(n, co, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
}

struct ConvCase {
  std::int64_t batch, cin, cout, size, kernel, stride, pad;
};

class ConvTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvTest, ForwardMatchesNaive) {
  const ConvCase& cc = GetParam();
  Conv2dSpec spec{cc.cin, cc.cout, cc.kernel, cc.stride, cc.pad};
  Rng rng(5);
  Tensor input({cc.batch, cc.cin, cc.size, cc.size});
  Tensor weight({cc.cout, cc.cin, cc.kernel, cc.kernel});
  uniform_fill(input, -1.0F, 1.0F, rng);
  uniform_fill(weight, -0.5F, 0.5F, rng);
  const std::int64_t o = spec.out_extent(cc.size);
  Tensor expected({cc.batch, cc.cout, o, o});
  naive_conv(input, weight, expected, spec);
  Tensor actual({cc.batch, cc.cout, o, o});
  conv2d_forward(input, weight, Tensor(), actual, spec);
  EXPECT_TRUE(actual.allclose(expected, 1e-4F));
}

TEST_P(ConvTest, BackwardMatchesFiniteDifference) {
  const ConvCase& cc = GetParam();
  Conv2dSpec spec{cc.cin, cc.cout, cc.kernel, cc.stride, cc.pad};
  Rng rng(6);
  Tensor input({cc.batch, cc.cin, cc.size, cc.size});
  Tensor weight({cc.cout, cc.cin, cc.kernel, cc.kernel});
  uniform_fill(input, -1.0F, 1.0F, rng);
  uniform_fill(weight, -0.5F, 0.5F, rng);
  const std::int64_t o = spec.out_extent(cc.size);
  Tensor out({cc.batch, cc.cout, o, o});

  // Scalar objective: L = sum(conv(x, w) * g) for a fixed random g, so
  // dL/dout = g exactly.
  Tensor g(out.shape());
  uniform_fill(g, -1.0F, 1.0F, rng);

  Tensor grad_input(input.shape());
  Tensor grad_weight(weight.shape());
  conv2d_backward(input, weight, g, &grad_input, grad_weight, nullptr, spec);

  const auto loss = [&](const Tensor& x, const Tensor& w) {
    Tensor y(out.shape());
    conv2d_forward(x, w, Tensor(), y, spec);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(y[i]) * g[i];
    }
    return acc;
  };

  const float eps = 1e-2F;
  // Spot-check a handful of coordinates of each gradient.
  for (std::int64_t idx : {std::int64_t{0}, input.numel() / 2, input.numel() - 1}) {
    Tensor xp = input;
    Tensor xm = input;
    xp[idx] += eps;
    xm[idx] -= eps;
    const double fd = (loss(xp, weight) - loss(xm, weight)) / (2.0 * eps);
    EXPECT_NEAR(grad_input[idx], fd, 2e-2) << "input idx " << idx;
  }
  for (std::int64_t idx : {std::int64_t{0}, weight.numel() / 2, weight.numel() - 1}) {
    Tensor wp = weight;
    Tensor wm = weight;
    wp[idx] += eps;
    wm[idx] -= eps;
    const double fd = (loss(input, wp) - loss(input, wm)) / (2.0 * eps);
    EXPECT_NEAR(grad_weight[idx], fd, 2e-2) << "weight idx " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConvTest,
    ::testing::Values(ConvCase{1, 1, 1, 4, 3, 1, 1}, ConvCase{2, 3, 4, 6, 3, 1, 1},
                      ConvCase{1, 2, 3, 8, 3, 2, 1}, ConvCase{2, 4, 2, 5, 1, 1, 0},
                      ConvCase{1, 2, 2, 7, 5, 2, 2}));

TEST(ConvTest, BiasAddsPerChannel) {
  Conv2dSpec spec{1, 2, 1, 1, 0};
  Tensor input({1, 1, 2, 2}, 0.0F);
  Tensor weight({2, 1, 1, 1}, 0.0F);
  Tensor bias = Tensor::of({1.5F, -2.0F});
  Tensor out({1, 2, 2, 2});
  conv2d_forward(input, weight, bias, out, spec);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 1.5F);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), -2.0F);
}

TEST(PoolTest, MaxPoolForwardAndArgmax) {
  Pool2dSpec spec;  // 2x2 stride 2
  Tensor input({1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) input[i] = static_cast<float>(i);
  Tensor out({1, 1, 2, 2});
  std::vector<std::int64_t> argmax;
  maxpool2d_forward(input, out, argmax, spec);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 5.0F);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 15.0F);
  EXPECT_EQ(argmax[0], 5);
  EXPECT_EQ(argmax[3], 15);

  Tensor gout({1, 1, 2, 2}, 1.0F);
  Tensor gin({1, 1, 4, 4});
  maxpool2d_backward(gout, argmax, gin);
  EXPECT_FLOAT_EQ(gin[5], 1.0F);
  EXPECT_FLOAT_EQ(gin[0], 0.0F);
  EXPECT_FLOAT_EQ(gin.sum(), 4.0F);
}

TEST(PoolTest, MaxPoolOnNegativeValues) {
  Pool2dSpec spec;
  Tensor input({1, 1, 2, 2});
  input[0] = -5.0F;
  input[1] = -1.0F;
  input[2] = -3.0F;
  input[3] = -2.0F;
  Tensor out({1, 1, 1, 1});
  std::vector<std::int64_t> argmax;
  maxpool2d_forward(input, out, argmax, spec);
  EXPECT_FLOAT_EQ(out[0], -1.0F);
  EXPECT_EQ(argmax[0], 1);
}

TEST(PoolTest, AvgPoolForwardBackward) {
  Pool2dSpec spec;
  Tensor input({1, 2, 2, 2});
  for (std::int64_t i = 0; i < 8; ++i) input[i] = static_cast<float>(i);
  Tensor out({1, 2, 1, 1});
  avgpool2d_forward(input, out, spec);
  EXPECT_FLOAT_EQ(out[0], 1.5F);
  EXPECT_FLOAT_EQ(out[1], 5.5F);

  Tensor gout({1, 2, 1, 1}, 4.0F);
  Tensor gin({1, 2, 2, 2});
  avgpool2d_backward(gout, gin, spec);
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(gin[i], 1.0F);
}

TEST(PoolTest, StridedPoolShapes) {
  Pool2dSpec spec{3, 2};
  EXPECT_EQ(spec.out_extent(7), 3);
  Tensor input({1, 1, 7, 7}, 1.0F);
  Tensor out({1, 1, 3, 3});
  std::vector<std::int64_t> argmax;
  maxpool2d_forward(input, out, argmax, spec);
  EXPECT_FLOAT_EQ(out.sum(), 9.0F);
}

TEST(ConvSpecTest, OutExtent) {
  Conv2dSpec spec{1, 1, 3, 1, 1};
  EXPECT_EQ(spec.out_extent(32), 32);
  spec.stride = 2;
  EXPECT_EQ(spec.out_extent(32), 16);
  spec.pad = 0;
  EXPECT_EQ(spec.out_extent(32), 15);
}

}  // namespace
}  // namespace ullsnn
