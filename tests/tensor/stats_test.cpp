#include "src/tensor/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/random.h"

namespace ullsnn {
namespace {

TEST(PercentileTest, MedianOfOddCount) {
  EXPECT_FLOAT_EQ(percentile({3, 1, 2}, 50.0F), 2.0F);
}

TEST(PercentileTest, InterpolatesBetweenOrderStatistics) {
  // Sorted {10, 20}: p75 -> 10 + 0.75*(20-10) = 17.5 (numpy convention).
  EXPECT_FLOAT_EQ(percentile({20, 10}, 75.0F), 17.5F);
}

TEST(PercentileTest, Extremes) {
  std::vector<float> v = {5, 1, 9, 3};
  EXPECT_FLOAT_EQ(percentile(v, 0.0F), 1.0F);
  EXPECT_FLOAT_EQ(percentile(v, 100.0F), 9.0F);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_FLOAT_EQ(percentile({42.0F}, 37.0F), 42.0F);
}

TEST(PercentileTest, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50.0F), std::invalid_argument);
  EXPECT_THROW(percentile({1.0F}, -1.0F), std::invalid_argument);
  EXPECT_THROW(percentile({1.0F}, 101.0F), std::invalid_argument);
}

TEST(PercentileGridTest, MonotoneAndAnchored) {
  Rng rng(3);
  std::vector<float> v(10000);
  for (auto& x : v) x = rng.normal();
  const std::vector<float> grid = percentile_grid(v);
  ASSERT_EQ(grid.size(), 101U);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_LE(grid[i - 1], grid[i]);
  EXPECT_FLOAT_EQ(grid[0], *std::min_element(v.begin(), v.end()));
  EXPECT_FLOAT_EQ(grid[100], *std::max_element(v.begin(), v.end()));
  EXPECT_NEAR(grid[50], 0.0F, 0.05F);
}

TEST(HistogramTest, CountsAndTotal) {
  const Histogram h = make_histogram({0.1F, 0.2F, 0.6F, 0.9F, 1.5F}, 0.0F, 1.0F, 4);
  EXPECT_EQ(h.total, 5);
  EXPECT_EQ(h.counts[0], 2);  // [0, .25): 0.1, 0.2
  EXPECT_EQ(h.counts[2], 1);  // [.5, .75): 0.6
  EXPECT_EQ(h.counts[3], 1);  // [.75, 1): 0.9; 1.5 is out of range
}

TEST(HistogramTest, FractionIn) {
  std::vector<float> v;
  for (int i = 0; i < 1000; ++i) v.push_back(static_cast<float>(i) / 1000.0F);
  const Histogram h = make_histogram(v, 0.0F, 1.0F, 100);
  EXPECT_NEAR(h.fraction_in(0.0F, 0.5F), 0.5, 0.02);
  EXPECT_NEAR(h.fraction_in(0.25F, 0.75F), 0.5, 0.02);
  EXPECT_NEAR(h.fraction_in(0.0F, 1.0F), 1.0, 0.01);
  EXPECT_EQ(h.fraction_in(0.5F, 0.5F), 0.0);
}

TEST(HistogramTest, DensityUniform) {
  std::vector<float> v;
  for (int i = 0; i < 10000; ++i) v.push_back(static_cast<float>(i) / 10000.0F);
  const Histogram h = make_histogram(v, 0.0F, 1.0F, 50);
  EXPECT_NEAR(h.density_at(0.3F), 1.0, 0.05);
  EXPECT_EQ(h.density_at(-0.1F), 0.0);
  EXPECT_EQ(h.density_at(1.0F), 0.0);
}

TEST(HistogramTest, Validation) {
  EXPECT_THROW(make_histogram({}, 0.0F, 1.0F, 0), std::invalid_argument);
  EXPECT_THROW(make_histogram({}, 1.0F, 0.0F, 4), std::invalid_argument);
}

TEST(MomentsTest, GaussianMoments) {
  Rng rng(7);
  std::vector<float> v(100000);
  for (auto& x : v) x = rng.normal(2.0F, 3.0F);
  const Moments m = compute_moments(v);
  EXPECT_NEAR(m.mean, 2.0, 0.05);
  EXPECT_NEAR(m.stddev, 3.0, 0.05);
  EXPECT_NEAR(m.skewness, 0.0, 0.05);
}

TEST(MomentsTest, SkewedSample) {
  // Exponential-ish: heavily right-skewed.
  Rng rng(11);
  std::vector<float> v(50000);
  for (auto& x : v) x = -std::log(1.0F - rng.uniform());
  const Moments m = compute_moments(v);
  EXPECT_GT(m.skewness, 1.5);
  EXPECT_NEAR(m.mean, 1.0, 0.05);
}

TEST(MomentsTest, EmptyIsZero) {
  const Moments m = compute_moments({});
  EXPECT_EQ(m.mean, 0.0);
  EXPECT_EQ(m.stddev, 0.0);
}

TEST(AppendSamplesTest, StrideSubsamples) {
  Tensor t({10});
  for (std::int64_t i = 0; i < 10; ++i) t[i] = static_cast<float>(i);
  std::vector<float> out;
  append_samples(t, out, 3);
  EXPECT_EQ(out, (std::vector<float>{0, 3, 6, 9}));
  append_samples(t, out, 1);
  EXPECT_EQ(out.size(), 14U);
  EXPECT_THROW(append_samples(t, out, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ullsnn
