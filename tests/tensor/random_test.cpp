#include "src/tensor/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

namespace ullsnn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.uniform();
    EXPECT_GE(u, 0.0F);
    EXPECT_LT(u, 1.0F);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, UniformBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.uniform(-3.0F, 5.0F);
    EXPECT_GE(u, -3.0F);
    EXPECT_LT(u, 5.0F);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0F, 0.5F);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(23);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);
}

TEST(RngTest, UniformIntRejectsNonPositive) {
  Rng rng(29);
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_int(-1), std::invalid_argument);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3F) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(41);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next_u64() == child.next_u64() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(ShuffleTest, PermutesAllElements) {
  Rng rng(43);
  std::vector<std::int64_t> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<std::int64_t> original = v;
  shuffle(v, rng);
  EXPECT_NE(v, original);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(InitTest, KaimingStddev) {
  Rng rng(47);
  Tensor w({64, 64, 3, 3});
  const std::int64_t fan_in = 64 * 9;
  kaiming_normal(w, fan_in, rng);
  const float expected = std::sqrt(2.0F / static_cast<float>(fan_in));
  EXPECT_NEAR(w.rms(), expected, expected * 0.05F);
  EXPECT_NEAR(w.mean(), 0.0F, expected * 0.05F);
}

TEST(InitTest, KaimingRejectsBadFanIn) {
  Rng rng(1);
  Tensor w({4});
  EXPECT_THROW(kaiming_normal(w, 0, rng), std::invalid_argument);
}

TEST(InitTest, XavierBounds) {
  Rng rng(53);
  Tensor w({100, 100});
  xavier_uniform(w, 100, 100, rng);
  const float limit = std::sqrt(6.0F / 200.0F);
  EXPECT_LE(w.max(), limit);
  EXPECT_GE(w.min(), -limit);
  EXPECT_NEAR(w.mean(), 0.0F, 0.01F);
}

TEST(InitTest, UniformFillBounds) {
  Rng rng(59);
  Tensor w({1000});
  uniform_fill(w, 2.0F, 3.0F, rng);
  EXPECT_GE(w.min(), 2.0F);
  EXPECT_LT(w.max(), 3.0F);
}

}  // namespace
}  // namespace ullsnn
