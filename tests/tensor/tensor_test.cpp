#include "src/tensor/tensor.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace ullsnn {
namespace {

TEST(ShapeTest, NumelOfEmptyShapeIsOne) { EXPECT_EQ(shape_numel({}), 1); }

TEST(ShapeTest, NumelMultipliesExtents) { EXPECT_EQ(shape_numel({2, 3, 4}), 24); }

TEST(ShapeTest, NumelZeroExtent) { EXPECT_EQ(shape_numel({2, 0, 4}), 0); }

TEST(ShapeTest, NumelRejectsNegative) {
  EXPECT_THROW(shape_numel({2, -1}), std::invalid_argument);
}

TEST(ShapeTest, ToString) { EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]"); }

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.rank(), 0);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(TensorTest, FillConstructor) {
  Tensor t({4}, 2.5F);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5F);
}

TEST(TensorTest, VectorConstructorChecksSize) {
  EXPECT_THROW(Tensor({3}, std::vector<float>{1.0F, 2.0F}), std::invalid_argument);
}

TEST(TensorTest, OfBuildsRank1) {
  Tensor t = Tensor::of({1.0F, 2.0F, 3.0F});
  EXPECT_EQ(t.shape(), Shape({3}));
  EXPECT_EQ(t[1], 2.0F);
}

TEST(TensorTest, DimSupportsNegativeIndex) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_THROW(t.dim(3), std::out_of_range);
  EXPECT_THROW(t.dim(-4), std::out_of_range);
}

TEST(TensorTest, MultiDimAccessors) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0F;
  EXPECT_EQ(t[5], 7.0F);
  const Tensor& ct = t;
  EXPECT_EQ(ct.at(1, 2), 7.0F);
}

TEST(TensorTest, At4d) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0F;
  EXPECT_EQ(t[t.numel() - 1], 9.0F);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::of({1, 2, 3, 4, 5, 6});
  Tensor r = t.reshape({2, 3});
  EXPECT_EQ(r.shape(), Shape({2, 3}));
  EXPECT_EQ(r.at(1, 0), 4.0F);
}

TEST(TensorTest, ReshapeInfersExtent) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.reshape({2, -1}).shape(), Shape({2, 12}));
  EXPECT_EQ(t.reshape({-1}).shape(), Shape({24}));
}

TEST(TensorTest, ReshapeRejectsBadShapes) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshape({4}), std::invalid_argument);
  EXPECT_THROW(t.reshape({-1, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshape({-1, 5}), std::invalid_argument);
}

TEST(TensorTest, ElementwiseArithmetic) {
  Tensor a = Tensor::of({1, 2, 3});
  Tensor b = Tensor::of({4, 5, 6});
  Tensor sum = a + b;
  EXPECT_EQ(sum[0], 5.0F);
  EXPECT_EQ(sum[2], 9.0F);
  Tensor diff = b - a;
  EXPECT_EQ(diff[1], 3.0F);
  Tensor prod = a * b;
  EXPECT_EQ(prod[2], 18.0F);
  Tensor scaled = a * 2.0F;
  EXPECT_EQ(scaled[1], 4.0F);
}

TEST(TensorTest, ArithmeticShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a *= b, std::invalid_argument);
}

TEST(TensorTest, Reductions) {
  Tensor t = Tensor::of({1, -2, 3, 4});
  EXPECT_FLOAT_EQ(t.sum(), 6.0F);
  EXPECT_FLOAT_EQ(t.mean(), 1.5F);
  EXPECT_FLOAT_EQ(t.min(), -2.0F);
  EXPECT_FLOAT_EQ(t.max(), 4.0F);
  EXPECT_EQ(t.argmax(), 3);
}

TEST(TensorTest, ReductionsOnEmptyThrow) {
  Tensor t;
  EXPECT_THROW(t.min(), std::logic_error);
  EXPECT_THROW(t.max(), std::logic_error);
  EXPECT_THROW(t.argmax(), std::logic_error);
  EXPECT_EQ(t.mean(), 0.0F);
}

TEST(TensorTest, Rms) {
  Tensor t = Tensor::of({3, 4});
  EXPECT_NEAR(t.rms(), 3.5355339F, 1e-5F);
}

TEST(TensorTest, Count) {
  Tensor t = Tensor::of({1, -1, 2, -2, 0});
  EXPECT_EQ(t.count([](float x) { return x > 0.0F; }), 2);
}

TEST(TensorTest, Apply) {
  Tensor t = Tensor::of({1, 2, 3});
  t.apply([](float x) { return x * x; });
  EXPECT_EQ(t[2], 9.0F);
}

TEST(TensorTest, Allclose) {
  Tensor a = Tensor::of({1.0F, 2.0F});
  Tensor b = Tensor::of({1.0F + 1e-7F, 2.0F});
  EXPECT_TRUE(a.allclose(b));
  Tensor c = Tensor::of({1.1F, 2.0F});
  EXPECT_FALSE(a.allclose(c));
  Tensor d({3});
  EXPECT_FALSE(a.allclose(d));
}

TEST(TensorTest, StreamOutputTruncates) {
  Tensor t({20}, 1.0F);
  std::ostringstream os;
  os << t;
  EXPECT_NE(os.str().find("..."), std::string::npos);
}

}  // namespace
}  // namespace ullsnn
