// Kernel-equivalence suite (`ctest -L kernels`): the blocked/packed GEMM,
// the im2row conv paths, the sparse spike kernels, and the arena are all
// checked against the retained naive kernels (and double-precision
// references) across a geometry matrix of odd sizes, strides, pads, and
// k=1 cases. Also pins the determinism contract: conv2d_backward gradients
// are bitwise identical at 1 and 4 threads.
#include "src/tensor/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/tensor/arena.h"
#include "src/tensor/ops.h"
#include "src/tensor/random.h"
#include "src/util/parallel.h"

namespace ullsnn {
namespace {

// Force sizes past the naive-fallback cutoff so the blocked path actually
// runs, and cover edge tiles (sizes not multiples of MR/NR/KC).
struct GemmCase {
  std::int64_t m, k, n;
};

class BlockedGemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(BlockedGemmTest, MatchesNaiveAllVariants) {
  const auto [m, k, n] = GetParam();
  Rng rng(11);
  Tensor a({m, k});
  Tensor b({k, n});
  uniform_fill(a, -1.0F, 1.0F, rng);
  uniform_fill(b, -1.0F, 1.0F, rng);
  Tensor expected({m, n});
  matmul_naive(a.data(), b.data(), expected.data(), m, k, n);

  Tensor c({m, n});
  gemm(row_major(a.data(), k), row_major(b.data(), n), c.data(), m, k, n,
       /*accumulate=*/false);
  EXPECT_TRUE(c.allclose(expected, 1e-4F)) << m << "x" << k << "x" << n;

  // Transposed A through the strided view.
  Tensor a_t({k, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) a_t.at(kk, i) = a.at(i, kk);
  }
  Tensor c_at({m, n});
  gemm(transposed(a_t.data(), m), row_major(b.data(), n), c_at.data(), m, k, n,
       /*accumulate=*/false);
  EXPECT_TRUE(c_at.allclose(expected, 1e-4F));

  // Transposed B through the strided view (packing's strided branch).
  Tensor b_t({n, k});
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t j = 0; j < n; ++j) b_t.at(j, kk) = b.at(kk, j);
  }
  Tensor c_bt({m, n});
  gemm(row_major(a.data(), k), transposed(b_t.data(), k), c_bt.data(), m, k, n,
       /*accumulate=*/false);
  EXPECT_TRUE(c_bt.allclose(expected, 1e-4F));

  // accumulate=true adds on top of existing C.
  Tensor c2 = c;
  gemm(row_major(a.data(), k), row_major(b.data(), n), c2.data(), m, k, n,
       /*accumulate=*/true);
  Tensor doubled = expected * 2.0F;
  EXPECT_TRUE(c2.allclose(doubled, 2e-4F));
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, BlockedGemmTest,
    ::testing::Values(GemmCase{64, 64, 64},      // all full tiles
                      GemmCase{37, 41, 43},      // all-odd edge tiles
                      GemmCase{6, 256, 32},      // exactly one MR x NR column
                      GemmCase{97, 257, 129},    // straddles MC/KC/NC blocks
                      GemmCase{1, 300, 33},      // single-row A
                      GemmCase{128, 1, 64},      // k=1 (degenerate K loop)
                      GemmCase{200, 64, 9}));    // ragged, narrow N

TEST(BlockedGemmTest, PackedBReuseAcrossCalls) {
  Rng rng(12);
  const std::int64_t m = 48, k = 96, n = 64;
  Tensor a1({m, k}), a2({m, k}), b({k, n});
  uniform_fill(a1, -1.0F, 1.0F, rng);
  uniform_fill(a2, -1.0F, 1.0F, rng);
  uniform_fill(b, -1.0F, 1.0F, rng);
  Arena& arena = thread_arena();
  ArenaScope scope(arena);
  PackedB packed;
  packed.pack(row_major(b.data(), n), k, n, arena);
  Tensor c1({m, n}), c2({m, n}), e1({m, n}), e2({m, n});
  gemm_packed(row_major(a1.data(), k), packed, c1.data(), m, false);
  gemm_packed(row_major(a2.data(), k), packed, c2.data(), m, false);
  matmul_naive(a1.data(), b.data(), e1.data(), m, k, n);
  matmul_naive(a2.data(), b.data(), e2.data(), m, k, n);
  EXPECT_TRUE(c1.allclose(e1, 1e-4F));
  EXPECT_TRUE(c2.allclose(e2, 1e-4F));
}

TEST(RoutedMatmulTest, LargeShapesTakeBlockedPathAndMatch) {
  // Above the cutoff the public matmul routes to the blocked kernel; the
  // result must still match the naive kernel within float tolerance.
  Rng rng(13);
  const std::int64_t m = 65, k = 70, n = 75;
  Tensor a({m, k}), b({k, n});
  uniform_fill(a, -1.0F, 1.0F, rng);
  uniform_fill(b, -1.0F, 1.0F, rng);
  Tensor blocked({m, n}), naive({m, n});
  matmul(a.data(), b.data(), blocked.data(), m, k, n);
  matmul_naive(a.data(), b.data(), naive.data(), m, k, n);
  EXPECT_TRUE(blocked.allclose(naive, 1e-4F));
}

// ---- sparse spike GEMM ----

Tensor spike_matrix(std::int64_t m, std::int64_t k, float density, Rng& rng) {
  Tensor a({m, k});
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (rng.uniform(0.0F, 1.0F) < density) a[i] = 1.0F;
  }
  return a;
}

TEST(SpmmTest, MatchesDenseAndCountsNonzeros) {
  Rng rng(14);
  const std::int64_t m = 33, k = 127, n = 41;
  for (const float density : {0.0F, 0.02F, 0.1F, 0.5F}) {
    const Tensor a = spike_matrix(m, k, density, rng);
    Tensor b({k, n});
    uniform_fill(b, -1.0F, 1.0F, rng);
    Tensor expected({m, n});
    matmul_naive(a.data(), b.data(), expected.data(), m, k, n);
    Tensor c({m, n});
    const std::int64_t nnz =
        spmm_row_compressed(a.data(), b.data(), c.data(), m, k, n, false);
    EXPECT_TRUE(c.allclose(expected, 1e-4F)) << "density " << density;
    EXPECT_EQ(nnz, a.count([](float v) { return v != 0.0F; }));
  }
}

TEST(SpmmTest, AccumulateAddsIntoC) {
  Rng rng(15);
  const std::int64_t m = 8, k = 16, n = 8;
  const Tensor a = spike_matrix(m, k, 0.2F, rng);
  Tensor b({k, n});
  uniform_fill(b, -1.0F, 1.0F, rng);
  Tensor c({m, n}, 1.0F);
  spmm_row_compressed(a.data(), b.data(), c.data(), m, k, n, /*accumulate=*/true);
  Tensor expected({m, n}, 1.0F);
  matmul_naive(a.data(), b.data(), expected.data(), m, k, n, /*accumulate=*/true);
  EXPECT_TRUE(c.allclose(expected, 1e-5F));
}

// ---- spiking dispatch entry points ----

struct SpikeConvCase {
  std::int64_t batch, cin, cout, size, kernel, stride, pad;
  float density;
};

class SpikingConvKernelTest : public ::testing::TestWithParam<SpikeConvCase> {};

TEST_P(SpikingConvKernelTest, SparseAndDenseDispatchAgree) {
  const SpikeConvCase& cc = GetParam();
  Conv2dSpec spec{cc.cin, cc.cout, cc.kernel, cc.stride, cc.pad};
  Rng rng(16);
  Tensor input = spike_matrix(cc.batch, cc.cin * cc.size * cc.size, cc.density, rng)
                     .reshape({cc.batch, cc.cin, cc.size, cc.size});
  Tensor weight({cc.cout, cc.cin, cc.kernel, cc.kernel});
  uniform_fill(weight, -0.5F, 0.5F, rng);
  const std::int64_t o = spec.out_extent(cc.size);

  Tensor expected({cc.batch, cc.cout, o, o});
  conv2d_forward(input, weight, Tensor(), expected, spec);

  // Force the sparse kernel (threshold 1.1 > any density) and the dense
  // kernel (threshold -1) — both must match the reference conv.
  for (const float threshold : {1.1F, -1.0F}) {
    Tensor out({cc.batch, cc.cout, o, o});
    std::vector<float> wt_cache;
    SpikeKernelStats stats;
    conv2d_forward_spiking(input, weight, out, spec, threshold, wt_cache, stats);
    EXPECT_TRUE(out.allclose(expected, 1e-4F))
        << "threshold " << threshold << " geom " << cc.size << "/" << cc.kernel
        << "/" << cc.stride << "/" << cc.pad;
    EXPECT_EQ(stats.nonzeros, input.count([](float v) { return v != 0.0F; }));
    EXPECT_EQ(stats.elements, input.numel());
    EXPECT_EQ(stats.sparse_samples + stats.dense_samples, cc.batch);
    if (threshold > 1.0F) {
      EXPECT_EQ(stats.sparse_samples, cc.batch);
    } else {
      EXPECT_EQ(stats.dense_samples, cc.batch);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, SpikingConvKernelTest,
    ::testing::Values(SpikeConvCase{2, 3, 4, 8, 3, 1, 1, 0.1F},
                      SpikeConvCase{1, 2, 3, 7, 3, 2, 1, 0.3F},   // odd + stride
                      SpikeConvCase{2, 4, 2, 5, 1, 1, 0, 0.05F},  // 1x1 kernel
                      SpikeConvCase{1, 2, 2, 9, 5, 2, 2, 0.2F},   // big kernel
                      SpikeConvCase{1, 1, 1, 4, 3, 1, 0, 0.5F},   // no pad
                      SpikeConvCase{2, 2, 5, 6, 3, 3, 0, 0.1F})); // stride 3

TEST(SpikingConvKernelTest, AllZeroInputGivesZeroOutput) {
  Conv2dSpec spec{2, 3, 3, 1, 1};
  Tensor input({2, 2, 6, 6});
  Tensor weight({3, 2, 3, 3});
  Rng rng(17);
  uniform_fill(weight, -0.5F, 0.5F, rng);
  Tensor out({2, 3, 6, 6}, 7.0F);  // pre-filled: must be overwritten
  std::vector<float> wt_cache;
  SpikeKernelStats stats;
  conv2d_forward_spiking(input, weight, out, spec, 0.1F, wt_cache, stats);
  EXPECT_FLOAT_EQ(out.rms(), 0.0F);
  EXPECT_EQ(stats.nonzeros, 0);
  EXPECT_EQ(stats.sparse_samples, 2);
}

TEST(SpikingLinearKernelTest, SparseAndDenseDispatchAgree) {
  Rng rng(18);
  const std::int64_t batch = 5, in = 130, out_f = 37;
  Tensor weight({out_f, in});
  uniform_fill(weight, -0.5F, 0.5F, rng);
  for (const float density : {0.02F, 0.4F}) {
    const Tensor input = spike_matrix(batch, in, density, rng);
    Tensor expected({batch, out_f});
    matmul_bt_naive(input.data(), weight.data(), expected.data(), batch, in, out_f);
    for (const float threshold : {1.1F, -1.0F}) {
      Tensor out({batch, out_f});
      std::vector<float> wt_cache;
      SpikeKernelStats stats;
      linear_forward_spiking(input, weight, out, threshold, wt_cache, stats);
      EXPECT_TRUE(out.allclose(expected, 1e-4F))
          << "density " << density << " threshold " << threshold;
      EXPECT_EQ(stats.nonzeros, input.count([](float v) { return v != 0.0F; }));
      EXPECT_EQ(stats.elements, input.numel());
    }
  }
}

TEST(SpikingLinearKernelTest, WtCacheSurvivesRepeatCallsAndStatsAccumulate) {
  Rng rng(19);
  const std::int64_t batch = 3, in = 64, out_f = 16;
  Tensor weight({out_f, in});
  uniform_fill(weight, -0.5F, 0.5F, rng);
  const Tensor input = spike_matrix(batch, in, 0.05F, rng);
  Tensor expected({batch, out_f});
  matmul_bt_naive(input.data(), weight.data(), expected.data(), batch, in, out_f);
  std::vector<float> wt_cache;
  SpikeKernelStats stats;
  for (int t = 0; t < 3; ++t) {
    Tensor out({batch, out_f});
    linear_forward_spiking(input, weight, out, 1.0F, wt_cache, stats);
    EXPECT_TRUE(out.allclose(expected, 1e-4F)) << "step " << t;
  }
  EXPECT_EQ(stats.elements, 3 * batch * in);
  EXPECT_EQ(stats.nonzeros, 3 * input.count([](float v) { return v != 0.0F; }));
}

// ---- im2row / row2im ----

TEST(Im2rowTest, AgreesWithIm2colTransposed) {
  Conv2dSpec spec{2, 1, 3, 2, 1};
  const std::int64_t h = 7, w = 5;
  Rng rng(20);
  Tensor img({1, 2, h, w});
  uniform_fill(img, -1.0F, 1.0F, rng);
  const std::int64_t oh = spec.out_extent(h), ow = spec.out_extent(w);
  const std::int64_t patch = 2 * 3 * 3;
  std::vector<float> cols(static_cast<std::size_t>(patch * oh * ow));
  std::vector<float> rows(static_cast<std::size_t>(oh * ow * patch));
  im2col(img.data(), cols.data(), 2, h, w, spec);
  im2row(img.data(), rows.data(), 2, h, w, spec);
  for (std::int64_t p = 0; p < patch; ++p) {
    for (std::int64_t px = 0; px < oh * ow; ++px) {
      EXPECT_FLOAT_EQ(rows[static_cast<std::size_t>(px * patch + p)],
                      cols[static_cast<std::size_t>(p * oh * ow + px)]);
    }
  }
  // row2im must invert like col2im does.
  Tensor back_rows({1, 2, h, w});
  Tensor back_cols({1, 2, h, w});
  row2im(rows.data(), back_rows.data(), 2, h, w, spec);
  col2im(cols.data(), back_cols.data(), 2, h, w, spec);
  EXPECT_TRUE(back_rows.allclose(back_cols, 1e-6F));
}

// ---- determinism ----

class ThreadGuard {
 public:
  ~ThreadGuard() { set_num_threads(1); }
};

TEST(DeterminismTest, ConvBackwardBitwiseIdentical1v4Threads) {
  ThreadGuard guard;
  Rng rng(21);
  Conv2dSpec spec{3, 8, 3, 1, 1};
  Tensor input({6, 3, 12, 12});
  Tensor weight({8, 3, 3, 3});
  Tensor grad_output({6, 8, 12, 12});
  uniform_fill(input, -1.0F, 1.0F, rng);
  uniform_fill(weight, -0.5F, 0.5F, rng);
  uniform_fill(grad_output, -1.0F, 1.0F, rng);
  Tensor bias_grad1({8}), bias_grad4({8});

  set_num_threads(1);
  Tensor gi1(input.shape()), gw1(weight.shape());
  conv2d_backward(input, weight, grad_output, &gi1, gw1, &bias_grad1, spec);

  set_num_threads(4);
  Tensor gi4(input.shape()), gw4(weight.shape());
  conv2d_backward(input, weight, grad_output, &gi4, gw4, &bias_grad4, spec);

  // Bitwise, not approximate: fixed-order per-sample reduction.
  for (std::int64_t i = 0; i < gw1.numel(); ++i) EXPECT_EQ(gw1[i], gw4[i]) << i;
  for (std::int64_t i = 0; i < gi1.numel(); ++i) EXPECT_EQ(gi1[i], gi4[i]) << i;
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_EQ(bias_grad1[i], bias_grad4[i]);
}

TEST(DeterminismTest, SpikingConvBitwiseIdentical1v4Threads) {
  ThreadGuard guard;
  Rng rng(22);
  Conv2dSpec spec{2, 4, 3, 1, 1};
  Tensor input = spike_matrix(6, 2 * 10 * 10, 0.05F, rng).reshape({6, 2, 10, 10});
  Tensor weight({4, 2, 3, 3});
  uniform_fill(weight, -0.5F, 0.5F, rng);

  set_num_threads(1);
  Tensor out1({6, 4, 10, 10});
  std::vector<float> cache1;
  SpikeKernelStats stats1;
  conv2d_forward_spiking(input, weight, out1, spec, 0.1F, cache1, stats1);

  set_num_threads(4);
  Tensor out4({6, 4, 10, 10});
  std::vector<float> cache4;
  SpikeKernelStats stats4;
  conv2d_forward_spiking(input, weight, out4, spec, 0.1F, cache4, stats4);

  for (std::int64_t i = 0; i < out1.numel(); ++i) EXPECT_EQ(out1[i], out4[i]) << i;
  EXPECT_EQ(stats1.nonzeros, stats4.nonzeros);
  EXPECT_EQ(stats1.sparse_samples, stats4.sparse_samples);
}

// ---- arena ----

TEST(ArenaTest, PointersStableAcrossGrowth) {
  Arena arena;
  float* first = arena.alloc_floats(100);
  first[0] = 42.0F;
  first[99] = 7.0F;
  // Demand far beyond the first chunk: growth must not move live data.
  for (int i = 0; i < 64; ++i) {
    float* p = arena.alloc_floats(1 << 16);
    p[0] = static_cast<float>(i);
  }
  EXPECT_FLOAT_EQ(first[0], 42.0F);
  EXPECT_FLOAT_EQ(first[99], 7.0F);
}

TEST(ArenaTest, ScopeRestoresWatermark) {
  Arena arena;
  arena.alloc_floats(64);
  const std::size_t before = arena.capacity_bytes();
  float* outer = arena.alloc_floats(16);
  outer[0] = 1.0F;
  {
    ArenaScope scope(arena);
    float* inner = arena.alloc_floats(1 << 14);
    inner[0] = 2.0F;
  }
  // After scope exit the next allocation reuses the released space; the
  // pre-scope allocation is untouched.
  float* again = arena.alloc_floats(1 << 14);
  EXPECT_FLOAT_EQ(outer[0], 1.0F);
  again[0] = 3.0F;
  (void)before;
}

TEST(ArenaTest, AlignmentIs64Bytes) {
  Arena arena;
  for (const std::size_t count : {1UL, 3UL, 17UL, 1000UL}) {
    auto p = reinterpret_cast<std::uintptr_t>(arena.alloc_floats(count));
    EXPECT_EQ(p % 64, 0U) << count;
    auto q = reinterpret_cast<std::uintptr_t>(arena.alloc_indices(count));
    EXPECT_EQ(q % 64, 0U) << count;
  }
}

TEST(ArenaTest, ZeroedAllocationIsZero) {
  Arena arena;
  float* dirty = arena.alloc_floats(256);
  for (int i = 0; i < 256; ++i) dirty[i] = 1.0F;
  arena.reset();
  const float* z = arena.alloc_floats_zeroed(256);
  for (int i = 0; i < 256; ++i) EXPECT_FLOAT_EQ(z[i], 0.0F);
}

// ---- pool geometry validation ----

TEST(PoolGeometryTest, ExactTilingAccepted) {
  EXPECT_NO_THROW(validate_pool_geometry(Pool2dSpec{2, 2}, 8, 8));
  EXPECT_NO_THROW(validate_pool_geometry(Pool2dSpec{3, 2}, 7, 7));
  EXPECT_NO_THROW(validate_pool_geometry(Pool2dSpec{2, 2}, 2, 2));
}

TEST(PoolGeometryTest, TruncatingGeometryRejected) {
  EXPECT_THROW(validate_pool_geometry(Pool2dSpec{2, 2}, 7, 8), std::invalid_argument);
  EXPECT_THROW(validate_pool_geometry(Pool2dSpec{2, 2}, 8, 7), std::invalid_argument);
  EXPECT_THROW(validate_pool_geometry(Pool2dSpec{3, 2}, 8, 8), std::invalid_argument);
  EXPECT_THROW(validate_pool_geometry(Pool2dSpec{4, 2}, 3, 3), std::invalid_argument);
}

}  // namespace
}  // namespace ullsnn
