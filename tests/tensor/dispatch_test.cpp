// Dispatch-tier equivalence suite (`ctest -L kernels`): every supported ISA
// tier (scalar / AVX2 / AVX-512, per this machine and build) is forced via
// set_kernel_isa_for_testing and checked against the naive reference; the
// forced-scalar path is pinned bitwise against an embedded copy of the
// pre-dispatch kernel so the fallback can never drift; and the int8 path is
// checked for (a) a per-channel analytic error bound against fp32, (b)
// bitwise-identical results across every tier, and (c) exactness on binary
// spike inputs quantized losslessly.
#include "src/tensor/dispatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "src/obs/build_info.h"
#include "src/obs/metrics.h"
#include "src/tensor/arena.h"
#include "src/tensor/gemm.h"
#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace ullsnn {
namespace {

/// RAII: restore the entry ISA after a forced-tier test.
class IsaGuard {
 public:
  IsaGuard() : entry_(active_kernel_isa()) {}
  ~IsaGuard() { set_kernel_isa_for_testing(entry_); }

 private:
  KernelIsa entry_;
};

struct GemmCase {
  std::int64_t m, k, n;
};

// Odd sizes cover ragged MR/NR/KC edges; 96/256 hits full-tile fast paths;
// k > 256 exercises multiple pc blocks (the int8 colsum is per block).
const GemmCase kCases[] = {
    {1, 1, 1}, {3, 5, 7}, {6, 16, 32}, {13, 31, 17},
    {96, 256, 64}, {50, 300, 33}, {7, 513, 40},
};

class DispatchTierTest : public ::testing::TestWithParam<KernelIsa> {};

TEST_P(DispatchTierTest, Fp32MatchesNaive) {
  IsaGuard guard;
  set_kernel_isa_for_testing(GetParam());
  for (const GemmCase& gc : kCases) {
    Rng rng(17);
    Tensor a({gc.m, gc.k});
    Tensor b({gc.k, gc.n});
    uniform_fill(a, -1.0F, 1.0F, rng);
    uniform_fill(b, -1.0F, 1.0F, rng);
    Tensor expected({gc.m, gc.n});
    matmul_naive(a.data(), b.data(), expected.data(), gc.m, gc.k, gc.n);
    Tensor c({gc.m, gc.n});
    gemm(row_major(a.data(), gc.k), row_major(b.data(), gc.n), c.data(), gc.m,
         gc.k, gc.n, /*accumulate=*/false);
    EXPECT_TRUE(c.allclose(expected, 1e-4F))
        << to_string(GetParam()) << " " << gc.m << "x" << gc.k << "x" << gc.n;
  }
}

TEST_P(DispatchTierTest, Int8BitwiseIdenticalToScalarTier) {
  IsaGuard guard;
  for (const GemmCase& gc : kCases) {
    Rng rng(23);
    Tensor a({gc.m, gc.k});
    Tensor w({gc.n, gc.k});  // [out, in]
    uniform_fill(a, -0.5F, 2.0F, rng);
    uniform_fill(w, -1.0F, 1.0F, rng);
    QuantizedPackedB qb;
    qb.pack(quantize_weight_per_row(w.data(), gc.n, gc.k));

    set_kernel_isa_for_testing(KernelIsa::kScalar);
    Tensor c_scalar({gc.m, gc.n});
    gemm_packed_int8(row_major(a.data(), gc.k), qb, c_scalar.data(), gc.m,
                     /*accumulate=*/false);

    set_kernel_isa_for_testing(GetParam());
    Tensor c_tier({gc.m, gc.n});
    gemm_packed_int8(row_major(a.data(), gc.k), qb, c_tier.data(), gc.m,
                     /*accumulate=*/false);
    // int32 accumulation is exact and the dequant epilogue is shared scalar
    // code, so tiers must agree bit for bit — this is what keeps artifact
    // canary replay valid across machines with different SIMD support.
    EXPECT_EQ(0, std::memcmp(c_scalar.data(), c_tier.data(),
                             static_cast<std::size_t>(gc.m * gc.n) * sizeof(float)))
        << to_string(GetParam()) << " " << gc.m << "x" << gc.k << "x" << gc.n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSupportedTiers, DispatchTierTest,
                         ::testing::ValuesIn(supported_kernel_isas()),
                         [](const ::testing::TestParamInfo<KernelIsa>& info) {
                           return to_string(info.param);
                         });

// The scalar fallback must be the pre-dispatch kernel verbatim. This embeds
// a copy of that kernel (same tile shape the old code compiled to under this
// build's -march) and checks bitwise equality of full gemm results.
namespace legacy {

constexpr std::int64_t kMR = 6;
#if defined(__AVX512F__)
constexpr std::int64_t kNR = 32;
#else
constexpr std::int64_t kNR = 16;
#endif
constexpr std::int64_t kMC = 96;
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kNC = 1024;

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

void micro_kernel(const float* __restrict ap, const float* __restrict bp,
                  float* __restrict c, std::int64_t kc, std::int64_t ldc,
                  std::int64_t rows, std::int64_t cols) {
  float acc[kMR][kNR] = {};
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const float* a = ap + kk * kMR;
    const float* b = bp + kk * kNR;
    for (std::int64_t i = 0; i < kMR; ++i) {
      const float av = a[i];
      for (std::int64_t j = 0; j < kNR; ++j) acc[i][j] += av * b[j];
    }
  }
  if (rows == kMR && cols == kNR) {
    for (std::int64_t i = 0; i < kMR; ++i) {
      float* ci = c + i * ldc;
      for (std::int64_t j = 0; j < kNR; ++j) ci[j] += acc[i][j];
    }
  } else {
    for (std::int64_t i = 0; i < rows; ++i) {
      float* ci = c + i * ldc;
      for (std::int64_t j = 0; j < cols; ++j) ci[j] += acc[i][j];
    }
  }
}

/// The pre-dispatch blocked gemm (pack B, pack A, micro-tile loop) distilled
/// to row-major contiguous operands.
void reference_gemm(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n) {
  std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  std::vector<float> bpanels;
  std::vector<float> apanels;
  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nc = std::min(kNC, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kc = std::min(kKC, k - pc);
      bpanels.assign(static_cast<std::size_t>(ceil_div(nc, kNR) * kc * kNR), 0.0F);
      for (std::int64_t j0 = 0; j0 < nc; j0 += kNR) {
        float* dst = bpanels.data() + (j0 / kNR) * kc * kNR;
        const std::int64_t jr = std::min(kNR, nc - j0);
        for (std::int64_t kk = 0; kk < kc; ++kk) {
          for (std::int64_t j = 0; j < jr; ++j) {
            dst[kk * kNR + j] = b[(pc + kk) * n + jc + j0 + j];
          }
        }
      }
      for (std::int64_t ic = 0; ic < m; ic += kMC) {
        const std::int64_t mc = std::min(kMC, m - ic);
        apanels.assign(static_cast<std::size_t>(ceil_div(mc, kMR) * kc * kMR), 0.0F);
        for (std::int64_t i0 = 0; i0 < mc; i0 += kMR) {
          float* dst = apanels.data() + (i0 / kMR) * kc * kMR;
          const std::int64_t ir = std::min(kMR, mc - i0);
          for (std::int64_t kk = 0; kk < kc; ++kk) {
            for (std::int64_t i = 0; i < ir; ++i) {
              dst[kk * kMR + i] = a[(ic + i0 + i) * k + pc + kk];
            }
          }
        }
        for (std::int64_t j0 = 0; j0 < nc; j0 += kNR) {
          const float* bp = bpanels.data() + (j0 / kNR) * kc * kNR;
          const std::int64_t cols = std::min(kNR, nc - j0);
          for (std::int64_t i0 = 0; i0 < mc; i0 += kMR) {
            micro_kernel(apanels.data() + (i0 / kMR) * kc * kMR, bp,
                         c + (ic + i0) * n + jc + j0, kc, n,
                         std::min(kMR, mc - i0), cols);
          }
        }
      }
    }
  }
}

}  // namespace legacy

TEST(ScalarFallbackTest, BitwiseIdenticalToPreDispatchKernel) {
  IsaGuard guard;
  set_kernel_isa_for_testing(KernelIsa::kScalar);
  for (const GemmCase& gc : kCases) {
    Rng rng(29);
    Tensor a({gc.m, gc.k});
    Tensor b({gc.k, gc.n});
    uniform_fill(a, -1.0F, 1.0F, rng);
    uniform_fill(b, -1.0F, 1.0F, rng);
    Tensor expected({gc.m, gc.n});
    legacy::reference_gemm(a.data(), b.data(), expected.data(), gc.m, gc.k, gc.n);
    Tensor c({gc.m, gc.n});
    gemm(row_major(a.data(), gc.k), row_major(b.data(), gc.n), c.data(), gc.m,
         gc.k, gc.n, /*accumulate=*/false);
    EXPECT_EQ(0, std::memcmp(expected.data(), c.data(),
                             static_cast<std::size_t>(gc.m * gc.n) * sizeof(float)))
        << gc.m << "x" << gc.k << "x" << gc.n;
  }
}

TEST(Int8GemmTest, ErrorBoundFromScales) {
  // Per-element analytic bound: quantizing w to w~ with per-channel scale sb
  // and a to a~ with per-row scale sa (round-to-nearest, so half-a-step max
  // error each) gives
  //   |c~ - c| <= 0.5*sb_j*sum_k|a_ik| + 0.5*sa_i*sum_k|w_jk| + 0.25*sa_i*sb_j*k
  const std::int64_t m = 37;
  const std::int64_t k = 300;
  const std::int64_t n = 29;
  Rng rng(31);
  Tensor a({m, k});
  Tensor w({n, k});
  uniform_fill(a, -1.0F, 3.0F, rng);
  uniform_fill(w, -2.0F, 2.0F, rng);
  QuantizedWeight qw = quantize_weight_per_row(w.data(), n, k);
  QuantizedPackedB qb;
  qb.pack(qw);
  Tensor c({m, n});
  gemm_packed_int8(row_major(a.data(), k), qb, c.data(), m, /*accumulate=*/false);

  for (std::int64_t i = 0; i < m; ++i) {
    float lo = 0.0F;
    float hi = 0.0F;
    float a_l1 = 0.0F;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      lo = std::min(lo, a.at(i, kk));
      hi = std::max(hi, a.at(i, kk));
      a_l1 += std::fabs(a.at(i, kk));
    }
    const float sa = (hi - lo) / 127.0F;
    for (std::int64_t j = 0; j < n; ++j) {
      const float sb = qw.scales[static_cast<std::size_t>(j)];
      double expected = 0.0;
      float w_l1 = 0.0F;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        expected += static_cast<double>(a.at(i, kk)) * w.at(j, kk);
        w_l1 += std::fabs(w.at(j, kk));
      }
      const double bound = 0.5 * sb * a_l1 + 0.5 * sa * w_l1 +
                           0.25 * static_cast<double>(sa) * sb * static_cast<double>(k) +
                           1e-3;
      EXPECT_NEAR(c.at(i, j), expected, bound) << i << "," << j;
    }
  }
}

TEST(Int8GemmTest, ExactOnBinarySpikesTimesQuantizedWeights) {
  // Binary spike rows quantize losslessly (zero point 0, scale amp/127), so
  // the only rounding left is the weight quantization — the int8 result must
  // exactly equal fmaf-accumulated q_a*q_w*scales, which we reproduce here.
  const std::int64_t m = 12;
  const std::int64_t k = 200;
  const std::int64_t n = 19;
  Rng rng(37);
  Tensor a({m, k});
  Tensor w({n, k});
  uniform_fill(a, 0.0F, 1.0F, rng);
  for (std::int64_t i = 0; i < m * k; ++i) {
    a.data()[i] = a.data()[i] < 0.2F ? 1.0F : 0.0F;  // ~20% spike density
  }
  uniform_fill(w, -1.0F, 1.0F, rng);
  QuantizedWeight qw = quantize_weight_per_row(w.data(), n, k);
  QuantizedPackedB qb;
  qb.pack(qw);
  Tensor c({m, n});
  gemm_packed_int8(row_major(a.data(), k), qb, c.data(), m, /*accumulate=*/false);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        if (a.at(i, kk) != 0.0F) {
          acc += 127 * static_cast<std::int64_t>(qw.data[static_cast<std::size_t>(j * k + kk)]);
        }
      }
      const float sa = 1.0F / 127.0F;
      const float expected = std::fmaf(static_cast<float>(acc),
                                       sa * qw.scales[static_cast<std::size_t>(j)], 0.0F);
      EXPECT_EQ(expected, c.at(i, j)) << i << "," << j;
    }
  }
}

TEST(DispatchTest, PackedBFromStalePlanRejected) {
  // Find two tiers with different fp32 panel widths; if none exist on this
  // machine/build the layout contract cannot be violated, so skip.
  const std::vector<KernelIsa> isas = supported_kernel_isas();
  IsaGuard guard;
  KernelIsa first = isas.front();
  KernelIsa second = first;
  std::int64_t first_nr = 0;
  for (KernelIsa isa : isas) {
    set_kernel_isa_for_testing(isa);
    if (first_nr == 0) {
      first = isa;
      first_nr = kernel_plan().fp32_nr;
    } else if (kernel_plan().fp32_nr != first_nr) {
      second = isa;
      break;
    }
  }
  if (second == first) GTEST_SKIP() << "all supported tiers share one panel width";

  Rng rng(41);
  Tensor a({8, 40});
  Tensor b({40, 24});
  uniform_fill(a, -1.0F, 1.0F, rng);
  uniform_fill(b, -1.0F, 1.0F, rng);
  Arena& arena = thread_arena();
  ArenaScope scope(arena);
  set_kernel_isa_for_testing(first);
  PackedB packed;
  packed.pack(row_major(b.data(), 24), 40, 24, arena);
  set_kernel_isa_for_testing(second);
  Tensor c({8, 24});
  EXPECT_THROW(gemm_packed(row_major(a.data(), 40), packed, c.data(), 8, false),
               std::logic_error);
  // Repacking under the new plan works.
  PackedB repacked;
  repacked.pack(row_major(b.data(), 24), 40, 24, arena);
  gemm_packed(row_major(a.data(), 40), repacked, c.data(), 8, false);
  Tensor expected({8, 24});
  matmul_naive(a.data(), b.data(), expected.data(), 8, 40, 24);
  EXPECT_TRUE(c.allclose(expected, 1e-4F));
}

TEST(DispatchTest, IsaGaugeAndOverrideValidation) {
  // First plan resolution sets the kernels.isa gauge (telemetry builds).
  (void)kernel_plan();
  if (obs::build_info().telemetry) {
    const double gauge =
        obs::Registry::instance().gauge("kernels.isa").value();
    EXPECT_EQ(gauge, static_cast<double>(static_cast<int>(active_kernel_isa())));
  }
  const std::vector<KernelIsa> isas = supported_kernel_isas();
  EXPECT_EQ(isas.front(), KernelIsa::kScalar);
  if (std::find(isas.begin(), isas.end(), KernelIsa::kAvx512) == isas.end()) {
    EXPECT_THROW(set_kernel_isa_for_testing(KernelIsa::kAvx512),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace ullsnn
