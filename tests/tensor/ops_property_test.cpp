// Algebraic property tests for the numeric kernels: linearity, homogeneity,
// and composition identities that must hold for any correct implementation
// (complementing the example-based checks in ops_test.cpp).
#include <gtest/gtest.h>

#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace ullsnn {
namespace {

Tensor conv(const Tensor& x, const Tensor& w, const Conv2dSpec& spec) {
  Tensor out({x.dim(0), spec.out_channels, spec.out_extent(x.dim(2)),
              spec.out_extent(x.dim(3))});
  conv2d_forward(x, w, Tensor(), out, spec);
  return out;
}

TEST(ConvPropertyTest, LinearInInput) {
  // conv(a*x + b*y) == a*conv(x) + b*conv(y)
  Rng rng(1);
  Conv2dSpec spec{2, 3, 3, 1, 1};
  Tensor w({3, 2, 3, 3});
  Tensor x({2, 2, 6, 6});
  Tensor y({2, 2, 6, 6});
  uniform_fill(w, -0.5F, 0.5F, rng);
  uniform_fill(x, -1.0F, 1.0F, rng);
  uniform_fill(y, -1.0F, 1.0F, rng);
  const Tensor lhs = conv(x * 2.0F + y * -3.0F, w, spec);
  const Tensor rhs = conv(x, w, spec) * 2.0F + conv(y, w, spec) * -3.0F;
  EXPECT_TRUE(lhs.allclose(rhs, 1e-4F));
}

TEST(ConvPropertyTest, LinearInWeights) {
  Rng rng(2);
  Conv2dSpec spec{1, 2, 3, 1, 1};
  Tensor w1({2, 1, 3, 3});
  Tensor w2({2, 1, 3, 3});
  Tensor x({1, 1, 5, 5});
  uniform_fill(w1, -0.5F, 0.5F, rng);
  uniform_fill(w2, -0.5F, 0.5F, rng);
  uniform_fill(x, -1.0F, 1.0F, rng);
  const Tensor lhs = conv(x, w1 + w2, spec);
  const Tensor rhs = conv(x, w1, spec) + conv(x, w2, spec);
  EXPECT_TRUE(lhs.allclose(rhs, 1e-4F));
}

TEST(ConvPropertyTest, ZeroInputZeroOutput) {
  Rng rng(3);
  Conv2dSpec spec{2, 2, 3, 2, 1};
  Tensor w({2, 2, 3, 3});
  uniform_fill(w, -0.5F, 0.5F, rng);
  const Tensor out = conv(Tensor({1, 2, 8, 8}), w, spec);
  EXPECT_FLOAT_EQ(out.rms(), 0.0F);
}

TEST(ConvPropertyTest, IdentityKernelCopiesInput) {
  // 1x1 conv with identity channel mixing is a copy.
  Conv2dSpec spec{3, 3, 1, 1, 0};
  Tensor w({3, 3, 1, 1});
  for (std::int64_t c = 0; c < 3; ++c) w.at(c, c, 0, 0) = 1.0F;
  Rng rng(4);
  Tensor x({2, 3, 4, 4});
  uniform_fill(x, -1.0F, 1.0F, rng);
  EXPECT_TRUE(conv(x, w, spec).allclose(x, 1e-6F));
}

TEST(MatmulPropertyTest, DistributesOverAddition) {
  Rng rng(5);
  Tensor a({4, 6});
  Tensor b({6, 5});
  Tensor c({6, 5});
  uniform_fill(a, -1.0F, 1.0F, rng);
  uniform_fill(b, -1.0F, 1.0F, rng);
  uniform_fill(c, -1.0F, 1.0F, rng);
  const Tensor lhs = matmul(a, b + c);
  const Tensor rhs = matmul(a, b) + matmul(a, c);
  EXPECT_TRUE(lhs.allclose(rhs, 1e-4F));
}

TEST(MatmulPropertyTest, AssociativeWithinTolerance) {
  Rng rng(6);
  Tensor a({3, 4});
  Tensor b({4, 5});
  Tensor c({5, 2});
  uniform_fill(a, -1.0F, 1.0F, rng);
  uniform_fill(b, -1.0F, 1.0F, rng);
  uniform_fill(c, -1.0F, 1.0F, rng);
  const Tensor lhs = matmul(matmul(a, b), c);
  const Tensor rhs = matmul(a, matmul(b, c));
  EXPECT_TRUE(lhs.allclose(rhs, 1e-3F));
}

TEST(MatmulPropertyTest, IdentityIsNeutral) {
  Rng rng(7);
  Tensor a({4, 4});
  uniform_fill(a, -1.0F, 1.0F, rng);
  Tensor eye({4, 4});
  for (std::int64_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0F;
  EXPECT_TRUE(matmul(a, eye).allclose(a, 1e-6F));
  EXPECT_TRUE(matmul(eye, a).allclose(a, 1e-6F));
}

TEST(PoolPropertyTest, MaxPoolDominatesAvgPool) {
  Rng rng(8);
  Tensor x({2, 2, 6, 6});
  uniform_fill(x, -1.0F, 1.0F, rng);
  Pool2dSpec spec;
  Tensor mx({2, 2, 3, 3});
  Tensor av({2, 2, 3, 3});
  std::vector<std::int64_t> argmax;
  maxpool2d_forward(x, mx, argmax, spec);
  avgpool2d_forward(x, av, spec);
  for (std::int64_t i = 0; i < mx.numel(); ++i) EXPECT_GE(mx[i], av[i]);
}

TEST(PoolPropertyTest, MaxPoolIdempotentOnConstant) {
  Tensor x({1, 1, 4, 4}, 3.5F);
  Pool2dSpec spec;
  Tensor out({1, 1, 2, 2});
  std::vector<std::int64_t> argmax;
  maxpool2d_forward(x, out, argmax, spec);
  for (std::int64_t i = 0; i < out.numel(); ++i) EXPECT_FLOAT_EQ(out[i], 3.5F);
}

TEST(PoolPropertyTest, AvgPoolPreservesMeanExactly) {
  Rng rng(9);
  Tensor x({1, 1, 8, 8});
  uniform_fill(x, -1.0F, 1.0F, rng);
  Pool2dSpec spec;
  Tensor out({1, 1, 4, 4});
  avgpool2d_forward(x, out, spec);
  EXPECT_NEAR(out.mean(), x.mean(), 1e-5F);
}

TEST(PoolPropertyTest, MaxPoolBackwardConservesGradientMass) {
  Rng rng(10);
  Tensor x({1, 2, 6, 6});
  uniform_fill(x, -1.0F, 1.0F, rng);
  Pool2dSpec spec;
  Tensor out({1, 2, 3, 3});
  std::vector<std::int64_t> argmax;
  maxpool2d_forward(x, out, argmax, spec);
  Tensor g(out.shape());
  uniform_fill(g, 0.0F, 1.0F, rng);
  Tensor gin(x.shape());
  maxpool2d_backward(g, argmax, gin);
  EXPECT_NEAR(gin.sum(), g.sum(), 1e-4F);
}

}  // namespace
}  // namespace ullsnn
