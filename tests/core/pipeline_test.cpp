#include "src/core/pipeline.h"

#include <gtest/gtest.h>

namespace ullsnn::core {
namespace {

data::LabeledImages easy_data(std::int64_t n, std::uint64_t salt,
                              std::int64_t classes = 3) {
  data::SyntheticCifarSpec spec;
  spec.image_size = 32;
  spec.num_classes = classes;
  spec.sign_flip_prob = 0.0F;
  spec.occluder_prob = 0.0F;
  spec.noise_stddev = 0.15F;
  data::SyntheticCifar gen(spec);
  data::LabeledImages d = gen.generate(n, salt);
  data::standardize(d);
  return d;
}

PipelineConfig tiny_pipeline_config() {
  PipelineConfig config;
  config.arch = Architecture::kVgg11;
  config.model.width = 0.0625F;  // minimum-width VGG
  config.model.num_classes = 3;
  config.model.image_size = 32;
  config.dnn_train.epochs = 8;
  config.dnn_train.batch_size = 32;
  config.dnn_train.augment = false;
  config.conversion.time_steps = 2;
  config.sgl.epochs = 3;
  config.sgl.augment = false;
  return config;
}

TEST(ArchitectureTest, Names) {
  EXPECT_STREQ(to_string(Architecture::kVgg11), "VGG-11");
  EXPECT_STREQ(to_string(Architecture::kResNet20), "ResNet-20");
}

TEST(BuildModelTest, AllArchitecturesConstruct) {
  dnn::ModelConfig mc;
  mc.width = 0.0625F;
  Rng rng(1);
  for (const Architecture arch :
       {Architecture::kVgg11, Architecture::kVgg13, Architecture::kVgg16,
        Architecture::kResNet20, Architecture::kResNet32}) {
    auto model = build_model(arch, mc, rng);
    EXPECT_EQ(model->output_shape({1, 3, 32, 32}), Shape({1, 10}))
        << to_string(arch);
  }
}

TEST(HybridPipelineTest, EndToEndStagesAreConsistent) {
  const data::LabeledImages train = easy_data(192, 1);
  const data::LabeledImages test = easy_data(48, 2);
  HybridPipeline pipeline(tiny_pipeline_config());
  const PipelineResult result = pipeline.run(train, test);
  // Stage (a) learns something on the easy task.
  EXPECT_GT(result.dnn_accuracy, 0.5);
  // Stage (c) should not collapse to chance (1/3 for three classes). The
  // bound is chance-referenced rather than DNN-relative: at T=2 this
  // minimum-width model's SGL accuracy varies by ~±0.2 across data draws,
  // so a tight DNN-relative bar flips on single test samples whenever FP
  // summation order changes (e.g. kernel blocking).
  EXPECT_GT(result.sgl_accuracy, 0.42);
  // Conversion report carries one entry per activation site.
  EXPECT_FALSE(result.conversion_report.sites.empty());
  EXPECT_EQ(result.conversion_report.sites.size(),
            result.conversion_report.search_results.size());
  // Accessors work after run().
  EXPECT_NO_THROW(pipeline.dnn());
  EXPECT_NO_THROW(pipeline.snn());
  EXPECT_EQ(pipeline.snn().time_steps(), 2);
}

TEST(HybridPipelineTest, AccessorsThrowBeforeRun) {
  HybridPipeline pipeline(tiny_pipeline_config());
  EXPECT_THROW(pipeline.dnn(), std::logic_error);
  EXPECT_THROW(pipeline.snn(), std::logic_error);
}

TEST(HybridPipelineTest, ConversionOnlyPath) {
  const data::LabeledImages train = easy_data(128, 1);
  const data::LabeledImages test = easy_data(32, 2);
  PipelineConfig config = tiny_pipeline_config();
  config.conversion.time_steps = 32;  // high T: conversion should track DNN
  // Threshold-ReLU conversion is the asymptotically-exact mode; the
  // (alpha, beta) search optimizes the low-T regime instead.
  config.conversion.mode = ConversionMode::kThresholdReLU;
  HybridPipeline pipeline(config);
  const double acc = pipeline.run_conversion_only(train, test);
  const double dnn_acc = dnn::evaluate_model(pipeline.dnn(), test, 32);
  EXPECT_GT(acc, dnn_acc - 0.25);
}

}  // namespace
}  // namespace ullsnn::core
