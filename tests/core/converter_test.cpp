#include "src/core/converter.h"

#include <gtest/gtest.h>

#include "src/dnn/activations.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/dropout.h"
#include "src/dnn/linear.h"
#include "src/dnn/models.h"
#include "src/dnn/pooling.h"
#include "src/dnn/trainer.h"

namespace ullsnn::core {
namespace {

// Small DNN: conv+act+pool+flatten+fc+act+fc, enough to cover every
// conversion path except residual blocks.
std::unique_ptr<dnn::Sequential> small_dnn(Rng& rng, float mu = 2.0F) {
  auto model = std::make_unique<dnn::Sequential>();
  model->emplace<dnn::Conv2d>(3, 4, 3, 1, 1, false, rng);
  model->emplace<dnn::ThresholdReLU>(mu);
  model->emplace<dnn::MaxPool2d>();
  model->emplace<dnn::Flatten>();
  model->emplace<dnn::Dropout>(0.1F, rng);
  model->emplace<dnn::Linear>(4 * 4 * 4, 8, false, rng);
  model->emplace<dnn::ThresholdReLU>(mu);
  model->emplace<dnn::Linear>(8, 3, false, rng);
  return model;
}

// `easy` disables the sign-flip hardening: conversion-fidelity tests need a
// task the tiny DNN can actually master, not a hard benchmark.
data::LabeledImages small_data(std::int64_t n = 64, bool easy = false) {
  data::SyntheticCifarSpec spec;
  spec.image_size = 8;
  spec.num_classes = 3;
  if (easy) {
    spec.sign_flip_prob = 0.0F;
    spec.occluder_prob = 0.0F;
    spec.noise_stddev = 0.1F;
  }
  data::SyntheticCifar gen(spec);
  data::LabeledImages d = gen.generate(n, 1);
  data::standardize(d);
  return d;
}

TEST(CollectorTest, FindsAllSites) {
  Rng rng(1);
  auto model = small_dnn(rng);
  const auto data = small_data();
  const ActivationProfile profile = collect_activations(*model, data);
  ASSERT_EQ(profile.sites.size(), 2U);
  for (const auto& site : profile.sites) {
    EXPECT_FLOAT_EQ(site.mu, 2.0F);
    EXPECT_FALSE(site.samples.empty());
    EXPECT_EQ(site.percentiles.size(), 101U);
    EXPECT_GE(site.d_max, site.percentiles[100]);
  }
}

TEST(CollectorTest, EmptyCalibrationThrows) {
  Rng rng(1);
  auto model = small_dnn(rng);
  data::LabeledImages empty;
  empty.images = Tensor({0, 3, 8, 8});
  EXPECT_THROW(collect_activations(*model, empty), std::invalid_argument);
}

TEST(PlanConversionTest, ModesDeriveExpectedThresholds) {
  ActivationProfile profile;
  ActivationSite site;
  site.label = "s";
  site.mu = 1.0F;
  site.d_max = 5.0F;
  for (int i = 0; i <= 100; ++i) {
    site.samples.push_back(0.02F * static_cast<float>(i));
  }
  site.percentiles = site.samples;
  profile.sites.push_back(site);

  ConversionConfig config;
  config.time_steps = 2;

  config.mode = ConversionMode::kThresholdReLU;
  ConversionReport r = plan_conversion(profile, config);
  EXPECT_FLOAT_EQ(r.sites[0].v_threshold, 1.0F);
  EXPECT_FLOAT_EQ(r.sites[0].initial_membrane_fraction, 0.5F);

  config.mode = ConversionMode::kMaxAct;
  r = plan_conversion(profile, config);
  EXPECT_FLOAT_EQ(r.sites[0].v_threshold, 5.0F);

  config.mode = ConversionMode::kPercentileHeuristic;
  config.heuristic_percentile = 50.0F;
  config.heuristic_scale = 0.8F;
  r = plan_conversion(profile, config);
  EXPECT_NEAR(r.sites[0].v_threshold, 0.8F * 1.0F, 1e-4F);
  EXPECT_FLOAT_EQ(r.sites[0].initial_membrane_fraction, 0.0F);

  config.mode = ConversionMode::kOursAlphaBeta;
  r = plan_conversion(profile, config);
  ASSERT_EQ(r.search_results.size(), 1U);
  EXPECT_FLOAT_EQ(r.sites[0].v_threshold, r.sites[0].alpha * site.mu);
  EXPECT_FLOAT_EQ(r.sites[0].initial_membrane_fraction, 0.0F);
}

TEST(ConvertTest, TopologyMirrorsDnn) {
  Rng rng(2);
  auto model = small_dnn(rng);
  const auto data = small_data();
  ConversionConfig config;
  config.time_steps = 2;
  auto net = convert(*model, data, config, nullptr);
  // conv, pool, flatten, dropout, fc(+neuron), fc(readout) => 6 layers.
  EXPECT_EQ(net->size(), 6);
  EXPECT_EQ(net->layer(0).name(), "SpikingConv2d");
  EXPECT_EQ(net->layer(1).name(), "SpikingMaxPool");
  EXPECT_EQ(net->layer(2).name(), "SpikingFlatten");
  EXPECT_EQ(net->layer(3).name(), "SpikingDropout");
  EXPECT_EQ(net->layer(4).name(), "SpikingLinear");
  EXPECT_EQ(net->layer(5).name(), "SpikingLinear");
}

TEST(ConvertTest, WeightsAreCopies) {
  Rng rng(3);
  auto model = small_dnn(rng);
  const auto data = small_data();
  ConversionConfig config;
  auto net = convert(*model, data, config, nullptr);
  auto* sconv = dynamic_cast<snn::SpikingConv2d*>(&net->layer(0));
  ASSERT_NE(sconv, nullptr);
  auto* dconv = dynamic_cast<dnn::Conv2d*>(&model->layer(0));
  ASSERT_NE(dconv, nullptr);
  EXPECT_TRUE(sconv->synapse().weight().value.allclose(dconv->weight().value));
  // Mutating the SNN copy must not touch the DNN.
  sconv->synapse().weight().value[0] += 1.0F;
  EXPECT_FALSE(sconv->synapse().weight().value.allclose(dconv->weight().value));
}

TEST(ConvertTest, HighTApproachesDnnAccuracy) {
  // Train the small DNN briefly, then check the converted SNN at T=64
  // reaches an accuracy close to the DNN's (threshold-ReLU conversion with
  // bias shift is the textbook-correct mode for high T).
  Rng rng(4);
  auto model = small_dnn(rng, 1.0F);
  auto train = small_data(256, /*easy=*/true);
  dnn::TrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 32;
  tc.augment = false;
  dnn::DnnTrainer trainer(*model, tc);
  trainer.fit(train);
  const double dnn_acc = trainer.evaluate(train);
  ASSERT_GT(dnn_acc, 0.75);

  ConversionConfig config;
  config.mode = ConversionMode::kThresholdReLU;
  config.time_steps = 64;
  auto net = convert(*model, train, config, nullptr);
  const double snn_acc = snn::evaluate_snn(*net, train);
  EXPECT_GT(snn_acc, dnn_acc - 0.1);
}

TEST(ConvertTest, LowTDegradesMoreThanHighT) {
  Rng rng(5);
  auto model = small_dnn(rng, 1.0F);
  auto train = small_data(256, /*easy=*/true);
  dnn::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 32;
  tc.augment = false;
  dnn::DnnTrainer trainer(*model, tc);
  trainer.fit(train);

  ConversionConfig config;
  config.mode = ConversionMode::kMaxAct;
  config.time_steps = 1;
  auto snn1 = convert(*model, train, config, nullptr);
  config.time_steps = 64;
  auto snn64 = convert(*model, train, config, nullptr);
  EXPECT_LE(snn::evaluate_snn(*snn1, train), snn::evaluate_snn(*snn64, train) + 0.05);
}

TEST(ConvertTest, SiteCountMismatchThrows) {
  Rng rng(6);
  auto model = small_dnn(rng);
  const auto data = small_data();
  ActivationProfile profile = collect_activations(*model, data);
  profile.sites.pop_back();
  ConversionConfig config;
  EXPECT_THROW(convert(*model, profile, config, nullptr), std::logic_error);
}

TEST(ConvertTest, ResNetConversionBuildsResidualBlocks) {
  Rng rng(7);
  dnn::ModelConfig mc;
  mc.width = 0.125F;
  mc.num_classes = 3;
  mc.image_size = 8;
  auto model = dnn::build_resnet(20, mc, rng);
  const auto data = small_data();
  ConversionConfig config;
  config.time_steps = 2;
  auto net = convert(*model, data, config, nullptr);
  std::int64_t blocks = 0;
  for (std::int64_t i = 0; i < net->size(); ++i) {
    if (net->layer(i).name() == "SpikingResidualBlock") ++blocks;
  }
  EXPECT_EQ(blocks, 9);
  // And the converted net runs.
  Tensor x({2, 3, 8, 8}, 0.1F);
  EXPECT_EQ(net->forward(x, false).shape(), Shape({2, 3}));
}

TEST(ConvertTest, ModeToString) {
  EXPECT_STREQ(to_string(ConversionMode::kOursAlphaBeta), "ours(alpha,beta)");
  EXPECT_STREQ(to_string(ConversionMode::kMaxAct), "max-act[15]");
}

}  // namespace
}  // namespace ullsnn::core
