#include "src/core/scaling_search.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/random.h"

namespace ullsnn::core {
namespace {

// Uniform percentiles over [0, hi].
std::vector<float> uniform_percentiles(float hi) {
  std::vector<float> p(101);
  for (int i = 0; i <= 100; ++i) {
    p[static_cast<std::size_t>(i)] = hi * static_cast<float>(i) / 100.0F;
  }
  return p;
}

// Exponential-like skewed percentiles: P[i] = -scale * ln(1 - i/101).
std::vector<float> skewed_percentiles(float scale) {
  std::vector<float> p(101);
  for (int i = 0; i <= 100; ++i) {
    p[static_cast<std::size_t>(i)] =
        -scale * std::log(1.0F - static_cast<float>(i) / 101.0F);
  }
  return p;
}

TEST(ComputeLossTest, SegmentsByHand) {
  // mu = 1, alpha = 1, beta = 1, T = 2. Staircase: [0, .5) -> 0, [.5, 1) ->
  // 0.5, saturates at 1.
  const float mu = 1.0F;
  // p = 0.25: Seg-I step j=0 -> loss += 0.25 - 0 = 0.25.
  EXPECT_NEAR(compute_scaling_loss({0.25F}, mu, 1.0F, 1.0F, 2), 0.25, 1e-6);
  // p = 0.75: Seg-I step j=1 -> loss += 0.75 - 0.5 = 0.25.
  EXPECT_NEAR(compute_scaling_loss({0.75F}, mu, 1.0F, 1.0F, 2), 0.25, 1e-6);
  // p = 1.5 > mu: Seg-III -> mu * (1 - alpha*beta) = 0.
  EXPECT_NEAR(compute_scaling_loss({1.5F}, mu, 1.0F, 1.0F, 2), 0.0, 1e-6);
  // Negative p contributes nothing.
  EXPECT_NEAR(compute_scaling_loss({-0.5F}, mu, 1.0F, 1.0F, 2), 0.0, 1e-6);
}

TEST(ComputeLossTest, SegTwoWhenAlphaBelowOne) {
  // alpha = 0.5, mu = 1: threshold 0.5. p = 0.75 in (alpha*mu, mu]:
  // Seg-II -> p - alpha*beta*mu = 0.75 - 0.5.
  EXPECT_NEAR(compute_scaling_loss({0.75F}, 1.0F, 0.5F, 1.0F, 2), 0.25, 1e-6);
  // Seg-III with alpha*beta = 0.5: mu * (1 - 0.5) = 0.5.
  EXPECT_NEAR(compute_scaling_loss({1.5F}, 1.0F, 0.5F, 1.0F, 2), 0.5, 1e-6);
}

TEST(ComputeLossTest, BetaScalesStaircase) {
  // p = 0.75, T = 2, alpha = 1, beta = 2: step j=1 output = j*alpha*beta*mu/T
  // = 1.0 -> loss = 0.75 - 1.0 = -0.25 (SNN overshoots).
  EXPECT_NEAR(compute_scaling_loss({0.75F}, 1.0F, 1.0F, 2.0F, 2), -0.25, 1e-6);
}

TEST(ComputeLossTest, Validates) {
  EXPECT_THROW(compute_scaling_loss({0.5F}, 0.0F, 1.0F, 1.0F, 2),
               std::invalid_argument);
  EXPECT_THROW(compute_scaling_loss({0.5F}, 1.0F, 1.0F, 1.0F, 0),
               std::invalid_argument);
}

TEST(FindScalingFactorsTest, UniformDistributionNeedsLittleCorrection) {
  // For uniform pre-activations the SOTA assumption holds; the search should
  // find a residual |loss| far below the (1,1) baseline and an optimum near
  // alpha*beta ~ 1 (the activation is already well matched).
  const auto p = uniform_percentiles(1.0F);
  const ScalingResult r = find_scaling_factors(p, 1.0F, 2);
  EXPECT_LE(std::abs(r.loss), std::abs(r.initial_loss));
  EXPECT_LT(std::abs(r.loss), 2.0);
}

TEST(FindScalingFactorsTest, SkewedDistributionScalesDown) {
  // Heavily skewed toward 0: the optimal threshold should drop well below mu
  // (the paper's core claim) and reduce the loss drastically.
  const auto p = skewed_percentiles(0.2F);
  const float mu = 1.0F;
  const ScalingResult r = find_scaling_factors(p, mu, 2);
  EXPECT_LT(r.alpha, 0.9F);
  EXPECT_LT(std::abs(r.loss), std::abs(r.initial_loss) * 0.5);
}

TEST(FindScalingFactorsTest, BetaStaysInSweepRange) {
  const auto p = skewed_percentiles(0.3F);
  const ScalingResult r = find_scaling_factors(p, 1.0F, 3);
  EXPECT_GE(r.beta, 0.0F);
  EXPECT_LE(r.beta, 2.0F + 1e-5F);
  EXPECT_GT(r.alpha, 0.0F);
  EXPECT_LE(r.alpha, 1.0F);
}

TEST(FindScalingFactorsTest, LargeTNeedsLessCorrection) {
  // As T grows the staircase tracks the identity better, so the optimal
  // |loss| at T=16 is no worse than at T=2 for the same distribution.
  const auto p = skewed_percentiles(0.2F);
  const ScalingResult r2 = find_scaling_factors(p, 1.0F, 2);
  const ScalingResult r16 = find_scaling_factors(p, 1.0F, 16);
  EXPECT_LE(std::abs(r16.loss), std::abs(r2.loss) + 1e-6);
}

TEST(FindScalingFactorsLinearTest, ComparableToPercentile) {
  const auto p = skewed_percentiles(0.25F);
  const ScalingResult pct = find_scaling_factors(p, 1.0F, 2);
  const ScalingResult lin = find_scaling_factors_linear(p, 1.0F, 2, 100);
  // Both should beat the no-scaling baseline.
  EXPECT_LT(std::abs(pct.loss), std::abs(pct.initial_loss));
  EXPECT_LT(std::abs(lin.loss), std::abs(lin.initial_loss));
}

TEST(FindScalingFactorsLinearTest, Validates) {
  EXPECT_THROW(find_scaling_factors_linear({0.5F}, 1.0F, 2, 0),
               std::invalid_argument);
  EXPECT_THROW(find_scaling_factors({0.5F}, 1.0F, 2, 0.0F), std::invalid_argument);
}

TEST(FindAllScalingFactorsTest, OnePerSite) {
  ActivationProfile profile;
  for (int s = 0; s < 3; ++s) {
    ActivationSite site;
    site.label = "s" + std::to_string(s);
    site.mu = 1.0F;
    site.percentiles = skewed_percentiles(0.2F);
    site.samples = site.percentiles;
    profile.sites.push_back(std::move(site));
  }
  const auto results = find_all_scaling_factors(profile, 2);
  EXPECT_EQ(results.size(), 3U);
}

}  // namespace
}  // namespace ullsnn::core
