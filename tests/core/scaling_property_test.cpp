// Structural invariants of the Algorithm-1 loss model (complementing the
// hand-computed segment cases in scaling_search_test.cpp).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/scaling_search.h"
#include "src/tensor/random.h"

namespace ullsnn::core {
namespace {

std::vector<float> skewed(float scale, int n = 101) {
  std::vector<float> p(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    p[static_cast<std::size_t>(i)] =
        -scale * std::log(1.0F - static_cast<float>(i) / (static_cast<float>(n) + 1.0F));
  }
  return p;
}

TEST(ScalingLossPropertyTest, HomogeneousUnderJointRescaling) {
  // Scaling all percentiles AND mu by c scales the loss by c (every segment
  // term is linear in the value scale).
  const auto p = skewed(0.2F);
  const double base = compute_scaling_loss(p, 1.0F, 0.5F, 1.2F, 2);
  std::vector<float> p2 = p;
  for (auto& v : p2) v *= 3.0F;
  const double scaled = compute_scaling_loss(p2, 3.0F, 0.5F, 1.2F, 2);
  EXPECT_NEAR(scaled, 3.0 * base, 1e-4 * std::abs(base) + 1e-6);
}

TEST(ScalingLossPropertyTest, BetaZeroCountsAllPositiveMass) {
  // With beta = 0 the SNN emits nothing: loss = sum of clipped DNN outputs.
  const auto p = skewed(0.3F);
  double expected = 0.0;
  for (float v : p) {
    if (v > 0.0F) expected += std::min(v, 1.0F);
  }
  EXPECT_NEAR(compute_scaling_loss(p, 1.0F, 1.0F, 0.0F, 2), expected, 1e-4);
}

TEST(ScalingLossPropertyTest, MonotoneDecreasingInBeta) {
  // Raising beta raises every SNN output level, so the signed loss is
  // non-increasing in beta for fixed alpha, T.
  const auto p = skewed(0.25F);
  double prev = compute_scaling_loss(p, 1.0F, 0.5F, 0.0F, 2);
  for (float beta = 0.1F; beta <= 2.0F; beta += 0.1F) {
    const double loss = compute_scaling_loss(p, 1.0F, 0.5F, beta, 2);
    EXPECT_LE(loss, prev + 1e-9);
    prev = loss;
  }
}

TEST(ScalingLossPropertyTest, FoundOptimumBeatsNeighbours) {
  // Local optimality of the returned (alpha, beta) against the search grid.
  const auto p = skewed(0.2F);
  const ScalingResult r = find_scaling_factors(p, 1.0F, 2);
  const double best = std::abs(r.loss);
  for (const float dbeta : {-0.01F, 0.01F}) {
    const float beta = r.beta + dbeta;
    if (beta < 0.0F || beta > 2.0F) continue;
    EXPECT_GE(std::abs(compute_scaling_loss(p, 1.0F, r.alpha, beta, 2)) + 1e-9, best);
  }
}

TEST(ScalingLossPropertyTest, AllNegativeSamplesGiveZeroLoss) {
  std::vector<float> p(101, -0.5F);
  EXPECT_EQ(compute_scaling_loss(p, 1.0F, 0.7F, 1.3F, 3), 0.0);
  const ScalingResult r = find_scaling_factors(p, 1.0F, 3);
  EXPECT_EQ(r.loss, 0.0);
}

class ScalingSweepTest
    : public ::testing::TestWithParam<std::tuple<float, std::int64_t>> {};

TEST_P(ScalingSweepTest, SearchNeverWorsensBaseline) {
  // For any distribution scale and any T, the search result must be at least
  // as good as (alpha, beta) = (1, 1) — Algorithm 1 only accepts
  // improvements.
  const auto [scale, t] = GetParam();
  const auto p = skewed(scale);
  const ScalingResult r = find_scaling_factors(p, 1.0F, t);
  EXPECT_LE(std::abs(r.loss), std::abs(r.initial_loss) + 1e-9);
  EXPECT_GT(r.alpha, 0.0F);
  EXPECT_LE(r.alpha, 1.0F);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScalingSweepTest,
    ::testing::Combine(::testing::Values(0.05F, 0.15F, 0.35F, 0.8F),
                       ::testing::Values<std::int64_t>(1, 2, 3, 5, 8)));

}  // namespace
}  // namespace ullsnn::core
