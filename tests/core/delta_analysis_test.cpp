#include "src/core/delta_analysis.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/random.h"

namespace ullsnn::core {
namespace {

std::vector<float> uniform_samples(float hi, int n = 20000) {
  Rng rng(1);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(0.0F, hi);
  return v;
}

std::vector<float> exponential_samples(float scale, int n = 20000) {
  Rng rng(2);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = -scale * std::log(1.0F - rng.uniform());
  return v;
}

TEST(EstimateKTest, UniformIsHalf) {
  // Sec. III-A: K(mu) = 1/2 for uniform f_D on [0, mu].
  EXPECT_NEAR(estimate_k(uniform_samples(1.0F), 1.0F), 0.5, 0.01);
}

TEST(EstimateKTest, SkewedIsBelowHalf) {
  // Mass concentrated near 0 pulls the normalized first moment down.
  EXPECT_LT(estimate_k(exponential_samples(0.15F), 1.0F), 0.3);
}

TEST(EstimateKTest, IndependentOfT) {
  // K has no T dependence by construction; sanity only (same call).
  const auto s = exponential_samples(0.2F);
  EXPECT_DOUBLE_EQ(estimate_k(s, 1.0F), estimate_k(s, 1.0F));
}

TEST(EstimateHTest, UniformIsHalf) {
  // Sec. III-A: for uniform f_S, h(T, mu) = (T-1)/2T + 1/2T = 1/2 at any T.
  const auto s = uniform_samples(1.0F);
  for (const std::int64_t t : {2, 3, 5, 8}) {
    EXPECT_NEAR(estimate_h(s, 1.0F, t), 0.5, 0.02) << "T=" << t;
  }
}

TEST(EstimateHTest, SkewedCollapsesAtLowT) {
  // The paper's key observation: h(T, mu) drops sharply as T shrinks below
  // ~5 for skewed distributions (Fig. 1(a) insert).
  const auto s = exponential_samples(0.12F);
  const double h2 = estimate_h(s, 1.0F, 2);
  const double h5 = estimate_h(s, 1.0F, 5);
  const double h16 = estimate_h(s, 1.0F, 16);
  EXPECT_LT(h2, h5);
  EXPECT_LT(h5, h16);
  EXPECT_LT(h2, 0.25);
}

TEST(EstimateHTest, DeltaVanishesForUniform) {
  // K = h = 1/2 under the uniform assumption => Delta ~ 0 (Eq. 7).
  const auto s = uniform_samples(1.0F);
  const double delta = 1.0 * (estimate_k(s, 1.0F) - estimate_h(s, 1.0F, 2));
  EXPECT_NEAR(delta, 0.0, 0.02);
}

TEST(EstimateHTest, DeltaPositiveForSkewedLowT) {
  const auto s = exponential_samples(0.12F);
  const double delta = estimate_k(s, 1.0F) - estimate_h(s, 1.0F, 2);
  EXPECT_GT(delta, 0.02);
}

TEST(DnnActivationTest, Clip) {
  EXPECT_FLOAT_EQ(dnn_activation(-1.0F, 2.0F), 0.0F);
  EXPECT_FLOAT_EQ(dnn_activation(1.5F, 2.0F), 1.5F);
  EXPECT_FLOAT_EQ(dnn_activation(3.0F, 2.0F), 2.0F);
}

TEST(SnnActivationTest, StaircaseLevels) {
  // mu=1, alpha=1, beta=1, T=2, no bias: steps of 0.5 at s = 0.5 and 1.0.
  EXPECT_FLOAT_EQ(snn_activation(0.4F, 1.0F, 1.0F, 1.0F, 2, false), 0.0F);
  EXPECT_FLOAT_EQ(snn_activation(0.6F, 1.0F, 1.0F, 1.0F, 2, false), 0.5F);
  EXPECT_FLOAT_EQ(snn_activation(1.2F, 1.0F, 1.0F, 1.0F, 2, false), 1.0F);
  EXPECT_FLOAT_EQ(snn_activation(9.0F, 1.0F, 1.0F, 1.0F, 2, false), 1.0F);
}

TEST(SnnActivationTest, BiasShiftMovesStepsLeft) {
  // With delta = V_th/2T the first step starts at s = V_th/2T lower.
  const float no_bias = snn_activation(0.45F, 1.0F, 1.0F, 1.0F, 2, false);
  const float bias = snn_activation(0.45F, 1.0F, 1.0F, 1.0F, 2, true);
  EXPECT_FLOAT_EQ(no_bias, 0.0F);
  EXPECT_FLOAT_EQ(bias, 0.5F);
}

TEST(SnnActivationTest, AlphaScalesThresholdBetaScalesOutput) {
  // alpha=0.5: threshold 0.5; s=0.3 -> floor(2*0.3/0.5)=1 spike of
  // amplitude beta*0.5; average = beta*0.5/2.
  EXPECT_FLOAT_EQ(snn_activation(0.3F, 1.0F, 0.5F, 1.0F, 2, false), 0.25F);
  EXPECT_FLOAT_EQ(snn_activation(0.3F, 1.0F, 0.5F, 2.0F, 2, false), 0.5F);
}

TEST(SnnActivationTest, NegativeInputGivesZero) {
  EXPECT_FLOAT_EQ(snn_activation(-0.5F, 1.0F, 1.0F, 1.0F, 4, false), 0.0F);
}

TEST(EmpiricalDeltaTest, MatchesClosedFormTrend) {
  const auto skewed = exponential_samples(0.12F);
  const double d2 = empirical_delta(skewed, 1.0F, 1.0F, 1.0F, 2, true);
  const double d16 = empirical_delta(skewed, 1.0F, 1.0F, 1.0F, 16, true);
  EXPECT_GT(d2, d16);  // low T has the larger DNN-SNN gap
  EXPECT_GT(d2, 0.0);
}

TEST(EmpiricalDeltaTest, ScalingSearchReducesDelta) {
  // Applying a (alpha < 1, beta) correction must be able to reduce the T=2
  // gap on a skewed distribution. Probe a small grid like Algorithm 1 does.
  const auto skewed = exponential_samples(0.12F);
  const double base = std::abs(empirical_delta(skewed, 1.0F, 1.0F, 1.0F, 2, false));
  double best = base;
  for (float alpha = 0.1F; alpha <= 1.0F; alpha += 0.1F) {
    for (float beta = 0.2F; beta <= 2.0F; beta += 0.2F) {
      best = std::min(best,
                      std::abs(empirical_delta(skewed, 1.0F, alpha, beta, 2, false)));
    }
  }
  EXPECT_LT(best, base * 0.5);
}

TEST(DeltaAnalysisTest, Validation) {
  EXPECT_THROW(estimate_k({}, 1.0F), std::invalid_argument);
  EXPECT_THROW(estimate_k({0.5F}, 0.0F), std::invalid_argument);
  EXPECT_THROW(empirical_delta({}, 1.0F, 1.0F, 1.0F, 2, false),
               std::invalid_argument);
}

}  // namespace
}  // namespace ullsnn::core
