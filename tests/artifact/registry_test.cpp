// ModelRegistry tests: canary gate, atomic hot-swap, transition history,
// auto-rollback, and the ServeEngine integration — swap under live load with
// zero lost requests and bitwise-identical logits across the swap boundary.
#include "src/artifact/model_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "src/robust/fault_injector.h"
#include "src/serve/engine.h"
#include "src/tensor/random.h"
#include "src/util/serialize.h"

namespace ullsnn::artifact {
namespace {

using namespace std::chrono_literals;

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

Tensor random_tensor(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.uniform() * 0.5F - 0.25F;
  }
  return t;
}

/// Identity hidden layer + 2-class readout over a [4] input (same closed-form
/// construction as the serve engine tests), with a seed-dependent weight
/// perturbation so "retrained" versions are distinguishable but same-arch.
std::unique_ptr<snn::SnnNetwork> make_net(std::uint64_t seed,
                                          std::int64_t hidden = 4) {
  Rng rng(seed);
  auto net = std::make_unique<snn::SnnNetwork>(3);
  Tensor w1({hidden, 4});
  for (std::int64_t i = 0; i < std::min<std::int64_t>(hidden, 4); ++i) {
    w1.at(i, i) = 1.0F + 0.001F * static_cast<float>(seed % 7);
  }
  snn::IfConfig cfg;
  cfg.v_threshold = 1.0F;
  net->emplace<snn::SpikingLinear>(w1, cfg, /*with_neuron=*/true);
  Tensor w2 = random_tensor({2, hidden}, rng);
  net->emplace<snn::SpikingLinear>(w2, snn::IfConfig{}, /*with_neuron=*/false);
  return net;
}

std::string pack_version(const char* name, std::uint64_t seed,
                         std::int64_t hidden = 4) {
  const std::string path = temp_path(name);
  auto net = make_net(seed, hidden);
  PackOptions opt;
  opt.input_shape = {4};
  opt.probe_batch = 2;
  pack_network(*net, path, opt);
  return path;
}

TEST(ModelRegistryTest, DeployActivatesAndRecordsHistory) {
  ModelRegistry registry;
  EXPECT_FALSE(registry.has_active());
  EXPECT_EQ(registry.active().artifact, nullptr);

  const std::string v1 = pack_version("registry_v1.art", 1);
  EXPECT_EQ(registry.deploy(v1), 1U);
  EXPECT_TRUE(registry.has_active());
  EXPECT_EQ(registry.active().version, 1U);
  EXPECT_EQ(registry.active().artifact->path(), v1);
  EXPECT_EQ(registry.deploys(), 1);

  const auto history = registry.history();
  ASSERT_EQ(history.size(), 1U);
  EXPECT_EQ(history[0].event, "activate");
  EXPECT_EQ(history[0].version, 1U);
  std::filesystem::remove(v1);
}

TEST(ModelRegistryTest, CorruptArtifactIsRejectedAndActiveUntouched) {
  ModelRegistry registry;
  const std::string v1 = pack_version("registry_keep.art", 1);
  registry.deploy(v1);

  const std::string v2 = pack_version("registry_corrupt.art", 2);
  robust::FaultInjector::corrupt_byte(v2, 100, 0x40);
  EXPECT_THROW(registry.deploy(v2), ArtifactError);
  EXPECT_EQ(registry.version(), 1U);
  EXPECT_EQ(registry.active().artifact->path(), v1);
  EXPECT_EQ(registry.rejects(), 1);
  const auto history = registry.history();
  ASSERT_EQ(history.size(), 2U);
  EXPECT_EQ(history[1].event, "reject");
  std::filesystem::remove(v1);
  std::filesystem::remove(v2);
}

TEST(ModelRegistryTest, ArchChangeIsRejectedWithTypedError) {
  ModelRegistry registry;
  const std::string v1 = pack_version("registry_arch1.art", 1);
  registry.deploy(v1);
  // Different hidden width => different fingerprint.
  const std::string v2 = pack_version("registry_arch2.art", 2, /*hidden=*/6);
  try {
    registry.deploy(v2);
    FAIL() << "topology change was hot-swapped";
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.code(), ArtifactErrorCode::kArchMismatch);
  }
  EXPECT_EQ(registry.version(), 1U);
  std::filesystem::remove(v1);
  std::filesystem::remove(v2);
}

TEST(ModelRegistryTest, CanaryCatchesLogitDriftEvenWhenChecksumsPass) {
  // Tamper with the recorded probe logits and repair every CRC: only the
  // canary replay can notice the artifact no longer reproduces its model.
  const std::string path = pack_version("registry_canary.art", 3);
  std::vector<char> bytes = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  }();
  // Locate the probe section in the table; flip a byte of its payload tail
  // (the recorded logits live at the end) and recompute its CRC, then the
  // footer CRC.
  bool patched = false;
  for (std::uint32_t s = 0; s < 4; ++s) {
    const std::size_t entry = kHeaderBytes + s * kSectionEntryBytes;
    std::uint32_t kind = 0;
    std::memcpy(&kind, bytes.data() + entry, sizeof kind);
    if (static_cast<SectionKind>(kind) != SectionKind::kProbe) continue;
    std::uint64_t offset = 0, size = 0;
    std::memcpy(&offset, bytes.data() + entry + 8, sizeof offset);
    std::memcpy(&size, bytes.data() + entry + 16, sizeof size);
    bytes[offset + size - 2] = static_cast<char>(bytes[offset + size - 2] ^ 0x01);
    const std::uint32_t crc = crc32(bytes.data() + offset, size);
    std::memcpy(bytes.data() + entry + 24, &crc, sizeof crc);
    patched = true;
  }
  ASSERT_TRUE(patched);
  const std::uint32_t fc = crc32(bytes.data(), bytes.size() - kFooterBytes);
  std::memcpy(bytes.data() + bytes.size() - 12, &fc, sizeof fc);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // The file itself now loads (all checksums valid)...
  EXPECT_NO_THROW(UllsnnArtifact::load(path));
  // ...but the canary gate refuses to activate it.
  ModelRegistry registry;
  EXPECT_THROW(registry.deploy(path), ArtifactError);
  EXPECT_FALSE(registry.has_active());
  EXPECT_EQ(registry.rejects(), 1);
  std::filesystem::remove(path);
}

TEST(ModelRegistryTest, ManualRollbackRestoresPreviousVersion) {
  ModelRegistry registry;
  const std::string v1 = pack_version("registry_rb1.art", 1);
  const std::string v2 = pack_version("registry_rb2.art", 2);
  registry.deploy(v1);
  registry.deploy(v2);
  EXPECT_EQ(registry.version(), 2U);
  EXPECT_TRUE(registry.can_rollback());

  EXPECT_EQ(registry.rollback("operator request"), 3U);
  EXPECT_EQ(registry.active().artifact->path(), v1);
  EXPECT_FALSE(registry.can_rollback());  // no ping-pong target
  EXPECT_THROW(registry.rollback("again"), std::logic_error);
  EXPECT_EQ(registry.rollbacks(), 1);
  std::filesystem::remove(v1);
  std::filesystem::remove(v2);
}

TEST(ModelRegistryTest, HealthRegressionAutoRollsBack) {
  RegistryConfig config;
  config.health_window = 4;
  config.health_failure_threshold = 2;
  ModelRegistry registry(config);
  const std::string v1 = pack_version("registry_hr1.art", 1);
  const std::string v2 = pack_version("registry_hr2.art", 2);
  registry.deploy(v1);
  registry.deploy(v2);

  // Stale verdicts (from a worker still draining v1) must be ignored.
  registry.record_batch_health(1, false);
  registry.record_batch_health(1, false);
  EXPECT_EQ(registry.version(), 2U);

  registry.record_batch_health(2, true);
  registry.record_batch_health(2, false);
  EXPECT_EQ(registry.version(), 2U);  // one failure, threshold is two
  registry.record_batch_health(2, false);
  EXPECT_EQ(registry.version(), 3U);  // rolled back
  EXPECT_EQ(registry.active().artifact->path(), v1);
  EXPECT_EQ(registry.rollbacks(), 1);
  const auto history = registry.history();
  EXPECT_EQ(history.back().event, "auto-rollback");

  // Beyond the window, bad batches no longer flip versions (breaker owns
  // steady-state degradation).
  for (int i = 0; i < 16; ++i) registry.record_batch_health(3, false);
  EXPECT_EQ(registry.version(), 3U);
  std::filesystem::remove(v1);
  std::filesystem::remove(v2);
}

TEST(ModelRegistryTest, HealthyWindowLeavesDeploymentAlone) {
  RegistryConfig config;
  config.health_window = 3;
  ModelRegistry registry(config);
  const std::string v1 = pack_version("registry_hw1.art", 1);
  const std::string v2 = pack_version("registry_hw2.art", 2);
  registry.deploy(v1);
  registry.deploy(v2);
  for (int i = 0; i < 8; ++i) registry.record_batch_health(2, true);
  EXPECT_EQ(registry.version(), 2U);
  EXPECT_EQ(registry.rollbacks(), 0);
  std::filesystem::remove(v1);
  std::filesystem::remove(v2);
}

// ---------------------------------------------------------------------------
// ServeEngine integration
// ---------------------------------------------------------------------------

serve::ServeConfig engine_config(std::int64_t workers = 2) {
  serve::ServeConfig config;
  config.workers = workers;
  config.default_deadline = 10000ms;
  config.request_timeout = 20000ms;
  config.retry_backoff = std::chrono::microseconds(0);
  return config;
}

Tensor probe_image() {
  Tensor image({4});
  image[0] = 1.5F;
  image[1] = 1.5F;
  return image;
}

TEST(RegistryServeTest, EngineRequiresDeployedRegistry) {
  auto registry = std::make_shared<ModelRegistry>();
  EXPECT_THROW(serve::ServeEngine(engine_config(), registry),
               std::invalid_argument);
  EXPECT_THROW(
      serve::ServeEngine(engine_config(), std::shared_ptr<ModelRegistry>()),
      std::invalid_argument);
}

TEST(RegistryServeTest, ServesFromRegistryAndInfersInputShape) {
  const std::string v1 = pack_version("registry_serve1.art", 1);
  auto registry = std::make_shared<ModelRegistry>();
  registry->deploy(v1);
  serve::ServeConfig config = engine_config(1);
  EXPECT_TRUE(config.input_shape.empty());
  serve::ServeEngine engine(config, registry);
  engine.start();
  auto submitted = engine.submit(probe_image());
  ASSERT_TRUE(submitted.accepted);
  const auto response = submitted.future.get();
  EXPECT_EQ(response.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(engine.workers_on_active(), 1);
  engine.stop();
  std::filesystem::remove(v1);
}

TEST(RegistryServeTest, LogitsAreBitwiseIdenticalAcrossTheSwapBoundary) {
  // v1 and v2 are packed from the SAME seed: a swap between them must be
  // invisible at the logit level. Any per-worker copy drift, encoder state
  // leak, or artifact layout bug shows up as a bitwise difference.
  const std::string v1 = pack_version("registry_bit1.art", 5);
  const std::string v2 = pack_version("registry_bit2.art", 5);
  auto registry = std::make_shared<ModelRegistry>();
  registry->deploy(v1);
  serve::ServeEngine engine(engine_config(1), registry);
  engine.start();

  auto before = engine.submit(probe_image());
  ASSERT_TRUE(before.accepted);
  const Tensor logits_before = before.future.get().logits;

  registry->deploy(v2);
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (engine.workers_on_active() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(engine.workers_on_active(), 1) << "swap never propagated";

  auto after = engine.submit(probe_image());
  ASSERT_TRUE(after.accepted);
  const Tensor logits_after = after.future.get().logits;
  ASSERT_EQ(logits_before.shape(), logits_after.shape());
  EXPECT_EQ(std::memcmp(logits_before.data(), logits_after.data(),
                        static_cast<std::size_t>(logits_before.numel()) *
                            sizeof(float)),
            0)
      << "hot swap of identical weights changed the logits";
  EXPECT_GE(engine.stats().swaps, 1);
  engine.stop();
  std::filesystem::remove(v1);
  std::filesystem::remove(v2);
}

TEST(RegistryServeTest, SwapUnderLoadLosesNoRequests) {
  const std::string v1 = pack_version("registry_load1.art", 1);
  const std::string v2 = pack_version("registry_load2.art", 2);
  const std::string v3 = pack_version("registry_load3.art", 3);
  auto registry = std::make_shared<ModelRegistry>();
  registry->deploy(v1);
  serve::ServeEngine engine(engine_config(2), registry);
  engine.start();

  constexpr int kRequests = 300;
  std::vector<serve::ResponseFuture> futures;
  futures.reserve(kRequests);
  int accepted = 0;
  for (int i = 0; i < kRequests; ++i) {
    if (i == 100) registry->deploy(v2);
    if (i == 200) registry->deploy(v3);
    auto submitted = engine.submit(probe_image());
    if (submitted.accepted) {
      futures.push_back(std::move(submitted.future));
      ++accepted;
    }
    if (i % 16 == 0) std::this_thread::sleep_for(1ms);
  }
  int resolved = 0;
  for (auto& f : futures) {
    const auto response = f.get();  // must never hang: watchdog bounds it
    EXPECT_TRUE(response.status == serve::ResponseStatus::kOk ||
                response.status == serve::ResponseStatus::kDegraded)
        << "request finished as " << serve::to_string(response.status) << " ("
        << response.reason << ")";
    ++resolved;
  }
  EXPECT_EQ(resolved, accepted);
  EXPECT_EQ(registry->version(), 3U);
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (engine.workers_on_active() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(engine.workers_on_active(), 2);
  EXPECT_GE(engine.stats().swaps, 1);
  engine.stop();
  for (const auto& p : {v1, v2, v3}) std::filesystem::remove(p);
}

TEST(RegistryServeTest, PostSwapRegressionRollsBackAutomatically) {
  const std::string v1 = pack_version("registry_auto1.art", 1);
  const std::string v2 = pack_version("registry_auto2.art", 2);
  RegistryConfig rc;
  rc.health_window = 6;
  rc.health_failure_threshold = 1;
  auto registry = std::make_shared<ModelRegistry>(rc);
  registry->deploy(v1);

  // Chaos hook: once armed, poison every batch's logits so the post-swap
  // health feed sees a regression on the freshly deployed version.
  std::atomic<bool> poison{false};
  serve::ServeConfig config = engine_config(1);
  config.max_attempts = 1;
  config.breaker.failure_threshold = 1000;  // keep the breaker out of the way
  config.after_forward_hook = [&poison](const std::vector<std::int64_t>&,
                                        Tensor& logits) {
    if (poison.load(std::memory_order_acquire)) {
      logits[0] = std::numeric_limits<float>::quiet_NaN();
    }
  };
  serve::ServeEngine engine(config, registry);
  engine.start();

  auto ok = engine.submit(probe_image());
  ASSERT_TRUE(ok.accepted);
  EXPECT_EQ(ok.future.get().status, serve::ResponseStatus::kOk);

  registry->deploy(v2);
  poison.store(true, std::memory_order_release);
  // Drive batches until the registry flees v2. Each request fails (kError)
  // but is still answered — degraded service, zero lost requests.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (registry->version() == 2U &&
         std::chrono::steady_clock::now() < deadline) {
    auto submitted = engine.submit(probe_image());
    if (submitted.accepted) (void)submitted.future.get();
  }
  ASSERT_EQ(registry->version(), 3U) << "auto-rollback never fired";
  EXPECT_EQ(registry->active().artifact->path(), v1);
  // In-flight poisoned batches on the rolled-back version may append further
  // "health-regression" notes, so check containment rather than the tail.
  const auto events = registry->history();
  EXPECT_TRUE(std::any_of(events.begin(), events.end(), [](const auto& t) {
    return t.event == "auto-rollback";
  }));

  // Heal the chaos: the rolled-back model serves cleanly again.
  poison.store(false, std::memory_order_release);
  const auto settle = std::chrono::steady_clock::now() + 5s;
  bool healthy_again = false;
  while (!healthy_again && std::chrono::steady_clock::now() < settle) {
    auto submitted = engine.submit(probe_image());
    if (!submitted.accepted) continue;
    healthy_again =
        submitted.future.get().status == serve::ResponseStatus::kOk;
  }
  EXPECT_TRUE(healthy_again);
  engine.stop();
  std::filesystem::remove(v1);
  std::filesystem::remove(v2);
}

}  // namespace
}  // namespace ullsnn::artifact
