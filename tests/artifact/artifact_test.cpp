// Artifact format tests: round-trip fidelity, zero-copy replica
// construction, and the full fault-injection corruption matrix — every
// single byte flip and every truncation class must be rejected with a typed
// ArtifactError, never a crash, an allocation bomb, or silently wrong
// weights.
#include "src/artifact/artifact.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "src/obs/build_info.h"
#include "src/obs/metrics.h"
#include "src/robust/fault_injector.h"
#include "src/snn/snn_network.h"
#include "src/tensor/random.h"
#include "src/util/serialize.h"

namespace ullsnn::artifact {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Tensor random_tensor(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.uniform() * 0.5F - 0.25F;
  }
  return t;
}

snn::IfConfig if_config(float v_th = 0.4F) {
  snn::IfConfig c;
  c.v_threshold = v_th;
  c.leak = 1.0F;
  return c;
}

/// Conv -> maxpool -> flatten -> dropout -> linear -> readout over a
/// {2, 4, 4} input: exercises every weighted layer kind except residual.
std::unique_ptr<snn::SnnNetwork> make_vggish_net(std::uint64_t seed,
                                                 std::int64_t time_steps = 3) {
  Rng rng(seed);
  auto net = std::make_unique<snn::SnnNetwork>(time_steps);
  Conv2dSpec conv{/*in_channels=*/2, /*out_channels=*/4, /*kernel=*/3,
                  /*stride=*/1, /*pad=*/1};
  net->emplace<snn::SpikingConv2d>(random_tensor({4, 2, 3, 3}, rng), conv,
                                   if_config());
  net->emplace<snn::SpikingMaxPool>(Pool2dSpec{2, 2});
  net->emplace<snn::SpikingFlatten>();
  net->emplace<snn::SpikingDropout>(0.1F, net->dropout_rng());
  net->emplace<snn::SpikingLinear>(random_tensor({8, 16}, rng), if_config(),
                                   /*with_neuron=*/true);
  net->emplace<snn::SpikingLinear>(random_tensor({3, 8}, rng), snn::IfConfig{},
                                   /*with_neuron=*/false);
  return net;
}

/// Residual block (with projection) -> avgpool -> flatten -> readout:
/// covers the remaining layer kinds.
std::unique_ptr<snn::SnnNetwork> make_resnetish_net(std::uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<snn::SnnNetwork>(2);
  Conv2dSpec c1{2, 4, 3, /*stride=*/2, /*pad=*/1};
  Conv2dSpec c2{4, 4, 3, 1, 1};
  Conv2dSpec proj{2, 4, 1, /*stride=*/2, /*pad=*/0};
  net->emplace<snn::SpikingResidualBlock>(
      random_tensor({4, 2, 3, 3}, rng), c1, if_config(),
      random_tensor({4, 4, 3, 3}, rng), c2, if_config(),
      random_tensor({4, 2, 1, 1}, rng), proj);
  net->emplace<snn::SpikingAvgPool>(Pool2dSpec{2, 2});
  net->emplace<snn::SpikingFlatten>();
  net->emplace<snn::SpikingLinear>(random_tensor({3, 4}, rng), snn::IfConfig{},
                                   /*with_neuron=*/false);
  return net;
}

PackOptions pack_options() {
  PackOptions opt;
  opt.input_shape = {2, 4, 4};
  opt.probe_batch = 2;
  return opt;
}

std::string packed_artifact(const char* name, std::uint64_t seed = 11) {
  const std::string path = temp_path(name);
  auto net = make_vggish_net(seed);
  pack_network(*net, path, pack_options());
  return path;
}

// ---------------------------------------------------------------------------
// Round trip
// ---------------------------------------------------------------------------

TEST(ArtifactTest, RoundTripReproducesBitExactLogits) {
  const std::string path = temp_path("artifact_roundtrip.art");
  auto source = make_vggish_net(3);
  pack_network(*source, path, pack_options());

  auto art = UllsnnArtifact::load(path);
  EXPECT_EQ(art->time_steps(), 3);
  EXPECT_EQ(art->arch().layers.size(), 6U);
  EXPECT_EQ(art->tensor_count(), 3);
  EXPECT_EQ(art->input_shape(), Shape({2, 4, 4}));
  EXPECT_EQ(art->probe_time_steps(), 3);

  Rng rng(77);
  Tensor batch = random_tensor({2, 2, 4, 4}, rng);
  source->reset_state();
  const Tensor expected = source->forward(batch, false);

  auto replica = art->make_network();
  replica->reset_state();
  const Tensor got = replica->forward(batch, false);
  ASSERT_EQ(got.shape(), expected.shape());
  EXPECT_EQ(std::memcmp(got.data(), expected.data(),
                        static_cast<std::size_t>(got.numel()) * sizeof(float)),
            0)
      << "replica logits differ from the packed network's";
  std::filesystem::remove(path);
}

TEST(ArtifactTest, ResidualArchRoundTrips) {
  const std::string path = temp_path("artifact_residual.art");
  auto source = make_resnetish_net(5);
  pack_network(*source, path, pack_options());
  auto art = UllsnnArtifact::load(path);
  EXPECT_EQ(art->tensor_count(), 4);  // conv1, conv2, projection, head
  ASSERT_EQ(art->arch().layers.size(), 4U);
  EXPECT_EQ(art->arch().layers[0].kind, LayerKind::kResidual);
  EXPECT_EQ(art->arch().layers[0].has_projection, 1);

  Rng rng(78);
  Tensor batch = random_tensor({1, 2, 4, 4}, rng);
  source->reset_state();
  const Tensor expected = source->forward(batch, false);
  auto replica = art->make_network();
  replica->reset_state();
  const Tensor got = replica->forward(batch, false);
  EXPECT_EQ(std::memcmp(got.data(), expected.data(),
                        static_cast<std::size_t>(got.numel()) * sizeof(float)),
            0);
  std::filesystem::remove(path);
}

TEST(ArtifactTest, Int8PackRoundTripsAndReplaysCanaryBitExact) {
  const std::string path = temp_path("artifact_int8.art");
  auto source = make_vggish_net(13);
  PackOptions opt = pack_options();
  opt.precision = Precision::kInt8;
  pack_network(*source, path, opt);
  // pack_network flips the live net to int8 only for the probe forward.
  EXPECT_EQ(source->precision(), Precision::kFp32);

  auto art = UllsnnArtifact::load(path);
  EXPECT_EQ(art->precision(), Precision::kInt8);
  EXPECT_EQ(art->quant_weights().size(), 3U);  // conv + 2 linear weights

  // A replica built from the artifact serves at int8 and must reproduce the
  // canary logits recorded at pack time bit-for-bit — this is the deploy
  // gate an int8 artifact has to clear.
  auto replica = art->make_network();
  EXPECT_EQ(replica->precision(), Precision::kInt8);
  replica->reset_state();
  const Tensor canary = replica->forward(art->probe_inputs(), false);
  const Tensor want = art->probe_logits();
  ASSERT_EQ(canary.shape(), want.shape());
  EXPECT_EQ(std::memcmp(canary.data(), want.data(),
                        static_cast<std::size_t>(want.numel()) * sizeof(float)),
            0)
      << "int8 replica canary drifted from the packed logits";

  // Disk-installed quantized weights must equal what the live network
  // self-quantizes lazily: same batch, bitwise-equal logits.
  Rng rng(80);
  Tensor batch = random_tensor({2, 2, 4, 4}, rng);
  source->set_precision(Precision::kInt8);
  source->reset_state();
  const Tensor expected = source->forward(batch, false);
  replica->reset_state();
  const Tensor got = replica->forward(batch, false);
  ASSERT_EQ(got.shape(), expected.shape());
  EXPECT_EQ(std::memcmp(got.data(), expected.data(),
                        static_cast<std::size_t>(got.numel()) * sizeof(float)),
            0);

  // Sanity: the precision flag actually routed dense samples through the
  // int8 kernel (spike thresholding can absorb the quantization deltas on a
  // net this small, so compare dispatch counts, not logits).
  if (obs::build_info().telemetry) {
    const std::int64_t before =
        obs::Registry::instance().counter("kernels.int8_dispatch").value();
    replica->reset_state();
    replica->forward(batch, false);
    EXPECT_GT(obs::Registry::instance().counter("kernels.int8_dispatch").value(),
              before);
  }
  std::filesystem::remove(path);
}

TEST(ArtifactTest, PoissonEncodingAndSeedSurviveRoundTrip) {
  const std::string path = temp_path("artifact_poisson.art");
  auto source = make_vggish_net(9);
  source->set_encoding(snn::Encoding::kPoisson, 4242);
  pack_network(*source, path, pack_options());
  auto art = UllsnnArtifact::load(path);
  EXPECT_EQ(art->arch().encoding,
            static_cast<std::uint32_t>(snn::Encoding::kPoisson));
  EXPECT_EQ(art->arch().encoder_seed, 4242U);

  Rng rng(79);
  Tensor batch = random_tensor({2, 2, 4, 4}, rng);
  source->reset_state();
  const Tensor expected = source->forward(batch, false);
  auto replica = art->make_network();
  replica->reset_state();
  const Tensor got = replica->forward(batch, false);
  EXPECT_EQ(std::memcmp(got.data(), expected.data(),
                        static_cast<std::size_t>(got.numel()) * sizeof(float)),
            0)
      << "Poisson encoder stream did not replay identically";
  std::filesystem::remove(path);
}

TEST(ArtifactTest, ReplicasAreZeroCopyOverTheMapping) {
  const std::string path = packed_artifact("artifact_zerocopy.art");
  auto art = UllsnnArtifact::load(path);
  auto a = art->make_network();
  auto b = art->make_network();

  auto* conv_a = dynamic_cast<snn::SpikingConv2d*>(&a->layer(0));
  auto* conv_b = dynamic_cast<snn::SpikingConv2d*>(&b->layer(0));
  ASSERT_NE(conv_a, nullptr);
  ASSERT_NE(conv_b, nullptr);
  const Tensor& wa = conv_a->synapse().weight().value;
  const Tensor& wb = conv_b->synapse().weight().value;
  EXPECT_TRUE(wa.borrowed());
  // Both replicas read the SAME mapped bytes: no per-worker weight copies.
  EXPECT_EQ(wa.data(), wb.data());
  EXPECT_TRUE(art->contains(wa.data()));

  // 64-byte alignment of every tensor payload, straight from the mapping.
  // (Read through a const binding: non-const data() detaches by design.)
  for (std::int64_t i = 0; i < art->tensor_count(); ++i) {
    const Tensor view = art->tensor_view(i);
    ASSERT_TRUE(view.borrowed());
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(view.data()) % 64, 0U);
  }
  std::filesystem::remove(path);
}

TEST(ArtifactTest, ProbeAccessorsExposeThePackedCanary) {
  const std::string path = packed_artifact("artifact_probe.art");
  auto art = UllsnnArtifact::load(path);
  const Tensor inputs = art->probe_inputs();
  const Tensor logits = art->probe_logits();
  EXPECT_EQ(inputs.shape(), Shape({2, 2, 4, 4}));
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_TRUE(inputs.borrowed());
  EXPECT_TRUE(art->contains(inputs.data()));

  // Replaying the probe reproduces the recorded logits bit-for-bit.
  auto replica = art->make_network();
  replica->set_time_steps(art->probe_time_steps());
  replica->reset_state();
  const Tensor replay = replica->forward(inputs, false);
  EXPECT_EQ(std::memcmp(replay.data(), logits.data(),
                        static_cast<std::size_t>(logits.numel()) * sizeof(float)),
            0);
  std::filesystem::remove(path);
}

TEST(ArtifactTest, SameTopologyFingerprintsMatchAcrossRetrains) {
  const std::string p1 = packed_artifact("artifact_fp1.art", 1);
  const std::string p2 = packed_artifact("artifact_fp2.art", 2);
  auto a1 = UllsnnArtifact::load(p1);
  auto a2 = UllsnnArtifact::load(p2);
  // Different weights, same topology: hot-swappable.
  EXPECT_EQ(a1->fingerprint(), a2->fingerprint());

  const std::string p3 = temp_path("artifact_fp3.art");
  auto other = make_resnetish_net(1);
  pack_network(*other, p3, pack_options());
  auto a3 = UllsnnArtifact::load(p3);
  EXPECT_NE(a1->fingerprint(), a3->fingerprint());
  for (const auto& p : {p1, p2, p3}) std::filesystem::remove(p);
}

TEST(ArtifactTest, PackIsAtomicAndOverwritesStaleTemp) {
  const std::string path = temp_path("artifact_atomic.art");
  // A crashed previous pack left a half-written temp file behind.
  write_file(path + ".tmp", {'g', 'a', 'r', 'b', 'a', 'g', 'e'});
  auto net = make_vggish_net(21);
  pack_network(*net, path, pack_options());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_NO_THROW(UllsnnArtifact::load(path));
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Corruption matrix
// ---------------------------------------------------------------------------

TEST(ArtifactCorruptionTest, EverySingleByteFlipIsRejected) {
  const std::string path = packed_artifact("artifact_fuzz_flip.art");
  const std::vector<char> pristine = read_file(path);
  ASSERT_GT(pristine.size(), 256U);
  for (std::size_t offset = 0; offset < pristine.size(); ++offset) {
    std::vector<char> bytes = pristine;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x10);
    write_file(path, bytes);
    try {
      UllsnnArtifact::load(path);
      FAIL() << "flipped byte at offset " << offset << " was accepted";
    } catch (const ArtifactError&) {
      // expected: typed rejection
    }
  }
  write_file(path, pristine);
  EXPECT_NO_THROW(UllsnnArtifact::load(path));
  std::filesystem::remove(path);
}

TEST(ArtifactCorruptionTest, TruncationAtEverySectionBoundaryIsRejected) {
  const std::string path = packed_artifact("artifact_fuzz_trunc.art");
  const std::vector<char> pristine = read_file(path);
  const std::uint64_t size = pristine.size();

  // Boundary set: degenerate sizes, the header edge, the section-table edge,
  // every section's start and end (recovered from the table), and the footer.
  std::vector<std::uint64_t> cuts = {0, 1, kHeaderBytes - 1, kHeaderBytes,
                                     kHeaderBytes + 4 * kSectionEntryBytes,
                                     size - kFooterBytes, size - 1};
  for (std::uint32_t s = 0; s < 4; ++s) {
    std::uint64_t offset = 0, payload = 0;
    std::memcpy(&offset, pristine.data() + kHeaderBytes + s * kSectionEntryBytes + 8,
                sizeof offset);
    std::memcpy(&payload,
                pristine.data() + kHeaderBytes + s * kSectionEntryBytes + 16,
                sizeof payload);
    cuts.push_back(offset);
    cuts.push_back(offset + payload / 2);
    cuts.push_back(offset + payload);
  }
  for (const std::uint64_t keep : cuts) {
    ASSERT_LT(keep, size);
    write_file(path, pristine);
    if (keep == 0) {
      write_file(path, {});
    } else {
      robust::FaultInjector::truncate_file(path, keep);
    }
    try {
      UllsnnArtifact::load(path);
      FAIL() << "file truncated to " << keep << " bytes was accepted";
    } catch (const ArtifactError& e) {
      EXPECT_TRUE(e.code() == ArtifactErrorCode::kTruncated ||
                  e.code() == ArtifactErrorCode::kFooterCorrupt)
          << "truncation to " << keep << " raised " << to_string(e.code());
    }
  }
  std::filesystem::remove(path);
}

TEST(ArtifactCorruptionTest, RandomByteCorruptionViaInjectorIsRejected) {
  const std::string path = packed_artifact("artifact_fuzz_rand.art");
  const std::vector<char> pristine = read_file(path);
  robust::FaultInjector injector(robust::FaultSpec{.seed = 99});
  for (int trial = 0; trial < 64; ++trial) {
    write_file(path, pristine);
    injector.corrupt_random_byte(path);
    EXPECT_THROW(UllsnnArtifact::load(path), ArtifactError) << "trial " << trial;
  }
  std::filesystem::remove(path);
}

TEST(ArtifactCorruptionTest, NotAnArtifactIsBadMagic) {
  const std::string path = temp_path("artifact_not_one.art");
  std::vector<char> junk(256, 'z');
  write_file(path, junk);
  try {
    UllsnnArtifact::load(path);
    FAIL();
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.code(), ArtifactErrorCode::kBadMagic);
  }
  std::filesystem::remove(path);
}

TEST(ArtifactCorruptionTest, MissingFileIsIo) {
  try {
    UllsnnArtifact::load(temp_path("artifact_never_written.art"));
    FAIL();
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.code(), ArtifactErrorCode::kIo);
  }
}

/// Recompute the header CRC and whole-file footer CRC after a deliberate
/// field edit, so the *semantic* checks (not the checksums) must reject.
void reseal(std::vector<char>& bytes) {
  std::memset(bytes.data() + 12, 0, 4);
  const std::uint32_t hc = crc32(bytes.data(), kHeaderBytes);
  std::memcpy(bytes.data() + 12, &hc, sizeof hc);
  const std::uint32_t fc = crc32(bytes.data(), bytes.size() - kFooterBytes);
  std::memcpy(bytes.data() + bytes.size() - 12, &fc, sizeof fc);
}

TEST(ArtifactCorruptionTest, FutureFormatVersionIsBadVersion) {
  const std::string path = packed_artifact("artifact_future.art");
  std::vector<char> bytes = read_file(path);
  const std::uint32_t future = 99;
  std::memcpy(bytes.data() + 8, &future, sizeof future);
  reseal(bytes);
  write_file(path, bytes);
  try {
    UllsnnArtifact::load(path);
    FAIL();
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.code(), ArtifactErrorCode::kBadVersion);
  }
  std::filesystem::remove(path);
}

TEST(ArtifactCorruptionTest, TamperedFingerprintIsCaughtByCrossCheck) {
  // Flip a fingerprint bit but fix up every checksum: only the recompute-
  // and-compare of the parsed architecture can catch it.
  const std::string path = packed_artifact("artifact_tamper_fp.art");
  std::vector<char> bytes = read_file(path);
  bytes[24] = static_cast<char>(bytes[24] ^ 0x01);
  reseal(bytes);
  write_file(path, bytes);
  try {
    UllsnnArtifact::load(path);
    FAIL();
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.code(), ArtifactErrorCode::kHeaderCorrupt);
  }
  std::filesystem::remove(path);
}

TEST(ArtifactCorruptionTest, ErrorCodesHaveStableNames) {
  EXPECT_STREQ(to_string(ArtifactErrorCode::kTruncated), "truncated");
  EXPECT_STREQ(to_string(ArtifactErrorCode::kArchMismatch), "arch-mismatch");
  EXPECT_STREQ(to_string(SectionKind::kWeights), "weights");
}

// ---------------------------------------------------------------------------
// Borrowed-tensor semantics the artifact relies on
// ---------------------------------------------------------------------------

TEST(ArtifactTest, BorrowedTensorCopiesShareAndDetachOnWrite) {
  const float backing[6] = {1, 2, 3, 4, 5, 6};
  Tensor view = Tensor::borrow({2, 3}, backing);
  EXPECT_TRUE(view.borrowed());
  EXPECT_EQ(view.numel(), 6);
  EXPECT_EQ(static_cast<const Tensor&>(view).data(), backing);

  Tensor copy = view;  // pointer copy, not a payload copy
  EXPECT_TRUE(copy.borrowed());
  EXPECT_EQ(static_cast<const Tensor&>(copy).data(), backing);

  // Mutable access via data() detaches into a private owned payload.
  // (Element accessors at()/operator[] skip the borrow check by contract —
  // they sit in training inner loops — so detaching first is on the caller.)
  copy.data()[0] = 42.0F;
  EXPECT_FALSE(copy.borrowed());
  EXPECT_NE(static_cast<const Tensor&>(copy).data(), backing);
  EXPECT_FLOAT_EQ(copy[0], 42.0F);
  EXPECT_FLOAT_EQ(backing[0], 1.0F);
  EXPECT_TRUE(view.borrowed());  // the original view is untouched
  EXPECT_FLOAT_EQ(copy[1], 2.0F);  // detach copied the borrowed payload
}

}  // namespace
}  // namespace ullsnn::artifact
