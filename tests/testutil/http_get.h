// Tiny blocking HTTP/1.1 test client for exercising obs::HttpEndpoint.
// Sends one request, reads to EOF (the endpoint always closes), and splits
// the status line / headers / body apart. Test-only; no production use.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

namespace ullsnn::testutil {

struct HttpResult {
  bool ok = false;       // transport-level success (connect + full read)
  int status = 0;        // parsed from the status line
  std::string headers;   // raw header block
  std::string body;
};

/// One GET (or other method) against 127.0.0.1:port. Returns ok=false on any
/// socket failure so tests can ASSERT on it.
inline HttpResult http_request(int port, const std::string& target,
                               const std::string& method = "GET") {
  HttpResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return result;
  }
  const std::string request =
      method + " " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return result;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return result;
  result.headers = raw.substr(0, header_end);
  result.body = raw.substr(header_end + 4);
  // "HTTP/1.1 200 OK"
  const std::size_t sp = result.headers.find(' ');
  if (sp == std::string::npos) return result;
  result.status = std::atoi(result.headers.c_str() + sp + 1);
  result.ok = true;
  return result;
}

}  // namespace ullsnn::testutil
