// Quickstart: the whole paper in one small run.
//
// Trains a reduced-width VGG-11 on SyntheticCIFAR-10, converts it to a
// 2-time-step SNN with the percentile (alpha, beta) search, fine-tunes with
// surrogate gradients, and prints the three-stage accuracies plus the
// energy-efficiency summary. Finishes in a couple of minutes on one core.
//
// Usage: quickstart [epochs] [train_size]
#include <cstdio>
#include <exception>
#include <cstdlib>

#include "src/core/pipeline.h"
#include "src/energy/energy_model.h"
#include "src/energy/flops.h"

using namespace ullsnn;

int run(int argc, char** argv) {
  const std::int64_t epochs = argc > 1 ? std::atoll(argv[1]) : 6;
  const std::int64_t train_size = argc > 2 ? std::atoll(argv[2]) : 1024;

  // Synthetic stand-in for CIFAR-10 (see DESIGN.md for the substitution).
  data::SyntheticCifarSpec data_spec;
  data::SyntheticCifar generator(data_spec);
  data::LabeledImages train = generator.generate(train_size, /*split_salt=*/1);
  data::LabeledImages test = generator.generate(train_size / 4, /*split_salt=*/2);
  const data::ChannelStats stats = data::standardize(train);
  data::apply_standardize(test, stats);

  core::PipelineConfig config;
  config.arch = core::Architecture::kVgg11;
  config.model.width = 0.125F;  // single-core scale; same topology as paper
  config.model.num_classes = data_spec.num_classes;
  config.dnn_train.epochs = epochs;
  config.dnn_train.verbose = true;
  config.conversion.mode = core::ConversionMode::kOursAlphaBeta;
  config.conversion.time_steps = 2;
  config.sgl.epochs = epochs / 2 + 1;
  config.sgl.verbose = true;
  config.verbose = true;

  std::printf("== ull-snn quickstart: VGG-11 on SyntheticCIFAR-10, T=2 ==\n");
  core::HybridPipeline pipeline(config);
  const core::PipelineResult result = pipeline.run(train, test);

  std::printf("\n(a) DNN accuracy:            %.2f%%\n", 100.0 * result.dnn_accuracy);
  std::printf("(b) converted SNN accuracy:  %.2f%%\n", 100.0 * result.converted_accuracy);
  std::printf("(c) SNN accuracy after SGL:  %.2f%%\n", 100.0 * result.sgl_accuracy);

  // Energy comparison (Sec. VI): measure SNN activity on the test set, then
  // compare compute energy against the iso-architecture DNN.
  const Shape input_shape = {1, 3, data_spec.image_size, data_spec.image_size};
  pipeline.snn().reset_stats();
  snn::evaluate_snn(pipeline.snn(), test);
  const energy::FlopsReport dnn_flops =
      energy::count_dnn_flops(pipeline.dnn(), input_shape);
  const energy::FlopsReport snn_flops =
      energy::count_snn_flops(pipeline.snn(), input_shape);
  const double dnn_pj = energy::compute_energy_pj(dnn_flops);
  const double snn_pj = energy::compute_energy_pj(snn_flops);
  std::printf("\nDNN compute: %.3e MACs -> %.3e pJ\n", dnn_flops.total_macs, dnn_pj);
  std::printf("SNN compute: %.3e MACs + %.3e ACs -> %.3e pJ\n", snn_flops.total_macs,
              snn_flops.total_acs, snn_pj);
  std::printf("Compute-energy reduction vs DNN: %.1fx\n", dnn_pj / snn_pj);
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "quickstart: %s\n", e.what());
    return 1;
  }
}
