// Full three-stage hybrid pipeline with every knob exposed on the command
// line — the programmable counterpart of a Table I row.
//
// Usage:
//   hybrid_training [--arch vgg11|vgg13|vgg16|resnet20|resnet32]
//                   [--classes N] [--timesteps T] [--width W]
//                   [--dnn-epochs N] [--sgl-epochs N] [--train N] [--test N]
//                   [--mode ours|threshold|maxact|heuristic]
//                   [--save model.ckpt]
//
// Prints the Table I columns for the chosen configuration and, with --save,
// writes the trained DNN weights for reuse by energy_audit.
#include <cstdio>
#include <exception>
#include <cstring>
#include <map>
#include <string>

#include "src/core/pipeline.h"
#include "src/util/serialize.h"

using namespace ullsnn;

namespace {

core::Architecture parse_arch(const std::string& s) {
  if (s == "vgg11") return core::Architecture::kVgg11;
  if (s == "vgg13") return core::Architecture::kVgg13;
  if (s == "vgg16") return core::Architecture::kVgg16;
  if (s == "resnet20") return core::Architecture::kResNet20;
  if (s == "resnet32") return core::Architecture::kResNet32;
  throw std::invalid_argument("unknown --arch " + s);
}

core::ConversionMode parse_mode(const std::string& s) {
  if (s == "ours") return core::ConversionMode::kOursAlphaBeta;
  if (s == "threshold") return core::ConversionMode::kThresholdReLU;
  if (s == "maxact") return core::ConversionMode::kMaxAct;
  if (s == "heuristic") return core::ConversionMode::kPercentileHeuristic;
  throw std::invalid_argument("unknown --mode " + s);
}

}  // namespace

int run(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::fprintf(stderr, "expected --flag value pairs\n");
      return 1;
    }
    args[argv[i] + 2] = argv[i + 1];
  }
  const auto get = [&](const char* key, const std::string& fallback) {
    const auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
  };

  core::PipelineConfig config;
  config.arch = parse_arch(get("arch", "vgg11"));
  config.model.num_classes = std::stoll(get("classes", "10"));
  config.model.width = std::stof(get("width", "0.125"));
  config.dnn_train.epochs = std::stoll(get("dnn-epochs", "15"));
  config.dnn_train.augment = false;
  config.sgl.epochs = std::stoll(get("sgl-epochs", "5"));
  config.sgl.augment = false;
  config.conversion.mode = parse_mode(get("mode", "ours"));
  config.conversion.time_steps = std::stoll(get("timesteps", "2"));
  config.verbose = true;

  const std::int64_t train_n = std::stoll(get("train", "1024"));
  const std::int64_t test_n = std::stoll(get("test", "256"));
  data::SyntheticCifarSpec spec;
  spec.num_classes = config.model.num_classes;
  data::SyntheticCifar gen(spec);
  data::LabeledImages train = gen.generate(train_n, 1);
  data::LabeledImages test = gen.generate(test_n, 2);
  const data::ChannelStats stats = data::standardize(train);
  data::apply_standardize(test, stats);

  std::printf("== hybrid training: %s, %lld classes, T=%lld, mode=%s ==\n",
              core::to_string(config.arch),
              static_cast<long long>(config.model.num_classes),
              static_cast<long long>(config.conversion.time_steps),
              core::to_string(config.conversion.mode));
  core::HybridPipeline pipeline(config);
  const core::PipelineResult result = pipeline.run(train, test);

  std::printf("\n(a) DNN:        %.2f%%   (train %.0fs)\n", 100.0 * result.dnn_accuracy,
              result.dnn_train_seconds);
  std::printf("(b) converted:  %.2f%%\n", 100.0 * result.converted_accuracy);
  std::printf("(c) after SGL:  %.2f%%   (train %.0fs)\n", 100.0 * result.sgl_accuracy,
              result.sgl_train_seconds);
  std::printf("\nper-layer (alpha -> V_th, beta):\n");
  for (std::size_t i = 0; i < result.conversion_report.sites.size(); ++i) {
    const core::SiteScaling& s = result.conversion_report.sites[i];
    std::printf("  site %-2zu alpha %.3f  V_th %.3f  beta %.3f\n", i, s.alpha,
                s.v_threshold, s.beta);
  }

  const std::string save_path = get("save", "");
  if (!save_path.empty()) {
    TensorDict dict;
    std::int64_t i = 0;
    for (const dnn::Param* p : pipeline.dnn().params()) {
      dict["p" + std::to_string(i++)] = p->value;
    }
    save_tensors(dict, save_path);
    std::printf("\nsaved trained DNN weights to %s\n", save_path.c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hybrid_training: %s\n", e.what());
    return 1;
  }
}
