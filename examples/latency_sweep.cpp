// Latency sweep: trains one DNN, then converts it at a range of time steps
// under every conversion mode and prints accuracy-vs-T — a programmable
// Fig. 2 with the proposed (alpha, beta) mode included.
//
// Usage: latency_sweep [dnn_epochs] [train_size] [max_T]
#include <cstdio>
#include <exception>
#include <cstdlib>

#include "src/core/converter.h"
#include "src/dnn/models.h"
#include "src/dnn/trainer.h"
#include "src/util/table.h"

using namespace ullsnn;

int run(int argc, char** argv) {
  const std::int64_t epochs = argc > 1 ? std::atoll(argv[1]) : 15;
  const std::int64_t train_n = argc > 2 ? std::atoll(argv[2]) : 1024;
  const std::int64_t max_t = argc > 3 ? std::atoll(argv[3]) : 16;

  data::SyntheticCifarSpec spec;
  data::SyntheticCifar gen(spec);
  data::LabeledImages train = gen.generate(train_n, 1);
  data::LabeledImages test = gen.generate(train_n / 4, 2);
  const data::ChannelStats stats = data::standardize(train);
  data::apply_standardize(test, stats);

  Rng rng(3);
  dnn::ModelConfig mc;
  mc.width = 0.125F;
  auto model = dnn::build_vgg(11, mc, rng);
  dnn::TrainConfig tc;
  tc.epochs = epochs;
  tc.augment = false;
  tc.verbose = true;
  dnn::DnnTrainer trainer(*model, tc);
  trainer.fit(train);
  const double dnn_acc = trainer.evaluate(test);
  std::printf("DNN accuracy: %.2f%%\n", 100.0 * dnn_acc);

  // Collect once; convert many times (the profile is conversion-invariant).
  const core::ActivationProfile profile = core::collect_activations(*model, train);

  Table table({"T", "ours %", "threshold-relu %", "max-act %", "heuristic %"});
  for (std::int64_t t = 1; t <= max_t; t *= 2) {
    std::vector<std::string> row = {std::to_string(t)};
    for (const core::ConversionMode mode :
         {core::ConversionMode::kOursAlphaBeta, core::ConversionMode::kThresholdReLU,
          core::ConversionMode::kMaxAct, core::ConversionMode::kPercentileHeuristic}) {
      core::ConversionConfig cc;
      cc.mode = mode;
      cc.time_steps = t;
      auto snn = core::convert(*model, profile, cc, nullptr);
      row.push_back(Table::fmt(100.0 * snn::evaluate_snn(*snn, test)));
    }
    table.add_row(std::move(row));
    std::printf("T=%lld done\n", static_cast<long long>(t));
    std::fflush(stdout);
  }
  table.print("conversion-only accuracy vs T (DNN = " +
              Table::fmt(100.0 * dnn_acc) + "%)");
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "latency_sweep: %s\n", e.what());
    return 1;
  }
}
