// Fault-tolerant hybrid training: the three-stage pipeline with stage-level
// checkpoint/resume and rollback health guards enabled.
//
// Usage:
//   resilient_training [--dir DIR] [--timesteps T] [--classes N]
//                      [--dnn-epochs N] [--sgl-epochs N] [--train N] [--test N]
//                      [--guard off|warn|throw|rollback] [--fresh 1]
//
// Kill it at any point and run it again with the same --dir: completed
// stages are skipped (their weights and accuracies replay from the
// manifest), and an interrupted training stage resumes from its last
// completed epoch with bitwise-identical results to an uninterrupted run.
// --fresh 1 wipes the checkpoint directory first.
#include <cstdio>
#include <exception>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include "src/core/pipeline.h"
#include "src/robust/health.h"

using namespace ullsnn;

namespace {

robust::GuardPolicy parse_guard(const std::string& s) {
  if (s == "off") return robust::GuardPolicy::kOff;
  if (s == "warn") return robust::GuardPolicy::kWarn;
  if (s == "throw") return robust::GuardPolicy::kThrow;
  if (s == "rollback") return robust::GuardPolicy::kRollback;
  throw std::invalid_argument("unknown --guard " + s);
}

}  // namespace

int run(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::fprintf(stderr, "expected --flag value pairs\n");
      return 1;
    }
    args[argv[i] + 2] = argv[i + 1];
  }
  const auto get = [&](const char* key, const std::string& fallback) {
    const auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
  };

  core::PipelineConfig config;
  config.arch = core::Architecture::kVgg11;
  config.model.num_classes = std::stoll(get("classes", "10"));
  config.model.width = 0.125F;
  config.dnn_train.epochs = std::stoll(get("dnn-epochs", "15"));
  config.dnn_train.augment = false;
  config.sgl.epochs = std::stoll(get("sgl-epochs", "5"));
  config.sgl.augment = false;
  config.conversion.time_steps = std::stoll(get("timesteps", "2"));
  config.verbose = true;

  // Checkpointing: every completed stage persists weights + manifest, and
  // the two training stages additionally checkpoint after every epoch.
  config.checkpoint.enabled = true;
  config.checkpoint.dir = get("dir", "ullsnn_resilient_ckpt");
  if (get("fresh", "0") == "1") {
    std::filesystem::remove_all(config.checkpoint.dir);
    std::printf("[resilient] cleared %s\n", config.checkpoint.dir.c_str());
  }

  // Health guards: rollback restores the last good epoch and retries at a
  // reduced learning rate if training ever produces NaN/Inf/exploded values.
  const robust::GuardPolicy policy = parse_guard(get("guard", "rollback"));
  config.dnn_train.guard.policy = policy;
  config.dnn_train.guard.verbose = true;
  config.sgl.guard.policy = policy;
  config.sgl.guard.verbose = true;

  const std::int64_t train_n = std::stoll(get("train", "1024"));
  const std::int64_t test_n = std::stoll(get("test", "256"));
  data::SyntheticCifarSpec spec;
  spec.num_classes = config.model.num_classes;
  data::SyntheticCifar gen(spec);
  data::LabeledImages train = gen.generate(train_n, 1);
  data::LabeledImages test = gen.generate(test_n, 2);
  const data::ChannelStats stats = data::standardize(train);
  data::apply_standardize(test, stats);

  std::printf("== resilient training: %s, T=%lld, guard=%s, dir=%s ==\n",
              core::to_string(config.arch),
              static_cast<long long>(config.conversion.time_steps),
              robust::to_string(policy), config.checkpoint.dir.c_str());
  std::printf("(interrupt freely: re-running resumes from the last completed\n"
              " stage/epoch and reproduces the uninterrupted result exactly)\n\n");

  core::HybridPipeline pipeline(config);
  core::PipelineResult result;
  try {
    result = pipeline.run(train, test);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "\nerror: %s\n"
                 "the checkpoint directory may be damaged — re-run with "
                 "--fresh 1 to start over.\n",
                 e.what());
    return 1;
  }

  std::printf("\n(a) DNN:        %.2f%%   (train %.0fs)\n",
              100.0 * result.dnn_accuracy, result.dnn_train_seconds);
  std::printf("(b) converted:  %.2f%%\n", 100.0 * result.converted_accuracy);
  std::printf("(c) after SGL:  %.2f%%   (train %.0fs)\n",
              100.0 * result.sgl_accuracy, result.sgl_train_seconds);
  std::printf("\ncheckpoints left in %s — delete the directory (or pass\n"
              "--fresh 1) to retrain from scratch.\n",
              config.checkpoint.dir.c_str());
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "resilient_training: %s\n", e.what());
    return 1;
  }
}
