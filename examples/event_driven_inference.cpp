// Event-driven inference demo: trains a small model, converts it at T=2,
// then classifies the test set with both the dense time-stepped simulator
// and the event-driven engine — verifying identical predictions and showing
// how far the executed accumulate count sits below the dense-equivalent
// work (the software analogue of the paper's Sec. VI sparsity argument).
//
// Usage: event_driven_inference [dnn_epochs] [train_size]
#include <cstdio>
#include <exception>
#include <cstdlib>

#include "src/core/pipeline.h"
#include "src/snn/event_driven.h"
#include "src/util/timer.h"

using namespace ullsnn;

int run(int argc, char** argv) {
  const std::int64_t epochs = argc > 1 ? std::atoll(argv[1]) : 12;
  const std::int64_t train_n = argc > 2 ? std::atoll(argv[2]) : 768;

  data::SyntheticCifarSpec spec;
  data::SyntheticCifar gen(spec);
  data::LabeledImages train = gen.generate(train_n, 1);
  data::LabeledImages test = gen.generate(train_n / 4, 2);
  const data::ChannelStats stats = data::standardize(train);
  data::apply_standardize(test, stats);

  core::PipelineConfig config;
  config.arch = core::Architecture::kVgg11;
  config.model.width = 0.125F;
  config.dnn_train.epochs = epochs;
  config.dnn_train.augment = false;
  config.conversion.time_steps = 2;
  config.sgl.epochs = epochs / 3 + 1;
  config.sgl.augment = false;
  config.verbose = true;

  std::printf("== event-driven inference: VGG-11, T=2 ==\n");
  core::HybridPipeline pipeline(config);
  pipeline.run(train, test);
  snn::SnnNetwork& net = pipeline.snn();

  snn::EventDrivenEngine engine(net);
  std::int64_t agree = 0;
  std::int64_t dense_correct = 0;
  std::int64_t event_correct = 0;
  double dense_seconds = 0.0;
  double event_seconds = 0.0;
  Rng rng(0);
  data::BatchIterator batches(test, 16, rng, /*shuffle_each_epoch=*/false);
  for (std::int64_t b = 0; b < batches.num_batches(); ++b) {
    const data::Batch batch = batches.batch(b);
    Timer timer;
    const Tensor dense_logits = net.forward(batch.images, false);
    dense_seconds += timer.seconds();
    timer.reset();
    const Tensor event_logits = engine.forward(batch.images);
    event_seconds += timer.seconds();
    for (std::int64_t i = 0; i < batch.size(); ++i) {
      const std::int64_t classes = dense_logits.dim(1);
      std::int64_t dense_pred = 0;
      std::int64_t event_pred = 0;
      for (std::int64_t c = 1; c < classes; ++c) {
        if (dense_logits.at(i, c) > dense_logits.at(i, dense_pred)) dense_pred = c;
        if (event_logits.at(i, c) > event_logits.at(i, event_pred)) event_pred = c;
      }
      agree += dense_pred == event_pred ? 1 : 0;
      dense_correct += dense_pred == batch.labels[static_cast<std::size_t>(i)] ? 1 : 0;
      event_correct += event_pred == batch.labels[static_cast<std::size_t>(i)] ? 1 : 0;
    }
  }
  const auto n = static_cast<double>(test.size());
  std::printf("\nprediction agreement dense vs event-driven: %.2f%%\n",
              100.0 * agree / n);
  std::printf("accuracy: dense %.2f%%, event-driven %.2f%%\n",
              100.0 * dense_correct / n, 100.0 * event_correct / n);
  std::printf("wall-clock: dense %.2fs, event-driven %.2fs\n", dense_seconds,
              event_seconds);
  const snn::EventStats& s = engine.stats();
  std::printf("synaptic work: %lld ACs executed vs %lld dense-equivalent "
              "(%.1f%% of dense)\n",
              static_cast<long long>(s.accumulate_ops),
              static_cast<long long>(s.dense_equivalent_ops),
              100.0 * static_cast<double>(s.accumulate_ops) /
                  static_cast<double>(s.dense_equivalent_ops));
  std::printf("events processed: %lld\n", static_cast<long long>(s.events_processed));
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "event_driven_inference: %s\n", e.what());
    return 1;
  }
}
