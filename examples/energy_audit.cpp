// Energy audit: trains a small model, converts it at a chosen T, and prints
// the full Sec. VI accounting — per-layer spiking activity, MAC/AC FLOPs,
// CMOS compute energy, and the TrueNorth/SpiNNaker neuromorphic estimates —
// side by side with the iso-architecture DNN.
//
// Usage: energy_audit [timesteps] [dnn_epochs] [train_size]
#include <cstdio>
#include <exception>
#include <cstdlib>

#include "src/core/pipeline.h"
#include "src/energy/energy_model.h"
#include "src/energy/flops.h"
#include "src/energy/memory_model.h"
#include "src/energy/spike_monitor.h"
#include "src/util/table.h"

using namespace ullsnn;

int run(int argc, char** argv) {
  const std::int64_t time_steps = argc > 1 ? std::atoll(argv[1]) : 2;
  const std::int64_t epochs = argc > 2 ? std::atoll(argv[2]) : 12;
  const std::int64_t train_n = argc > 3 ? std::atoll(argv[3]) : 768;

  data::SyntheticCifarSpec spec;
  data::SyntheticCifar gen(spec);
  data::LabeledImages train = gen.generate(train_n, 1);
  data::LabeledImages test = gen.generate(train_n / 4, 2);
  const data::ChannelStats stats = data::standardize(train);
  data::apply_standardize(test, stats);

  core::PipelineConfig config;
  config.arch = core::Architecture::kVgg11;
  config.model.width = 0.125F;
  config.dnn_train.epochs = epochs;
  config.dnn_train.augment = false;
  config.conversion.time_steps = time_steps;
  config.sgl.epochs = epochs / 3 + 1;
  config.sgl.augment = false;
  config.verbose = true;

  std::printf("== energy audit: VGG-11, T=%lld ==\n",
              static_cast<long long>(time_steps));
  core::HybridPipeline pipeline(config);
  const core::PipelineResult result = pipeline.run(train, test);
  std::printf("accuracies: dnn %.2f%%, snn %.2f%%\n", 100.0 * result.dnn_accuracy,
              100.0 * result.sgl_accuracy);

  // Activity measurement over the test set.
  const energy::ActivityReport activity =
      energy::measure_activity(pipeline.snn(), test);
  Table layers({"layer", "neurons/sample", "spikes/neuron/image"});
  for (const auto& layer : activity.layers) {
    layers.add_row({layer.name, Table::fmt_int(layer.neurons),
                    Table::fmt(layer.spikes_per_neuron, 4)});
  }
  layers.print("per-layer spiking activity (test set)");
  std::printf("mean spiking activity: %.4f spikes/neuron/image\n",
              activity.mean_spikes_per_neuron());

  // FLOPs and energy.
  const Shape input_shape = {1, 3, spec.image_size, spec.image_size};
  const energy::FlopsReport dnn_flops =
      energy::count_dnn_flops(pipeline.dnn(), input_shape);
  const energy::FlopsReport snn_flops =
      energy::count_snn_flops(pipeline.snn(), input_shape);
  Table flops({"model", "layer", "MACs", "ACs"});
  for (const auto& layer : dnn_flops.layers) {
    flops.add_row({"DNN", layer.name, Table::fmt_sci(layer.macs, ""), "0"});
  }
  for (const auto& layer : snn_flops.layers) {
    flops.add_row({"SNN", layer.name, Table::fmt_sci(layer.macs, ""),
                   Table::fmt_sci(layer.acs, "")});
  }
  flops.print("per-layer FLOPs (per input sample)");

  const double dnn_pj = energy::compute_energy_pj(dnn_flops);
  const double snn_pj = energy::compute_energy_pj(snn_flops);
  std::printf("\nCMOS 45nm compute energy: DNN %.3e pJ, SNN %.3e pJ -> %.1fx lower\n",
              dnn_pj, snn_pj, dnn_pj / snn_pj);
  const double total = snn_flops.total_flops();
  std::printf("neuromorphic (normalized): TrueNorth %.3e, SpiNNaker %.3e\n",
              energy::neuromorphic_energy(total, time_steps, energy::kTrueNorth),
              energy::neuromorphic_energy(total, time_steps, energy::kSpiNNaker));

  // Memory footprints.
  const auto dnn_mem = energy::estimate_dnn_training_memory(pipeline.dnn(),
                                                            input_shape, 32);
  const auto snn_mem = energy::estimate_snn_training_memory(pipeline.snn(),
                                                            input_shape, 32,
                                                            time_steps);
  std::printf("training memory @batch 32: DNN %.1f MiB, SNN %.1f MiB\n",
              dnn_mem.total_mib(), snn_mem.total_mib());
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "energy_audit: %s\n", e.what());
    return 1;
  }
}
