// Resilient serving demo: the degradation ladder end to end.
//
// Trains a small VGG-11 on SyntheticCIFAR-10, converts it to a T=3 SNN, and
// serves it through the ServeEngine in three acts:
//
//   1. healthy traffic    — requests served at the full T=3 budget
//   2. numeric distress   — a fault hook poisons the logits with NaN; the
//                           circuit breaker walks the ladder T=3 -> 2 -> 1,
//                           then opens and answers kUnavailable
//   3. recovery           — the fault clears; a half-open probe succeeds and
//                           the breaker climbs back to full T
//
// The breaker's transition history is printed at the end — the same arc the
// `ctest -L serve` suite asserts exactly.
//
// Usage: serving_demo [epochs] [train_size]
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <vector>

#include "src/core/pipeline.h"
#include "src/serve/engine.h"

using namespace ullsnn;

namespace {

/// Send `n` requests one at a time and tally their statuses.
void drive(serve::ServeEngine& engine, const data::LabeledImages& dataset,
           std::int64_t n, std::int64_t* cursor, const char* act) {
  std::int64_t ok = 0, degraded = 0, unavailable = 0, error = 0, other = 0;
  const std::int64_t samples = dataset.size();
  const std::int64_t numel = dataset.images.numel() / samples;
  const Shape shape(dataset.images.shape().begin() + 1,
                    dataset.images.shape().end());
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t s = (*cursor)++ % samples;
    Tensor image(shape);
    std::copy(dataset.images.data() + s * numel,
              dataset.images.data() + (s + 1) * numel, image.data());
    serve::SubmitResult r = engine.submit(std::move(image));
    if (!r.accepted) {
      ++other;
      continue;
    }
    const serve::InferResponse resp = r.future.get();
    switch (resp.status) {
      case serve::ResponseStatus::kOk: ++ok; break;
      case serve::ResponseStatus::kDegraded: ++degraded; break;
      case serve::ResponseStatus::kUnavailable: ++unavailable; break;
      case serve::ResponseStatus::kError: ++error; break;
      default: ++other; break;
    }
  }
  std::printf("[%s] %lld requests: ok=%lld degraded=%lld unavailable=%lld "
              "error=%lld other=%lld (breaker: %s at T=%lld)\n",
              act, static_cast<long long>(n), static_cast<long long>(ok),
              static_cast<long long>(degraded),
              static_cast<long long>(unavailable),
              static_cast<long long>(error), static_cast<long long>(other),
              serve::to_string(engine.breaker().state()),
              static_cast<long long>(engine.breaker().time_steps()));
}

int run(int argc, char** argv) {
  const std::int64_t epochs = argc > 1 ? std::atoll(argv[1]) : 6;
  const std::int64_t train_size = argc > 2 ? std::atoll(argv[2]) : 512;

  // Stage 1: train + convert (the usual pipeline, kept small).
  data::SyntheticCifarSpec spec;
  data::SyntheticCifar gen(spec);
  data::LabeledImages train = gen.generate(train_size, 1);
  data::LabeledImages test = gen.generate(train_size / 4, 2);
  const data::ChannelStats stats = data::standardize(train);
  data::apply_standardize(test, stats);

  dnn::ModelConfig mc;
  mc.width = 0.125F;
  mc.num_classes = spec.num_classes;
  Rng rng(3);
  auto model_ptr = core::build_model(core::Architecture::kVgg11, mc, rng);
  dnn::Sequential& model = *model_ptr;
  std::printf("== serving demo: training VGG-11 (%lld epochs) ==\n",
              static_cast<long long>(epochs));
  dnn::TrainConfig tc;
  tc.epochs = epochs;
  tc.augment = false;
  dnn::DnnTrainer trainer(model, tc);
  trainer.fit(train);
  std::printf("DNN accuracy: %.2f%%\n",
              100.0 * dnn::evaluate_model(model, test, 32));
  const core::ActivationProfile profile =
      core::collect_activations(model, train);

  // Stage 2: a serving engine whose breaker reacts quickly, so the three
  // acts fit in seconds. Production configs would use larger thresholds.
  serve::ServeConfig sc;
  sc.workers = 1;
  sc.batcher.max_batch = 1;  // one request per batch: readable transitions
  sc.breaker.ladder = {3, 2, 1};
  sc.breaker.failure_threshold = 2;
  sc.breaker.recovery_threshold = 2;
  sc.breaker.open_cooldown = 3;
  sc.max_attempts = 1;  // the fault is persistent; retries would not help
  sc.default_deadline = std::chrono::milliseconds(10000);
  sc.request_timeout = std::chrono::milliseconds(30000);
  sc.input_shape = Shape(test.images.shape().begin() + 1,
                         test.images.shape().end());

  std::atomic<bool> poison{false};
  sc.after_forward_hook = [&poison](const std::vector<std::int64_t>&,
                                    Tensor& logits) {
    if (poison.load(std::memory_order_relaxed)) {
      logits.data()[0] = std::numeric_limits<float>::quiet_NaN();
    }
  };

  core::ConversionConfig cc;
  cc.time_steps = 3;
  serve::ServeEngine engine(
      sc, [&model, &profile, cc] {
        return core::convert(model, profile, cc, nullptr);
      });
  engine.start();
  std::int64_t cursor = 0;

  // Act 1: healthy traffic at full T.
  drive(engine, test, 20, &cursor, "act 1: healthy");

  // Act 2: poison the logits — watch the ladder descend, then the circuit
  // open.
  poison.store(true);
  drive(engine, test, 12, &cursor, "act 2: distress");

  // Act 3: the fault clears; cooldown, half-open probe, then climb back up.
  poison.store(false);
  drive(engine, test, 16, &cursor, "act 3: recovery");

  engine.stop();

  std::printf("\nBreaker transition history:\n");
  for (const serve::CircuitBreaker::Transition& t :
       engine.breaker().history()) {
    std::printf("  batch %4lld: %-9s T=%lld  (%s)\n",
                static_cast<long long>(t.batch), serve::to_string(t.state),
                static_cast<long long>(t.time_steps), t.cause.c_str());
  }
  const serve::ServeStats s = engine.stats();
  std::printf("\nTotals: submitted=%lld ok=%lld degraded=%lld "
              "unavailable=%lld errors=%lld trips=%lld recoveries=%lld\n",
              static_cast<long long>(s.submitted),
              static_cast<long long>(s.completed_ok),
              static_cast<long long>(s.completed_degraded),
              static_cast<long long>(s.unavailable),
              static_cast<long long>(s.errors),
              static_cast<long long>(engine.breaker().trips()),
              static_cast<long long>(engine.breaker().recoveries()));

  // The demo's contract: the breaker must have tripped during act 2 and
  // recovered during act 3; anything else means the arc did not happen.
  if (engine.breaker().trips() < 1 || engine.breaker().recoveries() < 1) {
    std::fprintf(stderr, "serving_demo: breaker never completed the "
                         "trip/recover arc\n");
    return 1;
  }
  std::printf("\nThe breaker walked healthy -> degraded -> open -> probe -> "
              "recovered.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serving_demo: %s\n", e.what());
    return 1;
  }
}
