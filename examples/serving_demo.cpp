// Resilient serving demo: the degradation ladder and zero-downtime deploys,
// end to end.
//
// Trains a small VGG-11 on SyntheticCIFAR-10, converts it to a T=3 SNN, and
// serves it through the ServeEngine in six acts:
//
//   1. healthy traffic    — requests served at the full T=3 budget
//   2. numeric distress   — a fault hook poisons the logits with NaN; the
//                           circuit breaker walks the ladder T=3 -> 2 -> 1,
//                           then opens and answers kUnavailable
//   3. recovery           — the fault clears; a half-open probe succeeds and
//                           the breaker climbs back to full T
//   4. hot swap           — the model is packed into a v1 artifact and served
//                           through a ModelRegistry; a retrained v2 deploys
//                           mid-traffic behind the canary gate, workers drain
//                           and rebuild, zero requests lost
//   5. corrupt deploy     — a bit-flipped v3 artifact is rejected at the gate
//                           (CRC) while v2 keeps serving uninterrupted
//   6. bad retrain        — a v4 that passes its own canary but regresses in
//                           production is auto-rolled back to v2
//
// The breaker's and registry's transition histories are printed at the end —
// the same arcs the `ctest -L serve` and `ctest -L artifact` suites assert.
//
// Usage: serving_demo [epochs] [train_size]
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <limits>
#include <vector>

#include "src/artifact/artifact.h"
#include "src/artifact/model_registry.h"
#include "src/core/pipeline.h"
#include "src/obs/flight_recorder.h"
#include "src/robust/fault_injector.h"
#include "src/serve/engine.h"

using namespace ullsnn;

namespace {

/// Send `n` requests one at a time and tally their statuses.
void drive(serve::ServeEngine& engine, const data::LabeledImages& dataset,
           std::int64_t n, std::int64_t* cursor, const char* act) {
  std::int64_t ok = 0, degraded = 0, unavailable = 0, error = 0, other = 0;
  const std::int64_t samples = dataset.size();
  const std::int64_t numel = dataset.images.numel() / samples;
  const Shape shape(dataset.images.shape().begin() + 1,
                    dataset.images.shape().end());
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t s = (*cursor)++ % samples;
    Tensor image(shape);
    std::copy(dataset.images.data() + s * numel,
              dataset.images.data() + (s + 1) * numel, image.data());
    serve::SubmitResult r = engine.submit(std::move(image));
    if (!r.accepted) {
      ++other;
      continue;
    }
    const serve::InferResponse resp = r.future.get();
    switch (resp.status) {
      case serve::ResponseStatus::kOk: ++ok; break;
      case serve::ResponseStatus::kDegraded: ++degraded; break;
      case serve::ResponseStatus::kUnavailable: ++unavailable; break;
      case serve::ResponseStatus::kError: ++error; break;
      default: ++other; break;
    }
  }
  std::printf("[%s] %lld requests: ok=%lld degraded=%lld unavailable=%lld "
              "error=%lld other=%lld (breaker: %s at T=%lld)\n",
              act, static_cast<long long>(n), static_cast<long long>(ok),
              static_cast<long long>(degraded),
              static_cast<long long>(unavailable),
              static_cast<long long>(error), static_cast<long long>(other),
              serve::to_string(engine.breaker().state()),
              static_cast<long long>(engine.breaker().time_steps()));
}

int run(int argc, char** argv) {
  const std::int64_t epochs = argc > 1 ? std::atoll(argv[1]) : 6;
  const std::int64_t train_size = argc > 2 ? std::atoll(argv[2]) : 512;

  // Stage 1: train + convert (the usual pipeline, kept small).
  data::SyntheticCifarSpec spec;
  data::SyntheticCifar gen(spec);
  data::LabeledImages train = gen.generate(train_size, 1);
  data::LabeledImages test = gen.generate(train_size / 4, 2);
  const data::ChannelStats stats = data::standardize(train);
  data::apply_standardize(test, stats);

  dnn::ModelConfig mc;
  mc.width = 0.125F;
  mc.num_classes = spec.num_classes;
  Rng rng(3);
  auto model_ptr = core::build_model(core::Architecture::kVgg11, mc, rng);
  dnn::Sequential& model = *model_ptr;
  std::printf("== serving demo: training VGG-11 (%lld epochs) ==\n",
              static_cast<long long>(epochs));
  dnn::TrainConfig tc;
  tc.epochs = epochs;
  tc.augment = false;
  dnn::DnnTrainer trainer(model, tc);
  trainer.fit(train);
  std::printf("DNN accuracy: %.2f%%\n",
              100.0 * dnn::evaluate_model(model, test, 32));
  const core::ActivationProfile profile =
      core::collect_activations(model, train);

  // Stage 2: a serving engine whose breaker reacts quickly, so the three
  // acts fit in seconds. Production configs would use larger thresholds.
  serve::ServeConfig sc;
  sc.workers = 1;
  sc.batcher.max_batch = 1;  // one request per batch: readable transitions
  sc.breaker.ladder = {3, 2, 1};
  sc.breaker.failure_threshold = 2;
  sc.breaker.recovery_threshold = 2;
  sc.breaker.open_cooldown = 3;
  sc.max_attempts = 1;  // the fault is persistent; retries would not help
  sc.default_deadline = std::chrono::milliseconds(10000);
  sc.request_timeout = std::chrono::milliseconds(30000);
  sc.input_shape = Shape(test.images.shape().begin() + 1,
                         test.images.shape().end());

  // Live operations: serve /metrics, /healthz, and /flight while the acts
  // run, and auto-dump the flight recorder on anomalies — the act-2 circuit
  // open will write one.
  const std::string flight_path =
      (std::filesystem::temp_directory_path() / "ullsnn_serving_demo_flight.jsonl")
          .string();
  sc.obs.endpoint = true;
  sc.obs.flight_dump_path = flight_path;

  std::atomic<bool> poison{false};
  sc.after_forward_hook = [&poison](const std::vector<std::int64_t>&,
                                    Tensor& logits) {
    if (poison.load(std::memory_order_relaxed)) {
      logits.data()[0] = std::numeric_limits<float>::quiet_NaN();
    }
  };

  core::ConversionConfig cc;
  cc.time_steps = 3;
  serve::ServeEngine engine(
      sc, [&model, &profile, cc] {
        return core::convert(model, profile, cc, nullptr);
      });
  engine.start();
  std::printf("live endpoint up: curl -s 127.0.0.1:%d/metrics | grep ^serve_\n"
              "                  curl -s 127.0.0.1:%d/healthz   "
              "(503 while the circuit is open)\n"
              "                  curl -s 127.0.0.1:%d/flight\n",
              engine.http_port(), engine.http_port(), engine.http_port());
  std::int64_t cursor = 0;

  // Act 1: healthy traffic at full T.
  drive(engine, test, 20, &cursor, "act 1: healthy");

  // Act 2: poison the logits — watch the ladder descend, then the circuit
  // open.
  poison.store(true);
  drive(engine, test, 12, &cursor, "act 2: distress");

  // Act 3: the fault clears; cooldown, half-open probe, then climb back up.
  poison.store(false);
  drive(engine, test, 16, &cursor, "act 3: recovery");

  engine.stop();

  std::printf("\nBreaker transition history:\n");
  for (const serve::CircuitBreaker::Transition& t :
       engine.breaker().history()) {
    std::printf("  batch %4lld: %-9s T=%lld  (%s)\n",
                static_cast<long long>(t.batch), serve::to_string(t.state),
                static_cast<long long>(t.time_steps), t.cause.c_str());
  }
  const serve::ServeStats s = engine.stats();
  std::printf("\nTotals: submitted=%lld ok=%lld degraded=%lld "
              "unavailable=%lld errors=%lld trips=%lld recoveries=%lld\n",
              static_cast<long long>(s.submitted),
              static_cast<long long>(s.completed_ok),
              static_cast<long long>(s.completed_degraded),
              static_cast<long long>(s.unavailable),
              static_cast<long long>(s.errors),
              static_cast<long long>(engine.breaker().trips()),
              static_cast<long long>(engine.breaker().recoveries()));

  // The act-2 breaker open was an anomaly: the flight recorder dumped the
  // recent request/event rings (with per-stage timings) for forensics.
  obs::FlightRecorder& flight = obs::FlightRecorder::instance();
  std::printf("flight recorder: %llu requests seen, %lld anomalies, "
              "%lld dump(s) -> %s\n",
              static_cast<unsigned long long>(flight.requests_recorded()),
              static_cast<long long>(flight.anomalies()),
              static_cast<long long>(flight.dumps_written()),
              flight_path.c_str());

  // The demo's contract: the breaker must have tripped during act 2 and
  // recovered during act 3; anything else means the arc did not happen.
  if (engine.breaker().trips() < 1 || engine.breaker().recoveries() < 1) {
    std::fprintf(stderr, "serving_demo: breaker never completed the "
                         "trip/recover arc\n");
    return 1;
  }
  std::printf("\nThe breaker walked healthy -> degraded -> open -> probe -> "
              "recovered.\n");

  // ---- Acts 4-6: zero-downtime deploys through the ModelRegistry ----
  const std::string art_dir =
      (std::filesystem::temp_directory_path() / "ullsnn_serving_demo").string();
  std::filesystem::create_directories(art_dir);
  const std::string v1_path = art_dir + "/model_v1.art";
  const std::string v2_path = art_dir + "/model_v2.art";
  const std::string v3_path = art_dir + "/model_v3.art";

  artifact::PackOptions po;
  po.input_shape = sc.input_shape;
  {
    auto packed = core::convert(model, profile, cc, nullptr);
    artifact::pack_network(*packed, v1_path, po);
  }
  {
    // "Retrain": one more epoch, then re-convert. Same topology, new
    // weights — exactly what the arch-fingerprint gate is built to allow.
    dnn::TrainConfig retrain = tc;
    retrain.epochs = 1;
    dnn::DnnTrainer(model, retrain).fit(train);
    const core::ActivationProfile profile2 =
        core::collect_activations(model, train);
    auto packed = core::convert(model, profile2, cc, nullptr);
    artifact::pack_network(*packed, v2_path, po);
  }

  artifact::RegistryConfig rc;
  rc.health_window = 6;
  rc.health_failure_threshold = 1;
  auto registry = std::make_shared<artifact::ModelRegistry>(rc);
  registry->deploy(v1_path);

  serve::ServeConfig rsc = sc;
  rsc.max_attempts = 1;
  rsc.breaker = serve::BreakerConfig{};  // registry owns rollback in this act
  serve::ServeEngine deploy_engine(rsc, registry);
  deploy_engine.start();

  // Act 4: traffic on v1, then deploy v2 mid-stream and keep serving.
  drive(deploy_engine, test, 10, &cursor, "act 4: serving v1");
  registry->deploy(v2_path);
  drive(deploy_engine, test, 10, &cursor, "act 4: swapped to v2");
  std::printf("[act 4] workers on active version: %lld/%lld, swaps: %lld\n",
              static_cast<long long>(deploy_engine.workers_on_active()),
              static_cast<long long>(rsc.workers),
              static_cast<long long>(deploy_engine.stats().swaps));

  // Act 5: a corrupt v3 must be rejected at the gate, v2 untouched.
  std::filesystem::copy_file(v2_path, v3_path,
                             std::filesystem::copy_options::overwrite_existing);
  robust::FaultInjector::corrupt_byte(
      v3_path, std::filesystem::file_size(v3_path) / 2, 0x08);
  try {
    registry->deploy(v3_path);
    std::fprintf(stderr, "serving_demo: corrupt artifact was activated\n");
    return 1;
  } catch (const artifact::ArtifactError& e) {
    std::printf("[act 5] corrupt v3 rejected: [%s]\n", to_string(e.code()));
  }
  drive(deploy_engine, test, 8, &cursor, "act 5: still on v2");

  // Act 6: a v4 that canaries clean but regresses in production; the
  // registry's post-swap health window rolls it back automatically.
  const std::uint64_t before_v4 = registry->version();
  registry->deploy(v1_path);  // any same-arch artifact stands in for "v4"
  poison.store(true);
  for (int round = 0; registry->version() == before_v4 + 1; ++round) {
    if (round > 50) {
      std::fprintf(stderr, "serving_demo: auto-rollback never fired\n");
      return 1;
    }
    drive(deploy_engine, test, 4, &cursor, "act 6: regressing");
  }
  poison.store(false);
  drive(deploy_engine, test, 8, &cursor, "act 6: rolled back");
  deploy_engine.stop();

  std::printf("\nRegistry transition history:\n");
  for (const artifact::ModelRegistry::Transition& t : registry->history()) {
    std::printf("  seq %3lld: %-13s -> v%llu  (%s)\n",
                static_cast<long long>(t.sequence), t.event.c_str(),
                static_cast<unsigned long long>(t.version), t.detail.c_str());
  }

  if (registry->rejects() < 1 || registry->rollbacks() < 1) {
    std::fprintf(stderr, "serving_demo: registry never completed the "
                         "reject/rollback arc\n");
    return 1;
  }
  std::printf("\nThe registry deployed, gated a corrupt artifact, and "
              "auto-rolled back a bad retrain — zero requests lost.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serving_demo: %s\n", e.what());
    return 1;
  }
}
