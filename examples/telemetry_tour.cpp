// Telemetry tour: the full hybrid pipeline with every observability surface
// switched on.
//
// Usage:
//   telemetry_tour [--out DIR] [--timesteps T] [--classes N]
//                  [--dnn-epochs N] [--sgl-epochs N] [--train N] [--test N]
//
// Produces under --out (default "ullsnn_telemetry"):
//   trace.json    chrome://tracing / Perfetto timeline of the whole run
//   trace.jsonl   the same events, one JSON object per line
//   probe.csv     per-layer spike activity summary (incl. the live Delta gap)
//   probe.jsonl   per-layer per-step records (membrane stats + histograms)
//   metrics.csv   final counter/gauge/histogram snapshot
//
// Set ULLSNN_LOG_LEVEL=debug|info|warn|error|off to control console output.
#include <cstdio>
#include <exception>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include "src/core/pipeline.h"
#include "src/obs/build_info.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"

using namespace ullsnn;

int run(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::fprintf(stderr, "expected --flag value pairs\n");
      return 1;
    }
    args[argv[i] + 2] = argv[i + 1];
  }
  const auto get = [&](const char* key, const std::string& fallback) {
    const auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
  };

  const std::string out_dir = get("out", "ullsnn_telemetry");
  std::filesystem::create_directories(out_dir);

  std::printf("%s\n", obs::build_info_comment().c_str());

  core::PipelineConfig config;
  config.arch = core::Architecture::kVgg11;
  config.model.num_classes = std::stoll(get("classes", "10"));
  config.model.width = 0.125F;
  config.dnn_train.epochs = std::stoll(get("dnn-epochs", "8"));
  config.dnn_train.augment = false;
  config.sgl.epochs = std::stoll(get("sgl-epochs", "2"));
  config.sgl.augment = false;
  config.conversion.time_steps = std::stoll(get("timesteps", "2"));
  config.verbose = true;
  config.telemetry.enabled = true;
  config.telemetry.trace_json_path = out_dir + "/trace.json";
  config.telemetry.trace_jsonl_path = out_dir + "/trace.jsonl";
  config.telemetry.probe_csv_path = out_dir + "/probe.csv";
  config.telemetry.probe_jsonl_path = out_dir + "/probe.jsonl";

  const std::int64_t train_n = std::stoll(get("train", "512"));
  const std::int64_t test_n = std::stoll(get("test", "128"));
  data::SyntheticCifarSpec spec;
  spec.num_classes = config.model.num_classes;
  data::SyntheticCifar gen(spec);
  data::LabeledImages train = gen.generate(train_n, 1);
  data::LabeledImages test = gen.generate(test_n, 2);
  const data::ChannelStats stats = data::standardize(train);
  data::apply_standardize(test, stats);

  core::HybridPipeline pipeline(config);
  const core::PipelineResult result = pipeline.run(train, test);

  obs::write_metrics_csv(obs::Registry::instance().snapshot(),
                         out_dir + "/metrics.csv");

  obs::logf(obs::LogLevel::kInfo,
            "accuracies: DNN %.4f | converted %.4f | after SGL %.4f",
            result.dnn_accuracy, result.converted_accuracy, result.sgl_accuracy);
  obs::logf(obs::LogLevel::kInfo,
            "artifacts in %s: trace.json (open in chrome://tracing), "
            "trace.jsonl, probe.csv, probe.jsonl, metrics.csv",
            out_dir.c_str());
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry_tour: %s\n", e.what());
    return 1;
  }
}
