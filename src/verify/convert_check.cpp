#include "src/verify/convert_check.h"

#include <cmath>
#include <sstream>

#include "src/dnn/activations.h"
#include "src/dnn/batchnorm.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/dropout.h"
#include "src/dnn/linear.h"
#include "src/dnn/pooling.h"
#include "src/dnn/residual.h"
#include "src/snn/neuron.h"

namespace ullsnn::verify {

namespace {

bool is_activation(dnn::Layer& layer) {
  return dynamic_cast<dnn::ThresholdReLU*>(&layer) != nullptr ||
         dynamic_cast<dnn::ReLU*>(&layer) != nullptr;
}

bool is_pool(dnn::Layer& layer, bool* is_avg) {
  if (dynamic_cast<dnn::MaxPool2d*>(&layer) != nullptr) {
    *is_avg = false;
    return true;
  }
  if (dynamic_cast<dnn::AvgPool2d*>(&layer) != nullptr) {
    *is_avg = true;
    return true;
  }
  return false;
}

bool is_synaptic(dnn::Layer& layer) {
  return dynamic_cast<dnn::Conv2d*>(&layer) != nullptr ||
         dynamic_cast<dnn::Linear*>(&layer) != nullptr;
}

/// The activation site contract of one synaptic layer at chain index `i`:
/// the next layer must be a ThresholdReLU (the only site the collector
/// records and Algorithm 1 scales), except for the final readout Linear.
void check_site_pairing(dnn::Sequential& model, std::int64_t i, bool is_readout_candidate,
                        VerifyReport& report) {
  dnn::Layer& layer = model.layer(i);
  const bool is_last = i + 1 >= model.size();
  if (is_last) {
    if (!is_readout_candidate) {
      report.diagnostics.push_back(make_diagnostic(
          "C004", i, layer.name(),
          "trailing Conv2d has no activation site and cannot serve as the readout "
          "(only a final Linear maps to the neuron-free logit accumulator)",
          "finish the network with ThresholdReLU + Flatten + Linear"));
    }
    return;  // final Linear = readout, by design neuron-free
  }
  dnn::Layer& next = model.layer(i + 1);
  if (dynamic_cast<dnn::ThresholdReLU*>(&next) != nullptr) return;
  if (dynamic_cast<dnn::ReLU*>(&next) != nullptr) {
    report.diagnostics.push_back(make_diagnostic(
        "C004", i, layer.name(),
        "followed by a plain ReLU: no trainable clip threshold, so the "
        "activation collector records no site and Algorithm 1 has no "
        "(alpha, beta) entry for this layer's neuron",
        "replace the ReLU with ThresholdReLU"));
    return;
  }
  bool avg = false;
  if (is_pool(next, &avg) && i + 2 < model.size() && is_activation(model.layer(i + 2))) {
    std::ostringstream msg;
    msg << "pooling between " << layer.name() << " and its activation: the converter "
        << "pairs the activation site with this layer's neuron, but clipping "
        << (avg ? "does not commute with average pooling"
                : "is calibrated on the post-pool distribution (max pooling commutes, "
                  "but thresholds shift)");
    report.diagnostics.push_back(make_diagnostic(
        "C008", avg ? Severity::kError : Severity::kWarning, i + 1,
        model.layer(i + 1).name(), msg.str(),
        "move the pooling after the activation (conv -> act -> pool)"));
    return;
  }
  report.diagnostics.push_back(make_diagnostic(
      "C004", i, layer.name(),
      "not followed by a ThresholdReLU activation site; core::convert() would "
      "mis-align the remaining sites or treat this layer as a mid-network readout",
      "insert a ThresholdReLU directly after this layer"));
}

void check_dead_site(dnn::ThresholdReLU& act, std::int64_t i, const std::string& name,
                     VerifyReport& report) {
  if (act.mu() <= 0.0F) {
    std::ostringstream msg;
    msg << "trained clip threshold mu = " << act.mu()
        << " <= 0: the site never passes a positive activation and its converted "
           "neuron is clamped to the silent 1e-3 floor";
    report.diagnostics.push_back(make_diagnostic(
        "C009", i, name, msg.str(),
        "re-train, or re-initialize mu to a positive value"));
  }
}

}  // namespace

std::int64_t count_activation_sites(dnn::Sequential& model) {
  std::int64_t sites = 0;
  for (std::int64_t i = 0; i < model.size(); ++i) {
    dnn::Layer& layer = model.layer(i);
    if (dynamic_cast<dnn::ThresholdReLU*>(&layer) != nullptr) {
      ++sites;
    } else if (dynamic_cast<dnn::ResidualBlock*>(&layer) != nullptr) {
      sites += 2;
    }
  }
  return sites;
}

VerifyReport check_conversion_preconditions(dnn::Sequential& model,
                                            const core::ConversionConfig& config,
                                            const ConvertCheckOptions& options) {
  VerifyReport report;

  for (std::int64_t i = 0; i < model.size(); ++i) {
    dnn::Layer& layer = model.layer(i);
    if (dynamic_cast<dnn::BatchNorm2d*>(&layer) != nullptr) {
      report.diagnostics.push_back(make_diagnostic(
          "C001", i, layer.name(),
          "BatchNorm2d present at conversion time; core::convert() has no "
          "spiking equivalent for it",
          "run core::fold_batchnorm(model) before converting"));
      continue;
    }
    if (auto* conv = dynamic_cast<dnn::Conv2d*>(&layer)) {
      (void)conv;
      check_site_pairing(model, i, /*is_readout_candidate=*/false, report);
      continue;
    }
    if (dynamic_cast<dnn::Linear*>(&layer) != nullptr) {
      check_site_pairing(model, i, /*is_readout_candidate=*/true, report);
      continue;
    }
    if (auto* block = dynamic_cast<dnn::ResidualBlock*>(&layer)) {
      check_dead_site(block->act1(), i, layer.name() + "/act1", report);
      check_dead_site(block->act2(), i, layer.name() + "/act2", report);
      continue;
    }
    if (auto* act = dynamic_cast<dnn::ThresholdReLU*>(&layer)) {
      const bool paired = i > 0 && is_synaptic(model.layer(i - 1));
      if (!paired) {
        report.diagnostics.push_back(make_diagnostic(
            "C003", i, layer.name(),
            "activation with no immediately preceding Conv2d/Linear; the "
            "converter folds each activation into the preceding synaptic "
            "layer's IF neuron",
            "place the activation directly after its convolution/linear layer"));
      }
      check_dead_site(*act, i, layer.name(), report);
      continue;
    }
    if (dynamic_cast<dnn::ReLU*>(&layer) != nullptr) {
      const bool paired = i > 0 && is_synaptic(model.layer(i - 1));
      if (!paired) {
        report.diagnostics.push_back(make_diagnostic(
            "C003", i, layer.name(),
            "plain ReLU with no immediately preceding Conv2d/Linear",
            "place the activation directly after its synaptic layer"));
      }
      continue;  // paired plain ReLU is reported at the synaptic layer (C004)
    }
    if (dynamic_cast<dnn::MaxPool2d*>(&layer) != nullptr ||
        dynamic_cast<dnn::AvgPool2d*>(&layer) != nullptr ||
        dynamic_cast<dnn::Dropout*>(&layer) != nullptr ||
        dynamic_cast<dnn::Flatten*>(&layer) != nullptr) {
      continue;  // direct spiking twins exist
    }
    report.diagnostics.push_back(make_diagnostic(
        "C002", i, layer.name(),
        "layer type '" + layer.name() + "' has no spiking mapping in core::convert()",
        "restrict the model to conv/linear/residual/pool/dropout/flatten/"
        "ThresholdReLU layers, or extend the converter"));
  }

  // Config-level rules.
  if (config.time_steps < 1) {
    std::ostringstream msg;
    msg << "conversion at time_steps = " << config.time_steps
        << "; at least one step is required for any spike to be emitted";
    report.diagnostics.push_back(
        make_diagnostic("C006", -1, "", msg.str(), "set conversion.time_steps >= 1"));
  }
  if (config.bias_fraction_override > 1.0F) {
    std::ostringstream msg;
    msg << "bias_fraction_override = " << config.bias_fraction_override
        << " starts every membrane above threshold (spurious step-0 spikes)";
    report.diagnostics.push_back(make_diagnostic(
        "C006", -1, "", msg.str(), "use a fraction in [0, 1], or < 0 to disable"));
  }
  if (!snn::delta_identity_valid(config.leak, config.reset)) {
    std::ostringstream msg;
    msg << "reset mode "
        << (config.reset == snn::ResetMode::kSubtract ? "subtract" : "zero")
        << " with leak = " << config.leak
        << " invalidates the soft-reset identity sum_t I(t) = U(T) - U(0) + "
           "V_th * n_spikes; live Delta_{alpha,beta} estimates would be NaN";
    report.diagnostics.push_back(make_diagnostic(
        "C007",
        options.delta_identity_required ? Severity::kError : Severity::kWarning, -1, "",
        msg.str(), "use ResetMode::kSubtract with leak = 1, or disable the Delta probe"));
  }
  return report;
}

VerifyReport check_conversion_report(const core::ConversionReport& report_in,
                                     const core::ConversionConfig& config,
                                     std::int64_t expected_sites) {
  VerifyReport report;
  if (expected_sites >= 0 &&
      static_cast<std::int64_t>(report_in.sites.size()) != expected_sites) {
    std::ostringstream msg;
    msg << "ConversionReport carries " << report_in.sites.size()
        << " scaling sites but the model exposes " << expected_sites
        << " activation sites; thresholds would configure the wrong neurons";
    report.diagnostics.push_back(make_diagnostic(
        "C005", -1, "", msg.str(),
        "re-plan the conversion against the exact model being converted"));
  }
  for (std::size_t k = 0; k < report_in.sites.size(); ++k) {
    const core::SiteScaling& s = report_in.sites[k];
    const std::int64_t site = static_cast<std::int64_t>(k);
    const std::string name = "site " + std::to_string(k);
    const auto bad = [&](const std::string& what, const std::string& hint) {
      report.diagnostics.push_back(make_diagnostic("C006", site, name, what, hint));
    };
    if (!std::isfinite(s.v_threshold) || !std::isfinite(s.alpha) ||
        !std::isfinite(s.beta) || !std::isfinite(s.initial_membrane_fraction) ||
        !std::isfinite(s.norm_factor)) {
      bad("non-finite scaling entry (alpha/beta/V_th/fraction/norm)",
          "re-run Algorithm 1 on a finite activation profile");
      continue;
    }
    if (s.v_threshold <= 0.0F) {
      bad("V_th = " + std::to_string(s.v_threshold) +
              " <= 0: the neuron fires unconditionally every step",
          "thresholds must be positive (plan_conversion clamps to 1e-3)");
    }
    if (s.alpha <= 0.0F) {
      bad("alpha = " + std::to_string(s.alpha) + " <= 0 (V_th = alpha * mu must be positive)",
          "Algorithm 1 selects alpha from the positive percentile grid");
    }
    if (s.beta <= 0.0F || s.beta > 2.0F) {
      bad("beta = " + std::to_string(s.beta) +
              " outside (0, 2], Algorithm 1's spike-amplitude sweep range",
          "re-run the (alpha, beta) search");
    }
    if (s.initial_membrane_fraction < 0.0F || s.initial_membrane_fraction > 1.0F) {
      bad("initial membrane fraction " + std::to_string(s.initial_membrane_fraction) +
              " outside [0, 1]",
          "the Deng-style bias shift corresponds to fraction 0.5; ours uses 0");
    }
    if (s.norm_factor <= 0.0F) {
      bad("weight-norm factor " + std::to_string(s.norm_factor) + " <= 0",
          "activation norms are positive by construction; recollect the profile");
    }
  }
  if (config.mode == core::ConversionMode::kOursAlphaBeta &&
      !report_in.search_results.empty() &&
      report_in.search_results.size() != report_in.sites.size()) {
    std::ostringstream msg;
    msg << "Algorithm 1 produced " << report_in.search_results.size()
        << " search results for " << report_in.sites.size() << " sites";
    report.diagnostics.push_back(make_diagnostic(
        "C005", -1, "", msg.str(), "re-plan the conversion from a single profile"));
  }
  return report;
}

}  // namespace ullsnn::verify
