// Diagnostic model of the static verifier (ullsnn-check).
//
// Every finding is a structured Diagnostic tagged with a stable rule-id
// ("G001", "C003", ...). Rule-ids never change meaning once shipped; the
// catalog in rule_catalog() is the authoritative list (docs/static_analysis.md
// mirrors it). Checkers live in graph_check.h / convert_check.h /
// tape_check.h; verify.h bundles them behind one entry point.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ullsnn::verify {

enum class Severity { kInfo, kWarning, kError };

const char* to_string(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule_id;    // stable, e.g. "C001"
  std::string rule_name;  // kebab-case slug, e.g. "unfolded-bn"
  /// Top-level chain index of the offending layer; -1 for model-level
  /// findings (empty model, site-count mismatches, config-level rules).
  std::int64_t layer = -1;
  std::string layer_name;  // "Conv2d", "ResidualBlock/act1", ... ; may be empty
  std::string message;
  std::string fix_hint;
};

/// One-line gcc-style rendering: "layer 3 (Conv2d): error [G001 shape-mismatch] ...".
std::string to_string(const Diagnostic& diagnostic);

struct VerifyReport {
  std::vector<Diagnostic> diagnostics;

  std::int64_t count(Severity severity) const;
  std::int64_t error_count() const { return count(Severity::kError); }
  std::int64_t warning_count() const { return count(Severity::kWarning); }
  bool ok() const { return error_count() == 0; }
  bool empty() const { return diagnostics.empty(); }

  /// True iff some diagnostic carries this rule-id.
  bool has_rule(const std::string& rule_id) const;

  /// Append all of `other`'s diagnostics (used to combine checker outputs).
  void merge(VerifyReport other);
};

/// Multi-line rendering of every diagnostic plus a summary line.
std::string format_report(const VerifyReport& report);

/// Thrown by strict-mode gates (core::HybridPipeline) when a verification
/// pass reports errors; carries the full report for programmatic inspection.
class VerifyError : public std::runtime_error {
 public:
  explicit VerifyError(VerifyReport report);
  const VerifyReport& report() const { return report_; }

 private:
  VerifyReport report_;
};

struct RuleInfo {
  const char* id;
  const char* name;
  Severity default_severity;
  const char* summary;
};

/// Every rule the verifier can emit, ordered by id.
const std::vector<RuleInfo>& rule_catalog();

/// Catalog lookup; throws std::invalid_argument for unknown ids (keeps the
/// checkers honest about registering their rules).
const RuleInfo& rule_info(const std::string& rule_id);

/// Build a Diagnostic from the catalog entry for `rule_id` (severity and
/// rule_name filled from the catalog; severity can be overridden by rules
/// that escalate on context, e.g. C007 when a Delta consumer is active).
Diagnostic make_diagnostic(const std::string& rule_id, std::int64_t layer,
                           std::string layer_name, std::string message,
                           std::string fix_hint);
Diagnostic make_diagnostic(const std::string& rule_id, Severity severity,
                           std::int64_t layer, std::string layer_name,
                           std::string message, std::string fix_hint);

}  // namespace ullsnn::verify
