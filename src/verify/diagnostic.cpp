#include "src/verify/diagnostic.h"

#include <sstream>

namespace ullsnn::verify {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string to_string(const Diagnostic& diagnostic) {
  std::ostringstream out;
  if (diagnostic.layer >= 0) {
    out << "layer " << diagnostic.layer;
    if (!diagnostic.layer_name.empty()) out << " (" << diagnostic.layer_name << ")";
  } else {
    out << "model";
  }
  out << ": " << to_string(diagnostic.severity) << " [" << diagnostic.rule_id << " "
      << diagnostic.rule_name << "] " << diagnostic.message;
  if (!diagnostic.fix_hint.empty()) out << " (fix: " << diagnostic.fix_hint << ")";
  return out.str();
}

std::int64_t VerifyReport::count(Severity severity) const {
  std::int64_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

bool VerifyReport::has_rule(const std::string& rule_id) const {
  for (const Diagnostic& d : diagnostics) {
    if (d.rule_id == rule_id) return true;
  }
  return false;
}

void VerifyReport::merge(VerifyReport other) {
  diagnostics.insert(diagnostics.end(),
                     std::make_move_iterator(other.diagnostics.begin()),
                     std::make_move_iterator(other.diagnostics.end()));
}

std::string format_report(const VerifyReport& report) {
  std::ostringstream out;
  for (const Diagnostic& d : report.diagnostics) out << to_string(d) << "\n";
  out << report.error_count() << " error(s), " << report.warning_count()
      << " warning(s)\n";
  return out.str();
}

namespace {
std::string verify_error_message(const VerifyReport& report) {
  std::ostringstream out;
  out << "model verification failed with " << report.error_count() << " error(s):\n"
      << format_report(report);
  return out.str();
}
}  // namespace

VerifyError::VerifyError(VerifyReport report)
    : std::runtime_error(verify_error_message(report)), report_(std::move(report)) {}

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      // Graph rules: shape inference over the layer chain.
      {"G001", "shape-mismatch", Severity::kError,
       "Producer/consumer extent mismatch (channels, features) between adjacent layers."},
      {"G002", "rank-mismatch", Severity::kError,
       "Layer received an input rank it cannot process (e.g. Conv2d after Flatten)."},
      {"G003", "spatial-underflow", Severity::kError,
       "Convolution/pooling geometry collapses a spatial extent to < 1."},
      {"G004", "empty-model", Severity::kError,
       "The model has no layers; there is nothing to train or convert."},
      {"G005", "dead-path", Severity::kError,
       "A layer structurally zeroes every activation (Dropout with p >= 1), "
       "disconnecting everything downstream from the input."},
      // Conversion-precondition rules: what core::convert() silently assumes.
      {"C001", "unfolded-bn", Severity::kError,
       "BatchNorm2d present at conversion time; the converter has no spiking "
       "equivalent and conversion would throw or mis-map sites."},
      {"C002", "unmapped-layer", Severity::kError,
       "Layer type core::convert() cannot map to a spiking twin."},
      {"C003", "orphan-activation", Severity::kError,
       "Activation with no immediately preceding Conv2d/Linear; the converter "
       "folds each activation into the preceding synaptic layer's neuron."},
      {"C004", "missing-scaling-site", Severity::kError,
       "Synaptic layer without a following ThresholdReLU activation site, so "
       "Algorithm 1 has no (alpha, beta) scaling entry for its neuron."},
      {"C005", "site-count-mismatch", Severity::kError,
       "ConversionReport/profile site count differs from the model's "
       "activation-site count; thresholds would configure the wrong neurons."},
      {"C006", "scaling-range", Severity::kError,
       "Planned scaling out of range: V_th <= 0, alpha <= 0, beta outside "
       "(0, 2], non-finite values, or membrane fraction outside [0, 1]."},
      {"C007", "delta-identity", Severity::kWarning,
       "Reset-mode/leak combination invalidates the soft-reset Delta_{alpha,beta} "
       "identity; escalated to an error when a live Delta consumer "
       "(obs::SnnRuntimeProbe) is configured."},
      {"C008", "pool-placement", Severity::kError,
       "Pooling between a synaptic layer and its activation: clipping does not "
       "commute with average pooling (max pooling commutes but shifts the "
       "calibration distribution; reported as a warning)."},
      {"C009", "dead-site", Severity::kWarning,
       "Activation site whose trained threshold mu is <= 0; the converted "
       "neuron is clamped to a silent 1e-3 threshold."},
      // Autograd-tape rules (debug mode): layer-local backward invariants.
      {"T001", "aliased-grad", Severity::kError,
       "The same Param (or gradient buffer) is registered more than once; "
       "optimizer updates would double-apply its gradient."},
      {"T002", "grad-shape", Severity::kError,
       "A parameter's gradient tensor shape differs from its value shape."},
      {"T003", "nan-constant", Severity::kError,
       "Non-finite parameter value; one NaN weight seeds NaN gradients "
       "through the whole tape."},
      {"T004", "unreachable-param", Severity::kWarning,
       "Decayed parameter whose gradient stayed identically zero after a "
       "synthetic forward/backward pass; it cannot be learning."},
      {"T005", "graph-cycle", Severity::kError,
       "A layer object appears more than once in the module graph; the "
       "backward sweep assumes an acyclic chain."},
  };
  return kCatalog;
}

const RuleInfo& rule_info(const std::string& rule_id) {
  for (const RuleInfo& rule : rule_catalog()) {
    if (rule_id == rule.id) return rule;
  }
  throw std::invalid_argument("verify::rule_info: unknown rule id '" + rule_id + "'");
}

Diagnostic make_diagnostic(const std::string& rule_id, std::int64_t layer,
                           std::string layer_name, std::string message,
                           std::string fix_hint) {
  return make_diagnostic(rule_id, rule_info(rule_id).default_severity, layer,
                         std::move(layer_name), std::move(message), std::move(fix_hint));
}

Diagnostic make_diagnostic(const std::string& rule_id, Severity severity,
                           std::int64_t layer, std::string layer_name,
                           std::string message, std::string fix_hint) {
  Diagnostic d;
  d.severity = severity;
  d.rule_id = rule_id;
  d.rule_name = rule_info(rule_id).name;
  d.layer = layer;
  d.layer_name = std::move(layer_name);
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  return d;
}

}  // namespace ullsnn::verify
