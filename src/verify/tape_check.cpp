#include "src/verify/tape_check.h"

#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace ullsnn::verify {

namespace {

/// Depth-first walk over children(); reports T005 on the first revisited
/// layer object and stops descending there.
void walk_layers(dnn::Layer& layer, const std::string& path,
                 std::unordered_set<const dnn::Layer*>& visited, VerifyReport& report) {
  if (!visited.insert(&layer).second) {
    report.diagnostics.push_back(make_diagnostic(
        "T005", -1, path,
        "layer object visited twice in the module graph; the backward sweep "
        "would run its backward pass with stale caches",
        "give every chain position its own layer instance"));
    return;
  }
  for (dnn::Layer* child : layer.children()) {
    // NOLINTNEXTLINE(performance-inefficient-string-concatenation): cold
    // diagnostic-only path over a handful of tiny layer names.
    walk_layers(*child, path.empty() ? child->name() : path + "/" + child->name(),
                visited, report);
  }
}

bool all_finite(const Tensor& t) {
  const float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

bool all_zero(const Tensor& t) {
  const float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (p[i] != 0.0F) return false;
  }
  return true;
}

std::string param_label(const dnn::Param& param, std::size_t index) {
  return param.name.empty() ? "param " + std::to_string(index) : param.name;
}

}  // namespace

VerifyReport check_tape(dnn::Sequential& model, const TapeCheckOptions& options) {
  VerifyReport report;

  // T005: the module graph must be an acyclic chain of distinct objects.
  std::unordered_set<const dnn::Layer*> visited;
  walk_layers(model, model.name(), visited, report);

  // T001/T002/T003: parameter-registry invariants.
  const std::vector<dnn::Param*> params = model.params();
  std::unordered_map<const dnn::Param*, std::size_t> seen;
  for (std::size_t i = 0; i < params.size(); ++i) {
    dnn::Param* param = params[i];
    const auto [it, inserted] = seen.emplace(param, i);
    if (!inserted) {
      std::ostringstream msg;
      msg << param_label(*param, i) << " registered at positions " << it->second
          << " and " << i << "; its gradient buffer would accumulate twice and "
          << "the optimizer would apply the update twice";
      report.diagnostics.push_back(
          make_diagnostic("T001", -1, param_label(*param, i), msg.str(),
                          "return each Param exactly once from params()"));
      continue;
    }
    if (!param->grad.empty() && param->grad.shape() != param->value.shape()) {
      std::ostringstream msg;
      msg << param_label(*param, i) << ": grad shape "
          << shape_to_string(param->grad.shape()) << " != value shape "
          << shape_to_string(param->value.shape());
      report.diagnostics.push_back(
          make_diagnostic("T002", -1, param_label(*param, i), msg.str(),
                          "allocate the gradient with the value's shape"));
    }
    if (!all_finite(param->value)) {
      report.diagnostics.push_back(make_diagnostic(
          "T003", -1, param_label(*param, i),
          param_label(*param, i) + " contains NaN/Inf values; one non-finite "
          "constant seeds NaN gradients through the whole tape",
          "re-initialize the parameter (or run robust::HealthMonitor rollback)"));
    }
  }

  // T004: synthetic-pass reachability (debug mode only).
  if (options.run_backward && report.ok()) {
    if (options.input_shape.size() < 2) {
      throw std::invalid_argument(
          "check_tape: run_backward requires a batched input_shape");
    }
    for (dnn::Param* param : params) {
      if (param->grad.empty()) param->grad = Tensor(param->value.shape());
      param->zero_grad();
    }
    // Deterministic, sign-alternating ramp: positive enough to pass ReLUs,
    // varied enough that no convolution output is structurally zero.
    Tensor input(options.input_shape);
    float* p = input.data();
    for (std::int64_t i = 0; i < input.numel(); ++i) {
      p[i] = 0.05F * static_cast<float>((i % 41) - 12);
    }
    const Tensor output = model.forward(input, /*train=*/true);
    model.backward(Tensor(output.shape(), 1.0F));
    for (std::size_t i = 0; i < params.size(); ++i) {
      dnn::Param* param = params[i];
      if (!param->decay) continue;  // conditional-gradient scalars are exempt
      if (all_zero(param->grad)) {
        report.diagnostics.push_back(make_diagnostic(
            "T004", -1, param_label(*param, i),
            param_label(*param, i) +
                " received an identically-zero gradient from the synthetic "
                "backward pass; the loss cannot reach it",
            "check for dead paths (saturated clips, p=1 dropout) feeding this layer"));
      }
      param->zero_grad();
    }
    model.clear_cache();
  }
  return report;
}

}  // namespace ullsnn::verify
