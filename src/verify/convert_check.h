// Conversion-precondition checks: everything core::convert() and the
// downstream Delta_{alpha,beta} machinery silently assume about the model
// and the ConversionConfig, checked statically (no forward pass, no
// calibration run).
//
// Two entry points mirror the two phases of conversion:
//   check_conversion_preconditions  model + config, before calibration —
//                                   catches unfoldable BN, unmapped layers,
//                                   orphan/missing activation sites, bad
//                                   pooling placement, invalid Delta configs.
//   check_conversion_report         a planned ConversionReport — catches
//                                   out-of-range (alpha, beta, V_th) entries
//                                   and site-count mismatches against the
//                                   model.
#pragma once

#include "src/core/converter.h"
#include "src/dnn/sequential.h"
#include "src/verify/diagnostic.h"

namespace ullsnn::verify {

struct ConvertCheckOptions {
  /// A live Delta_{alpha,beta} consumer (obs::SnnRuntimeProbe via pipeline
  /// telemetry) is configured: escalate C007 from warning to error, since
  /// the probe would silently report NaN gaps.
  bool delta_identity_required = false;
};

VerifyReport check_conversion_preconditions(dnn::Sequential& model,
                                            const core::ConversionConfig& config,
                                            const ConvertCheckOptions& options = {});

/// Validate a planned report. `expected_sites` is the model's activation-site
/// count when known (pass count_activation_sites(model)); -1 skips the
/// site-count rule.
VerifyReport check_conversion_report(const core::ConversionReport& report,
                                     const core::ConversionConfig& config,
                                     std::int64_t expected_sites = -1);

/// Activation sites in converter order (one per ThresholdReLU, two per
/// ResidualBlock) — the count core::collect_activations() would produce.
std::int64_t count_activation_sites(dnn::Sequential& model);

}  // namespace ullsnn::verify
