// ullsnn-check: static verification of a model graph and its conversion
// preconditions, without executing a forward pass.
//
// The individual checkers are usable on their own (graph_check.h,
// convert_check.h, tape_check.h); verify_model() bundles them behind one
// option struct. core::HybridPipeline runs this as its warn/strict preflight
// gate, and tools/ullsnn_check exposes it on the command line.
#pragma once

#include "src/verify/convert_check.h"
#include "src/verify/diagnostic.h"
#include "src/verify/graph_check.h"
#include "src/verify/tape_check.h"

namespace ullsnn::verify {

struct VerifyOptions {
  /// [N, C, H, W] model input; required for the graph checks.
  Shape input_shape;
  bool graph = true;
  bool conversion = true;
  /// Tape invariants (structural rules always run when enabled; the
  /// synthetic-pass T004 rule additionally requires tape_backward).
  bool tape = false;
  bool tape_backward = false;
  core::ConversionConfig conversion_config;
  /// Escalates C007 (delta-identity) to an error; set when a live Delta
  /// consumer (runtime probe) is configured.
  bool delta_identity_required = false;
  /// When non-null, the planned report is validated against the model's
  /// activation-site count (C005/C006).
  const core::ConversionReport* report = nullptr;
};

VerifyReport verify_model(dnn::Sequential& model, const VerifyOptions& options);

}  // namespace ullsnn::verify
