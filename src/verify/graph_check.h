// Shape inference over a dnn::Sequential without executing a forward pass.
//
// The engine walks the chain layer by layer, validating each layer's input
// contract (rank, channel/feature extents, spatial geometry) against the
// shape propagated so far and emitting G-rules on violations. All tensors in
// this library are dense float32, so "dtype inference" degenerates to the
// shape/rank lattice — there is nothing else to infer.
//
// After a recoverable mismatch (wrong channel count) inference continues
// with the layer's declared output geometry so one bad edit does not drown
// the report in cascading diagnostics; after an unrecoverable one (rank
// mismatch) the walk stops.
#pragma once

#include "src/dnn/sequential.h"
#include "src/verify/diagnostic.h"

namespace ullsnn::verify {

/// Check `model` against an input of `input_shape` ([N, C, H, W] for the
/// conv architectures; N is arbitrary and preserved).
VerifyReport check_graph(dnn::Sequential& model, const Shape& input_shape);

}  // namespace ullsnn::verify
