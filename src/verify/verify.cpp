#include "src/verify/verify.h"

namespace ullsnn::verify {

VerifyReport verify_model(dnn::Sequential& model, const VerifyOptions& options) {
  VerifyReport report;
  if (options.graph) {
    if (options.input_shape.empty()) {
      throw std::invalid_argument("verify_model: graph checks need an input_shape");
    }
    report.merge(check_graph(model, options.input_shape));
  }
  if (options.conversion) {
    ConvertCheckOptions convert_options;
    convert_options.delta_identity_required = options.delta_identity_required;
    report.merge(
        check_conversion_preconditions(model, options.conversion_config, convert_options));
    if (options.report != nullptr) {
      report.merge(check_conversion_report(*options.report, options.conversion_config,
                                           count_activation_sites(model)));
    }
  }
  if (options.tape) {
    TapeCheckOptions tape_options;
    // The synthetic T004 pass executes the model, which is only meaningful
    // (and safe) once the static checks came back clean; the structural tape
    // rules run regardless.
    tape_options.run_backward = options.tape_backward && report.ok();
    tape_options.input_shape = options.input_shape;
    report.merge(check_tape(model, tape_options));
  }
  return report;
}

}  // namespace ullsnn::verify
