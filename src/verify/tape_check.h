// Debug-mode autograd-tape invariant checker.
//
// The DNN library's "tape" is the layer-local backward chain: each layer
// caches its forward inputs and accumulates parameter gradients into
// Param::grad. That design admits a small set of silent corruption modes,
// checked here:
//
//   T001 aliased-grad       the same Param (hence the same gradient buffer)
//                           registered twice -> double accumulation
//   T002 grad-shape         grad tensor allocated with a different shape
//                           than its value
//   T003 nan-constant       non-finite values already in the parameters
//   T005 graph-cycle        a layer object reachable twice through
//                           children() -> the reverse sweep is not a chain
//
// The structural rules above execute nothing. With run_backward enabled the
// checker additionally drives ONE tiny synthetic forward/backward pass
// (debug mode) and reports decayed parameters whose gradient stayed
// identically zero (T004 unreachable-param) — weights the loss cannot see.
// Threshold/leak scalars (Param::decay == false) are exempt: their gradient
// paths are legitimately conditional (a clip that never saturates on the
// probe batch contributes no mu gradient).
#pragma once

#include "src/dnn/sequential.h"
#include "src/verify/diagnostic.h"

namespace ullsnn::verify {

struct TapeCheckOptions {
  /// Drive the synthetic forward/backward pass for T004. Mutates parameter
  /// gradients and layer caches (values are untouched); leave false to keep
  /// the check fully static. The pass executes the model, so run
  /// check_graph first — exceptions from a structurally broken model
  /// propagate (verify_model() sequences this automatically).
  bool run_backward = false;
  /// Input shape for the synthetic pass, e.g. {2, 3, 32, 32}. A batch of at
  /// least 2 keeps BatchNorm batch statistics well-defined.
  Shape input_shape;
};

VerifyReport check_tape(dnn::Sequential& model, const TapeCheckOptions& options = {});

}  // namespace ullsnn::verify
