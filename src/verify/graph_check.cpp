#include "src/verify/graph_check.h"

#include <sstream>

#include "src/dnn/activations.h"
#include "src/dnn/batchnorm.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/dropout.h"
#include "src/dnn/linear.h"
#include "src/dnn/pooling.h"
#include "src/dnn/residual.h"

namespace ullsnn::verify {

namespace {

std::string shape_str(const Shape& shape) { return shape_to_string(shape); }

/// One layer's worth of inference. Returns false when the walk cannot
/// meaningfully continue (unknown output shape).
bool infer_layer(dnn::Layer& layer, std::int64_t index, const std::string& name_prefix,
                 Shape& shape, VerifyReport& report) {
  const std::string layer_name = name_prefix.empty()
                                     ? layer.name()
                                     : name_prefix + "/" + layer.name();

  const auto conv_like = [&](const Conv2dSpec& spec, const char* what) -> bool {
    if (shape.size() != 4) {
      report.diagnostics.push_back(make_diagnostic(
          "G002", index, layer_name,
          std::string(what) + " requires a rank-4 [N, C, H, W] input but receives " +
              shape_str(shape),
          "place the layer before Flatten / reshape the producer"));
      return false;
    }
    if (shape[1] != spec.in_channels) {
      std::ostringstream msg;
      msg << what << " expects " << spec.in_channels << " input channels but receives "
          << shape[1] << " (input " << shape_str(shape) << ")";
      report.diagnostics.push_back(make_diagnostic(
          "G001", index, layer_name, msg.str(),
          "match in_channels to the producing layer's output channels"));
    }
    const std::int64_t oh = spec.out_extent(shape[2]);
    const std::int64_t ow = spec.out_extent(shape[3]);
    if (oh < 1 || ow < 1) {
      std::ostringstream msg;
      msg << what << " geometry (kernel " << spec.kernel << ", stride " << spec.stride
          << ", pad " << spec.pad << ") collapses spatial extent " << shape[2] << "x"
          << shape[3] << " to " << oh << "x" << ow;
      report.diagnostics.push_back(make_diagnostic(
          "G003", index, layer_name, msg.str(),
          "reduce the downsampling depth or enlarge the input image"));
      return false;
    }
    shape = {shape[0], spec.out_channels, oh, ow};
    return true;
  };

  if (auto* conv = dynamic_cast<dnn::Conv2d*>(&layer)) {
    return conv_like(conv->spec(), "Conv2d");
  }
  if (auto* linear = dynamic_cast<dnn::Linear*>(&layer)) {
    if (shape.size() != 2) {
      report.diagnostics.push_back(make_diagnostic(
          "G002", index, layer_name,
          "Linear requires a rank-2 [N, features] input but receives " +
              shape_str(shape),
          "insert a Flatten before the classifier"));
      return false;
    }
    if (shape[1] != linear->in_features()) {
      std::ostringstream msg;
      msg << "Linear expects " << linear->in_features() << " input features but receives "
          << shape[1];
      report.diagnostics.push_back(make_diagnostic(
          "G001", index, layer_name, msg.str(),
          "match in_features to the flattened producer extent"));
    }
    shape = {shape[0], linear->out_features()};
    return true;
  }
  if (auto* bn = dynamic_cast<dnn::BatchNorm2d*>(&layer)) {
    if (shape.size() != 4) {
      report.diagnostics.push_back(make_diagnostic(
          "G002", index, layer_name,
          "BatchNorm2d requires a rank-4 input but receives " + shape_str(shape),
          "normalize before flattening"));
      return false;
    }
    if (shape[1] != bn->channels()) {
      std::ostringstream msg;
      msg << "BatchNorm2d normalizes " << bn->channels() << " channels but receives "
          << shape[1];
      report.diagnostics.push_back(make_diagnostic(
          "G001", index, layer_name, msg.str(),
          "match the channel count of the preceding convolution"));
    }
    return true;  // shape-preserving
  }
  const auto pool_like = [&](const Pool2dSpec& spec, const char* what) -> bool {
    if (shape.size() != 4) {
      report.diagnostics.push_back(make_diagnostic(
          "G002", index, layer_name,
          std::string(what) + " requires a rank-4 input but receives " + shape_str(shape),
          "pool before flattening"));
      return false;
    }
    const std::int64_t oh = spec.out_extent(shape[2]);
    const std::int64_t ow = spec.out_extent(shape[3]);
    if (shape[2] < spec.kernel || shape[3] < spec.kernel || oh < 1 || ow < 1) {
      std::ostringstream msg;
      msg << what << " kernel " << spec.kernel << " does not fit the " << shape[2] << "x"
          << shape[3] << " input";
      report.diagnostics.push_back(make_diagnostic(
          "G003", index, layer_name, msg.str(),
          "drop this pooling stage or enlarge the input image"));
      return false;
    }
    shape = {shape[0], shape[1], oh, ow};
    return true;
  };
  if (auto* pool = dynamic_cast<dnn::MaxPool2d*>(&layer)) {
    return pool_like(pool->spec(), "MaxPool2d");
  }
  if (auto* pool = dynamic_cast<dnn::AvgPool2d*>(&layer)) {
    return pool_like(pool->spec(), "AvgPool2d");
  }
  if (dynamic_cast<dnn::Flatten*>(&layer) != nullptr) {
    if (shape.size() < 2) {
      report.diagnostics.push_back(make_diagnostic(
          "G002", index, layer_name,
          "Flatten requires at least a rank-2 input but receives " + shape_str(shape),
          "feed a batched tensor"));
      return false;
    }
    std::int64_t features = 1;
    for (std::size_t d = 1; d < shape.size(); ++d) features *= shape[d];
    shape = {shape[0], features};
    return true;
  }
  if (auto* dropout = dynamic_cast<dnn::Dropout*>(&layer)) {
    if (dropout->drop_prob() >= 1.0F) {
      std::ostringstream msg;
      msg << "Dropout with p = " << dropout->drop_prob()
          << " zeroes every activation; all downstream layers are dead";
      report.diagnostics.push_back(make_diagnostic(
          "G005", index, layer_name, msg.str(), "use a drop probability in [0, 1)"));
    }
    return true;  // shape-preserving
  }
  if (auto* block = dynamic_cast<dnn::ResidualBlock*>(&layer)) {
    if (shape.size() != 4) {
      report.diagnostics.push_back(make_diagnostic(
          "G002", index, layer_name,
          "ResidualBlock requires a rank-4 input but receives " + shape_str(shape),
          "keep residual stages before the classifier head"));
      return false;
    }
    // The block is conv1 -> act1 -> conv2 (+ skip) -> act2; validate the two
    // convolutions against the propagated shape (the block's constructor
    // guarantees internal consistency, so the join needs no extra check).
    Shape inner = shape;
    if (!infer_layer(block->conv1(), index, layer_name, inner, report)) return false;
    if (!infer_layer(block->conv2(), index, layer_name, inner, report)) return false;
    shape = inner;
    return true;
  }
  if (auto* seq = dynamic_cast<dnn::Sequential*>(&layer)) {
    for (dnn::Layer* child : seq->children()) {
      if (!infer_layer(*child, index, layer_name, shape, report)) return false;
    }
    return true;
  }
  if (dynamic_cast<dnn::ReLU*>(&layer) != nullptr ||
      dynamic_cast<dnn::ThresholdReLU*>(&layer) != nullptr) {
    return true;  // shape-preserving
  }
  // Unknown layer type: trust its own declared output shape when it can
  // produce one, otherwise stop the walk (conversion checks will flag it).
  try {
    shape = layer.output_shape(shape);
    return true;
  } catch (const std::exception& e) {
    report.diagnostics.push_back(make_diagnostic(
        "G002", index, layer_name,
        std::string("layer rejects input ") + shape_str(shape) + ": " + e.what(),
        "check the layer's input contract"));
    return false;
  }
}

}  // namespace

VerifyReport check_graph(dnn::Sequential& model, const Shape& input_shape) {
  VerifyReport report;
  if (model.empty()) {
    report.diagnostics.push_back(make_diagnostic(
        "G004", -1, "", "the model contains no layers", "build the model before verifying"));
    return report;
  }
  Shape shape = input_shape;
  for (std::int64_t i = 0; i < model.size(); ++i) {
    if (!infer_layer(model.layer(i), i, "", shape, report)) break;
  }
  return report;
}

}  // namespace ullsnn::verify
