// Analytic training/inference memory model (Fig. 3(b)).
//
// DNN training stores one forward activation set (for backward) plus
// parameters, gradients, and momentum. SNN training with BPTT stores T
// activation sets plus membrane potentials — the T-linear term the paper's
// latency reduction attacks. Sizes are float32 bytes; results in MiB.
#pragma once

#include <cstdint>

#include "src/dnn/sequential.h"
#include "src/snn/snn_network.h"

namespace ullsnn::energy {

struct MemoryEstimate {
  double params_mib = 0.0;       // weights + grads + momentum (training)
  double activations_mib = 0.0;  // cached forward state
  double membranes_mib = 0.0;    // SNN membrane potentials
  double total_mib() const { return params_mib + activations_mib + membranes_mib; }
};

MemoryEstimate estimate_dnn_training_memory(dnn::Sequential& model,
                                            const Shape& input_shape,
                                            std::int64_t batch_size);

MemoryEstimate estimate_snn_training_memory(snn::SnnNetwork& net,
                                            const Shape& input_shape,
                                            std::int64_t batch_size,
                                            std::int64_t time_steps);

MemoryEstimate estimate_snn_inference_memory(snn::SnnNetwork& net,
                                             const Shape& input_shape,
                                             std::int64_t batch_size);

MemoryEstimate estimate_dnn_inference_memory(dnn::Sequential& model,
                                             const Shape& input_shape,
                                             std::int64_t batch_size);

}  // namespace ullsnn::energy
