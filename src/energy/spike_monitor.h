// Spiking-activity measurement (Sec. VI-A / Fig. 4(a)): per-layer average
// spike count per neuron per image, gathered by running inference with the
// layers' built-in activity counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/snn/snn_network.h"

namespace ullsnn::energy {

struct LayerActivity {
  std::string name;
  std::int64_t neurons = 0;         // per sample
  double spikes_per_neuron = 0.0;   // per image, summed over T steps
};

struct ActivityReport {
  std::vector<LayerActivity> layers;
  double accuracy = 0.0;            // of the measuring inference run
  std::int64_t samples = 0;
  double total_spikes_per_image = 0.0;

  /// Average spiking activity across spiking layers (the Fig. 4(a) rollup).
  double mean_spikes_per_neuron() const;
};

/// Reset counters, run the whole dataset through `net`, and report activity.
ActivityReport measure_activity(snn::SnnNetwork& net,
                                const data::LabeledImages& dataset,
                                std::int64_t batch_size = 64);

}  // namespace ullsnn::energy
