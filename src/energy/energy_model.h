// Compute-energy models of Sec. VI.
//
// CMOS (45 nm, 0.9 V, 32-bit int, Horowitz [29]): E_MAC = 3.2 pJ
// (3.1 multiply + 0.1 add), E_AC = 0.1 pJ.
//
// Neuromorphic (TrueNorth / SpiNNaker, normalized constants from [32]):
// E_total = FLOPs * E_compute + T * E_static, with (0.4, 0.6) for TrueNorth
// and (0.64, 0.36) for SpiNNaker. For deep nets FLOPs >> T, so the energy is
// compute-bound — the paper's argument that GPU-side improvements carry over.
#pragma once

#include <cstdint>

#include "src/energy/flops.h"

namespace ullsnn::energy {

struct CmosConstants {
  double e_mac_pj = 3.2;
  double e_ac_pj = 0.1;
};

/// Compute energy in picojoules of a FLOPs report under the CMOS model.
double compute_energy_pj(const FlopsReport& flops, const CmosConstants& cmos = {});

struct NeuromorphicModel {
  const char* name;
  double e_compute;
  double e_static;
};

constexpr NeuromorphicModel kTrueNorth{"TrueNorth", 0.4, 0.6};
constexpr NeuromorphicModel kSpiNNaker{"SpiNNaker", 0.64, 0.36};

/// Normalized neuromorphic energy: FLOPs * E_compute + T * E_static.
double neuromorphic_energy(double total_flops, std::int64_t time_steps,
                           const NeuromorphicModel& model);

}  // namespace ullsnn::energy
