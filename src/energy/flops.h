// FLOP accounting (Sec. VI-B).
//
// DNN: every conv/linear layer performs its dense MAC count once per sample.
// SNN: layer 1 is direct-encoded (analog input), so it performs dense MACs;
// every subsequent layer performs one AC per incoming spike per synapse,
// i.e. dense MACs x measured input spike rate x T. Whether the first layer's
// MACs are counted once (its input repeats identically every step, so the
// product is computable once) or per step is configurable; the paper's
// energy ratios are consistent with counting it once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/dnn/sequential.h"
#include "src/snn/snn_network.h"

namespace ullsnn::energy {

struct LayerFlops {
  std::string name;
  double macs = 0.0;  // multiply-accumulates per sample
  double acs = 0.0;   // accumulates per sample
};

struct FlopsReport {
  std::vector<LayerFlops> layers;
  double total_macs = 0.0;
  double total_acs = 0.0;

  double total_flops() const { return total_macs + total_acs; }
};

/// Dense per-sample MAC counts for a DNN at the given input shape
/// (batch extent is ignored; counts are per sample).
FlopsReport count_dnn_flops(const dnn::Sequential& model, const Shape& input_shape);

/// Per-sample MAC/AC counts for an SNN using the activity counters populated
/// by prior inference. Call net.reset_stats(), run inference, then this.
FlopsReport count_snn_flops(const snn::SnnNetwork& net, const Shape& input_shape,
                            bool first_layer_macs_per_step = false);

}  // namespace ullsnn::energy
