#include "src/energy/energy_model.h"

namespace ullsnn::energy {

double compute_energy_pj(const FlopsReport& flops, const CmosConstants& cmos) {
  return flops.total_macs * cmos.e_mac_pj + flops.total_acs * cmos.e_ac_pj;
}

double neuromorphic_energy(double total_flops, std::int64_t time_steps,
                           const NeuromorphicModel& model) {
  return total_flops * model.e_compute +
         static_cast<double>(time_steps) * model.e_static;
}

}  // namespace ullsnn::energy
