#include "src/energy/memory_model.h"

namespace ullsnn::energy {

namespace {
constexpr double kBytesPerFloat = 4.0;
constexpr double kMib = 1024.0 * 1024.0;

double mib(double floats) { return floats * kBytesPerFloat / kMib; }

// Sum of per-sample activation sizes across the chain (the tensors a
// backward pass must retain), for any layer sequence with output_shape.
template <typename Net>
double activation_floats(const Net& net, Shape shape) {
  double total = 0.0;
  for (std::int64_t i = 0; i < net.size(); ++i) {
    shape = net.layer(i).output_shape(shape);
    double numel = 1.0;
    for (std::size_t d = 1; d < shape.size(); ++d) {
      numel *= static_cast<double>(shape[d]);
    }
    total += numel;
  }
  return total;
}

double param_floats(std::vector<dnn::Param*> params) {
  double total = 0.0;
  for (const dnn::Param* p : params) total += static_cast<double>(p->value.numel());
  return total;
}

// Per-sample membrane state: one float per IF neuron.
double membrane_floats(const snn::SnnNetwork& net) {
  double total = 0.0;
  for (std::int64_t i = 0; i < net.size(); ++i) {
    total += static_cast<double>(net.layer(i).neurons());
  }
  return total;
}
}  // namespace

MemoryEstimate estimate_dnn_training_memory(dnn::Sequential& model,
                                            const Shape& input_shape,
                                            std::int64_t batch_size) {
  MemoryEstimate est;
  // value + grad + momentum
  est.params_mib = mib(3.0 * param_floats(model.params()));
  est.activations_mib =
      mib(activation_floats(model, input_shape) * static_cast<double>(batch_size));
  return est;
}

MemoryEstimate estimate_snn_training_memory(snn::SnnNetwork& net,
                                            const Shape& input_shape,
                                            std::int64_t batch_size,
                                            std::int64_t time_steps) {
  MemoryEstimate est;
  est.params_mib = mib(3.0 * param_floats(net.params()));
  // BPTT stores every step's activations (inputs + pre-reset potentials).
  est.activations_mib = mib(activation_floats(net, input_shape) *
                            static_cast<double>(batch_size) *
                            static_cast<double>(time_steps));
  est.membranes_mib =
      mib(2.0 * membrane_floats(net) * static_cast<double>(batch_size) *
          static_cast<double>(time_steps));
  return est;
}

MemoryEstimate estimate_snn_inference_memory(snn::SnnNetwork& net,
                                             const Shape& input_shape,
                                             std::int64_t batch_size) {
  MemoryEstimate est;
  est.params_mib = mib(param_floats(net.params()));
  // Inference streams layer to layer; only the widest activation and the
  // membranes persist. We charge one activation set (conservative).
  est.activations_mib =
      mib(activation_floats(net, input_shape) * static_cast<double>(batch_size));
  est.membranes_mib =
      mib(membrane_floats(net) * static_cast<double>(batch_size));
  return est;
}

MemoryEstimate estimate_dnn_inference_memory(dnn::Sequential& model,
                                             const Shape& input_shape,
                                             std::int64_t batch_size) {
  MemoryEstimate est;
  est.params_mib = mib(param_floats(model.params()));
  est.activations_mib =
      mib(activation_floats(model, input_shape) * static_cast<double>(batch_size));
  return est;
}

}  // namespace ullsnn::energy
