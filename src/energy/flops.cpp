#include "src/energy/flops.h"

namespace ullsnn::energy {

FlopsReport count_dnn_flops(const dnn::Sequential& model, const Shape& input_shape) {
  FlopsReport report;
  Shape shape = input_shape;
  for (std::int64_t i = 0; i < model.size(); ++i) {
    const dnn::Layer& layer = model.layer(i);
    const auto macs = static_cast<double>(layer.macs(shape));
    if (macs > 0.0) {
      report.layers.push_back({layer.name() + "#" + std::to_string(i), macs, 0.0});
      report.total_macs += macs;
    }
    shape = layer.output_shape(shape);
  }
  return report;
}

FlopsReport count_snn_flops(const snn::SnnNetwork& net, const Shape& input_shape,
                            bool first_layer_macs_per_step) {
  FlopsReport report;
  Shape shape = input_shape;
  bool seen_first_synaptic = false;
  for (std::int64_t i = 0; i < net.size(); ++i) {
    const snn::SpikingLayer& layer = net.layer(i);
    const std::int64_t dense = layer.macs(shape);
    if (dense > 0) {
      LayerFlops lf;
      lf.name = layer.name() + "#" + std::to_string(i);
      if (!seen_first_synaptic) {
        // Direct-encoded first layer: analog inputs need true MACs.
        lf.macs = static_cast<double>(dense) *
                  (first_layer_macs_per_step
                       ? static_cast<double>(net.time_steps())
                       : 1.0);
        seen_first_synaptic = true;
      } else {
        lf.acs = layer.acs_estimate(shape, net.time_steps());
      }
      report.total_macs += lf.macs;
      report.total_acs += lf.acs;
      report.layers.push_back(std::move(lf));
    }
    shape = layer.output_shape(shape);
  }
  return report;
}

}  // namespace ullsnn::energy
