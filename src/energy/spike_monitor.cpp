#include "src/energy/spike_monitor.h"

namespace ullsnn::energy {

double ActivityReport::mean_spikes_per_neuron() const {
  if (layers.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& layer : layers) acc += layer.spikes_per_neuron;
  return acc / static_cast<double>(layers.size());
}

ActivityReport measure_activity(snn::SnnNetwork& net,
                                const data::LabeledImages& dataset,
                                std::int64_t batch_size) {
  net.reset_stats();
  ActivityReport report;
  report.samples = dataset.size();
  report.accuracy = snn::evaluate_snn(net, dataset, batch_size);
  for (std::int64_t i = 0; i < net.size(); ++i) {
    const snn::SpikingLayer& layer = net.layer(i);
    if (layer.neurons() == 0) continue;
    LayerActivity activity;
    activity.name = layer.name() + "#" + std::to_string(i);
    activity.neurons = layer.neurons();
    activity.spikes_per_neuron =
        static_cast<double>(layer.spikes_emitted()) /
        (static_cast<double>(report.samples) * static_cast<double>(layer.neurons()));
    report.total_spikes_per_image +=
        static_cast<double>(layer.spikes_emitted()) / static_cast<double>(report.samples);
    report.layers.push_back(std::move(activity));
  }
  return report;
}

}  // namespace ullsnn::energy
