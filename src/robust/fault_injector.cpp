#include "src/robust/fault_injector.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

namespace ullsnn::robust {

namespace {
void validate_rate(double rate, const char* what) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument(std::string("FaultInjector: ") + what +
                                " must be in [0, 1]");
  }
}
}  // namespace

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec), rng_(spec.seed) {
  validate_rate(spec_.weight_bitflip_rate, "weight_bitflip_rate");
  validate_rate(spec_.weight_signflip_rate, "weight_signflip_rate");
  validate_rate(spec_.stuck_at_zero_rate, "stuck_at_zero_rate");
  validate_rate(spec_.membrane_bitflip_rate, "membrane_bitflip_rate");
  validate_rate(spec_.stall_rate, "stall_rate");
  validate_rate(spec_.slow_replica_rate, "slow_replica_rate");
  if (spec_.stall_ms.count() < 0) {
    throw std::invalid_argument("FaultInjector: stall_ms must be non-negative");
  }
  if (spec_.slow_replica_factor < 1.0) {
    throw std::invalid_argument(
        "FaultInjector: slow_replica_factor must be >= 1 (a slowdown)");
  }
}

std::int64_t FaultInjector::inject_tensor_impl(Tensor& t, double rate,
                                               bool sign_only) {
  if (rate <= 0.0) return 0;
  t.detach();  // t[i] below mutates in place; artifact-borrowed weights must own first
  const auto p = static_cast<float>(rate);
  std::int64_t flips = 0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (!rng_.bernoulli(p)) continue;
    std::uint32_t bits = 0;
    std::memcpy(&bits, &t[i], sizeof bits);
    const int bit = sign_only ? 31 : static_cast<int>(rng_.uniform_int(32));
    bits ^= 1U << bit;
    std::memcpy(&t[i], &bits, sizeof bits);
    ++flips;
  }
  faults_.fetch_add(flips, std::memory_order_relaxed);
  return flips;
}

std::int64_t FaultInjector::inject_tensor(Tensor& t, double rate, bool sign_only) {
  MutexLock lock(mu_);
  return inject_tensor_impl(t, rate, sign_only);
}

std::int64_t FaultInjector::inject(const std::vector<dnn::Param*>& params) {
  MutexLock lock(mu_);
  std::int64_t injected = 0;
  for (dnn::Param* param : params) {
    Tensor& w = param->value;
    injected += inject_tensor_impl(w, spec_.weight_bitflip_rate, /*sign_only=*/false);
    injected += inject_tensor_impl(w, spec_.weight_signflip_rate, /*sign_only=*/true);
    // Stuck-at-zero: a dead output unit is its weight row forced to zero.
    // Scalars and vectors (thresholds, leaks, biases) have no row structure.
    if (spec_.stuck_at_zero_rate > 0.0 && w.rank() >= 2 && w.dim(0) > 0) {
      const std::int64_t rows = w.dim(0);
      const std::int64_t row_len = w.numel() / rows;
      const auto p = static_cast<float>(spec_.stuck_at_zero_rate);
      for (std::int64_t r = 0; r < rows; ++r) {
        if (!rng_.bernoulli(p)) continue;
        float* row = w.data() + r * row_len;
        std::memset(row, 0, static_cast<std::size_t>(row_len) * sizeof(float));
        ++injected;
        ++faults_;
      }
    }
  }
  return injected;
}

void FaultInjector::attach_membrane_faults(snn::SnnNetwork& net) {
  net.set_step_hook([this](snn::SnnNetwork& n, std::int64_t) {
    for (std::int64_t i = 0; i < n.size(); ++i) {
      if (snn::IfNeuron* neuron = n.layer(i).neuron_or_null()) {
        inject_tensor(neuron->membrane_mut(), spec_.membrane_bitflip_rate);
      }
    }
  });
}

bool FaultInjector::maybe_stall() {
  if (spec_.stall_rate <= 0.0 || spec_.stall_ms.count() <= 0) return false;
  bool fire = false;
  {
    MutexLock lock(mu_);
    fire = rng_.bernoulli(static_cast<float>(spec_.stall_rate));
  }
  if (!fire) return false;
  // Sleep outside the lock: concurrent workers stall independently instead
  // of serializing every injector draw behind one sleeping thread.
  std::this_thread::sleep_for(spec_.stall_ms);
  faults_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

double FaultInjector::replica_slowdown(std::int64_t worker_index) const {
  if (spec_.slow_replica_rate <= 0.0 || spec_.slow_replica_factor <= 1.0) {
    return 1.0;
  }
  // splitmix64 of (seed, index): a stateless hash rather than a stream draw,
  // so the slow set depends only on the spec — not on how many faults other
  // threads already drew from the shared RNG.
  std::uint64_t x = spec_.seed + 0x9E3779B97F4A7C15ULL *
                                     (static_cast<std::uint64_t>(worker_index) + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
  return u < spec_.slow_replica_rate ? spec_.slow_replica_factor : 1.0;
}

void FaultInjector::corrupt_byte(const std::string& path, std::uint64_t offset,
                                 unsigned char mask) {
  if (mask == 0) {
    throw std::invalid_argument("FaultInjector::corrupt_byte: mask must be nonzero");
  }
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) {
    throw std::runtime_error("FaultInjector::corrupt_byte: cannot open " + path);
  }
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(f.tellg());
  if (offset >= size) {
    throw std::out_of_range("FaultInjector::corrupt_byte: offset " +
                            std::to_string(offset) + " beyond file size " +
                            std::to_string(size));
  }
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(static_cast<unsigned char>(byte) ^ mask);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
  if (!f) {
    throw std::runtime_error("FaultInjector::corrupt_byte: write failed for " + path);
  }
}

std::uint64_t FaultInjector::corrupt_random_byte(const std::string& path) {
  const auto size = std::filesystem::file_size(path);
  if (size == 0) {
    throw std::runtime_error("FaultInjector::corrupt_random_byte: empty file " + path);
  }
  std::uint64_t offset = 0;
  unsigned char mask = 0;
  {
    MutexLock lock(mu_);
    offset = static_cast<std::uint64_t>(
        rng_.uniform_int(static_cast<std::int64_t>(size)));
    mask = static_cast<unsigned char>(1U << rng_.uniform_int(8));
  }
  corrupt_byte(path, offset, mask);
  faults_.fetch_add(1, std::memory_order_relaxed);
  return offset;
}

void FaultInjector::truncate_file(const std::string& path, std::uint64_t new_size) {
  const auto size = std::filesystem::file_size(path);
  if (new_size >= size) {
    throw std::invalid_argument("FaultInjector::truncate_file: new size " +
                                std::to_string(new_size) +
                                " does not shrink file of " +
                                std::to_string(size) + " bytes");
  }
  std::error_code ec;
  std::filesystem::resize_file(path, new_size, ec);
  if (ec) {
    throw std::runtime_error("FaultInjector::truncate_file: resize failed for " +
                             path + ": " + ec.message());
  }
}

}  // namespace ullsnn::robust
