// Numeric health guards for the hybrid pipeline's training stages.
//
// A single NaN produced by BPTT through the spike discontinuities (or by a
// hardware fault on a neuromorphic substrate) silently destroys a multi-hour
// run: it propagates through the optimizer into every weight within one
// step. HealthMonitor scans losses, weights, gradients, and membrane
// potentials once per epoch and reacts per a configurable policy:
//
//   kOff       no checks (zero overhead; the default — behavior unchanged).
//   kWarn      print a diagnostic and continue.
//   kThrow     abort the run with a descriptive std::runtime_error.
//   kRollback  restore the last known-good snapshot (weights + momentum +
//              RNG), shrink the learning rate by `lr_backoff`, and retry the
//              epoch — up to `retry_budget` times, then abort.
//
// The snapshot includes the trainer's RNG state so a retried epoch replays
// the same shuffle/augmentation stream: a rollback is bitwise-deterministic,
// not merely "approximately resumed".
//
// Thread safety: scan_tensor/check are const and touch only immutable config,
// so concurrent scans from serving workers need no coordination. The mutating
// trio — snapshot/restore/decide — serializes on an internal mutex, and the
// lr_scale/rollbacks counters are atomic, so one monitor may be shared across
// threads (the serving circuit breaker feeds per-batch check() reports from
// every worker into the same instance).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/dnn/module.h"
#include "src/tensor/random.h"
#include "src/util/mutex.h"

namespace ullsnn::robust {

enum class GuardPolicy { kOff, kWarn, kThrow, kRollback };

const char* to_string(GuardPolicy policy);

struct GuardConfig {
  GuardPolicy policy = GuardPolicy::kOff;
  /// |value| above this counts as an explosion even when still finite.
  float explosion_threshold = 1e6F;
  /// Maximum rollbacks before a kRollback monitor gives up and aborts.
  std::int64_t retry_budget = 3;
  /// Learning-rate multiplier applied on every rollback (compounding).
  float lr_backoff = 0.5F;
  bool verbose = false;
};

/// Aggregate scan result over one epoch's loss/tensors.
struct HealthReport {
  std::int64_t nan_count = 0;
  std::int64_t inf_count = 0;
  std::int64_t exploded_count = 0;  // finite but beyond explosion_threshold
  float max_abs = 0.0F;
  bool loss_finite = true;
  std::string worst;  // name of the first offending tensor, if any

  bool healthy() const {
    return loss_finite && nan_count == 0 && inf_count == 0 && exploded_count == 0;
  }
  std::string describe() const;
};

/// What the training loop should do after a check.
enum class GuardAction { kProceed, kRetry, kAbort };

class HealthMonitor {
 public:
  explicit HealthMonitor(GuardConfig config);

  bool enabled() const { return config_.policy != GuardPolicy::kOff; }
  const GuardConfig& config() const { return config_; }

  /// Accumulate one tensor's NaN/Inf/explosion counts into `report`.
  void scan_tensor(const std::string& name, const Tensor& t,
                   HealthReport& report) const;

  /// Scan a parameter set (values and gradients) plus the epoch loss.
  HealthReport check(const std::vector<dnn::Param*>& params, float loss) const;

  /// Record a known-good state to roll back to. Tensors are deep-copied.
  void snapshot(const std::vector<dnn::Param*>& params,
                const std::vector<Tensor>& velocity, const Rng& rng);
  bool has_snapshot() const {
    return has_snapshot_.load(std::memory_order_acquire);
  }

  /// Restore the last snapshot into `params`/`velocity`/`rng`.
  /// Returns false (and leaves everything untouched) if none was taken.
  bool restore(const std::vector<dnn::Param*>& params,
               std::vector<Tensor>& velocity, Rng& rng) const;

  /// Apply the policy to a report: may print (kWarn), count a rollback and
  /// shrink lr_scale (kRollback), or request an abort (kThrow, or kRollback
  /// with the retry budget exhausted).
  GuardAction decide(const HealthReport& report);

  /// Compounded learning-rate backoff factor (1.0 until a rollback happens).
  float lr_scale() const { return lr_scale_.load(std::memory_order_relaxed); }
  std::int64_t rollbacks() const {
    return rollbacks_.load(std::memory_order_relaxed);
  }

 private:
  GuardConfig config_;
  mutable Mutex mu_;  // guards the snapshot buffers and decide()
  std::vector<Tensor> saved_values_ GUARDED_BY(mu_);
  std::vector<Tensor> saved_velocity_ GUARDED_BY(mu_);
  RngState saved_rng_ GUARDED_BY(mu_);
  // release on store (after the buffers are filled under mu_), acquire on
  // load: a true has_snapshot() implies the snapshot contents are visible.
  std::atomic<bool> has_snapshot_{false};
  // relaxed: independent tallies read in isolation.
  std::atomic<std::int64_t> rollbacks_{0};
  std::atomic<float> lr_scale_{1.0F};
};

}  // namespace ullsnn::robust
