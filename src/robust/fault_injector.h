// Deterministic fault-injection harness.
//
// Low-T converted SNNs are pitched as deployment targets for noisy
// neuromorphic substrates, where bit-flips in stored weights and membrane
// potentials are the expected failure mode rather than the exception. The
// injector models the standard hardware fault taxonomy:
//
//   * weight bit-flips    — flip one uniformly random bit of the IEEE-754
//                           representation (exponent hits included: that is
//                           what makes real SEUs catastrophic);
//   * weight sign-flips   — flip only the sign bit;
//   * stuck-at-zero units — zero an entire output unit's fan-in (row of a
//                           rank >= 2 weight), modeling a dead neuron;
//   * membrane bit-flips  — flip bits of live membrane potentials between
//                           time steps, via SnnNetwork's step hook;
//   * checkpoint-byte corruption — XOR a chosen or random byte of a file on
//                           disk, for exercising the serializer's CRC path;
//   * worker stalls       — maybe_stall() sleeps the calling worker mid-batch
//                           at `stall_rate`, modeling GC pauses / page faults
//                           / noisy neighbors (the watchdog's prey);
//   * slow replicas       — replica_slowdown(worker) gives each serving
//                           worker a deterministic multiplicative delay
//                           factor, modeling a degraded host in the fleet.
//
// All injection is driven by a private xoshiro stream: the same spec + seed
// reproduces the same faults, so degradation curves (bench_faults) and tests
// are deterministic.
//
// Thread safety: all mutating entry points serialize on an internal mutex and
// the fault counter is atomic, so one injector may be shared across serving
// workers (each drawing chaos faults concurrently). The *sequence* of faults
// is still deterministic per injector; which caller receives which draw
// depends on interleaving, so multi-threaded tests must assert totals, not
// per-thread attributions.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/dnn/module.h"
#include "src/snn/snn_network.h"
#include "src/tensor/random.h"
#include "src/util/mutex.h"

namespace ullsnn::robust {

struct FaultSpec {
  /// Per-element probability of flipping one random bit of a weight.
  double weight_bitflip_rate = 0.0;
  /// Per-element probability of flipping a weight's sign bit.
  double weight_signflip_rate = 0.0;
  /// Per-output-unit probability of zeroing the unit's entire weight row.
  double stuck_at_zero_rate = 0.0;
  /// Per-element, per-time-step probability of flipping one random bit of a
  /// membrane potential (applied through attach_membrane_faults).
  double membrane_bitflip_rate = 0.0;
  /// Per-call probability that maybe_stall() sleeps the calling worker for
  /// `stall_ms`, modeling a mid-batch execution stall.
  double stall_rate = 0.0;
  std::chrono::milliseconds stall_ms{0};
  /// Fraction of serving workers that run slow: replica_slowdown(w) returns
  /// `slow_replica_factor` for ~`slow_replica_rate` of worker indices
  /// (chosen by a pure hash of seed + index, so *which* workers are slow is
  /// deterministic even though request routing is not) and 1.0 for the rest.
  double slow_replica_rate = 0.0;
  double slow_replica_factor = 1.0;
  std::uint64_t seed = 0xFA017;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  /// Apply weight bit-flips, sign-flips, and stuck-at-zero faults to every
  /// parameter. Returns the number of faults injected by this call.
  std::int64_t inject(const std::vector<dnn::Param*>& params);

  /// Bit-flip faults on one tensor at the given per-element rate. Returns the
  /// number of flips. `sign_only` restricts flips to the sign bit.
  std::int64_t inject_tensor(Tensor& t, double rate, bool sign_only = false);

  /// Install a step hook on `net` that flips membrane bits at
  /// `membrane_bitflip_rate` after every time step. The injector must outlive
  /// the hook (call net.clear_step_hook() or destroy the network first).
  void attach_membrane_faults(snn::SnnNetwork& net);

  /// With probability `stall_rate`, sleep the calling thread for `stall_ms`
  /// (counted as one fault). Call from a worker-side hook (e.g.
  /// before_forward_hook) to simulate a mid-batch stall. Returns true when a
  /// stall fired. The bernoulli draw comes from the shared deterministic
  /// stream; the sleep itself happens outside the lock so concurrent workers
  /// stall in parallel, not in convoy.
  bool maybe_stall();

  /// Deterministic per-worker slowdown factor: `slow_replica_factor` when
  /// worker `worker_index` is one of the ~`slow_replica_rate` slow replicas,
  /// 1.0 otherwise. Pure function of (seed, worker_index) — no RNG stream
  /// state — so the slow set is stable across calls and threads.
  double replica_slowdown(std::int64_t worker_index) const;

  /// Total faults injected since construction (all kinds).
  std::int64_t faults_injected() const {
    return faults_.load(std::memory_order_relaxed);
  }

  const FaultSpec& spec() const { return spec_; }

  /// XOR the byte at `offset` of `path` with `mask` (mask 0 is rejected —
  /// it would be a no-op "corruption"). Throws on I/O errors or
  /// out-of-range offsets.
  static void corrupt_byte(const std::string& path, std::uint64_t offset,
                           unsigned char mask);

  /// Corrupt one uniformly random byte of `path`; returns the offset chosen.
  std::uint64_t corrupt_random_byte(const std::string& path);

  /// Truncate `path` to exactly `new_size` bytes, simulating a torn write or
  /// partial copy. `new_size` must be strictly smaller than the current file
  /// size (anything else is not a truncation). Throws on I/O errors.
  static void truncate_file(const std::string& path, std::uint64_t new_size);

 private:
  /// Unlocked body of inject_tensor.
  std::int64_t inject_tensor_impl(Tensor& t, double rate, bool sign_only)
      REQUIRES(mu_);

  FaultSpec spec_;
  mutable Mutex mu_;  // guards rng_ (xoshiro state is not atomic)
  Rng rng_ GUARDED_BY(mu_);
  // relaxed: independent tally read in isolation.
  std::atomic<std::int64_t> faults_{0};
};

}  // namespace ullsnn::robust
