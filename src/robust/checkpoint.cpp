#include "src/robust/checkpoint.h"

#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "src/util/serialize.h"

namespace ullsnn::robust {

namespace {

// Bit-exact packing of 64-bit payloads into pairs of f32 tensor elements.
// The bytes are memcpy'd in and out; no float arithmetic ever touches them.
Tensor pack_u64(const std::vector<std::uint64_t>& words) {
  Tensor t({static_cast<std::int64_t>(words.size()) * 2});
  std::memcpy(t.data(), words.data(), words.size() * sizeof(std::uint64_t));
  return t;
}

std::vector<std::uint64_t> unpack_u64(const Tensor& t, std::size_t expected,
                                      const std::string& what) {
  if (t.numel() != static_cast<std::int64_t>(expected) * 2) {
    throw std::runtime_error("checkpoint: field '" + what + "' has wrong size");
  }
  std::vector<std::uint64_t> words(expected);
  std::memcpy(words.data(), t.data(), expected * sizeof(std::uint64_t));
  return words;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

const Tensor& require(const TensorDict& dict, const std::string& key,
                      const std::string& path) {
  const auto it = dict.find(key);
  if (it == dict.end()) {
    throw std::runtime_error("checkpoint: missing field '" + key + "' in " + path);
  }
  return it->second;
}

std::vector<std::uint64_t> rng_words(const Rng& rng) {
  const RngState st = rng.state();
  return {st.s[0], st.s[1], st.s[2], st.s[3], st.has_cached_normal,
          st.cached_normal_bits};
}

void set_rng_words(Rng& rng, const std::vector<std::uint64_t>& words) {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = words[static_cast<std::size_t>(i)];
  st.has_cached_normal = words[4];
  st.cached_normal_bits = words[5];
  rng.set_state(st);
}

}  // namespace

std::string manifest_path(const std::string& dir) { return dir + "/manifest.ckpt"; }

std::string stage_weights_path(const std::string& dir, int stage) {
  return dir + "/stage_" + std::to_string(stage) + "_weights.ckpt";
}

std::string stage_train_state_path(const std::string& dir, int stage) {
  return dir + "/stage_" + std::to_string(stage) + "_train_state.ckpt";
}

void save_manifest(const PipelineManifest& manifest, const std::string& path) {
  TensorDict dict;
  dict["stage"] = pack_u64({static_cast<std::uint64_t>(manifest.stage_completed)});
  dict["metrics"] = pack_u64({double_bits(manifest.dnn_accuracy),
                              double_bits(manifest.converted_accuracy),
                              double_bits(manifest.sgl_accuracy),
                              double_bits(manifest.dnn_train_seconds),
                              double_bits(manifest.sgl_train_seconds)});
  save_tensors(dict, path);
}

PipelineManifest load_manifest(const std::string& path) {
  const TensorDict dict = load_tensors(path);
  PipelineManifest m;
  const auto stage = unpack_u64(require(dict, "stage", path), 1, "stage");
  if (stage[0] > 3) {
    throw std::runtime_error("checkpoint: manifest stage " +
                             std::to_string(stage[0]) + " out of range in " + path);
  }
  m.stage_completed = static_cast<std::int64_t>(stage[0]);
  const auto metrics = unpack_u64(require(dict, "metrics", path), 5, "metrics");
  m.dnn_accuracy = bits_double(metrics[0]);
  m.converted_accuracy = bits_double(metrics[1]);
  m.sgl_accuracy = bits_double(metrics[2]);
  m.dnn_train_seconds = bits_double(metrics[3]);
  m.sgl_train_seconds = bits_double(metrics[4]);
  return m;
}

void save_params(const std::vector<dnn::Param*>& params, const std::string& path) {
  TensorDict dict;
  for (std::size_t i = 0; i < params.size(); ++i) {
    dict["p" + std::to_string(i)] = params[i]->value;
  }
  save_tensors(dict, path);
}

void load_params(const std::vector<dnn::Param*>& params, const std::string& path) {
  const TensorDict dict = load_tensors(path);
  if (dict.size() != params.size()) {
    throw std::runtime_error("checkpoint: " + path + " holds " +
                             std::to_string(dict.size()) + " tensors, model has " +
                             std::to_string(params.size()));
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor& stored = require(dict, "p" + std::to_string(i), path);
    if (stored.shape() != params[i]->value.shape()) {
      throw std::runtime_error("checkpoint: shape mismatch for parameter '" +
                               params[i]->name + "' in " + path);
    }
    params[i]->value = stored;
  }
}

TrainCheckpointer::TrainCheckpointer(std::string path) : path_(std::move(path)) {}

void TrainCheckpointer::save(std::int64_t epochs_completed,
                             const std::vector<dnn::Param*>& params,
                             const std::vector<Tensor>& velocity,
                             const Rng& rng) const {
  if (velocity.size() != params.size()) {
    throw std::invalid_argument("TrainCheckpointer::save: velocity/params mismatch");
  }
  TensorDict dict;
  dict["epoch"] = pack_u64({static_cast<std::uint64_t>(epochs_completed)});
  dict["rng"] = pack_u64(rng_words(rng));
  for (std::size_t i = 0; i < params.size(); ++i) {
    dict["p" + std::to_string(i)] = params[i]->value;
    dict["v" + std::to_string(i)] = velocity[i];
  }
  save_tensors(dict, path_);
}

std::int64_t TrainCheckpointer::restore(const std::vector<dnn::Param*>& params,
                                        std::vector<Tensor>& velocity,
                                        Rng& rng) const {
  if (!std::filesystem::exists(path_)) return 0;
  const TensorDict dict = load_tensors(path_);
  if (dict.size() != 2 + 2 * params.size()) {
    throw std::runtime_error("checkpoint: " + path_ +
                             " does not match the model's parameter count");
  }
  // Validate every shape before mutating anything: restore is all-or-nothing.
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor& p = require(dict, "p" + std::to_string(i), path_);
    const Tensor& v = require(dict, "v" + std::to_string(i), path_);
    if (p.shape() != params[i]->value.shape() ||
        v.shape() != velocity[i].shape()) {
      throw std::runtime_error("checkpoint: shape mismatch for parameter '" +
                               params[i]->name + "' in " + path_);
    }
  }
  const auto epoch = unpack_u64(require(dict, "epoch", path_), 1, "epoch");
  const auto rng_state = unpack_u64(require(dict, "rng", path_), 6, "rng");
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = dict.at("p" + std::to_string(i));
    params[i]->zero_grad();
    velocity[i] = dict.at("v" + std::to_string(i));
  }
  set_rng_words(rng, rng_state);
  return static_cast<std::int64_t>(epoch[0]);
}

void TrainCheckpointer::remove() const {
  std::error_code ec;
  std::filesystem::remove(path_, ec);
}

}  // namespace ullsnn::robust
