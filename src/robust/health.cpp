#include "src/robust/health.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ullsnn::robust {

const char* to_string(GuardPolicy policy) {
  switch (policy) {
    case GuardPolicy::kOff: return "off";
    case GuardPolicy::kWarn: return "warn";
    case GuardPolicy::kThrow: return "throw";
    case GuardPolicy::kRollback: return "rollback";
  }
  return "unknown";
}

std::string HealthReport::describe() const {
  if (healthy()) return "healthy";
  std::string msg = "numeric fault:";
  if (!loss_finite) msg += " non-finite loss;";
  if (nan_count > 0) msg += " " + std::to_string(nan_count) + " NaN;";
  if (inf_count > 0) msg += " " + std::to_string(inf_count) + " Inf;";
  if (exploded_count > 0) {
    msg += " " + std::to_string(exploded_count) + " exploded (max |x| = " +
           std::to_string(max_abs) + ");";
  }
  if (!worst.empty()) msg += " first offender: " + worst;
  return msg;
}

HealthMonitor::HealthMonitor(GuardConfig config) : config_(config) {
  if (config_.retry_budget < 0) {
    throw std::invalid_argument("HealthMonitor: retry_budget must be >= 0");
  }
  if (config_.lr_backoff <= 0.0F || config_.lr_backoff > 1.0F) {
    throw std::invalid_argument("HealthMonitor: lr_backoff must be in (0, 1]");
  }
}

void HealthMonitor::scan_tensor(const std::string& name, const Tensor& t,
                                HealthReport& report) const {
  const bool was_healthy = report.healthy();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const float v = t[i];
    if (std::isnan(v)) {
      ++report.nan_count;
    } else if (std::isinf(v)) {
      ++report.inf_count;
    } else {
      const float a = std::fabs(v);
      report.max_abs = std::max(report.max_abs, a);
      if (a > config_.explosion_threshold) ++report.exploded_count;
    }
  }
  if (was_healthy && !report.healthy() && report.worst.empty()) {
    report.worst = name;
  }
}

HealthReport HealthMonitor::check(const std::vector<dnn::Param*>& params,
                                  float loss) const {
  HealthReport report;
  report.loss_finite = std::isfinite(loss);
  if (!report.loss_finite) report.worst = "loss";
  for (const dnn::Param* p : params) {
    scan_tensor(p->name + ".value", p->value, report);
    scan_tensor(p->name + ".grad", p->grad, report);
  }
  return report;
}

void HealthMonitor::snapshot(const std::vector<dnn::Param*>& params,
                             const std::vector<Tensor>& velocity, const Rng& rng) {
  MutexLock lock(mu_);
  saved_values_.clear();
  saved_values_.reserve(params.size());
  for (const dnn::Param* p : params) saved_values_.push_back(p->value);
  saved_velocity_ = velocity;
  saved_rng_ = rng.state();
  has_snapshot_.store(true, std::memory_order_release);
}

bool HealthMonitor::restore(const std::vector<dnn::Param*>& params,
                            std::vector<Tensor>& velocity, Rng& rng) const {
  MutexLock lock(mu_);
  if (!has_snapshot_.load(std::memory_order_acquire)) return false;
  if (params.size() != saved_values_.size() ||
      velocity.size() != saved_velocity_.size()) {
    throw std::logic_error("HealthMonitor::restore: parameter set changed size");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = saved_values_[i];
    params[i]->zero_grad();
  }
  velocity = saved_velocity_;
  rng.set_state(saved_rng_);
  return true;
}

namespace {

/// Structured args body for the trace instant recorded on every fault.
std::string fault_args(const HealthReport& report) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "\"nan\":%lld,\"inf\":%lld,\"exploded\":%lld,\"loss_finite\":%s",
                static_cast<long long>(report.nan_count),
                static_cast<long long>(report.inf_count),
                static_cast<long long>(report.exploded_count),
                report.loss_finite ? "true" : "false");
  return buf;
}

}  // namespace

GuardAction HealthMonitor::decide(const HealthReport& report) {
  if (config_.policy == GuardPolicy::kOff || report.healthy()) {
    return GuardAction::kProceed;
  }
  ULLSNN_COUNTER_ADD("health.faults", 1);
  ULLSNN_TRACE_INSTANT_ARGS("health.fault", fault_args(report).c_str());
  switch (config_.policy) {
    case GuardPolicy::kWarn:
      obs::logf(obs::LogLevel::kWarn, "[health] WARNING: %s", report.describe().c_str());
      return GuardAction::kProceed;
    case GuardPolicy::kThrow:
      return GuardAction::kAbort;
    case GuardPolicy::kRollback: {
      MutexLock lock(mu_);
      const std::int64_t done = rollbacks_.load(std::memory_order_relaxed);
      if (!has_snapshot_.load(std::memory_order_acquire) ||
          done >= config_.retry_budget) {
        ULLSNN_COUNTER_ADD("health.aborts", 1);
        return GuardAction::kAbort;
      }
      rollbacks_.store(done + 1, std::memory_order_relaxed);
      const float scale =
          lr_scale_.load(std::memory_order_relaxed) * config_.lr_backoff;
      lr_scale_.store(scale, std::memory_order_relaxed);
      ULLSNN_COUNTER_ADD("health.rollbacks", 1);
      ULLSNN_GAUGE_SET("health.lr_scale", scale);
      ULLSNN_TRACE_INSTANT("health.rollback");
      if (config_.verbose) {
        obs::logf(obs::LogLevel::kWarn,
                  "[health] rollback %lld/%lld (lr scale %.3g): %s",
                  static_cast<long long>(done + 1),
                  static_cast<long long>(config_.retry_budget),
                  static_cast<double>(scale), report.describe().c_str());
      }
      return GuardAction::kRetry;
    }
    case GuardPolicy::kOff: break;  // unreachable
  }
  return GuardAction::kProceed;
}

}  // namespace ullsnn::robust
