// Stage- and epoch-level checkpoint/resume for the hybrid pipeline.
//
// The pipeline's three stages (DNN training -> conversion -> SGL
// fine-tuning) are a long serial computation; a crash in stage (c) must not
// throw away stages (a) and (b). Two cooperating pieces:
//
//  * PipelineManifest — a tiny record of which stage last completed and the
//    accuracies/timings already measured, persisted after every stage.
//  * TrainCheckpointer — a per-epoch snapshot of one training stage: weights,
//    optimizer momentum, and the trainer's RNG state, so a resumed stage
//    continues bitwise-identically (same shuffles, same augmentations).
//
// Everything is stored in the CRC-checked v2 tensor-dict format
// (util/serialize.h) and written atomically, so a crash mid-save leaves the
// previous checkpoint intact and any corruption is rejected at load time.
// Non-float payloads (epoch counters, RNG words, accuracy doubles) are
// bit-packed into f32 tensors — pure memcpy both ways, no value ever passes
// through float arithmetic, so the round-trip is exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/dnn/module.h"
#include "src/tensor/random.h"

namespace ullsnn::robust {

/// Canonical file locations inside a checkpoint directory.
std::string manifest_path(const std::string& dir);
/// Completed-stage weights; `stage` is 1 (DNN), 2 (converted SNN), 3 (SGL).
std::string stage_weights_path(const std::string& dir, int stage);
/// Mid-stage per-epoch training state; `stage` is 1 (DNN) or 3 (SGL).
std::string stage_train_state_path(const std::string& dir, int stage);

struct PipelineManifest {
  std::int64_t stage_completed = 0;  // 0 = nothing, 1 = (a), 2 = (b), 3 = (c)
  double dnn_accuracy = 0.0;
  double converted_accuracy = 0.0;
  double sgl_accuracy = 0.0;
  double dnn_train_seconds = 0.0;
  double sgl_train_seconds = 0.0;
};

void save_manifest(const PipelineManifest& manifest, const std::string& path);
/// Throws std::runtime_error on a missing, corrupt, or incompatible file.
PipelineManifest load_manifest(const std::string& path);

/// Save parameter values as a tensor dict keyed "p0", "p1", ... (atomic).
void save_params(const std::vector<dnn::Param*>& params, const std::string& path);
/// Load values saved by save_params back into `params`. Throws on a missing
/// file, corruption, or any count/shape mismatch.
void load_params(const std::vector<dnn::Param*>& params, const std::string& path);

/// Epoch-granular checkpointing of one training stage. The trainers call
/// save() after every completed epoch and restore() once at the start of
/// fit(); an interrupted stage resumes from its last completed epoch.
class TrainCheckpointer {
 public:
  explicit TrainCheckpointer(std::string path);

  void save(std::int64_t epochs_completed, const std::vector<dnn::Param*>& params,
            const std::vector<Tensor>& velocity, const Rng& rng) const;

  /// Restore a state saved by save(). Returns the number of completed epochs,
  /// or 0 (leaving everything untouched) when no checkpoint file exists.
  /// Throws std::runtime_error if the file exists but is corrupt or does not
  /// match the model.
  std::int64_t restore(const std::vector<dnn::Param*>& params,
                       std::vector<Tensor>& velocity, Rng& rng) const;

  /// Delete the checkpoint file (called once its stage completes).
  void remove() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace ullsnn::robust
