// Dataset containers and mini-batch iteration.
#pragma once

#include <cstdint>
#include <vector>

#include "src/data/synthetic_cifar.h"
#include "src/tensor/random.h"
#include "src/tensor/tensor.h"

namespace ullsnn::data {

struct Batch {
  Tensor images;                    // [B, C, H, W]
  std::vector<std::int64_t> labels; // size B

  std::int64_t size() const { return static_cast<std::int64_t>(labels.size()); }
  bool empty() const { return labels.empty(); }
};

/// Deterministically shuffled mini-batch iterator over a LabeledImages set.
/// Reshuffles on each new epoch. The final short batch is emitted too.
class BatchIterator {
 public:
  BatchIterator(const LabeledImages& dataset, std::int64_t batch_size, Rng& rng,
                bool shuffle_each_epoch = true);

  /// Number of batches per epoch.
  std::int64_t num_batches() const;

  /// Copy the `b`-th batch of the current epoch.
  Batch batch(std::int64_t b) const;

  /// Reshuffle for the next epoch (no-op when shuffling is disabled).
  void next_epoch();

 private:
  const LabeledImages& dataset_;
  std::int64_t batch_size_;
  Rng* rng_;
  bool shuffle_;
  std::vector<std::int64_t> order_;
};

/// Standardize images in place to zero mean / unit stddev per channel,
/// computed over the whole set (the CIFAR-style preprocessing the paper's
/// training uses). Returns {mean, stddev} per channel for reuse on test data.
struct ChannelStats {
  float mean[3] = {0, 0, 0};
  float stddev[3] = {1, 1, 1};
};
ChannelStats standardize(LabeledImages& dataset);
void apply_standardize(LabeledImages& dataset, const ChannelStats& stats);

}  // namespace ullsnn::data
