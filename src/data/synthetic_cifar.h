// SyntheticCIFAR: a procedural stand-in for CIFAR-10 / CIFAR-100.
//
// The real datasets are not available offline, so we generate a
// class-conditional image distribution with the properties the paper's
// analysis depends on:
//   * images are 3xHxW with pixel statistics roughly matching natural-image
//     normalization (zero-ish mean after standardization, bounded range);
//   * classes are separable by a convnet but not by a linear probe on raw
//     pixels (each class is a superposition of oriented Gabor gratings with
//     instance-level phase/position jitter, occluders, and additive noise);
//   * trained-network pre-activation distributions come out skewed toward
//     zero — the exact phenomenon Sec. III-A analyzes.
//
// Determinism: a (seed, split) pair fully determines the dataset, so every
// bench regenerates identical data.
#pragma once

#include <cstdint>
#include <vector>

#include "src/tensor/random.h"
#include "src/tensor/tensor.h"

namespace ullsnn::data {

struct SyntheticCifarSpec {
  std::int64_t num_classes = 10;    // 10 -> CIFAR-10 analogue, 100 -> CIFAR-100
  std::int64_t image_size = 32;     // height == width
  std::int64_t gabors_per_class = 3;
  float noise_stddev = 0.3F;        // instance pixel noise
  float jitter = 0.2F;              // phase / position jitter fraction
  float occluder_prob = 0.3F;       // chance of a random dark patch
  /// Probability of negating the whole pattern (label preserved). Sign
  /// symmetry zeroes the class means, which defeats linear template matching
  /// and forces rectified (conv + ReLU) features — keeping the task
  /// CIFAR-like in difficulty profile rather than linearly separable.
  float sign_flip_prob = 0.5F;
  std::uint64_t seed = 42;
};

struct LabeledImages {
  Tensor images;                    // [N, 3, S, S], standardized
  std::vector<std::int64_t> labels; // size N, values in [0, num_classes)

  std::int64_t size() const { return static_cast<std::int64_t>(labels.size()); }
  bool empty() const { return labels.empty(); }
};

class SyntheticCifar {
 public:
  explicit SyntheticCifar(SyntheticCifarSpec spec);

  /// Generate `count` labeled images. `split_salt` decorrelates train/test
  /// draws (use different salts for different splits).
  LabeledImages generate(std::int64_t count, std::uint64_t split_salt) const;

  const SyntheticCifarSpec& spec() const { return spec_; }

 private:
  struct Gabor {
    float fx, fy;       // spatial frequency components (cycles per pixel)
    float phase;        // radians
    float cx, cy;       // envelope center, normalized [0,1]
    float sigma;        // envelope width, normalized
    float rgb[3];       // per-channel amplitude
  };

  void render(const std::vector<Gabor>& gabors, Rng& rng, float* out) const;

  SyntheticCifarSpec spec_;
  std::vector<std::vector<Gabor>> class_templates_;  // [num_classes][gabors]
};

}  // namespace ullsnn::data
