#include "src/data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ullsnn::data {

BatchIterator::BatchIterator(const LabeledImages& dataset, std::int64_t batch_size,
                             Rng& rng, bool shuffle_each_epoch)
    : dataset_(dataset),
      batch_size_(batch_size),
      rng_(&rng),
      shuffle_(shuffle_each_epoch),
      order_(static_cast<std::size_t>(dataset.size())) {
  if (batch_size <= 0) throw std::invalid_argument("BatchIterator: batch_size must be positive");
  std::iota(order_.begin(), order_.end(), 0);
  if (shuffle_) shuffle(order_, *rng_);
}

std::int64_t BatchIterator::num_batches() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

Batch BatchIterator::batch(std::int64_t b) const {
  if (b < 0 || b >= num_batches()) {
    throw std::out_of_range("BatchIterator::batch: index " + std::to_string(b));
  }
  const std::int64_t begin = b * batch_size_;
  const std::int64_t end = std::min(begin + batch_size_, dataset_.size());
  const std::int64_t n = end - begin;
  const Shape& s = dataset_.images.shape();
  std::int64_t per_image = 1;
  for (std::size_t d = 1; d < s.size(); ++d) per_image *= s[d];
  Shape batch_shape = s;
  batch_shape[0] = n;
  Batch out;
  out.images = Tensor(std::move(batch_shape));
  out.labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t src = order_[static_cast<std::size_t>(begin + i)];
    std::copy_n(dataset_.images.data() + src * per_image, per_image,
                out.images.data() + i * per_image);
    out.labels[static_cast<std::size_t>(i)] = dataset_.labels[static_cast<std::size_t>(src)];
  }
  return out;
}

void BatchIterator::next_epoch() {
  if (shuffle_) shuffle(order_, *rng_);
}

ChannelStats standardize(LabeledImages& dataset) {
  ChannelStats stats;
  const Shape& s = dataset.images.shape();
  const std::int64_t n = s[0];
  const std::int64_t hw = s[2] * s[3];
  for (int c = 0; c < 3; ++c) {
    double sum = 0.0;
    double sq = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* p = dataset.images.data() + (i * 3 + c) * hw;
      for (std::int64_t j = 0; j < hw; ++j) {
        sum += p[j];
        sq += static_cast<double>(p[j]) * p[j];
      }
    }
    const double count = static_cast<double>(n * hw);
    const double mean = sum / count;
    const double var = std::max(sq / count - mean * mean, 1e-12);
    stats.mean[c] = static_cast<float>(mean);
    stats.stddev[c] = static_cast<float>(std::sqrt(var));
  }
  apply_standardize(dataset, stats);
  return stats;
}

void apply_standardize(LabeledImages& dataset, const ChannelStats& stats) {
  const Shape& s = dataset.images.shape();
  const std::int64_t n = s[0];
  const std::int64_t hw = s[2] * s[3];
  for (int c = 0; c < 3; ++c) {
    const float mean = stats.mean[c];
    const float inv = 1.0F / stats.stddev[c];
    for (std::int64_t i = 0; i < n; ++i) {
      float* p = dataset.images.data() + (i * 3 + c) * hw;
      for (std::int64_t j = 0; j < hw; ++j) p[j] = (p[j] - mean) * inv;
    }
  }
}

}  // namespace ullsnn::data
