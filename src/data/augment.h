// Standard CIFAR training-time augmentation: pad-4 random crop + horizontal
// flip, applied per batch (Sec. IV-A uses the conventional recipe).
#pragma once

#include "src/data/dataset.h"
#include "src/tensor/random.h"

namespace ullsnn::data {

struct AugmentSpec {
  std::int64_t pad = 4;
  bool random_crop = true;
  bool horizontal_flip = true;
};

/// Augment every image in `batch` in place.
void augment_batch(Batch& batch, const AugmentSpec& spec, Rng& rng);

}  // namespace ullsnn::data
