#include "src/data/synthetic_cifar.h"

#include <cmath>
#include <numbers>

namespace ullsnn::data {

SyntheticCifar::SyntheticCifar(SyntheticCifarSpec spec) : spec_(spec) {
  Rng rng(spec_.seed);
  class_templates_.resize(static_cast<std::size_t>(spec_.num_classes));
  for (auto& gabors : class_templates_) {
    gabors.resize(static_cast<std::size_t>(spec_.gabors_per_class));
    for (auto& g : gabors) {
      // Frequencies in [0.06, 0.35] cycles/pixel keep patterns resolvable at
      // 32x32 yet distinct across classes.
      const float freq = rng.uniform(0.06F, 0.35F);
      const float theta = rng.uniform(0.0F, std::numbers::pi_v<float>);
      g.fx = freq * std::cos(theta);
      g.fy = freq * std::sin(theta);
      g.phase = rng.uniform(0.0F, 2.0F * std::numbers::pi_v<float>);
      g.cx = rng.uniform(0.25F, 0.75F);
      g.cy = rng.uniform(0.25F, 0.75F);
      g.sigma = rng.uniform(0.15F, 0.45F);
      for (float& c : g.rgb) c = rng.uniform(-1.0F, 1.0F);
    }
  }
}

void SyntheticCifar::render(const std::vector<Gabor>& gabors, Rng& rng,
                            float* out) const {
  const std::int64_t s = spec_.image_size;
  const auto sf = static_cast<float>(s);
  // Per-instance jitter: each gabor's phase and center wobble, so classes are
  // distributions, not single prototypes.
  std::vector<Gabor> inst = gabors;
  for (auto& g : inst) {
    g.phase += rng.uniform(-spec_.jitter, spec_.jitter) * 2.0F *
               std::numbers::pi_v<float>;
    g.cx += rng.uniform(-spec_.jitter, spec_.jitter);
    g.cy += rng.uniform(-spec_.jitter, spec_.jitter);
  }
  const float sign = rng.bernoulli(spec_.sign_flip_prob) ? -1.0F : 1.0F;
  const float contrast = sign * rng.uniform(0.7F, 1.3F);
  for (std::int64_t y = 0; y < s; ++y) {
    for (std::int64_t x = 0; x < s; ++x) {
      const float nx = static_cast<float>(x) / sf;
      const float ny = static_cast<float>(y) / sf;
      float rgb[3] = {0.0F, 0.0F, 0.0F};
      for (const auto& g : inst) {
        const float carrier = std::cos(
            2.0F * std::numbers::pi_v<float> *
                (g.fx * static_cast<float>(x) + g.fy * static_cast<float>(y)) +
            g.phase);
        const float dx = nx - g.cx;
        const float dy = ny - g.cy;
        const float envelope = std::exp(-(dx * dx + dy * dy) / (2.0F * g.sigma * g.sigma));
        const float v = carrier * envelope * contrast;
        for (int c = 0; c < 3; ++c) rgb[c] += g.rgb[c] * v;
      }
      for (int c = 0; c < 3; ++c) {
        out[c * s * s + y * s + x] = rgb[c] + rng.normal(0.0F, spec_.noise_stddev);
      }
    }
  }
  // Occluder: a dark square patch, which forces the classifier to rely on
  // distributed evidence rather than a single location.
  if (rng.bernoulli(spec_.occluder_prob)) {
    const std::int64_t patch = s / 4;
    const std::int64_t px = rng.uniform_int(s - patch);
    const std::int64_t py = rng.uniform_int(s - patch);
    for (int c = 0; c < 3; ++c) {
      for (std::int64_t y = py; y < py + patch; ++y) {
        for (std::int64_t x = px; x < px + patch; ++x) {
          out[c * s * s + y * s + x] = -1.0F;
        }
      }
    }
  }
}

LabeledImages SyntheticCifar::generate(std::int64_t count,
                                       std::uint64_t split_salt) const {
  const std::int64_t s = spec_.image_size;
  LabeledImages out;
  out.images = Tensor({count, 3, s, s});
  out.labels.resize(static_cast<std::size_t>(count));
  Rng rng(spec_.seed ^ (split_salt * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t label = i % spec_.num_classes;  // balanced classes
    out.labels[static_cast<std::size_t>(i)] = label;
    render(class_templates_[static_cast<std::size_t>(label)], rng,
           out.images.data() + i * 3 * s * s);
  }
  return out;
}

}  // namespace ullsnn::data
