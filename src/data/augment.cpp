#include "src/data/augment.h"

#include <algorithm>
#include <vector>

namespace ullsnn::data {

namespace {
// Crop a [C,H,W] image from its zero-padded version at offset (oy, ox),
// writing the result back into `img`.
void crop_from_padded(float* img, std::int64_t channels, std::int64_t height,
                      std::int64_t width, std::int64_t pad, std::int64_t oy,
                      std::int64_t ox, std::vector<float>& scratch) {
  const std::int64_t ph = height + 2 * pad;
  const std::int64_t pw = width + 2 * pad;
  scratch.assign(static_cast<std::size_t>(channels * ph * pw), 0.0F);
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t y = 0; y < height; ++y) {
      std::copy_n(img + (c * height + y) * width, width,
                  scratch.data() + (c * ph + y + pad) * pw + pad);
    }
  }
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t y = 0; y < height; ++y) {
      std::copy_n(scratch.data() + (c * ph + y + oy) * pw + ox, width,
                  img + (c * height + y) * width);
    }
  }
}

void hflip(float* img, std::int64_t channels, std::int64_t height, std::int64_t width) {
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t y = 0; y < height; ++y) {
      float* row = img + (c * height + y) * width;
      std::reverse(row, row + width);
    }
  }
}
}  // namespace

void augment_batch(Batch& batch, const AugmentSpec& spec, Rng& rng) {
  const Shape& s = batch.images.shape();
  const std::int64_t n = s[0];
  const std::int64_t channels = s[1];
  const std::int64_t height = s[2];
  const std::int64_t width = s[3];
  std::vector<float> scratch;
  for (std::int64_t i = 0; i < n; ++i) {
    float* img = batch.images.data() + i * channels * height * width;
    if (spec.random_crop && spec.pad > 0) {
      const std::int64_t oy = rng.uniform_int(2 * spec.pad + 1);
      const std::int64_t ox = rng.uniform_int(2 * spec.pad + 1);
      crop_from_padded(img, channels, height, width, spec.pad, oy, ox, scratch);
    }
    if (spec.horizontal_flip && rng.bernoulli(0.5F)) {
      hflip(img, channels, height, width);
    }
  }
}

}  // namespace ullsnn::data
