// Event-driven sparse inference engine.
//
// The dense simulator (SnnNetwork) evaluates every synapse at every step;
// real neuromorphic hardware (TrueNorth, SpiNNaker — Sec. VI-B) only does
// work per *spike*. This engine is the software analogue: per time step it
// gathers the non-zero inputs of each synaptic layer and performs exactly
// one accumulate per (spike, fan-out synapse) — so its operation count IS
// the paper's AC count, and its runtime scales with spiking activity rather
// than layer size.
//
// It consumes a converted SnnNetwork (inference only; training stays in the
// dense engine) and produces bit-identical logits up to float addition
// order. Equivalence is property-tested in tests/snn/event_driven_test.cpp;
// bench_kernels reports the dense-vs-event throughput crossover as a
// function of activity.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/snn/snn_network.h"

namespace ullsnn::snn {

struct EventStats {
  std::int64_t events_processed = 0;   // input spikes consumed
  std::int64_t accumulate_ops = 0;     // synaptic ACs actually executed
  std::int64_t dense_equivalent_ops = 0;  // what the dense engine would do
};

class EventDrivenEngine {
 public:
  /// Wraps (and keeps a reference to) a built network; the network's layer
  /// structure and weights are read through the SpikingLayer interface.
  explicit EventDrivenEngine(SnnNetwork& net);

  /// Accumulated logits over the network's T steps for an analog batch,
  /// computed event-by-event. Matches SnnNetwork::forward(images, false).
  Tensor forward(const Tensor& images);

  const EventStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  // Sparse scatter of one layer's input spikes through a conv synapse.
  Tensor conv_scatter(const SynapticConv& synapse, const Tensor& input,
                      bool count_dense);
  Tensor linear_scatter(const SynapticLinear& synapse, const Tensor& input,
                        bool count_dense);

  SnnNetwork* net_;
  EventStats stats_;
};

}  // namespace ullsnn::snn
