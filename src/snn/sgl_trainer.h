// Surrogate-gradient learning (SGL) in the SNN domain — stage (c) of the
// paper's pipeline: after conversion, jointly fine-tune weights, thresholds,
// and leaks [7] with BPTT over the T time steps, starting from a small
// learning rate (1e-4 in Sec. IV-A) with the same step-decay schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/data/augment.h"
#include "src/data/dataset.h"
#include "src/dnn/optimizer.h"
#include "src/dnn/trainer.h"
#include "src/robust/checkpoint.h"
#include "src/robust/health.h"
#include "src/snn/snn_network.h"

namespace ullsnn::snn {

struct SglConfig {
  std::int64_t epochs = 10;
  std::int64_t batch_size = 32;
  float lr = 1e-4F;
  float momentum = 0.9F;
  float weight_decay = 0.0F;  // fine-tuning: decay off by default
  /// Global L2 gradient-norm clip. BPTT through the spike discontinuities
  /// occasionally produces outlier batches whose unclipped step destroys the
  /// converted initialization; 0 disables.
  float grad_clip_norm = 5.0F;
  bool augment = true;
  std::uint64_t seed = 11;
  bool verbose = false;
  /// Per-epoch numeric health guard; in the SGL stage it also scans the
  /// membrane potentials left by the last batch. kOff by default.
  robust::GuardConfig guard;
};

class SglTrainer {
 public:
  SglTrainer(SnnNetwork& net, SglConfig config);

  dnn::EpochStats train_epoch(const data::LabeledImages& train, std::int64_t epoch);
  /// Same resume/guard semantics as DnnTrainer::fit (see dnn/trainer.h).
  std::vector<dnn::EpochStats> fit(const data::LabeledImages& train,
                                   const data::LabeledImages* test = nullptr,
                                   robust::TrainCheckpointer* checkpointer = nullptr);
  double evaluate(const data::LabeledImages& dataset);

  SnnNetwork& network() { return *net_; }

  /// Invoked at the top of every fit() epoch with the epoch index. Test and
  /// fault-injection hook: lets a harness perturb state mid-run.
  void set_epoch_hook(std::function<void(std::int64_t)> hook) {
    epoch_hook_ = std::move(hook);
  }

 private:
  void clip_gradients();
  void clamp_neuron_params();

  SnnNetwork* net_;
  SglConfig config_;
  dnn::Sgd optimizer_;
  dnn::StepDecaySchedule schedule_;
  Rng rng_;
  float lr_scale_ = 1.0F;  // health-guard backoff, applied on top of the schedule
  std::function<void(std::int64_t)> epoch_hook_;
};

}  // namespace ullsnn::snn
