// Surrogate-gradient learning (SGL) in the SNN domain — stage (c) of the
// paper's pipeline: after conversion, jointly fine-tune weights, thresholds,
// and leaks [7] with BPTT over the T time steps, starting from a small
// learning rate (1e-4 in Sec. IV-A) with the same step-decay schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "src/data/augment.h"
#include "src/data/dataset.h"
#include "src/dnn/optimizer.h"
#include "src/dnn/trainer.h"
#include "src/snn/snn_network.h"

namespace ullsnn::snn {

struct SglConfig {
  std::int64_t epochs = 10;
  std::int64_t batch_size = 32;
  float lr = 1e-4F;
  float momentum = 0.9F;
  float weight_decay = 0.0F;  // fine-tuning: decay off by default
  /// Global L2 gradient-norm clip. BPTT through the spike discontinuities
  /// occasionally produces outlier batches whose unclipped step destroys the
  /// converted initialization; 0 disables.
  float grad_clip_norm = 5.0F;
  bool augment = true;
  std::uint64_t seed = 11;
  bool verbose = false;
};

class SglTrainer {
 public:
  SglTrainer(SnnNetwork& net, SglConfig config);

  dnn::EpochStats train_epoch(const data::LabeledImages& train, std::int64_t epoch);
  std::vector<dnn::EpochStats> fit(const data::LabeledImages& train,
                                   const data::LabeledImages* test = nullptr);
  double evaluate(const data::LabeledImages& dataset);

  SnnNetwork& network() { return *net_; }

 private:
  void clip_gradients();
  void clamp_neuron_params();

  SnnNetwork* net_;
  SglConfig config_;
  dnn::Sgd optimizer_;
  dnn::StepDecaySchedule schedule_;
  Rng rng_;
};

}  // namespace ullsnn::snn
