// SnnNetwork: temporal orchestration of a spiking layer chain.
//
// Forward (direct input encoding, Sec. I): the analog image is presented to
// the first layer at every step t = 0..T-1; the final layer is a neuron-free
// SpikingLinear whose per-step currents are summed into the logits (output
// accumulation — the standard readout for converted/direct-encoded SNNs).
//
// Backward (SGL): logits = sum_t out_t, so each step receives the same
// d(loss)/d(logits); the network sweeps t from T-1 down to 0 calling each
// layer's step_backward in reverse chain order (full BPTT).
//
// State-isolation contract (serving depends on this): every forward() call
// re-initializes all per-sequence runtime state — membranes, BPTT caches,
// pooling argmax, dropout masks — via begin_sequence before the first time
// step, so no membrane charge, cached input, or fault-injected corruption
// from a previous call can leak into the next one. The ONLY state that
// persists across calls is (a) trainable parameters, (b) accumulated
// activity counters (reset_stats), and (c) the encoder and dropout RNG
// stream positions. Direct encoding draws nothing from the encoder stream,
// so for an inference-mode direct-encoded network two identical inputs
// produce bitwise-identical logits regardless of what ran in between
// (regression-tested in snn_network_test.cpp). For Poisson encoding, call
// reset_state() to rewind the encoder stream and restore that guarantee.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/snn/encoding.h"
#include "src/snn/spiking_layers.h"

namespace ullsnn::snn {

class SnnNetwork;

/// Per-layer, per-step observation interface for runtime telemetry
/// (obs::SnnRuntimeProbe). The network invokes the callbacks during
/// forward(); a null observer (the default) costs one pointer check.
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_sequence_begin(SnnNetwork& net, const Shape& input_shape,
                                 std::int64_t time_steps, bool train) = 0;
  /// After layer `layer_index` produced `output` for step `t`.
  virtual void on_layer_step(SnnNetwork& net, std::int64_t layer_index,
                             const Tensor& output, std::int64_t t) = 0;
  virtual void on_sequence_end(SnnNetwork& net) = 0;
};

class SnnNetwork {
 public:
  explicit SnnNetwork(std::int64_t time_steps);

  void append(SpikingLayerPtr layer);

  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    append(std::move(layer));
    return ref;
  }

  std::int64_t size() const { return static_cast<std::int64_t>(layers_.size()); }
  bool empty() const { return layers_.empty(); }
  SpikingLayer& layer(std::int64_t i) { return *layers_[static_cast<std::size_t>(i)]; }
  const SpikingLayer& layer(std::int64_t i) const {
    return *layers_[static_cast<std::size_t>(i)];
  }

  std::int64_t time_steps() const { return time_steps_; }
  void set_time_steps(std::int64_t t);

  Encoding encoding() const { return encoding_; }
  void set_encoding(Encoding encoding, std::uint64_t seed = 99);
  std::uint64_t encoder_seed() const { return encoder_seed_; }

  /// Inference precision, propagated to every weighted layer (current and
  /// future appends). int8 affects only the eval-mode dense forward; training
  /// and sparse-dispatched samples stay fp32 (see docs/performance.md).
  Precision precision() const { return precision_; }
  void set_precision(Precision precision);

  /// Shared RNG for SpikingDropout layers built into this network (the
  /// network outlives its layers' Rng* references by construction).
  Rng& dropout_rng() { return dropout_rng_; }
  void seed_dropout(std::uint64_t seed) { dropout_rng_ = Rng(seed); }

  /// Called after every completed time step of forward() with the step index.
  /// Used by robust::FaultInjector to perturb membrane state mid-sequence;
  /// an empty hook (the default) costs nothing.
  using StepHook = std::function<void(SnnNetwork&, std::int64_t)>;
  void set_step_hook(StepHook hook) { step_hook_ = std::move(hook); }
  void clear_step_hook() { step_hook_ = nullptr; }
  /// Current hook (may be null). Lets an instrumenting caller — e.g. the
  /// serving engine's per-step timer — chain an existing hook instead of
  /// clobbering a fault injector installed by a chaos test.
  const StepHook& step_hook() const { return step_hook_; }

  /// Attach a runtime telemetry observer (not owned; must outlive the network
  /// or detach first). Only one observer at a time; null detaches.
  void set_observer(StepObserver* observer) { observer_ = observer; }
  StepObserver* observer() const { return observer_; }

  /// Hard-reset all per-sequence runtime state on every layer (membranes,
  /// BPTT caches, pooling argmax, dropout masks) and rewind the encoder RNG
  /// to its seed. After this call the next forward() is a pure function of
  /// (parameters, input, T): bitwise-identical inputs give bitwise-identical
  /// logits under ANY encoding, regardless of what ran before. forward()
  /// already re-initializes the per-sequence state by itself (see the
  /// contract above); reset_state() additionally pins the RNG streams and
  /// frees the retained buffers, which is what a serving engine wants
  /// between unrelated requests.
  void reset_state();

  /// Accumulated logits over all T steps for a batch of analog images.
  Tensor forward(const Tensor& images, bool train);

  /// BPTT given d(loss)/d(logits). Requires a preceding forward(train=true).
  void backward(const Tensor& grad_logits);

  std::vector<Param*> params();

  /// Drop activity counters on every layer.
  void reset_stats();

  /// Total spikes emitted across all layers since the last reset_stats().
  std::int64_t total_spikes() const;

  /// Per-sample average spike count per neuron, layer by layer (the Fig. 4(a)
  /// metric), given how many input samples contributed to the counters.
  std::vector<double> spikes_per_neuron(std::int64_t samples) const;

 private:
  std::vector<SpikingLayerPtr> layers_;
  std::int64_t time_steps_;
  Precision precision_ = Precision::kFp32;
  Encoding encoding_ = Encoding::kDirect;
  std::uint64_t encoder_seed_ = 99;
  Rng encoder_rng_{99};
  Rng dropout_rng_{123};
  Shape cached_input_shape_;
  StepHook step_hook_;
  StepObserver* observer_ = nullptr;
};

/// Top-1 accuracy of an SNN on a labeled set (inference mode).
double evaluate_snn(SnnNetwork& net, const data::LabeledImages& dataset,
                    std::int64_t batch_size = 64);

}  // namespace ullsnn::snn
