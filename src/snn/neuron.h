// Integrate-and-Fire neuron dynamics (paper Eqs. 2-4, 8) with
// backpropagation-through-time support.
//
// Forward, per time step t:
//   U_temp(t) = leak * U(t-1) + I(t)                    (Eq. 2)
//   S(t)      = beta * V_th   if U_temp(t) > V_th       (Eq. 3 with Eq. 8's
//             = 0             otherwise                  beta output scaling)
//   U(t)      = U_temp(t) - V_th * [spiked]             (Eq. 4, soft reset)
//
// Note the soft reset subtracts V_th, NOT beta*V_th: beta only rescales the
// y-axis of the effective activation staircase (Fig. 1(b)); firing rates are
// governed by the threshold alone.
//
// Backward (SGL): the discontinuous spike uses the paper's boxcar surrogate
// dS/dU_temp ~= 1 for U_temp in [0, 2*V_th], else 0 (Sec. III-B). The reset
// path is detached (standard practice, keeps BPTT stable). The threshold and
// leak are trainable (DIET-SNN-style joint optimization [7]):
//   dL/dleak += sum_t gUtemp(t) * U(t-1)                 (exact)
//   dL/dV_th += sum_t gS(t) * (beta*[spiked] - surr(t))  (amplitude + shift)
// Both scalar gradients are normalized by the per-sample neuron count so a
// learning rate shared with the weights stays usable at any layer width.
#pragma once

#include <cstdint>
#include <vector>

#include "src/dnn/module.h"
#include "src/tensor/tensor.h"

namespace ullsnn::snn {

/// Post-spike membrane handling. Soft reset (subtract V_th, Eq. 4) preserves
/// the surplus charge and is what makes rate coding track clip() exactly;
/// hard reset (to zero) discards it — several early conversion works use it,
/// and it is exposed for the ablation.
enum class ResetMode { kSubtract, kZero };

/// True iff the soft-reset input-reconstruction identity
///   sum_t I(t) = U(T) - U(0) + V_th * n_spikes
/// holds for a neuron with the given dynamics. The identity requires pure IF
/// integration (leak == 1) with subtractive reset; obs::SnnRuntimeProbe's
/// live Delta_{alpha,beta} estimate and verify/'s V003 rule both key off it.
inline bool delta_identity_valid(float leak, ResetMode reset) {
  return leak == 1.0F && reset == ResetMode::kSubtract;
}

struct IfConfig {
  float v_threshold = 1.0F;
  float leak = 1.0F;       // lambda; 1.0 => IF, <1 => LIF
  float beta = 1.0F;       // output spike amplitude scale (Eq. 8)
  /// Initial membrane charge as a fraction of V_th. The Deng-style bias
  /// shift delta = V_th/(2T) on the average pre-activation equals a one-off
  /// initial charge of T*delta = V_th/2, i.e. fraction 0.5. The paper's own
  /// method removes the bias (fraction 0, Sec. III-B).
  float initial_membrane_fraction = 0.0F;
  ResetMode reset = ResetMode::kSubtract;
  bool train_threshold = true;
  bool train_leak = true;
};

class IfNeuron {
 public:
  explicit IfNeuron(const IfConfig& config);

  /// Reset membrane state (and caches when training) for a new input
  /// sequence of the given activation shape.
  void begin_sequence(const Shape& shape, std::int64_t time_steps, bool train);

  /// Drop all runtime state (membrane, BPTT caches, carried gradient)
  /// without needing a shape. Part of the SnnNetwork::reset_state()
  /// isolation contract; parameters (threshold, leak) are untouched.
  void clear_state();

  /// Advance one step: integrate `current`, emit spikes (0 or beta*V_th).
  /// `t` must advance 0, 1, ..., T-1.
  Tensor step_forward(const Tensor& current, std::int64_t t, bool train);

  /// Must be called once before the reverse-time step_backward sweep.
  void begin_backward();

  /// Gradient w.r.t. the input current of step `t`, given gradient w.r.t.
  /// this step's spikes. Must be called with t = T-1, ..., 0.
  Tensor step_backward(const Tensor& grad_spikes, std::int64_t t);

  std::vector<dnn::Param*> params();

  float threshold() const { return threshold_.value[0]; }
  void set_threshold(float v);
  float leak() const { return leak_.value[0]; }
  void set_leak(float v) { leak_.value[0] = v; }
  float beta() const { return beta_; }
  void set_beta(float b) { beta_ = b; }
  float initial_membrane_fraction() const { return init_fraction_; }
  ResetMode reset_mode() const { return reset_; }
  bool train_threshold() const { return train_threshold_; }
  bool train_leak() const { return train_leak_; }

  /// This neuron's dynamics re-packed as a config (used by the artifact
  /// describer to round-trip a live network into a self-contained file).
  IfConfig config() const {
    IfConfig c;
    c.v_threshold = threshold();
    c.leak = leak();
    c.beta = beta_;
    c.initial_membrane_fraction = init_fraction_;
    c.reset = reset_;
    c.train_threshold = train_threshold_;
    c.train_leak = train_leak_;
    return c;
  }

  /// Spikes emitted since reset_stats() (summed over steps and batch).
  std::int64_t spikes_emitted() const { return spikes_emitted_; }
  /// Per-sample neuron count of the last sequence (feature-map size,
  /// excluding the batch dimension).
  std::int64_t neurons() const { return neurons_; }
  void reset_stats() { spikes_emitted_ = 0; }

  const Tensor& membrane() const { return membrane_; }
  /// Mutable membrane access for fault injection (robust::FaultInjector
  /// flips bits in U between time steps to model noisy neuromorphic
  /// substrates). Training code must not write through this.
  Tensor& membrane_mut() { return membrane_; }

 private:
  dnn::Param threshold_;  // [1]
  dnn::Param leak_;       // [1]
  float beta_;
  float init_fraction_;
  ResetMode reset_;
  bool train_threshold_;
  bool train_leak_;

  Tensor membrane_;
  // Per-step caches for BPTT (only populated when training).
  std::vector<Tensor> cached_utemp_;
  std::vector<Tensor> cached_prev_u_;
  Tensor grad_membrane_;  // dL/dU(t) carried backwards through time

  std::int64_t spikes_emitted_ = 0;
  std::int64_t neurons_ = 0;
};

}  // namespace ullsnn::snn
