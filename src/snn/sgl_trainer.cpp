#include "src/snn/sgl_trainer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/dnn/loss.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/timer.h"

namespace ullsnn::snn {

SglTrainer::SglTrainer(SnnNetwork& net, SglConfig config)
    : net_(&net),
      config_(config),
      optimizer_(net.params(),
                 dnn::SgdConfig{config.lr, config.momentum, config.weight_decay}),
      schedule_(config.lr, config.epochs),
      rng_(config.seed) {}

dnn::EpochStats SglTrainer::train_epoch(const data::LabeledImages& train,
                                        std::int64_t epoch) {
  ULLSNN_TRACE_SCOPE("sgl.train_epoch");
  Timer timer;
  optimizer_.set_lr(schedule_.lr_at(epoch) * lr_scale_);
  data::BatchIterator batches(train, config_.batch_size, rng_);
  const data::AugmentSpec aug;
  double loss_sum = 0.0;
  std::int64_t correct = 0;
  std::int64_t seen = 0;
  for (std::int64_t b = 0; b < batches.num_batches(); ++b) {
    data::Batch batch = batches.batch(b);
    if (config_.augment) data::augment_batch(batch, aug, rng_);
    optimizer_.zero_grad();
    const Tensor logits = net_->forward(batch.images, /*train=*/true);
    dnn::LossResult loss = dnn::softmax_cross_entropy(logits, batch.labels);
    net_->backward(loss.grad);
    clip_gradients();
    optimizer_.step();
    clamp_neuron_params();
    loss_sum += static_cast<double>(loss.loss) * static_cast<double>(batch.size());
    correct += loss.correct;
    seen += batch.size();
  }
  dnn::EpochStats stats;
  stats.epoch = epoch;
  stats.train_loss = static_cast<float>(loss_sum / static_cast<double>(seen));
  stats.train_accuracy = static_cast<double>(correct) / static_cast<double>(seen);
  stats.seconds = timer.seconds();
  return stats;
}

std::vector<dnn::EpochStats> SglTrainer::fit(const data::LabeledImages& train,
                                             const data::LabeledImages* test,
                                             robust::TrainCheckpointer* checkpointer) {
  robust::HealthMonitor monitor(config_.guard);
  std::vector<dnn::EpochStats> history;
  history.reserve(static_cast<std::size_t>(config_.epochs));
  std::int64_t start = 0;
  if (checkpointer != nullptr) {
    start = checkpointer->restore(net_->params(), optimizer_.velocity(), rng_);
    if (config_.verbose && start > 0) {
      obs::logf(obs::LogLevel::kInfo, "  [sgl] resuming from epoch %lld (%s)",
                static_cast<long long>(start), checkpointer->path().c_str());
    }
  }
  if (config_.guard.policy == robust::GuardPolicy::kRollback) {
    monitor.snapshot(net_->params(), optimizer_.velocity(), rng_);
  }
  for (std::int64_t e = start; e < config_.epochs;) {
    if (epoch_hook_) epoch_hook_(e);
    dnn::EpochStats stats = train_epoch(train, e);
    if (monitor.enabled()) {
      robust::HealthReport report = monitor.check(net_->params(), stats.train_loss);
      // BPTT-specific: the membrane potentials left by the last batch reveal
      // in-dynamics blowups that the weights alone may not show yet.
      for (std::int64_t i = 0; i < net_->size(); ++i) {
        if (IfNeuron* neuron = net_->layer(i).neuron_or_null()) {
          monitor.scan_tensor("layer" + std::to_string(i) + ".membrane",
                              neuron->membrane(), report);
        }
      }
      switch (monitor.decide(report)) {
        case robust::GuardAction::kAbort:
          throw std::runtime_error("SglTrainer: " + report.describe());
        case robust::GuardAction::kRetry:
          monitor.restore(net_->params(), optimizer_.velocity(), rng_);
          lr_scale_ = monitor.lr_scale();
          continue;  // replay the same epoch from the restored state
        case robust::GuardAction::kProceed:
          break;
      }
      if (config_.guard.policy == robust::GuardPolicy::kRollback) {
        monitor.snapshot(net_->params(), optimizer_.velocity(), rng_);
      }
    }
    if (test != nullptr) stats.test_accuracy = evaluate(*test);
    ULLSNN_COUNTER_ADD("sgl.epochs", 1);
    ULLSNN_GAUGE_SET("sgl.train_loss", stats.train_loss);
    ULLSNN_GAUGE_SET("sgl.train_accuracy", stats.train_accuracy);
    ULLSNN_HISTOGRAM_OBSERVE("sgl.epoch_seconds", stats.seconds);
    if (config_.verbose) {
      obs::logf(obs::LogLevel::kInfo,
                "  [sgl] epoch %3lld  loss %.4f  train %.4f  test %.4f  (%.1fs)",
                static_cast<long long>(stats.epoch), stats.train_loss,
                stats.train_accuracy, stats.test_accuracy, stats.seconds);
    }
    history.push_back(stats);
    if (checkpointer != nullptr) {
      checkpointer->save(e + 1, net_->params(), optimizer_.velocity(), rng_);
    }
    ++e;
  }
  return history;
}

double SglTrainer::evaluate(const data::LabeledImages& dataset) {
  return evaluate_snn(*net_, dataset, config_.batch_size);
}

void SglTrainer::clip_gradients() {
  if (config_.grad_clip_norm <= 0.0F) return;
  double sq = 0.0;
  for (dnn::Param* p : net_->params()) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      sq += static_cast<double>(p->grad[i]) * p->grad[i];
    }
  }
  const double norm = std::sqrt(sq);
  if (norm <= config_.grad_clip_norm) return;
  const float scale = config_.grad_clip_norm / static_cast<float>(norm);
  for (dnn::Param* p : net_->params()) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) p->grad[i] *= scale;
  }
}

void SglTrainer::clamp_neuron_params() {
  // Keep the neuron dynamics physical: thresholds strictly positive, leaks in
  // [0, 1]. SGD steps can momentarily push them outside, after which the
  // forward dynamics (and the surrogate support) would be meaningless.
  for (dnn::Param* p : net_->params()) {
    if (p->name == "if.threshold") {
      p->value[0] = std::max(p->value[0], 1e-3F);
    } else if (p->name == "if.leak") {
      p->value[0] = std::clamp(p->value[0], 0.0F, 1.0F);
    }
  }
}

}  // namespace ullsnn::snn
