// Input encodings for SNNs.
//
// kDirect (the paper's choice, Sec. I): the analog image drives the first
// convolution at every time step; only subsequent layers spike. Needs MACs in
// layer 1 but cuts required latency by an order of magnitude [7]-[9].
//
// kPoisson (rate coding, for the ablation): each pixel p in [0,1]-normalized
// magnitude emits a Bernoulli(|p|) spike per step carrying sign(p).
#pragma once

#include <cstdint>

#include "src/data/dataset.h"
#include "src/tensor/random.h"
#include "src/tensor/tensor.h"

namespace ullsnn::snn {

enum class Encoding { kDirect, kPoisson };

/// Produce the layer-1 drive for step t from the analog batch.
/// Direct encoding returns the images unchanged; Poisson draws fresh spikes.
Tensor encode_step(const Tensor& images, Encoding encoding, Rng& rng);

}  // namespace ullsnn::snn
