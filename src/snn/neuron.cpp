#include "src/snn/neuron.h"

#include <stdexcept>

#include "src/obs/trace.h"

namespace ullsnn::snn {

IfNeuron::IfNeuron(const IfConfig& config)
    : beta_(config.beta),
      init_fraction_(config.initial_membrane_fraction),
      reset_(config.reset),
      train_threshold_(config.train_threshold),
      train_leak_(config.train_leak) {
  if (config.v_threshold <= 0.0F) {
    throw std::invalid_argument("IfNeuron: threshold must be positive");
  }
  if (config.leak < 0.0F || config.leak > 1.0F) {
    throw std::invalid_argument("IfNeuron: leak must be in [0, 1]");
  }
  threshold_.name = "if.threshold";
  threshold_.value = Tensor({1}, config.v_threshold);
  threshold_.grad = Tensor({1});
  threshold_.decay = false;
  leak_.name = "if.leak";
  leak_.value = Tensor({1}, config.leak);
  leak_.grad = Tensor({1});
  leak_.decay = false;
}

void IfNeuron::set_threshold(float v) {
  if (v <= 0.0F) throw std::invalid_argument("IfNeuron: threshold must be positive");
  threshold_.value[0] = v;
}

void IfNeuron::begin_sequence(const Shape& shape, std::int64_t time_steps, bool train) {
  membrane_ = init_fraction_ != 0.0F
                  ? Tensor(shape, init_fraction_ * threshold_.value[0])
                  : Tensor(shape);
  neurons_ = shape.empty() || shape[0] == 0 ? 0 : membrane_.numel() / shape[0];
  cached_utemp_.clear();
  cached_prev_u_.clear();
  if (train) {
    cached_utemp_.resize(static_cast<std::size_t>(time_steps));
    cached_prev_u_.resize(static_cast<std::size_t>(time_steps));
  }
}

void IfNeuron::clear_state() {
  membrane_ = Tensor();
  grad_membrane_ = Tensor();
  cached_utemp_.clear();
  cached_prev_u_.clear();
}

Tensor IfNeuron::step_forward(const Tensor& current, std::int64_t t, bool train) {
  ULLSNN_TRACE_SCOPE("snn.if.step_forward");
  if (current.shape() != membrane_.shape()) {
    throw std::invalid_argument("IfNeuron: current shape " +
                                shape_to_string(current.shape()) +
                                " != membrane shape " +
                                shape_to_string(membrane_.shape()));
  }
  const float v_th = threshold_.value[0];
  const float lam = leak_.value[0];
  const float amplitude = beta_ * v_th;
  if (train) {
    if (t < 0 || static_cast<std::size_t>(t) >= cached_utemp_.size()) {
      throw std::out_of_range("IfNeuron::step_forward: step index out of range");
    }
    cached_prev_u_[static_cast<std::size_t>(t)] = membrane_;
    cached_utemp_[static_cast<std::size_t>(t)] = Tensor(current.shape());
  }
  Tensor spikes(current.shape());
  std::int64_t count = 0;
  for (std::int64_t i = 0; i < membrane_.numel(); ++i) {
    const float u_temp = lam * membrane_[i] + current[i];
    if (u_temp > v_th) {
      spikes[i] = amplitude;
      membrane_[i] = reset_ == ResetMode::kSubtract ? u_temp - v_th : 0.0F;
      ++count;
    } else {
      spikes[i] = 0.0F;
      membrane_[i] = u_temp;
    }
    if (train) cached_utemp_[static_cast<std::size_t>(t)][i] = u_temp;
  }
  spikes_emitted_ += count;
  return spikes;
}

void IfNeuron::begin_backward() {
  if (cached_utemp_.empty()) {
    throw std::logic_error("IfNeuron::begin_backward without a training forward pass");
  }
  grad_membrane_ = Tensor(membrane_.shape());
}

Tensor IfNeuron::step_backward(const Tensor& grad_spikes, std::int64_t t) {
  ULLSNN_TRACE_SCOPE("snn.if.step_backward");
  const Tensor& u_temp = cached_utemp_[static_cast<std::size_t>(t)];
  const Tensor& prev_u = cached_prev_u_[static_cast<std::size_t>(t)];
  const float v_th = threshold_.value[0];
  const float lam = leak_.value[0];
  Tensor grad_current(grad_spikes.shape());
  double g_threshold = 0.0;
  double g_leak = 0.0;
  for (std::int64_t i = 0; i < grad_spikes.numel(); ++i) {
    const float u = u_temp[i];
    // Boxcar surrogate around the threshold: supported on [0, 2*V_th].
    const float surr = (u >= 0.0F && u <= 2.0F * v_th) ? 1.0F : 0.0F;
    const bool spiked = u > v_th;
    const float g_s = grad_spikes[i];
    // dL/dU_temp = gS * dS/dU_temp + gU (reset path detached).
    const float g_utemp = g_s * surr + grad_membrane_[i];
    grad_current[i] = g_utemp;           // dU_temp/dI = 1
    grad_membrane_[i] = lam * g_utemp;   // carry to U(t-1)
    if (train_threshold_) {
      g_threshold += static_cast<double>(g_s) * ((spiked ? beta_ : 0.0F) - surr);
    }
    if (train_leak_) {
      g_leak += static_cast<double>(g_utemp) * prev_u[i];
    }
  }
  // Normalize the scalar-parameter gradients by the per-sample neuron count:
  // the raw sums scale with the feature-map size, which would otherwise make
  // a shared learning rate unusable across layers of different widths.
  const auto denom = static_cast<double>(std::max<std::int64_t>(neurons_, 1));
  if (train_threshold_) {
    threshold_.grad[0] += static_cast<float>(g_threshold / denom);
  }
  if (train_leak_) leak_.grad[0] += static_cast<float>(g_leak / denom);
  return grad_current;
}

std::vector<dnn::Param*> IfNeuron::params() {
  std::vector<dnn::Param*> ps;
  if (train_threshold_) ps.push_back(&threshold_);
  if (train_leak_) ps.push_back(&leak_);
  return ps;
}

}  // namespace ullsnn::snn
