#include "src/snn/encoding.h"

#include <algorithm>
#include <cmath>

namespace ullsnn::snn {

Tensor encode_step(const Tensor& images, Encoding encoding, Rng& rng) {
  if (encoding == Encoding::kDirect) return images;
  // Poisson rate coding: P(spike) = |pixel| clipped to [0, 1], spike value
  // carries the pixel sign (standardized inputs are signed).
  Tensor spikes(images.shape());
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    const float p = std::min(std::abs(images[i]), 1.0F);
    if (rng.bernoulli(p)) spikes[i] = images[i] >= 0.0F ? 1.0F : -1.0F;
  }
  return spikes;
}

}  // namespace ullsnn::snn
