#include "src/snn/spiking_layers.h"

#include <stdexcept>

namespace ullsnn::snn {

namespace {
double nonzero_rate(std::int64_t nonzeros, std::int64_t elements) {
  return elements > 0 ? static_cast<double>(nonzeros) / static_cast<double>(elements)
                      : 0.0;
}
}  // namespace

// ---------------------------------------------------------------------------
// SynapticConv
// ---------------------------------------------------------------------------

SynapticConv::SynapticConv(Tensor weight, Conv2dSpec spec) : spec_(spec) {
  const Shape expected = {spec.out_channels, spec.in_channels, spec.kernel, spec.kernel};
  if (weight.shape() != expected) {
    throw std::invalid_argument("SynapticConv: weight shape " +
                                shape_to_string(weight.shape()) + " != " +
                                shape_to_string(expected));
  }
  weight_.name = "synaptic_conv.weight";
  weight_.value = std::move(weight);
  // Borrowed (artifact-shared) weights are inference-only until someone
  // trains them; defer the full-size grad allocation so replica spin-up
  // stays O(page-fault) instead of O(parameters).
  if (!weight_.value.borrowed()) weight_.grad = Tensor(weight_.value.shape());
}

void SynapticConv::begin_sequence(std::int64_t time_steps, bool train) {
  cached_inputs_.clear();
  if (train) cached_inputs_.resize(static_cast<std::size_t>(time_steps));
  wt_cache_.clear();  // weights may have changed since the last sequence
  // Training is about to mutate the weights, so a derived int8 operand goes
  // stale; a pinned (artifact) one is authoritative and survives.
  if (train && !qweight_pinned_) qpacked_.clear();
}

void SynapticConv::set_precision(Precision precision) {
  precision_ = precision;
}

void SynapticConv::set_quantized_weight(const QuantizedWeight& qw) {
  const std::int64_t rows = weight_.value.dim(0);
  const std::int64_t cols = weight_.value.numel() / rows;
  if (qw.rows != rows || qw.cols != cols) {
    throw std::invalid_argument("SynapticConv: quantized weight is " +
                                std::to_string(qw.rows) + "x" + std::to_string(qw.cols) +
                                ", expected " + std::to_string(rows) + "x" +
                                std::to_string(cols));
  }
  qpacked_.pack(qw);
  qweight_pinned_ = true;
}

const QuantizedPackedB* SynapticConv::int8_operand(bool train) {
  if (train || precision_ != Precision::kInt8) return nullptr;
  if (qpacked_.empty()) {
    const std::int64_t rows = weight_.value.dim(0);
    qpacked_.pack(quantize_weight_per_row(weight_.value.data(), rows,
                                          weight_.value.numel() / rows));
  }
  return &qpacked_;
}

Tensor SynapticConv::forward(const Tensor& input, std::int64_t t, bool train) {
  Tensor out(output_shape(input.shape()));
  // Density dispatch (sparse spike kernel vs blocked GEMM); the dispatch scan
  // also produces the exact nonzero tally for the activity accounting.
  conv2d_forward_spiking(input, weight_.value, out, spec_,
                         kDefaultSpikeDensityThreshold, wt_cache_, stats_,
                         int8_operand(train));
  if (train) cached_inputs_[static_cast<std::size_t>(t)] = input;
  return out;
}

Tensor SynapticConv::backward(const Tensor& grad_current, std::int64_t t) {
  const Tensor& input = cached_inputs_.at(static_cast<std::size_t>(t));
  if (input.empty()) throw std::logic_error("SynapticConv::backward without forward");
  if (weight_.grad.empty()) {
    // First backward on artifact-borrowed weights: own them now so the
    // optimizer's per-element update never writes through the mapping.
    weight_.value.detach();
    weight_.grad = Tensor(weight_.value.shape());
  }
  Tensor grad_input(input.shape());
  conv2d_backward(input, weight_.value, grad_current, &grad_input, weight_.grad,
                  nullptr, spec_);
  return grad_input;
}

Shape SynapticConv::output_shape(const Shape& input) const {
  return {input[0], spec_.out_channels, spec_.out_extent(input[2]),
          spec_.out_extent(input[3])};
}

std::int64_t SynapticConv::macs(const Shape& input) const {
  const std::int64_t oh = spec_.out_extent(input[2]);
  const std::int64_t ow = spec_.out_extent(input[3]);
  return spec_.out_channels * oh * ow * spec_.in_channels * spec_.kernel * spec_.kernel;
}

// ---------------------------------------------------------------------------
// SynapticLinear
// ---------------------------------------------------------------------------

SynapticLinear::SynapticLinear(Tensor weight) {
  if (weight.rank() != 2) {
    throw std::invalid_argument("SynapticLinear: weight must be [out, in]");
  }
  weight_.name = "synaptic_linear.weight";
  weight_.value = std::move(weight);
  if (!weight_.value.borrowed()) weight_.grad = Tensor(weight_.value.shape());
}

void SynapticLinear::begin_sequence(std::int64_t time_steps, bool train) {
  cached_inputs_.clear();
  if (train) cached_inputs_.resize(static_cast<std::size_t>(time_steps));
  wt_cache_.clear();  // weights may have changed since the last sequence
  if (train && !qweight_pinned_) qpacked_.clear();  // see SynapticConv
}

void SynapticLinear::set_precision(Precision precision) {
  precision_ = precision;
}

void SynapticLinear::set_quantized_weight(const QuantizedWeight& qw) {
  if (qw.rows != out_features() || qw.cols != in_features()) {
    throw std::invalid_argument("SynapticLinear: quantized weight is " +
                                std::to_string(qw.rows) + "x" + std::to_string(qw.cols) +
                                ", expected " + std::to_string(out_features()) + "x" +
                                std::to_string(in_features()));
  }
  qpacked_.pack(qw);
  qweight_pinned_ = true;
}

const QuantizedPackedB* SynapticLinear::int8_operand(bool train) {
  if (train || precision_ != Precision::kInt8) return nullptr;
  if (qpacked_.empty()) {
    qpacked_.pack(quantize_weight_per_row(weight_.value.data(), out_features(),
                                          in_features()));
  }
  return &qpacked_;
}

Tensor SynapticLinear::forward(const Tensor& input, std::int64_t t, bool train) {
  if (input.rank() != 2 || input.dim(1) != in_features()) {
    throw std::invalid_argument("SynapticLinear: bad input shape " +
                                shape_to_string(input.shape()));
  }
  const std::int64_t n = input.dim(0);
  Tensor out({n, out_features()});
  linear_forward_spiking(input, weight_.value, out, kDefaultSpikeDensityThreshold,
                         wt_cache_, stats_, int8_operand(train));
  if (train) cached_inputs_[static_cast<std::size_t>(t)] = input;
  return out;
}

Tensor SynapticLinear::backward(const Tensor& grad_current, std::int64_t t) {
  const Tensor& input = cached_inputs_.at(static_cast<std::size_t>(t));
  if (input.empty()) throw std::logic_error("SynapticLinear::backward without forward");
  if (weight_.grad.empty()) {
    weight_.value.detach();
    weight_.grad = Tensor(weight_.value.shape());
  }
  const std::int64_t n = input.dim(0);
  matmul_at(grad_current.data(), input.data(), weight_.grad.data(), out_features(),
            n, in_features(), /*accumulate=*/true);
  Tensor grad_input({n, in_features()});
  matmul(grad_current.data(), weight_.value.data(), grad_input.data(), n,
         out_features(), in_features());
  return grad_input;
}

// ---------------------------------------------------------------------------
// SpikingConv2d
// ---------------------------------------------------------------------------

SpikingConv2d::SpikingConv2d(Tensor weight, Conv2dSpec spec,
                             const IfConfig& neuron_config)
    : synapse_(std::move(weight), spec), neuron_(neuron_config) {}

void SpikingConv2d::begin_sequence(const Shape& input_shape, std::int64_t time_steps,
                                   bool train) {
  synapse_.begin_sequence(time_steps, train);
  neuron_.begin_sequence(synapse_.output_shape(input_shape), time_steps, train);
}

Tensor SpikingConv2d::step_forward(const Tensor& input, std::int64_t t, bool train) {
  return neuron_.step_forward(synapse_.forward(input, t, train), t, train);
}

Tensor SpikingConv2d::step_backward(const Tensor& grad_output, std::int64_t t) {
  return synapse_.backward(neuron_.step_backward(grad_output, t), t);
}

std::vector<Param*> SpikingConv2d::params() {
  std::vector<Param*> ps = {&synapse_.weight()};
  for (Param* p : neuron_.params()) ps.push_back(p);
  return ps;
}

Shape SpikingConv2d::output_shape(const Shape& input) const {
  return synapse_.output_shape(input);
}

double SpikingConv2d::acs_estimate(const Shape& input, std::int64_t time_steps) const {
  return static_cast<double>(synapse_.macs(input)) *
         nonzero_rate(synapse_.input_nonzeros(), synapse_.input_elements()) *
         static_cast<double>(time_steps);
}

// ---------------------------------------------------------------------------
// SpikingLinear
// ---------------------------------------------------------------------------

SpikingLinear::SpikingLinear(Tensor weight, const IfConfig& neuron_config,
                             bool with_neuron)
    : synapse_(std::move(weight)) {
  if (with_neuron) neuron_ = std::make_unique<IfNeuron>(neuron_config);
}

void SpikingLinear::begin_sequence(const Shape& input_shape, std::int64_t time_steps,
                                   bool train) {
  synapse_.begin_sequence(time_steps, train);
  if (neuron_) {
    neuron_->begin_sequence({input_shape[0], synapse_.out_features()}, time_steps,
                            train);
  }
}

Tensor SpikingLinear::step_forward(const Tensor& input, std::int64_t t, bool train) {
  Tensor current = synapse_.forward(input, t, train);
  if (neuron_) return neuron_->step_forward(current, t, train);
  return current;
}

void SpikingLinear::begin_backward() {
  if (neuron_) neuron_->begin_backward();
}

Tensor SpikingLinear::step_backward(const Tensor& grad_output, std::int64_t t) {
  if (neuron_) return synapse_.backward(neuron_->step_backward(grad_output, t), t);
  return synapse_.backward(grad_output, t);
}

std::vector<Param*> SpikingLinear::params() {
  std::vector<Param*> ps = {&synapse_.weight()};
  if (neuron_) {
    for (Param* p : neuron_->params()) ps.push_back(p);
  }
  return ps;
}

Shape SpikingLinear::output_shape(const Shape& input) const {
  return {input[0], synapse_.out_features()};
}

void SpikingLinear::reset_stats() {
  synapse_.reset_stats();
  if (neuron_) neuron_->reset_stats();
}

double SpikingLinear::acs_estimate(const Shape& input, std::int64_t time_steps) const {
  (void)input;
  return static_cast<double>(synapse_.macs()) *
         nonzero_rate(synapse_.input_nonzeros(), synapse_.input_elements()) *
         static_cast<double>(time_steps);
}

// ---------------------------------------------------------------------------
// SpikingMaxPool
// ---------------------------------------------------------------------------

SpikingMaxPool::SpikingMaxPool(Pool2dSpec spec) : spec_(spec) {}

void SpikingMaxPool::begin_sequence(const Shape& input_shape, std::int64_t time_steps,
                                    bool train) {
  validate_pool_geometry(spec_, input_shape[2], input_shape[3]);
  input_shape_ = input_shape;
  argmax_per_step_.clear();
  if (train) argmax_per_step_.resize(static_cast<std::size_t>(time_steps));
}

Tensor SpikingMaxPool::step_forward(const Tensor& input, std::int64_t t, bool train) {
  Tensor out(output_shape(input.shape()));
  std::vector<std::int64_t> argmax;
  maxpool2d_forward(input, out, argmax, spec_);
  if (train) argmax_per_step_[static_cast<std::size_t>(t)] = std::move(argmax);
  return out;
}

Tensor SpikingMaxPool::step_backward(const Tensor& grad_output, std::int64_t t) {
  const auto& argmax = argmax_per_step_.at(static_cast<std::size_t>(t));
  if (argmax.empty()) throw std::logic_error("SpikingMaxPool::step_backward without forward");
  Tensor grad_input(input_shape_);
  maxpool2d_backward(grad_output, argmax, grad_input);
  return grad_input;
}

Shape SpikingMaxPool::output_shape(const Shape& input) const {
  return {input[0], input[1], spec_.out_extent(input[2]), spec_.out_extent(input[3])};
}

// ---------------------------------------------------------------------------
// SpikingAvgPool
// ---------------------------------------------------------------------------

SpikingAvgPool::SpikingAvgPool(Pool2dSpec spec) : spec_(spec) {}

void SpikingAvgPool::begin_sequence(const Shape& input_shape, std::int64_t time_steps,
                                    bool train) {
  (void)time_steps;
  (void)train;
  validate_pool_geometry(spec_, input_shape[2], input_shape[3]);
  input_shape_ = input_shape;
}

Tensor SpikingAvgPool::step_forward(const Tensor& input, std::int64_t t, bool train) {
  (void)t;
  (void)train;
  Tensor out(output_shape(input.shape()));
  avgpool2d_forward(input, out, spec_);
  return out;
}

Tensor SpikingAvgPool::step_backward(const Tensor& grad_output, std::int64_t t) {
  (void)t;
  Tensor grad_input(input_shape_);
  avgpool2d_backward(grad_output, grad_input, spec_);
  return grad_input;
}

Shape SpikingAvgPool::output_shape(const Shape& input) const {
  return {input[0], input[1], spec_.out_extent(input[2]), spec_.out_extent(input[3])};
}

// ---------------------------------------------------------------------------
// SpikingDropout
// ---------------------------------------------------------------------------

SpikingDropout::SpikingDropout(float drop_prob, Rng& rng)
    : drop_prob_(drop_prob), rng_(rng.split()) {
  if (drop_prob < 0.0F || drop_prob >= 1.0F) {
    throw std::invalid_argument("SpikingDropout: drop_prob must be in [0, 1)");
  }
}

void SpikingDropout::begin_sequence(const Shape& input_shape, std::int64_t time_steps,
                                    bool train) {
  (void)time_steps;
  active_ = train && drop_prob_ > 0.0F;
  if (!active_) return;
  mask_.resize(static_cast<std::size_t>(shape_numel(input_shape)));
  const float keep_scale = 1.0F / (1.0F - drop_prob_);
  for (auto& m : mask_) m = rng_.bernoulli(drop_prob_) ? 0.0F : keep_scale;
}

Tensor SpikingDropout::step_forward(const Tensor& input, std::int64_t t, bool train) {
  (void)t;
  (void)train;
  if (!active_) return input;
  if (mask_.size() != static_cast<std::size_t>(input.numel())) {
    throw std::logic_error("SpikingDropout: mask size mismatch");
  }
  Tensor out = input;
  for (std::int64_t i = 0; i < out.numel(); ++i) out[i] *= mask_[static_cast<std::size_t>(i)];
  return out;
}

Tensor SpikingDropout::step_backward(const Tensor& grad_output, std::int64_t t) {
  return step_forward(grad_output, t, /*train=*/false).reshape(grad_output.shape());
}

// ---------------------------------------------------------------------------
// SpikingFlatten
// ---------------------------------------------------------------------------

void SpikingFlatten::begin_sequence(const Shape& input_shape, std::int64_t time_steps,
                                    bool train) {
  (void)time_steps;
  (void)train;
  input_shape_ = input_shape;
}

Tensor SpikingFlatten::step_forward(const Tensor& input, std::int64_t t, bool train) {
  (void)t;
  (void)train;
  return input.reshape({input.dim(0), -1});
}

Tensor SpikingFlatten::step_backward(const Tensor& grad_output, std::int64_t t) {
  (void)t;
  return grad_output.reshape(input_shape_);
}

Shape SpikingFlatten::output_shape(const Shape& input) const {
  std::int64_t features = 1;
  for (std::size_t i = 1; i < input.size(); ++i) features *= input[i];
  return {input[0], features};
}

// ---------------------------------------------------------------------------
// SpikingResidualBlock
// ---------------------------------------------------------------------------

SpikingResidualBlock::SpikingResidualBlock(Tensor conv1_weight, Conv2dSpec conv1_spec,
                                           const IfConfig& neuron1,
                                           Tensor conv2_weight, Conv2dSpec conv2_spec,
                                           const IfConfig& neuron2,
                                           Tensor projection_weight,
                                           Conv2dSpec projection_spec)
    : conv1_(std::move(conv1_weight), conv1_spec),
      neuron1_(neuron1),
      conv2_(std::move(conv2_weight), conv2_spec),
      neuron2_(neuron2) {
  if (!projection_weight.empty()) {
    projection_ = std::make_unique<SynapticConv>(std::move(projection_weight),
                                                 projection_spec);
  }
}

void SpikingResidualBlock::begin_sequence(const Shape& input_shape,
                                          std::int64_t time_steps, bool train) {
  conv1_.begin_sequence(time_steps, train);
  const Shape mid = conv1_.output_shape(input_shape);
  neuron1_.begin_sequence(mid, time_steps, train);
  conv2_.begin_sequence(time_steps, train);
  if (projection_) projection_->begin_sequence(time_steps, train);
  neuron2_.begin_sequence(conv2_.output_shape(mid), time_steps, train);
}

Tensor SpikingResidualBlock::step_forward(const Tensor& input, std::int64_t t,
                                          bool train) {
  const Tensor s1 =
      neuron1_.step_forward(conv1_.forward(input, t, train), t, train);
  Tensor current = conv2_.forward(s1, t, train);
  if (projection_) {
    current += projection_->forward(input, t, train);
  } else {
    current += input;
  }
  return neuron2_.step_forward(current, t, train);
}

void SpikingResidualBlock::begin_backward() {
  neuron1_.begin_backward();
  neuron2_.begin_backward();
}

Tensor SpikingResidualBlock::step_backward(const Tensor& grad_output, std::int64_t t) {
  const Tensor g_current = neuron2_.step_backward(grad_output, t);
  Tensor g_in = conv1_.backward(neuron1_.step_backward(conv2_.backward(g_current, t), t), t);
  if (projection_) {
    g_in += projection_->backward(g_current, t);
  } else {
    g_in += g_current;
  }
  return g_in;
}

std::vector<Param*> SpikingResidualBlock::params() {
  std::vector<Param*> ps = {&conv1_.weight()};
  for (Param* p : neuron1_.params()) ps.push_back(p);
  ps.push_back(&conv2_.weight());
  if (projection_) ps.push_back(&projection_->weight());
  for (Param* p : neuron2_.params()) ps.push_back(p);
  return ps;
}

Shape SpikingResidualBlock::output_shape(const Shape& input) const {
  return conv2_.output_shape(conv1_.output_shape(input));
}

std::int64_t SpikingResidualBlock::macs(const Shape& input) const {
  const Shape mid = conv1_.output_shape(input);
  std::int64_t total = conv1_.macs(input) + conv2_.macs(mid);
  if (projection_) total += projection_->macs(input);
  return total;
}

double SpikingResidualBlock::acs_estimate(const Shape& input,
                                          std::int64_t time_steps) const {
  const Shape mid = conv1_.output_shape(input);
  const auto t = static_cast<double>(time_steps);
  double acs = static_cast<double>(conv1_.macs(input)) *
               nonzero_rate(conv1_.input_nonzeros(), conv1_.input_elements()) * t;
  acs += static_cast<double>(conv2_.macs(mid)) *
         nonzero_rate(conv2_.input_nonzeros(), conv2_.input_elements()) * t;
  if (projection_) {
    acs += static_cast<double>(projection_->macs(input)) *
           nonzero_rate(projection_->input_nonzeros(), projection_->input_elements()) * t;
  }
  return acs;
}

void SpikingResidualBlock::reset_stats() {
  conv1_.reset_stats();
  neuron1_.reset_stats();
  conv2_.reset_stats();
  if (projection_) projection_->reset_stats();
  neuron2_.reset_stats();
}

}  // namespace ullsnn::snn
