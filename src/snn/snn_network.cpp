#include "src/snn/snn_network.h"

#include <stdexcept>

#include "src/dnn/loss.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ullsnn::snn {

SnnNetwork::SnnNetwork(std::int64_t time_steps) : time_steps_(time_steps) {
  if (time_steps <= 0) throw std::invalid_argument("SnnNetwork: time_steps must be positive");
}

void SnnNetwork::append(SpikingLayerPtr layer) {
  layer->set_precision(precision_);
  layers_.push_back(std::move(layer));
}

void SnnNetwork::set_precision(Precision precision) {
  precision_ = precision;
  for (auto& layer : layers_) layer->set_precision(precision);
}

void SnnNetwork::set_time_steps(std::int64_t t) {
  if (t <= 0) throw std::invalid_argument("SnnNetwork: time_steps must be positive");
  time_steps_ = t;
}

void SnnNetwork::set_encoding(Encoding encoding, std::uint64_t seed) {
  encoding_ = encoding;
  encoder_seed_ = seed;
  encoder_rng_ = Rng(seed);
}

void SnnNetwork::reset_state() {
  for (auto& layer : layers_) layer->reset_runtime_state();
  encoder_rng_ = Rng(encoder_seed_);
  cached_input_shape_ = Shape{};
}

Tensor SnnNetwork::forward(const Tensor& images, bool train) {
  if (layers_.empty()) throw std::logic_error("SnnNetwork::forward: empty network");
  ULLSNN_TRACE_SCOPE("snn.forward");
  ULLSNN_COUNTER_ADD("snn.forward.sequences", 1);
  cached_input_shape_ = images.shape();
  Shape shape = images.shape();
  for (auto& layer : layers_) {
    layer->begin_sequence(shape, time_steps_, train);
    shape = layer->output_shape(shape);
  }
  if (observer_ != nullptr) {
    observer_->on_sequence_begin(*this, images.shape(), time_steps_, train);
  }
  Tensor logits(shape);
  for (std::int64_t t = 0; t < time_steps_; ++t) {
    Tensor x = encode_step(images, encoding_, encoder_rng_);
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      x = layers_[i]->step_forward(x, t, train);
      if (observer_ != nullptr) {
        observer_->on_layer_step(*this, static_cast<std::int64_t>(i), x, t);
      }
    }
    logits += x;
    if (step_hook_) step_hook_(*this, t);
  }
  if (observer_ != nullptr) observer_->on_sequence_end(*this);
  return logits;
}

void SnnNetwork::backward(const Tensor& grad_logits) {
  ULLSNN_TRACE_SCOPE("snn.backward");
  for (auto& layer : layers_) layer->begin_backward();
  for (std::int64_t t = time_steps_ - 1; t >= 0; --t) {
    Tensor g = grad_logits;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      g = (*it)->step_backward(g, t);
    }
  }
}

std::vector<Param*> SnnNetwork::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) all.push_back(p);
  }
  return all;
}

void SnnNetwork::reset_stats() {
  for (auto& layer : layers_) layer->reset_stats();
}

std::int64_t SnnNetwork::total_spikes() const {
  std::int64_t total = 0;
  for (const auto& layer : layers_) total += layer->spikes_emitted();
  return total;
}

std::vector<double> SnnNetwork::spikes_per_neuron(std::int64_t samples) const {
  if (samples <= 0) throw std::invalid_argument("spikes_per_neuron: samples must be positive");
  std::vector<double> out;
  for (const auto& layer : layers_) {
    const std::int64_t neurons = layer->neurons();  // per sample
    if (neurons == 0) continue;  // weightless / readout layers
    // spikes_emitted sums over batch and steps; dividing by (samples x
    // per-sample neurons) yields the paper's per-image average spike count.
    out.push_back(static_cast<double>(layer->spikes_emitted()) /
                  (static_cast<double>(samples) * static_cast<double>(neurons)));
  }
  return out;
}

double evaluate_snn(SnnNetwork& net, const data::LabeledImages& dataset,
                    std::int64_t batch_size) {
  Rng rng(0);
  data::BatchIterator batches(dataset, batch_size, rng, /*shuffle_each_epoch=*/false);
  std::int64_t correct = 0;
  for (std::int64_t b = 0; b < batches.num_batches(); ++b) {
    const data::Batch batch = batches.batch(b);
    const Tensor logits = net.forward(batch.images, /*train=*/false);
    correct += static_cast<std::int64_t>(
        dnn::accuracy(logits, batch.labels) * static_cast<double>(batch.size()) + 0.5);
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace ullsnn::snn
