// Spiking layer zoo. Layers process one time step at a time under an
// explicit temporal protocol driven by SnnNetwork:
//
//   begin_sequence(shape, T, train)          once per batch
//   step_forward(x, t, train)                t = 0 .. T-1
//   begin_backward()                         once, training only
//   step_backward(g, t)                      t = T-1 .. 0   (BPTT)
//
// Synaptic weight ops (conv / linear) are split from the IF dynamics so that
// residual blocks can sum currents into a shared post-neuron, exactly like
// the DNN residual join converts (DESIGN.md).
//
// Synaptic weight ops route through the sparsity-aware kernels in
// tensor/ops.h: each time step's input density decides between the dense
// blocked GEMM and the row-compressed spike kernel, and the exact nonzero
// tally that dispatch scan produces feeds the Sec. VI spiking-activity /
// FLOPs / energy accounting — there is no separate counting pass. IF neurons
// count emitted spikes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/dnn/module.h"
#include "src/snn/neuron.h"
#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace ullsnn::snn {

using dnn::Param;

// ---------------------------------------------------------------------------
// Synaptic ops: weights only, no membrane dynamics.
// ---------------------------------------------------------------------------

class SynapticConv {
 public:
  SynapticConv(Tensor weight, Conv2dSpec spec);

  void begin_sequence(std::int64_t time_steps, bool train);
  Tensor forward(const Tensor& input, std::int64_t t, bool train);
  /// Gradient w.r.t. the step-t input; accumulates the weight gradient.
  Tensor backward(const Tensor& grad_current, std::int64_t t);

  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  const Conv2dSpec& spec() const { return spec_; }
  Shape output_shape(const Shape& input) const;
  std::int64_t macs(const Shape& input) const;

  std::int64_t input_nonzeros() const { return stats_.nonzeros; }
  std::int64_t input_elements() const { return stats_.elements; }
  const SpikeKernelStats& kernel_stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  /// Drop cached inputs and the transposed-weight cache (isolation contract).
  /// A pinned (artifact-installed) quantized weight is parameter-like and
  /// survives; a derived one is a cache and is dropped.
  void clear_runtime_state() {
    cached_inputs_.clear();
    wt_cache_.clear();
    if (!qweight_pinned_) qpacked_.clear();
  }

  /// Inference precision: int8 applies to the eval-mode dense forward only
  /// (training steps and sparse samples stay fp32). Without a pinned weight
  /// the int8 operand is derived from the fp32 weight lazily and re-derived
  /// after any training sequence.
  void set_precision(Precision precision);
  Precision precision() const { return precision_; }
  /// Install pre-quantized weights (from an artifact); pins the operand so it
  /// is never re-derived from the fp32 weight. Throws on shape mismatch.
  void set_quantized_weight(const QuantizedWeight& qw);

 private:
  const QuantizedPackedB* int8_operand(bool train);

  Param weight_;
  Conv2dSpec spec_;
  std::vector<Tensor> cached_inputs_;
  // Transposed-weight cache for the spiking kernels; invalidated each
  // begin_sequence (weights only change between sequences).
  std::vector<float> wt_cache_;
  SpikeKernelStats stats_;
  Precision precision_ = Precision::kFp32;
  QuantizedPackedB qpacked_;
  bool qweight_pinned_ = false;
};

class SynapticLinear {
 public:
  SynapticLinear(Tensor weight);  // weight [out, in]

  void begin_sequence(std::int64_t time_steps, bool train);
  Tensor forward(const Tensor& input, std::int64_t t, bool train);
  Tensor backward(const Tensor& grad_current, std::int64_t t);

  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  std::int64_t in_features() const { return weight_.value.dim(1); }
  std::int64_t out_features() const { return weight_.value.dim(0); }
  std::int64_t macs() const { return in_features() * out_features(); }

  std::int64_t input_nonzeros() const { return stats_.nonzeros; }
  std::int64_t input_elements() const { return stats_.elements; }
  const SpikeKernelStats& kernel_stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  /// Drop cached inputs and the transposed-weight cache (isolation contract).
  /// Same pinned-vs-derived quantized-weight rule as SynapticConv.
  void clear_runtime_state() {
    cached_inputs_.clear();
    wt_cache_.clear();
    if (!qweight_pinned_) qpacked_.clear();
  }

  /// Same int8 contract as SynapticConv.
  void set_precision(Precision precision);
  Precision precision() const { return precision_; }
  void set_quantized_weight(const QuantizedWeight& qw);

 private:
  const QuantizedPackedB* int8_operand(bool train);

  Param weight_;
  std::vector<Tensor> cached_inputs_;
  std::vector<float> wt_cache_;  // [in, out] W^T; invalidated per sequence
  SpikeKernelStats stats_;
  Precision precision_ = Precision::kFp32;
  QuantizedPackedB qpacked_;
  bool qweight_pinned_ = false;
};

// ---------------------------------------------------------------------------
// Spiking layer interface.
// ---------------------------------------------------------------------------

class SpikingLayer {
 public:
  virtual ~SpikingLayer() = default;
  SpikingLayer() = default;
  SpikingLayer(const SpikingLayer&) = delete;
  SpikingLayer& operator=(const SpikingLayer&) = delete;

  virtual void begin_sequence(const Shape& input_shape, std::int64_t time_steps,
                              bool train) = 0;
  virtual Tensor step_forward(const Tensor& input, std::int64_t t, bool train) = 0;
  virtual void begin_backward() {}
  virtual Tensor step_backward(const Tensor& grad_output, std::int64_t t) = 0;

  virtual std::vector<Param*> params() { return {}; }
  virtual Shape output_shape(const Shape& input) const = 0;
  virtual std::string name() const = 0;

  /// Dense per-step per-sample synaptic MAC count at this input shape
  /// (0 for weightless layers).
  virtual std::int64_t macs(const Shape& input) const { (void)input; return 0; }

  /// Measured accumulate-operation count per sample over `time_steps` steps:
  /// dense MACs scaled by the observed input non-zero rate (each input spike
  /// triggers exactly its fan-out's worth of ACs). Valid after inference has
  /// populated the activity counters; 0 for weightless layers.
  virtual double acs_estimate(const Shape& input, std::int64_t time_steps) const {
    (void)input;
    (void)time_steps;
    return 0.0;
  }

  // Activity statistics (accumulated across sequences until reset_stats()).
  virtual std::int64_t spikes_emitted() const { return 0; }
  virtual std::int64_t neurons() const { return 0; }
  virtual std::int64_t input_nonzeros() const { return 0; }
  virtual std::int64_t input_elements() const { return 0; }
  virtual void reset_stats() {}

  /// Drop ALL per-sequence runtime state (membranes, BPTT caches, cached
  /// inputs, pooling argmax, dropout masks) so the next begin_sequence /
  /// step_forward runs as if the layer were freshly constructed. Parameters
  /// and activity counters are untouched. Weightless shape-only layers have
  /// nothing to drop. Part of the SnnNetwork::reset_state() isolation
  /// contract (see snn_network.h).
  virtual void reset_runtime_state() {}

  /// Primary IF neuron of this layer, or nullptr for weight/shape-only layers.
  virtual IfNeuron* neuron_or_null() { return nullptr; }

  /// Inference precision for this layer's synapses (no-op on weightless
  /// layers). See SynapticConv::set_precision for the exact semantics.
  virtual void set_precision(Precision precision) { (void)precision; }
};

using SpikingLayerPtr = std::unique_ptr<SpikingLayer>;

// ---------------------------------------------------------------------------
// Concrete layers.
// ---------------------------------------------------------------------------

/// Convolution followed by IF dynamics. The first network layer receives the
/// analog image directly each step (direct encoding) — the math is identical,
/// only the energy accounting differs (MACs vs ACs; see energy/flops.h).
class SpikingConv2d final : public SpikingLayer {
 public:
  SpikingConv2d(Tensor weight, Conv2dSpec spec, const IfConfig& neuron_config);

  void begin_sequence(const Shape& input_shape, std::int64_t time_steps,
                      bool train) override;
  Tensor step_forward(const Tensor& input, std::int64_t t, bool train) override;
  void begin_backward() override { neuron_.begin_backward(); }
  Tensor step_backward(const Tensor& grad_output, std::int64_t t) override;
  std::vector<Param*> params() override;
  Shape output_shape(const Shape& input) const override;
  std::string name() const override { return "SpikingConv2d"; }
  std::int64_t macs(const Shape& input) const override { return synapse_.macs(input); }
  double acs_estimate(const Shape& input, std::int64_t time_steps) const override;
  std::int64_t spikes_emitted() const override { return neuron_.spikes_emitted(); }
  std::int64_t neurons() const override { return neuron_.neurons(); }
  std::int64_t input_nonzeros() const override { return synapse_.input_nonzeros(); }
  std::int64_t input_elements() const override { return synapse_.input_elements(); }
  void reset_stats() override { neuron_.reset_stats(); synapse_.reset_stats(); }
  void reset_runtime_state() override {
    neuron_.clear_state();
    synapse_.clear_runtime_state();
  }
  IfNeuron* neuron_or_null() override { return &neuron_; }
  void set_precision(Precision precision) override {
    synapse_.set_precision(precision);
  }

  SynapticConv& synapse() { return synapse_; }

 private:
  SynapticConv synapse_;
  IfNeuron neuron_;
};

/// Fully connected synapse, optionally followed by IF dynamics. The output
/// (classifier) layer uses with_neuron = false: its currents are accumulated
/// into logits across the T steps by SnnNetwork.
class SpikingLinear final : public SpikingLayer {
 public:
  SpikingLinear(Tensor weight, const IfConfig& neuron_config, bool with_neuron);

  void begin_sequence(const Shape& input_shape, std::int64_t time_steps,
                      bool train) override;
  Tensor step_forward(const Tensor& input, std::int64_t t, bool train) override;
  void begin_backward() override;
  Tensor step_backward(const Tensor& grad_output, std::int64_t t) override;
  std::vector<Param*> params() override;
  Shape output_shape(const Shape& input) const override;
  std::string name() const override { return "SpikingLinear"; }
  std::int64_t macs(const Shape& input) const override {
    (void)input;
    return synapse_.macs();
  }
  double acs_estimate(const Shape& input, std::int64_t time_steps) const override;
  std::int64_t spikes_emitted() const override {
    return neuron_ ? neuron_->spikes_emitted() : 0;
  }
  std::int64_t neurons() const override { return neuron_ ? neuron_->neurons() : 0; }
  std::int64_t input_nonzeros() const override { return synapse_.input_nonzeros(); }
  std::int64_t input_elements() const override { return synapse_.input_elements(); }
  void reset_stats() override;
  void reset_runtime_state() override {
    if (neuron_) neuron_->clear_state();
    synapse_.clear_runtime_state();
  }
  IfNeuron* neuron_or_null() override { return neuron_.get(); }
  void set_precision(Precision precision) override {
    synapse_.set_precision(precision);
  }

  SynapticLinear& synapse() { return synapse_; }
  bool has_neuron() const { return neuron_ != nullptr; }

 private:
  SynapticLinear synapse_;
  std::unique_ptr<IfNeuron> neuron_;
};

/// Max pooling over spike maps. On {0, amplitude} inputs the output stays in
/// {0, amplitude}, preserving the accumulate-only property (Sec. IV-A).
class SpikingMaxPool final : public SpikingLayer {
 public:
  explicit SpikingMaxPool(Pool2dSpec spec);

  void begin_sequence(const Shape& input_shape, std::int64_t time_steps,
                      bool train) override;
  Tensor step_forward(const Tensor& input, std::int64_t t, bool train) override;
  Tensor step_backward(const Tensor& grad_output, std::int64_t t) override;
  Shape output_shape(const Shape& input) const override;
  std::string name() const override { return "SpikingMaxPool"; }
  void reset_runtime_state() override { argmax_per_step_.clear(); }
  const Pool2dSpec& spec() const { return spec_; }

 private:
  Pool2dSpec spec_;
  Shape input_shape_;
  std::vector<std::vector<std::int64_t>> argmax_per_step_;
};

/// Average pooling (used by the ResNet head and the pooling ablation).
class SpikingAvgPool final : public SpikingLayer {
 public:
  explicit SpikingAvgPool(Pool2dSpec spec);

  void begin_sequence(const Shape& input_shape, std::int64_t time_steps,
                      bool train) override;
  Tensor step_forward(const Tensor& input, std::int64_t t, bool train) override;
  Tensor step_backward(const Tensor& grad_output, std::int64_t t) override;
  Shape output_shape(const Shape& input) const override;
  std::string name() const override { return "SpikingAvgPool"; }
  const Pool2dSpec& spec() const { return spec_; }

 private:
  Pool2dSpec spec_;
  Shape input_shape_;
};

/// Dropout with a mask held FIXED across the T steps of each sequence so the
/// temporal statistics of a sample are not scrambled (standard for SNN SGL).
class SpikingDropout final : public SpikingLayer {
 public:
  /// Forks an independent RNG stream from `rng` at construction; the layer
  /// owns its stream, so the argument need not outlive the layer.
  SpikingDropout(float drop_prob, Rng& rng);

  void begin_sequence(const Shape& input_shape, std::int64_t time_steps,
                      bool train) override;
  Tensor step_forward(const Tensor& input, std::int64_t t, bool train) override;
  Tensor step_backward(const Tensor& grad_output, std::int64_t t) override;
  Shape output_shape(const Shape& input) const override { return input; }
  std::string name() const override { return "SpikingDropout"; }
  /// Drops the mask. The layer's private RNG stream is NOT rewound: masks
  /// are only drawn in training mode, and rewinding would silently repeat
  /// dropout patterns across epochs.
  void reset_runtime_state() override { mask_.clear(); active_ = false; }

  float drop_prob() const { return drop_prob_; }

 private:
  float drop_prob_;
  Rng rng_;
  std::vector<float> mask_;
  bool active_ = false;
};

class SpikingFlatten final : public SpikingLayer {
 public:
  void begin_sequence(const Shape& input_shape, std::int64_t time_steps,
                      bool train) override;
  Tensor step_forward(const Tensor& input, std::int64_t t, bool train) override;
  Tensor step_backward(const Tensor& grad_output, std::int64_t t) override;
  Shape output_shape(const Shape& input) const override;
  std::string name() const override { return "SpikingFlatten"; }

 private:
  Shape input_shape_;
};

/// Spiking residual block mirroring dnn::ResidualBlock: the second conv's
/// current and the skip current sum into the post-join IF neuron's membrane.
class SpikingResidualBlock final : public SpikingLayer {
 public:
  SpikingResidualBlock(Tensor conv1_weight, Conv2dSpec conv1_spec,
                       const IfConfig& neuron1, Tensor conv2_weight,
                       Conv2dSpec conv2_spec, const IfConfig& neuron2,
                       Tensor projection_weight,  // empty => identity skip
                       Conv2dSpec projection_spec);

  void begin_sequence(const Shape& input_shape, std::int64_t time_steps,
                      bool train) override;
  Tensor step_forward(const Tensor& input, std::int64_t t, bool train) override;
  void begin_backward() override;
  Tensor step_backward(const Tensor& grad_output, std::int64_t t) override;
  std::vector<Param*> params() override;
  Shape output_shape(const Shape& input) const override;
  std::string name() const override { return "SpikingResidualBlock"; }
  std::int64_t macs(const Shape& input) const override;
  double acs_estimate(const Shape& input, std::int64_t time_steps) const override;
  std::int64_t spikes_emitted() const override {
    return neuron1_.spikes_emitted() + neuron2_.spikes_emitted();
  }
  std::int64_t neurons() const override { return neuron1_.neurons() + neuron2_.neurons(); }
  std::int64_t input_nonzeros() const override { return conv1_.input_nonzeros(); }
  std::int64_t input_elements() const override { return conv1_.input_elements(); }
  void reset_stats() override;
  void reset_runtime_state() override {
    neuron1_.clear_state();
    neuron2_.clear_state();
    conv1_.clear_runtime_state();
    conv2_.clear_runtime_state();
    if (projection_) projection_->clear_runtime_state();
  }
  IfNeuron* neuron_or_null() override { return &neuron2_; }
  void set_precision(Precision precision) override {
    conv1_.set_precision(precision);
    conv2_.set_precision(precision);
    if (projection_) projection_->set_precision(precision);
  }

  IfNeuron& neuron1() { return neuron1_; }
  IfNeuron& neuron2() { return neuron2_; }
  SynapticConv& conv1_synapse() { return conv1_; }
  SynapticConv& conv2_synapse() { return conv2_; }
  SynapticConv* projection_synapse_or_null() { return projection_.get(); }

 private:
  SynapticConv conv1_;
  IfNeuron neuron1_;
  SynapticConv conv2_;
  std::unique_ptr<SynapticConv> projection_;  // null => identity
  IfNeuron neuron2_;
};

}  // namespace ullsnn::snn
