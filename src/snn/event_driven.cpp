#include "src/snn/event_driven.h"

#include <stdexcept>

namespace ullsnn::snn {

EventDrivenEngine::EventDrivenEngine(SnnNetwork& net) : net_(&net) {}

Tensor EventDrivenEngine::conv_scatter(const SynapticConv& synapse,
                                       const Tensor& input, bool count_dense) {
  const Conv2dSpec& spec = synapse.spec();
  const Tensor& w = synapse.weight().value;
  const std::int64_t batch = input.dim(0);
  const std::int64_t in_ch = input.dim(1);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  Tensor out({batch, spec.out_channels, oh, ow});
  const std::int64_t k = spec.kernel;
  std::int64_t events = 0;
  std::int64_t acs = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < in_ch; ++c) {
      const float* plane = input.data() + (n * in_ch + c) * height * width;
      for (std::int64_t y = 0; y < height; ++y) {
        for (std::int64_t x = 0; x < width; ++x) {
          const float v = plane[y * width + x];
          if (v == 0.0F) continue;  // event-driven: skip silent synapses
          ++events;
          // Scatter this spike through every kernel position that maps the
          // input pixel (y, x) to a valid output location.
          for (std::int64_t ky = 0; ky < k; ++ky) {
            const std::int64_t oy_num = y + spec.pad - ky;
            if (oy_num < 0 || oy_num % spec.stride != 0) continue;
            const std::int64_t oy = oy_num / spec.stride;
            if (oy >= oh) continue;
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t ox_num = x + spec.pad - kx;
              if (ox_num < 0 || ox_num % spec.stride != 0) continue;
              const std::int64_t ox = ox_num / spec.stride;
              if (ox >= ow) continue;
              for (std::int64_t co = 0; co < spec.out_channels; ++co) {
                out.at(n, co, oy, ox) += v * w.at(co, c, ky, kx);
              }
              acs += spec.out_channels;
            }
          }
        }
      }
    }
  }
  stats_.events_processed += events;
  stats_.accumulate_ops += acs;
  if (count_dense) stats_.dense_equivalent_ops += synapse.macs(input.shape()) * batch;
  return out;
}

Tensor EventDrivenEngine::linear_scatter(const SynapticLinear& synapse,
                                         const Tensor& input, bool count_dense) {
  const Tensor& w = synapse.weight().value;
  const std::int64_t batch = input.dim(0);
  const std::int64_t in_features = w.dim(1);
  const std::int64_t out_features = w.dim(0);
  Tensor out({batch, out_features});
  std::int64_t events = 0;
  std::int64_t acs = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* row = input.data() + n * in_features;
    float* orow = out.data() + n * out_features;
    for (std::int64_t i = 0; i < in_features; ++i) {
      const float v = row[i];
      if (v == 0.0F) continue;
      ++events;
      for (std::int64_t o = 0; o < out_features; ++o) {
        orow[o] += v * w.at(o, i);
      }
      acs += out_features;
    }
  }
  stats_.events_processed += events;
  stats_.accumulate_ops += acs;
  if (count_dense) stats_.dense_equivalent_ops += synapse.macs() * batch;
  return out;
}

Tensor EventDrivenEngine::forward(const Tensor& images) {
  SnnNetwork& net = *net_;
  if (net.empty()) throw std::logic_error("EventDrivenEngine: empty network");
  if (net.encoding() != Encoding::kDirect) {
    throw std::invalid_argument(
        "EventDrivenEngine: only direct encoding is supported");
  }
  const std::int64_t t_steps = net.time_steps();
  Shape shape = images.shape();
  for (std::int64_t i = 0; i < net.size(); ++i) {
    net.layer(i).begin_sequence(shape, t_steps, /*train=*/false);
    shape = net.layer(i).output_shape(shape);
  }
  Tensor logits(shape);
  for (std::int64_t t = 0; t < t_steps; ++t) {
    Tensor x = images;
    for (std::int64_t i = 0; i < net.size(); ++i) {
      SpikingLayer& layer = net.layer(i);
      if (auto* conv = dynamic_cast<SpikingConv2d*>(&layer)) {
        const Tensor current = conv_scatter(conv->synapse(), x, true);
        x = conv->neuron_or_null()->step_forward(current, t, false);
      } else if (auto* linear = dynamic_cast<SpikingLinear*>(&layer)) {
        Tensor current = linear_scatter(linear->synapse(), x, true);
        if (linear->has_neuron()) {
          x = linear->neuron_or_null()->step_forward(current, t, false);
        } else {
          x = std::move(current);
        }
      } else if (auto* block = dynamic_cast<SpikingResidualBlock*>(&layer)) {
        const Tensor s1 = block->neuron1().step_forward(
            conv_scatter(block->conv1_synapse(), x, true), t, false);
        Tensor current = conv_scatter(block->conv2_synapse(), s1, true);
        if (SynapticConv* projection = block->projection_synapse_or_null()) {
          current += conv_scatter(*projection, x, true);
        } else {
          current += x;
        }
        x = block->neuron2().step_forward(current, t, false);
      } else {
        // Weightless layers (pool / flatten / inactive dropout) are cheap;
        // reuse their dense step.
        x = layer.step_forward(x, t, false);
      }
    }
    logits += x;
  }
  return logits;
}

}  // namespace ullsnn::snn
