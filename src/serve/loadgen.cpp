#include "src/serve/loadgen.h"

#include <cmath>
#include <stdexcept>
#include <thread>

#include "src/serve/bounded_queue.h"
#include "src/serve/engine.h"
#include "src/tensor/random.h"
#include "src/util/mutex.h"

namespace ullsnn::serve {

// ---------------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------------

LogHistogram::LogHistogram(double min_ms, double growth, double max_ms) {
  if (min_ms <= 0.0 || growth <= 1.0 || max_ms <= min_ms) {
    throw std::invalid_argument("LogHistogram: need 0 < min_ms < max_ms, growth > 1");
  }
  for (double b = min_ms; b < max_ms; b *= growth) bounds_.push_back(b);
  bounds_.push_back(max_ms);
  counts_.assign(bounds_.size() + 1, 0);
}

void LogHistogram::record(double ms) {
  if (ms < 0.0) ms = 0.0;
  std::size_t i = 0;
  while (i < bounds_.size() && ms > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += ms;
  if (ms > max_) max_ = ms;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.bounds_.size() != bounds_.size()) {
    throw std::invalid_argument("LogHistogram::merge: bucket layouts differ");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

double LogHistogram::percentile(double q) const {
  if (count_ <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count_ - 1);
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double first_in_bucket = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (rank >= static_cast<double>(cumulative)) continue;
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi = i < bounds_.size() ? bounds_[i] : max_;
    if (hi <= lo) return lo;
    // Linear interpolation by rank position inside the bucket.
    const double frac =
        (rank - first_in_bucket) / static_cast<double>(counts_[i]);
    return lo + (hi - lo) * frac;
  }
  return max_;
}

// ---------------------------------------------------------------------------
// LoadReport
// ---------------------------------------------------------------------------

std::int64_t LoadReport::submitted() const {
  std::int64_t n = 0;
  for (const auto& c : per_class) n += c.submitted;
  return n;
}

std::int64_t LoadReport::fulfilled() const {
  std::int64_t n = 0;
  for (const auto& c : per_class) n += c.fulfilled();
  return n;
}

std::int64_t LoadReport::shed() const {
  std::int64_t n = 0;
  for (const auto& c : per_class) n += c.shed_admission + c.shed;
  return n;
}

std::int64_t LoadReport::failed() const {
  std::int64_t n = 0;
  for (const auto& c : per_class) n += c.failed;
  return n;
}

double LoadReport::goodput_qps(Priority p) const {
  return wall_seconds > 0.0
             ? static_cast<double>(cls(p).fulfilled()) / wall_seconds
             : 0.0;
}

double LoadReport::goodput_qps() const {
  return wall_seconds > 0.0 ? static_cast<double>(fulfilled()) / wall_seconds
                            : 0.0;
}

double LoadReport::shed_rate() const {
  const std::int64_t total = submitted();
  return total > 0 ? static_cast<double>(shed()) / static_cast<double>(total)
                   : 0.0;
}

bool LoadReport::conserved() const {
  for (const auto& c : per_class) {
    if (!c.conserved()) return false;
  }
  return true;
}

LogHistogram LoadReport::merged_latency() const {
  LogHistogram merged;
  for (const auto& c : per_class) merged.merge(c.latency);
  return merged;
}

// ---------------------------------------------------------------------------
// LoadGen
// ---------------------------------------------------------------------------

namespace {

/// One precomputed arrival: everything about the request except its input.
struct Arrival {
  Clock::duration offset{};  // intended start, relative to run start
  Priority priority = Priority::kInteractive;
  std::chrono::milliseconds deadline{0};
};

/// An accepted request awaiting completion.
struct Outstanding {
  ResponseFuture future;
  /// Submit-call lateness against the intended Poisson arrival, in ms.
  double submit_lag_ms = 0.0;
  Priority priority = Priority::kInteractive;
};

}  // namespace

LoadGen::LoadGen(LoadGenConfig config) : config_(std::move(config)) {
  if (config_.qps <= 0.0) {
    throw std::invalid_argument("LoadGen: qps must be positive");
  }
  if (config_.duration.count() <= 0) {
    throw std::invalid_argument("LoadGen: duration must be positive");
  }
  if (config_.interactive_fraction < 0.0 || config_.interactive_fraction > 1.0) {
    throw std::invalid_argument("LoadGen: interactive_fraction must be in [0, 1]");
  }
  if (config_.no_deadline_fraction < 0.0 || config_.no_deadline_fraction > 1.0) {
    throw std::invalid_argument("LoadGen: no_deadline_fraction must be in [0, 1]");
  }
  if (config_.collectors <= 0) {
    throw std::invalid_argument("LoadGen: collectors must be positive");
  }
  if (config_.images.empty()) {
    throw std::invalid_argument("LoadGen: images pool must be non-empty");
  }
}

LoadReport LoadGen::run(ServeEngine& engine) {
  // Precompute the full arrival schedule so the submission loop does no RNG
  // work and the offered workload is a pure function of the config.
  Rng rng(config_.seed);
  std::vector<Arrival> schedule;
  schedule.reserve(static_cast<std::size_t>(
      config_.qps * std::chrono::duration<double>(config_.duration).count() * 1.2));
  const double mean_gap_s = 1.0 / config_.qps;
  double t_s = 0.0;
  const double horizon_s = std::chrono::duration<double>(config_.duration).count();
  for (;;) {
    // Exponential inter-arrival gap: -ln(U) * mean. Clamp U away from zero
    // (uniform() can return exactly 0, whose log is -inf).
    double u = static_cast<double>(rng.uniform());
    if (u < 1e-12) u = 1e-12;
    t_s += -std::log(u) * mean_gap_s;
    if (t_s >= horizon_s) break;
    Arrival a;
    a.offset = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(t_s));
    a.priority = rng.bernoulli(static_cast<float>(config_.interactive_fraction))
                     ? Priority::kInteractive
                     : Priority::kBatch;
    if (config_.no_deadline_fraction > 0.0 &&
        rng.bernoulli(static_cast<float>(config_.no_deadline_fraction))) {
      a.deadline = std::chrono::milliseconds(0);  // engine: "no deadline"
    } else {
      const DeadlineDist& dist = a.priority == Priority::kInteractive
                                     ? config_.interactive_deadline
                                     : config_.batch_deadline;
      const std::int64_t span = dist.max.count() - dist.min.count();
      a.deadline = std::chrono::milliseconds(
          dist.min.count() + (span > 0 ? rng.uniform_int(span + 1) : 0));
    }
    schedule.push_back(a);
  }

  LoadReport report;
  Mutex report_mu;  // guards report.per_class during collection

  // Completion side: collectors block on futures so the submitter never
  // does. The queue is sized for the whole run — it must never refuse an
  // accepted request's future (that would break conservation).
  BoundedQueue<Outstanding> completions(
      static_cast<std::int64_t>(schedule.size()) + 1);
  std::vector<std::thread> collectors;
  collectors.reserve(static_cast<std::size_t>(config_.collectors));
  for (std::int64_t c = 0; c < config_.collectors; ++c) {
    collectors.emplace_back([&completions, &report, &report_mu] {
      Outstanding item;
      while (completions.pop(&item, std::chrono::milliseconds(50))) {
        const InferResponse response = item.future.get();
        // Coordinated-omission-safe latency: the engine's own
        // admission-to-fulfillment time (stamped inside the fulfillment
        // critical section) plus the submitter's lateness against the
        // intended Poisson arrival. Composing the two timestamps instead of
        // reading Clock::now() here keeps the measurement independent of
        // when this collector got around to draining the future — a
        // collector blocked on one slow response must not inflate the
        // recorded latency of the fast responses queued behind it.
        const double latency_ms = item.submit_lag_ms + response.total_ms;
        MutexLock lock(report_mu);
        ClassLoadStats& cls = report.cls(item.priority);
        switch (response.status) {
          case ResponseStatus::kOk:
            ++cls.ok;
            cls.latency.record(latency_ms);
            break;
          case ResponseStatus::kDegraded:
            ++cls.degraded;
            cls.latency.record(latency_ms);
            break;
          case ResponseStatus::kExpired:
          case ResponseStatus::kShed:
            ++cls.shed;
            break;
          case ResponseStatus::kTimeout:
          case ResponseStatus::kUnavailable:
          case ResponseStatus::kError:
            ++cls.failed;
            break;
          case ResponseStatus::kRejected:
            // Unreachable: rejections never produce a future.
            ++cls.failed;
            break;
        }
      }
    });
  }

  // Open-loop submission against the fixed schedule. sleep_until self-
  // corrects: if one submit runs late the next wakeup is still anchored to
  // the original start, so lateness never compounds.
  const auto start = Clock::now();
  std::size_t image_index = 0;
  double max_lag_ms = 0.0;
  for (const Arrival& arrival : schedule) {
    const auto intended = start + arrival.offset;
    std::this_thread::sleep_until(intended);
    const double lag_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - intended).count();
    if (lag_ms > max_lag_ms) max_lag_ms = lag_ms;

    SubmitOptions options;
    options.deadline = arrival.deadline;
    options.priority = arrival.priority;
    Tensor image = config_.images[image_index];  // copy; submit takes ownership
    image_index = (image_index + 1) % config_.images.size();
    SubmitResult result = engine.submit(std::move(image), options);
    {
      MutexLock lock(report_mu);
      ClassLoadStats& cls = report.cls(arrival.priority);
      ++cls.submitted;
      if (result.accepted) {
        ++cls.accepted;
      } else if (result.response.status == ResponseStatus::kExpired) {
        ++cls.shed_admission;
      } else {
        ++cls.rejected;
      }
    }
    if (result.accepted) {
      // Cannot fail: capacity covers the whole schedule.
      completions.try_push(Outstanding{std::move(result.future),
                                       lag_ms > 0.0 ? lag_ms : 0.0,
                                       arrival.priority});
    }
  }
  const auto submit_end = Clock::now();

  // Drain: every accepted future resolves (the watchdog guarantees it), so
  // closing the queue and joining collectors loses nothing.
  completions.close();
  for (auto& t : collectors) t.join();

  report.wall_seconds =
      std::chrono::duration<double>(submit_end - start).count();
  report.max_submit_lag_ms = max_lag_ms;
  return report;
}

}  // namespace ullsnn::serve
