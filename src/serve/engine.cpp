#include "src/serve/engine.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/artifact/model_registry.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/timer.h"

namespace ullsnn::serve {

namespace {

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

robust::GuardConfig monitor_config(float explosion_threshold) {
  robust::GuardConfig gc;
  gc.policy = robust::GuardPolicy::kOff;  // engine only uses the scan, not the policy
  gc.explosion_threshold = explosion_threshold;
  return gc;
}

}  // namespace

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kDegraded: return "degraded";
    case ResponseStatus::kRejected: return "rejected";
    case ResponseStatus::kExpired: return "expired";
    case ResponseStatus::kTimeout: return "timeout";
    case ResponseStatus::kUnavailable: return "unavailable";
    case ResponseStatus::kError: return "error";
  }
  return "unknown";
}

ServeEngine::ServeEngine(ServeConfig config, NetworkFactory factory)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      worker_versions_(static_cast<std::size_t>(
          config_.workers > 0 ? config_.workers : 0)),
      queue_(config_.queue_capacity),
      batcher_(config_.batcher),
      breaker_(std::make_unique<CircuitBreaker>(config_.breaker)),
      monitor_(monitor_config(config_.explosion_threshold)) {
  if (config_.queue_capacity <= 0) {
    throw std::invalid_argument("ServeEngine: queue_capacity must be positive");
  }
  if (config_.workers <= 0) {
    throw std::invalid_argument("ServeEngine: workers must be positive");
  }
  if (config_.max_attempts <= 0) {
    throw std::invalid_argument("ServeEngine: max_attempts must be positive");
  }
  if (config_.input_shape.empty()) {
    throw std::invalid_argument("ServeEngine: input_shape must be set");
  }
  if (!factory_) {
    throw std::invalid_argument("ServeEngine: network factory must be set");
  }
}

ServeEngine::ServeEngine(ServeConfig config,
                         std::shared_ptr<artifact::ModelRegistry> registry)
    : ServeEngine(
          [&config, &registry]() -> ServeConfig {
            if (registry == nullptr) {
              throw std::invalid_argument("ServeEngine: registry must be set");
            }
            if (!registry->has_active()) {
              throw std::invalid_argument(
                  "ServeEngine: registry has no active version; deploy first");
            }
            if (config.input_shape.empty()) {
              config.input_shape = registry->active().artifact->input_shape();
            }
            return std::move(config);
          }(),
          // Placeholder factory so the delegated ctor's validation passes;
          // registry-mode workers build replicas from snapshots instead.
          NetworkFactory([] { return std::unique_ptr<snn::SnnNetwork>(); })) {
  registry_ = std::move(registry);
  factory_ = nullptr;
}

ServeEngine::~ServeEngine() { stop(); }

void ServeEngine::start() {
  if (running_.load(std::memory_order_acquire)) return;
  stopping_.store(false, std::memory_order_release);
  // Build every replica up front so a broken factory (or an empty registry)
  // fails loudly here rather than inside a worker thread.
  std::vector<std::unique_ptr<snn::SnnNetwork>> replicas;
  if (registry_ == nullptr) {
    replicas.reserve(static_cast<std::size_t>(config_.workers));
    for (std::int64_t w = 0; w < config_.workers; ++w) {
      auto net = factory_();
      if (net == nullptr || net->empty()) {
        throw std::runtime_error("ServeEngine: factory produced an empty network");
      }
      replicas.push_back(std::move(net));
    }
  } else if (registry_->active().artifact == nullptr) {
    throw std::runtime_error("ServeEngine: registry has no active artifact");
  }
  running_.store(true, std::memory_order_release);
  for (std::int64_t w = 0; w < config_.workers; ++w) {
    std::shared_ptr<snn::SnnNetwork> prebuilt;
    if (registry_ == nullptr) {
      prebuilt = std::shared_ptr<snn::SnnNetwork>(
          std::move(replicas[static_cast<std::size_t>(w)]));
    }
    workers_.emplace_back([this, w, net = std::move(prebuilt)]() mutable {
      ULLSNN_TRACE_SCOPE("serve.worker");
      // Registry mode: `pinned` keeps the mmap alive for exactly as long as
      // this worker's replica borrows weights from it.
      std::shared_ptr<const artifact::UllsnnArtifact> pinned;
      std::uint64_t version = 0;
      if (registry_ != nullptr) {
        const auto snap = registry_->active();
        pinned = snap.artifact;
        version = snap.version;
        net = pinned->make_network();
        worker_versions_[static_cast<std::size_t>(w)].store(
            version, std::memory_order_release);
      }
      while (!stopping_.load(std::memory_order_acquire)) {
        if (registry_ != nullptr && registry_->version() != version) {
          // Hot swap. The previous batch already completed on the old
          // replica (drain — no request is lost); rebuild zero-copy from
          // the new snapshot, then release the old mapping.
          const auto snap = registry_->active();
          pinned = snap.artifact;
          version = snap.version;
          net = pinned->make_network();
          worker_versions_[static_cast<std::size_t>(w)].store(
              version, std::memory_order_release);
          stats_.swaps.fetch_add(1, std::memory_order_relaxed);
          ULLSNN_COUNTER_ADD("serve.swaps", 1);
        }
        MicroBatch batch = batcher_.collect(queue_);
        if (batch.empty()) continue;
        const bool healthy = run_batch(*net, std::move(batch));
        if (registry_ != nullptr) registry_->record_batch_health(version, healthy);
      }
    });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
  obs::logf(obs::LogLevel::kInfo,
            "[serve] engine started: %lld worker(s), queue capacity %lld",
            static_cast<long long>(config_.workers),
            static_cast<long long>(config_.queue_capacity));
}

void ServeEngine::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  queue_.close();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Fail whatever the workers never picked up.
  PendingRequest leftover;
  while (queue_.try_pop(&leftover)) {
    InferResponse r;
    r.status = ResponseStatus::kUnavailable;
    r.reason = "engine stopped before execution";
    stats_.unavailable.fetch_add(1, std::memory_order_relaxed);
    ULLSNN_COUNTER_ADD("serve.unavailable", 1);
    fulfill(leftover.slot, std::move(r));
  }
  if (watchdog_.joinable()) watchdog_.join();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.clear();
  }
  obs::logf(obs::LogLevel::kInfo, "[serve] engine stopped");
}

SubmitResult ServeEngine::submit(Tensor image, std::chrono::milliseconds deadline) {
  SubmitResult result;
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  ULLSNN_COUNTER_ADD("serve.submitted", 1);
  const auto reject = [&](const std::string& reason) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    ULLSNN_COUNTER_ADD("serve.rejected", 1);
    result.accepted = false;
    result.response.status = ResponseStatus::kRejected;
    result.response.reason = reason;
    return result;
  };
  if (!running_.load(std::memory_order_acquire)) {
    return reject("engine not running");
  }
  if (image.shape() != config_.input_shape) {
    return reject("input shape " + shape_to_string(image.shape()) +
                  " != expected " + shape_to_string(config_.input_shape));
  }
  if (deadline.count() < 0) deadline = config_.default_deadline;
  const auto now = Clock::now();
  auto slot = std::make_shared<ResponseSlot>(
      next_id_.fetch_add(1, std::memory_order_relaxed), now, now + deadline);
  PendingRequest pending{slot, std::move(image)};
  const AdmitError err = queue_.try_push(std::move(pending));
  if (err != AdmitError::kNone) {
    return reject(to_string(err));
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.push_back(slot);
  }
  stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  ULLSNN_COUNTER_ADD("serve.accepted", 1);
  ULLSNN_GAUGE_SET("serve.queue.depth", static_cast<double>(queue_.depth()));
  result.accepted = true;
  result.future = ResponseFuture(slot);
  return result;
}

void ServeEngine::fulfill(const SlotPtr& slot, InferResponse&& response) {
  response.total_ms = ms_between(slot->enqueue_time(), Clock::now());
  if (slot->fulfill(std::move(response))) {
    ULLSNN_HISTOGRAM_OBSERVE("serve.latency.total_ms",
                             ms_between(slot->enqueue_time(), Clock::now()));
  }
}

bool ServeEngine::logits_healthy(const Tensor& logits) const {
  robust::HealthReport report;
  monitor_.scan_tensor("serve.logits", logits, report);
  return report.healthy();
}

bool ServeEngine::run_batch(snn::SnnNetwork& net, MicroBatch&& batch) {
  ULLSNN_TRACE_SCOPE("serve.batch");
  const auto picked_up = Clock::now();
  for (auto& expired : batch.expired) {
    InferResponse r;
    r.status = ResponseStatus::kExpired;
    r.reason = "deadline passed before execution";
    stats_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
    ULLSNN_COUNTER_ADD("serve.shed.deadline", 1);
    fulfill(expired.slot, std::move(r));
  }
  if (batch.requests.empty()) return true;
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  ULLSNN_COUNTER_ADD("serve.batches", 1);
  ULLSNN_HISTOGRAM_OBSERVE("serve.batch.size",
                           static_cast<double>(batch.requests.size()));

  const CircuitBreaker::Decision decision = breaker_->admit();
  if (!decision.allow) {
    for (auto& request : batch.requests) {
      InferResponse r;
      r.status = ResponseStatus::kUnavailable;
      r.reason = "circuit open";
      stats_.unavailable.fetch_add(1, std::memory_order_relaxed);
      ULLSNN_COUNTER_ADD("serve.unavailable", 1);
      fulfill(request.slot, std::move(r));
    }
    // A refused batch never touched the network: no verdict on the model.
    return true;
  }

  // Assemble [B, C, H, W] from the per-request [C, H, W] inputs.
  const std::int64_t batch_size = static_cast<std::int64_t>(batch.requests.size());
  Shape batch_shape;
  batch_shape.reserve(config_.input_shape.size() + 1);
  batch_shape.push_back(batch_size);
  for (const std::int64_t d : config_.input_shape) batch_shape.push_back(d);
  Tensor inputs(batch_shape);
  const std::int64_t sample_numel = shape_numel(config_.input_shape);
  std::vector<std::int64_t> ids;
  ids.reserve(static_cast<std::size_t>(batch_size));
  for (std::int64_t i = 0; i < batch_size; ++i) {
    const PendingRequest& request = batch.requests[static_cast<std::size_t>(i)];
    std::memcpy(inputs.data() + i * sample_numel, request.image.data(),
                static_cast<std::size_t>(sample_numel) * sizeof(float));
    ids.push_back(request.slot->id());
  }

  // Forward with retry: an exception from the network (or a chaos hook) and
  // numerically corrupt logits both count as a failed attempt. reset_state()
  // makes every attempt start from pristine membranes, so a transient fault
  // does not poison the retry.
  Tensor logits;
  bool success = false;
  std::int64_t retries_used = 0;
  std::string last_error = "numeric fault in logits";
  Timer infer_timer;
  double infer_ms = 0.0;
  for (std::int64_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_used;
      stats_.retries.fetch_add(1, std::memory_order_relaxed);
      ULLSNN_COUNTER_ADD("serve.retries", 1);
      if (config_.retry_backoff.count() > 0) {
        std::this_thread::sleep_for(config_.retry_backoff * (1LL << (attempt - 1)));
      }
    }
    try {
      ULLSNN_TRACE_SCOPE("serve.forward");
      infer_timer.reset();
      if (config_.before_forward_hook) {
        config_.before_forward_hook(ids, attempt, net);
      }
      net.set_time_steps(decision.time_steps);
      net.reset_state();
      Tensor out = net.forward(inputs, /*train=*/false);
      if (config_.after_forward_hook) config_.after_forward_hook(ids, out);
      infer_ms = infer_timer.millis();
      if (!logits_healthy(out)) {
        last_error = "numeric fault in logits";
        continue;
      }
      logits = std::move(out);
      success = true;
      break;
    } catch (const std::exception& e) {
      infer_ms = infer_timer.millis();
      last_error = e.what();
    }
  }
  breaker_->record(success);

  if (!success) {
    for (auto& request : batch.requests) {
      InferResponse r;
      r.status = ResponseStatus::kError;
      r.reason = "all " + std::to_string(config_.max_attempts) +
                 " attempts failed: " + last_error;
      r.retries = retries_used;
      r.time_steps = decision.time_steps;
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      ULLSNN_COUNTER_ADD("serve.errors", 1);
      fulfill(request.slot, std::move(r));
    }
    return false;
  }

  const bool degraded =
      decision.time_steps != config_.breaker.ladder.front() || decision.probe;
  const std::int64_t classes = logits.numel() / batch_size;
  const auto finished = Clock::now();
  for (std::int64_t i = 0; i < batch_size; ++i) {
    const PendingRequest& request = batch.requests[static_cast<std::size_t>(i)];
    InferResponse r;
    r.retries = retries_used;
    r.time_steps = decision.time_steps;
    r.queue_ms = ms_between(request.slot->enqueue_time(), picked_up);
    r.infer_ms = infer_ms;
    if (finished >= request.slot->deadline()) {
      r.status = ResponseStatus::kExpired;
      r.reason = "completed after deadline";
      stats_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
      ULLSNN_COUNTER_ADD("serve.shed.deadline", 1);
    } else {
      r.status = degraded ? ResponseStatus::kDegraded : ResponseStatus::kOk;
      if (degraded) r.reason = "served at reduced T";
      r.logits = Tensor({classes});
      std::memcpy(r.logits.data(), logits.data() + i * classes,
                  static_cast<std::size_t>(classes) * sizeof(float));
      r.predicted = r.logits.argmax();
      if (degraded) {
        stats_.completed_degraded.fetch_add(1, std::memory_order_relaxed);
        ULLSNN_COUNTER_ADD("serve.completed.degraded", 1);
      } else {
        stats_.completed_ok.fetch_add(1, std::memory_order_relaxed);
        ULLSNN_COUNTER_ADD("serve.completed.ok", 1);
      }
      ULLSNN_HISTOGRAM_OBSERVE("serve.latency.queue_ms", r.queue_ms);
      ULLSNN_HISTOGRAM_OBSERVE("serve.latency.infer_ms", r.infer_ms);
    }
    fulfill(request.slot, std::move(r));
  }
  return true;
}

void ServeEngine::watchdog_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(config_.watchdog_period);
    const auto now = Clock::now();
    std::lock_guard<std::mutex> lock(inflight_mu_);
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      const SlotPtr& slot = *it;
      if (slot->done()) {
        it = inflight_.erase(it);
        continue;
      }
      if (now - slot->enqueue_time() >= config_.request_timeout) {
        InferResponse r;
        r.status = ResponseStatus::kTimeout;
        r.reason = "request exceeded hard timeout";
        r.total_ms = ms_between(slot->enqueue_time(), now);
        if (slot->fulfill(std::move(r))) {
          stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
          ULLSNN_COUNTER_ADD("serve.timeouts", 1);
        }
        it = inflight_.erase(it);
        continue;
      }
      ++it;
    }
    ULLSNN_GAUGE_SET("serve.queue.depth", static_cast<double>(queue_.depth()));
  }
}

ServeStats ServeEngine::stats() const {
  ServeStats s;
  s.submitted = stats_.submitted.load(std::memory_order_relaxed);
  s.accepted = stats_.accepted.load(std::memory_order_relaxed);
  s.rejected = stats_.rejected.load(std::memory_order_relaxed);
  s.shed_deadline = stats_.shed_deadline.load(std::memory_order_relaxed);
  s.completed_ok = stats_.completed_ok.load(std::memory_order_relaxed);
  s.completed_degraded = stats_.completed_degraded.load(std::memory_order_relaxed);
  s.unavailable = stats_.unavailable.load(std::memory_order_relaxed);
  s.timeouts = stats_.timeouts.load(std::memory_order_relaxed);
  s.errors = stats_.errors.load(std::memory_order_relaxed);
  s.retries = stats_.retries.load(std::memory_order_relaxed);
  s.batches = stats_.batches.load(std::memory_order_relaxed);
  s.swaps = stats_.swaps.load(std::memory_order_relaxed);
  return s;
}

std::int64_t ServeEngine::workers_on_active() const {
  if (registry_ == nullptr) return 0;
  const std::uint64_t v = registry_->version();
  std::int64_t n = 0;
  for (const auto& wv : worker_versions_) {
    if (wv.load(std::memory_order_acquire) == v) ++n;
  }
  return n;
}

}  // namespace ullsnn::serve
