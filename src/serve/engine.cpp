#include "src/serve/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/artifact/model_registry.h"
#include "src/obs/exposition.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/http_endpoint.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/timer.h"

namespace ullsnn::serve {

namespace {

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

robust::GuardConfig monitor_config(float explosion_threshold) {
  robust::GuardConfig gc;
  gc.policy = robust::GuardPolicy::kOff;  // engine only uses the scan, not the policy
  gc.explosion_threshold = explosion_threshold;
  return gc;
}

/// Millisecond-scale latency buckets for the serve.latency.* histograms:
/// fine enough that the SLO tracker's within-bucket interpolation keeps
/// percentile error small around typical objectives (tens to hundreds of
/// milliseconds), bounded at 10 s (beyond that the watchdog owns the story).
const std::vector<double>& serve_latency_bounds() {
  static const std::vector<double> bounds = {
      0.05, 0.1, 0.25, 0.5, 1.0,  2.5,   5.0,   10.0,   25.0,
      50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
  return bounds;
}

const std::vector<double>& batch_size_bounds() {
  static const std::vector<double> bounds = {1, 2, 4, 8, 16, 32, 64};
  return bounds;
}

}  // namespace

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kDegraded: return "degraded";
    case ResponseStatus::kRejected: return "rejected";
    case ResponseStatus::kExpired: return "expired";
    case ResponseStatus::kShed: return "shed";
    case ResponseStatus::kTimeout: return "timeout";
    case ResponseStatus::kUnavailable: return "unavailable";
    case ResponseStatus::kError: return "error";
  }
  return "unknown";
}

ServeEngine::ServeMetrics ServeEngine::ServeMetrics::bind() {
  obs::Registry& r = obs::Registry::instance();
  return ServeMetrics{
      r.counter("serve.submitted"),
      r.counter("serve.accepted"),
      r.counter("serve.rejected"),
      r.counter("serve.shed.admission"),
      r.counter("serve.shed.deadline"),
      r.counter("serve.shed.load"),
      r.counter("serve.completed.ok"),
      r.counter("serve.completed.degraded"),
      r.counter("serve.completed.interactive"),
      r.counter("serve.completed.batch"),
      r.counter("serve.unavailable"),
      r.counter("serve.timeouts"),
      r.counter("serve.errors"),
      r.counter("serve.retries"),
      r.counter("serve.batches"),
      r.counter("serve.swaps"),
      r.gauge("serve.queue.depth"),
      r.gauge("serve.queue.depth.interactive"),
      r.gauge("serve.queue.depth.batch"),
      r.histogram("serve.batch.size", batch_size_bounds()),
      r.histogram("serve.latency.total_ms", serve_latency_bounds()),
      r.histogram("serve.latency.queue_ms", serve_latency_bounds()),
      r.histogram("serve.latency.batch_ms", serve_latency_bounds()),
      r.histogram("serve.latency.infer_ms", serve_latency_bounds()),
      r.histogram("serve.latency.step_ms", serve_latency_bounds()),
  };
}

ServeEngine::ServeEngine(ServeConfig config, NetworkFactory factory)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      worker_versions_(static_cast<std::size_t>(
          config_.workers > 0 ? config_.workers : 0)),
      queue_({config_.queue_capacity,
              config_.batch_queue_capacity > 0 ? config_.batch_queue_capacity
                                               : config_.queue_capacity}),
      batcher_(config_.batcher),
      breaker_(std::make_unique<CircuitBreaker>(config_.breaker)),
      codel_(config_.codel),
      brownout_(config_.brownout),
      monitor_(monitor_config(config_.explosion_threshold)),
      metrics_(ServeMetrics::bind()),
      slo_(config_.obs.slo) {
  if (config_.queue_capacity <= 0) {
    throw std::invalid_argument("ServeEngine: queue_capacity must be positive");
  }
  if (config_.workers <= 0) {
    throw std::invalid_argument("ServeEngine: workers must be positive");
  }
  if (config_.max_attempts <= 0) {
    throw std::invalid_argument("ServeEngine: max_attempts must be positive");
  }
  if (config_.input_shape.empty()) {
    throw std::invalid_argument("ServeEngine: input_shape must be set");
  }
  if (!factory_) {
    throw std::invalid_argument("ServeEngine: network factory must be set");
  }
}

ServeEngine::ServeEngine(ServeConfig config,
                         std::shared_ptr<artifact::ModelRegistry> registry)
    : ServeEngine(
          [&config, &registry]() -> ServeConfig {
            if (registry == nullptr) {
              throw std::invalid_argument("ServeEngine: registry must be set");
            }
            if (!registry->has_active()) {
              throw std::invalid_argument(
                  "ServeEngine: registry has no active version; deploy first");
            }
            if (config.input_shape.empty()) {
              config.input_shape = registry->active().artifact->input_shape();
            }
            return std::move(config);
          }(),
          // Placeholder factory so the delegated ctor's validation passes;
          // registry-mode workers build replicas from snapshots instead.
          NetworkFactory([] { return std::unique_ptr<snn::SnnNetwork>(); })) {
  registry_ = std::move(registry);
  factory_ = nullptr;
}

ServeEngine::~ServeEngine() { stop(); }

void ServeEngine::start() {
  if (running_.load(std::memory_order_acquire)) return;
  stopping_.store(false, std::memory_order_release);
  // Build every replica up front so a broken factory (or an empty registry)
  // fails loudly here rather than inside a worker thread.
  std::vector<std::unique_ptr<snn::SnnNetwork>> replicas;
  if (registry_ == nullptr) {
    replicas.reserve(static_cast<std::size_t>(config_.workers));
    for (std::int64_t w = 0; w < config_.workers; ++w) {
      auto net = factory_();
      if (net == nullptr || net->empty()) {
        throw std::runtime_error("ServeEngine: factory produced an empty network");
      }
      replicas.push_back(std::move(net));
    }
  } else if (registry_->active().artifact == nullptr) {
    throw std::runtime_error("ServeEngine: registry has no active artifact");
  }
  if (!config_.obs.flight_dump_path.empty()) {
    obs::FlightRecorder::instance().set_dump_path(config_.obs.flight_dump_path);
    obs::FlightRecorder::install_terminate_handler();
  }
  start_endpoint();  // before workers: scrapes see the engine from its first batch
  running_.store(true, std::memory_order_release);
  for (std::int64_t w = 0; w < config_.workers; ++w) {
    std::shared_ptr<snn::SnnNetwork> prebuilt;
    if (registry_ == nullptr) {
      prebuilt = std::shared_ptr<snn::SnnNetwork>(
          std::move(replicas[static_cast<std::size_t>(w)]));
    }
    workers_.emplace_back([this, w, net = std::move(prebuilt)]() mutable {
      ULLSNN_TRACE_SCOPE("serve.worker");
      // Registry mode: `pinned` keeps the mmap alive for exactly as long as
      // this worker's replica borrows weights from it.
      std::shared_ptr<const artifact::UllsnnArtifact> pinned;
      std::uint64_t version = 0;
      if (registry_ != nullptr) {
        const auto snap = registry_->active();
        pinned = snap.artifact;
        version = snap.version;
        net = pinned->make_network();
        worker_versions_[static_cast<std::size_t>(w)].store(
            version, std::memory_order_release);
      }
      while (!stopping_.load(std::memory_order_acquire)) {
        if (registry_ != nullptr && registry_->version() != version) {
          // Hot swap. The previous batch already completed on the old
          // replica (drain — no request is lost); rebuild zero-copy from
          // the new snapshot, then release the old mapping.
          const auto snap = registry_->active();
          pinned = snap.artifact;
          version = snap.version;
          net = pinned->make_network();
          worker_versions_[static_cast<std::size_t>(w)].store(
              version, std::memory_order_release);
          stats_.swaps.fetch_add(1, std::memory_order_relaxed);
          metrics_.swaps.add(1);
        }
        MicroBatch batch = batcher_.collect(queue_, &codel_);
        // One queue-pressure observation per collect (including empty polls,
        // which are evidence of relief and drive brownout recovery).
        brownout_.observe(static_cast<double>(queue_.depth()) /
                          static_cast<double>(queue_.total_capacity()));
        if (batch.empty()) continue;
        const bool healthy = run_batch(*net, std::move(batch), w);
        if (registry_ != nullptr) registry_->record_batch_health(version, healthy);
      }
    });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
  obs::logf(obs::LogLevel::kInfo,
            "[serve] engine started: %lld worker(s), queue capacity %lld",
            static_cast<long long>(config_.workers),
            static_cast<long long>(config_.queue_capacity));
}

void ServeEngine::start_endpoint() {
  if (!config_.obs.endpoint) return;
  obs::HttpEndpoint::Config http;
  http.bind_address = config_.obs.bind_address;
  http.port = config_.obs.port;
  endpoint_ = std::make_unique<obs::HttpEndpoint>(http);
  endpoint_->route("/metrics", [this](const std::string&, const std::string&) {
    // Refreshing the SLO window on scrape makes each exposition describe the
    // interval between two scrapes — the natural pull-model window.
    slo_.update();
    obs::HttpResponse response;
    response.body = obs::render_prometheus(obs::Registry::instance().snapshot());
    return response;
  });
  endpoint_->route("/healthz", [this](const std::string&, const std::string&) {
    return handle_healthz();
  });
  endpoint_->route("/flight", [](const std::string&, const std::string&) {
    obs::HttpResponse response;
    response.content_type = "application/x-ndjson";
    response.body = obs::FlightRecorder::instance().render_jsonl();
    return response;
  });
  endpoint_->start();
}

obs::HttpResponse ServeEngine::handle_healthz() const {
  const BreakerState state = breaker_->state();
  const char* verdict = "ok";
  if (state == BreakerState::kOpen || state == BreakerState::kHalfOpen) {
    verdict = "unavailable";
  } else if (state == BreakerState::kDegraded) {
    verdict = "degraded";
  }
  std::string body;
  body.reserve(256);
  body += R"({"status":")";
  body += verdict;
  body += R"(","breaker":")";
  body += to_string(state);
  body += R"(","time_steps":)";
  body += std::to_string(state == BreakerState::kOpen ? 0 : breaker_->time_steps());
  body += R"(,"queue_depth":)";
  body += std::to_string(queue_.depth());
  body += R"(,"queue_capacity":)";
  body += std::to_string(queue_.total_capacity());
  body += R"(,"queue_capacity_interactive":)";
  body += std::to_string(queue_.capacity(0));
  body += R"(,"queue_capacity_batch":)";
  body += std::to_string(queue_.capacity(1));
  body += R"(,"workers":)";
  body += std::to_string(config_.workers);
  if (registry_ != nullptr) {
    body += R"(,"registry_version":)";
    body += std::to_string(registry_->version());
    body += R"(,"workers_on_active":)";
    body += std::to_string(workers_on_active());
  }
  body += "}\n";
  obs::HttpResponse response;
  // A load balancer keeps routing to a degraded engine (it still answers,
  // just at reduced T) but drains one whose circuit is open.
  response.status =
      (state == BreakerState::kOpen || state == BreakerState::kHalfOpen) ? 503
                                                                         : 200;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

int ServeEngine::http_port() const {
  return endpoint_ != nullptr ? endpoint_->port() : 0;
}

void ServeEngine::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  queue_.close();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Fail whatever the workers never picked up.
  PendingRequest leftover;
  while (queue_.try_pop(&leftover)) {
    leftover.popped = Clock::now();  // never reached the batcher
    InferResponse r;
    r.status = ResponseStatus::kUnavailable;
    r.reason = "engine stopped before execution";
    fulfill(leftover.slot, std::move(r));
  }
  if (watchdog_.joinable()) watchdog_.join();
  {
    MutexLock lock(inflight_mu_);
    inflight_.clear();
  }
  if (endpoint_ != nullptr) {
    endpoint_->stop();
    endpoint_.reset();
  }
  obs::logf(obs::LogLevel::kInfo, "[serve] engine stopped");
}

SubmitResult ServeEngine::submit(Tensor image, const SubmitOptions& options) {
  SubmitResult result;
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  metrics_.submitted.add(1);
  const auto reject = [&](const std::string& reason) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    metrics_.rejected.add(1);
    result.accepted = false;
    result.response.status = ResponseStatus::kRejected;
    result.response.reason = reason;
    return result;
  };
  if (!running_.load(std::memory_order_acquire)) {
    return reject("engine not running");
  }
  if (image.shape() != config_.input_shape) {
    return reject("input shape " + shape_to_string(image.shape()) +
                  " != expected " + shape_to_string(config_.input_shape));
  }
  const auto now = Clock::now();
  // Deadline resolution: an absolute deadline (propagated from upstream)
  // wins; otherwise the relative one is stamped here, with zero meaning "no
  // deadline" and negative meaning "engine default".
  Clock::time_point deadline;
  if (options.absolute_deadline != Clock::time_point{}) {
    deadline = options.absolute_deadline;
  } else {
    const auto relative = options.deadline.count() < 0 ? config_.default_deadline
                                                       : options.deadline;
    deadline = relative.count() == 0 ? kNoDeadline : now + relative;
  }
  if (deadline != kNoDeadline && now >= deadline) {
    // Admission-time shed: the work is already hopeless, so don't spend a
    // queue slot on it. Typed outcome, counted in its own ledger bucket
    // (submitted = accepted + rejected + shed_admission).
    stats_.shed_admission.fetch_add(1, std::memory_order_relaxed);
    metrics_.shed_admission.add(1);
    result.accepted = false;
    result.response.status = ResponseStatus::kExpired;
    result.response.reason = "deadline already expired at admission";
    return result;
  }
  auto slot = std::make_shared<ResponseSlot>(
      next_id_.fetch_add(1, std::memory_order_relaxed), now, deadline,
      options.priority);
  PendingRequest pending{slot, std::move(image), now};
  const auto lane = static_cast<std::size_t>(options.priority);
  const AdmitError err = queue_.try_push(std::move(pending), lane);
  if (err != AdmitError::kNone) {
    return reject(to_string(err));
  }
  {
    MutexLock lock(inflight_mu_);
    inflight_.push_back(slot);
  }
  stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  metrics_.accepted.add(1);
  metrics_.queue_depth.set(static_cast<double>(queue_.depth()));
  metrics_.queue_depth_interactive.set(static_cast<double>(queue_.lane_depth(0)));
  metrics_.queue_depth_batch.set(static_cast<double>(queue_.lane_depth(1)));
  result.accepted = true;
  result.future = ResponseFuture(slot);
  return result;
}

void ServeEngine::count_terminal(ResponseStatus status, Priority priority) {
  switch (status) {
    case ResponseStatus::kOk:
      stats_.completed_ok.fetch_add(1, std::memory_order_relaxed);
      metrics_.completed_ok.add(1);
      break;
    case ResponseStatus::kDegraded:
      stats_.completed_degraded.fetch_add(1, std::memory_order_relaxed);
      metrics_.completed_degraded.add(1);
      break;
    case ResponseStatus::kExpired:
      stats_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
      metrics_.shed_deadline.add(1);
      break;
    case ResponseStatus::kShed:
      stats_.shed_load.fetch_add(1, std::memory_order_relaxed);
      metrics_.shed_load.add(1);
      break;
    case ResponseStatus::kTimeout:
      stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
      metrics_.timeouts.add(1);
      break;
    case ResponseStatus::kUnavailable:
      stats_.unavailable.fetch_add(1, std::memory_order_relaxed);
      metrics_.unavailable.add(1);
      break;
    case ResponseStatus::kError:
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      metrics_.errors.add(1);
      break;
    case ResponseStatus::kRejected:
      break;  // counted at admission; rejected requests never reach a slot
  }
  if (is_success(status)) {
    if (priority == Priority::kInteractive) {
      stats_.completed_interactive.fetch_add(1, std::memory_order_relaxed);
      metrics_.completed_interactive.add(1);
    } else {
      stats_.completed_batch.fetch_add(1, std::memory_order_relaxed);
      metrics_.completed_batch.add(1);
    }
  }
}

bool ServeEngine::fulfill(const SlotPtr& slot, InferResponse&& response,
                          std::int64_t batch_size, std::int64_t worker_index,
                          const std::function<void()>& on_win) {
  response.id = slot->id();
  response.total_ms = ms_between(slot->enqueue_time(), Clock::now());
  const double total_ms = response.total_ms;
  // Copy the flat trace fields out before fulfill() moves the response to
  // the client: the recorder and sink must never touch client-owned memory.
  obs::RequestRecord record;
  record.id = response.id;
  std::snprintf(record.status, sizeof record.status, "%s",
                to_string(response.status));
  record.time_steps = response.time_steps;
  record.retries = response.retries;
  record.batch_size = batch_size;
  record.worker = worker_index;
  record.queue_ms = response.queue_ms;
  record.batch_ms = response.batch_ms;
  record.infer_ms = response.infer_ms;
  record.total_ms = total_ms;
  record.steps = static_cast<std::int32_t>(
      std::min<std::size_t>(response.step_ms.size(),
                            obs::RequestRecord::kMaxSteps));
  for (std::int32_t s = 0; s < record.steps; ++s) {
    record.step_ms[s] = response.step_ms[static_cast<std::size_t>(s)];
  }
  record.ts_us = obs::Tracer::now_us();
  const ResponseStatus status = response.status;
  const bool won = slot->fulfill(std::move(response), [&] {
    count_terminal(status, slot->priority());
    if (on_win) on_win();
    obs::FlightRecorder::instance().record_request(record);
    metrics_.latency_total_ms.observe(total_ms);
  });
  if (!won) return false;
  const std::int64_t sample_every = config_.obs.trace_sample_every;
  if (sample_every > 0 && record.id % sample_every == 0 &&
      obs::Tracer::instance().enabled()) {
    char args[80];
    std::snprintf(args, sizeof args,
                  "\"id\":%lld,\"status\":\"%s\",\"total_ms\":%.3f",
                  static_cast<long long>(record.id), to_string(status),
                  total_ms);
    obs::Tracer::instance().record_instant("serve.request", args);
  }
  return true;
}

bool ServeEngine::logits_healthy(const Tensor& logits) const {
  robust::HealthReport report;
  monitor_.scan_tensor("serve.logits", logits, report);
  return report.healthy();
}

bool ServeEngine::run_batch(snn::SnnNetwork& net, MicroBatch&& batch,
                            std::int64_t worker_index) {
  ULLSNN_TRACE_SCOPE("serve.batch");
  // Tag every log line from this batch with its lead request id so logs
  // join against traces and flight-recorder records.
  const std::int64_t lead_id = !batch.requests.empty()
                                   ? batch.requests.front().slot->id()
                                   : (!batch.expired.empty()
                                          ? batch.expired.front().slot->id()
                                          : (!batch.shed.empty()
                                                 ? batch.shed.front().slot->id()
                                                 : -1));
  obs::LogRequestScope rid_scope(lead_id);
  const auto picked_up = Clock::now();
  for (auto& expired : batch.expired) {
    InferResponse r;
    r.status = ResponseStatus::kExpired;
    r.reason = "deadline passed before execution";
    r.queue_ms = ms_between(expired.slot->enqueue_time(), expired.popped);
    r.batch_ms = ms_between(expired.popped, picked_up);
    fulfill(expired.slot, std::move(r), 0, worker_index);
  }
  for (auto& shed : batch.shed) {
    InferResponse r;
    r.status = ResponseStatus::kShed;
    r.reason = "load shed: standing queueing delay over CoDel target";
    r.queue_ms = ms_between(shed.slot->enqueue_time(), shed.popped);
    r.batch_ms = ms_between(shed.popped, picked_up);
    fulfill(shed.slot, std::move(r), 0, worker_index);
  }
  if (batch.requests.empty()) return true;

  if (config_.before_dispatch_hook) {
    std::vector<std::int64_t> pending_ids;
    pending_ids.reserve(batch.requests.size());
    for (const auto& request : batch.requests) {
      pending_ids.push_back(request.slot->id());
    }
    config_.before_dispatch_hook(pending_ids);
  }
  // Pre-dispatch re-check: deadlines can expire between dequeue and dispatch
  // (batch formation waits, a stalled worker, a slow collect). Shed them now
  // rather than spending forward-pass time on work that is already dead.
  {
    const auto dispatch_now = Clock::now();
    std::vector<PendingRequest> alive;
    alive.reserve(batch.requests.size());
    for (auto& request : batch.requests) {
      if (request.slot->has_deadline() &&
          dispatch_now >= request.slot->deadline()) {
        InferResponse r;
        r.status = ResponseStatus::kExpired;
        r.reason = "deadline passed before dispatch";
        r.queue_ms = ms_between(request.slot->enqueue_time(), request.popped);
        r.batch_ms = ms_between(request.popped, dispatch_now);
        fulfill(request.slot, std::move(r), 0, worker_index);
      } else {
        alive.push_back(std::move(request));
      }
    }
    batch.requests = std::move(alive);
  }
  if (batch.requests.empty()) return true;
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  metrics_.batches.add(1);
  metrics_.batch_size.observe(static_cast<double>(batch.requests.size()));

  const CircuitBreaker::Decision decision = breaker_->admit();
  if (!decision.allow) {
    for (auto& request : batch.requests) {
      InferResponse r;
      r.status = ResponseStatus::kUnavailable;
      r.reason = "circuit open";
      r.queue_ms = ms_between(request.slot->enqueue_time(), request.popped);
      r.batch_ms = ms_between(request.popped, picked_up);
      fulfill(request.slot, std::move(r),
              static_cast<std::int64_t>(batch.requests.size()), worker_index);
    }
    // A refused batch never touched the network: no verdict on the model.
    return true;
  }

  // Effective time-step budget: the health breaker's rung capped by the
  // load-driven brownout rung. The two ladders are independent levers —
  // numeric distress and queue pressure each lower T on their own evidence;
  // the batch runs at whichever is lower.
  const std::int64_t effective_t =
      std::min(decision.time_steps, brownout_.time_steps());

  // Assemble [B, C, H, W] from the per-request [C, H, W] inputs.
  const std::int64_t batch_size = static_cast<std::int64_t>(batch.requests.size());
  Shape batch_shape;
  batch_shape.reserve(config_.input_shape.size() + 1);
  batch_shape.push_back(batch_size);
  for (const std::int64_t d : config_.input_shape) batch_shape.push_back(d);
  Tensor inputs(batch_shape);
  const std::int64_t sample_numel = shape_numel(config_.input_shape);
  std::vector<std::int64_t> ids;
  ids.reserve(static_cast<std::size_t>(batch_size));
  for (std::int64_t i = 0; i < batch_size; ++i) {
    const PendingRequest& request = batch.requests[static_cast<std::size_t>(i)];
    std::memcpy(inputs.data() + i * sample_numel, request.image.data(),
                static_cast<std::size_t>(sample_numel) * sizeof(float));
    ids.push_back(request.slot->id());
  }

  // Forward with retry: an exception from the network (or a chaos hook) and
  // numerically corrupt logits both count as a failed attempt. reset_state()
  // makes every attempt start from pristine membranes, so a transient fault
  // does not poison the retry.
  Tensor logits;
  bool success = false;
  std::int64_t retries_used = 0;
  std::string last_error = "numeric fault in logits";
  Timer infer_timer;
  double infer_ms = 0.0;
  std::vector<double> step_ms;          // per-time-step durations (final attempt)
  std::vector<double> attempt_step_ms;  // scratch for the attempt in flight
  for (std::int64_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_used;
      stats_.retries.fetch_add(1, std::memory_order_relaxed);
      metrics_.retries.add(1);
      if (config_.retry_backoff.count() > 0) {
        std::this_thread::sleep_for(config_.retry_backoff * (1LL << (attempt - 1)));
      }
    }
    try {
      ULLSNN_TRACE_SCOPE("serve.forward");
      infer_timer.reset();
      if (config_.before_forward_hook) {
        config_.before_forward_hook(ids, attempt, net);
      }
      net.set_time_steps(effective_t);
      net.reset_state();
      // Per-time-step timing: wrap (not clobber) any step hook a chaos test
      // installed, so fault injection and timing compose. The wrapped hook
      // is restored before the attempt resolves either way.
      const snn::SnnNetwork::StepHook chained = net.step_hook();
      attempt_step_ms.clear();
      auto step_start = Clock::now();
      net.set_step_hook([&chained, &attempt_step_ms, &step_start](
                            snn::SnnNetwork& n, std::int64_t t) {
        if (chained) chained(n, t);
        const auto now = Clock::now();
        attempt_step_ms.push_back(ms_between(step_start, now));
        step_start = now;
      });
      Tensor out;
      try {
        out = net.forward(inputs, /*train=*/false);
      } catch (...) {
        net.set_step_hook(chained);
        throw;
      }
      net.set_step_hook(chained);
      if (config_.after_forward_hook) config_.after_forward_hook(ids, out);
      infer_ms = infer_timer.millis();
      step_ms = attempt_step_ms;
      if (!logits_healthy(out)) {
        last_error = "numeric fault in logits";
        continue;
      }
      logits = std::move(out);
      success = true;
      break;
    } catch (const std::exception& e) {
      infer_ms = infer_timer.millis();
      last_error = e.what();
    }
  }
  breaker_->record(success);
  for (const double s : step_ms) metrics_.latency_step_ms.observe(s);

  if (!success) {
    for (auto& request : batch.requests) {
      InferResponse r;
      r.status = ResponseStatus::kError;
      r.reason = "all " + std::to_string(config_.max_attempts) +
                 " attempts failed: " + last_error;
      r.retries = retries_used;
      r.time_steps = effective_t;
      r.queue_ms = ms_between(request.slot->enqueue_time(), request.popped);
      r.batch_ms = ms_between(request.popped, picked_up);
      r.infer_ms = infer_ms;
      r.step_ms = step_ms;
      fulfill(request.slot, std::move(r), batch_size, worker_index);
    }
    return false;
  }

  const bool degraded =
      effective_t != config_.breaker.ladder.front() || decision.probe;
  const std::int64_t classes = logits.numel() / batch_size;
  const auto finished = Clock::now();
  for (std::int64_t i = 0; i < batch_size; ++i) {
    const PendingRequest& request = batch.requests[static_cast<std::size_t>(i)];
    InferResponse r;
    r.retries = retries_used;
    r.time_steps = effective_t;
    r.queue_ms = ms_between(request.slot->enqueue_time(), request.popped);
    r.batch_ms = ms_between(request.popped, picked_up);
    r.infer_ms = infer_ms;
    r.step_ms = step_ms;
    if (request.slot->has_deadline() && finished >= request.slot->deadline()) {
      r.status = ResponseStatus::kExpired;
      r.reason = "completed after deadline";
    } else {
      r.status = degraded ? ResponseStatus::kDegraded : ResponseStatus::kOk;
      if (degraded) r.reason = "served at reduced T";
      r.logits = Tensor({classes});
      std::memcpy(r.logits.data(), logits.data() + i * classes,
                  static_cast<std::size_t>(classes) * sizeof(float));
      r.predicted = r.logits.argmax();
      metrics_.latency_queue_ms.observe(r.queue_ms);
      metrics_.latency_batch_ms.observe(r.batch_ms);
      metrics_.latency_infer_ms.observe(r.infer_ms);
    }
    fulfill(request.slot, std::move(r), batch_size, worker_index);
  }
  return true;
}

void ServeEngine::watchdog_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(config_.watchdog_period);
    const auto now = Clock::now();
    MutexLock lock(inflight_mu_);
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      const SlotPtr& slot = *it;
      if (slot->done()) {
        it = inflight_.erase(it);
        continue;
      }
      if (now - slot->enqueue_time() >= config_.request_timeout) {
        obs::LogRequestScope rid_scope(slot->id());
        InferResponse r;
        r.status = ResponseStatus::kTimeout;
        r.reason = "request exceeded hard timeout";
        const double total_ms = ms_between(slot->enqueue_time(), now);
        // A worker may finish between the done() check above and here; the
        // timeout is counted (by count_terminal, inside the winning critical
        // section) only if this call wins the fulfillment race.
        if (fulfill(slot, std::move(r))) {
          obs::FlightRecorder::instance().note_anomaly(
              "watchdog", "request %lld exceeded hard timeout after %.1f ms",
              static_cast<long long>(slot->id()), total_ms);
          obs::logf(obs::LogLevel::kWarn,
                    "[serve] watchdog timed out request %lld after %.1f ms",
                    static_cast<long long>(slot->id()), total_ms);
        }
        it = inflight_.erase(it);
        continue;
      }
      ++it;
    }
    metrics_.queue_depth.set(static_cast<double>(queue_.depth()));
    metrics_.queue_depth_interactive.set(static_cast<double>(queue_.lane_depth(0)));
    metrics_.queue_depth_batch.set(static_cast<double>(queue_.lane_depth(1)));
  }
}

ServeStats ServeEngine::stats() const {
  ServeStats s;
  s.submitted = stats_.submitted.load(std::memory_order_relaxed);
  s.accepted = stats_.accepted.load(std::memory_order_relaxed);
  s.rejected = stats_.rejected.load(std::memory_order_relaxed);
  s.shed_admission = stats_.shed_admission.load(std::memory_order_relaxed);
  s.shed_deadline = stats_.shed_deadline.load(std::memory_order_relaxed);
  s.shed_load = stats_.shed_load.load(std::memory_order_relaxed);
  s.completed_ok = stats_.completed_ok.load(std::memory_order_relaxed);
  s.completed_degraded = stats_.completed_degraded.load(std::memory_order_relaxed);
  s.completed_interactive =
      stats_.completed_interactive.load(std::memory_order_relaxed);
  s.completed_batch = stats_.completed_batch.load(std::memory_order_relaxed);
  s.unavailable = stats_.unavailable.load(std::memory_order_relaxed);
  s.timeouts = stats_.timeouts.load(std::memory_order_relaxed);
  s.errors = stats_.errors.load(std::memory_order_relaxed);
  s.retries = stats_.retries.load(std::memory_order_relaxed);
  s.batches = stats_.batches.load(std::memory_order_relaxed);
  s.swaps = stats_.swaps.load(std::memory_order_relaxed);
  s.brownout_level = brownout_.level();
  s.brownout_escalations = brownout_.escalations();
  s.brownout_recoveries = brownout_.recoveries();
  const obs::SloTracker::Report slo = slo_.update();
  s.slo_p50_ms = slo.p50_ms;
  s.slo_p95_ms = slo.p95_ms;
  s.slo_p99_ms = slo.p99_ms;
  s.slo_compliance = slo.compliance;
  s.slo_burn = slo.burn;
  return s;
}

std::int64_t ServeEngine::workers_on_active() const {
  if (registry_ == nullptr) return 0;
  const std::uint64_t v = registry_->version();
  std::int64_t n = 0;
  for (const auto& wv : worker_versions_) {
    if (wv.load(std::memory_order_acquire) == v) ++n;
  }
  return n;
}

}  // namespace ullsnn::serve
