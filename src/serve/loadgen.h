// Open-loop Poisson load generator with coordinated-omission-safe latency.
//
// The difference between this and bench_serve's closed-loop soak is what
// happens when the engine falls behind. A closed-loop driver waits for
// responses before sending more work, so an overloaded engine quietly
// throttles its own load source and the measured latencies describe a
// gentler workload than the one requested — the coordinated-omission trap.
// This generator is open-loop: arrivals follow a Poisson process (seeded
// exponential inter-arrival gaps) whose *intended* start times are fixed
// before the run begins, every request is submitted regardless of engine
// state, and each latency is measured from the request's intended start —
// submission backlog in the generator counts against the engine, exactly as
// a queueing client would experience it.
//
// Per-priority-class accounting is exact: for each class,
//
//   submitted = accepted + rejected + shed_admission
//   accepted  = fulfilled + shed + failed
//
// which is the conservation ledger the bench and `ctest -L serve` gate on.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/serve/request.h"

namespace ullsnn::serve {

class ServeEngine;

/// Log-bucketed latency histogram (milliseconds). Geometric bucket bounds
/// cover 1 us .. ~100 s so tail percentiles stay resolvable across five
/// orders of magnitude without per-sample storage. Not thread-safe; callers
/// serialize recording (LoadGen locks per class).
class LogHistogram {
 public:
  /// Buckets: bound[i] = min_ms * growth^i, until >= max_ms.
  explicit LogHistogram(double min_ms = 1e-3, double growth = 1.25,
                        double max_ms = 1e5);

  void record(double ms);
  void merge(const LogHistogram& other);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double max() const { return max_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  /// Percentile by cumulative bucket walk with linear interpolation inside
  /// the bucket; q in [0, 1]. Returns 0 when empty.
  double percentile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::int64_t>& counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> counts_;  // bounds_.size() + 1, overflow last
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Uniform relative-deadline distribution for one priority class.
struct DeadlineDist {
  std::chrono::milliseconds min{50};
  std::chrono::milliseconds max{50};
};

struct LoadGenConfig {
  /// Offered load: mean arrival rate of the Poisson process.
  double qps = 500.0;
  std::chrono::milliseconds duration{1000};
  /// Fraction of requests submitted as Priority::kInteractive.
  double interactive_fraction = 0.8;
  DeadlineDist interactive_deadline{std::chrono::milliseconds(40),
                                    std::chrono::milliseconds(80)};
  DeadlineDist batch_deadline{std::chrono::milliseconds(200),
                              std::chrono::milliseconds(400)};
  /// Fraction of requests submitted with no deadline at all (never shed).
  double no_deadline_fraction = 0.0;
  /// Threads draining response futures; the submitter itself never blocks.
  std::int64_t collectors = 2;
  std::uint64_t seed = 0x10AD;
  /// Input pool, cycled round-robin per request. Must be non-empty and match
  /// the engine's input shape.
  std::vector<Tensor> images;
};

/// Per-priority-class outcome ledger + coordinated-omission-safe latency.
struct ClassLoadStats {
  std::int64_t submitted = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;        // admission refusal (queue full)
  std::int64_t shed_admission = 0;  // deadline already past at submit
  std::int64_t ok = 0;
  std::int64_t degraded = 0;
  std::int64_t shed = 0;    // kExpired / kShed after admission
  std::int64_t failed = 0;  // kTimeout / kUnavailable / kError
  /// Completion latency from the *intended* Poisson start time, successes
  /// only (goodput latency — what an SLO would be written against).
  LogHistogram latency;

  std::int64_t fulfilled() const { return ok + degraded; }
  bool conserved() const {
    return submitted == accepted + rejected + shed_admission &&
           accepted == fulfilled() + shed + failed;
  }
};

struct LoadReport {
  ClassLoadStats per_class[kPriorityClasses];
  double wall_seconds = 0.0;
  /// Worst lateness of the submitter against the intended schedule; large
  /// values mean the generator itself (not the engine) was the bottleneck.
  double max_submit_lag_ms = 0.0;

  ClassLoadStats& cls(Priority p) { return per_class[static_cast<std::size_t>(p)]; }
  const ClassLoadStats& cls(Priority p) const {
    return per_class[static_cast<std::size_t>(p)];
  }
  std::int64_t submitted() const;
  std::int64_t fulfilled() const;
  std::int64_t shed() const;  // shed_admission + post-admission shed
  std::int64_t failed() const;
  double goodput_qps(Priority p) const;
  double goodput_qps() const;
  double shed_rate() const;  // shed / submitted
  bool conserved() const;
  /// Merged success-latency histogram across both classes.
  LogHistogram merged_latency() const;
};

/// Drives one ServeEngine with the configured open-loop schedule. The
/// arrival schedule (gaps, priorities, deadlines) is fully precomputed from
/// the seed before submission starts, so two runs at the same config offer
/// bit-identical workloads.
class LoadGen {
 public:
  explicit LoadGen(LoadGenConfig config);

  /// Blocks for ~config.duration plus drain time; returns the full ledger.
  LoadReport run(ServeEngine& engine);

  const LoadGenConfig& config() const { return config_; }

 private:
  LoadGenConfig config_;
};

}  // namespace ullsnn::serve
