// Load-driven overload control: CoDel queueing-delay shedding + brownout.
//
// Two controllers, two different signals, two different levers:
//
//  - CoDelController (per priority lane) watches *sojourn time* — how long a
//    request sat in the queue before the batcher pulled it. When sojourn has
//    exceeded a target continuously for a full interval, the queue has a
//    standing backlog (not just a burst) and the controller starts shedding
//    dequeued requests on the CoDel control law
//    (drop_next = now + interval / sqrt(count)), shedding faster the longer
//    the overload persists. The interactive lane gets a larger target than
//    the batch lane, so batch work sheds first; strict-priority dequeue
//    already keeps interactive sojourns short unless interactive traffic
//    alone exceeds capacity.
//
//  - BrownoutController watches *queue depth* and trades quality for
//    capacity before any request has to be refused: sustained depth above
//    the high watermark lowers the per-request time-step budget one rung
//    (T = 3 -> 2 -> 1), raising throughput at the accuracy cost the paper's
//    ladder quantifies; sustained depth below the low watermark climbs back.
//    Dwell counting is observation-based (one observation per collected
//    batch), mirroring the CircuitBreaker's request-count-based bookkeeping
//    so a fixed load trace drives a deterministic level sequence.
//
// Coordination with the health-driven CircuitBreaker: brownout never
// replaces it. The engine runs each batch at min(breaker T, brownout T) —
// the breaker owns numeric-health degradation and availability (open /
// half-open), brownout owns load-driven degradation. Both record their
// transitions in the flight recorder; brownout exports serve.overload.*.
//
// Thread-safe: each controller's state sits behind one mutex (decisions are
// per-dequeue / per-batch, far off the per-element hot path).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#include "src/serve/request.h"
#include "src/util/mutex.h"

namespace ullsnn::obs {
class Counter;
class Gauge;
}  // namespace ullsnn::obs

namespace ullsnn::serve {

struct CoDelConfig {
  /// Acceptable standing sojourn time for the batch lane.
  std::chrono::milliseconds target{5};
  /// Sojourn must stay above target for this long before shedding starts;
  /// also the base period of the drop law once it has.
  std::chrono::milliseconds interval{100};
  /// The interactive lane's target is `target * interactive_target_factor`:
  /// interactive work is the traffic being protected, so it sheds only when
  /// interactive demand alone exceeds capacity.
  double interactive_target_factor = 4.0;
};

/// Classic CoDel state machine, one instance per priority lane. Time is
/// passed in explicitly so tests can drive the state machine with a
/// synthetic clock.
class CoDelController {
 public:
  explicit CoDelController(CoDelConfig config);

  /// Called by the batcher for every dequeued request with its sojourn time
  /// (popped - enqueued). Returns true when the request should be shed
  /// (fulfilled kShed) instead of batched. Requests without a deadline must
  /// not be offered here — "no deadline" means "never shed".
  bool should_shed(Priority lane, Clock::duration sojourn, Clock::time_point now);

  /// Sheds decided so far for `lane`.
  std::int64_t shed_count(Priority lane) const;
  /// Whether `lane` is currently in the dropping state.
  bool dropping(Priority lane) const;

  const CoDelConfig& config() const { return config_; }

 private:
  struct LaneState {
    Clock::time_point first_above{};  // {} = sojourn not currently above target
    Clock::time_point drop_next{};
    bool dropping = false;
    std::int64_t count = 0;  // drops in the current dropping episode
    std::int64_t shed = 0;   // lifetime sheds (exported)
  };

  Clock::duration target_for(Priority lane) const;
  /// CoDel drop law: interval / sqrt(count).
  Clock::duration backoff(std::int64_t count) const;

  const CoDelConfig config_;
  mutable Mutex mu_;
  std::array<LaneState, kPriorityClasses> lanes_ GUARDED_BY(mu_);
};

struct BrownoutConfig {
  /// Queue-depth fraction (total depth / total capacity) above which pressure
  /// accumulates toward descending one rung.
  double high_watermark = 0.5;
  /// Fraction below which relief accumulates toward climbing one rung.
  double low_watermark = 0.125;
  /// Consecutive observations (one per collected batch) above/below the
  /// watermark before a transition fires. Count-based, not wall-clock-based,
  /// for deterministic transition sequences under a fixed load trace.
  std::int64_t dwell = 8;
  /// Time-step budgets from full quality to deepest brownout; must be
  /// non-empty and strictly decreasing. Level 0 (= ladder[0]) is "no
  /// brownout". Normally mirrors BreakerConfig::ladder.
  std::vector<std::int64_t> ladder = {3, 2, 1};
};

/// Load-driven T-degradation ladder. observe() is fed the queue-depth
/// fraction once per collected batch; time_steps() is combined by the engine
/// as min(breaker T, brownout T).
class BrownoutController {
 public:
  explicit BrownoutController(BrownoutConfig config);

  /// Feed one queue-depth observation (depth / capacity, >= 0). Returns the
  /// brownout level after the observation (0 = full quality).
  std::int64_t observe(double depth_fraction);

  std::int64_t level() const;
  std::int64_t time_steps() const;
  std::int64_t deepest_level() const { return static_cast<std::int64_t>(config_.ladder.size()) - 1; }
  /// Deepest level this controller has actually reached (0 if never browned
  /// out) — distinct from deepest_level(), the configured floor.
  std::int64_t deepest_reached() const;
  std::int64_t escalations() const;  // times the ladder descended one rung
  std::int64_t recoveries() const;   // times it climbed back one rung

  const BrownoutConfig& config() const { return config_; }

 private:
  void note(const char* cause) REQUIRES(mu_);

  const BrownoutConfig config_;
  mutable Mutex mu_;
  std::int64_t level_ GUARDED_BY(mu_) = 0;
  std::int64_t deepest_reached_ GUARDED_BY(mu_) = 0;
  std::int64_t above_streak_ GUARDED_BY(mu_) = 0;
  std::int64_t below_streak_ GUARDED_BY(mu_) = 0;
  std::int64_t escalations_ GUARDED_BY(mu_) = 0;
  std::int64_t recoveries_ GUARDED_BY(mu_) = 0;

  // serve.overload.* instruments (always-on direct references, same contract
  // as ServeEngine::ServeMetrics: exact in every build configuration).
  obs::Gauge& level_gauge_;
  obs::Gauge& time_steps_gauge_;
  obs::Counter& escalations_counter_;
  obs::Counter& recoveries_counter_;
};

}  // namespace ullsnn::serve
