// Request/response types for the resilient SNN inference engine.
//
// A submitted request is represented by a shared ResponseSlot that exactly
// one party fulfills: the worker that ran it, the batcher that shed it, or
// the watchdog that timed it out. fulfill() is first-wins, so a watchdog
// firing while a stuck worker eventually finishes never double-completes or
// deadlocks a client — the late result is simply discarded.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/mutex.h"

namespace ullsnn::serve {

using Clock = std::chrono::steady_clock;

/// Terminal outcome of a request. Degraded responses carry valid logits
/// computed at a reduced T; everything from kRejected down carries none.
enum class ResponseStatus {
  kOk,           // served at the full (healthy-rung) time-step budget
  kDegraded,     // served at a reduced T — the degradation ladder in action
  kRejected,     // refused at admission (queue full / engine stopped / bad input)
  kExpired,      // deadline passed before or during execution; result dropped
  kShed,         // load-shed (CoDel sojourn overrun) while still in-deadline
  kTimeout,      // watchdog fired: the request exceeded its hard timeout
  kUnavailable,  // circuit open: static fallback response, network not run
  kError,        // all forward attempts failed (non-transient fault)
};

const char* to_string(ResponseStatus status);

/// True for outcomes that returned usable logits.
inline bool is_success(ResponseStatus s) {
  return s == ResponseStatus::kOk || s == ResponseStatus::kDegraded;
}

/// True for outcomes where the engine deliberately dropped in-queue work
/// (deadline expiry or load shedding) — "shed" in the conservation ledger.
inline bool is_shed(ResponseStatus s) {
  return s == ResponseStatus::kExpired || s == ResponseStatus::kShed;
}

/// Request priority class. Strict-priority dequeue: interactive requests are
/// always served before batch requests, so under overload batch work absorbs
/// the queueing delay (and therefore the shedding) while interactive p99
/// stays bounded.
enum class Priority : std::uint8_t {
  kInteractive = 0,  // latency-sensitive; protected under overload
  kBatch = 1,        // throughput work; first to be shed
};

inline constexpr std::size_t kPriorityClasses = 2;

inline const char* to_string(Priority p) {
  return p == Priority::kInteractive ? "interactive" : "batch";
}

/// Per-request admission options. Deadlines propagate end-to-end as absolute
/// time points so an upstream service's remaining budget survives hops:
/// either give `deadline` (relative, stamped at submit) or `absolute_deadline`
/// (wins when set). A zero/absent deadline means "no deadline" — such a
/// request is never deadline-shed (the watchdog's hard timeout still bounds
/// its wait).
struct SubmitOptions {
  /// Relative deadline. Negative = engine default; zero = no deadline.
  std::chrono::milliseconds deadline{-1};
  /// Absolute deadline (deadline propagation). time_point{} = unset; when
  /// set it overrides `deadline` and may already be in the past, in which
  /// case the request is shed at admission with a typed kExpired outcome.
  Clock::time_point absolute_deadline{};
  Priority priority = Priority::kInteractive;
};

/// Sentinel for "no deadline": orders after every reachable time point.
inline constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

struct InferResponse {
  ResponseStatus status = ResponseStatus::kError;
  std::string reason;          // human-readable cause for non-kOk outcomes
  Tensor logits;               // populated iff is_success(status)
  std::int64_t predicted = -1; // argmax of logits, -1 otherwise
  std::int64_t time_steps = 0; // T the network actually ran (0 if it didn't)
  std::int64_t retries = 0;    // transient-failure retries consumed

  // Request-scoped trace: the monotonically unique id assigned at admission
  // plus the per-stage timing record, propagated through queue wait ->
  // micro-batch formation -> per-time-step forward -> fulfillment. The same
  // record lands in the flight recorder and (sampled) in the trace sink;
  // the id joins all three against [rid=N]-tagged log lines.
  std::int64_t id = -1;        // request id (echoes ResponseFuture::id())
  double queue_ms = 0.0;       // admission -> popped from the bounded queue
  double batch_ms = 0.0;       // popped -> micro-batch dispatched to forward
  double infer_ms = 0.0;       // forward time (final attempt)
  double total_ms = 0.0;       // admission -> fulfillment
  std::vector<double> step_ms; // per-time-step forward durations at ladder T
};

/// Shared completion state between the client-held ResponseFuture and the
/// engine. done_/response_ are GUARDED_BY(mu_); the first-wins race between
/// worker, batcher, and watchdog is decided entirely inside that lock, which
/// the sched model tests verify across exhaustive interleavings.
class ResponseSlot {
 public:
  ResponseSlot(std::int64_t id, Clock::time_point enqueue,
               Clock::time_point deadline,
               Priority priority = Priority::kInteractive)
      : id_(id), enqueue_(enqueue), deadline_(deadline), priority_(priority) {}

  std::int64_t id() const { return id_; }
  Clock::time_point enqueue_time() const { return enqueue_; }
  Clock::time_point deadline() const { return deadline_; }
  Priority priority() const { return priority_; }
  /// False when the request carries no deadline (kNoDeadline): it is never
  /// deadline-shed, only watchdog-bounded.
  bool has_deadline() const { return deadline_ != kNoDeadline; }

  bool done() const {
    MutexLock lock(mu_);
    return done_;
  }

  /// First fulfillment wins and wakes waiters; later calls return false and
  /// leave the stored response untouched. `on_first` (optional, must not
  /// throw) runs on the winning path while the slot lock is still held —
  /// i.e. strictly before any waiter can observe the result. The engine uses
  /// it to publish this request's metrics and flight record, so a client
  /// that scrapes /metrics right after get() returns always sees itself
  /// counted (counter conservation).
  bool fulfill(InferResponse response,
               const std::function<void()>& on_first = nullptr) {
    {
      MutexLock lock(mu_);
      if (done_) return false;
      response_ = std::move(response);
      done_ = true;
      if (on_first) on_first();
    }
    cv_.notify_all();
    return true;
  }

  /// Block until fulfilled, then copy the response out.
  InferResponse wait() const {
    MutexLock lock(mu_);
    while (!done_) cv_.wait(mu_);
    return response_;
  }

  /// Block up to `timeout`; returns false (and no response) on timeout.
  bool wait_for(std::chrono::milliseconds timeout, InferResponse* out) const {
    const auto deadline = Clock::now() + timeout;
    MutexLock lock(mu_);
    while (!done_) {
      if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
        if (done_) break;  // fulfilled exactly at expiry
        return false;
      }
    }
    if (out != nullptr) *out = response_;
    return true;
  }

 private:
  const std::int64_t id_;
  const Clock::time_point enqueue_;
  const Clock::time_point deadline_;
  const Priority priority_;
  mutable Mutex mu_;
  mutable CondVar cv_;
  bool done_ GUARDED_BY(mu_) = false;
  InferResponse response_ GUARDED_BY(mu_);
};

using SlotPtr = std::shared_ptr<ResponseSlot>;

/// Client-side handle to an accepted request.
class ResponseFuture {
 public:
  ResponseFuture() = default;
  explicit ResponseFuture(SlotPtr slot) : slot_(std::move(slot)) {}

  bool valid() const { return slot_ != nullptr; }
  bool ready() const { return slot_ != nullptr && slot_->done(); }
  std::int64_t id() const { return slot_ ? slot_->id() : -1; }

  /// Blocks until the engine (worker, batcher, or watchdog) fulfills the
  /// request. Every accepted request is guaranteed to be fulfilled: the
  /// watchdog bounds the wait even if a worker wedges.
  InferResponse get() const { return slot_->wait(); }

 private:
  SlotPtr slot_;
};

/// What travels through the queue: the input plus the completion slot.
struct PendingRequest {
  SlotPtr slot;
  Tensor image;  // [C, H, W]
  /// Stamped by the micro-batcher when the request leaves the queue; the
  /// boundary between queue-wait and batch-formation in the stage record.
  Clock::time_point popped{};
};

}  // namespace ullsnn::serve
