// Circuit breaker with a T-degradation ladder.
//
// The paper's central result — accuracy holds down to T = 2-3 when per-layer
// (alpha, beta) scaling is used — gives a converted SNN a degradation axis
// that conventional DNN serving lacks: under numeric distress the engine can
// shed *time steps* instead of requests. The ladder descends
//
//     T = ladder[0] (healthy) -> ladder[1] -> ... -> ladder.back() -> OPEN
//
// one rung per `failure_threshold` consecutive unhealthy batches (NaN/Inf/
// exploded logits, or exhausted forward retries), and climbs back one rung
// per `recovery_threshold` consecutive healthy batches. Falling off the last
// rung opens the circuit: requests get a static kUnavailable response without
// touching the network. After `open_cooldown` refused batches the breaker
// half-opens and lets a single probe batch through at the lowest rung;
// success re-enters the ladder, failure re-opens.
//
// All bookkeeping is request-count-based rather than wall-clock-based, so a
// fixed fault schedule drives a bit-identical transition sequence — the chaos
// tests assert the exact healthy -> degraded -> open -> half-open -> healthy
// path. Thread-safe: all state sits behind one mutex (worker threads share
// one breaker; decisions are far off the per-element hot path).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/mutex.h"

namespace ullsnn::serve {

enum class BreakerState {
  kClosed,    // top rung: full time-step budget
  kDegraded,  // on a lower rung: serving at reduced T
  kOpen,      // circuit open: static unavailable responses
  kHalfOpen,  // cooldown elapsed: next batch is a probe
};

const char* to_string(BreakerState state);

struct BreakerConfig {
  /// Time-step budgets from healthy to most-degraded. Must be non-empty and
  /// strictly decreasing (e.g. {3, 2, 1}).
  std::vector<std::int64_t> ladder = {3, 2, 1};
  /// Consecutive unhealthy batches before descending one rung (or opening
  /// when already on the last rung).
  std::int64_t failure_threshold = 3;
  /// Consecutive healthy batches before ascending one rung.
  std::int64_t recovery_threshold = 8;
  /// Batches refused while open before half-opening for a probe.
  std::int64_t open_cooldown = 16;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config);

  /// Per-batch gate. allow == false => respond kUnavailable without running
  /// the network. When allowed, run at `time_steps`; `probe` marks the
  /// single half-open trial batch.
  struct Decision {
    bool allow = true;
    std::int64_t time_steps = 0;
    bool probe = false;
  };
  Decision admit();

  /// Report the numeric verdict of an admitted batch. Drives all ladder and
  /// open/half-open transitions.
  void record(bool healthy);

  BreakerState state() const;
  /// Current ladder rung (0 = healthy top rung); clamped to the last rung
  /// while open/half-open.
  std::int64_t rung() const;
  std::int64_t time_steps() const;

  /// One entry per state-or-rung change, in order. `batch` is the admit()/
  /// record() sequence number at which the transition happened.
  struct Transition {
    std::int64_t batch = 0;
    BreakerState state = BreakerState::kClosed;
    std::int64_t time_steps = 0;
    std::string cause;
  };
  std::vector<Transition> history() const;

  std::int64_t trips() const;       // times the circuit opened
  std::int64_t recoveries() const;  // times it returned to the top rung

 private:
  /// Record a transition and export breaker gauges.
  void note(BreakerState state, const char* cause) REQUIRES(mu_);
  std::int64_t current_t_locked() const REQUIRES(mu_) {
    return config_.ladder[static_cast<std::size_t>(rung_)];
  }

  BreakerConfig config_;
  mutable Mutex mu_;
  BreakerState state_ GUARDED_BY(mu_) = BreakerState::kClosed;
  std::int64_t rung_ GUARDED_BY(mu_) = 0;
  std::int64_t consecutive_failures_ GUARDED_BY(mu_) = 0;
  std::int64_t consecutive_successes_ GUARDED_BY(mu_) = 0;
  std::int64_t cooldown_remaining_ GUARDED_BY(mu_) = 0;
  bool probe_in_flight_ GUARDED_BY(mu_) = false;
  std::int64_t sequence_ GUARDED_BY(mu_) = 0;  // admit()+record() event counter
  std::int64_t trips_ GUARDED_BY(mu_) = 0;
  std::int64_t recoveries_ GUARDED_BY(mu_) = 0;
  std::vector<Transition> history_ GUARDED_BY(mu_);
};

}  // namespace ullsnn::serve
