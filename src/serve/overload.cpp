#include "src/serve/overload.h"

#include <cmath>
#include <stdexcept>

#include "src/obs/flight_recorder.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"

namespace ullsnn::serve {

// ---------------------------------------------------------------------------
// CoDelController
// ---------------------------------------------------------------------------

CoDelController::CoDelController(CoDelConfig config) : config_(config) {
  if (config_.target.count() <= 0 || config_.interval.count() <= 0) {
    throw std::invalid_argument("CoDel: target and interval must be positive");
  }
  if (config_.interactive_target_factor < 1.0) {
    throw std::invalid_argument(
        "CoDel: interactive_target_factor must be >= 1 (interactive sheds last)");
  }
}

Clock::duration CoDelController::target_for(Priority lane) const {
  if (lane == Priority::kInteractive) {
    return std::chrono::duration_cast<Clock::duration>(
        config_.target * config_.interactive_target_factor);
  }
  return config_.target;
}

Clock::duration CoDelController::backoff(std::int64_t count) const {
  return std::chrono::duration_cast<Clock::duration>(
      config_.interval / std::sqrt(static_cast<double>(count < 1 ? 1 : count)));
}

bool CoDelController::should_shed(Priority lane, Clock::duration sojourn,
                                  Clock::time_point now) {
  MutexLock lock(mu_);
  LaneState& s = lanes_[static_cast<std::size_t>(lane)];
  if (sojourn < target_for(lane)) {
    // Below target: the standing queue (if any) has drained. Exit dropping
    // but keep `count` — CoDel's memory of recent overload makes the next
    // episode ramp faster if congestion returns quickly.
    s.first_above = {};
    s.dropping = false;
    return false;
  }
  if (s.first_above == Clock::time_point{}) {
    // First sample above target: arm the interval timer. A transient burst
    // that drains within one interval never sheds anything.
    s.first_above = now + config_.interval;
    return false;
  }
  if (s.dropping) {
    if (now >= s.drop_next) {
      ++s.count;
      ++s.shed;
      s.drop_next = now + backoff(s.count);
      return true;
    }
    return false;
  }
  if (now >= s.first_above) {
    // Sojourn stayed above target for a full interval: a standing backlog,
    // not a burst. Enter dropping; re-start near the previous episode's rate
    // if it ended recently (the control-law memory above).
    s.dropping = true;
    s.count = s.count > 2 ? s.count - 2 : 1;
    ++s.shed;
    s.drop_next = now + backoff(s.count);
    return true;
  }
  return false;
}

std::int64_t CoDelController::shed_count(Priority lane) const {
  MutexLock lock(mu_);
  return lanes_[static_cast<std::size_t>(lane)].shed;
}

bool CoDelController::dropping(Priority lane) const {
  MutexLock lock(mu_);
  return lanes_[static_cast<std::size_t>(lane)].dropping;
}

// ---------------------------------------------------------------------------
// BrownoutController
// ---------------------------------------------------------------------------

BrownoutController::BrownoutController(BrownoutConfig config)
    : config_(std::move(config)),
      level_gauge_(obs::Registry::instance().gauge("serve.overload.brownout_level")),
      time_steps_gauge_(
          obs::Registry::instance().gauge("serve.overload.brownout_time_steps")),
      escalations_counter_(
          obs::Registry::instance().counter("serve.overload.brownout_escalations")),
      recoveries_counter_(
          obs::Registry::instance().counter("serve.overload.brownout_recoveries")) {
  if (config_.ladder.empty()) {
    throw std::invalid_argument("Brownout: ladder must be non-empty");
  }
  for (std::size_t i = 0; i < config_.ladder.size(); ++i) {
    if (config_.ladder[i] <= 0) {
      throw std::invalid_argument("Brownout: ladder time steps must be positive");
    }
    if (i > 0 && config_.ladder[i] >= config_.ladder[i - 1]) {
      throw std::invalid_argument("Brownout: ladder must be strictly decreasing");
    }
  }
  if (config_.dwell <= 0) {
    throw std::invalid_argument("Brownout: dwell must be positive");
  }
  if (!(config_.low_watermark >= 0.0 && config_.low_watermark < config_.high_watermark)) {
    throw std::invalid_argument("Brownout: need 0 <= low_watermark < high_watermark");
  }
  level_gauge_.set(0.0);
  time_steps_gauge_.set(static_cast<double>(config_.ladder[0]));
}

void BrownoutController::note(const char* cause) {
  const std::int64_t t = config_.ladder[static_cast<std::size_t>(level_)];
  level_gauge_.set(static_cast<double>(level_));
  time_steps_gauge_.set(static_cast<double>(t));
  obs::FlightRecorder::instance().record_event(
      "brownout", "-> level %lld (T=%lld): %s", static_cast<long long>(level_),
      static_cast<long long>(t), cause);
  obs::logf(obs::LogLevel::kInfo, "[serve] brownout -> level %lld (T=%lld): %s",
            static_cast<long long>(level_), static_cast<long long>(t), cause);
}

std::int64_t BrownoutController::observe(double depth_fraction) {
  MutexLock lock(mu_);
  if (depth_fraction >= config_.high_watermark) {
    below_streak_ = 0;
    if (++above_streak_ >= config_.dwell &&
        level_ + 1 < static_cast<std::int64_t>(config_.ladder.size())) {
      above_streak_ = 0;
      ++level_;
      if (level_ > deepest_reached_) deepest_reached_ = level_;
      ++escalations_;
      escalations_counter_.add(1);
      note("sustained queue pressure");
    }
  } else if (depth_fraction <= config_.low_watermark) {
    above_streak_ = 0;
    if (++below_streak_ >= config_.dwell && level_ > 0) {
      below_streak_ = 0;
      --level_;
      ++recoveries_;
      recoveries_counter_.add(1);
      note("queue pressure relieved");
    }
  } else {
    // Between the watermarks: hysteresis band, both streaks reset so the
    // level holds steady instead of oscillating.
    above_streak_ = 0;
    below_streak_ = 0;
  }
  return level_;
}

std::int64_t BrownoutController::level() const {
  MutexLock lock(mu_);
  return level_;
}

std::int64_t BrownoutController::time_steps() const {
  MutexLock lock(mu_);
  return config_.ladder[static_cast<std::size_t>(level_)];
}

std::int64_t BrownoutController::deepest_reached() const {
  MutexLock lock(mu_);
  return deepest_reached_;
}

std::int64_t BrownoutController::escalations() const {
  MutexLock lock(mu_);
  return escalations_;
}

std::int64_t BrownoutController::recoveries() const {
  MutexLock lock(mu_);
  return recoveries_;
}

}  // namespace ullsnn::serve
