// Bounded MPMC queue with explicit admission control.
//
// The serving engine's first line of defense against overload: try_push never
// blocks and never grows the queue past its capacity — a full queue yields an
// immediate, reasoned rejection instead of unbounded memory or a client stuck
// in a blocking push. Consumers block with a timeout so worker threads can
// periodically re-check for shutdown without spinning.
//
// Peak-depth tracking is exact (updated under the same mutex as the deque),
// giving tests and the soak harness a precise bound to assert against.
//
// Concurrency contract (statically checked, see docs/concurrency.md): every
// piece of mutable state is GUARDED_BY(mu_); a Clang -Werror=thread-safety
// build rejects any unlocked access. The sched model tests drive this class
// through exhaustive interleavings asserting conservation (no lost or
// duplicated items) and the capacity/peak-depth bounds.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <utility>

#include "src/util/mutex.h"

namespace ullsnn::serve {

/// Why try_push refused an item.
enum class AdmitError { kNone, kFull, kClosed };

inline const char* to_string(AdmitError e) {
  switch (e) {
    case AdmitError::kNone: return "admitted";
    case AdmitError::kFull: return "queue full";
    case AdmitError::kClosed: return "queue closed";
  }
  return "unknown";
}

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::int64_t capacity) : capacity_(capacity) {}

  /// Non-blocking admission. Returns kNone and takes ownership on success;
  /// on kFull/kClosed the item is left untouched in the caller's hands.
  AdmitError try_push(T&& item) {
    {
      MutexLock lock(mu_);
      if (closed_) return AdmitError::kClosed;
      if (static_cast<std::int64_t>(items_.size()) >= capacity_) {
        return AdmitError::kFull;
      }
      items_.push_back(std::move(item));
      const auto depth = static_cast<std::int64_t>(items_.size());
      if (depth > peak_depth_) peak_depth_ = depth;
    }
    ready_.notify_one();
    return AdmitError::kNone;
  }

  /// Blocking pop with timeout. Returns true and fills `out` when an item
  /// arrives; false on timeout or when the queue is closed and drained.
  bool pop(T* out, std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    // Explicit predicate loop (not the lambda-predicate wait overload) so the
    // thread-safety analysis can prove the guarded reads happen under mu_.
    while (!closed_ && items_.empty()) {
      if (ready_.wait_until(mu_, deadline) == std::cv_status::timeout) {
        if (closed_ || !items_.empty()) break;  // raced an arrival at expiry
        return false;
      }
    }
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking pop; used by the batcher to drain coalescable requests
  /// after the first blocking pop succeeded.
  bool try_pop(T* out) {
    MutexLock lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Reject all future pushes and wake every blocked consumer. Items already
  /// queued remain poppable (the engine drains and fails them on stop).
  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::int64_t depth() const {
    MutexLock lock(mu_);
    return static_cast<std::int64_t>(items_.size());
  }

  /// Highest depth ever observed (exact; tracked under the queue mutex).
  std::int64_t peak_depth() const {
    MutexLock lock(mu_);
    return peak_depth_;
  }

  std::int64_t capacity() const { return capacity_; }

 private:
  const std::int64_t capacity_;
  mutable Mutex mu_;
  CondVar ready_;
  std::deque<T> items_ GUARDED_BY(mu_);
  std::int64_t peak_depth_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace ullsnn::serve
