// Bounded MPMC queue with explicit admission control.
//
// The serving engine's first line of defense against overload: try_push never
// blocks and never grows the queue past its capacity — a full queue yields an
// immediate, reasoned rejection instead of unbounded memory or a client stuck
// in a blocking push. Consumers block with a timeout so worker threads can
// periodically re-check for shutdown without spinning.
//
// Peak-depth tracking is exact (updated under the same mutex as the deque),
// giving tests and the soak harness a precise bound to assert against.
//
// Concurrency contract (statically checked, see docs/concurrency.md): every
// piece of mutable state is GUARDED_BY(mu_); a Clang -Werror=thread-safety
// build rejects any unlocked access. The sched model tests drive this class
// through exhaustive interleavings asserting conservation (no lost or
// duplicated items) and the capacity/peak-depth bounds.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <utility>

#include "src/util/mutex.h"

namespace ullsnn::serve {

/// Why try_push refused an item.
enum class AdmitError { kNone, kFull, kClosed };

inline const char* to_string(AdmitError e) {
  switch (e) {
    case AdmitError::kNone: return "admitted";
    case AdmitError::kFull: return "queue full";
    case AdmitError::kClosed: return "queue closed";
  }
  return "unknown";
}

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::int64_t capacity) : capacity_(capacity) {}

  /// Non-blocking admission. Returns kNone and takes ownership on success;
  /// on kFull/kClosed the item is left untouched in the caller's hands.
  AdmitError try_push(T&& item) {
    {
      MutexLock lock(mu_);
      if (closed_) return AdmitError::kClosed;
      if (static_cast<std::int64_t>(items_.size()) >= capacity_) {
        return AdmitError::kFull;
      }
      items_.push_back(std::move(item));
      const auto depth = static_cast<std::int64_t>(items_.size());
      if (depth > peak_depth_) peak_depth_ = depth;
    }
    ready_.notify_one();
    return AdmitError::kNone;
  }

  /// Blocking pop with timeout. Returns true and fills `out` when an item
  /// arrives; false on timeout or when the queue is closed and drained.
  bool pop(T* out, std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    // Explicit predicate loop (not the lambda-predicate wait overload) so the
    // thread-safety analysis can prove the guarded reads happen under mu_.
    while (!closed_ && items_.empty()) {
      if (ready_.wait_until(mu_, deadline) == std::cv_status::timeout) {
        if (closed_ || !items_.empty()) break;  // raced an arrival at expiry
        return false;
      }
    }
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking pop; used by the batcher to drain coalescable requests
  /// after the first blocking pop succeeded.
  bool try_pop(T* out) {
    MutexLock lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Reject all future pushes and wake every blocked consumer. Items already
  /// queued remain poppable (the engine drains and fails them on stop).
  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::int64_t depth() const {
    MutexLock lock(mu_);
    return static_cast<std::int64_t>(items_.size());
  }

  /// Highest depth ever observed (exact; tracked under the queue mutex).
  std::int64_t peak_depth() const {
    MutexLock lock(mu_);
    return peak_depth_;
  }

  std::int64_t capacity() const { return capacity_; }

 private:
  const std::int64_t capacity_;
  mutable Mutex mu_;
  CondVar ready_;
  std::deque<T> items_ GUARDED_BY(mu_);
  std::int64_t peak_depth_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

/// Bounded MPMC queue with `kLanes` strict-priority lanes (lane 0 first).
///
/// Each lane has its own capacity, so a flood of low-priority work can fill
/// its own lane without consuming a single admission slot of a higher lane —
/// overload in the batch class never translates into admission rejections
/// for interactive traffic. Dequeue is strict priority: pop() drains lane 0
/// completely before looking at lane 1, which is what keeps interactive
/// sojourn times (and therefore p99) bounded while batch work queues up and
/// absorbs the deadline/CoDel shedding.
///
/// Same concurrency contract as BoundedQueue: all mutable state GUARDED_BY
/// one mutex, try_push never blocks, pop blocks with a timeout, close()
/// leaves queued items poppable for a drain.
template <typename T, std::size_t kLanes = 2>
class LaneQueue {
  static_assert(kLanes >= 1, "LaneQueue needs at least one lane");

 public:
  /// One capacity per lane (all must be positive).
  explicit LaneQueue(std::array<std::int64_t, kLanes> capacities)
      : capacities_(capacities) {}

  /// Non-blocking admission into `lane` (0 = highest priority). Returns
  /// kNone and takes ownership on success; on kFull/kClosed the item is left
  /// untouched in the caller's hands. Fullness is per-lane.
  AdmitError try_push(T&& item, std::size_t lane) {
    {
      MutexLock lock(mu_);
      if (closed_) return AdmitError::kClosed;
      if (static_cast<std::int64_t>(lanes_[lane].size()) >= capacities_[lane]) {
        return AdmitError::kFull;
      }
      lanes_[lane].push_back(std::move(item));
      std::int64_t depth = 0;
      for (const auto& q : lanes_) depth += static_cast<std::int64_t>(q.size());
      if (depth > peak_depth_) peak_depth_ = depth;
      const auto lane_depth = static_cast<std::int64_t>(lanes_[lane].size());
      if (lane_depth > lane_peak_[lane]) lane_peak_[lane] = lane_depth;
    }
    ready_.notify_one();
    return AdmitError::kNone;
  }

  /// Blocking strict-priority pop with timeout: always returns the front of
  /// the lowest-numbered non-empty lane. False on timeout or closed+drained.
  bool pop(T* out, std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (!closed_ && empty_locked()) {
      if (ready_.wait_until(mu_, deadline) == std::cv_status::timeout) {
        if (closed_ || !empty_locked()) break;  // raced an arrival at expiry
        return false;
      }
    }
    return pop_locked(out);
  }

  /// Non-blocking strict-priority pop.
  bool try_pop(T* out) {
    MutexLock lock(mu_);
    return pop_locked(out);
  }

  /// Reject all future pushes and wake every blocked consumer. Items already
  /// queued remain poppable (the engine drains and fails them on stop).
  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::int64_t depth() const {
    MutexLock lock(mu_);
    std::int64_t depth = 0;
    for (const auto& q : lanes_) depth += static_cast<std::int64_t>(q.size());
    return depth;
  }

  std::int64_t lane_depth(std::size_t lane) const {
    MutexLock lock(mu_);
    return static_cast<std::int64_t>(lanes_[lane].size());
  }

  /// Highest total depth ever observed (exact; tracked under the mutex).
  std::int64_t peak_depth() const {
    MutexLock lock(mu_);
    return peak_depth_;
  }

  std::int64_t lane_peak_depth(std::size_t lane) const {
    MutexLock lock(mu_);
    return lane_peak_[lane];
  }

  std::int64_t capacity(std::size_t lane) const { return capacities_[lane]; }
  std::int64_t total_capacity() const {
    std::int64_t total = 0;
    for (const std::int64_t c : capacities_) total += c;
    return total;
  }

 private:
  bool empty_locked() const REQUIRES(mu_) {
    for (const auto& q : lanes_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  bool pop_locked(T* out) REQUIRES(mu_) {
    for (auto& q : lanes_) {
      if (q.empty()) continue;
      *out = std::move(q.front());
      q.pop_front();
      return true;
    }
    return false;
  }

  const std::array<std::int64_t, kLanes> capacities_;
  mutable Mutex mu_;
  CondVar ready_;
  std::array<std::deque<T>, kLanes> lanes_ GUARDED_BY(mu_);
  std::array<std::int64_t, kLanes> lane_peak_ GUARDED_BY(mu_) = {};
  std::int64_t peak_depth_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace ullsnn::serve
