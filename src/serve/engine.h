// Resilient SNN inference engine: bounded admission, deadline-aware
// micro-batching, per-request watchdog, retry-with-backoff, and a circuit
// breaker that degrades the time-step budget before degrading availability.
//
// Request lifecycle:
//
//   submit() --admission--> BoundedQueue --MicroBatcher--> worker
//     |  kRejected (full/stopped/bad input)     |  kExpired (deadline shed)
//     |                                         v
//     |                              CircuitBreaker.admit()
//     |                                |            |  kUnavailable (open)
//     |                                v
//     |                    forward at ladder T, retrying transient
//     |                    failures with exponential backoff
//     |                                |
//     |                    numeric scan of logits (NaN/Inf/explosion)
//     |                                |--> breaker.record(healthy)
//     |                                v
//     |                     kOk / kDegraded / kError / kExpired
//     |
//   watchdog thread: fulfills kTimeout on any slot past its hard timeout,
//   bounding client waits even if a worker wedges mid-forward.
//
// Threading model: SnnNetwork carries mutable per-sequence state, so each
// worker owns a private replica built by the NetworkFactory; the queue,
// breaker, health monitor, and fault hooks are shared (all thread-safe).
// reset_state() is called before every batch, making each batch a pure
// function of (weights, inputs, T) — see the SnnNetwork isolation contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <thread>
#include <vector>

#include "src/util/mutex.h"

#include "src/obs/slo.h"
#include "src/robust/health.h"
#include "src/serve/batcher.h"
#include "src/serve/bounded_queue.h"
#include "src/serve/circuit_breaker.h"
#include "src/serve/overload.h"
#include "src/serve/request.h"
#include "src/snn/snn_network.h"

namespace ullsnn::artifact {
class ModelRegistry;
}  // namespace ullsnn::artifact

namespace ullsnn::obs {
class HttpEndpoint;
struct HttpResponse;
}  // namespace ullsnn::obs

namespace ullsnn::serve {

/// Builds one network replica per worker. Replicas must share weights'
/// values (same conversion) but own their runtime state.
using NetworkFactory = std::function<std::unique_ptr<snn::SnnNetwork>()>;

/// Live-operations layer: request-scoped tracing, flight recorder, the
/// embedded /metrics endpoint, and SLO tracking. Stage timings, the flight
/// recorder, and the serve.* registry instruments are always on (they are
/// engine-owned and off the per-element hot path — the same contract as
/// ServeStats); only the endpoint itself is opt-in.
struct ServeObsConfig {
  /// Serve /metrics (Prometheus exposition), /healthz, and /flight over an
  /// embedded blocking-socket HTTP endpoint while the engine runs.
  bool endpoint = false;
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one from http_port().
  int port = 0;
  /// Where the flight recorder auto-dumps JSONL on anomalies (watchdog
  /// timeout, breaker open, registry auto-rollback, std::terminate). Empty
  /// disables auto-dumps; recording continues regardless.
  std::string flight_dump_path;
  /// Sample every Nth fulfilled request into the trace sink as an instant
  /// event with its id/status/latency (when the tracer is enabled). 0
  /// disables sampling; 1 traces every request.
  std::int64_t trace_sample_every = 64;
  /// Latency objective + target behind the slo.* gauges and the error-budget
  /// burn rate exported at /metrics.
  obs::SloConfig slo;
};

struct ServeConfig {
  /// Capacity of the interactive admission lane.
  std::int64_t queue_capacity = 256;
  /// Capacity of the batch lane; <= 0 means "same as queue_capacity". A
  /// separate lane capacity keeps a batch flood from consuming interactive
  /// admission slots (and vice versa).
  std::int64_t batch_queue_capacity = -1;
  std::int64_t workers = 1;
  BatcherConfig batcher;
  BreakerConfig breaker;
  /// CoDel queueing-delay shedding, per priority lane (see overload.h).
  CoDelConfig codel;
  /// Load-driven brownout T-ladder; the engine serves each batch at
  /// min(breaker T, brownout T).
  BrownoutConfig brownout;
  /// Default per-request deadline when submit() is not given one.
  std::chrono::milliseconds default_deadline{250};
  /// Hard per-request timeout enforced by the watchdog, measured from
  /// admission. Must be >= any deadline for deadlines to be meaningful.
  std::chrono::milliseconds request_timeout{1000};
  std::chrono::milliseconds watchdog_period{10};
  /// Forward attempts per batch (1 = no retry).
  std::int64_t max_attempts = 3;
  /// Initial retry backoff; doubles per attempt (0 disables sleeping, which
  /// keeps chaos tests fast while preserving the retry path).
  std::chrono::microseconds retry_backoff{200};
  /// |logit| above this counts as numeric distress (matches
  /// robust::GuardConfig::explosion_threshold semantics).
  float explosion_threshold = 1e6F;
  /// Expected single-request input shape, e.g. {3, 32, 32}. Mismatching
  /// submissions are rejected at admission.
  Shape input_shape;
  /// Live-operations layer (endpoint, flight dumps, SLO, trace sampling).
  ServeObsConfig obs;

  // ---- chaos hooks (tests / bench_serve; null in production) ----
  /// Called before each forward attempt with the batch's request ids and the
  /// attempt index. Throwing simulates a transiently failing step; pair with
  /// robust::FaultInjector to corrupt real state.
  std::function<void(const std::vector<std::int64_t>& ids, std::int64_t attempt,
                     snn::SnnNetwork& net)>
      before_forward_hook;
  /// Called after a successful forward; may corrupt `logits` (e.g. via
  /// FaultInjector::inject_tensor) to exercise the breaker's numeric checks.
  std::function<void(const std::vector<std::int64_t>& ids, Tensor& logits)>
      after_forward_hook;
  /// Called with the batch's request ids after micro-batch formation but
  /// before the pre-dispatch deadline re-check. Sleeping here makes the
  /// dequeue -> dispatch expiry window deterministic in tests.
  std::function<void(const std::vector<std::int64_t>& ids)> before_dispatch_hook;
};

/// Result of an admission attempt. On rejection `future` is invalid and
/// `response` already holds the terminal kRejected answer.
struct SubmitResult {
  bool accepted = false;
  ResponseFuture future;
  InferResponse response;  // filled only when !accepted
};

/// Engine-owned counters, independent of the telemetry build flag so tests
/// can assert exact totals in every configuration.
/// Engine-owned counters, independent of the telemetry build flag so tests
/// can assert exact totals in every configuration. Conservation ledger
/// (exact, established by the slot's winning critical section):
///
///   submitted = accepted + rejected + shed_admission
///   accepted  = completed_ok + completed_degraded + shed_deadline +
///               shed_load + unavailable + timeouts + errors
struct ServeStats {
  std::int64_t submitted = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;        // all admission rejections
  std::int64_t shed_admission = 0;  // kExpired: deadline already past at submit
  std::int64_t shed_deadline = 0;   // kExpired after admission (pre/post-run)
  std::int64_t shed_load = 0;       // kShed: CoDel load shedding, in-deadline
  std::int64_t completed_ok = 0;
  std::int64_t completed_degraded = 0;
  std::int64_t completed_interactive = 0;  // successes in the interactive class
  std::int64_t completed_batch = 0;        // successes in the batch class
  std::int64_t unavailable = 0;
  std::int64_t timeouts = 0;
  std::int64_t errors = 0;
  std::int64_t retries = 0;
  std::int64_t batches = 0;
  std::int64_t swaps = 0;  // worker replica rebuilds after a registry flip
  std::int64_t brownout_level = 0;        // current load-driven T rung
  std::int64_t brownout_escalations = 0;  // rungs descended (load)
  std::int64_t brownout_recoveries = 0;   // rungs climbed back

  // SLO snapshot from the most recent SloTracker update (stats() refreshes
  // it): rolling percentiles and the error-budget burn rate.
  double slo_p50_ms = 0.0;
  double slo_p95_ms = 0.0;
  double slo_p99_ms = 0.0;
  double slo_compliance = 1.0;
  double slo_burn = 0.0;
};

class ServeEngine {
 public:
  ServeEngine(ServeConfig config, NetworkFactory factory);
  /// Registry mode: workers build zero-copy replicas from the registry's
  /// active artifact and poll `registry->version()` between batches. When it
  /// changes, the in-flight batch finishes on the old replica (drain — no
  /// request is ever dropped by a swap) and the worker rebuilds from the new
  /// snapshot. Each batch's health verdict is fed back via
  /// record_batch_health, which is what arms the registry's auto-rollback.
  /// The registry must already have an active version; if
  /// config.input_shape is empty it is taken from the active artifact.
  ServeEngine(ServeConfig config, std::shared_ptr<artifact::ModelRegistry> registry);
  ~ServeEngine();
  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Spawn worker + watchdog threads. Idempotent.
  void start();
  /// Stop accepting, drain the queue as kRejected("engine stopped"), join
  /// all threads. Idempotent; also run by the destructor.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Admission-controlled, non-blocking submit. `image` must match
  /// config.input_shape. Deadlines propagate as absolute time points (see
  /// SubmitOptions); a request whose deadline already passed is shed at
  /// admission with a typed kExpired outcome (`accepted == false`, counted
  /// as shed_admission, never rejected silently).
  SubmitResult submit(Tensor image, const SubmitOptions& options);
  /// Convenience overload: relative deadline, interactive priority. A
  /// negative deadline means "use the default"; zero means "no deadline".
  SubmitResult submit(Tensor image,
                      std::chrono::milliseconds deadline = std::chrono::milliseconds(-1)) {
    SubmitOptions options;
    options.deadline = deadline;
    return submit(std::move(image), options);
  }

  ServeStats stats() const;
  const CircuitBreaker& breaker() const { return *breaker_; }
  const BrownoutController& brownout() const { return brownout_; }
  const CoDelController& codel() const { return codel_; }
  std::int64_t queue_depth() const { return queue_.depth(); }
  std::int64_t queue_peak_depth() const { return queue_.peak_depth(); }
  std::int64_t lane_depth(Priority p) const {
    return queue_.lane_depth(static_cast<std::size_t>(p));
  }

  /// Actual port of the embedded endpoint (config.obs.endpoint); 0 when the
  /// endpoint is disabled or the engine is not running.
  int http_port() const;
  /// The engine's SLO tracker (rolling percentiles + error-budget burn).
  /// update() advances the rolling window — /metrics scrapes and stats()
  /// both call it; tests can drive it directly.
  obs::SloTracker& slo() { return slo_; }

  /// Registry mode only: how many workers currently serve the registry's
  /// active version (== config.workers once a swap has fully propagated).
  std::int64_t workers_on_active() const;
  const std::shared_ptr<artifact::ModelRegistry>& registry() const {
    return registry_;
  }

 private:
  void worker_loop(std::int64_t worker_index);
  void watchdog_loop();
  /// Returns the batch's health verdict (false = all forward attempts failed
  /// or the logits failed the numeric scan). Refused/empty batches are not
  /// evidence of model damage and return true.
  bool run_batch(snn::SnnNetwork& net, MicroBatch&& batch,
                 std::int64_t worker_index);
  /// Terminal fulfillment: stamps id/total_ms, completes the slot, records
  /// the request into the flight recorder, samples it into the trace sink,
  /// and observes the latency histograms. Returns whether this call won the
  /// first-fulfillment race (losers record nothing). The recording runs
  /// inside the slot's winning critical section — before any waiter wakes —
  /// so exported counters are conserved from the client's point of view;
  /// `on_win` (optional, must not throw) joins that section for caller-side
  /// counters that must share the same guarantee.
  bool fulfill(const SlotPtr& slot, InferResponse&& response,
               std::int64_t batch_size = 0, std::int64_t worker_index = -1,
               const std::function<void()>& on_win = nullptr);
  /// Status-keyed terminal counting, run inside the slot's winning critical
  /// section by fulfill(). Centralizing the increments there (instead of at
  /// each fulfill call site) closes the conservation hole where a caller
  /// counts an outcome, then loses the first-fulfillment race to the
  /// watchdog — the ledger in ServeStats holds exactly because exactly one
  /// party ever counts a terminal status per request.
  void count_terminal(ResponseStatus status, Priority priority);
  /// NaN/Inf/explosion scan of a batch's logits via the shared monitor.
  bool logits_healthy(const Tensor& logits) const;
  /// Build + start the embedded endpoint (config.obs.endpoint).
  void start_endpoint();
  obs::HttpResponse handle_healthz() const;

  ServeConfig config_;
  NetworkFactory factory_;                              // null in registry mode
  std::shared_ptr<artifact::ModelRegistry> registry_;   // null in factory mode
  /// Version each worker is serving (registry mode; 0 before start()).
  /// Workers store with release after the replica rebuild completes;
  /// workers_on_active() loads with acquire so a version match implies the
  /// rebuild it saw is fully visible.
  std::vector<std::atomic<std::uint64_t>> worker_versions_;
  LaneQueue<PendingRequest> queue_;
  MicroBatcher batcher_;
  std::unique_ptr<CircuitBreaker> breaker_;
  CoDelController codel_;
  BrownoutController brownout_;
  robust::HealthMonitor monitor_;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
  // running_/stopping_ are acquire/release: start() publishes fully
  // constructed worker state before flipping running_, and loops that observe
  // stopping_ must see everything stop() wrote before the flag.
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  // Relaxed: ids only need uniqueness, no ordering with other state.
  std::atomic<std::int64_t> next_id_{0};

  // Outstanding slots for the watchdog scan (pruned lazily as slots finish).
  mutable Mutex inflight_mu_;
  std::list<SlotPtr> inflight_ GUARDED_BY(inflight_mu_);

  // Engine-owned stats (see ServeStats). All relaxed: each counter is an
  // independent monotonic tally; cross-counter conservation is established
  // by the slot's winning critical section, not by atomic ordering.
  struct AtomicStats {
    std::atomic<std::int64_t> submitted{0}, accepted{0}, rejected{0},
        shed_admission{0}, shed_deadline{0}, shed_load{0}, completed_ok{0},
        completed_degraded{0}, completed_interactive{0}, completed_batch{0},
        unavailable{0}, timeouts{0}, errors{0}, retries{0}, batches{0},
        swaps{0};
  };
  mutable AtomicStats stats_;

  // Live-operations layer. serve_metrics_ holds direct registry instrument
  // references (bound once in the constructor), so the serve.* series are
  // exact in every build configuration — unlike the ULLSNN_* macros, they do
  // not compile away with -DULLSNN_TELEMETRY=OFF, which is what lets the
  // /metrics-vs-ServeStats conservation gate run in both CI legs.
  struct ServeMetrics {
    obs::Counter& submitted;
    obs::Counter& accepted;
    obs::Counter& rejected;
    obs::Counter& shed_admission;
    obs::Counter& shed_deadline;
    obs::Counter& shed_load;
    obs::Counter& completed_ok;
    obs::Counter& completed_degraded;
    obs::Counter& completed_interactive;
    obs::Counter& completed_batch;
    obs::Counter& unavailable;
    obs::Counter& timeouts;
    obs::Counter& errors;
    obs::Counter& retries;
    obs::Counter& batches;
    obs::Counter& swaps;
    obs::Gauge& queue_depth;
    obs::Gauge& queue_depth_interactive;
    obs::Gauge& queue_depth_batch;
    obs::Histogram& batch_size;
    obs::Histogram& latency_total_ms;
    obs::Histogram& latency_queue_ms;
    obs::Histogram& latency_batch_ms;
    obs::Histogram& latency_infer_ms;
    obs::Histogram& latency_step_ms;
    static ServeMetrics bind();
  };
  ServeMetrics metrics_;
  mutable obs::SloTracker slo_;
  std::unique_ptr<obs::HttpEndpoint> endpoint_;
};

}  // namespace ullsnn::serve
