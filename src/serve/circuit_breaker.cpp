#include "src/serve/circuit_breaker.h"

#include <stdexcept>

#include "src/obs/flight_recorder.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ullsnn::serve {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kDegraded: return "degraded";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(std::move(config)) {
  if (config_.ladder.empty()) {
    throw std::invalid_argument("CircuitBreaker: ladder must be non-empty");
  }
  for (std::size_t i = 0; i < config_.ladder.size(); ++i) {
    if (config_.ladder[i] <= 0) {
      throw std::invalid_argument("CircuitBreaker: ladder time steps must be positive");
    }
    if (i > 0 && config_.ladder[i] >= config_.ladder[i - 1]) {
      throw std::invalid_argument("CircuitBreaker: ladder must be strictly decreasing");
    }
  }
  if (config_.failure_threshold <= 0 || config_.recovery_threshold <= 0 ||
      config_.open_cooldown <= 0) {
    throw std::invalid_argument("CircuitBreaker: thresholds must be positive");
  }
  ULLSNN_GAUGE_SET("serve.breaker.state", 0.0);
  ULLSNN_GAUGE_SET("serve.breaker.time_steps",
                   static_cast<double>(config_.ladder[0]));
}

void CircuitBreaker::note(BreakerState state, const char* cause) {
  state_ = state;
  const std::int64_t t = state == BreakerState::kOpen ? 0 : current_t_locked();
  history_.push_back({sequence_, state, t, cause});
  // Numeric state encoding for the exported gauge: closed 0, degraded 1,
  // open 2, half-open 3.
  ULLSNN_GAUGE_SET("serve.breaker.state", static_cast<double>(static_cast<int>(state)));
  ULLSNN_GAUGE_SET("serve.breaker.time_steps", static_cast<double>(t));
  ULLSNN_TRACE_INSTANT("serve.breaker.transition");
  // Every transition lands in the flight recorder's event ring; an open
  // circuit is an anomaly and additionally triggers a (rate-limited) dump.
  if (state == BreakerState::kOpen) {
    obs::FlightRecorder::instance().note_anomaly(
        "breaker_open", "circuit opened: %s", cause);
  } else {
    obs::FlightRecorder::instance().record_event(
        "breaker", "-> %s (T=%lld): %s", to_string(state),
        static_cast<long long>(t), cause);
  }
  obs::logf(obs::LogLevel::kInfo, "[serve] breaker -> %s (T=%lld): %s",
            to_string(state), static_cast<long long>(t), cause);
}

CircuitBreaker::Decision CircuitBreaker::admit() {
  MutexLock lock(mu_);
  ++sequence_;
  switch (state_) {
    case BreakerState::kClosed:
    case BreakerState::kDegraded:
      return {true, current_t_locked(), false};
    case BreakerState::kOpen:
      if (--cooldown_remaining_ <= 0) {
        note(BreakerState::kHalfOpen, "cooldown elapsed");
        probe_in_flight_ = true;
        ULLSNN_COUNTER_ADD("serve.breaker.probes", 1);
        return {true, current_t_locked(), true};
      }
      return {false, 0, false};
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) {
        // Another worker's probe is outstanding; stay unavailable until its
        // verdict lands.
        return {false, 0, false};
      }
      probe_in_flight_ = true;
      ULLSNN_COUNTER_ADD("serve.breaker.probes", 1);
      return {true, current_t_locked(), true};
  }
  return {true, current_t_locked(), false};
}

void CircuitBreaker::record(bool healthy) {
  MutexLock lock(mu_);
  ++sequence_;
  if (state_ == BreakerState::kHalfOpen) {
    probe_in_flight_ = false;
    if (healthy) {
      consecutive_failures_ = 0;
      consecutive_successes_ = 0;
      note(rung_ == 0 ? BreakerState::kClosed : BreakerState::kDegraded,
           "probe succeeded");
    } else {
      cooldown_remaining_ = config_.open_cooldown;
      note(BreakerState::kOpen, "probe failed");
    }
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // refused batches report nothing
  if (healthy) {
    consecutive_failures_ = 0;
    if (++consecutive_successes_ >= config_.recovery_threshold && rung_ > 0) {
      consecutive_successes_ = 0;
      --rung_;
      if (rung_ == 0) {
        ++recoveries_;
        ULLSNN_COUNTER_ADD("serve.breaker.recoveries", 1);
        note(BreakerState::kClosed, "recovered to full T");
      } else {
        note(BreakerState::kDegraded, "climbed one rung");
      }
    }
    return;
  }
  consecutive_successes_ = 0;
  if (++consecutive_failures_ < config_.failure_threshold) return;
  consecutive_failures_ = 0;
  if (rung_ + 1 < static_cast<std::int64_t>(config_.ladder.size())) {
    ++rung_;
    note(BreakerState::kDegraded, "descended one rung");
  } else {
    ++trips_;
    cooldown_remaining_ = config_.open_cooldown;
    ULLSNN_COUNTER_ADD("serve.breaker.trips", 1);
    note(BreakerState::kOpen, "last rung exhausted");
  }
}

BreakerState CircuitBreaker::state() const {
  MutexLock lock(mu_);
  return state_;
}

std::int64_t CircuitBreaker::rung() const {
  MutexLock lock(mu_);
  return rung_;
}

std::int64_t CircuitBreaker::time_steps() const {
  MutexLock lock(mu_);
  return current_t_locked();
}

std::vector<CircuitBreaker::Transition> CircuitBreaker::history() const {
  MutexLock lock(mu_);
  return history_;
}

std::int64_t CircuitBreaker::trips() const {
  MutexLock lock(mu_);
  return trips_;
}

std::int64_t CircuitBreaker::recoveries() const {
  MutexLock lock(mu_);
  return recoveries_;
}

}  // namespace ullsnn::serve
