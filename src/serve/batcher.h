// Deadline-aware micro-batcher.
//
// Coalesces queued requests into one forward pass: a batch closes when it
// reaches max_batch, when the oldest member has waited max_batch_delay, or
// when the queue runs dry. Requests whose deadline already passed are shed
// here (fulfilled with kExpired) instead of wasting a slot in the batch —
// under overload, work that can no longer meet its deadline is the cheapest
// work to drop.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/serve/bounded_queue.h"
#include "src/serve/request.h"

namespace ullsnn::serve {

struct BatcherConfig {
  std::int64_t max_batch = 8;
  /// Oldest-request age at which a partial batch is flushed.
  std::chrono::milliseconds max_batch_delay{2};
  /// How long collect() blocks waiting for the first request before giving
  /// up and returning an empty batch (lets workers poll for shutdown).
  std::chrono::milliseconds poll_timeout{20};
};

struct MicroBatch {
  std::vector<PendingRequest> requests;  // in-deadline, ready to run
  std::vector<PendingRequest> expired;   // deadline already passed; shed
  bool empty() const { return requests.empty() && expired.empty(); }
};

class MicroBatcher {
 public:
  explicit MicroBatcher(BatcherConfig config) : config_(config) {}

  const BatcherConfig& config() const { return config_; }

  /// Pull the next micro-batch from `queue`. Blocks up to poll_timeout for
  /// the first request; then drains greedily until the batch is full, the
  /// age limit trips, or the queue is momentarily empty. Expired requests
  /// are separated out and do not count toward max_batch.
  MicroBatch collect(BoundedQueue<PendingRequest>& queue) {
    MicroBatch batch;
    PendingRequest first;
    if (!queue.pop(&first, config_.poll_timeout)) return batch;
    admit(std::move(first), batch);
    while (static_cast<std::int64_t>(batch.requests.size()) < config_.max_batch) {
      if (!batch.requests.empty() &&
          Clock::now() - batch.requests.front().slot->enqueue_time() >=
              config_.max_batch_delay) {
        break;  // oldest member has waited long enough; flush what we have
      }
      PendingRequest next;
      if (!queue.try_pop(&next)) break;
      admit(std::move(next), batch);
    }
    return batch;
  }

 private:
  static void admit(PendingRequest&& request, MicroBatch& batch) {
    const auto now = Clock::now();
    request.popped = now;  // queue-wait ends here; formation wait begins
    if (now >= request.slot->deadline()) {
      batch.expired.push_back(std::move(request));
    } else {
      batch.requests.push_back(std::move(request));
    }
  }

  BatcherConfig config_;
};

}  // namespace ullsnn::serve
