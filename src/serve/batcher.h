// Deadline-aware micro-batcher.
//
// Coalesces queued requests into one forward pass: a batch closes when it
// reaches max_batch, when the oldest member has waited max_batch_delay, or
// when the queue runs dry. Two kinds of work are separated out at dequeue
// instead of wasting a batch slot:
//
//  - `expired`: the deadline already passed — under overload, work that can
//    no longer meet its deadline is the cheapest work to drop (kExpired);
//  - `shed`: still in-deadline, but the lane's CoDel controller decided the
//    standing queueing delay makes it load-shed material (kShed).
//
// Requests without a deadline are never routed to either bucket: "no
// deadline" means the client opted out of shedding entirely (the watchdog's
// hard timeout still bounds the wait).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/serve/bounded_queue.h"
#include "src/serve/overload.h"
#include "src/serve/request.h"

namespace ullsnn::serve {

struct BatcherConfig {
  std::int64_t max_batch = 8;
  /// Oldest-request age at which a partial batch is flushed.
  std::chrono::milliseconds max_batch_delay{2};
  /// How long collect() blocks waiting for the first request before giving
  /// up and returning an empty batch (lets workers poll for shutdown).
  std::chrono::milliseconds poll_timeout{20};
};

struct MicroBatch {
  std::vector<PendingRequest> requests;  // in-deadline, ready to run
  std::vector<PendingRequest> expired;   // deadline already passed; kExpired
  std::vector<PendingRequest> shed;      // CoDel load-shed in-deadline; kShed
  bool empty() const {
    return requests.empty() && expired.empty() && shed.empty();
  }
};

class MicroBatcher {
 public:
  explicit MicroBatcher(BatcherConfig config) : config_(config) {}

  const BatcherConfig& config() const { return config_; }

  /// Pull the next micro-batch from the strict-priority `queue`. Blocks up
  /// to poll_timeout for the first request; then drains greedily until the
  /// batch is full, the age limit trips, or the queue is momentarily empty.
  /// Expired/shed requests are separated out and do not count toward
  /// max_batch. `codel` (optional) classifies in-deadline requests by
  /// sojourn time.
  MicroBatch collect(LaneQueue<PendingRequest>& queue, CoDelController* codel) {
    return collect_impl(queue, codel);
  }

  /// Single-lane compatibility overload (no CoDel) for callers that still
  /// drive a plain BoundedQueue.
  MicroBatch collect(BoundedQueue<PendingRequest>& queue) {
    return collect_impl(queue, nullptr);
  }

 private:
  template <typename Queue>
  MicroBatch collect_impl(Queue& queue, CoDelController* codel) {
    MicroBatch batch;
    PendingRequest first;
    if (!queue.pop(&first, config_.poll_timeout)) return batch;
    admit(std::move(first), batch, codel);
    while (static_cast<std::int64_t>(batch.requests.size()) < config_.max_batch) {
      if (!batch.requests.empty() &&
          Clock::now() - batch.requests.front().slot->enqueue_time() >=
              config_.max_batch_delay) {
        break;  // oldest member has waited long enough; flush what we have
      }
      PendingRequest next;
      if (!queue.try_pop(&next)) break;
      admit(std::move(next), batch, codel);
    }
    return batch;
  }

  static void admit(PendingRequest&& request, MicroBatch& batch,
                    CoDelController* codel) {
    const auto now = Clock::now();
    request.popped = now;  // queue-wait ends here; formation wait begins
    if (!request.slot->has_deadline()) {
      // No deadline: never expired, never load-shed.
      batch.requests.push_back(std::move(request));
      return;
    }
    if (now >= request.slot->deadline()) {
      batch.expired.push_back(std::move(request));
      return;
    }
    if (codel != nullptr &&
        codel->should_shed(request.slot->priority(),
                           now - request.slot->enqueue_time(), now)) {
      batch.shed.push_back(std::move(request));
      return;
    }
    batch.requests.push_back(std::move(request));
  }

  BatcherConfig config_;
};

}  // namespace ullsnn::serve
