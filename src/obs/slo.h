// SloTracker: rolling latency percentiles + error-budget burn over a
// registry histogram.
//
// The tracker snapshots its latency histogram on every update() and works on
// the *delta* since the previous update, so each report describes the
// interval between two scrapes (the natural window for a Prometheus-style
// pull model) rather than the whole process lifetime. From the interval it
// estimates p50/p95/p99 (bucket interpolation, see
// obs::histogram_quantile), SLO compliance against a latency objective, and
// the error-budget burn rate:
//
//   burn = (fraction of interval requests over the objective) / (1 - target)
//
// burn == 1 means the service spends its budget exactly as fast as the SLO
// allows; burn > 1 means an incident in progress. Each update also publishes
// slo.* gauges into the registry so the /metrics endpoint exports them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/mutex.h"

namespace ullsnn::obs {

struct SloConfig {
  /// Registry histogram holding per-request latencies (observed in ms).
  std::string histogram = "serve.latency.total_ms";
  /// Latency objective: a request over this is an SLO violation.
  double objective_ms = 250.0;
  /// Target fraction of requests that must meet the objective (e.g. 0.99 ->
  /// 1% error budget). Must be in (0, 1).
  double target = 0.99;
  /// Gauge-name prefix for the published slo.* gauges.
  std::string gauge_prefix = "serve.slo";
};

class SloTracker {
 public:
  explicit SloTracker(SloConfig config);

  struct Report {
    std::int64_t window_count = 0;   // requests observed in the interval
    double window_violations = 0.0;  // estimated requests over the objective
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double compliance = 1.0;  // fraction within the objective (1 when idle)
    double burn = 0.0;        // error-budget burn rate (see header comment)
  };

  /// Compute the report for the interval since the previous update (process
  /// start for the first call), publish the slo.* gauges, and retain the
  /// report for last(). Thread-safe; concurrent scrapes serialize.
  Report update();

  /// Most recent update() report without advancing the window.
  Report last() const;

  const SloConfig& config() const { return config_; }

 private:
  SloConfig config_;
  mutable Mutex mu_;
  Report last_report_ GUARDED_BY(mu_);
  /// Per-bucket cumulative baseline from the previous update.
  std::vector<std::int64_t> prev_counts_ GUARDED_BY(mu_);
  std::int64_t prev_count_ GUARDED_BY(mu_) = 0;
};

}  // namespace ullsnn::obs
