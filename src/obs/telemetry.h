// Telemetry compile-time switch shared by the obs instrumentation macros.
//
// The build defines ULLSNN_TELEMETRY to 1 (default) or 0 via the CMake
// option of the same name. With 0 every ULLSNN_* instrumentation macro
// (metrics.h, trace.h) expands to nothing, so the hot paths carry no
// telemetry code at all; the obs classes themselves are still compiled so
// exporters and tests keep working in both configurations.
#pragma once

#ifndef ULLSNN_TELEMETRY
#define ULLSNN_TELEMETRY 1
#endif

// Token pasting helper for macro-generated local variable names.
#define ULLSNN_OBS_CONCAT_IMPL(a, b) a##b
#define ULLSNN_OBS_CONCAT(a, b) ULLSNN_OBS_CONCAT_IMPL(a, b)
