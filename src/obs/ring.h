// Fixed-capacity concurrent ring buffer — the storage behind the flight
// recorder. Writers never block each other except on the (rare) wrap
// collision where two producers land on the same slot capacity apart; a
// per-slot spin flag serializes just that pair, so the steady-state push
// cost is one atomic increment, one uncontended test_and_set, and a copy.
//
// snapshot() is best-effort by design: it walks the last `capacity` tickets
// and returns every slot whose ticket still matches — a record overwritten
// mid-walk is simply skipped, never returned torn. The recorder dumps on
// anomalies, not on the hot path, so losing a handful of in-flight records
// to an overwrite race is the intended trade against hot-path cost.
//
// T must be default-constructible and copy-assignable; keep it flat (no
// heap-owning members) so a copy under the slot flag stays cheap.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sched/test_point.h"

namespace ullsnn::obs {

template <typename T>
class Ring {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit Ring(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  std::size_t capacity() const { return capacity_; }

  /// Total records ever pushed (including those already overwritten).
  std::uint64_t total_pushed() const {
    // acquire: pairs with push()'s release ticket store via the busy flag's
    // release; a reader that sees N pushed can snapshot those N records.
    return head_.load(std::memory_order_acquire);
  }

  void push(const T& value) noexcept {
    // relaxed: the fetch_add only reserves a unique ticket; publication of
    // the record happens through the release stores below, not through head_.
    const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[ticket & mask_];
    // Model-checker decision point: ticket reserved, slot flag not yet taken
    // — the window where a wrapping producer or a snapshot walks this slot.
    ULLSNN_TEST_POINT("ring.push");
    // acquire on test_and_set: taking the flag must also acquire the previous
    // owner's writes to slot.value/ticket (paired with the clear(release)).
    while (slot.busy.test_and_set(std::memory_order_acquire)) {
      // Another producer (one full lap ahead/behind) or a snapshot holds the
      // slot; both release within a copy's worth of work.
    }
    slot.value = value;
    // release: publishes the completed value copy to whoever reads this
    // ticket (snapshot checks ticket under the flag before copying out).
    slot.ticket.store(ticket + 1, std::memory_order_release);
    // release: hands the slot (value + ticket writes) to the next flag owner.
    slot.busy.clear(std::memory_order_release);
  }

  /// Copy of the retained records, oldest first. Records overwritten while
  /// the walk is in progress are skipped, never returned torn.
  std::vector<T> snapshot() const {
    // acquire: see total_pushed(); everything at tickets < end is published.
    const std::uint64_t end = head_.load(std::memory_order_acquire);
    const std::uint64_t start = end > capacity_ ? end - capacity_ : 0;
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(end - start));
    for (std::uint64_t ticket = start; ticket < end; ++ticket) {
      Slot& slot = slots_[ticket & mask_];
      // Model-checker decision point: before taking the slot flag, where a
      // concurrent push can overwrite the record this walk is about to read.
      ULLSNN_TEST_POINT("ring.snapshot");
      // acquire: taking the flag acquires the last producer's slot writes.
      while (slot.busy.test_and_set(std::memory_order_acquire)) {
      }
      // relaxed: the flag's acquire above already ordered this read; the
      // ticket is only a generation check, not a publication channel here.
      if (slot.ticket.load(std::memory_order_relaxed) == ticket + 1) {
        out.push_back(slot.value);
      }
      // release: return the slot; we wrote nothing, but the symmetric pairing
      // keeps the flag a total order of slot owners.
      slot.busy.clear(std::memory_order_release);
    }
    return out;
  }

  /// Forget all retained records (tests). Not safe against concurrent push.
  void clear() {
    for (std::size_t i = 0; i < capacity_; ++i) {
      // relaxed: caller guarantees quiescence; the head_ release below
      // publishes the zeroed tickets to subsequent readers.
      slots_[i].ticket.store(0, std::memory_order_relaxed);
    }
    head_.store(0, std::memory_order_release);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> ticket{0};  // 0 = never written; else index+1
    std::atomic_flag busy = ATOMIC_FLAG_INIT;
    T value{};
  };

  std::size_t capacity_ = 0;
  std::uint64_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  // mutable: snapshot() takes the per-slot flag (logically const).
  mutable std::atomic<std::uint64_t> head_{0};
};

}  // namespace ullsnn::obs
