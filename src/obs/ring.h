// Fixed-capacity concurrent ring buffer — the storage behind the flight
// recorder. Writers never block each other except on the (rare) wrap
// collision where two producers land on the same slot capacity apart; a
// per-slot spin flag serializes just that pair, so the steady-state push
// cost is one atomic increment, one uncontended test_and_set, and a copy.
//
// snapshot() is best-effort by design: it walks the last `capacity` tickets
// and returns every slot whose ticket still matches — a record overwritten
// mid-walk is simply skipped, never returned torn. The recorder dumps on
// anomalies, not on the hot path, so losing a handful of in-flight records
// to an overwrite race is the intended trade against hot-path cost.
//
// T must be default-constructible and copy-assignable; keep it flat (no
// heap-owning members) so a copy under the slot flag stays cheap.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace ullsnn::obs {

template <typename T>
class Ring {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit Ring(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  std::size_t capacity() const { return capacity_; }

  /// Total records ever pushed (including those already overwritten).
  std::uint64_t total_pushed() const {
    return head_.load(std::memory_order_acquire);
  }

  void push(const T& value) noexcept {
    const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[ticket & mask_];
    while (slot.busy.test_and_set(std::memory_order_acquire)) {
      // Another producer (one full lap ahead/behind) or a snapshot holds the
      // slot; both release within a copy's worth of work.
    }
    slot.value = value;
    slot.ticket.store(ticket + 1, std::memory_order_release);
    slot.busy.clear(std::memory_order_release);
  }

  /// Copy of the retained records, oldest first. Records overwritten while
  /// the walk is in progress are skipped, never returned torn.
  std::vector<T> snapshot() const {
    const std::uint64_t end = head_.load(std::memory_order_acquire);
    const std::uint64_t start = end > capacity_ ? end - capacity_ : 0;
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(end - start));
    for (std::uint64_t ticket = start; ticket < end; ++ticket) {
      Slot& slot = slots_[ticket & mask_];
      while (slot.busy.test_and_set(std::memory_order_acquire)) {
      }
      if (slot.ticket.load(std::memory_order_relaxed) == ticket + 1) {
        out.push_back(slot.value);
      }
      slot.busy.clear(std::memory_order_release);
    }
    return out;
  }

  /// Forget all retained records (tests). Not safe against concurrent push.
  void clear() {
    for (std::size_t i = 0; i < capacity_; ++i) {
      slots_[i].ticket.store(0, std::memory_order_relaxed);
    }
    head_.store(0, std::memory_order_release);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> ticket{0};  // 0 = never written; else index+1
    std::atomic_flag busy = ATOMIC_FLAG_INIT;
    T value{};
  };

  std::size_t capacity_ = 0;
  std::uint64_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  // mutable: snapshot() takes the per-slot flag (logically const).
  mutable std::atomic<std::uint64_t> head_{0};
};

}  // namespace ullsnn::obs
