// Prometheus text exposition (format version 0.0.4) over a MetricsSnapshot,
// plus histogram quantile estimation for the SLO tracker.
//
// Mapping from the registry's instruments:
//   Counter    -> `# TYPE <name> counter` + one sample line
//   Gauge      -> `# TYPE <name> gauge`   + one sample line
//   Histogram  -> `# TYPE <name> histogram` + cumulative `_bucket{le="..."}`
//                 lines (ending at le="+Inf" == _count), `_sum`, `_count`
//
// Registry names use dots (serve.latency.total_ms); Prometheus metric names
// admit [a-zA-Z0-9_:] only, so every invalid byte becomes '_' and a leading
// digit is prefixed. Label values are escaped per the exposition spec
// (backslash, double-quote, newline).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace ullsnn::obs {

/// One `key="value"` pair attached to every exported sample (e.g. job or
/// instance identity). Values are escaped at render time.
using ExpositionLabels = std::vector<std::pair<std::string, std::string>>;

/// Registry name -> valid Prometheus metric name ('.' and any other invalid
/// byte -> '_'; leading digit prefixed with '_').
std::string prometheus_metric_name(const std::string& name);

/// Escape a label value: `\` -> `\\`, `"` -> `\"`, newline -> `\n`.
std::string escape_label_value(const std::string& value);

/// Render one snapshot as exposition text. Deterministic: instruments appear
/// in the snapshot's (sorted) order, histogram buckets ascending.
std::string render_prometheus(const MetricsSnapshot& snapshot,
                              const ExpositionLabels& labels = {});

/// Quantile estimate (q in [0, 1]) from a histogram sample via linear
/// interpolation inside the bucket containing the q-th sample. The first
/// bucket interpolates from 0; a quantile landing in the overflow bucket
/// returns the largest finite bound (the histogram cannot resolve beyond
/// it). Returns 0 for an empty histogram. The absolute error is bounded by
/// the width of the bucket the true quantile falls in.
double histogram_quantile(const HistogramSample& h, double q);

/// Estimated number of samples strictly above `threshold`, by the same
/// within-bucket linear interpolation. Exact when `threshold` is a bucket
/// bound. Used for SLO violation counting.
double histogram_count_above(const HistogramSample& h, double threshold);

}  // namespace ullsnn::obs
