#include "src/obs/exposition.h"

#include <cctype>
#include <cstdio>

namespace ullsnn::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void append_labels(std::string& out, const ExpositionLabels& labels,
                   const char* extra_key = nullptr,
                   const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += escape_label_value(extra_value);
    out += '"';
  }
  out += '}';
}

void append_type(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string prometheus_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot,
                              const ExpositionLabels& labels) {
  std::string out;
  out.reserve(256 * (snapshot.counters.size() + snapshot.gauges.size()) +
              1024 * snapshot.histograms.size());
  for (const CounterSample& c : snapshot.counters) {
    const std::string name = prometheus_metric_name(c.name);
    append_type(out, name, "counter");
    out += name;
    append_labels(out, labels);
    out += ' ';
    out += std::to_string(c.value);
    out += '\n';
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = prometheus_metric_name(g.name);
    append_type(out, name, "gauge");
    out += name;
    append_labels(out, labels);
    out += ' ';
    out += fmt_double(g.value);
    out += '\n';
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = prometheus_metric_name(h.name);
    append_type(out, name, "histogram");
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      out += name;
      out += "_bucket";
      append_labels(out, labels, "le", fmt_double(h.bounds[i]));
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += name;
    out += "_bucket";
    append_labels(out, labels, "le", "+Inf");
    out += ' ';
    out += std::to_string(h.count);
    out += '\n';
    out += name;
    out += "_sum";
    append_labels(out, labels);
    out += ' ';
    out += fmt_double(h.sum);
    out += '\n';
    out += name;
    out += "_count";
    append_labels(out, labels);
    out += ' ';
    out += std::to_string(h.count);
    out += '\n';
  }
  return out;
}

double histogram_quantile(const HistogramSample& h, double q) {
  if (h.count <= 0 || h.bounds.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(h.count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < h.bounds.size() && i < h.counts.size(); ++i) {
    const double in_bucket = static_cast<double>(h.counts[i]);
    if (cumulative + in_bucket >= rank && in_bucket > 0.0) {
      const double lower = i == 0 ? 0.0 : h.bounds[i - 1];
      const double upper = h.bounds[i];
      const double fraction = (rank - cumulative) / in_bucket;
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  // Overflow bucket: the histogram cannot resolve beyond its last bound.
  return h.bounds.back();
}

double histogram_count_above(const HistogramSample& h, double threshold) {
  if (h.count <= 0 || h.bounds.empty()) return 0.0;
  double above = 0.0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const double in_bucket = static_cast<double>(h.counts[i]);
    if (in_bucket <= 0.0) continue;
    if (i >= h.bounds.size()) {
      // Overflow bucket: every sample exceeds the largest finite bound, so
      // it always counts against a threshold the histogram can resolve.
      above += in_bucket;
      continue;
    }
    const double lower = i == 0 ? 0.0 : h.bounds[i - 1];
    const double upper = h.bounds[i];
    if (threshold <= lower) {
      above += in_bucket;
    } else if (threshold < upper) {
      above += in_bucket * (upper - threshold) / (upper - lower);
    }
  }
  return above;
}

}  // namespace ullsnn::obs
