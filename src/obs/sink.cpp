#include "src/obs/sink.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace ullsnn::obs {

std::string TelemetryField::rendered() const {
  switch (type) {
    case Type::kInt:
      return std::to_string(int_value);
    case Type::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.9g", double_value);
      return buf;
    }
    case Type::kString:
      return string_value;
  }
  return {};
}

TelemetryRecord& TelemetryRecord::add(const std::string& key, std::int64_t v) {
  TelemetryField f;
  f.key = key;
  f.type = TelemetryField::Type::kInt;
  f.int_value = v;
  fields.push_back(std::move(f));
  return *this;
}

TelemetryRecord& TelemetryRecord::add(const std::string& key, double v) {
  TelemetryField f;
  f.key = key;
  f.type = TelemetryField::Type::kDouble;
  f.double_value = v;
  fields.push_back(std::move(f));
  return *this;
}

TelemetryRecord& TelemetryRecord::add(const std::string& key, const std::string& v) {
  TelemetryField f;
  f.key = key;
  f.type = TelemetryField::Type::kString;
  f.string_value = v;
  fields.push_back(std::move(f));
  return *this;
}

namespace {

void write_csv_cell(std::ofstream& out, const std::string& cell) {
  const bool quote = cell.find(',') != std::string::npos;
  if (quote) out << '"';
  out << cell;
  if (quote) out << '"';
}

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

CsvSink::CsvSink(const std::string& path, const std::string& comment)
    : out_(path), path_(path) {
  if (!out_) throw std::runtime_error("CsvSink: cannot open " + path);
  if (!comment.empty()) {
    std::istringstream lines(comment);
    std::string line;
    while (std::getline(lines, line)) out_ << "# " << line << '\n';
  }
}

void CsvSink::emit(const TelemetryRecord& record) {
  if (header_.empty()) {
    header_.reserve(record.fields.size());
    for (std::size_t i = 0; i < record.fields.size(); ++i) {
      header_.push_back(record.fields[i].key);
      if (i != 0) out_ << ',';
      write_csv_cell(out_, record.fields[i].key);
    }
    out_ << '\n';
  } else if (record.fields.size() != header_.size()) {
    throw std::invalid_argument("CsvSink: record arity " +
                                std::to_string(record.fields.size()) +
                                " != header arity " + std::to_string(header_.size()) +
                                " in " + path_);
  }
  for (std::size_t i = 0; i < record.fields.size(); ++i) {
    if (record.fields[i].key != header_[i]) {
      throw std::invalid_argument("CsvSink: field '" + record.fields[i].key +
                                  "' does not match header column '" + header_[i] +
                                  "' in " + path_);
    }
    if (i != 0) out_ << ',';
    write_csv_cell(out_, record.fields[i].rendered());
  }
  out_ << '\n';
  if (!out_) throw std::runtime_error("CsvSink: write failed for " + path_);
}

JsonlSink::JsonlSink(const std::string& path) : out_(path), path_(path) {
  if (!out_) throw std::runtime_error("JsonlSink: cannot open " + path);
}

void JsonlSink::emit(const TelemetryRecord& record) {
  out_ << R"({"kind":")" << json_escaped(record.kind) << '"';
  for (const TelemetryField& f : record.fields) {
    out_ << ",\"" << json_escaped(f.key) << "\":";
    if (f.type == TelemetryField::Type::kString) {
      out_ << '"' << json_escaped(f.string_value) << '"';
    } else {
      out_ << f.rendered();
    }
  }
  out_ << "}\n";
  if (!out_) throw std::runtime_error("JsonlSink: write failed for " + path_);
}

}  // namespace ullsnn::obs
