#include "src/obs/slo.h"

#include <stdexcept>

#include "src/obs/exposition.h"

namespace ullsnn::obs {

SloTracker::SloTracker(SloConfig config) : config_(std::move(config)) {
  if (config_.target <= 0.0 || config_.target >= 1.0) {
    throw std::invalid_argument("SloTracker: target must be in (0, 1)");
  }
  if (config_.objective_ms <= 0.0) {
    throw std::invalid_argument("SloTracker: objective_ms must be positive");
  }
}

SloTracker::Report SloTracker::update() {
  // The histogram reference is stable for the process lifetime; taking it
  // here (rather than caching) keeps the tracker usable before the serving
  // engine has observed anything.
  Histogram& hist = Registry::instance().histogram(config_.histogram);

  MutexLock lock(mu_);
  const std::vector<std::int64_t> counts = hist.bucket_counts();
  if (prev_counts_.size() != counts.size()) {
    prev_counts_.assign(counts.size(), 0);
  }
  // Interval histogram = cumulative now - cumulative at the last update.
  HistogramSample interval;
  interval.name = config_.histogram;
  interval.bounds = hist.bounds();
  interval.counts.resize(counts.size());
  std::int64_t window_count = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    interval.counts[i] = counts[i] - prev_counts_[i];
    window_count += interval.counts[i];
  }
  interval.count = window_count;

  Report report;
  report.window_count = window_count;
  if (window_count > 0) {
    report.p50_ms = histogram_quantile(interval, 0.50);
    report.p95_ms = histogram_quantile(interval, 0.95);
    report.p99_ms = histogram_quantile(interval, 0.99);
    report.window_violations =
        histogram_count_above(interval, config_.objective_ms);
    report.compliance =
        1.0 - report.window_violations / static_cast<double>(window_count);
    report.burn = (report.window_violations / static_cast<double>(window_count)) /
                  (1.0 - config_.target);
  }

  prev_counts_ = counts;
  prev_count_ = hist.count();
  last_report_ = report;

  Registry& registry = Registry::instance();
  registry.gauge(config_.gauge_prefix + ".p50_ms").set(report.p50_ms);
  registry.gauge(config_.gauge_prefix + ".p95_ms").set(report.p95_ms);
  registry.gauge(config_.gauge_prefix + ".p99_ms").set(report.p99_ms);
  registry.gauge(config_.gauge_prefix + ".compliance").set(report.compliance);
  registry.gauge(config_.gauge_prefix + ".burn").set(report.burn);
  registry.gauge(config_.gauge_prefix + ".window_requests")
      .set(static_cast<double>(report.window_count));
  return report;
}

SloTracker::Report SloTracker::last() const {
  MutexLock lock(mu_);
  return last_report_;
}

}  // namespace ullsnn::obs
