#include "src/obs/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ullsnn::obs {

namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(init_log_level_from_env())};
  return level;
}

thread_local std::int64_t t_request_id = -1;

}  // namespace

void set_log_request_id(std::int64_t id) { t_request_id = id; }

std::int64_t log_request_id() { return t_request_id; }

LogLevel parse_log_level(const char* text) {
  if (text == nullptr || text[0] == '\0') return LogLevel::kInfo;
  if (std::strcmp(text, "off") == 0 || std::strcmp(text, "none") == 0) {
    return LogLevel::kOff;
  }
  if (std::strcmp(text, "error") == 0) return LogLevel::kError;
  if (std::strcmp(text, "warn") == 0 || std::strcmp(text, "warning") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(text, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(text, "debug") == 0) return LogLevel::kDebug;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end != text && *end == '\0' && v >= -1 && v <= 3) {
    return static_cast<LogLevel>(v);
  }
  return LogLevel::kInfo;
}

LogLevel init_log_level_from_env() {
  // getenv is read-once at startup before any thread writes the environment.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const LogLevel level = parse_log_level(std::getenv("ULLSNN_LOG_LEVEL"));
  // level_storage() itself calls this initializer exactly once; an explicit
  // re-init (tests) must also write the parsed value back.
  static bool initializing = true;
  if (!initializing) set_log_level(level);
  initializing = false;
  return level;
}

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level()) &&
         level != LogLevel::kOff;
}

void vlogf(LogLevel level, const char* fmt, std::va_list args) {
  if (!log_enabled(level)) return;
  char buf[1024];
  std::vsnprintf(buf, sizeof buf, fmt, args);
  const std::size_t len = std::strlen(buf);
  const bool needs_newline = len == 0 || buf[len - 1] != '\n';
  std::FILE* stream = static_cast<int>(level) <= static_cast<int>(LogLevel::kWarn)
                          ? stderr
                          : stdout;
  // One stdio call per line so concurrent writers never interleave mid-line;
  // the rid tag joins this line to traces and flight-recorder records.
  if (t_request_id >= 0) {
    std::fprintf(stream, needs_newline ? "[rid=%lld] %s\n" : "[rid=%lld] %s",
                 static_cast<long long>(t_request_id), buf);
  } else {
    std::fprintf(stream, needs_newline ? "%s\n" : "%s", buf);
  }
  std::fflush(stream);
}

void logf(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  std::va_list args;
  va_start(args, fmt);
  vlogf(level, fmt, args);
  va_end(args);
}

}  // namespace ullsnn::obs
