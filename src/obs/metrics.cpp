#include "src/obs/metrics.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ullsnn::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: needs at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(double v) noexcept {
  // Linear scan: bucket counts are small and fixed, and the scan touches one
  // cache line of bounds — cheaper than a branchy binary search at this size.
  std::size_t bucket = bounds_.size();  // overflow
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& default_histogram_bounds() {
  static const std::vector<double> bounds = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2,
                                             1e-1, 1.0,  1e1,  1e2,  1e3};
  return bounds;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& upper_bounds) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(upper_bounds);
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(
        {name, h->bounds(), h->bucket_counts(), h->count(), h->sum()});
  }
  return snap;
}

void Registry::reset_values() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

std::string join_counts(const std::vector<std::int64_t>& counts) {
  std::string s;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i != 0) s += '|';
    s += std::to_string(counts[i]);
  }
  return s;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

void write_metrics_csv(const MetricsSnapshot& snapshot, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_metrics_csv: cannot open " + path);
  out << "kind,name,value,count,sum,buckets\n";
  for (const auto& c : snapshot.counters) {
    out << "counter," << c.name << ',' << c.value << ",,,\n";
  }
  for (const auto& g : snapshot.gauges) {
    out << "gauge," << g.name << ',' << fmt_double(g.value) << ",,,\n";
  }
  for (const auto& h : snapshot.histograms) {
    out << "histogram," << h.name << ",," << h.count << ',' << fmt_double(h.sum)
        << ',' << join_counts(h.counts) << '\n';
  }
  if (!out) throw std::runtime_error("write_metrics_csv: write failed for " + path);
}

void write_metrics_jsonl(const MetricsSnapshot& snapshot, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_metrics_jsonl: cannot open " + path);
  for (const auto& c : snapshot.counters) {
    out << R"({"kind":"counter","name":")" << c.name << R"(","value":)" << c.value
        << "}\n";
  }
  for (const auto& g : snapshot.gauges) {
    out << R"({"kind":"gauge","name":")" << g.name << R"(","value":)"
        << fmt_double(g.value) << "}\n";
  }
  for (const auto& h : snapshot.histograms) {
    out << R"({"kind":"histogram","name":")" << h.name << R"(","count":)" << h.count
        << R"(,"sum":)" << fmt_double(h.sum) << R"(,"bounds":[)";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i != 0) out << ',';
      out << fmt_double(h.bounds[i]);
    }
    out << R"(],"counts":[)";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) out << ',';
      out << h.counts[i];
    }
    out << "]}\n";
  }
  if (!out) throw std::runtime_error("write_metrics_jsonl: write failed for " + path);
}

}  // namespace ullsnn::obs
