#include "src/obs/flight_recorder.h"

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>

#include "src/obs/log.h"
#include "src/obs/trace.h"

namespace ullsnn::obs {

namespace {

constexpr std::uint64_t kDumpMinIntervalUs = 1'000'000;  // 1 dump/second

void copy_truncated(char* dst, std::size_t cap, const char* src) {
  std::snprintf(dst, cap, "%s", src == nullptr ? "" : src);
}

/// JSON string escape for the fixed char fields: quotes, backslashes, and
/// control characters (the detail strings carry human-written causes only,
/// but a path or exception message can contain anything).
void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  out += buf;
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

FlightRecorder::FlightRecorder(std::size_t request_capacity,
                               std::size_t event_capacity)
    : requests_(request_capacity), events_(event_capacity) {}

void FlightRecorder::record_request(const RequestRecord& record) {
  requests_.push(record);
}

void FlightRecorder::record_event_v(const char* kind, const char* fmt,
                                    va_list args) {
  FlightEvent event;
  copy_truncated(event.kind, sizeof event.kind, kind);
  std::vsnprintf(event.detail, sizeof event.detail, fmt, args);
  event.ts_us = Tracer::now_us();
  events_.push(event);
}

void FlightRecorder::record_event(const char* kind, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  record_event_v(kind, fmt, args);
  va_end(args);
}

void FlightRecorder::set_dump_path(std::string path) {
  MutexLock lock(dump_mu_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  MutexLock lock(dump_mu_);
  return dump_path_;
}

void FlightRecorder::note_anomaly(const char* kind, const char* fmt, ...) {
  {
    va_list args;
    va_start(args, fmt);
    record_event_v(kind, fmt, args);
    va_end(args);
  }
  anomalies_.fetch_add(1, std::memory_order_relaxed);
  std::string path;
  {
    MutexLock lock(dump_mu_);
    if (dump_path_.empty()) return;
    const std::uint64_t now = Tracer::now_us();
    if (ever_dumped_ && now - last_dump_us_ < kDumpMinIntervalUs) return;
    ever_dumped_ = true;
    last_dump_us_ = now;
    path = dump_path_;
  }
  if (dump_jsonl(path)) {
    dumps_written_.fetch_add(1, std::memory_order_relaxed);
    logf(LogLevel::kWarn, "[flight] anomaly '%s': dumped recorder to %s", kind,
         path.c_str());
  } else {
    logf(LogLevel::kError, "[flight] anomaly '%s': dump to %s FAILED", kind,
         path.c_str());
  }
}

std::int64_t FlightRecorder::anomalies() const {
  return anomalies_.load(std::memory_order_relaxed);
}

std::int64_t FlightRecorder::dumps_written() const {
  return dumps_written_.load(std::memory_order_relaxed);
}

std::string FlightRecorder::render_jsonl() const {
  std::string out;
  const std::vector<FlightEvent> events = events_.snapshot();
  const std::vector<RequestRecord> requests = requests_.snapshot();
  out.reserve(events.size() * 96 + requests.size() * 224);
  for (const FlightEvent& e : events) {
    out += R"({"type":"event","ts_us":)";
    out += std::to_string(e.ts_us);
    out += R"(,"kind":")";
    append_json_escaped(out, e.kind);
    out += R"(","detail":")";
    append_json_escaped(out, e.detail);
    out += "\"}\n";
  }
  for (const RequestRecord& r : requests) {
    out += R"({"type":"request","ts_us":)";
    out += std::to_string(r.ts_us);
    out += R"(,"id":)";
    out += std::to_string(r.id);
    out += R"(,"status":")";
    append_json_escaped(out, r.status);
    out += R"(","time_steps":)";
    out += std::to_string(r.time_steps);
    out += R"(,"retries":)";
    out += std::to_string(r.retries);
    out += R"(,"batch_size":)";
    out += std::to_string(r.batch_size);
    out += R"(,"worker":)";
    out += std::to_string(r.worker);
    out += R"(,"queue_ms":)";
    append_double(out, r.queue_ms);
    out += R"(,"batch_ms":)";
    append_double(out, r.batch_ms);
    out += R"(,"infer_ms":)";
    append_double(out, r.infer_ms);
    out += R"(,"total_ms":)";
    append_double(out, r.total_ms);
    out += R"(,"step_ms":[)";
    for (std::int32_t s = 0; s < r.steps && s < RequestRecord::kMaxSteps; ++s) {
      if (s != 0) out += ',';
      append_double(out, r.step_ms[s]);
    }
    out += "]}\n";
  }
  return out;
}

bool FlightRecorder::dump_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << render_jsonl();
  out.flush();
  return static_cast<bool>(out);
}

void FlightRecorder::clear() {
  requests_.clear();
  events_.clear();
  anomalies_.store(0, std::memory_order_relaxed);
  dumps_written_.store(0, std::memory_order_relaxed);
  MutexLock lock(dump_mu_);
  last_dump_us_ = 0;
  ever_dumped_ = false;
}

namespace {
std::terminate_handler g_previous_terminate = nullptr;

[[noreturn]] void flight_terminate_handler() {
  // Best-effort final dump: never allocate more than the render needs, never
  // throw, always chain (or abort) afterwards.
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.record_event("terminate", "std::terminate called");
  const std::string path = recorder.dump_path();
  if (!path.empty()) recorder.dump_jsonl(path);
  if (g_previous_terminate != nullptr) g_previous_terminate();
  std::abort();
}
}  // namespace

void FlightRecorder::install_terminate_handler() {
  static bool installed = [] {
    g_previous_terminate = std::set_terminate(flight_terminate_handler);
    return true;
  }();
  (void)installed;
}

}  // namespace ullsnn::obs
