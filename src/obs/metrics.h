// Process-wide metrics registry: counters, gauges, fixed-bucket histograms.
//
// Hot-path contract: the name lookup happens once per call site (amortized by
// the function-local static inside the ULLSNN_* macros); after that a sample
// is a single relaxed atomic RMW — lock-free, zero heap allocation, no
// registry locks. Registration (first use of a name) takes a mutex.
//
// With -DULLSNN_TELEMETRY=OFF the macros compile to nothing; the classes
// remain available for explicit use and for the exporters.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/telemetry.h"
#include "src/sched/test_point.h"
#include "src/util/mutex.h"

namespace ullsnn::obs {

/// Relaxed atomic add for doubles via a CAS loop.
/// std::atomic<double>::fetch_add is a C++20 library addition that several
/// otherwise-supported toolchains (older libc++, some cross compilers) still
/// lack; the CAS loop compiles everywhere and costs the same on x86.
inline void atomic_add_double(std::atomic<double>& target, double delta) noexcept {
  // relaxed throughout: the sum is a commutative tally read in isolation; no
  // other data is published through it, so no acquire/release pairing exists.
  double current = target.load(std::memory_order_relaxed);
  for (;;) {
    // Model-checker decision point between the read of `current` and the CAS
    // — the window where a concurrent add forces the retry path. No-op in
    // production builds (see src/sched/test_point.h).
    ULLSNN_TEST_POINT("gauge.cas");
    if (target.compare_exchange_weak(current, current + delta,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
      return;
    }
  }
}

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::int64_t delta = 1) noexcept {
    // relaxed: independent tally; atomicity of the RMW alone guarantees no
    // lost increments, and readers need no ordering with other instruments.
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins floating-point metric (accuracies, loss, rates).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept { atomic_add_double(value_, delta); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts samples <= bounds[i]; one overflow
/// bucket catches the rest. Bucket layout is fixed at registration, so
/// observe() never allocates.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::int64_t> bucket_counts() const;
  std::int64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram bounds for the macro form: decade grid 1e-6 .. 1e3.
const std::vector<double>& default_histogram_bounds();

struct CounterSample {
  std::string name;
  std::int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;  // bounds.size() + 1 (overflow last)
  std::int64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }
};

/// Name-keyed registry. Returned references stay valid for the process
/// lifetime (instruments are never deregistered).
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bucket layout; later calls with the same
  /// name ignore `upper_bounds`.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_bounds = default_histogram_bounds());

  MetricsSnapshot snapshot() const;
  /// Zero every instrument's value; registrations are kept (tests, benches).
  void reset_values();

 private:
  Registry() = default;

  // mu_ guards the maps (registration and snapshot iteration), not the
  // instruments themselves — samples on returned references are lock-free.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
};

/// CSV: `kind,name,value,count,sum,buckets` (histogram buckets as
/// "b0|b1|...|overflow"). Throws on I/O failure.
void write_metrics_csv(const MetricsSnapshot& snapshot, const std::string& path);
/// One JSON object per line. Throws on I/O failure.
void write_metrics_jsonl(const MetricsSnapshot& snapshot, const std::string& path);

}  // namespace ullsnn::obs

#if ULLSNN_TELEMETRY
#define ULLSNN_COUNTER_ADD(name, delta)                                        \
  do {                                                                         \
    static ::ullsnn::obs::Counter& ullsnn_obs_c_ =                             \
        ::ullsnn::obs::Registry::instance().counter(name);                     \
    ullsnn_obs_c_.add(delta);                                                  \
  } while (0)
#define ULLSNN_GAUGE_SET(name, v)                                              \
  do {                                                                         \
    static ::ullsnn::obs::Gauge& ullsnn_obs_g_ =                               \
        ::ullsnn::obs::Registry::instance().gauge(name);                       \
    ullsnn_obs_g_.set(v);                                                      \
  } while (0)
#define ULLSNN_HISTOGRAM_OBSERVE(name, v)                                      \
  do {                                                                         \
    static ::ullsnn::obs::Histogram& ullsnn_obs_h_ =                           \
        ::ullsnn::obs::Registry::instance().histogram(name);                   \
    ullsnn_obs_h_.observe(v);                                                  \
  } while (0)
#else
#define ULLSNN_COUNTER_ADD(name, delta) ((void)0)
#define ULLSNN_GAUGE_SET(name, v) ((void)0)
#define ULLSNN_HISTOGRAM_OBSERVE(name, v) ((void)0)
#endif
