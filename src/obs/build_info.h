// Build provenance stamp: compiler, flags, git hash, telemetry switch.
//
// Emitted as a comment header in every bench CSV (bench/common.h) so a
// fig4*.csv / table1.csv artifact is traceable to the exact build that
// produced it. The git hash and flags are injected by CMake into
// build_info.cpp only, so they never trigger a full rebuild.
#pragma once

#include <string>

namespace ullsnn::obs {

struct BuildInfo {
  std::string compiler;    // e.g. "gcc 12.2.0" (from __VERSION__)
  std::string build_type;  // CMAKE_BUILD_TYPE
  std::string flags;       // effective CXX flags for that build type
  std::string git_hash;    // short hash, or "unknown" outside a git checkout
  bool telemetry = false;  // ULLSNN_TELEMETRY compiled in?
};

const BuildInfo& build_info();

/// Multi-line human-readable stamp (no trailing newline), one field per line,
/// e.g. for Table::write_csv comment headers.
std::string build_info_comment();

}  // namespace ullsnn::obs
