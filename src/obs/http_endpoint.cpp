#include "src/obs/http_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "src/obs/log.h"
#include "src/util/errno_string.h"

namespace ullsnn::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

/// Blocking send of the whole buffer; gives up on error/timeout.
bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void write_response(int fd, const HttpResponse& response) {
  std::string head;
  head.reserve(160);
  head += "HTTP/1.1 ";
  head += std::to_string(response.status);
  head += ' ';
  head += status_text(response.status);
  head += "\r\nContent-Type: ";
  head += response.content_type;
  head += "\r\nContent-Length: ";
  head += std::to_string(response.body.size());
  head += "\r\nConnection: close\r\n\r\n";
  if (send_all(fd, head.data(), head.size())) {
    send_all(fd, response.body.data(), response.body.size());
  }
}

}  // namespace

HttpEndpoint::HttpEndpoint(Config config) : config_(std::move(config)) {}

HttpEndpoint::~HttpEndpoint() { stop(); }

void HttpEndpoint::route(const std::string& path, HttpHandler handler) {
  if (running()) {
    throw std::logic_error("HttpEndpoint: routes must be registered before start()");
  }
  routes_[path] = std::move(handler);
}

void HttpEndpoint::start() {
  if (running_.load(std::memory_order_acquire)) return;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("HttpEndpoint: socket(): " + errno_string(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("HttpEndpoint: bad bind address " +
                             config_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, config_.backlog) != 0) {
    const std::string err = errno_string(errno);
    ::close(fd);
    throw std::runtime_error("HttpEndpoint: cannot listen on " +
                             config_.bind_address + ":" +
                             std::to_string(config_.port) + ": " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_.store(static_cast<int>(ntohs(bound.sin_port)),
                std::memory_order_release);
  }
  listen_fd_.store(fd, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  logf(LogLevel::kInfo, "[http] endpoint listening on %s:%d",
       config_.bind_address.c_str(), port());
}

void HttpEndpoint::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
  logf(LogLevel::kInfo, "[http] endpoint stopped");
}

void HttpEndpoint::accept_loop() {
  const int listen_fd = listen_fd_.load(std::memory_order_acquire);
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (re-check stop flag) or EINTR
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    const timeval tv{
        static_cast<time_t>(config_.io_timeout.count() / 1000),
        static_cast<suseconds_t>((config_.io_timeout.count() % 1000) * 1000)};
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    serve_connection(conn);
    ::close(conn);
  }
}

void HttpEndpoint::serve_connection(int fd) {
  // Read until the end of the request head (or 4 KiB — these are GETs).
  std::string request;
  char buf[1024];
  while (request.size() < 4096 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) {
    write_response(fd, {400, "text/plain", "malformed request\n"});
    return;
  }
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                   : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    write_response(fd, {400, "text/plain", "malformed request line\n"});
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    write_response(fd, {405, "text/plain", "only GET is supported\n"});
    return;
  }
  std::string query;
  const std::size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    query = target.substr(qpos + 1);
    target.resize(qpos);
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  const auto it = routes_.find(target);
  if (it == routes_.end()) {
    std::string known = "not found; routes:";
    for (const auto& [path, handler] : routes_) {
      known += ' ';
      known += path;
    }
    known += '\n';
    write_response(fd, {404, "text/plain", std::move(known)});
    return;
  }
  try {
    write_response(fd, it->second(target, query));
  } catch (const std::exception& e) {
    write_response(fd, {500, "text/plain", std::string("handler error: ") +
                                               e.what() + "\n"});
  }
}

}  // namespace ullsnn::obs
