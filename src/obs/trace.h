// Scoped tracing spans with Chrome-trace and JSONL exporters.
//
// TraceScope is an RAII span: construction stamps the start time, destruction
// records a complete event into a per-thread buffer (per-thread mutex, only
// contended during export). When the tracer is disabled — the default — a
// span is one relaxed atomic load and a branch; with -DULLSNN_TELEMETRY=OFF
// the ULLSNN_TRACE_* macros compile to nothing.
//
// Export formats:
//   write_chrome_trace: the chrome://tracing / Perfetto JSON array format
//     ({"traceEvents":[...]}); open the file in chrome://tracing directly.
//   write_jsonl: one event object per line, for ad-hoc grep/jq pipelines.
//
// Span names must outlive the scope; string literals are the intended use.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/telemetry.h"
#include "src/util/mutex.h"

namespace ullsnn::obs {

struct TraceEvent {
  char name[48] = {0};
  char args[80] = {0};  // optional JSON object body, e.g. {"nan":3}
  std::uint64_t ts_us = 0;   // microseconds since process trace epoch
  std::uint64_t dur_us = 0;  // complete events only
  std::uint32_t tid = 0;
  char phase = 'X';  // 'X' complete span, 'i' instant event
};

class Tracer {
 public:
  static Tracer& instance();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the process trace epoch (first use of the tracer).
  static std::uint64_t now_us();

  /// Record a completed span. No-op while disabled.
  void record_complete(const char* name, std::uint64_t ts_us, std::uint64_t dur_us);
  /// Record an instant event, optionally with a JSON args object body
  /// (the braces' content, e.g. `"nan":3,"inf":0`). No-op while disabled.
  void record_instant(const char* name, const char* args_body = nullptr);

  /// Copy of all buffered events (every thread), in per-thread order.
  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;
  void clear();

  void write_chrome_trace(const std::string& path) const;
  void write_jsonl(const std::string& path) const;

 private:
  struct ThreadBuffer {
    mutable Mutex mu;
    std::vector<TraceEvent> events GUARDED_BY(mu);
    std::uint32_t tid = 0;  // set once at registration, then read-only
  };

  Tracer() = default;
  ThreadBuffer& local_buffer();

  // relaxed: enabled_ is an independent on/off flag; a span racing the flip
  // harmlessly records or skips — no data is published through the flag.
  std::atomic<bool> enabled_{false};
  // relaxed: tids only need uniqueness.
  std::atomic<std::uint32_t> next_tid_{1};
  // Lock order: mu_ before any ThreadBuffer::mu (export iterates under both;
  // recording threads take only their own buffer's mu).
  mutable Mutex mu_;
  // shared_ptr keeps a buffer alive after its thread exits so late exports
  // still see the events.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ GUARDED_BY(mu_);
};

/// RAII span around the enclosing scope. Cheap no-op while the tracer is
/// disabled; `name` must be a string literal (or outlive the scope).
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (Tracer::instance().enabled()) {
      name_ = name;
      start_us_ = Tracer::now_us();
    }
  }
  ~TraceScope() {
    if (name_ != nullptr) {
      Tracer::instance().record_complete(name_, start_us_,
                                         Tracer::now_us() - start_us_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
};

}  // namespace ullsnn::obs

#if ULLSNN_TELEMETRY
#define ULLSNN_TRACE_SCOPE(name) \
  ::ullsnn::obs::TraceScope ULLSNN_OBS_CONCAT(ullsnn_obs_span_, __LINE__)(name)
#define ULLSNN_TRACE_INSTANT(name) ::ullsnn::obs::Tracer::instance().record_instant(name)
#define ULLSNN_TRACE_INSTANT_ARGS(name, args_body) \
  ::ullsnn::obs::Tracer::instance().record_instant(name, args_body)
#else
#define ULLSNN_TRACE_SCOPE(name) ((void)0)
#define ULLSNN_TRACE_INSTANT(name) ((void)0)
#define ULLSNN_TRACE_INSTANT_ARGS(name, args_body) ((void)0)
#endif
