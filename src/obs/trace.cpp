#include "src/obs/trace.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace ullsnn::obs {

namespace {

void copy_bounded(char* dst, std::size_t cap, const char* src) {
  if (src == nullptr) {
    dst[0] = '\0';
    return;
  }
  std::strncpy(dst, src, cap - 1);
  dst[cap - 1] = '\0';
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_us() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - trace_epoch())
                                        .count());
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (!buffer) {
    buffer = std::make_shared<ThreadBuffer>();
    buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    buffer->events.reserve(4096);
    MutexLock lock(mu_);
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void Tracer::record_complete(const char* name, std::uint64_t ts_us,
                             std::uint64_t dur_us) {
  if (!enabled()) return;
  ThreadBuffer& buf = local_buffer();
  MutexLock lock(buf.mu);
  TraceEvent& e = buf.events.emplace_back();
  copy_bounded(e.name, sizeof e.name, name);
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = buf.tid;
  e.phase = 'X';
}

void Tracer::record_instant(const char* name, const char* args_body) {
  if (!enabled()) return;
  ThreadBuffer& buf = local_buffer();
  MutexLock lock(buf.mu);
  TraceEvent& e = buf.events.emplace_back();
  copy_bounded(e.name, sizeof e.name, name);
  copy_bounded(e.args, sizeof e.args, args_body);
  e.ts_us = now_us();
  e.tid = buf.tid;
  e.phase = 'i';
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> all;
  MutexLock lock(mu_);
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(buf->mu);
    all.insert(all.end(), buf->events.begin(), buf->events.end());
  }
  return all;
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  MutexLock lock(mu_);
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void Tracer::clear() {
  MutexLock lock(mu_);
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(buf->mu);
    buf->events.clear();
  }
}

namespace {

void write_event_json(std::ofstream& out, const TraceEvent& e) {
  out << R"({"name":")" << e.name << R"(","cat":"ullsnn","ph":")" << e.phase
      << R"(","ts":)" << e.ts_us << R"(,"pid":1,"tid":)" << e.tid;
  if (e.phase == 'X') out << R"(,"dur":)" << e.dur_us;
  if (e.phase == 'i') out << R"(,"s":"t")";
  if (e.args[0] != '\0') out << R"(,"args":{)" << e.args << '}';
  out << '}';
}

}  // namespace

void Tracer::write_chrome_trace(const std::string& path) const {
  const std::vector<TraceEvent> all = events();
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Tracer::write_chrome_trace: cannot open " + path);
  out << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i != 0) out << ",\n";
    write_event_json(out, all[i]);
  }
  out << "\n]}\n";
  if (!out) {
    throw std::runtime_error("Tracer::write_chrome_trace: write failed for " + path);
  }
}

void Tracer::write_jsonl(const std::string& path) const {
  const std::vector<TraceEvent> all = events();
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Tracer::write_jsonl: cannot open " + path);
  for (const TraceEvent& e : all) {
    write_event_json(out, e);
    out << '\n';
  }
  if (!out) throw std::runtime_error("Tracer::write_jsonl: write failed for " + path);
}

}  // namespace ullsnn::obs
