// TelemetrySink: structured record output for the SNN runtime probes (and
// any other producer of flat key/value telemetry records).
//
// A record is a kind tag plus ordered typed fields. Backends:
//   CsvSink   one file, header taken from the first record's field keys;
//             later records must present the same keys in the same order.
//   JsonlSink one JSON object per line; heterogeneous records welcome.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace ullsnn::obs {

struct TelemetryField {
  enum class Type { kInt, kDouble, kString };
  std::string key;
  Type type = Type::kString;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;

  /// Value formatted for CSV cells / JSON (numbers bare, %.9g for doubles).
  std::string rendered() const;
};

struct TelemetryRecord {
  std::string kind;
  std::vector<TelemetryField> fields;

  TelemetryRecord& add(const std::string& key, std::int64_t v);
  TelemetryRecord& add(const std::string& key, double v);
  TelemetryRecord& add(const std::string& key, const std::string& v);
};

class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void emit(const TelemetryRecord& record) = 0;
  virtual void flush() {}
};

/// Collects records in memory; the test-double backend.
class MemorySink final : public TelemetrySink {
 public:
  void emit(const TelemetryRecord& record) override { records_.push_back(record); }
  const std::vector<TelemetryRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

 private:
  std::vector<TelemetryRecord> records_;
};

class CsvSink final : public TelemetrySink {
 public:
  /// Opens `path` for writing; optional `comment` lines (e.g. the build-info
  /// stamp) are emitted first, each prefixed "# ". Throws on I/O failure.
  explicit CsvSink(const std::string& path, const std::string& comment = "");

  void emit(const TelemetryRecord& record) override;
  void flush() override { out_.flush(); }

 private:
  std::ofstream out_;
  std::string path_;
  std::vector<std::string> header_;  // fixed by the first record
};

class JsonlSink final : public TelemetrySink {
 public:
  explicit JsonlSink(const std::string& path);

  void emit(const TelemetryRecord& record) override;
  void flush() override { out_.flush(); }

 private:
  std::ofstream out_;
  std::string path_;
};

}  // namespace ullsnn::obs
