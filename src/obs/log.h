// Minimal leveled logger replacing the scattered std::cout / std::printf
// diagnostics in the trainers and pipeline.
//
// Threshold comes from the ULLSNN_LOG_LEVEL environment variable on first
// use: "off", "error", "warn", "info" (default), "debug" — or the numeric
// values -1..3. Messages at or below the threshold are printed: info/debug
// to stdout (matching the previous printf behavior the benches parse),
// warn/error to stderr. A message is emitted with a single stdio call, so
// concurrent lines do not interleave mid-line.
// Request-id tagging: the serving engine marks the request (batch) a worker
// thread is handling via set_log_request_id / LogRequestScope; every log
// line emitted by that thread is then prefixed with "[rid=N]", making logs
// joinable against trace events and flight-recorder records during incident
// forensics. The id is thread-local; -1 (the default) disables the prefix.
#pragma once

#include <cstdarg>
#include <cstdint>

namespace ullsnn::obs {

enum class LogLevel : int { kOff = -1, kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current threshold (initialized from ULLSNN_LOG_LEVEL on first call).
LogLevel log_level();
/// Override the threshold (tests, embedding applications).
void set_log_level(LogLevel level);
/// Re-read ULLSNN_LOG_LEVEL; returns the resulting threshold.
LogLevel init_log_level_from_env();
/// Parse "off"/"error"/"warn"/"info"/"debug" or "-1".."3"; falls back to
/// kInfo on anything unrecognized (including null).
LogLevel parse_log_level(const char* text);

bool log_enabled(LogLevel level);

/// printf-style log line; a trailing newline is appended if missing.
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
void vlogf(LogLevel level, const char* fmt, std::va_list args);

/// Active request id for this thread (tags subsequent log lines); -1 clears.
void set_log_request_id(std::int64_t id);
std::int64_t log_request_id();

/// RAII request-id tag: restores the previous id on scope exit, so nested
/// scopes (worker batch -> per-request fulfillment) unwind correctly.
class LogRequestScope {
 public:
  explicit LogRequestScope(std::int64_t id) : previous_(log_request_id()) {
    set_log_request_id(id);
  }
  ~LogRequestScope() { set_log_request_id(previous_); }
  LogRequestScope(const LogRequestScope&) = delete;
  LogRequestScope& operator=(const LogRequestScope&) = delete;

 private:
  std::int64_t previous_;
};

}  // namespace ullsnn::obs
