// Minimal leveled logger replacing the scattered std::cout / std::printf
// diagnostics in the trainers and pipeline.
//
// Threshold comes from the ULLSNN_LOG_LEVEL environment variable on first
// use: "off", "error", "warn", "info" (default), "debug" — or the numeric
// values -1..3. Messages at or below the threshold are printed: info/debug
// to stdout (matching the previous printf behavior the benches parse),
// warn/error to stderr. A message is emitted with a single stdio call, so
// concurrent lines do not interleave mid-line.
#pragma once

#include <cstdarg>

namespace ullsnn::obs {

enum class LogLevel : int { kOff = -1, kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current threshold (initialized from ULLSNN_LOG_LEVEL on first call).
LogLevel log_level();
/// Override the threshold (tests, embedding applications).
void set_log_level(LogLevel level);
/// Re-read ULLSNN_LOG_LEVEL; returns the resulting threshold.
LogLevel init_log_level_from_env();
/// Parse "off"/"error"/"warn"/"info"/"debug" or "-1".."3"; falls back to
/// kInfo on anything unrecognized (including null).
LogLevel parse_log_level(const char* text);

bool log_enabled(LogLevel level);

/// printf-style log line; a trailing newline is appended if missing.
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
void vlogf(LogLevel level, const char* fmt, std::va_list args);

}  // namespace ullsnn::obs
