// FlightRecorder: the serving stack's black box.
//
// Two fixed-capacity rings (src/obs/ring.h) retain the recent past of a
// running engine — the last ~4096 fulfilled requests with their full
// per-stage timing records, and the last ~1024 state-transition events
// (circuit-breaker moves, registry swaps/rollbacks, watchdog timeouts).
// Recording is always on and engine-owned-cheap (one ring push per request);
// nothing is written to disk until something goes wrong.
//
// On an anomaly (note_anomaly: watchdog timeout, breaker open, registry
// auto-rollback, std::terminate via install_terminate_handler) the recorder
// dumps both rings as JSONL to the configured path, rate-limited so an
// anomaly storm produces one dump per second rather than thousands. The
// dump answers the post-incident question "what were the last 4096 requests
// doing, and which state transitions surrounded them?" — each line carries
// the request id, so it joins against rid-tagged log lines and trace events.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/ring.h"
#include "src/util/mutex.h"

namespace ullsnn::obs {

/// Per-request record: one per fulfilled request, flat so the ring copy is a
/// memcpy-sized assignment. Stage timings mirror serve::InferResponse.
struct RequestRecord {
  static constexpr std::int32_t kMaxSteps = 8;

  std::int64_t id = -1;
  char status[16] = {0};       // "ok", "degraded", "timeout", ...
  std::int64_t time_steps = 0; // T the network actually ran
  std::int64_t retries = 0;
  std::int64_t batch_size = 0;
  std::int64_t worker = -1;    // worker index; -1 = watchdog/batcher path
  double queue_ms = 0.0;       // admission -> popped from the bounded queue
  double batch_ms = 0.0;       // popped -> micro-batch dispatched
  double infer_ms = 0.0;       // forward time (final attempt)
  double total_ms = 0.0;       // admission -> fulfillment
  double step_ms[kMaxSteps] = {0.0};  // per-time-step forward durations
  std::int32_t steps = 0;             // entries of step_ms actually filled
  std::uint64_t ts_us = 0;            // fulfillment time (trace epoch)
};

/// State-transition / anomaly event.
struct FlightEvent {
  char kind[16] = {0};    // "breaker", "registry", "watchdog", "anomaly", ...
  char detail[112] = {0}; // human-readable; truncated, never allocated
  std::uint64_t ts_us = 0;
};

class FlightRecorder {
 public:
  /// Process-wide instance (4096 requests / 1024 events). The serving stack
  /// records here; separately-constructed recorders are for tests.
  static FlightRecorder& instance();

  explicit FlightRecorder(std::size_t request_capacity = 4096,
                          std::size_t event_capacity = 1024);

  void record_request(const RequestRecord& record);
  /// printf-style detail; truncated to FlightEvent::detail.
  void record_event(const char* kind, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  std::vector<RequestRecord> requests() const { return requests_.snapshot(); }
  std::vector<FlightEvent> events() const { return events_.snapshot(); }
  std::uint64_t requests_recorded() const { return requests_.total_pushed(); }
  std::uint64_t events_recorded() const { return events_.total_pushed(); }

  /// Where note_anomaly dumps. Empty (the default) disables auto-dumps;
  /// recording continues regardless.
  void set_dump_path(std::string path);
  std::string dump_path() const;

  /// Record an "anomaly"-kind event, then dump both rings to the configured
  /// path (overwriting the previous dump; the newest incident wins). Dumps
  /// are rate-limited to one per second so a storm cannot thrash the disk.
  void note_anomaly(const char* kind, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));
  std::int64_t anomalies() const;
  std::int64_t dumps_written() const;

  /// Serialize both rings as JSONL: event lines ({"type":"event",...}) then
  /// request lines ({"type":"request",...}), each ring oldest-first.
  std::string render_jsonl() const;
  /// render_jsonl() to a file. Returns false on I/O failure (never throws —
  /// dump paths run inside catch blocks and terminate handlers).
  bool dump_jsonl(const std::string& path) const;

  /// Route std::terminate through a final flight dump (instance()'s dump
  /// path), then chain to the previously installed handler. Idempotent.
  static void install_terminate_handler();

  /// Drop all retained records and counters (tests).
  void clear();

 private:
  void record_event_v(const char* kind, const char* fmt, va_list args);

  Ring<RequestRecord> requests_;
  Ring<FlightEvent> events_;
  mutable Mutex dump_mu_;
  std::string dump_path_ GUARDED_BY(dump_mu_);
  std::uint64_t last_dump_us_ GUARDED_BY(dump_mu_) = 0;
  bool ever_dumped_ GUARDED_BY(dump_mu_) = false;
  // relaxed tallies: read in isolation by tests/exposition, publish nothing.
  std::atomic<std::int64_t> anomalies_{0};
  std::atomic<std::int64_t> dumps_written_{0};
};

}  // namespace ullsnn::obs
