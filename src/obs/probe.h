// SNN runtime probes: per-layer spike rates, membrane-potential statistics,
// threshold-crossing histograms, and a live estimate of the paper's layer
// activation gap Delta_{alpha,beta}, collected during ordinary forward passes
// via snn::StepObserver.
//
// Spike counts are read from the layers' own activity counters (per-step
// deltas of spikes_emitted()), so probe totals agree with
// energy::SpikeMonitor / count_snn_flops EXACTLY — same counters, no second
// bookkeeping.
//
// The live Delta estimate uses the soft-reset IF identity: over a sequence,
//   sum_t I(t) = U(T) - U(0) + V_th * n_spikes        (leak = 1, Eq. 2-4)
// so the per-neuron average DNN-equivalent input is recoverable from the
// final membrane plus the spike count — no extra forward state. The gap is
//   Delta ~= mean_i [ clip(avg_in_i, 0, mu) - avg_out_i ],
// the empirical form of Eq. 7 evaluated on live traffic. Layers with leak
// != 1 or hard reset do not satisfy the identity and report NaN.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/sink.h"
#include "src/snn/snn_network.h"

namespace ullsnn::obs {

/// Membrane histogram: buckets of U / V_th with these upper edges plus an
/// overflow bucket (> 1 means the neuron crosses threshold again next step).
inline constexpr std::array<double, 8> kMembraneBucketEdges = {
    -1.0, -0.5, -0.25, 0.0, 0.25, 0.5, 0.75, 1.0};
inline constexpr std::size_t kMembraneBuckets = kMembraneBucketEdges.size() + 1;

struct LayerStepStats {
  std::int64_t sequence = 0;  // 0-based forward() count since attach/reset
  std::int64_t layer = 0;     // index into the network
  std::string name;           // e.g. "SpikingConv2d#2"
  std::int64_t step = 0;
  std::int64_t batch = 0;
  std::int64_t neurons = 0;  // per sample
  std::int64_t spikes = 0;   // this step, summed over batch and neurons
  double spike_rate = 0.0;   // spikes / (batch * neurons)
  double membrane_mean = 0.0;
  double membrane_var = 0.0;
  /// Fraction of membranes still >= V_th after the step (guaranteed to fire
  /// again next step regardless of input — the saturation regime).
  double saturation_fraction = 0.0;
  std::array<std::int64_t, kMembraneBuckets> membrane_histogram{};
};

struct LayerSummary {
  std::int64_t layer = 0;
  std::string name;
  std::int64_t neurons = 0;       // per sample
  std::int64_t spikes_total = 0;  // since attach/reset, all steps and samples
  std::int64_t samples = 0;
  double spikes_per_neuron = 0.0;  // per image, summed over T (Fig. 4(a))
  /// Live Delta_{alpha,beta} estimate averaged over all observed samples;
  /// NaN when the identity does not hold (leak != 1, hard reset) or the
  /// layer was never observed.
  double delta_gap = 0.0;
};

class SnnRuntimeProbe final : public snn::StepObserver {
 public:
  struct Config {
    bool membrane_stats = true;  // mean/var/saturation/histogram per step
    bool track_delta = true;     // live Delta_{alpha,beta} estimation
    bool keep_step_stats = true; // retain per-step rows (summaries are always kept)
  };

  /// Attaches to `net` (replacing any previous observer). Detaches on
  /// destruction.
  explicit SnnRuntimeProbe(snn::SnnNetwork& net);
  SnnRuntimeProbe(snn::SnnNetwork& net, Config config);
  ~SnnRuntimeProbe() override;

  SnnRuntimeProbe(const SnnRuntimeProbe&) = delete;
  SnnRuntimeProbe& operator=(const SnnRuntimeProbe&) = delete;

  void detach();

  /// Per-network-layer clip thresholds mu for the Delta estimate, indexed by
  /// layer position (entries for non-neuron layers are ignored; 0 entries
  /// fall back to the neuron's V_th, i.e. alpha = 1). See
  /// core::per_layer_mu() for deriving this from a ConversionReport.
  void set_layer_mu(std::vector<float> mu_by_layer);

  // snn::StepObserver
  void on_sequence_begin(snn::SnnNetwork& net, const Shape& input_shape,
                         std::int64_t time_steps, bool train) override;
  void on_layer_step(snn::SnnNetwork& net, std::int64_t layer_index,
                     const Tensor& output, std::int64_t t) override;
  void on_sequence_end(snn::SnnNetwork& net) override;

  const std::vector<LayerStepStats>& step_stats() const { return step_stats_; }
  /// One entry per layer that has IF neurons, in network order.
  std::vector<LayerSummary> summaries() const;
  std::int64_t sequences() const { return sequences_; }
  std::int64_t samples() const { return samples_; }
  /// Total spikes across probed layers (== SnnNetwork::total_spikes() over
  /// the same run).
  std::int64_t total_spikes() const;

  /// Drop all collected data (the attachment and mu table are kept).
  void reset();

  /// Emit one "snn.layer_step" record per collected step row.
  void emit_step_records(TelemetrySink& sink) const;
  /// Emit one "snn.layer_activity" record per probed layer.
  void emit_summary_records(TelemetrySink& sink) const;

 private:
  struct LayerState {
    bool probed = false;  // has IF neurons
    std::string name;
    std::int64_t neurons = 0;
    std::int64_t spikes_total = 0;
    std::int64_t prev_spikes = 0;   // counter baseline for per-step deltas
    std::vector<float> out_sum;     // per neuron-element spike amplitude sum
    double delta_sum = 0.0;         // sum over samples of per-sample mean gap
    std::int64_t delta_samples = 0;
    bool delta_valid = true;
  };

  snn::SnnNetwork* net_;
  Config config_;
  std::vector<LayerState> layers_;
  std::vector<float> mu_by_layer_;
  std::vector<LayerStepStats> step_stats_;
  std::int64_t sequences_ = 0;
  std::int64_t samples_ = 0;
  std::int64_t current_batch_ = 0;
  std::int64_t current_time_steps_ = 0;
};

}  // namespace ullsnn::obs
